package socbus

import "testing"

func TestTimerCountsCycles(t *testing.T) {
	tm := NewTimer()
	if got := tm.Read(0, 100); got != 100 {
		t.Errorf("count = %d, want 100", got)
	}
	tm.Write(4, 1, 150) // reset
	if got := tm.Read(0, 160); got != 10 {
		t.Errorf("count after reset = %d, want 10", got)
	}
	if got := tm.Read(8, 160); got != 0 {
		t.Errorf("unknown register = %d, want 0", got)
	}
}

func TestUARTHandshake(t *testing.T) {
	u := NewUART(16)
	if busy := u.Read(4, 0); busy != 0 {
		t.Error("fresh UART should be idle")
	}
	u.Write(0, 'A', 100)
	if busy := u.Read(4, 110); busy != 1 {
		t.Error("UART should be busy 10 cycles after send")
	}
	if busy := u.Read(4, 116); busy != 0 {
		t.Error("UART should be idle after 16 cycles")
	}
	// Write while busy: overrun, byte lost.
	u.Write(0, 'B', 200)
	u.Write(0, 'C', 205)
	if u.Overruns != 1 {
		t.Errorf("overruns = %d, want 1", u.Overruns)
	}
	u.Write(0, 'D', 216)
	if string(u.Sent) != "ABD" {
		t.Errorf("sent = %q, want ABD", u.Sent)
	}
	if u.Read(0, 300) != 'D' {
		t.Error("DATA readback should be last byte")
	}
}

func TestBusRoutingAndLog(t *testing.T) {
	tm := NewTimer()
	u := NewUART(8)
	b := NewBus(tm, u)
	b.BusWrite32(UARTBase, 'x', 10)
	if got := b.BusRead32(TimerBase, 50); got != 50 {
		t.Errorf("timer via bus = %d", got)
	}
	b.BusRead32(0xF00FF000, 60) // unmapped
	if b.Unmapped != 1 {
		t.Errorf("unmapped = %d, want 1", b.Unmapped)
	}
	if len(b.Log) != 3 {
		t.Fatalf("log has %d entries, want 3", len(b.Log))
	}
	if !b.Log[0].Write || b.Log[0].Addr != UARTBase || b.Log[0].Cycle != 10 {
		t.Errorf("log[0] = %+v", b.Log[0])
	}
	if b.Log[1].Write || b.Log[1].Val != 50 {
		t.Errorf("log[1] = %+v", b.Log[1])
	}
}

func TestAttach(t *testing.T) {
	b := NewBus()
	b.Attach(NewTimer())
	if got := b.BusRead32(TimerBase, 7); got != 7 {
		t.Errorf("attached timer read = %d", got)
	}
}
