package socbus

import (
	"testing"
	"testing/quick"
)

// TestIRQControllerBasics covers the register protocol directly.
func TestIRQControllerBasics(t *testing.T) {
	c := NewIRQController(2)

	// Masked raise: pending latches, the line stays low until enabled.
	c.Raise(0, LineDoorbell)
	if c.Line(0) {
		t.Errorf("line up with enable mask clear")
	}
	if c.Pending(0) != 1<<LineDoorbell {
		t.Errorf("pending = %#x", c.Pending(0))
	}
	c.Write(IRQRegEnable, 1<<LineDoorbell, 0)
	if !c.Line(0) {
		t.Errorf("line low after enabling a pending line")
	}

	// Claim returns the line+1 and auto-acks exactly that bit.
	if got := c.Read(IRQRegClaim, 0); got != LineDoorbell+1 {
		t.Errorf("claim = %d, want %d", got, LineDoorbell+1)
	}
	if c.Line(0) || c.Pending(0) != 0 {
		t.Errorf("claim did not ack: pending=%#x", c.Pending(0))
	}
	// Spurious claim: 0, counted.
	if got := c.Read(IRQRegClaim, 0); got != 0 {
		t.Errorf("spurious claim = %d", got)
	}
	if c.Spurious != 1 {
		t.Errorf("spurious count = %d", c.Spurious)
	}

	// Claim priority: lowest pending∧enabled line wins; masked lines are
	// skipped.
	c.Write(IRQRegRaise, 1<<LineTimer|1<<LineSoft0|1<<LineSoft1, 0)
	c.Write(IRQRegEnable, 1<<LineSoft0|1<<LineSoft1, 0)
	if got := c.Read(IRQRegClaim, 0); got != LineSoft0+1 {
		t.Errorf("claim = %d, want %d (lowest enabled)", got, LineSoft0+1)
	}
	if c.Pending(0)&(1<<LineTimer) == 0 {
		t.Errorf("claim acked a masked line")
	}

	// Ack clears only the written bits.
	c.Write(IRQRegAck, 1<<LineSoft1, 0)
	if c.Pending(0) != 1<<LineTimer {
		t.Errorf("pending after ack = %#x", c.Pending(0))
	}

	// Cross-core raise: writes to core 1's block do not touch core 0.
	c.Write(IRQStride+IRQRegRaise, 1<<LineSoft0, 0)
	if c.Pending(1) != 1<<LineSoft0 || c.Pending(0) != 1<<LineTimer {
		t.Errorf("cross-core raise leaked: p0=%#x p1=%#x", c.Pending(0), c.Pending(1))
	}

	// Out-of-range accesses are ignored, never panic.
	c.Write(IRQStride*5+IRQRegRaise, 0xFF, 0)
	_ = c.Read(IRQStride*9, 0)
	c.Raise(-1, 0)
	c.Raise(7, 40)
}

// TestIRQControllerTimer covers the scheduler-clocked timer line:
// deadline arming against the controller clock, periodic raises, and
// missed-period coalescing.
func TestIRQControllerTimer(t *testing.T) {
	c := NewIRQController(1)
	c.Write(IRQRegEnable, 1<<LineTimer, 0)
	c.Tick(100)
	c.Write(IRQRegTimer, 50, 0) // deadline = 150
	c.Tick(149)
	if c.Line(0) {
		t.Errorf("timer raised before its deadline")
	}
	c.Tick(150)
	if !c.Line(0) {
		t.Errorf("timer did not raise at its deadline")
	}
	c.Read(IRQRegClaim, 0)
	// Coalescing: many missed periods raise once, and the deadline
	// catches up past now.
	c.Tick(1000)
	if !c.Line(0) {
		t.Errorf("timer did not raise after catch-up")
	}
	c.Read(IRQRegClaim, 0)
	c.Tick(1049)
	if c.Line(0) {
		t.Errorf("coalesced raise fired more than once per tick window")
	}
	// Disable stops it.
	c.Write(IRQRegTimer, 0, 0)
	c.Tick(5000)
	if c.Line(0) {
		t.Errorf("disabled timer raised")
	}
	if c.AnyTimerArmed() {
		t.Errorf("AnyTimerArmed after disable")
	}
}

// irqRefModel is an independent model of the controller's register
// protocol for the property test.
type irqRefModel struct {
	pending, enable []uint32
}

func (m *irqRefModel) apply(c *IRQController, core int, op uint8, val uint32) {
	if core >= len(m.pending) {
		return
	}
	off := uint32(core * IRQStride)
	switch op % 5 {
	case 0: // raise
		c.Write(off+IRQRegRaise, val, 0)
		m.pending[core] |= val
	case 1: // enable
		c.Write(off+IRQRegEnable, val, 0)
		m.enable[core] = val
	case 2: // ack
		c.Write(off+IRQRegAck, val, 0)
		m.pending[core] &^= val
	case 3: // claim
		got := c.Read(off+IRQRegClaim, 0)
		active := m.pending[core] & m.enable[core]
		if active == 0 {
			if got != 0 {
				panic("claim returned a line with nothing active")
			}
			return
		}
		line := uint32(0)
		for active&1 == 0 {
			active >>= 1
			line++
		}
		if got != line+1 {
			panic("claim returned the wrong line")
		}
		m.pending[core] &^= 1 << line
	case 4: // pending/enable readback
		if p := c.Read(off+IRQRegPending, 0); p != m.pending[core] {
			panic("pending readback mismatch")
		}
		if e := c.Read(off+IRQRegEnable, 0); e != m.enable[core] {
			panic("enable readback mismatch")
		}
	}
}

// TestIRQControllerProtocolProperty drives random operation sequences
// (write-to-ack races, masked raises, spurious claims) against the
// independent model: registers and output lines must track it exactly,
// and nothing may panic.
func TestIRQControllerProtocolProperty(t *testing.T) {
	check := func(ops []uint32) bool {
		const cores = 3
		c := NewIRQController(cores)
		m := &irqRefModel{pending: make([]uint32, cores), enable: make([]uint32, cores)}
		for _, o := range ops {
			core := int(o>>28) % cores
			op := uint8(o >> 24)
			val := o & 0xFFFF
			m.apply(c, core, op, val)
			for i := 0; i < cores; i++ {
				if c.Line(i) != (m.pending[i]&m.enable[i] != 0) {
					t.Logf("line %d diverged after op %#x", i, o)
					return false
				}
				if c.Pending(i) != m.pending[i] {
					t.Logf("pending %d diverged after op %#x: %#x vs %#x", i, o, c.Pending(i), m.pending[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// FuzzIRQControllerProtocol is the fuzz-shaped variant of the property:
// arbitrary byte streams drive the MMIO protocol (including unaligned
// and out-of-range offsets) and must never panic or diverge from the
// model on the architectural registers.
func FuzzIRQControllerProtocol(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x0F, 0x12, 0x34})
	f.Add([]byte{0xFF, 0x83, 0x40, 0x00, 0x00, 0x07, 0x21})
	f.Fuzz(func(t *testing.T, data []byte) {
		const cores = 2
		c := NewIRQController(cores)
		m := &irqRefModel{pending: make([]uint32, cores), enable: make([]uint32, cores)}
		for i := 0; i+2 < len(data); i += 3 {
			b := data[i]
			val := uint32(data[i+1]) | uint32(data[i+2])<<8
			if b&0x80 != 0 {
				// Raw access at an arbitrary offset: exercises unaligned
				// and reserved offsets; architectural state is then
				// re-synced from the device (the model tracks only
				// well-formed ops).
				off := uint32(b&0x7F) * 2
				if b&1 == 0 {
					_ = c.Read(off, 0)
				} else if off%IRQStride != IRQRegEnable && off%IRQStride != IRQRegAck &&
					off%IRQStride != IRQRegRaise && off%IRQStride != IRQRegTimer {
					c.Write(off, val, 0)
				}
				for i := range m.pending {
					m.pending[i] = c.Pending(i)
					m.enable[i] = c.Read(uint32(i*IRQStride)+IRQRegEnable, 0)
				}
				continue
			}
			m.apply(c, int(b>>4)%cores, b&0xF, val)
		}
		for i := 0; i < cores; i++ {
			if c.Pending(i) != m.pending[i] {
				t.Fatalf("pending %d = %#x, model %#x", i, c.Pending(i), m.pending[i])
			}
		}
	})
}

// TestMailboxDoorbellPort checks the OnPost wiring: a successful post
// fires the doorbell port with the slot index; an overrun does not.
func TestMailboxDoorbellPort(t *testing.T) {
	m := NewMailbox(2)
	var rings []int
	m.OnPost = func(slot int) { rings = append(rings, slot) }
	m.Write(1*SlotStride, 7, 0) // post to slot 1
	m.Write(1*SlotStride, 8, 0) // overrun: no ring
	m.Read(1*SlotStride, 0)     // pop
	m.Write(1*SlotStride, 9, 0) // post again
	if len(rings) != 2 || rings[0] != 1 || rings[1] != 1 {
		t.Errorf("doorbell rings = %v, want [1 1]", rings)
	}
	if m.Overruns != 1 {
		t.Errorf("overruns = %d, want 1", m.Overruns)
	}
}
