// Package socbus models the SoC bus of the emulated system and the
// hardware attached to it. On the paper's platform this hardware lives in
// the FPGAs behind a bus interface that adapts the C6x bus to the SoC bus
// of the emulated processor core; the cycle stream produced by the
// synchronization device clocks it.
//
// Peripherals are lazily-advancing state machines keyed on absolute cycle
// timestamps, so exactly the same devices serve both the reference
// simulator (timestamps = source-core cycles) and the emulation platform
// (timestamps = generated cycles). Cycle-accurate handshakes — the
// paper's motivating use case for device-driver validation — fall out of
// the timestamps: a driver that polls the UART busy flag too early sees
// it still busy.
//
// The multi-core devices (shared.go) add shared memory, the
// mailbox/doorbell block and the atomic counter bank; the interrupt
// controller (irq.go) turns mailbox posts, cross-core RAISE writes and
// scheduler-clocked timer deadlines into per-core interrupt lines.
package socbus

import (
	"fmt"
	"sort"
)

// Device is one peripheral on the SoC bus.
type Device interface {
	// Range returns the device's address window.
	Range() (base, size uint32)
	// Read returns the register at byte offset off at the given cycle.
	Read(off uint32, cycle int64) uint32
	// Write stores to the register at byte offset off at the given cycle.
	Write(off uint32, val uint32, cycle int64)
}

// Granular is the optional Device refinement that partitions the
// device's register window into independent conflict granules for
// speculative SoC execution (internal/soc): two accesses interact only
// if Granule maps their offsets to the same key. A device without the
// interface is one whole granule — any two accesses to it interact.
type Granular interface {
	Granule(off uint32) uint32
}

// MutatingReader is the optional Device refinement declaring which
// reads mutate device state (a mailbox DATA pop, the interrupt
// controller's auto-acking CLAIM). The speculative scheduler treats
// such reads as writes for conflict purposes. A device without the
// interface is assumed to mutate on every read (conservative).
type MutatingReader interface {
	ReadMutates(off uint32) bool
}

// ShadowDevice is a device that can participate in speculative SoC
// execution: NewShadow allocates a private same-shape copy for a
// speculating core to run against, and SyncShadow refreshes a shadow
// with the live device's state at a quantum boundary. Shadow state is
// always discarded — a committing core's transactions are replayed
// against the live device instead.
type ShadowDevice interface {
	Device
	NewShadow() Device
	SyncShadow(shadow Device)
}

// Transaction is one logged bus access.
type Transaction struct {
	Addr  uint32
	Val   uint32
	Write bool
	Cycle int64
}

// Bus routes accesses to devices and logs every transaction. It
// implements the reference simulator's Bus interface and is driven by the
// platform's bus interface on the translated side.
type Bus struct {
	devs []Device
	// Log holds every transaction in order (useful for handshake
	// validation in tests and examples).
	Log []Transaction
	// Unmapped counts accesses that hit no device.
	Unmapped int
}

// NewBus builds a bus with the given devices.
func NewBus(devs ...Device) *Bus {
	b := &Bus{devs: devs}
	sort.Slice(b.devs, func(i, j int) bool {
		bi, _ := b.devs[i].Range()
		bj, _ := b.devs[j].Range()
		return bi < bj
	})
	return b
}

// Attach adds a device.
func (b *Bus) Attach(d Device) { b.devs = append(b.devs, d) }

func (b *Bus) find(addr uint32) (Device, uint32) {
	d, _, off := b.findIdx(addr)
	return d, off
}

func (b *Bus) findIdx(addr uint32) (Device, int, uint32) {
	for i, d := range b.devs {
		base, size := d.Range()
		if addr >= base && addr-base < size {
			return d, i, addr - base
		}
	}
	return nil, -1, 0
}

// DeviceAt returns the device mapped at addr (nil if unmapped).
func (b *Bus) DeviceAt(addr uint32) Device {
	d, _ := b.find(addr)
	return d
}

// unmappedGranule keys every unmapped access: such accesses touch no
// device state, so sharing one granule is harmless.
const unmappedGranule = uint64(1) << 63

// AccessMeta classifies addr for the speculative SoC scheduler: the
// conflict granule the access touches (unique across the whole bus) and
// whether a read of addr mutates device state. Devices refine both via
// the Granular and MutatingReader interfaces; without them a device is
// a single granule whose reads are assumed mutating.
func (b *Bus) AccessMeta(addr uint32) (granule uint64, readMutates bool) {
	d, idx, off := b.findIdx(addr)
	if d == nil {
		return unmappedGranule, false
	}
	var g uint32
	if gr, ok := d.(Granular); ok {
		g = gr.Granule(off)
	}
	readMutates = true
	if mr, ok := d.(MutatingReader); ok {
		readMutates = mr.ReadMutates(off)
	}
	return uint64(idx+1)<<32 | uint64(g), readMutates
}

// NewShadow builds a private copy of the bus for a speculating core:
// same device order and address map, every device a fresh shadow. It
// fails if any attached device does not support shadowing (the
// parallel scheduler's Validate gate).
func (b *Bus) NewShadow() (*Bus, error) {
	sb := &Bus{devs: make([]Device, len(b.devs))}
	for i, d := range b.devs {
		sd, ok := d.(ShadowDevice)
		if !ok {
			base, _ := d.Range()
			return nil, fmt.Errorf("socbus: device %T at %#x does not support speculative shadowing", d, base)
		}
		sb.devs[i] = sd.NewShadow()
	}
	return sb, nil
}

// SyncShadow refreshes a shadow bus built by NewShadow with the live
// bus's device state and clears its transaction log — the per-quantum
// reset of a speculative world.
func (b *Bus) SyncShadow(sb *Bus) {
	for i, d := range b.devs {
		d.(ShadowDevice).SyncShadow(sb.devs[i])
	}
	sb.Log = sb.Log[:0]
	sb.Unmapped = b.Unmapped
}

// BusRead32 reads a device register (iss.Bus interface).
func (b *Bus) BusRead32(addr uint32, cycle int64) uint32 {
	d, off := b.find(addr)
	var v uint32
	if d != nil {
		v = d.Read(off, cycle)
	} else {
		b.Unmapped++
	}
	b.Log = append(b.Log, Transaction{Addr: addr, Val: v, Cycle: cycle})
	return v
}

// BusWrite32 writes a device register (iss.Bus interface).
func (b *Bus) BusWrite32(addr uint32, val uint32, cycle int64) {
	d, off := b.find(addr)
	if d != nil {
		d.Write(off, val, cycle)
	} else {
		b.Unmapped++
	}
	b.Log = append(b.Log, Transaction{Addr: addr, Val: val, Write: true, Cycle: cycle})
}

// Timer is a free-running cycle counter with a resettable base — the
// simplest cycle-accurate peripheral: reading COUNT at different emulated
// times gives different values, so it directly exposes timing fidelity.
//
// Registers: +0 COUNT (R), +4 CTRL (W: any value resets the counter).
type Timer struct {
	Base    uint32
	resetAt int64
}

// TimerBase is the default timer address.
const TimerBase = 0xF000_1000

// NewTimer returns a timer at the default address.
func NewTimer() *Timer { return &Timer{Base: TimerBase} }

// Range implements Device.
func (t *Timer) Range() (uint32, uint32) { return t.Base, 0x100 }

// Read implements Device.
func (t *Timer) Read(off uint32, cycle int64) uint32 {
	if off == 0 {
		return uint32(cycle - t.resetAt)
	}
	return 0
}

// Write implements Device.
func (t *Timer) Write(off uint32, val uint32, cycle int64) {
	if off == 4 {
		t.resetAt = cycle
	}
}

// ReadMutates implements MutatingReader: COUNT reads are pure.
func (t *Timer) ReadMutates(off uint32) bool { return false }

// NewShadow implements ShadowDevice.
func (t *Timer) NewShadow() Device { c := *t; return &c }

// SyncShadow implements ShadowDevice.
func (t *Timer) SyncShadow(shadow Device) { *shadow.(*Timer) = *t }

// UART is a byte-wide output port with a busy handshake: after accepting
// a byte it is busy for CyclesPerByte cycles, and a write while busy is an
// overrun (the byte is lost). A correct driver polls STATUS until idle —
// exactly the handshake the paper's cycle-accurate bus interface exists to
// validate.
//
// Registers: +0 DATA (W: send byte; R: last byte), +4 STATUS (R: bit0 =
// busy).
type UART struct {
	Base          uint32
	CyclesPerByte int64

	Sent      []byte
	SendTimes []int64
	Overruns  int
	busyUntil int64
	last      uint32
}

// UARTBase is the default UART address.
const UARTBase = 0xF000_2000

// NewUART returns a UART at the default address.
func NewUART(cyclesPerByte int64) *UART {
	return &UART{Base: UARTBase, CyclesPerByte: cyclesPerByte}
}

// Range implements Device.
func (u *UART) Range() (uint32, uint32) { return u.Base, 0x100 }

// Read implements Device.
func (u *UART) Read(off uint32, cycle int64) uint32 {
	switch off {
	case 0:
		return u.last
	case 4:
		if cycle < u.busyUntil {
			return 1
		}
		return 0
	}
	return 0
}

// Write implements Device.
func (u *UART) Write(off uint32, val uint32, cycle int64) {
	if off != 0 {
		return
	}
	if cycle < u.busyUntil {
		u.Overruns++
		return
	}
	u.last = val & 0xFF
	u.Sent = append(u.Sent, byte(val))
	u.SendTimes = append(u.SendTimes, cycle)
	u.busyUntil = cycle + u.CyclesPerByte
}

// ReadMutates implements MutatingReader: DATA and STATUS reads are pure.
func (u *UART) ReadMutates(off uint32) bool { return false }

// NewShadow implements ShadowDevice.
func (u *UART) NewShadow() Device {
	c := &UART{}
	u.SyncShadow(c)
	return c
}

// SyncShadow implements ShadowDevice.
func (u *UART) SyncShadow(shadow Device) {
	s := shadow.(*UART)
	sent, times := s.Sent[:0], s.SendTimes[:0]
	*s = *u
	s.Sent = append(sent, u.Sent...)
	s.SendTimes = append(times, u.SendTimes...)
}
