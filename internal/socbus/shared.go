package socbus

// This file holds the inter-core devices of the multi-core SoC
// (internal/soc): a shared memory window, a per-core mailbox block with
// doorbell semantics, and a bank of atomic counters. Like every other
// peripheral they are lazily-advancing state machines keyed on absolute
// cycle timestamps, so the same devices serve the reference simulator and
// the translated platform unchanged. Cross-core ordering comes entirely
// from the bus: the SoC's arbiter serializes transactions, and a device
// observes them in arbitration order.

// Default addresses of the multi-core devices. They live in the I/O
// window (iss.IOBase + 16 MB) next to the timer and UART.
const (
	// SharedRAMBase is the default shared-memory window address.
	SharedRAMBase = 0xF010_0000
	// MailboxBase is the default mailbox block address.
	MailboxBase = 0xF011_0000
	// CounterBase is the default atomic-counter bank address.
	CounterBase = 0xF012_0000
)

// SharedRAM is a word-addressable shared memory window: the simplest
// inter-core communication channel (result reduction, work queues). Reads
// and writes complete in arbitration order; there is no cache, so every
// access is globally visible at its bus timestamp.
type SharedRAM struct {
	Base  uint32
	mem   []uint32
	Reads int64
	// Writes counts stores; LastWrite is the cycle of the most recent one.
	Writes    int64
	LastWrite int64
}

// NewSharedRAM returns a words-long shared memory at the default address.
func NewSharedRAM(words int) *SharedRAM {
	return &SharedRAM{Base: SharedRAMBase, mem: make([]uint32, words)}
}

// Range implements Device.
func (s *SharedRAM) Range() (uint32, uint32) { return s.Base, uint32(len(s.mem) * 4) }

// Read implements Device.
func (s *SharedRAM) Read(off uint32, cycle int64) uint32 {
	s.Reads++
	return s.mem[off/4]
}

// Write implements Device.
func (s *SharedRAM) Write(off uint32, val uint32, cycle int64) {
	s.Writes++
	s.LastWrite = cycle
	s.mem[off/4] = val
}

// Word inspects a shared word (tests and reporting).
func (s *SharedRAM) Word(i int) uint32 { return s.mem[i] }

// Granule implements Granular: every word is independent.
func (s *SharedRAM) Granule(off uint32) uint32 { return off / 4 }

// ReadMutates implements MutatingReader: reads are pure (the Reads
// counter replays with the transaction, so it is not speculation state).
func (s *SharedRAM) ReadMutates(off uint32) bool { return false }

// NewShadow implements ShadowDevice.
func (s *SharedRAM) NewShadow() Device {
	c := &SharedRAM{mem: make([]uint32, len(s.mem))}
	s.SyncShadow(c)
	return c
}

// SyncShadow implements ShadowDevice.
func (s *SharedRAM) SyncShadow(shadow Device) {
	d := shadow.(*SharedRAM)
	mem := d.mem
	*d = *s
	d.mem = mem
	copy(d.mem, s.mem)
}

// Mailbox is a block of single-entry mailboxes with doorbell semantics,
// one slot per core. Writing a slot's DATA register posts a word and sets
// the full flag (a post while full is an overrun and the word is lost);
// reading STATUS polls the doorbell; reading DATA pops the word and
// clears the flag (an empty pop returns 0 and clears nothing). The
// producer/consumer handshake this enforces is the mailbox ping-pong
// workload's whole point.
//
// Slot i occupies 16 bytes at offset i*16:
//
//	+0 DATA   (W: post, sets full; R: pop, clears full)
//	+4 STATUS (R: bit0 = full)
type Mailbox struct {
	Base  uint32
	slots []mslot

	Posts    int64
	Pops     int64
	Overruns int64

	// OnPost, if non-nil, is the doorbell-raise port: it fires after a
	// successful post to slot (not on overruns). The SoC wires it to the
	// interrupt controller's doorbell line, turning every mailbox post
	// into a doorbell IRQ for the receiving core.
	OnPost func(slot int)
}

type mslot struct {
	val  uint32
	full bool
}

// SlotStride is the byte stride between mailbox slots.
const SlotStride = 16

// NewMailbox returns an n-slot mailbox block at the default address.
func NewMailbox(n int) *Mailbox {
	return &Mailbox{Base: MailboxBase, slots: make([]mslot, n)}
}

// Range implements Device.
func (m *Mailbox) Range() (uint32, uint32) { return m.Base, uint32(len(m.slots) * SlotStride) }

// Read implements Device.
func (m *Mailbox) Read(off uint32, cycle int64) uint32 {
	s := &m.slots[off/SlotStride]
	switch off % SlotStride {
	case 0:
		if !s.full {
			return 0
		}
		s.full = false
		m.Pops++
		return s.val
	case 4:
		if s.full {
			return 1
		}
		return 0
	}
	return 0
}

// Write implements Device.
func (m *Mailbox) Write(off uint32, val uint32, cycle int64) {
	if off%SlotStride != 0 {
		return
	}
	s := &m.slots[off/SlotStride]
	if s.full {
		m.Overruns++
		return
	}
	s.val = val
	s.full = true
	m.Posts++
	if m.OnPost != nil {
		m.OnPost(int(off / SlotStride))
	}
}

// Full reports whether slot i holds an unread word.
func (m *Mailbox) Full(i int) bool { return m.slots[i].full }

// Granule implements Granular: every slot (DATA + STATUS) is one
// granule — a pop and a same-slot STATUS poll must conflict even though
// their byte offsets differ.
func (m *Mailbox) Granule(off uint32) uint32 { return off / SlotStride }

// ReadMutates implements MutatingReader: a DATA read pops the slot.
func (m *Mailbox) ReadMutates(off uint32) bool { return off%SlotStride == 0 }

// NewShadow implements ShadowDevice. The shadow's doorbell port is left
// nil; the SoC wires it to the shadow interrupt controller.
func (m *Mailbox) NewShadow() Device {
	c := &Mailbox{slots: make([]mslot, len(m.slots))}
	m.SyncShadow(c)
	return c
}

// SyncShadow implements ShadowDevice (the shadow's OnPost wiring is
// preserved).
func (m *Mailbox) SyncShadow(shadow Device) {
	d := shadow.(*Mailbox)
	slots, onPost := d.slots, d.OnPost
	*d = *m
	d.slots, d.OnPost = slots, onPost
	copy(d.slots, m.slots)
}

// CounterBank is a bank of atomic add counters: writing register i adds
// the written value (two's complement, so it can subtract), reading
// returns the current value. Because the bus serializes transactions, the
// read-modify-write is atomic without any core-side primitive — TC32 has
// none — which makes the bank the SoC's barrier and contention primitive.
type CounterBank struct {
	Base     uint32
	counters []uint32
	Adds     int64
}

// NewCounterBank returns an n-counter bank at the default address.
func NewCounterBank(n int) *CounterBank {
	return &CounterBank{Base: CounterBase, counters: make([]uint32, n)}
}

// Range implements Device.
func (c *CounterBank) Range() (uint32, uint32) { return c.Base, uint32(len(c.counters) * 4) }

// Read implements Device.
func (c *CounterBank) Read(off uint32, cycle int64) uint32 { return c.counters[off/4] }

// Write implements Device.
func (c *CounterBank) Write(off uint32, val uint32, cycle int64) {
	c.Adds++
	c.counters[off/4] += val
}

// Value returns counter i (tests and reporting).
func (c *CounterBank) Value(i int) uint32 { return c.counters[i] }

// Granule implements Granular: every counter is independent.
func (c *CounterBank) Granule(off uint32) uint32 { return off / 4 }

// ReadMutates implements MutatingReader: reads are pure.
func (c *CounterBank) ReadMutates(off uint32) bool { return false }

// NewShadow implements ShadowDevice.
func (c *CounterBank) NewShadow() Device {
	d := &CounterBank{counters: make([]uint32, len(c.counters))}
	c.SyncShadow(d)
	return d
}

// SyncShadow implements ShadowDevice.
func (c *CounterBank) SyncShadow(shadow Device) {
	d := shadow.(*CounterBank)
	counters := d.counters
	*d = *c
	d.counters = counters
	copy(d.counters, c.counters)
}
