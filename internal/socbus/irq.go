package socbus

// IRQController is the SoC's interrupt controller: per-core pending and
// enable registers with ack/raise/claim semantics, one level-sensitive
// output line per core (the OR of pending∧enabled), software raise ports
// usable cross-core (doorbell IPIs), a per-core periodic timer line
// clocked by the scheduler, and a doorbell input wired to the Mailbox.
//
// Like every other peripheral it is a deterministic state machine: its
// registers change only through bus writes (serialized by the arbiter)
// and through Tick, which the quantum scheduler calls at quantum
// boundaries with the global clock. Register reads never depend on bus
// timestamps, so the reference simulator and the translated platform —
// whose mid-region timestamps legitimately differ — observe identical
// values at identical delivery points.
//
// Register block of core c at offset c*IRQStride:
//
//	+0  PENDING (R)  pending line bitmask (latched regardless of enable)
//	+4  ENABLE  (RW) line enable mask
//	+8  ACK     (W)  clear the pending bits written
//	+12 RAISE   (W)  set the pending bits written (any core may write any
//	                 core's RAISE — the software doorbell/IPI port)
//	+16 CLAIM   (R)  lowest pending∧enabled line +1, auto-acked;
//	                 0 = spurious (nothing pending)
//	+20 TIMER   (RW) periodic timer line period in cycles (0 = off);
//	                 writing rearms the deadline at clock+period
type IRQController struct {
	Base  uint32
	cores []irqCore

	// Statistics (deterministic, scheduler-driven).
	Raises   int64 // pending bits set by RAISE writes or hardware sources
	Acks     int64 // pending bits cleared by ACK writes
	Claims   int64 // successful CLAIM reads
	Spurious int64 // CLAIM reads with nothing pending

	clock int64 // last Tick time (the quantum scheduler's global clock)
}

type irqCore struct {
	pending uint32
	enable  uint32
	period  int64
	nextAt  int64
}

// Interrupt line assignments.
const (
	// LineDoorbell is raised by a mailbox post to the core's slot.
	LineDoorbell = 0
	// LineTimer is raised by the core's periodic timer.
	LineTimer = 1
	// LineSoft0 and LineSoft1 are software lines (RAISE writes only).
	LineSoft0 = 2
	LineSoft1 = 3
)

// IRQCtrlBase is the default controller address; IRQStride is the byte
// stride between per-core register blocks.
const (
	IRQCtrlBase = 0xF013_0000
	IRQStride   = 32
)

// Register byte offsets within a core's block.
const (
	IRQRegPending = 0
	IRQRegEnable  = 4
	IRQRegAck     = 8
	IRQRegRaise   = 12
	IRQRegClaim   = 16
	IRQRegTimer   = 20
)

// NewIRQController returns a controller for n cores at the default
// address.
func NewIRQController(n int) *IRQController {
	return &IRQController{Base: IRQCtrlBase, cores: make([]irqCore, n)}
}

// Range implements Device.
func (c *IRQController) Range() (uint32, uint32) {
	return c.Base, uint32(len(c.cores) * IRQStride)
}

// Read implements Device.
func (c *IRQController) Read(off uint32, cycle int64) uint32 {
	core := int(off / IRQStride)
	if core >= len(c.cores) {
		return 0
	}
	st := &c.cores[core]
	switch off % IRQStride {
	case IRQRegPending:
		return st.pending
	case IRQRegEnable:
		return st.enable
	case IRQRegClaim:
		active := st.pending & st.enable
		if active == 0 {
			c.Spurious++
			return 0
		}
		line := uint32(0)
		for active&1 == 0 {
			active >>= 1
			line++
		}
		st.pending &^= 1 << line
		c.Claims++
		return line + 1
	case IRQRegTimer:
		return uint32(st.period)
	}
	return 0
}

// Write implements Device.
func (c *IRQController) Write(off uint32, val uint32, cycle int64) {
	core := int(off / IRQStride)
	if core >= len(c.cores) {
		return
	}
	st := &c.cores[core]
	switch off % IRQStride {
	case IRQRegEnable:
		st.enable = val
	case IRQRegAck:
		st.pending &^= val
		c.Acks++
	case IRQRegRaise:
		st.pending |= val
		c.Raises++
	case IRQRegTimer:
		// The deadline is armed against the scheduler clock, not the bus
		// timestamp: Tick time is engine-independent, bus timestamps are
		// not.
		st.period = int64(val)
		if st.period > 0 {
			st.nextAt = c.clock + st.period
		}
	}
}

// Raise asserts line on core from a hardware source (the mailbox
// doorbell port, tests). Out-of-range cores are ignored.
func (c *IRQController) Raise(core, line int) {
	if core < 0 || core >= len(c.cores) || line < 0 || line > 31 {
		return
	}
	c.cores[core].pending |= 1 << line
	c.Raises++
}

// Line returns core's interrupt output: pending ∧ enabled ≠ 0. This is
// the wire the SoC connects to each core's IRQLine input; it is not a
// bus access and costs nothing.
func (c *IRQController) Line(core int) bool {
	if core < 0 || core >= len(c.cores) {
		return false
	}
	st := &c.cores[core]
	return st.pending&st.enable != 0
}

// Pending returns core's raw pending mask (tests and reporting).
func (c *IRQController) Pending(core int) uint32 {
	if core < 0 || core >= len(c.cores) {
		return 0
	}
	return c.cores[core].pending
}

// Tick advances the controller's clock to now (the quantum scheduler's
// global time) and raises the timer line of every core whose deadline
// has passed. Missed periods coalesce into a single raise — the pending
// bit is level-latched, not a counter.
func (c *IRQController) Tick(now int64) {
	if now < c.clock {
		return
	}
	c.clock = now
	for i := range c.cores {
		st := &c.cores[i]
		if st.period <= 0 || st.nextAt > now {
			continue
		}
		st.pending |= 1 << LineTimer
		c.Raises++
		for st.nextAt <= now {
			st.nextAt += st.period
		}
	}
}

// Clock returns the controller's current (scheduler-driven) time.
func (c *IRQController) Clock() int64 { return c.clock }

// AnyTimerArmed reports whether any core has a periodic timer running —
// i.e. whether an interrupt can still arrive with every core idle.
func (c *IRQController) AnyTimerArmed() bool {
	for i := range c.cores {
		if c.cores[i].period > 0 {
			return true
		}
	}
	return false
}

// IRQCoreState is one core's complete register-block state, exposed for
// the speculative scheduler's commit check: a speculating core's
// interrupt behavior depends only on its own block, so "block unchanged
// since the quantum boundary" proves its line samples and register
// reads matched what a sequential run would have observed.
type IRQCoreState struct {
	Pending uint32
	Enable  uint32
	Period  int64
	NextAt  int64
}

// CoreState returns core's register-block state (see IRQCoreState).
func (c *IRQController) CoreState(core int) IRQCoreState {
	if core < 0 || core >= len(c.cores) {
		return IRQCoreState{}
	}
	st := &c.cores[core]
	return IRQCoreState{Pending: st.pending, Enable: st.enable, Period: st.period, NextAt: st.nextAt}
}

// Granule implements Granular: every core's register block is one
// granule. Cross-core RAISE writes land in the target core's granule,
// which is exactly the conflict they are.
func (c *IRQController) Granule(off uint32) uint32 { return off / IRQStride }

// ReadMutates implements MutatingReader: CLAIM auto-acks.
func (c *IRQController) ReadMutates(off uint32) bool { return off%IRQStride == IRQRegClaim }

// NewShadow implements ShadowDevice.
func (c *IRQController) NewShadow() Device {
	d := &IRQController{cores: make([]irqCore, len(c.cores))}
	c.SyncShadow(d)
	return d
}

// SyncShadow implements ShadowDevice.
func (c *IRQController) SyncShadow(shadow Device) {
	d := shadow.(*IRQController)
	cores := d.cores
	*d = *c
	d.cores = cores
	copy(d.cores, c.cores)
}
