// Package isadesc implements the XML processor description of the paper's
// Section 3: "this processor is usually defined in an XML file ... [which]
// contains an architecture description and a description of the
// instruction set". The architecture part (pipelines, caches, branch
// costs) is parsed into the march.Desc consumed by the translator and the
// reference simulator; the instruction-set part lists every mnemonic with
// its encoding format and issue class and is cross-validated against the
// TC32 tables, which keeps the XML and the implementation in sync.
package isadesc

import (
	"encoding/xml"
	"fmt"
	"os"
	"strings"

	"repro/internal/march"
	"repro/internal/tc32"
)

// XML document structure.
type xmlProcessor struct {
	XMLName xml.Name      `xml:"processor"`
	Name    string        `xml:"name,attr"`
	ClockHz int64         `xml:"clock-hz,attr"`
	Pipe    xmlPipeline   `xml:"pipeline"`
	ICache  xmlCache      `xml:"icache"`
	Bus     xmlBus        `xml:"bus"`
	IRQ     xmlInterrupts `xml:"interrupts"`
	Insts   []xmlInst     `xml:"instructions>inst"`
}

type xmlPipeline struct {
	DualIssue bool         `xml:"dual-issue,attr"`
	Load      xmlLatency   `xml:"load"`
	Mul       xmlLatency   `xml:"mul"`
	Divider   xmlDivider   `xml:"divider"`
	Branch    xmlBranch    `xml:"branch"`
	Predictor xmlPredictor `xml:"predictor"`
}

type xmlLatency struct {
	Cycles uint8 `xml:"cycles,attr"`
}

type xmlDivider struct {
	BlockCycles uint8 `xml:"block-cycles,attr"`
}

type xmlBranch struct {
	NotTaken   uint8 `xml:"not-taken,attr"`
	Taken      uint8 `xml:"taken,attr"`
	Mispredict uint8 `xml:"mispredict,attr"`
	Direct     uint8 `xml:"direct,attr"`
	Indirect   uint8 `xml:"indirect,attr"`
}

type xmlPredictor struct {
	BackwardTaken bool `xml:"backward-taken,attr"`
}

type xmlCache struct {
	Sets        int `xml:"sets,attr"`
	Ways        int `xml:"ways,attr"`
	LineBytes   int `xml:"line-bytes,attr"`
	MissPenalty int `xml:"miss-penalty,attr"`
}

type xmlBus struct {
	IOWaitCycles uint8 `xml:"io-wait-cycles,attr"`
}

type xmlInterrupts struct {
	EntryCycles uint8 `xml:"entry-cycles,attr"`
}

type xmlInst struct {
	Name   string `xml:"name,attr"`
	Format string `xml:"format,attr"`
	Class  string `xml:"class,attr"`
}

// Parse reads an XML processor description.
func Parse(data []byte) (*march.Desc, error) {
	var p xmlProcessor
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("isadesc: %w", err)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("isadesc: processor has no name")
	}
	if !p.Pipe.DualIssue {
		return nil, fmt.Errorf("isadesc: only the dual-issue pipeline model is implemented")
	}
	d := &march.Desc{
		Name:           p.Name,
		ClockHz:        p.ClockHz,
		LoadLat:        p.Pipe.Load.Cycles,
		MulLat:         p.Pipe.Mul.Cycles,
		DivBlock:       p.Pipe.Divider.BlockCycles,
		Branch:         march.BranchCosts{NotTakenOK: p.Pipe.Branch.NotTaken, TakenOK: p.Pipe.Branch.Taken, Mispredict: p.Pipe.Branch.Mispredict, Direct: p.Pipe.Branch.Direct, Indirect: p.Pipe.Branch.Indirect},
		BackwardTaken:  p.Pipe.Predictor.BackwardTaken,
		ICache:         march.CacheGeom{Sets: p.ICache.Sets, Ways: p.ICache.Ways, LineBytes: p.ICache.LineBytes, MissPenalty: p.ICache.MissPenalty},
		IOWaitCycles:   p.Bus.IOWaitCycles,
		IRQEntryCycles: p.IRQ.EntryCycles,
	}
	if err := validate(d, p.Insts); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseFile reads a description from disk.
func ParseFile(path string) (*march.Desc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

func validate(d *march.Desc, insts []xmlInst) error {
	if d.ClockHz <= 0 {
		return fmt.Errorf("isadesc: bad clock rate %d", d.ClockHz)
	}
	g := d.ICache
	if g.Sets <= 0 || g.Sets&(g.Sets-1) != 0 || g.LineBytes <= 0 || g.LineBytes&(g.LineBytes-1) != 0 || g.Ways < 1 {
		return fmt.Errorf("isadesc: bad cache geometry %+v", g)
	}
	if len(insts) == 0 {
		return fmt.Errorf("isadesc: instruction set description missing")
	}
	seen := map[string]bool{}
	for _, xi := range insts {
		op := tc32.OpByName(xi.Name)
		if op == tc32.BAD {
			return fmt.Errorf("isadesc: unknown instruction %q", xi.Name)
		}
		if seen[xi.Name] {
			return fmt.Errorf("isadesc: duplicate instruction %q", xi.Name)
		}
		seen[xi.Name] = true
		wantClass := "IP"
		if d.TimingOf(op).Class == march.LS {
			wantClass = "LS"
		}
		if xi.Class != wantClass {
			return fmt.Errorf("isadesc: %s declared class %s, implementation uses %s", xi.Name, xi.Class, wantClass)
		}
		wantFmt := formatName(op.Format())
		if !strings.EqualFold(xi.Format, wantFmt) {
			return fmt.Errorf("isadesc: %s declared format %s, implementation uses %s", xi.Name, xi.Format, wantFmt)
		}
	}
	// Completeness: every implemented op must be described.
	for op := tc32.Op(1); op < tc32.NumOps; op++ {
		if !seen[op.String()] {
			return fmt.Errorf("isadesc: instruction %q missing from description", op.String())
		}
	}
	return nil
}

func formatName(f tc32.Format) string {
	switch f {
	case tc32.FmtNone:
		return "NONE"
	case tc32.FmtRI:
		return "RI"
	case tc32.FmtRR:
		return "RR"
	case tc32.FmtLS:
		return "LS"
	case tc32.FmtBR:
		return "BR"
	case tc32.FmtJ:
		return "J"
	case tc32.FmtJR:
		return "JR"
	case tc32.FmtSRR:
		return "SRR"
	case tc32.FmtSRC:
		return "SRC"
	case tc32.FmtSB:
		return "SB"
	case tc32.FmtS0:
		return "S0"
	}
	return "?"
}

// Default renders the canonical TC32 description as XML — the file the
// repository ships as tc32.xml. It is generated from the implementation
// tables so the two can never drift.
func Default() []byte {
	d := march.Default()
	var b strings.Builder
	fmt.Fprintf(&b, "<processor name=%q clock-hz=\"%d\">\n", d.Name, d.ClockHz)
	fmt.Fprintf(&b, "  <pipeline dual-issue=\"true\">\n")
	fmt.Fprintf(&b, "    <load cycles=\"%d\"/>\n", d.LoadLat)
	fmt.Fprintf(&b, "    <mul cycles=\"%d\"/>\n", d.MulLat)
	fmt.Fprintf(&b, "    <divider block-cycles=\"%d\"/>\n", d.DivBlock)
	fmt.Fprintf(&b, "    <branch not-taken=\"%d\" taken=\"%d\" mispredict=\"%d\" direct=\"%d\" indirect=\"%d\"/>\n",
		d.Branch.NotTakenOK, d.Branch.TakenOK, d.Branch.Mispredict, d.Branch.Direct, d.Branch.Indirect)
	fmt.Fprintf(&b, "    <predictor backward-taken=\"%t\"/>\n", d.BackwardTaken)
	fmt.Fprintf(&b, "  </pipeline>\n")
	fmt.Fprintf(&b, "  <icache sets=\"%d\" ways=\"%d\" line-bytes=\"%d\" miss-penalty=\"%d\"/>\n",
		d.ICache.Sets, d.ICache.Ways, d.ICache.LineBytes, d.ICache.MissPenalty)
	fmt.Fprintf(&b, "  <bus io-wait-cycles=\"%d\"/>\n", d.IOWaitCycles)
	fmt.Fprintf(&b, "  <interrupts entry-cycles=\"%d\"/>\n", d.IRQEntryCycles)
	fmt.Fprintf(&b, "  <instructions>\n")
	for op := tc32.Op(1); op < tc32.NumOps; op++ {
		class := "IP"
		if d.TimingOf(op).Class == march.LS {
			class = "LS"
		}
		fmt.Fprintf(&b, "    <inst name=%q format=%q class=%q/>\n", op.String(), formatName(op.Format()), class)
	}
	fmt.Fprintf(&b, "  </instructions>\n</processor>\n")
	return []byte(b.String())
}
