package isadesc

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/march"
)

func TestDefaultRoundTrip(t *testing.T) {
	data := Default()
	d, err := Parse(data)
	if err != nil {
		t.Fatalf("parse generated description: %v\n%s", err, data)
	}
	want := march.Default()
	if !reflect.DeepEqual(d, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", d, want)
	}
}

func TestParseFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tc32.xml")
	if err := os.WriteFile(path, Default(), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "tc32" {
		t.Errorf("name = %q", d.Name)
	}
	if _, err := ParseFile(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestModifiedParameters(t *testing.T) {
	data := strings.Replace(string(Default()),
		`<icache sets="32"`, `<icache sets="64"`, 1)
	d, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if d.ICache.Sets != 64 {
		t.Errorf("sets = %d, want 64", d.ICache.Sets)
	}
}

func TestValidationErrors(t *testing.T) {
	base := string(Default())
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"unknown-inst", func(s string) string {
			return strings.Replace(s, `name="movi"`, `name="bogus"`, 1)
		}, "unknown instruction"},
		{"missing-inst", func(s string) string {
			i := strings.Index(s, `    <inst name="movi"`)
			j := strings.Index(s[i:], "\n")
			return s[:i] + s[i+j+1:]
		}, "missing from description"},
		{"wrong-class", func(s string) string {
			return strings.Replace(s, `<inst name="ld.w" format="LS" class="LS"`, `<inst name="ld.w" format="LS" class="IP"`, 1)
		}, "declared class"},
		{"wrong-format", func(s string) string {
			return strings.Replace(s, `<inst name="add" format="RR"`, `<inst name="add" format="RI"`, 1)
		}, "declared format"},
		{"bad-cache", func(s string) string {
			return strings.Replace(s, `sets="32"`, `sets="33"`, 1)
		}, "cache geometry"},
		{"bad-clock", func(s string) string {
			return strings.Replace(s, `clock-hz="48000000"`, `clock-hz="0"`, 1)
		}, "clock"},
		{"not-xml", func(s string) string { return "%%%" }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.mutate(base)))
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestDescribedInstructionCount(t *testing.T) {
	data := string(Default())
	n := strings.Count(data, "<inst ")
	// All TC32 operations must be described (69 ops as of this writing;
	// the exact count is asserted via round-trip validation, this is a
	// sanity floor).
	if n < 60 {
		t.Errorf("only %d instructions described", n)
	}
}
