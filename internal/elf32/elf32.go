// Package elf32 implements a minimal little-endian ELF32 object writer and
// reader, sufficient for carrying TC32 program images between the
// assembler (cmd/tcasm), the reference simulator, and the binary
// translator. The paper's translator reads "the object file, which is
// usually provided in ELF format"; this package plays that role.
//
// The subset implemented: ET_EXEC files with PROGBITS/NOBITS sections,
// a symbol table, and string tables. Files written by this package are
// also readable by the standard library's debug/elf (cross-checked in the
// tests).
package elf32

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// EMTc32 is the e_machine value used for TC32 images (from the
// EM_ vendor-reserved space).
const EMTc32 = 0x7C32

// Section types.
const (
	SHTProgbits = 1
	SHTSymtab   = 2
	SHTStrtab   = 3
	SHTNobits   = 8
)

// Section flags.
const (
	SHFWrite     = 0x1
	SHFAlloc     = 0x2
	SHFExecinstr = 0x4
)

// Section is one loadable or bookkeeping section.
type Section struct {
	Name  string
	Type  uint32
	Flags uint32
	Addr  uint32
	Data  []byte // nil for NOBITS; Size then gives the extent
	Size  uint32 // for NOBITS sections; ignored when Data != nil
}

// Symbol is a symbol-table entry.
type Symbol struct {
	Name    string
	Value   uint32
	Size    uint32
	Section string // name of the defining section ("" = absolute)
	Global  bool
}

// File is a TC32 ELF32 image.
type File struct {
	Entry    uint32
	Sections []Section
	Symbols  []Symbol
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Symbol returns the named symbol and whether it exists.
func (f *File) Symbol(name string) (Symbol, bool) {
	for _, s := range f.Symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

type strtab struct {
	buf bytes.Buffer
	off map[string]uint32
}

func newStrtab() *strtab {
	t := &strtab{off: map[string]uint32{}}
	t.buf.WriteByte(0)
	return t
}

func (t *strtab) add(s string) uint32 {
	if s == "" {
		return 0
	}
	if o, ok := t.off[s]; ok {
		return o
	}
	o := uint32(t.buf.Len())
	t.off[s] = o
	t.buf.WriteString(s)
	t.buf.WriteByte(0)
	return o
}

const (
	ehSize = 52
	shSize = 40
	stSize = 16
)

// Marshal serializes the file.
func (f *File) Marshal() ([]byte, error) {
	le := binary.LittleEndian

	// Section layout: [0] null, user sections, .symtab, .strtab, .shstrtab.
	shstr := newStrtab()
	str := newStrtab()

	type rawSection struct {
		nameOff uint32
		typ     uint32
		flags   uint32
		addr    uint32
		off     uint32
		size    uint32
		link    uint32
		info    uint32
		align   uint32
		entsize uint32
		data    []byte
	}
	var raws []rawSection
	raws = append(raws, rawSection{}) // SHN_UNDEF

	secIndex := map[string]uint32{}
	for _, s := range f.Sections {
		if _, dup := secIndex[s.Name]; dup {
			return nil, fmt.Errorf("elf32: duplicate section %q", s.Name)
		}
		secIndex[s.Name] = uint32(len(raws))
		size := uint32(len(s.Data))
		if s.Type == SHTNobits {
			size = s.Size
		}
		raws = append(raws, rawSection{
			nameOff: shstr.add(s.Name),
			typ:     s.Type,
			flags:   s.Flags,
			addr:    s.Addr,
			size:    size,
			align:   4,
			data:    s.Data,
		})
	}

	// Symbol table: local symbols first (required by ELF), then globals.
	syms := append([]Symbol(nil), f.Symbols...)
	sort.SliceStable(syms, func(i, j int) bool {
		return !syms[i].Global && syms[j].Global
	})
	firstGlobal := len(syms)
	for i, s := range syms {
		if s.Global {
			firstGlobal = i
			break
		}
	}
	var symData bytes.Buffer
	symData.Write(make([]byte, stSize)) // null symbol
	for _, s := range syms {
		var ent [stSize]byte
		le.PutUint32(ent[0:], str.add(s.Name))
		le.PutUint32(ent[4:], s.Value)
		le.PutUint32(ent[8:], s.Size)
		var bind byte
		if s.Global {
			bind = 1 // STB_GLOBAL
		}
		ent[12] = bind<<4 | 0   // STT_NOTYPE
		shndx := uint16(0xFFF1) // SHN_ABS
		if s.Section != "" {
			idx, ok := secIndex[s.Section]
			if !ok {
				return nil, fmt.Errorf("elf32: symbol %q references unknown section %q", s.Name, s.Section)
			}
			shndx = uint16(idx)
		}
		le.PutUint16(ent[14:], shndx)
		symData.Write(ent[:])
	}

	symtabIdx := uint32(len(raws))
	raws = append(raws, rawSection{
		nameOff: shstr.add(".symtab"),
		typ:     SHTSymtab,
		size:    uint32(symData.Len()),
		link:    symtabIdx + 1, // .strtab
		info:    uint32(firstGlobal) + 1,
		align:   4,
		entsize: stSize,
		data:    symData.Bytes(),
	})
	raws = append(raws, rawSection{
		nameOff: shstr.add(".strtab"),
		typ:     SHTStrtab,
		align:   1,
		data:    str.buf.Bytes(),
	})
	shstrIdx := uint32(len(raws))
	raws = append(raws, rawSection{
		nameOff: shstr.add(".shstrtab"),
		typ:     SHTStrtab,
		align:   1,
		data:    shstr.buf.Bytes(),
	})
	// Late-bound sizes for the string sections.
	raws[len(raws)-2].size = uint32(len(raws[len(raws)-2].data))
	raws[len(raws)-1].size = uint32(len(raws[len(raws)-1].data))

	// Assign file offsets.
	off := uint32(ehSize)
	for i := range raws {
		if raws[i].typ == 0 || raws[i].typ == SHTNobits || raws[i].data == nil {
			raws[i].off = off
			continue
		}
		off = (off + 3) &^ 3
		raws[i].off = off
		off += uint32(len(raws[i].data))
	}
	shoff := (off + 3) &^ 3

	var out bytes.Buffer
	// ELF header.
	hdr := make([]byte, ehSize)
	copy(hdr, []byte{0x7F, 'E', 'L', 'F', 1 /*ELFCLASS32*/, 1 /*LSB*/, 1 /*EV_CURRENT*/})
	le.PutUint16(hdr[16:], 2) // ET_EXEC
	le.PutUint16(hdr[18:], EMTc32)
	le.PutUint32(hdr[20:], 1) // EV_CURRENT
	le.PutUint32(hdr[24:], f.Entry)
	le.PutUint32(hdr[28:], 0) // no program headers
	le.PutUint32(hdr[32:], shoff)
	le.PutUint16(hdr[40:], ehSize)
	le.PutUint16(hdr[46:], shSize)
	le.PutUint16(hdr[48:], uint16(len(raws)))
	le.PutUint16(hdr[50:], uint16(shstrIdx))
	out.Write(hdr)

	// Section contents.
	for _, r := range raws {
		if r.typ == 0 || r.typ == SHTNobits || r.data == nil {
			continue
		}
		for uint32(out.Len()) < r.off {
			out.WriteByte(0)
		}
		out.Write(r.data)
	}
	for uint32(out.Len()) < shoff {
		out.WriteByte(0)
	}
	// Section header table.
	for _, r := range raws {
		var sh [shSize]byte
		le.PutUint32(sh[0:], r.nameOff)
		le.PutUint32(sh[4:], r.typ)
		le.PutUint32(sh[8:], r.flags)
		le.PutUint32(sh[12:], r.addr)
		le.PutUint32(sh[16:], r.off)
		le.PutUint32(sh[20:], r.size)
		le.PutUint32(sh[24:], r.link)
		le.PutUint32(sh[28:], r.info)
		le.PutUint32(sh[32:], r.align)
		le.PutUint32(sh[36:], r.entsize)
		out.Write(sh[:])
	}
	return out.Bytes(), nil
}

// Parse reads an ELF32 image produced by Marshal (or any conforming
// little-endian ELF32 executable with the sections this package supports).
func Parse(data []byte) (*File, error) {
	le := binary.LittleEndian
	if len(data) < ehSize {
		return nil, fmt.Errorf("elf32: file too short")
	}
	if !bytes.Equal(data[:4], []byte{0x7F, 'E', 'L', 'F'}) {
		return nil, fmt.Errorf("elf32: bad magic")
	}
	if data[4] != 1 || data[5] != 1 {
		return nil, fmt.Errorf("elf32: not a little-endian ELF32 file")
	}
	f := &File{Entry: le.Uint32(data[24:])}
	shoff := le.Uint32(data[32:])
	shnum := int(le.Uint16(data[48:]))
	shstrndx := int(le.Uint16(data[50:]))
	if shoff == 0 || shnum == 0 {
		return nil, fmt.Errorf("elf32: no section headers")
	}
	type rawSH struct {
		name, typ, flags, addr, off, size, link, info, entsize uint32
	}
	readSH := func(i int) (rawSH, error) {
		base := int(shoff) + i*shSize
		if base+shSize > len(data) {
			return rawSH{}, fmt.Errorf("elf32: section header %d out of bounds", i)
		}
		b := data[base:]
		return rawSH{
			name: le.Uint32(b[0:]), typ: le.Uint32(b[4:]), flags: le.Uint32(b[8:]),
			addr: le.Uint32(b[12:]), off: le.Uint32(b[16:]), size: le.Uint32(b[20:]),
			link: le.Uint32(b[24:]), info: le.Uint32(b[28:]), entsize: le.Uint32(b[36:]),
		}, nil
	}
	shs := make([]rawSH, shnum)
	for i := range shs {
		sh, err := readSH(i)
		if err != nil {
			return nil, err
		}
		shs[i] = sh
	}
	secData := func(sh rawSH) ([]byte, error) {
		if sh.typ == SHTNobits {
			return nil, nil
		}
		if int(sh.off)+int(sh.size) > len(data) {
			return nil, fmt.Errorf("elf32: section data out of bounds")
		}
		return data[sh.off : sh.off+sh.size], nil
	}
	getStr := func(tab []byte, off uint32) string {
		if int(off) >= len(tab) {
			return ""
		}
		end := bytes.IndexByte(tab[off:], 0)
		if end < 0 {
			return string(tab[off:])
		}
		return string(tab[off : int(off)+end])
	}
	if shstrndx >= shnum {
		return nil, fmt.Errorf("elf32: bad shstrndx")
	}
	shstr, err := secData(shs[shstrndx])
	if err != nil {
		return nil, err
	}
	names := make([]string, shnum)
	for i, sh := range shs {
		names[i] = getStr(shstr, sh.name)
	}
	var symtab, symstr []byte
	for i, sh := range shs {
		switch sh.typ {
		case SHTProgbits, SHTNobits:
			d, err := secData(sh)
			if err != nil {
				return nil, err
			}
			f.Sections = append(f.Sections, Section{
				Name:  names[i],
				Type:  sh.typ,
				Flags: sh.flags,
				Addr:  sh.addr,
				Data:  append([]byte(nil), d...),
				Size:  sh.size,
			})
		case SHTSymtab:
			d, err := secData(sh)
			if err != nil {
				return nil, err
			}
			symtab = d
			if int(sh.link) < shnum {
				symstr, err = secData(shs[sh.link])
				if err != nil {
					return nil, err
				}
			}
		}
	}
	for off := stSize; off+stSize <= len(symtab); off += stSize {
		b := symtab[off:]
		nameOff := le.Uint32(b[0:])
		shndx := le.Uint16(b[14:])
		sym := Symbol{
			Name:   getStr(symstr, nameOff),
			Value:  le.Uint32(b[4:]),
			Size:   le.Uint32(b[8:]),
			Global: b[12]>>4 == 1,
		}
		if int(shndx) < shnum && shndx != 0 && shndx < 0xFF00 {
			sym.Section = names[shndx]
		}
		if sym.Name != "" {
			f.Symbols = append(f.Symbols, sym)
		}
	}
	return f, nil
}
