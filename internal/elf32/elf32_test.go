package elf32

import (
	"bytes"
	"debug/elf"
	"testing"
)

func sample() *File {
	return &File{
		Entry: 0x0,
		Sections: []Section{
			{Name: ".text", Type: SHTProgbits, Flags: SHFAlloc | SHFExecinstr, Addr: 0, Data: []byte{1, 2, 3, 4, 5, 6}},
			{Name: ".data", Type: SHTProgbits, Flags: SHFAlloc | SHFWrite, Addr: 0x10000000, Data: []byte{9, 8, 7, 6}},
			{Name: ".bss", Type: SHTNobits, Flags: SHFAlloc | SHFWrite, Addr: 0x10000004, Size: 128},
		},
		Symbols: []Symbol{
			{Name: "_start", Value: 0, Section: ".text", Global: true},
			{Name: "buf", Value: 0x10000000, Section: ".data", Global: true},
			{Name: "local", Value: 4, Section: ".text"},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	want := sample()
	data, err := want.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != want.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, want.Entry)
	}
	for _, name := range []string{".text", ".data", ".bss"} {
		ws := want.Section(name)
		gs := got.Section(name)
		if gs == nil {
			t.Fatalf("section %s missing", name)
		}
		if gs.Addr != ws.Addr {
			t.Errorf("%s addr = %#x, want %#x", name, gs.Addr, ws.Addr)
		}
		if ws.Type == SHTNobits {
			if gs.Size != ws.Size {
				t.Errorf("%s size = %d, want %d", name, gs.Size, ws.Size)
			}
		} else if !bytes.Equal(gs.Data, ws.Data) {
			t.Errorf("%s data mismatch", name)
		}
	}
	if len(got.Symbols) != len(want.Symbols) {
		t.Fatalf("got %d symbols, want %d", len(got.Symbols), len(want.Symbols))
	}
	for _, ws := range want.Symbols {
		gs, ok := got.Symbol(ws.Name)
		if !ok {
			t.Fatalf("symbol %s missing", ws.Name)
		}
		if gs.Value != ws.Value || gs.Global != ws.Global || gs.Section != ws.Section {
			t.Errorf("symbol %s = %+v, want %+v", ws.Name, gs, ws)
		}
	}
}

func TestReadableByDebugELF(t *testing.T) {
	data, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f, err := elf.NewFile(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("debug/elf rejects our output: %v", err)
	}
	defer f.Close()
	if f.Machine != elf.Machine(EMTc32) {
		t.Errorf("machine = %v, want %#x", f.Machine, EMTc32)
	}
	text := f.Section(".text")
	if text == nil {
		t.Fatal("debug/elf cannot find .text")
	}
	d, err := text.Data()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, []byte{1, 2, 3, 4, 5, 6}) {
		t.Error(".text contents mismatch via debug/elf")
	}
	syms, err := f.Symbols()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range syms {
		if s.Name == "_start" {
			found = true
		}
	}
	if !found {
		t.Error("debug/elf cannot find _start symbol")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Parse(make([]byte, 100)); err == nil {
		t.Error("zero bytes should fail (bad magic)")
	}
	data, err := sample().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the class byte.
	bad := append([]byte(nil), data...)
	bad[4] = 2
	if _, err := Parse(bad); err == nil {
		t.Error("ELF64 class should be rejected")
	}
	// Truncated section headers.
	if _, err := Parse(data[:len(data)-10]); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	f := &File{Sections: []Section{
		{Name: ".text", Type: SHTProgbits},
		{Name: ".text", Type: SHTProgbits},
	}}
	if _, err := f.Marshal(); err == nil {
		t.Error("duplicate sections should be rejected")
	}
}

func TestUnknownSymbolSectionRejected(t *testing.T) {
	f := &File{Symbols: []Symbol{{Name: "x", Section: ".nosuch"}}}
	if _, err := f.Marshal(); err == nil {
		t.Error("symbol with unknown section should be rejected")
	}
}

func TestSectionLookup(t *testing.T) {
	f := sample()
	if f.Section(".nosuch") != nil {
		t.Error("Section(.nosuch) should be nil")
	}
	if _, ok := f.Symbol("nosuch"); ok {
		t.Error("Symbol(nosuch) should not exist")
	}
}
