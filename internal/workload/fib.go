package workload

import "fmt"

// fibN is tuned so the executed instruction count lands near the paper's
// Table 2 value for fibonacci (41419 instructions).
const fibN = 16

// Fibonacci builds the naively recursive Fibonacci benchmark used in the
// paper's Table 2 runtime comparison: call/return dominated with very
// short basic blocks.
func Fibonacci() Workload {
	src := prologue
	src += fmt.Sprintf(`	movi	d0, %d
	call	fib
`, fibN)
	src += emit(0)
	src += `	halt

; fib: d0 = fib(d0), naive recursion in unoptimized-compiler style:
; every activation builds a frame and reloads n from the stack.
fib:	addi.a	sp, sp, -12
	st.a	ra, 8(sp)
	st.w	d0, 0(sp)	; spill n
	movi	d1, 2
	jge	d0, d1, fib_rec
	ld.w	d0, 0(sp)	; base case: return n
	ld.a	ra, 8(sp)
	addi.a	sp, sp, 12
	ret
fib_rec:
	ld.w	d0, 0(sp)
	addi	d0, d0, -1
	call	fib
	st.w	d0, 4(sp)	; spill fib(n-1)
	ld.w	d0, 0(sp)
	addi	d0, d0, -2
	call	fib
	ld.w	d1, 4(sp)
	add	d0, d0, d1
	ld.a	ra, 8(sp)
	addi.a	sp, sp, 12
	ret
`
	return Workload{
		Name:              "fibonacci",
		Description:       "naive recursive Fibonacci (call/return dominated)",
		Source:            src,
		Expected:          []uint32{uint32(fibRef(fibN))},
		PaperInstructions: 41419,
	}
}

func fibRef(n int32) int32 {
	if n < 2 {
		return n
	}
	return fibRef(n-1) + fibRef(n-2)
}
