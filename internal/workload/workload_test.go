package workload

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/tc32asm"
)

// runRef assembles and runs a workload on the reference simulator.
func runRef(t *testing.T, w Workload, accurate bool) *iss.Sim {
	t.Helper()
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatalf("%s: assemble: %v", w.Name, err)
	}
	s, err := iss.New(f, iss.Config{CycleAccurate: accurate})
	if err != nil {
		t.Fatalf("%s: new sim: %v", w.Name, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	return s
}

func TestAllWorkloadsProduceExpectedOutput(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s := runRef(t, w, false)
			got := s.Output()
			if len(got) != len(w.Expected) {
				t.Fatalf("output %v, want %v", got, w.Expected)
			}
			for i := range got {
				if got[i] != w.Expected[i] {
					t.Errorf("out[%d] = %#x (%d), want %#x (%d)",
						i, got[i], int32(got[i]), w.Expected[i], int32(w.Expected[i]))
				}
			}
		})
	}
}

func TestCycleAccurateRunsMatchFunctionalResults(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			fast := runRef(t, w, false)
			slow := runRef(t, w, true)
			if fast.Arch.Retired != slow.Arch.Retired {
				t.Errorf("retired differs: %d vs %d", fast.Arch.Retired, slow.Arch.Retired)
			}
			fo, so := fast.Output(), slow.Output()
			if len(fo) != len(so) {
				t.Fatalf("output length differs")
			}
			for i := range fo {
				if fo[i] != so[i] {
					t.Errorf("out[%d] differs: %#x vs %#x", i, fo[i], so[i])
				}
			}
			st := slow.Stats()
			if st.Cycles < st.Retired/2 {
				t.Errorf("cycles %d implausibly low for %d instructions", st.Cycles, st.Retired)
			}
		})
	}
}

func TestInstructionCountsNearPaper(t *testing.T) {
	// Table 2 of the paper reports executed instruction counts for gcd,
	// fibonacci and sieve. Our workloads are tuned to land within 15% so
	// the runtime comparison is meaningful.
	for _, w := range All() {
		if w.PaperInstructions == 0 {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			s := runRef(t, w, false)
			got := s.Arch.Retired
			lo := w.PaperInstructions * 85 / 100
			hi := w.PaperInstructions * 115 / 100
			if got < lo || got > hi {
				t.Errorf("retired %d instructions, want within 15%% of %d", got, w.PaperInstructions)
			}
			t.Logf("%s: %d instructions (paper: %d)", w.Name, got, w.PaperInstructions)
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"gcd", "dpcm", "fir", "ellip", "sieve", "subband", "fibonacci"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("workload %s missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
	if len(Six()) != 6 {
		t.Errorf("Six() returned %d workloads", len(Six()))
	}
	if len(Names()) != 7 {
		t.Errorf("Names() returned %d", len(Names()))
	}
}

func TestWorkloadsHaveDistinctBlockProfiles(t *testing.T) {
	// ellip and subband must have larger average basic blocks than gcd
	// and sieve — this is the property driving Figure 5's shape.
	avgBlock := func(w Workload) float64 {
		s := runRef(t, w, true)
		st := s.Stats()
		branches := st.CondBranches
		if branches == 0 {
			return float64(st.Retired)
		}
		return float64(st.Retired) / float64(branches)
	}
	gcd, _ := ByName("gcd")
	sieve, _ := ByName("sieve")
	ellip, _ := ByName("ellip")
	subband, _ := ByName("subband")
	small := (avgBlock(gcd) + avgBlock(sieve)) / 2
	large := (avgBlock(ellip) + avgBlock(subband)) / 2
	if large < 3*small {
		t.Errorf("large-block workloads (%.1f) not clearly larger than small-block (%.1f)", large, small)
	}
}
