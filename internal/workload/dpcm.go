package workload

import "fmt"

const dpcmSamples = 128

// DPCM builds a differential PCM encoder: per-sample predict, quantize
// with clamping (data-dependent branches), dequantize and update — one of
// the paper's two "part of audio decoding routines" kernels, with a mix of
// arithmetic and short conditional blocks. The sample loop uses the 16-bit
// counter instructions, so the text section has mixed 16/32-bit encodings.
func DPCM() Workload {
	rng := lcg(0xD9C3)
	input := make([]int32, dpcmSamples)
	for i := range input {
		input[i] = rng.sample(2048)
	}

	src := prologue
	src += fmt.Sprintf(`	la	a2, input
	movi	d8, 0		; checksum
	movi	d1, 0		; predictor
	movi	d9, -8		; clamp low
	movi	d10, 7		; clamp high
	movi	d15, %d		; sample count (16-bit loop counter)
	lea	a4, 0(a2)
loop:	ld.w	d0, 0(a4)
	addi.a	a4, a4, 4
	sub	d2, d0, d1	; diff
	sari	d3, d2, 3	; quantize
	jge	d3, d9, qlo_ok
	mov	d3, d9
qlo_ok:	jge	d10, d3, qhi_ok
	mov	d3, d10
qhi_ok:	shli	d4, d3, 3	; dequantize
	add	d1, d1, d4	; predictor update
	andi	d5, d3, 15	; 4-bit code
	add	d8, d8, d5
	shli	d8, d8, 1	; fold codes into checksum
	addi16	d15, -1
	jnz16	loop
`, dpcmSamples)
	src += emit(8)
	src += emit(1) // final predictor value
	src += "\thalt\n\t.data\n"
	src += wordTable("input", input)

	sum, pred := dpcmRef(input)
	return Workload{
		Name:        "dpcm",
		Description: "DPCM encoder with quantizer clamping (audio coding kernel)",
		Source:      src,
		Expected:    []uint32{uint32(sum), uint32(pred)},
	}
}

func dpcmRef(input []int32) (checksum, pred int32) {
	for _, x := range input {
		diff := x - pred
		q := diff >> 3
		if q < -8 {
			q = -8
		}
		if q > 7 {
			q = 7
		}
		pred += q << 3
		checksum += q & 15
		checksum <<= 1
	}
	return checksum, pred
}
