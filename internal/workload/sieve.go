package workload

import "fmt"

// sieveN is tuned so the executed instruction count lands near the paper's
// Table 2 value for sieve (20779 instructions).
const sieveN = 1180

// Sieve builds the sieve of Eratosthenes benchmark. It consists of many
// small basic blocks, which is exactly why the paper's Figure 5 shows the
// largest cycle-annotation overhead for it.
func Sieve() Workload {
	src := prologue
	src += fmt.Sprintf(`	la	a2, flags
	li	d1, %d		; N
	; clear the flag array
	movi	d0, 0
	mov	d2, d1
	lea	a3, 0(a2)
clear:	st.b	d0, 0(a3)
	addi.a	a3, a3, 1
	addi	d2, d2, -1
	jnz	d2, clear
	; sieve
	movi	d3, 2		; i
	movi	d7, 0		; prime count
outer:	mov.a	a4, d3
	add.a	a4, a2, a4
	ld.bu	d5, 0(a4)
	jnz	d5, next	; composite
	addi	d7, d7, 1	; count++
	mul	d4, d3, d3	; j = i*i
	jge	d4, d1, next
	movi	d6, 1
inner:	mov.a	a5, d4
	add.a	a5, a2, a5
	st.b	d6, 0(a5)
	add	d4, d4, d3
	jlt	d4, d1, inner
next:	addi	d3, d3, 1
	jlt	d3, d1, outer
`, sieveN)
	src += emit(7)
	src += `	halt
	.bss
flags:	.space	` + fmt.Sprint(sieveN) + "\n"

	return Workload{
		Name:              "sieve",
		Description:       "sieve of Eratosthenes (many small basic blocks)",
		Source:            src,
		Expected:          []uint32{uint32(sieveRef(sieveN))},
		PaperInstructions: 20779,
	}
}

func sieveRef(n int) int {
	flags := make([]bool, n)
	count := 0
	for i := 2; i < n; i++ {
		if flags[i] {
			continue
		}
		count++
		for j := i * i; j < n; j += i {
			flags[j] = true
		}
	}
	return count
}
