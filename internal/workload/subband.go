package workload

import "fmt"

const (
	sbTaps  = 8
	sbPairs = 32 // number of output sample pairs
)

// Subband builds a two-band QMF analysis filterbank: per output pair one
// fully unrolled 8-tap low-band/high-band computation — the paper's second
// audio kernel, with very large basic blocks (the whole pair body is one
// straight-line block of ~50 instructions).
func Subband() Workload {
	rng := lcg(0x5BB5)
	input := make([]int32, 2*sbPairs+sbTaps)
	for i := range input {
		input[i] = rng.sample(1024)
	}
	coeff := make([]int32, sbTaps)
	for i := range coeff {
		coeff[i] = rng.sample(256)
	}

	src := prologue
	src += fmt.Sprintf(`	la	a2, input
	la	a3, coeff
	movi	d5, 0		; checksum
	movi	d6, 0		; pair index k
	movi	d7, %d		; pair count
pair:	shli	d8, d6, 3	; byte offset of x[2k]
	mov.a	a4, d8
	add.a	a4, a2, a4	; &x[2k]
	movi	d0, 0		; low accumulator
	movi	d1, 0		; high accumulator
`, sbPairs)
	for i := 0; i < sbTaps; i++ {
		src += fmt.Sprintf("\tld.w\td2, %d(a4)\n", 4*i)
		src += fmt.Sprintf("\tld.w\td3, %d(a3)\n", 4*i)
		src += "\tmul\td4, d2, d3\n"
		src += "\tadd\td0, d0, d4\n"
		if i%2 == 0 {
			src += "\tadd\td1, d1, d4\n"
		} else {
			src += "\tsub\td1, d1, d4\n"
		}
	}
	src += `	sari	d0, d0, 4
	sari	d1, d1, 4
	add	d5, d5, d0
	add	d5, d5, d1
	addi	d6, d6, 1
	jlt	d6, d7, pair
`
	src += emit(5)
	src += "\thalt\n\t.data\n"
	src += wordTable("input", input)
	src += wordTable("coeff", coeff)

	return Workload{
		Name:        "subband",
		Description: "two-band QMF analysis filterbank, unrolled taps (very large basic blocks)",
		Source:      src,
		Expected:    []uint32{uint32(subbandRef(input, coeff))},
		LargeBlocks: true,
	}
}

func subbandRef(input, coeff []int32) int32 {
	var sum int32
	for k := 0; k < sbPairs; k++ {
		var low, high int32
		for i := 0; i < sbTaps; i++ {
			p := mul32(input[2*k+i], coeff[i])
			low += p
			if i%2 == 0 {
				high += p
			} else {
				high -= p
			}
		}
		sum += low>>4 + high>>4
	}
	return sum
}
