package workload

import (
	"fmt"

	"repro/internal/socbus"
)

// This file holds the interrupt-driven multi-core workloads: the same
// cooperation patterns as the polling mc-* set, but synchronized through
// the interrupt controller (doorbell IRQs, software IPI lines, periodic
// timer lines) and wfi instead of spin loops.
//
// Conventions shared by all three workloads:
//
//   - `__irq` is the single handler entry; handlers use only registers
//     the main program never touches (d13, d14 and a7), which makes them
//     interrupt-transparent with nothing to save or restore.
//   - a8 points at the core's own interrupt-controller register block,
//     a9 at a private cell area the handler publishes event state into.
//   - Event waits are masked check-then-sleep loops: di, read the
//     handler's cell, and only if nothing new arrived execute wfi. With
//     interrupts masked no handler can consume an event between the
//     check and the wfi, and a masked wfi still wakes when the line
//     asserts (without delivering), so the wait is race-free; the ei on
//     the wake path lets the pending interrupt deliver at the next
//     block boundary.
//   - Outputs are event-count- or handshake-determined, never
//     wake-timing-determined, so they are identical across engines,
//     scheduling quanta and arbitration policies.
//
// The code is also written to be exactly statically predictable at
// detail level 3 (no load-use dependency or pairable IP/LS pair
// straddling a cycle-region split), so the SoC differential tests can
// pin cycle counts bit-identical between ISS and translated cores.

// Fixed problem sizes.
const (
	mcIRQPingPongRounds = 8
	mcIRQTimerTicks     = 6
	mcIRQTimerPeriod    = 97
	mcIRQWorkIters      = 8
)

// mcIRQPrologue extends the multi-core prologue with the interrupt
// bases: a8 = this core's controller block, a7 = controller base (block
// of core 0), a9 = private IRQ cell area.
func mcIRQPrologue(core int) string {
	return mcPrologue() + fmt.Sprintf(`	la	a8, %#x	; own IRQ register block
	la	a7, %#x	; IRQ controller base
	la	a9, icells	; handler cell area
`, uint32(socbus.IRQCtrlBase)+uint32(core*socbus.IRQStride), uint32(socbus.IRQCtrlBase))
}

// mcIRQEnable emits the interrupt-enable sequence: controller line mask,
// then the core-level ei.
func mcIRQEnable(mask int) string {
	return fmt.Sprintf(`	movi	d0, %d
	st.w	d0, 4(a8)	; ENABLE lines
	ei
`, mask)
}

// MCIRQPingPong is the doorbell-driven producer/consumer ring: the token
// of mc-pingpong, but every core sleeps in wfi and is woken by the
// doorbell interrupt its mailbox post raises; the handler claims the
// line, pops the token and publishes it (and a receive count) for the
// main loop. Requires at least 2 cores.
func MCIRQPingPong(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-irq-pingpong",
		Description: fmt.Sprintf("doorbell-IRQ token ring, %d round trips across %d cores", mcIRQPingPongRounds, cores),
	}
	r := mcIRQPingPongRounds
	for c := 0; c < cores; c++ {
		next := (c + 1) % cores
		mySlot := c * socbus.SlotStride
		nextSlot := next * socbus.SlotStride
		src := mcIRQPrologue(c)
		src += mcIRQEnable(1 << socbus.LineDoorbell)
		if c == 0 {
			src += fmt.Sprintf(`	movi	d0, 1
	st.w	d0, %d(a13)	; seed token to core %d
`, nextSlot, next)
		}
		src += fmt.Sprintf(`	li	d6, %d		; rounds
	movi	d5, 0		; processed count
recv:	di			; masked check-then-sleep
	lea	a4, 0(a9)
	ld.w	d2, 0(a9)	; received count (handler cell)
	lea	a4, 0(a9)
	jeq	d2, d5, dowfi	; nothing new: sleep
	ld.w	d1, 4(a9)	; token snapshot, still masked
	lea	a4, 0(a9)
	ei
	addi	d5, d5, 1
`, r)
		if c == 0 {
			src += fmt.Sprintf(`	jge	d5, d6, done	; last round: keep the token
	addi	d0, d1, 1
	st.w	d0, %d(a13)	; forward
	j	recv
`, nextSlot)
		} else {
			src += fmt.Sprintf(`	addi	d0, d1, 1
	st.w	d0, %d(a13)	; forward
	jlt	d5, d6, recv
	j	done
`, nextSlot)
		}
		src += fmt.Sprintf(`dowfi:	wfi			; masked: wakes on the line, no delivery
	ei			; pending interrupt delivers at recv
	j	recv
done:	st.w	d1, 0(a15)	; last token seen
	st.w	d5, 0(a15)	; rounds processed
	halt
__irq:	ld.w	d13, 16(a8)	; CLAIM (acks the doorbell)
	ld.w	d13, %d(a13)	; pop the token
	lea	a7, 0(a7)	; cover the pop's load latency
	st.w	d13, 4(a9)	; publish token
	addi	d14, d14, 1	; receive count
	st.w	d14, 0(a9)	; publish count
	reti
	.bss
icells:	.space	8
`, mySlot)
		last := uint32(r * cores)
		if c > 0 {
			last = uint32((r-1)*cores + c)
		}
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-irq-pingpong.c%d", c),
			Description: "doorbell-IRQ ring node",
			Source:      src,
			Expected:    []uint32{last, uint32(r)},
		})
	}
	return mw
}

// MCIRQBarrier is the interrupt barrier: every core computes a private
// sum, arrives (atomic counter add + soft-IPI to core 0) and sleeps in
// wfi; core 0's handler counts arrivals through the counter bank and, on
// the last one, broadcasts a release IPI to every core (itself
// included). Requires at least 2 cores.
func MCIRQBarrier(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-irq-barrier",
		Description: fmt.Sprintf("IRQ barrier: %d cores arrive by soft IPI, core 0 broadcasts the release", cores),
	}
	arriveMask := 1 << socbus.LineSoft0
	releaseMask := 1 << socbus.LineSoft1
	for c := 0; c < cores; c++ {
		enable := releaseMask
		if c == 0 {
			enable |= arriveMask
		}
		src := mcIRQPrologue(c)
		src += mcIRQEnable(enable)
		src += fmt.Sprintf(`	li	d7, %d		; private term
	movi	d2, 0
	movi	d3, %d		; iterations
work:	add	d2, d2, d7
	addi	d3, d3, -1
	jnz	d3, work
	movi	d0, 1
	st.w	d0, 0(a14)	; arrive: counter[0] += 1
	movi	d0, %d
	st.w	d0, 12(a7)	; raise the arrival IPI on core 0
bwait:	di			; masked check-then-sleep
	lea	a4, 0(a9)
	ld.w	d5, 0(a9)	; released?
	lea	a4, 0(a9)
	jnz	d5, brel
	wfi			; masked: wakes on the line, no delivery
	ei			; pending interrupt delivers at bwait
	j	bwait
brel:	ld.w	d6, 0(a14)	; arrivals (== core count); still masked
	lea	a4, 0(a9)
	st.w	d2, 0(a15)	; private sum
	st.w	d6, 0(a15)	; observed arrivals
	halt
`, 3*(c+1), mcIRQWorkIters, arriveMask)
		if c == 0 {
			src += fmt.Sprintf(`__irq:	ld.w	d13, 16(a8)	; CLAIM
	lea	a7, 0(a7)	; cover the claim's load latency
	eqi	d14, d13, %d	; release line?
	jnz	d14, hrel
	ld.w	d13, 0(a14)	; arrivals so far
	lea	a7, 0(a7)
	eqi	d14, d13, %d
	jz	d14, hout	; not everyone yet
	movi	d13, %d
`, socbus.LineSoft1+1, cores, releaseMask)
			for j := 0; j < cores; j++ {
				src += fmt.Sprintf("\tst.w\td13, %d(a7)\t; release core %d\n", j*socbus.IRQStride+socbus.IRQRegRaise, j)
			}
			src += `hout:	reti
hrel:	movi	d13, 1
	st.w	d13, 0(a9)	; released
	reti
`
		} else {
			src += `__irq:	ld.w	d13, 16(a8)	; CLAIM (release IPI)
	movi	d13, 1
	st.w	d13, 0(a9)	; released
	reti
`
		}
		src += "\t.bss\nicells:\t.space\t8\n"
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-irq-barrier.c%d", c),
			Description: "IRQ barrier node",
			Source:      src,
			Expected:    []uint32{uint32(mcIRQWorkIters * 3 * (c + 1)), uint32(cores)},
		})
	}
	return mw
}

// MCIRQTimer is the timer-tick preemption counter: each core programs
// its periodic timer line and sleeps in wfi; the handler counts ticks,
// saturating at the target so the observed count is identical for every
// quantum and engine; the main loop disables the timer and reports once
// the target is reached.
func MCIRQTimer(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-irq-timer",
		Description: fmt.Sprintf("periodic timer IRQs every %d cycles, %d ticks per core", mcIRQTimerPeriod, mcIRQTimerTicks),
	}
	for c := 0; c < cores; c++ {
		src := mcIRQPrologue(c)
		src += mcIRQEnable(1 << socbus.LineTimer)
		src += fmt.Sprintf(`	li	d1, %d		; tick target
	li	d0, %d		; period
	st.w	d0, 20(a8)	; TIMER = period
tloop:	di			; masked check-then-sleep
	lea	a4, 0(a9)
	ld.w	d2, 0(a9)	; ticks observed
	lea	a4, 0(a9)
	jge	d2, d1, tdone
	wfi			; masked: wakes on the line, no delivery
	ei			; pending tick delivers at tloop
	j	tloop
tdone:	movi	d0, 0
	st.w	d0, 20(a8)	; timer off; still masked
	li	d3, %d
	st.w	d3, 0(a15)	; core id
	st.w	d2, 0(a15)	; tick count (saturated)
	halt
__irq:	ld.w	d13, 16(a8)	; CLAIM (acks the timer line)
	lti	d13, d14, %d	; below target?
	add	d14, d14, d13	; saturating increment
	st.w	d14, 0(a9)	; publish
	reti
	.bss
icells:	.space	8
`, mcIRQTimerTicks, mcIRQTimerPeriod, c, mcIRQTimerTicks)
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-irq-timer.c%d", c),
			Description: "timer-tick preemption counter",
			Source:      src,
			Expected:    []uint32{uint32(c), uint32(mcIRQTimerTicks)},
		})
	}
	return mw
}
