package workload

import "fmt"

const ellipSamples = 64

// ellipC13 and ellipC2 are the adaptor coefficients of the three filter
// sections (sections 1 and 3 share a coefficient register because the TC32
// register file is fully occupied by filter state).
const (
	ellipC13 = 53
	ellipC2  = 91
)

// Ellip builds an elliptic-filter-style cascade of three wave-digital
// adaptor sections. Each sample is processed by one large straight-line
// basic block (~32 instructions), which is why the paper reports
// especially good translated speed for ellip: few cycle-generation
// instructions and good VLIW parallelization.
func Ellip() Workload {
	rng := lcg(0xBEEF)
	input := make([]int32, ellipSamples)
	for i := range input {
		input[i] = rng.sample(1024)
	}

	src := prologue
	src += fmt.Sprintf(`	la	a2, input
	movi	d11, %d		; coeff sections 1 and 3
	movi	d12, %d		; coeff section 2
	movi	d13, 0		; checksum
	movi	d14, 0		; sample index
	movi	d15, %d		; sample count
	movi	d1, 0
	movi	d2, 0
	movi	d3, 0
	movi	d4, 0
	movi	d5, 0
	movi	d6, 0
loop:	shli	d7, d14, 2
	mov.a	a4, d7
	add.a	a4, a2, a4
	ld.w	d0, 0(a4)	; x
	; section 1 (state d1,d2)
	add	d7, d0, d1
	sub	d8, d7, d2
	mul	d9, d8, d11
	sari	d9, d9, 7
	add	d10, d9, d2
	sub	d2, d7, d9
	mov	d1, d10
	add	d0, d10, d9
	; section 2 (state d3,d4)
	add	d7, d0, d3
	sub	d8, d7, d4
	mul	d9, d8, d12
	sari	d9, d9, 7
	add	d10, d9, d4
	sub	d4, d7, d9
	mov	d3, d10
	add	d0, d10, d9
	; section 3 (state d5,d6)
	add	d7, d0, d5
	sub	d8, d7, d6
	mul	d9, d8, d11
	sari	d9, d9, 7
	add	d10, d9, d6
	sub	d6, d7, d9
	mov	d5, d10
	add	d0, d10, d9
	sari	d0, d0, 2
	add	d13, d13, d0
	addi	d14, d14, 1
	jlt	d14, d15, loop
`, ellipC13, ellipC2, ellipSamples)
	src += emit(13)
	src += "\thalt\n\t.data\n"
	src += wordTable("input", input)

	return Workload{
		Name:        "ellip",
		Description: "elliptic-style wave digital filter cascade (large basic blocks)",
		Source:      src,
		Expected:    []uint32{uint32(ellipRef(input))},
		LargeBlocks: true,
	}
}

func ellipRef(input []int32) int32 {
	var s1, s2, s3, s4, s5, s6, sum int32
	section := func(x, sA, sB, c int32) (y, sAn, sBn int32) {
		t0 := x + sA
		t1 := t0 - sB
		p := mul32(t1, c) >> 7
		u := p + sB
		sBn = t0 - p
		sAn = u
		y = u + p
		return
	}
	for _, x := range input {
		var y int32
		y, s1, s2 = section(x, s1, s2, ellipC13)
		y, s3, s4 = section(y, s3, s4, ellipC2)
		y, s5, s6 = section(y, s5, s6, ellipC13)
		sum += y >> 2
	}
	return sum
}
