// Package workload provides the benchmark programs of the paper's
// evaluation: gcd, dpcm, fir, ellip, sieve and subband (Figures 5 and 6,
// Table 1) plus fibonacci (Table 2). Each workload is a complete TC32
// assembly program together with its expected debug-port output, computed
// by an independent Go reference implementation of the same algorithm.
//
// The program mix mirrors the paper: gcd and sieve are control-flow
// dominated (many small basic blocks), fir and ellip are filters, dpcm and
// subband are audio-coding kernels (ellip and subband with large basic
// blocks that parallelize well on the VLIW target).
package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string // TC32 assembly
	Expected    []uint32
	// PaperInstructions is the executed-instruction count the paper
	// reports for this program in Table 2 (0 if not reported).
	PaperInstructions int64
	// LargeBlocks marks the programs the paper calls out as consisting
	// of large basic blocks (good VLIW parallelization).
	LargeBlocks bool
}

// prologue returns the common program entry: stack setup and the debug
// port pointer in a15.
const prologue = `	.text
	.global _start
_start:	movh.a	sp, 0x1010	; stack top = 0x10100000
	la	a15, 0xF0000F00	; debug output port
`

// emit writes d-register rd to the debug port.
func emit(rd int) string {
	return fmt.Sprintf("\tst.w\td%d, 0(a15)\n", rd)
}

// wordTable renders label: .word v0, v1, ... lines (8 values per line).
func wordTable(label string, vals []int32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", label)
	for i, v := range vals {
		if i%8 == 0 {
			if i > 0 {
				b.WriteString("\n")
			}
			b.WriteString("\t.word\t")
		} else {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString("\n")
	return b.String()
}

// lcg is a tiny deterministic pseudo-random generator used to build input
// tables (both in the assembly source and in the Go reference).
type lcg uint32

func (l *lcg) next() uint32 {
	*l = lcg(uint32(*l)*1664525 + 1013904223)
	return uint32(*l)
}

// sample returns a small signed sample in [-amp, amp).
func (l *lcg) sample(amp int32) int32 {
	return int32(l.next()%(2*uint32(amp))) - amp
}

// mul32 is the TC32 mul semantic: low 32 bits of the product.
func mul32(a, b int32) int32 { return int32(uint32(a) * uint32(b)) }

// All returns every workload, in the paper's presentation order.
func All() []Workload {
	return []Workload{
		GCD(),
		DPCM(),
		FIR(),
		Ellip(),
		Sieve(),
		Subband(),
		Fibonacci(),
	}
}

// Six returns the six programs of Figures 5/6 and Table 1 (no fibonacci).
func Six() []Workload {
	all := All()
	out := make([]Workload, 0, 6)
	for _, w := range all {
		if w.Name != "fibonacci" {
			out = append(out, w)
		}
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// SameOutput checks a simulator's debug-port output against the
// expected vector. It is the single functional-equivalence check shared
// by the direct measurement path (repro.Measure) and the simulation
// farm, so the two paths can never diverge on what counts as a match.
func SameOutput(got, want []uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("output mismatch: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("output[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	return nil
}

// Names returns all workload names, sorted.
func Names() []string {
	var names []string
	for _, w := range All() {
		names = append(names, w.Name)
	}
	sort.Strings(names)
	return names
}
