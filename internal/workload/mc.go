package workload

import (
	"fmt"

	"repro/internal/socbus"
)

// This file holds the multi-core workloads of the SoC simulator
// (internal/soc): per-core TC32 programs that cooperate through the
// shared bus devices — shared memory, the mailbox block and the atomic
// counter bank. Each core's program carries its own expected debug-port
// output, computed by an independent Go reference of the whole
// multi-core algorithm, so every core is functionally verified on its
// own port.
//
// All four workloads are race-free by construction: cross-core values
// flow only through barrier- or doorbell-ordered accesses, so the
// functional results are independent of the scheduling quantum and of
// the bus-arbitration policy. That property is what the SoC simulator's
// quantum-equivalence tests (and the cabt-soc CI smoke) rely on.

// MultiWorkload is one multi-core benchmark: one program (plus expected
// output) per core.
type MultiWorkload struct {
	Name        string
	Description string
	Cores       []Workload
}

// Fixed problem sizes of the multi-core workloads (small enough for
// quantum=1 lockstep runs in tests, large enough to exercise the bus).
const (
	mcSieveN        = 600 // sieve range, sharded across cores
	mcFIRSamples    = 48  // per-core FIR samples
	mcFIRTaps       = 8
	mcPingPongRound = 8  // full ring round trips
	mcContentionK   = 32 // stores per core to the contended counter
)

// mcPrologue extends the common prologue with the inter-core device
// base registers: a12 shared memory, a13 mailbox block, a14 counters.
func mcPrologue() string {
	return prologue + fmt.Sprintf(`	la	a12, %#x	; shared RAM
	la	a13, %#x	; mailboxes
	la	a14, %#x	; atomic counters
`, uint32(socbus.SharedRAMBase), uint32(socbus.MailboxBase), uint32(socbus.CounterBase))
}

// barrierArrive emits the barrier-arrival sequence: counter[0] += 1.
// (Counter writes add atomically; the bus serializes them.)
const barrierArrive = `	movi	d0, 1
	st.w	d0, 0(a14)
`

// reduceOnCore0 emits core 0's reduction tail: wait until counter[0]
// reaches n (every core arrived), then sum shared[0..n) and emit the
// total.
func reduceOnCore0(n int) string {
	src := fmt.Sprintf(`	li	d1, %d		; expected arrivals
barr:	ld.w	d0, 0(a14)
	jne	d0, d1, barr
	movi	d2, 0
`, n)
	for k := 0; k < n; k++ {
		src += fmt.Sprintf("\tld.w\td0, %d(a12)\n\tadd\td2, d2, d0\n", 4*k)
	}
	src += emit(2)
	return src
}

// MCShardedSieve is the sharded sieve of Eratosthenes: every core sieves
// the full range privately but counts the primes of its own shard, emits
// the partial count, publishes it in shared memory, and arrives at the
// barrier; core 0 then reduces the shards to the total prime count.
func MCShardedSieve(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-sieve",
		Description: fmt.Sprintf("sharded sieve of %d across %d cores, reduction through shared memory", mcSieveN, cores),
	}
	total := 0
	counts := make([]int, cores)
	for c := 0; c < cores; c++ {
		lo, hi := mcShard(c, cores, 2, mcSieveN)
		counts[c] = mcPrimesInRange(mcSieveN, lo, hi)
		total += counts[c]
	}
	for c := 0; c < cores; c++ {
		lo, hi := mcShard(c, cores, 2, mcSieveN)
		src := mcPrologue()
		src += fmt.Sprintf(`	la	a2, flags
	li	d1, %d		; N
	li	d8, %d		; shard lo
	li	d9, %d		; shard hi
	movi	d0, 0
	mov	d2, d1
	lea	a3, 0(a2)
clear:	st.b	d0, 0(a3)
	addi.a	a3, a3, 1
	addi	d2, d2, -1
	jnz	d2, clear
	movi	d3, 2		; i
	movi	d7, 0		; shard prime count
outer:	mov.a	a4, d3
	add.a	a4, a2, a4
	ld.bu	d5, 0(a4)
	jnz	d5, next	; composite
	jlt	d3, d8, mark	; prime below the shard: mark only
	jge	d3, d9, mark	; prime above the shard: mark only
	addi	d7, d7, 1
mark:	mul	d4, d3, d3	; j = i*i
	jge	d4, d1, next
	movi	d6, 1
inner:	mov.a	a5, d4
	add.a	a5, a2, a5
	st.b	d6, 0(a5)
	add	d4, d4, d3
	jlt	d4, d1, inner
next:	addi	d3, d3, 1
	jlt	d3, d1, outer
`, mcSieveN, lo, hi)
		src += emit(7)                                   // own shard count
		src += fmt.Sprintf("\tst.w\td7, %d(a12)\n", 4*c) // publish shard
		src += barrierArrive
		expected := []uint32{uint32(counts[c])}
		if c == 0 {
			src += reduceOnCore0(cores)
			expected = append(expected, uint32(total))
		}
		src += "\thalt\n\t.bss\nflags:\t.space\t" + fmt.Sprint(mcSieveN) + "\n"
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-sieve.c%d", c),
			Description: fmt.Sprintf("sieve shard [%d,%d) of %d", lo, hi, mcSieveN),
			Source:      src,
			Expected:    expected,
		})
	}
	return mw
}

// mcShard splits [lo, hi) into even contiguous shards.
func mcShard(c, cores, lo, hi int) (int, int) {
	span := hi - lo
	a := lo + c*span/cores
	b := lo + (c+1)*span/cores
	return a, b
}

// mcPrimesInRange counts primes in [lo, hi) below n.
func mcPrimesInRange(n, lo, hi int) int {
	flags := make([]bool, n)
	count := 0
	for i := 2; i < n; i++ {
		if flags[i] {
			continue
		}
		if i >= lo && i < hi {
			count++
		}
		for j := i * i; j < n; j += i {
			flags[j] = true
		}
	}
	return count
}

// MCShardedFIR is the sharded FIR filter: every core filters its own
// (per-core pseudo-random) sample block against the common tap set,
// emits the checksum of its outputs, publishes it, and core 0 reduces
// the checksums.
func MCShardedFIR(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-fir",
		Description: fmt.Sprintf("%d-tap FIR over %d samples per core, checksum reduction", mcFIRTaps, mcFIRSamples),
	}
	taps := make([]int32, mcFIRTaps)
	tl := lcg(7)
	for i := range taps {
		taps[i] = tl.sample(16)
	}
	// One sample block per core, used for both the reference checksum and
	// the emitted data table — they must never diverge.
	samples := make([][]int32, cores)
	var sums []uint32
	var total uint32
	for c := 0; c < cores; c++ {
		xs := make([]int32, mcFIRSamples)
		xl := lcg(101 + 13*c)
		for i := range xs {
			xs[i] = xl.sample(128)
		}
		samples[c] = xs
		sums = append(sums, mcFIRChecksum(xs, taps))
		total += sums[c]
	}
	for c := 0; c < cores; c++ {
		xs := samples[c]
		src := mcPrologue()
		src += fmt.Sprintf(`	la	a2, xs
	la	a3, hs
	li	d1, %d		; samples
	li	d8, %d		; taps
	movi	d0, 0
	movi	d2, 0		; i
	movi	d7, 0		; checksum
iloop:	movi	d3, 0		; acc
	movi	d4, 0		; k
kloop:	sub	d5, d2, d4	; idx = i - k
	jlt	d5, d0, knext	; x[idx<0] = 0
	shli	d6, d5, 2
	mov.a	a4, d6
	add.a	a4, a2, a4
	ld.w	d6, 0(a4)	; x[idx]
	shli	d5, d4, 2
	mov.a	a5, d5
	add.a	a5, a3, a5
	ld.w	d5, 0(a5)	; h[k]
	mul	d6, d6, d5
	add	d3, d3, d6
knext:	addi	d4, d4, 1
	jlt	d4, d8, kloop
	add	d7, d7, d3	; checksum += y[i]
	addi	d2, d2, 1
	jlt	d2, d1, iloop
`, mcFIRSamples, mcFIRTaps)
		src += emit(7)
		src += fmt.Sprintf("\tst.w\td7, %d(a12)\n", 4*c)
		src += barrierArrive
		expected := []uint32{sums[c]}
		if c == 0 {
			src += reduceOnCore0(cores)
			expected = append(expected, total)
		}
		src += "\thalt\n\t.data\n"
		src += wordTable("xs", xs)
		src += wordTable("hs", taps)
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-fir.c%d", c),
			Description: "FIR shard",
			Source:      src,
			Expected:    expected,
		})
	}
	return mw
}

// mcFIRChecksum is the Go reference of one core's FIR shard.
func mcFIRChecksum(xs, hs []int32) uint32 {
	var sum uint32
	for i := range xs {
		var acc int32
		for k := range hs {
			idx := i - k
			if idx < 0 {
				continue
			}
			acc += mul32(xs[idx], hs[k])
		}
		sum += uint32(acc)
	}
	return sum
}

// MCPingPong passes an incrementing token around the core ring through
// the mailboxes: core 0 seeds the token, every core polls its own
// doorbell, pops, increments and posts to the next core; after a fixed
// number of ring round trips each core emits the last token value it
// saw. Requires at least 2 cores.
func MCPingPong(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-pingpong",
		Description: fmt.Sprintf("mailbox token ring, %d round trips across %d cores", mcPingPongRound, cores),
	}
	r := mcPingPongRound
	for c := 0; c < cores; c++ {
		next := (c + 1) % cores
		mySlot := c * socbus.SlotStride
		nextSlot := next * socbus.SlotStride
		src := mcPrologue()
		if c == 0 {
			// Seed the token, then receive R times, forwarding all but
			// the last.
			src += fmt.Sprintf(`	movi	d0, 1
	st.w	d0, %d(a13)	; seed token to core %d
	li	d6, %d		; rounds
	movi	d5, 0
recv:	ld.w	d0, %d(a13)	; poll own doorbell
	jz	d0, recv
	ld.w	d1, %d(a13)	; pop token
	addi	d5, d5, 1
	jge	d5, d6, done	; last round: keep it
	addi	d0, d1, 1
	st.w	d0, %d(a13)	; forward
	j	recv
done:
`, nextSlot, next, r, mySlot+4, mySlot, nextSlot)
		} else {
			src += fmt.Sprintf(`	li	d6, %d		; rounds
	movi	d5, 0
recv:	ld.w	d0, %d(a13)	; poll own doorbell
	jz	d0, recv
	ld.w	d1, %d(a13)	; pop token
	addi	d0, d1, 1
	st.w	d0, %d(a13)	; forward
	addi	d5, d5, 1
	jlt	d5, d6, recv
`, r, mySlot+4, mySlot, nextSlot)
		}
		src += emit(1)
		src += "\thalt\n"
		// Token values: the seed is 1 and every hop increments, so core
		// c (c>0) receives (round-1)*cores + c in the given round, and
		// core 0 receives round*cores.
		last := uint32(r * cores)
		if c > 0 {
			last = uint32((r-1)*cores + c)
		}
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-pingpong.c%d", c),
			Description: "mailbox ring node",
			Source:      src,
			Expected:    []uint32{last},
		})
	}
	return mw
}

// MCContention is the bus-contention stressor: every core hammers the
// same atomic counter with back-to-back adds (guaranteeing arbitration
// wait-states), emits its core id, and arrives at the barrier; core 0
// then emits the counter total, which the atomic adds make exact no
// matter how the stores interleave.
func MCContention(cores int) MultiWorkload {
	mw := MultiWorkload{
		Name:        "mc-contention",
		Description: fmt.Sprintf("%d cores × %d atomic adds to one counter", cores, mcContentionK),
	}
	for c := 0; c < cores; c++ {
		src := mcPrologue()
		src += fmt.Sprintf(`	movi	d0, 1
	li	d1, %d		; adds
	movi	d2, 0
loop:	st.w	d0, 4(a14)	; counter[1] += 1 (contended)
	addi	d2, d2, 1
	jlt	d2, d1, loop
	li	d3, %d		; core id
	st.w	d3, 0(a15)
`, mcContentionK, c)
		src += barrierArrive
		expected := []uint32{uint32(c)}
		if c == 0 {
			src += fmt.Sprintf(`	li	d1, %d
barr:	ld.w	d0, 0(a14)
	jne	d0, d1, barr
	ld.w	d2, 4(a14)	; contended total
`, cores)
			src += emit(2)
			expected = append(expected, uint32(cores*mcContentionK))
		}
		src += "\thalt\n"
		mw.Cores = append(mw.Cores, Workload{
			Name:        fmt.Sprintf("mc-contention.c%d", c),
			Description: "contention stressor node",
			Source:      src,
			Expected:    expected,
		})
	}
	return mw
}

// mcCatalog is the registry of multi-core workloads: name, minimum core
// count, and generator. Name validity and availability checks consult
// it without instantiating anything (generating a MultiWorkload runs
// the Go references and renders every core's assembly).
var mcCatalog = []struct {
	name     string
	minCores int
	gen      func(cores int) MultiWorkload
}{
	{"mc-sieve", 1, MCShardedSieve},
	{"mc-fir", 1, MCShardedFIR},
	{"mc-pingpong", 2, MCPingPong},
	{"mc-contention", 1, MCContention},
	{"mc-irq-pingpong", 2, MCIRQPingPong},
	{"mc-irq-barrier", 2, MCIRQBarrier},
	{"mc-irq-timer", 1, MCIRQTimer},
}

// MCAll returns every multi-core workload instantiated for the given
// core count (workloads whose minimum core count exceeds it are
// omitted, e.g. mc-pingpong below 2).
func MCAll(cores int) []MultiWorkload {
	var ws []MultiWorkload
	for _, e := range mcCatalog {
		if cores >= e.minCores {
			ws = append(ws, e.gen(cores))
		}
	}
	return ws
}

// MCKnown reports whether name is a registered multi-core workload and,
// if so, whether it is available at the given core count. It never
// instantiates the workload.
func MCKnown(name string, cores int) (known, available bool) {
	for _, e := range mcCatalog {
		if e.name == name {
			return true, cores >= e.minCores
		}
	}
	return false, false
}

// MCByName instantiates the named multi-core workload for the given core
// count.
func MCByName(name string, cores int) (MultiWorkload, bool) {
	for _, e := range mcCatalog {
		if e.name == name && cores >= e.minCores {
			return e.gen(cores), true
		}
	}
	return MultiWorkload{}, false
}

// MCNames returns the registered multi-core workload names.
func MCNames() []string {
	var names []string
	for _, e := range mcCatalog {
		names = append(names, e.name)
	}
	return names
}
