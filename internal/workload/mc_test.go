package workload

import (
	"testing"

	"repro/internal/tc32asm"
)

// TestMCAssemble checks that every generated multi-core program
// assembles for a spread of core counts.
func TestMCAssemble(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 4, 8} {
		for _, mw := range MCAll(cores) {
			if len(mw.Cores) != cores {
				t.Errorf("%s(%d): %d core programs", mw.Name, cores, len(mw.Cores))
			}
			for _, w := range mw.Cores {
				if _, err := tc32asm.Assemble(w.Source); err != nil {
					t.Errorf("%s: %v", w.Name, err)
				}
				if len(w.Expected) == 0 {
					t.Errorf("%s: no expected output", w.Name)
				}
			}
		}
	}
}

// TestMCShardReduction checks the sharding invariants of the Go
// references: the shard counts of the sharded sieve sum to the
// single-core sieve result, and the FIR checksums are shard-independent
// of the core count only in total when shards don't overlap (they are
// per-core inputs, so just check core0's reduction expectation is the
// sum of the shard expectations).
func TestMCShardReduction(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 5} {
		mw := MCShardedSieve(cores)
		var sum uint32
		for _, w := range mw.Cores {
			sum += w.Expected[0]
		}
		if want := uint32(sieveRef(mcSieveN)); sum != want {
			t.Errorf("sieve(%d cores): shard sum %d, want %d", cores, sum, want)
		}
		if got := mw.Cores[0].Expected[1]; got != sum {
			t.Errorf("sieve(%d cores): core0 reduction %d, want %d", cores, got, sum)
		}

		fir := MCShardedFIR(cores)
		var fsum uint32
		for _, w := range fir.Cores {
			fsum += w.Expected[0]
		}
		if got := fir.Cores[0].Expected[1]; got != fsum {
			t.Errorf("fir(%d cores): core0 reduction %d, want %d", cores, got, fsum)
		}
	}
}

// TestMCByName exercises the registry.
func TestMCByName(t *testing.T) {
	for _, name := range MCNames() {
		if _, ok := MCByName(name, 2); !ok {
			t.Errorf("MCByName(%q, 2) missing", name)
		}
	}
	if _, ok := MCByName("nope", 2); ok {
		t.Error("MCByName(nope) found")
	}
	if _, ok := MCByName("mc-pingpong", 1); ok {
		t.Error("mc-pingpong should need 2 cores")
	}
	if known, available := MCKnown("mc-pingpong", 1); !known || available {
		t.Errorf("MCKnown(mc-pingpong, 1) = %v, %v; want known, unavailable", known, available)
	}
	if known, _ := MCKnown("nope", 2); known {
		t.Error("MCKnown(nope) known")
	}
	// The catalog and the instantiated set must agree.
	all := MCAll(4)
	if len(all) != len(MCNames()) {
		t.Errorf("MCAll(4) has %d workloads, catalog %d", len(all), len(MCNames()))
	}
	for i, w := range all {
		if w.Name != MCNames()[i] {
			t.Errorf("MCAll order diverges from catalog: %s vs %s", w.Name, MCNames()[i])
		}
	}
}
