package workload

import "fmt"

const (
	firTaps    = 16
	firSamples = 64
)

// FIR builds a 16-tap integer FIR filter over 64 samples: the classic
// medium-block filter kernel of the paper's evaluation.
func FIR() Workload {
	rng := lcg(0x1234)
	input := make([]int32, firSamples+firTaps)
	for i := range input {
		input[i] = rng.sample(512)
	}
	coeff := make([]int32, firTaps)
	for i := range coeff {
		coeff[i] = rng.sample(128)
	}

	src := prologue
	src += fmt.Sprintf(`	la	a2, input
	la	a3, coeff
	movi	d8, 0		; checksum
	movi	d9, %d		; number of samples
	movi	d10, 0		; sample index
sample:	shli	d3, d10, 2
	mov.a	a4, d3
	add.a	a4, a2, a4	; &input[idx]
	lea	a5, 0(a3)	; &coeff[0]
	movi	d0, 0		; acc
	movi	d2, %d		; tap count
tap:	ld.w	d4, 0(a4)
	ld.w	d5, 0(a5)
	mul	d4, d4, d5
	add	d0, d0, d4
	addi.a	a4, a4, 4
	addi.a	a5, a5, 4
	addi	d2, d2, -1
	jnz	d2, tap
	sari	d0, d0, 6	; scale
	add	d8, d8, d0
	addi	d10, d10, 1
	jlt	d10, d9, sample
`, firSamples, firTaps)
	src += emit(8)
	src += "\thalt\n\t.data\n"
	src += wordTable("input", input)
	src += wordTable("coeff", coeff)

	return Workload{
		Name:        "fir",
		Description: "16-tap integer FIR filter over 64 samples",
		Source:      src,
		Expected:    []uint32{uint32(firRef(input, coeff))},
	}
}

func firRef(input, coeff []int32) int32 {
	var sum int32
	for idx := 0; idx < firSamples; idx++ {
		var acc int32
		for t := 0; t < firTaps; t++ {
			acc += mul32(input[idx+t], coeff[t])
		}
		sum += acc >> 6
	}
	return sum
}
