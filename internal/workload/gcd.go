package workload

import "fmt"

// gcdPairs are chosen so the executed instruction count lands near the
// paper's Table 2 value for gcd (1484 instructions).
var gcdPairs = [][2]int32{
	{1071, 462}, // classic Euclid example, gcd 21
	{840, 11},   // long subtractive chain
	{612, 5},    // long subtractive chain
	{144, 89},   // adjacent Fibonacci numbers, slowest Euclid case
	{500, 3},    // long subtractive chain
}

// GCD builds the subtractive greatest-common-divisor benchmark: a
// control-flow dominated program with small basic blocks, as in the paper.
func GCD() Workload {
	src := prologue
	src += fmt.Sprintf(`	la	a2, pairs
	movi	d8, 0		; checksum
	movi	d9, %d		; number of pairs
pair_loop:
	ld.w	d0, 0(a2)
	ld.w	d1, 4(a2)
	call	gcd
`, len(gcdPairs))
	src += emit(0)
	src += `	add	d8, d8, d0
	addi.a	a2, a2, 8
	addi	d9, d9, -1
	jnz	d9, pair_loop
`
	src += emit(8)
	src += `	halt

; gcd: d0 = gcd(d0, d1) by repeated subtraction
gcd:
gcd_loop:
	jeq	d0, d1, gcd_done
	jlt	d0, d1, gcd_b
	sub	d0, d0, d1
	j	gcd_loop
gcd_b:	sub	d1, d1, d0
	j	gcd_loop
gcd_done:
	ret

	.data
`
	var flat []int32
	for _, p := range gcdPairs {
		flat = append(flat, p[0], p[1])
	}
	src += wordTable("pairs", flat)

	var expected []uint32
	var sum uint32
	for _, p := range gcdPairs {
		g := gcdRef(p[0], p[1])
		expected = append(expected, uint32(g))
		sum += uint32(g)
	}
	expected = append(expected, sum)

	return Workload{
		Name:              "gcd",
		Description:       "subtractive GCD over a pair table (control-flow dominated)",
		Source:            src,
		Expected:          expected,
		PaperInstructions: 1484,
	}
}

func gcdRef(a, b int32) int32 {
	for a != b {
		if a > b {
			a -= b
		} else {
			b -= a
		}
	}
	return a
}
