package core

import (
	"fmt"

	"repro/internal/c6x"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/tc32"
)

// tblock is a target block: a straight-line run of intermediate
// instructions that will be scheduled as one unit. A source cycle region
// maps to one or more tblocks (splits occur at runtime-routine calls and
// cache-probe calls, which branch and return mid-region).
type tblock struct {
	label   string
	ins     []ir.Ins
	defines []int // label ids resolved to this tblock's first packet
	region  int   // prog.Blocks index if this is the first tblock of a region
}

func (t *translator) newLabel() int {
	t.labelTarget = append(t.labelTarget, -1)
	return len(t.labelTarget) - 1
}

func (t *translator) newTBlock(label string, defines ...int) *tblock {
	tb := &tblock{label: label, defines: defines, region: -1}
	for _, d := range defines {
		t.labelTarget[d] = len(t.tblocks)
	}
	t.tblocks = append(t.tblocks, tb)
	return tb
}

func dR(n uint8) c6x.Reg { return c6x.A(int(n)) } // TC32 data register
func aR(n uint8) c6x.Reg { return c6x.B(int(n)) } // TC32 address register

// lowerer lowers one source cycle region into tblocks.
type lowerer struct {
	t      *translator
	blk    *srcBlock
	cur    *tblock
	nextA  int
	nextB  int
	region int
}

func (l *lowerer) emit(in ir.Ins) { l.cur.ins = append(l.cur.ins, in) }

func (l *lowerer) emitI(inst c6x.Inst) { l.emit(ir.New(inst)) }

// split ends the current tblock and begins a new one defining the given
// labels (used after calls: the new tblock is the return continuation).
func (l *lowerer) split(defines ...int) {
	l.cur = l.t.newTBlock(l.cur.label+"+", defines...)
}

func (l *lowerer) tempA() c6x.Reg {
	r := regTempA[l.nextA%len(regTempA)]
	l.nextA++
	return r
}

func (l *lowerer) tempB() c6x.Reg {
	r := regTempB[l.nextB%len(regTempB)]
	l.nextB++
	return r
}

// matConst materializes a 32-bit constant into dst (1 or 2 instructions).
func (l *lowerer) matConst(v int32, dst c6x.Reg) {
	if v >= -0x8000 && v <= 0x7FFF {
		l.emitI(c6x.Inst{Op: c6x.MVK, Dst: dst, Src2: c6x.Imm(v)})
		return
	}
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: dst, Src2: c6x.Imm(v & 0xFFFF)})
	l.emitI(c6x.Inst{Op: c6x.MVKH, Dst: dst, Src2: c6x.Imm(int32(uint32(v) >> 16))})
}

// opnd returns an operand for a signed immediate: a short constant
// directly (C6x scst5), otherwise a temporary of the given side.
func (l *lowerer) opnd(v int32, side c6x.Side) c6x.Operand {
	if v >= -16 && v <= 15 {
		return c6x.Imm(v)
	}
	var tmp c6x.Reg
	if side == c6x.SideA {
		tmp = l.tempA()
	} else {
		tmp = l.tempB()
	}
	l.matConst(v, tmp)
	return c6x.R(tmp)
}

// opndU returns an operand for a zero-extended 16-bit immediate.
func (l *lowerer) opndU(v int32, side c6x.Side) c6x.Operand {
	if v >= 0 && v <= 15 {
		return c6x.Imm(v)
	}
	var tmp c6x.Reg
	if side == c6x.SideA {
		tmp = l.tempA()
	} else {
		tmp = l.tempB()
	}
	if v <= 0x7FFF {
		l.emitI(c6x.Inst{Op: c6x.MVK, Dst: tmp, Src2: c6x.Imm(v)})
	} else {
		l.emitI(c6x.Inst{Op: c6x.MVK, Dst: tmp, Src2: c6x.Imm(v & 0xFFFF)})
		l.emitI(c6x.Inst{Op: c6x.MVKH, Dst: tmp, Src2: c6x.Imm(0)})
	}
	return c6x.R(tmp)
}

// call emits a runtime-routine call: link register setup, branch, and the
// return-continuation split.
func (l *lowerer) call(routine int) {
	ret := l.t.newLabel()
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: regLink, Src2: c6x.Imm(int32(ret)), SymImm: true})
	br := ir.New(c6x.Inst{Op: c6x.BPKT, Target: routine})
	br.Pin = ir.PinBranch
	l.emit(br)
	l.split(ret)
}

// lowerAll drives the lowering of the whole program: prologue, every
// source region in address order, then the runtime routines.
func (t *translator) lowerAll() error {
	t.prog = &Program{PacketOfSrc: map[uint32]int{}, SrcOfPacket: map[int]uint32{}}
	t.routines = map[string]int{}
	t.blockLabel = make([]int, len(t.blocks))
	for i := range t.blocks {
		t.blockLabel[i] = t.newLabel()
	}

	// Prologue: reserved-register setup, then branch to the entry region.
	pro := t.newTBlock("prologue")
	l := &lowerer{t: t, cur: pro, region: -1}
	// The sync-device base is always materialized: even untimed (Level0)
	// code reaches the platform's IRQ registers through it (ei/di/wfi/
	// reti lowerings).
	syncBase := uint32(SyncBase)
	l.matConst(int32(syncBase), regSyncBase)
	if t.opts.Level >= Level2 {
		l.emitI(c6x.Inst{Op: c6x.MVK, Dst: regCorr, Src2: c6x.Imm(0)})
	}
	if t.opts.Level >= Level3 {
		cacheBase := uint32(CacheTableBase)
		l.matConst(int32(cacheBase), regCacheTab)
	}
	ebr := ir.New(c6x.Inst{Op: c6x.BPKT, Target: t.blockLabel[t.blkAt[t.entry]]})
	ebr.Pin = ir.PinBranch
	l.emit(ebr)

	for i := range t.blocks {
		if err := t.lowerBlock(i); err != nil {
			return err
		}
	}
	return t.emitRoutines()
}

// lowerBlock lowers one source cycle region, inserting the annotations of
// the paper's Figures 2 and 3 around the translated body.
func (t *translator) lowerBlock(bi int) error {
	blk := t.blocks[bi]
	level := t.opts.Level
	info := BlockInfo{
		SrcStart:   blk.start,
		SrcEnd:     blk.end,
		SrcInsts:   len(blk.insts),
		CondBranch: blk.condBranch,
		Leader:     t.leaders[blk.start],
	}
	region := len(t.prog.Blocks)

	l := &lowerer{t: t, blk: blk, region: region}
	l.cur = t.newTBlock(fmt.Sprintf("bb_%#x", blk.start), t.blockLabel[bi])
	l.cur.region = region

	// "start cycle generation of n cycles" (Figure 2).
	if level >= Level1 {
		info.StaticCycles = blk.staticCycles
		tmp := l.tempA()
		l.matConst(int32(blk.staticCycles), tmp)
		start := ir.New(c6x.Inst{Op: c6x.STW, Data: tmp, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(0), Volatile: true})
		start.Pin = ir.PinFirst
		l.emit(start)
	}

	// Body with cache analysis blocks (Figure 3 / Section 3.4.2).
	lineMask := ^uint32(t.desc.ICache.LineBytes - 1)
	curLine := uint32(0xFFFFFFFF)
	cabs := 0
	last := blk.insts[len(blk.insts)-1]
	bodyEnd := len(blk.insts)
	if last.Op.IsBranch() {
		bodyEnd--
	}
	lowerOne := func(i int, in tc32.Inst) error {
		if level >= Level3 {
			if line := in.Addr & lineMask; line != curLine {
				curLine = line
				cabs++
				l.emitProbe(line)
			}
		}
		return l.lowerInst(in, blk.memClass[i])
	}
	for i := 0; i < bodyEnd; i++ {
		if err := lowerOne(i, blk.insts[i]); err != nil {
			return err
		}
	}
	// The terminator's own fetch belongs to the last cache analysis block.
	if bodyEnd < len(blk.insts) && level >= Level3 {
		if line := last.Addr & lineMask; line != curLine {
			curLine = line
			cabs++
			l.emitProbe(line)
		}
	}
	info.CABs = cabs

	// Terminator setup: condition computation and, at level 2+, the
	// branch-prediction correction add (Section 3.4.1).
	var term *ir.Ins
	if bodyEnd < len(blk.insts) {
		ti, err := l.lowerTerminator(last, bi, level)
		if err != nil {
			return err
		}
		term = ti
	}

	// Correction block (Figure 3): flush the correction counter into the
	// running generation, then the synchronization wait.
	needFlush := level >= Level3 && cabs > 0 || level >= Level2 && blk.condBranch
	if level >= Level1 {
		if needFlush {
			if t.opts.SingleDrainCorrection {
				// Improved form: the ADD register joins the correction
				// cycles to the running generation; one drain suffices.
				l.emitI(c6x.Inst{Op: c6x.STW, Data: regCorr, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(4), Volatile: true})
			} else {
				// Literal Figure 3 shape: drain the base generation,
				// start a separate correction generation, drain it.
				w1 := ir.New(c6x.Inst{Op: c6x.LDW, Dst: regWaitDummy, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(0), Volatile: true})
				l.emit(w1)
				l.emitI(c6x.Inst{Op: c6x.STW, Data: regCorr, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(0), Volatile: true})
			}
			l.emitI(c6x.Inst{Op: c6x.MVK, Dst: regCorr, Src2: c6x.Imm(0)})
		}
		wait := ir.New(c6x.Inst{Op: c6x.LDW, Dst: regWaitDummy, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(0), Volatile: true})
		wait.Pin = ir.PinLast
		l.emit(wait)
	}
	if term != nil {
		l.emit(*term)
	}

	t.prog.Blocks = append(t.prog.Blocks, info)
	return nil
}

// lowerTerminator lowers the region's final branch/halt. It may emit
// condition and correction instructions; the returned instruction is the
// branch itself, emitted after the correction block.
func (l *lowerer) lowerTerminator(in tc32.Inst, bi int, level Level) (*ir.Ins, error) {
	t := l.t
	mkBranch := func(label int, pred c6x.Pred) *ir.Ins {
		b := ir.New(c6x.Inst{Op: c6x.BPKT, Target: label, Pred: pred})
		b.Pin = ir.PinBranch
		return &b
	}
	targetLabel := func(addr uint32) (int, error) {
		ti, ok := t.blkAt[addr]
		if !ok {
			return 0, fmt.Errorf("core: branch at %#x targets non-block %#x", in.Addr, addr)
		}
		return t.blockLabel[ti], nil
	}
	switch in.Op {
	case tc32.HALT:
		h := ir.New(c6x.Inst{Op: c6x.HALT})
		return &h, nil
	case tc32.J, tc32.J16:
		lbl, err := targetLabel(in.Target())
		if err != nil {
			return nil, err
		}
		return mkBranch(lbl, c6x.Pred{}), nil
	case tc32.JL:
		retLbl, err := targetLabel(l.blk.end)
		if err != nil {
			return nil, fmt.Errorf("core: call at %#x has no return site: %v", in.Addr, err)
		}
		l.emitI(c6x.Inst{Op: c6x.MVK, Dst: aR(tc32.RA), Src2: c6x.Imm(int32(retLbl)), SymImm: true})
		lbl, err := targetLabel(in.Target())
		if err != nil {
			return nil, err
		}
		return mkBranch(lbl, c6x.Pred{}), nil
	case tc32.JI:
		if l.blk.jiTarget != 0xFFFFFFFF {
			lbl, err := targetLabel(l.blk.jiTarget)
			if err != nil {
				return nil, err
			}
			return mkBranch(lbl, c6x.Pred{}), nil
		}
		// Dynamic indirect jump: the register holds a source address the
		// translator could not resolve.
		return nil, fmt.Errorf("core: unresolvable indirect jump at %#x", in.Addr)
	case tc32.RET, tc32.RET16:
		b := ir.New(c6x.Inst{Op: c6x.BREG, Src1: c6x.R(aR(tc32.RA))})
		b.Pin = ir.PinBranch
		return &b, nil
	case tc32.RETI:
		// Tell the platform to restore the interrupt state (IE and the
		// in-handler flag; a spurious reti is a platform error, exactly
		// like the ISS's), then branch through the shadow packet index
		// that interrupt entry parked in RegIRQShadow. The store's data
		// value is ignored — regSyncBase is just a register that always
		// holds a defined value.
		l.emitI(c6x.Inst{Op: c6x.STW, Data: regSyncBase, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(IRQRet - SyncBase), Volatile: true})
		b := ir.New(c6x.Inst{Op: c6x.BREG, Src1: c6x.R(RegIRQShadow)})
		b.Pin = ir.PinBranch
		return &b, nil
	case tc32.WFI:
		// The wait-for-interrupt trap must reach the platform only after
		// the region's corrections are flushed and the generation has
		// drained (the clock is then exactly at the region boundary), so
		// it is pinned last like the sync wait; the scheduler places it
		// after the wait load it depends on. Execution falls through to
		// the successor region — the interrupt return target — where the
		// platform idles until delivery.
		st := ir.New(c6x.Inst{Op: c6x.STW, Data: regSyncBase, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(IRQWait - SyncBase), Volatile: true})
		st.Pin = ir.PinLast
		return &st, nil
	}
	if !in.Op.IsCondBranch() {
		return nil, fmt.Errorf("core: unexpected terminator %v at %#x", in.Op, in.Addr)
	}

	// Conditional branch: compute the condition into a predicate register.
	cond := l.tempA()
	neg := false
	switch in.Op {
	case tc32.JEQ:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.JNE:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		neg = true
	case tc32.JLT:
		l.emitI(c6x.Inst{Op: c6x.CMPLT, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.JGE:
		l.emitI(c6x.Inst{Op: c6x.CMPLT, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		neg = true
	case tc32.JLTU:
		l.emitI(c6x.Inst{Op: c6x.CMPLTU, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.JGEU:
		l.emitI(c6x.Inst{Op: c6x.CMPLTU, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		neg = true
	case tc32.JZ:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(0)})
	case tc32.JNZ:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(0)})
		neg = true
	case tc32.JZ16:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(tc32.ImplicitCond)), Src2: c6x.Imm(0)})
	case tc32.JNZ16:
		l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: cond, Src1: c6x.R(dR(tc32.ImplicitCond)), Src2: c6x.Imm(0)})
		neg = true
	}

	// Dynamic branch-prediction correction (Section 3.4.1): when the
	// actual direction differs from the static prediction, add the
	// mispredict-minus-base cycles to the correction counter.
	if level >= Level2 {
		pred := l.blk.predTaken
		corr := int32(t.desc.CondBranchCorrection(pred, !pred))
		if corr > 0 {
			// Correction fires when taken != predicted. taken = (cond!=0) != neg.
			corrNeg := neg
			if pred {
				corrNeg = !corrNeg // correction when NOT taken
			}
			l.emitI(c6x.Inst{
				Op: c6x.ADD, Dst: regCorr,
				Src1: c6x.R(regCorr), Src2: c6x.Imm(corr),
				Pred: c6x.Pred{Valid: true, Reg: cond, Neg: corrNeg},
			})
		}
	}

	lbl, err := targetLabel(in.Target())
	if err != nil {
		return nil, err
	}
	return mkBranch(lbl, c6x.Pred{Valid: true, Reg: cond, Neg: neg}), nil
}

// emitProbe emits a cache-analysis-block probe: the tag/valid word and the
// set offset as arguments, then a call into the generated cache
// simulation subroutine (Figure 4). In large basic blocks the probe can
// be inlined instead, "making the subroutine call unnecessary"
// (Section 3.4.2).
func (l *lowerer) emitProbe(lineAddr uint32) {
	g := l.t.desc.ICache
	lineBits := bitsOf(g.LineBytes)
	setBits := bitsOf(g.Sets)
	set := (lineAddr >> lineBits) & uint32(g.Sets-1)
	tag := lineAddr >> (lineBits + setBits)
	tagWord := int32(0x8000_0000 | tag)
	// Per-set stride: the compact [ways..., lru] layout for 1-/2-way
	// geometries, [tags..., ages...] for wider ones (see emitProbeNWay).
	stride := int32(g.Ways + 1)
	if g.Ways > 2 {
		stride = int32(2 * g.Ways)
	}
	setOff := int32(set) * stride * 4
	if l.t.opts.InlineCacheProbe && len(l.blk.insts) >= l.t.opts.InlineCacheThreshold && g.Ways == 2 {
		obsProbeInline.Inc()
		l.emitProbeInline(tagWord, setOff)
		return
	}
	obsProbeCall.Inc()
	l.matConst(tagWord, regArg0)
	l.matConst(setOff, regArg1)
	l.call(l.t.routineLabel("probe"))
}

// Probe-site telemetry: the translator's static fast/slow split — how
// many cache-analysis-block probes were inlined into the block (the
// fast path, no call/return branches) versus emitted as subroutine
// calls. Counted at translation time, so the generated code and the
// simulation hot loop stay telemetry-free.
var (
	obsProbeInline = obs.Default.Counter("cabt_translate_probe_sites_total",
		"cache-probe sites emitted, by kind", "kind", "inline")
	obsProbeCall = obs.Default.Counter("cabt_translate_probe_sites_total",
		"cache-probe sites emitted, by kind", "kind", "call")
)

// emitProbeInline expands the two-way cache probe into the block itself:
// the same tag/valid/LRU algorithm as the subroutine, but without the
// call and return branches (each 1+5 cycles).
func (l *lowerer) emitProbeInline(tagWord, setOff int32) {
	t := l.t
	hit0 := t.newLabel()
	hit1 := t.newLabel()
	repl0 := t.newLabel()
	done := t.newLabel()
	s0, s2, s3 := regScratch[0], regScratch[2], regScratch[3]

	branch := func(target int, p c6x.Pred) {
		b := ir.New(c6x.Inst{Op: c6x.BPKT, Target: target, Pred: p})
		b.Pin = ir.PinBranch
		l.emit(b)
	}
	l.matConst(tagWord, regArg0)
	l.emitI(c6x.Inst{Op: c6x.ADD, Dst: regBScr0, Src1: c6x.R(regCacheTab), Src2: l.opnd(setOff, c6x.SideB)})
	l.emitI(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
	l.emitI(c6x.Inst{Op: c6x.LDW, Dst: regArg1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(4)})
	l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.R(regArg0)})
	branch(hit0, c6x.Pred{Valid: true, Reg: s2})
	l.split()
	l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: s3, Src1: c6x.R(regArg1), Src2: c6x.R(regArg0)})
	branch(hit1, c6x.Pred{Valid: true, Reg: s3})
	l.split()
	// Miss: replace the LRU way, add the penalty.
	pen := int32(t.desc.ICache.MissPenalty)
	l.emitI(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	l.emitI(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.Imm(0)})
	branch(repl0, c6x.Pred{Valid: true, Reg: s2})
	l.split()
	l.emitI(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(4)})
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(0)})
	l.emitI(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	l.emitI(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
	branch(done, c6x.Pred{})
	l.split(repl0)
	l.emitI(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(1)})
	l.emitI(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	l.emitI(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
	branch(done, c6x.Pred{})
	l.split(hit0)
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(1)})
	l.emitI(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	branch(done, c6x.Pred{})
	l.split(hit1)
	l.emitI(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(0)})
	l.emitI(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	// Falls through to the continuation.
	l.split(done)
}

func bitsOf(v int) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}
