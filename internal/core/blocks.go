package core

import (
	"fmt"
	"sort"

	"repro/internal/march"
	"repro/internal/tc32"
)

// srcBlock is one cycle region of the source program: a basic block after
// leader splitting, I/O splitting (every bus access becomes its own
// region so its emulated-time stamp is exact), and — in instruction
// oriented mode — per-instruction splitting.
type srcBlock struct {
	insts []tc32.Inst
	start uint32
	end   uint32

	// memClass[i] classifies insts[i] if it is a memory access.
	memClass []memClass
	// jiTarget is the statically resolved target of a ji terminator
	// (0xFFFFFFFF if unknown or not applicable).
	jiTarget uint32

	staticCycles int64
	condBranch   bool
	predTaken    bool
	cabs         int
}

type memClass uint8

const (
	memNone memClass = iota
	memData
	memIO
	memUnknown
)

func (t *translator) decode(text []byte, base uint32, entry uint32) error {
	t.index = map[uint32]int{}
	off := 0
	for off < len(text) {
		inst, err := tc32.Decode(text[off:], base+uint32(off))
		if err != nil {
			// Tolerate non-instruction padding; it must never be reached.
			off += 2
			continue
		}
		t.index[inst.Addr] = len(t.insts)
		t.insts = append(t.insts, inst)
		off += int(inst.Size)
	}
	if len(t.insts) == 0 {
		return fmt.Errorf("core: no instructions in .text")
	}
	if _, ok := t.index[entry]; !ok {
		return fmt.Errorf("core: entry point %#x is not an instruction", entry)
	}
	return nil
}

// buildBlocks finds basic-block leaders and forms blocks, mirroring the
// paper's "building of basic blocks" stage. The leader computation is
// shared with the reference simulator (tc32.Leaders): leaders are also
// the interrupt delivery points, and both sides must agree on them
// bit-exactly. The `__irq` vector is seeded as an extra leader — it is
// reachable only through interrupt delivery.
func (t *translator) buildBlocks(entry uint32) error {
	leaders := tc32.Leaders(t.insts, entry, t.irqEntry)
	var starts []uint32
	for a := range leaders {
		if _, ok := t.index[a]; ok {
			starts = append(starts, a)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	isLeader := map[uint32]bool{}
	for _, a := range starts {
		isLeader[a] = true
	}
	t.leaders = isLeader

	t.blkAt = map[uint32]int{}
	for _, start := range starts {
		idx, ok := t.index[start]
		if !ok {
			continue
		}
		blk := &srcBlock{start: start, jiTarget: 0xFFFFFFFF}
		for k := idx; k < len(t.insts); k++ {
			in := t.insts[k]
			if in.Addr != start && isLeader[in.Addr] {
				break
			}
			if k > idx && in.Addr != t.insts[k-1].Addr+uint32(t.insts[k-1].Size) {
				break // gap (padding) ends the block
			}
			blk.insts = append(blk.insts, in)
			if in.Op.IsBranch() {
				break
			}
		}
		if len(blk.insts) == 0 {
			continue
		}
		last := blk.insts[len(blk.insts)-1]
		blk.end = last.Addr + uint32(last.Size)
		t.blkAt[start] = len(t.blocks)
		t.blocks = append(t.blocks, blk)
	}
	if _, ok := t.blkAt[entry]; !ok {
		return fmt.Errorf("core: entry block missing")
	}
	return nil
}

// splitIOBlocks re-splits blocks so every I/O (or unresolvable) memory
// access is its own cycle region: the preceding region's synchronization
// wait guarantees the emulated clock has caught up before the bus
// transaction, making the access cycle accurate (the paper's bus
// interface requirement). In instruction-oriented mode every instruction
// becomes its own region (the debugger's second translation).
func (t *translator) splitIOBlocks() {
	var out []*srcBlock
	split := func(blk *srcBlock, cut func(i int) bool) {
		cur := &srcBlock{start: blk.start, jiTarget: blk.jiTarget}
		flush := func(end uint32) {
			if len(cur.insts) > 0 {
				cur.end = end
				out = append(out, cur)
			}
			cur = &srcBlock{start: end, jiTarget: blk.jiTarget}
		}
		for i, in := range blk.insts {
			if cut(i) && len(cur.insts) > 0 {
				flush(in.Addr)
			}
			cur.insts = append(cur.insts, in)
			cur.memClass = append(cur.memClass, blk.memClass[i])
			if cut(i) {
				flush(in.Addr + uint32(in.Size))
			}
		}
		if len(cur.insts) > 0 {
			cur.end = blk.end
			out = append(out, cur)
		}
	}
	for _, blk := range t.blocks {
		if t.opts.InstructionOriented {
			split(blk, func(i int) bool { return true })
			continue
		}
		needs := false
		for _, c := range blk.memClass {
			if c == memIO || c == memUnknown {
				needs = true
			}
		}
		if !needs {
			out = append(out, blk)
			continue
		}
		split(blk, func(i int) bool {
			return blk.memClass[i] == memIO || blk.memClass[i] == memUnknown
		})
	}
	// Rebuild the address index.
	t.blocks = out
	t.blkAt = map[uint32]int{}
	for i, blk := range t.blocks {
		t.blkAt[blk.start] = i
	}
}

// calcCycles performs the static cycle calculation of Section 3.3: the
// shared pipeline model is replayed per block from a clean entry state,
// and control transfers are charged their statically predicted cost.
func (t *translator) calcCycles() {
	for _, blk := range t.blocks {
		pipe := march.NewPipe(t.desc)
		for _, in := range blk.insts {
			issue := pipe.Issue(in)
			switch {
			case in.Op.IsCondBranch():
				blk.condBranch = true
				blk.predTaken = t.desc.PredictTaken(in)
				pipe.Control(issue, t.desc.CondBranchBaseCost(blk.predTaken))
			case in.Op == tc32.J, in.Op == tc32.JL, in.Op == tc32.J16:
				pipe.Control(issue, t.desc.Branch.Direct)
			case in.Op.IsIndirect():
				pipe.Control(issue, t.desc.Branch.Indirect)
			case in.Op == tc32.HALT, in.Op == tc32.WFI:
				pipe.Control(issue, 1)
			}
		}
		blk.staticCycles = pipe.Cycles()
	}
}
