package core

import (
	"fmt"

	"repro/internal/c6x"
	"repro/internal/ir"
	"repro/internal/sched"
)

// link schedules every target block, lays the packets out, and resolves
// symbolic branch targets and return-address immediates to packet indices.
func (t *translator) link() (*Program, error) {
	prog := t.prog
	var packets []c6x.Packet
	tbStart := make([]int, len(t.tblocks))
	for ti, tb := range t.tblocks {
		res, err := sched.Schedule(&ir.Block{Label: tb.label, Ins: tb.ins})
		if err != nil {
			return nil, fmt.Errorf("core: scheduling %s: %w", tb.label, err)
		}
		tbStart[ti] = len(packets)
		if tb.region >= 0 {
			prog.Blocks[tb.region].PacketStart = len(packets)
		}
		packets = append(packets, res.Packets...)
	}
	packetOfLabel := make([]int, len(t.labelTarget))
	for lbl, ti := range t.labelTarget {
		if ti < 0 {
			packetOfLabel[lbl] = -1
			continue
		}
		packetOfLabel[lbl] = tbStart[ti]
	}
	for pi := range packets {
		for ii := range packets[pi].Insts {
			in := &packets[pi].Insts[ii]
			if in.Op == c6x.BPKT {
				if in.Target < 0 || in.Target >= len(packetOfLabel) || packetOfLabel[in.Target] < 0 {
					return nil, fmt.Errorf("core: unresolved branch label %d in packet %d", in.Target, pi)
				}
				in.Target = packetOfLabel[in.Target]
			}
			if in.SymImm {
				lbl := int(in.Src2.Imm)
				if lbl < 0 || lbl >= len(packetOfLabel) || packetOfLabel[lbl] < 0 {
					return nil, fmt.Errorf("core: unresolved label immediate %d in packet %d", lbl, pi)
				}
				p := packetOfLabel[lbl]
				if p > 0x7FFF {
					return nil, fmt.Errorf("core: packet index %d exceeds MVK range", p)
				}
				in.Src2.Imm = int32(p)
				// SymImm stays set: the immediate is a packet index,
				// which Merge must rebase when programs are combined.
			}
		}
	}
	prog.C6x = &c6x.Program{Packets: packets, Entry: 0}
	for _, bi := range prog.Blocks {
		prog.PacketOfSrc[bi.SrcStart] = bi.PacketStart
		prog.SrcOfPacket[bi.PacketStart] = bi.SrcStart
	}
	return prog, nil
}

// Merge appends program b's packets to a's, rebasing b's branch targets
// and packet-index immediates. It returns the packet offset of b within
// the combined program. This is how the debugger's two translations (the
// block-oriented and the instruction-oriented one, Section 3.5) share one
// address space and one machine state.
func Merge(a, b *Program) int {
	off := len(a.C6x.Packets)
	for _, pk := range b.C6x.Packets {
		npk := c6x.Packet{Insts: append([]c6x.Inst(nil), pk.Insts...)}
		for i := range npk.Insts {
			in := &npk.Insts[i]
			if in.Op == c6x.BPKT {
				in.Target += off
			}
			if in.SymImm {
				in.Src2.Imm += int32(off)
			}
		}
		a.C6x.Packets = append(a.C6x.Packets, npk)
	}
	return off
}

// Listing renders the translated program with block annotations, in the
// spirit of a translator's -S output.
func (p *Program) Listing() string {
	out := fmt.Sprintf("; %s — %d source instructions, %d packets\n",
		p.Level, p.TotalSrcInsts, len(p.C6x.Packets))
	starts := map[int]BlockInfo{}
	for _, b := range p.Blocks {
		starts[b.PacketStart] = b
	}
	cyc := 0
	for i, pk := range p.C6x.Packets {
		if b, ok := starts[i]; ok {
			out += fmt.Sprintf(";; region src %#x..%#x  n=%d cycles  cabs=%d\n",
				b.SrcStart, b.SrcEnd, b.StaticCycles, b.CABs)
		}
		for j, in := range pk.Insts {
			sep := "  "
			if j > 0 {
				sep = "||"
			}
			out += fmt.Sprintf("P%-5d c%-6d %s %s\n", i, cyc, sep, in.String())
		}
		cyc += pk.Cycles()
	}
	return out
}
