package core

import (
	"fmt"
	"sort"

	"repro/internal/c6x"
	"repro/internal/ir"
)

// This file generates the runtime routines appended to the translated
// program: the software divide (the C6x has no divide hardware) and the
// cache simulation subroutine of the paper's Figure 4, generated from the
// cache description. Routines are leaf and register-only: they use the
// reserved argument/scratch registers and return through the link
// register, so no runtime stack is needed.

// routineLabel returns (allocating on first use) the entry label of a
// named runtime routine.
func (t *translator) routineLabel(name string) int {
	if lbl, ok := t.routines[name]; ok {
		return lbl
	}
	lbl := t.newLabel()
	t.routines[name] = lbl
	return lbl
}

// emitRoutines emits all requested runtime routines after the translated
// blocks (they are reachable only through calls).
func (t *translator) emitRoutines() error {
	names := make([]string, 0, len(t.routines))
	for n := range t.routines {
		names = append(names, n)
	}
	sort.Strings(names)
	divDone := false
	for _, n := range names {
		switch n {
		case "sdiv", "udiv":
			if !divDone {
				t.emitDivComplex()
				divDone = true
			}
		case "probe":
			if err := t.emitProbeRoutine(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: unknown runtime routine %q", n)
		}
	}
	return nil
}

// rb is a small builder for routine blocks.
type rb struct {
	t   *translator
	cur *tblock
}

func (b *rb) block(label string, defines ...int) {
	b.cur = b.t.newTBlock(label, defines...)
}

func (b *rb) emit(inst c6x.Inst) { b.cur.ins = append(b.cur.ins, ir.New(inst)) }

func (b *rb) branch(target int, pred c6x.Pred) {
	in := ir.New(c6x.Inst{Op: c6x.BPKT, Target: target, Pred: pred})
	in.Pin = ir.PinBranch
	b.cur.ins = append(b.cur.ins, in)
}

func (b *rb) ret() {
	in := ir.New(c6x.Inst{Op: c6x.BREG, Src1: c6x.R(regLink)})
	in.Pin = ir.PinBranch
	b.cur.ins = append(b.cur.ins, in)
}

func pred(r c6x.Reg) c6x.Pred  { return c6x.Pred{Valid: true, Reg: r} }
func npred(r c6x.Reg) c6x.Pred { return c6x.Pred{Valid: true, Reg: r, Neg: true} }

// emitDivComplex emits the shared signed/unsigned divide:
//
//	sdiv: A24/A25 signed   -> quotient A24, remainder A25
//	udiv: A24/A25 unsigned -> quotient A24, remainder A25
//
// TC32 semantics for division by zero (q=0, r=dividend) and
// MinInt32/-1 (q=MinInt32, r=0) fall out of the unsigned core.
func (t *translator) emitDivComplex() {
	sdiv := t.routineLabel("sdiv")
	udiv := t.routineLabel("udiv")
	core := t.newLabel()
	loop := t.newLabel()
	dz := t.newLabel()

	s0, s1 := regScratch[0], regScratch[1] // A26, A27: Q and R
	s2, s3 := regScratch[2], regScratch[3] // A28, A29: counter and temp

	b := &rb{t: t}
	// Signed entry: zero check, record signs, take magnitudes.
	b.block("sdiv", sdiv)
	b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s0, Src1: c6x.R(regArg1), Src2: c6x.Imm(0)})
	b.branch(dz, pred(s0))
	b.block("sdiv.abs")
	b.emit(c6x.Inst{Op: c6x.CMPLT, Dst: regBScr0, Src1: c6x.R(regArg0), Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.CMPLT, Dst: regBScr1, Src1: c6x.R(regArg1), Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.NEG, Dst: regArg0, Src1: c6x.R(regArg0), Pred: pred(regBScr0)})
	b.emit(c6x.Inst{Op: c6x.NEG, Dst: regArg1, Src1: c6x.R(regArg1), Pred: pred(regBScr1)})
	b.branch(core, c6x.Pred{})

	// Unsigned entry: zero check, clear the sign flags.
	b.block("udiv", udiv)
	b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s0, Src1: c6x.R(regArg1), Src2: c6x.Imm(0)})
	b.branch(dz, pred(s0))
	b.block("udiv.clr")
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: regBScr0, Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: regBScr1, Src2: c6x.Imm(0)})
	// falls through to the core

	// Unsigned restoring divide: N=A24 D=A25, Q=A26 R=A27, i=A28, t=A29.
	b.block("udiv.core", core)
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s1, Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s2, Src2: c6x.Imm(32)})
	// falls through into the loop
	b.block("udiv.loop", loop)
	b.emit(c6x.Inst{Op: c6x.SHR, Dst: s3, Src1: c6x.R(regArg0), Src2: c6x.Imm(31)})
	b.emit(c6x.Inst{Op: c6x.SHL, Dst: s1, Src1: c6x.R(s1), Src2: c6x.Imm(1)})
	b.emit(c6x.Inst{Op: c6x.OR, Dst: s1, Src1: c6x.R(s1), Src2: c6x.R(s3)})
	b.emit(c6x.Inst{Op: c6x.SHL, Dst: regArg0, Src1: c6x.R(regArg0), Src2: c6x.Imm(1)})
	b.emit(c6x.Inst{Op: c6x.CMPLTU, Dst: s3, Src1: c6x.R(s1), Src2: c6x.R(regArg1)})
	b.emit(c6x.Inst{Op: c6x.SHL, Dst: s0, Src1: c6x.R(s0), Src2: c6x.Imm(1)})
	b.emit(c6x.Inst{Op: c6x.SUB, Dst: s1, Src1: c6x.R(s1), Src2: c6x.R(regArg1), Pred: npred(s3)})
	b.emit(c6x.Inst{Op: c6x.ADD, Dst: s0, Src1: c6x.R(s0), Src2: c6x.Imm(1), Pred: npred(s3)})
	b.emit(c6x.Inst{Op: c6x.SUB, Dst: s2, Src1: c6x.R(s2), Src2: c6x.Imm(1)})
	b.branch(loop, pred(s2))

	// Sign fixup and return: quotient sign = nneg^dneg, remainder takes
	// the dividend's sign.
	b.block("div.tail")
	b.emit(c6x.Inst{Op: c6x.XOR, Dst: regBScr1, Src1: c6x.R(regBScr0), Src2: c6x.R(regBScr1)})
	b.emit(c6x.Inst{Op: c6x.NEG, Dst: s0, Src1: c6x.R(s0), Pred: pred(regBScr1)})
	b.emit(c6x.Inst{Op: c6x.NEG, Dst: s1, Src1: c6x.R(s1), Pred: pred(regBScr0)})
	b.emit(c6x.Inst{Op: c6x.MV, Dst: regArg0, Src1: c6x.R(s0)})
	b.emit(c6x.Inst{Op: c6x.MV, Dst: regArg1, Src1: c6x.R(s1)})
	b.ret()

	// Division by zero: quotient 0, remainder = dividend.
	b.block("div.dz", dz)
	b.emit(c6x.Inst{Op: c6x.MV, Dst: regArg1, Src1: c6x.R(regArg0)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: regArg0, Src2: c6x.Imm(0)})
	b.ret()
}

// emitProbeRoutine generates the cache simulation subroutine of Figure 4
// from the cache description: look the tag/valid word up in the set; on a
// hit renew the LRU information; on a miss replace the LRU way, renew LRU,
// and add the miss penalty to the cycle correction counter.
//
// Arguments: A24 = expected tag word (valid|tag), A25 = set byte offset.
// For 1- and 2-way geometries the in-memory layout per set is
// [way0, way1, lru], 4 bytes each, with a single LRU index word; wider
// geometries get the generalized routine over the
// [tag0..tagN-1, age0..ageN-1] layout (see emitProbeNWay).
func (t *translator) emitProbeRoutine() error {
	g := t.desc.ICache
	if g.Ways < 1 || g.Ways > maxProbeWays {
		return fmt.Errorf("core: cache probe generation supports 1..%d ways, got %d", maxProbeWays, g.Ways)
	}
	if g.Ways > 2 {
		t.emitProbeNWay()
		return nil
	}
	entry := t.routineLabel("probe")
	pen := int32(g.MissPenalty)
	s0 := regScratch[0] // A26: loaded word
	s1 := regScratch[1] // A27: second way word
	s2 := regScratch[2] // A28: compare result
	s3 := regScratch[3] // A29: compare result 2

	b := &rb{t: t}
	if g.Ways == 1 {
		miss := t.newLabel()
		b.block("probe", entry)
		b.emit(c6x.Inst{Op: c6x.ADD, Dst: regBScr0, Src1: c6x.R(regCacheTab), Src2: c6x.R(regArg1)})
		b.emit(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
		b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.R(regArg0)})
		b.branch(miss, npred(s2))
		b.block("probe.hit")
		b.ret()
		b.block("probe.miss", miss)
		b.emit(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
		b.emit(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
		b.ret()
		return nil
	}

	hit0 := t.newLabel()
	hit1 := t.newLabel()
	repl0 := t.newLabel()

	b.block("probe", entry)
	b.emit(c6x.Inst{Op: c6x.ADD, Dst: regBScr0, Src1: c6x.R(regCacheTab), Src2: c6x.R(regArg1)})
	b.emit(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.LDW, Dst: s1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(4)})
	b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.R(regArg0)})
	b.branch(hit0, pred(s2))
	b.block("probe.chk1")
	b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s3, Src1: c6x.R(s1), Src2: c6x.R(regArg0)})
	b.branch(hit1, pred(s3))
	// Miss: replace the LRU way (Figure 4's "use lru information to find
	// out tag to overwrite ... add additional cycles").
	b.block("probe.miss")
	b.emit(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.Imm(0)})
	b.branch(repl0, pred(s2))
	b.block("probe.repl1")
	b.emit(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(4)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	b.emit(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
	b.ret()
	b.block("probe.repl0", repl0)
	b.emit(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(1)})
	b.emit(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	b.emit(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
	b.ret()
	// Hits renew the LRU information only.
	b.block("probe.hit0", hit0)
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(1)})
	b.emit(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	b.ret()
	b.block("probe.hit1", hit1)
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s0, Src2: c6x.Imm(0)})
	b.emit(c6x.Inst{Op: c6x.STW, Data: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(8)})
	b.ret()
	return nil
}

// maxProbeWays bounds the generalized probe generator: way indices are
// compared against short immediates, and the generated code grows with
// the square of the associativity.
const maxProbeWays = 16

// emitProbeNWay generates the cache simulation subroutine for an N-way
// set-associative cache (N ≥ 3), implementing exactly the true-LRU
// policy of the reference model (march.Cache): per set the table holds
// the N tag/valid words followed by the N age words (0 = most recently
// used). A hit re-ages the set around the hit way; a miss victimizes the
// way with the greatest effective age — invalid ways, whose tag word
// lacks the valid bit, count as older than any valid way — installs the
// tag, re-ages, and adds the miss penalty to the correction counter.
//
// The routine is straight-line predicated code plus one branch per way
// for the hit checks and the victim dispatch; ages live in memory, so
// only the reserved argument/scratch registers are used.
func (t *translator) emitProbeNWay() {
	g := t.desc.ICache
	n := g.Ways
	entry := t.routineLabel("probe")
	pen := int32(g.MissPenalty)
	tagOff := func(w int) int32 { return int32(w) * 4 }
	ageOff := func(w int) int32 { return int32(n+w) * 4 }

	s0 := regScratch[0] // A26: loaded tag word
	s1 := regScratch[1] // A27: loaded/updated age
	s2 := regScratch[2] // A28: compare scratch
	s3 := regScratch[3] // A29: best age / old age
	best := regBScr1    // B25: victim way index

	b := &rb{t: t}

	// touch re-ages the set around way w: every younger way ages by one,
	// w becomes age 0. Identical to march.Cache.touch.
	touch := func(w int) {
		b.emit(c6x.Inst{Op: c6x.LDW, Dst: s3, Src1: c6x.R(regBScr0), Src2: c6x.Imm(ageOff(w))})
		for k := 0; k < n; k++ {
			if k == w {
				continue
			}
			b.emit(c6x.Inst{Op: c6x.LDW, Dst: s1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(ageOff(k))})
			b.emit(c6x.Inst{Op: c6x.CMPLT, Dst: s2, Src1: c6x.R(s1), Src2: c6x.R(s3)})
			b.emit(c6x.Inst{Op: c6x.ADD, Dst: s1, Src1: c6x.R(s1), Src2: c6x.Imm(1), Pred: pred(s2)})
			b.emit(c6x.Inst{Op: c6x.STW, Data: s1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(ageOff(k)), Pred: pred(s2)})
		}
		b.emit(c6x.Inst{Op: c6x.MVK, Dst: s1, Src2: c6x.Imm(0)})
		b.emit(c6x.Inst{Op: c6x.STW, Data: s1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(ageOff(w))})
	}

	// Hit checks, one way per block.
	hit := make([]int, n)
	for w := range hit {
		hit[w] = t.newLabel()
	}
	b.block("probe", entry)
	b.emit(c6x.Inst{Op: c6x.ADD, Dst: regBScr0, Src1: c6x.R(regCacheTab), Src2: c6x.R(regArg1)})
	for w := 0; w < n; w++ {
		b.emit(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(tagOff(w))})
		b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(s0), Src2: c6x.R(regArg0)})
		b.branch(hit[w], pred(s2))
		b.block(fmt.Sprintf("probe.chk%d", w+1))
	}

	// Miss: select the victim — the way with the greatest effective age,
	// earliest way winning ties, as in the reference model's scan.
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: s3, Src2: c6x.Imm(-1)})
	b.emit(c6x.Inst{Op: c6x.MVK, Dst: best, Src2: c6x.Imm(0)})
	for w := 0; w < n; w++ {
		b.emit(c6x.Inst{Op: c6x.LDW, Dst: s0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(tagOff(w))})
		b.emit(c6x.Inst{Op: c6x.LDW, Dst: s1, Src1: c6x.R(regBScr0), Src2: c6x.Imm(ageOff(w))})
		// Invalid tag words lack the valid bit (they are non-negative);
		// treat them as older than any valid way.
		b.emit(c6x.Inst{Op: c6x.CMPLT, Dst: s2, Src1: c6x.R(s0), Src2: c6x.Imm(0)})
		b.emit(c6x.Inst{Op: c6x.MVK, Dst: s1, Src2: c6x.Imm(int32(n)), Pred: npred(s2)})
		b.emit(c6x.Inst{Op: c6x.CMPLT, Dst: s2, Src1: c6x.R(s3), Src2: c6x.R(s1)})
		b.emit(c6x.Inst{Op: c6x.MV, Dst: s3, Src1: c6x.R(s1), Pred: pred(s2)})
		b.emit(c6x.Inst{Op: c6x.MVK, Dst: best, Src2: c6x.Imm(int32(w)), Pred: pred(s2)})
	}

	// Victim dispatch: branch to the per-way replacement block.
	repl := make([]int, n)
	for w := range repl {
		repl[w] = t.newLabel()
	}
	for w := 0; w < n-1; w++ {
		b.emit(c6x.Inst{Op: c6x.CMPEQ, Dst: s2, Src1: c6x.R(best), Src2: c6x.Imm(int32(w))})
		b.branch(repl[w], pred(s2))
		b.block(fmt.Sprintf("probe.disp%d", w+1))
	}
	b.branch(repl[n-1], c6x.Pred{})

	for w := 0; w < n; w++ {
		b.block(fmt.Sprintf("probe.repl%d", w), repl[w])
		b.emit(c6x.Inst{Op: c6x.STW, Data: regArg0, Src1: c6x.R(regBScr0), Src2: c6x.Imm(tagOff(w))})
		touch(w)
		b.emit(c6x.Inst{Op: c6x.ADD, Dst: regCorr, Src1: c6x.R(regCorr), Src2: c6x.Imm(pen)})
		b.ret()
	}
	for w := 0; w < n; w++ {
		b.block(fmt.Sprintf("probe.hit%d", w), hit[w])
		touch(w)
		b.ret()
	}
}
