package core

import (
	"repro/internal/iss"
	"repro/internal/tc32"
)

// This file implements the "finding base addresses" stage of Figure 1: a
// forward dataflow analysis over both register files that classifies every
// load/store as DATA (plain memory, translated directly), IO (replaced by
// a cycle-accurate bus-model access) or UNKNOWN (routed through the bus
// model's runtime address check), and statically resolves ji targets.
//
// The abstract domain tracks exact constants (from movh.a/lea/movi/movhi
// chains) and a region approximation: pointer arithmetic that adds an
// unknown index to a data-region pointer stays in the data region — the
// standard assumption of static binary translators, which is what lets
// array accesses in loops keep their fast direct translation.

type absRegion uint8

const (
	regionNone absRegion = iota
	regionData
	regionIO
)

type absVal struct {
	known  bool
	val    uint32
	region absRegion
}

func classifyAddr(v uint32) absRegion {
	switch {
	case v >= 0x1000_0000 && v < 0x1000_0000+iss.RAMSize+4:
		return regionData
	case iss.IsIO(v):
		return regionIO
	}
	return regionNone
}

func constVal(v uint32) absVal {
	return absVal{known: true, val: v, region: classifyAddr(v)}
}

func (a absVal) meet(b absVal) absVal {
	if a.known && b.known && a.val == b.val {
		return a
	}
	if a.region == b.region && a.region != regionNone {
		return absVal{region: a.region}
	}
	return absVal{}
}

// addAbs models pointer arithmetic: const+const folds; anything added to a
// data/IO-region value stays in that region.
func addAbs(a, b absVal) absVal {
	if a.known && b.known {
		return constVal(a.val + b.val)
	}
	if a.region == regionData || b.region == regionData {
		return absVal{region: regionData}
	}
	if a.region == regionIO || b.region == regionIO {
		return absVal{region: regionIO}
	}
	return absVal{}
}

type absState struct {
	d [16]absVal
	a [16]absVal
}

func (s *absState) meet(o *absState) (changed bool) {
	for i := 0; i < 16; i++ {
		if m := s.d[i].meet(o.d[i]); m != s.d[i] {
			s.d[i] = m
			changed = true
		}
		if m := s.a[i].meet(o.a[i]); m != s.a[i] {
			s.a[i] = m
			changed = true
		}
	}
	return changed
}

type regionAnalysis struct {
	entry []absState
	seen  []bool
}

// analyzeRegions runs the dataflow to a fixpoint and fills in each
// block's memClass and jiTarget.
func (t *translator) analyzeRegions() {
	n := len(t.blocks)
	ra := &regionAnalysis{entry: make([]absState, n), seen: make([]bool, n)}
	t.regions = ra

	// Call edges: the return site receives a state where data registers
	// are clobbered but address registers survive (TC32 ABI: address
	// registers are callee-saved; a11 holds the return address and is
	// rewritten by the translator anyway).
	var work []int
	push := func(i int, st absState, isCallReturn bool) {
		if isCallReturn {
			for k := 0; k < 16; k++ {
				st.d[k] = absVal{}
			}
			st.a[tc32.RA] = absVal{}
		}
		if !ra.seen[i] {
			ra.seen[i] = true
			ra.entry[i] = st
			work = append(work, i)
			return
		}
		merged := ra.entry[i]
		if merged.meet(&st) {
			ra.entry[i] = merged
			work = append(work, i)
		}
	}
	if ei, ok := t.blkAt[t.entry]; ok {
		ra.seen[ei] = true
		work = append(work, ei)
	}
	// The interrupt handler can be entered between any two instructions,
	// so it is seeded with the unknown (bottom) state: every access it
	// performs goes through the runtime address check. Interrupt
	// transparency is the flip side: the analysis assumes a handler
	// restores every register it touches before reti (see
	// docs/architecture.md, "Interrupts").
	if t.irqEntry != 0 {
		if hi, ok := t.blkAt[t.irqEntry]; ok {
			push(hi, absState{}, false)
		}
	}

	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		blk := t.blocks[bi]
		st := ra.entry[bi]
		for _, in := range blk.insts {
			transfer(&st, in)
		}
		last := blk.insts[len(blk.insts)-1]
		succAddr := last.Addr + uint32(last.Size)
		switch {
		case last.Op == tc32.HALT:
		case last.Op == tc32.JL:
			if ti, ok := t.blkAt[last.Target()]; ok {
				push(ti, st, false)
			}
			if si, ok := t.blkAt[succAddr]; ok {
				push(si, st, true)
			}
		case last.Op == tc32.J || last.Op == tc32.J16:
			if ti, ok := t.blkAt[last.Target()]; ok {
				push(ti, st, false)
			}
		case last.Op == tc32.JI:
			v := st.a[last.Rs1]
			if v.known {
				if ti, ok := t.blkAt[v.val]; ok {
					push(ti, st, false)
				}
			} else {
				// Unknown indirect target: propagate to every potential
				// leader conservatively.
				for i := range t.blocks {
					push(i, st, true)
				}
			}
		case last.Op.IsIndirect(): // ret
		case last.Op.IsCondBranch():
			if ti, ok := t.blkAt[last.Target()]; ok {
				push(ti, st, false)
			}
			if si, ok := t.blkAt[succAddr]; ok {
				push(si, st, false)
			}
		default: // fallthrough block
			if si, ok := t.blkAt[succAddr]; ok {
				push(si, st, false)
			}
		}
	}

	// Classification pass.
	for bi, blk := range t.blocks {
		st := ra.entry[bi]
		blk.memClass = make([]memClass, len(blk.insts))
		for i, in := range blk.insts {
			if in.Op.IsMem() {
				base := st.a[in.Rs1]
				switch {
				case base.known:
					switch classifyAddr(base.val + uint32(in.Imm)) {
					case regionData:
						blk.memClass[i] = memData
					case regionIO:
						blk.memClass[i] = memIO
					default:
						blk.memClass[i] = memUnknown
					}
				case base.region == regionData:
					blk.memClass[i] = memData
				case base.region == regionIO:
					blk.memClass[i] = memIO
				default:
					blk.memClass[i] = memUnknown
				}
			}
			if in.Op == tc32.JI {
				if v := st.a[in.Rs1]; v.known {
					blk.jiTarget = v.val
				}
			}
			transfer(&st, in)
		}
	}
}

// transfer applies one instruction to the abstract state.
func transfer(st *absState, in tc32.Inst) {
	switch in.Op {
	case tc32.MOVI, tc32.MOVI16:
		st.d[in.Rd] = constVal(uint32(in.Imm))
	case tc32.MOVHI:
		st.d[in.Rd] = constVal(uint32(in.Imm) << 16)
	case tc32.ADDI:
		st.d[in.Rd] = addAbs(st.d[in.Rs1], constVal(uint32(in.Imm)))
	case tc32.ADDI16:
		st.d[in.Rd] = addAbs(st.d[in.Rd], constVal(uint32(in.Imm)))
	case tc32.ADD:
		st.d[in.Rd] = addAbs(st.d[in.Rs1], st.d[in.Rs2])
	case tc32.ADD16:
		st.d[in.Rd] = addAbs(st.d[in.Rd], st.d[in.Rs1])
	case tc32.ORI:
		if v := st.d[in.Rs1]; v.known {
			st.d[in.Rd] = constVal(v.val | uint32(in.Imm))
		} else {
			st.d[in.Rd] = absVal{}
		}
	case tc32.MOV, tc32.MOV16:
		st.d[in.Rd] = st.d[in.Rs1]
	case tc32.MOVHA:
		st.a[in.Rd] = constVal(uint32(in.Imm) << 16)
	case tc32.LEA:
		st.a[in.Rd] = addAbs(st.a[in.Rs1], constVal(uint32(in.Imm)))
	case tc32.ADDIA:
		st.a[in.Rd] = addAbs(st.a[in.Rs1], constVal(uint32(in.Imm)))
	case tc32.ADDA:
		st.a[in.Rd] = addAbs(st.a[in.Rs1], st.a[in.Rs2])
	case tc32.MOVD2A:
		st.a[in.Rd] = st.d[in.Rs1]
	case tc32.MOVA2D:
		st.d[in.Rd] = st.a[in.Rs1]
	case tc32.JL:
		st.a[tc32.RA] = absVal{} // rewritten to a packet index
	case tc32.LDA:
		st.a[in.Rd] = absVal{}
	default:
		if in.Op.IsLoad() {
			st.d[in.Rd] = absVal{}
		} else if dst, has := writesData(in); has {
			st.d[dst] = absVal{}
		}
	}
}

// writesData reports whether in writes a data register not covered by the
// explicit cases in transfer.
func writesData(in tc32.Inst) (uint8, bool) {
	switch in.Op {
	case tc32.RSUBI, tc32.ANDI, tc32.XORI, tc32.EQI, tc32.LTI,
		tc32.SHLI, tc32.SHRI, tc32.SARI, tc32.SUB, tc32.MUL, tc32.DIV,
		tc32.DIVU, tc32.REM, tc32.REMU, tc32.AND, tc32.OR, tc32.XOR,
		tc32.ANDN, tc32.SHL, tc32.SHR, tc32.SAR, tc32.EQ, tc32.NE,
		tc32.LT, tc32.LTU, tc32.GE, tc32.GEU, tc32.MIN, tc32.MAX,
		tc32.ABS, tc32.SEXTB, tc32.SEXTH, tc32.SUB16:
		return in.Rd, true
	}
	return 0, false
}
