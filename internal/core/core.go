package core

import (
	"fmt"

	"repro/internal/c6x"
	"repro/internal/elf32"
	"repro/internal/march"
	"repro/internal/tc32"
)

// Level is the cycle-accuracy detail level of the generated code
// (Section 3.2 of the paper).
type Level int

// Detail levels, in the paper's order.
const (
	// Level0 is purely functional translation: no cycle annotation at all
	// ("C6x w/o cycle inf." in Figure 5).
	Level0 Level = iota
	// Level1 annotates each basic block with its statically predicted
	// cycle count ("C6x with cycle inf.").
	Level1
	// Level2 adds dynamic correction of the static branch prediction
	// ("C6x branch pred.").
	Level2
	// Level3 additionally simulates the instruction cache with cache
	// analysis blocks ("C6x cache").
	Level3
)

// String names the level as in the paper's figures.
func (l Level) String() string {
	switch l {
	case Level0:
		return "C6x w/o cycle info"
	case Level1:
		return "C6x with cycle info"
	case Level2:
		return "C6x branch prediction"
	case Level3:
		return "C6x caches"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Platform memory-map constants of the emulation system.
const (
	// SyncBase is the synchronization device in the FPGA fabric.
	SyncBase = 0x8000_0000
	// SyncStart: writing n starts generation of n cycles; reading blocks
	// until the generation has drained (Figure 2).
	SyncStart = SyncBase + 0
	// SyncAdd: writing c adds c correction cycles to the running
	// generation (the correction block of Figure 3).
	SyncAdd = SyncBase + 4
	// SyncTotal reads the total number of generated cycles (low word).
	SyncTotal = SyncBase + 8
	// CacheTableBase is the reserved memory holding the simulated
	// instruction cache's tag/valid/LRU words ("space reserved at the end
	// of the translated program" in Section 3.4.2; we place it in a
	// dedicated emulation RAM region).
	CacheTableBase = 0x2000_0000

	// Interrupt support registers of the platform (next to the sync
	// device; visible only to generated code, never to source programs).
	// The source-level interrupt state of a translated core — IE, the
	// shadow PC, the in-handler flag — lives on the platform side, which
	// also owns delivery: at a region boundary whose region starts at a
	// basic-block leader, a pending line redirects the C6x to the
	// translated handler (see internal/platform).
	//
	// IRQCtl: writing 1 is the source program's ei, 0 its di.
	IRQCtl = SyncBase + 0x10
	// IRQRet: written by the translated reti just before it branches
	// through RegIRQShadow; the platform restores IE and clears the
	// in-handler flag (a write outside a handler is an error, exactly
	// like the ISS's spurious reti).
	IRQRet = SyncBase + 0x14
	// IRQWait: written by the translated wfi; the platform idles the
	// emulated clock until the interrupt line delivers.
	IRQWait = SyncBase + 0x18
)

// RegIRQShadow is the reserved C6x register holding the shadow return
// packet index: interrupt entry writes the interrupted region's packet
// index here, and the translated reti branches through it (BREG). It is
// reserved alongside the translator's other fixed registers and never
// allocated to generated code.
var RegIRQShadow = c6x.B(27)

// RegCorrCycles is the reserved C6x register accumulating correction
// cycles (cache-miss penalties, branch-prediction corrections) not yet
// flushed into the sync device. The platform reads it to stamp bus
// transactions at the reference simulator's convention: the instruction
// issue cycle includes penalties the translated code only flushes at the
// region end.
var RegCorrCycles = regCorr

// Reserved C6x registers. TC32 data registers d0..d15 map to A0..A15 and
// address registers a0..a15 to B0..B15; everything above is owned by the
// translator.
var (
	regTempA = []c6x.Reg{c6x.A(16), c6x.A(17), c6x.A(18), c6x.A(19), c6x.A(20), c6x.A(21), c6x.A(22), c6x.A(23)}
	regTempB = []c6x.Reg{c6x.B(16), c6x.B(17), c6x.B(18), c6x.B(19), c6x.B(20), c6x.B(21), c6x.B(22), c6x.B(23)}

	// Routine argument/scratch registers (runtime routines are leaf and
	// register-only, so no stack is needed).
	regArg0    = c6x.A(24)
	regArg1    = c6x.A(25)
	regScratch = []c6x.Reg{c6x.A(26), c6x.A(27), c6x.A(28), c6x.A(29)}
	regBScr0   = c6x.B(24)
	regBScr1   = c6x.B(25)

	regLink      = c6x.B(26) // runtime-routine return packet index
	regCacheTab  = c6x.B(28) // cache table base (level 3)
	regSyncBase  = c6x.B(29) // sync device base
	regCorr      = c6x.B(30) // cycle correction counter
	regWaitDummy = c6x.A(31) // sync wait load destination (never read)
)

// FusedConstRegs returns the registers whose MVK/MVKH-built constants the
// superblock fuser (c6x.Fuse) tracks symbolically to resolve the
// translator's indirect branches: the runtime-routine link register and
// the source return-address register — calls park the translated return
// packet index in both as plain MVK immediates. RegIRQShadow is
// deliberately absent: its value is written by the platform at interrupt
// entry, so the translated reti always deoptimizes to the generic
// engine.
func FusedConstRegs() []c6x.Reg {
	return []c6x.Reg{regLink, aR(tc32.RA)}
}

// Options configure a translation.
type Options struct {
	Level Level
	// Desc is the source-processor description (pipelines, caches,
	// branch costs); nil selects march.Default(). In the full tool flow
	// this comes from the XML description (internal/isadesc).
	Desc *march.Desc
	// InstructionOriented translates every instruction as its own cycle
	// region (cycle generation per instruction). This is the second
	// translation used by the debugger for single-stepping (Section 3.5).
	InstructionOriented bool
	// InlineCacheProbe inlines the cache-simulation code into large
	// basic blocks instead of calling the subroutine (Section 3.4.2,
	// "In large basic blocks, this code can be included into the basic
	// block"). Blocks with at least InlineCacheThreshold instructions
	// use the inline form.
	InlineCacheProbe     bool
	InlineCacheThreshold int
	// SingleDrainCorrection flushes correction cycles through the sync
	// device's ADD register so one blocking read drains everything. The
	// default (false) is the paper's Figure 3 shape: wait for the base
	// generation, start a separate correction generation, wait again —
	// costlier per block, and part of why the branch-prediction and cache
	// levels slow down in Table 1. The single-drain form is this
	// reproduction's improvement, measured by the ablation bench.
	SingleDrainCorrection bool
}

// BlockInfo describes one translated cycle region (one source basic block,
// or one instruction in instruction-oriented mode).
type BlockInfo struct {
	SrcStart     uint32 // first source instruction address
	SrcEnd       uint32 // one past the last source instruction
	SrcInsts     int    // number of source instructions
	StaticCycles int64  // statically predicted source cycles (n)
	PacketStart  int    // first packet of the region
	CondBranch   bool   // region ends with a conditional branch
	CABs         int    // cache analysis blocks (level 3)
	// Leader marks a region that starts at a source basic-block leader
	// (tc32.Leaders). Regions produced by I/O or instruction-oriented
	// splitting are not leaders. Leader region starts are the translated
	// program's interrupt delivery points: the reference simulator
	// checks the line at exactly the same set, which is what makes a
	// pending interrupt land at the identical source cycle in both.
	Leader bool
}

// Program is a translated program plus its metadata.
type Program struct {
	C6x   *c6x.Program
	Level Level
	Desc  *march.Desc

	// Blocks in layout order.
	Blocks []BlockInfo
	// PacketOfSrc maps a source basic-block start address to its first
	// packet (used by the debugger and by indirect-jump lookup).
	PacketOfSrc map[uint32]int
	// SrcOfPacket is the reverse map for block starts.
	SrcOfPacket map[int]uint32

	// TextAddr/TextImage is the source code image (mapped read-only on
	// the platform so constant loads from .text work).
	TextAddr  uint32
	TextImage []byte
	// DataAddr/DataImage is the initialized data image to load.
	DataAddr  uint32
	DataImage []byte
	// BSS extent (zero-initialized).
	BssAddr uint32
	BssSize uint32

	// CacheTableWords is the size of the simulated I-cache state in
	// 32-bit words (level 3). 1- and 2-way geometries use the compact
	// per-set layout [way0, way1, lru]; wider geometries use
	// [tag0..tagN-1, age0..ageN-1] with CacheTableInit holding the
	// initial words (the true-LRU ages must start as a permutation).
	CacheTableWords int
	// CacheTableInit is the initial contents of the cache table (empty =
	// all zeros, the 1-/2-way case). The platform loads it into the
	// reserved emulation RAM before the run.
	CacheTableInit []uint32

	// TotalSrcInsts is the number of source instructions translated.
	TotalSrcInsts int

	// IRQEntry is the source address of the `__irq` interrupt handler
	// (0 = the program has no handler and interrupts are undeliverable).
	IRQEntry uint32
}

// Translate translates an assembled TC32 ELF image.
func Translate(f *elf32.File, opts Options) (*Program, error) {
	if opts.Desc == nil {
		opts.Desc = march.Default()
	}
	if opts.InlineCacheThreshold == 0 {
		opts.InlineCacheThreshold = 24
	}
	if opts.Level < Level0 || opts.Level > Level3 {
		return nil, fmt.Errorf("core: invalid level %d", int(opts.Level))
	}
	t := &translator{opts: opts, desc: opts.Desc}
	return t.run(f)
}

// translator carries the per-run state through the pipeline stages.
type translator struct {
	opts Options
	desc *march.Desc

	entry    uint32
	irqEntry uint32      // `__irq` vector (0 = none)
	insts    []tc32.Inst // decoded source instructions
	index    map[uint32]int
	leaders  map[uint32]bool // basic-block leader set (tc32.Leaders)
	blocks   []*srcBlock
	blkAt    map[uint32]int // source addr -> blocks index

	regions *regionAnalysis

	tblocks     []*tblock
	labelTarget []int // label id -> tblock index (-1 until defined)
	blockLabel  []int // source block index -> label id
	routines    map[string]int

	prog *Program
}

func (t *translator) run(f *elf32.File) (*Program, error) {
	text := f.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("core: no .text section in object file")
	}
	t.entry = f.Entry
	if err := t.decode(text.Data, text.Addr, f.Entry); err != nil {
		return nil, err
	}
	// The `__irq` symbol is the interrupt vector: an extra entry point
	// reachable only through interrupt delivery, so it must be seeded as
	// a block leader (and into the region analysis) explicitly.
	if sym, ok := f.Symbol("__irq"); ok {
		if _, isInst := t.index[sym.Value]; !isInst {
			return nil, fmt.Errorf("core: __irq vector %#x is not an instruction", sym.Value)
		}
		t.irqEntry = sym.Value
	}
	if err := t.buildBlocks(f.Entry); err != nil {
		return nil, err
	}
	t.analyzeRegions()
	t.splitIOBlocks()
	t.calcCycles()
	if err := t.lowerAll(); err != nil {
		return nil, err
	}
	prog, err := t.link()
	if err != nil {
		return nil, err
	}
	prog.Level = t.opts.Level
	prog.Desc = t.desc
	prog.TotalSrcInsts = len(t.insts)
	prog.IRQEntry = t.irqEntry
	if t.irqEntry != 0 {
		if _, ok := prog.PacketOfSrc[t.irqEntry]; !ok {
			return nil, fmt.Errorf("core: __irq vector %#x has no translated region", t.irqEntry)
		}
	}
	prog.TextAddr = text.Addr
	prog.TextImage = append([]byte(nil), text.Data...)
	if data := f.Section(".data"); data != nil {
		prog.DataAddr = data.Addr
		prog.DataImage = append([]byte(nil), data.Data...)
	}
	if bss := f.Section(".bss"); bss != nil {
		prog.BssAddr = bss.Addr
		prog.BssSize = bss.Size
	}
	if t.opts.Level >= Level3 {
		g := t.desc.ICache
		if g.Ways <= 2 {
			prog.CacheTableWords = g.Sets * (g.Ways + 1)
		} else {
			prog.CacheTableWords = g.Sets * 2 * g.Ways
			prog.CacheTableInit = make([]uint32, prog.CacheTableWords)
			for s := 0; s < g.Sets; s++ {
				base := s * 2 * g.Ways
				for w := 0; w < g.Ways; w++ {
					// Ages start as the same permutation the reference
					// model resets to (march.Cache.Reset): way index.
					prog.CacheTableInit[base+g.Ways+w] = uint32(w)
				}
			}
		}
	}
	return prog, nil
}
