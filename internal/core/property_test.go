package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/c6x"
	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/jit"
	"repro/internal/platform"
	"repro/internal/rtlsim"
	"repro/internal/tc32"
)

// genProgram builds a random but safe TC32 program: a prologue pins the
// data base and stack, a straight-line body of random ALU and memory
// operations works on a 256-byte scratch window, an optional counted loop
// exercises control flow, and an epilogue emits every data register to
// the debug port.
func genProgram(r *rand.Rand) *elf32.File {
	var code []byte
	emit := func(i tc32.Inst) {
		var b [4]byte
		n, err := tc32.Encode(i, b[:])
		if err != nil {
			panic(err)
		}
		code = append(code, b[:n]...)
	}
	// Prologue: a2 -> scratch RAM, a15 -> debug port, registers seeded.
	emit(tc32.Inst{Op: tc32.MOVHA, Rd: 2, Imm: 0x1000})
	emit(tc32.Inst{Op: tc32.MOVHA, Rd: 15, Imm: 0xF000})
	emit(tc32.Inst{Op: tc32.LEA, Rd: 15, Rs1: 15, Imm: 0xF00})
	for d := uint8(0); d < 8; d++ {
		emit(tc32.Inst{Op: tc32.MOVI, Rd: d, Imm: int32(r.Intn(2000) - 1000)})
	}

	aluOps := []tc32.Op{
		tc32.ADD, tc32.SUB, tc32.MUL, tc32.AND, tc32.OR, tc32.XOR, tc32.ANDN,
		tc32.SHL, tc32.SHR, tc32.SAR, tc32.EQ, tc32.NE, tc32.LT, tc32.LTU,
		tc32.GE, tc32.GEU, tc32.MIN, tc32.MAX, tc32.DIV, tc32.DIVU,
		tc32.REM, tc32.REMU,
	}
	immOps := []tc32.Op{
		tc32.ADDI, tc32.RSUBI, tc32.ANDI, tc32.ORI, tc32.XORI, tc32.EQI,
		tc32.LTI, tc32.SHLI, tc32.SHRI, tc32.SARI,
	}
	shortOps := []tc32.Op{tc32.MOV16, tc32.ADD16, tc32.SUB16, tc32.MOVI16, tc32.ADDI16}

	n := 10 + r.Intn(40)
	for k := 0; k < n; k++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			op := aluOps[r.Intn(len(aluOps))]
			emit(tc32.Inst{Op: op, Rd: uint8(r.Intn(8)), Rs1: uint8(r.Intn(8)), Rs2: uint8(r.Intn(8))})
		case 4, 5:
			op := immOps[r.Intn(len(immOps))]
			imm := int32(r.Intn(100))
			if op == tc32.SHLI || op == tc32.SHRI || op == tc32.SARI {
				imm = int32(r.Intn(31))
			}
			emit(tc32.Inst{Op: op, Rd: uint8(r.Intn(8)), Rs1: uint8(r.Intn(8)), Imm: imm})
		case 6:
			op := shortOps[r.Intn(len(shortOps))]
			in := tc32.Inst{Op: op, Rd: uint8(r.Intn(8)), Rs1: uint8(r.Intn(8))}
			if op == tc32.MOVI16 || op == tc32.ADDI16 {
				in.Rs1 = 0
				in.Imm = int32(r.Intn(15)) - 8
			}
			emit(in)
		case 7:
			// Store then load through the scratch window.
			off := int32(4 * r.Intn(64))
			emit(tc32.Inst{Op: tc32.STW, Rd: uint8(r.Intn(8)), Rs1: 2, Imm: off})
			emit(tc32.Inst{Op: tc32.LDW, Rd: uint8(r.Intn(8)), Rs1: 2, Imm: off})
		case 8:
			// Sub-word memory.
			off := int32(r.Intn(200))
			emit(tc32.Inst{Op: tc32.STB, Rd: uint8(r.Intn(8)), Rs1: 2, Imm: off})
			emit(tc32.Inst{Op: tc32.LDBU, Rd: uint8(r.Intn(8)), Rs1: 2, Imm: off})
		case 9:
			emit(tc32.Inst{Op: tc32.SEXTB, Rd: uint8(r.Intn(8)), Rs1: uint8(r.Intn(8))})
		}
	}
	// A counted loop with a data-dependent body (exercises branch
	// prediction and correction): d9 iterations, accumulate into d1.
	iters := int32(2 + r.Intn(6))
	emit(tc32.Inst{Op: tc32.MOVI, Rd: 9, Imm: iters})
	loopStart := uint32(len(code))
	emit(tc32.Inst{Op: tc32.ADD, Rd: 1, Rs1: 1, Rs2: 9})
	emit(tc32.Inst{Op: tc32.ADDI, Rd: 9, Rs1: 9, Imm: -1})
	body := int32(uint32(len(code)) - loopStart)
	emit(tc32.Inst{Op: tc32.JNZ, Rs1: 9, Imm: -body})

	// Epilogue: emit d0..d7.
	for d := uint8(0); d < 8; d++ {
		emit(tc32.Inst{Op: tc32.STW, Rd: d, Rs1: 15, Imm: 0})
	}
	emit(tc32.Inst{Op: tc32.HALT})

	return &elf32.File{
		Entry: 0,
		Sections: []elf32.Section{
			{Name: ".text", Type: elf32.SHTProgbits, Flags: elf32.SHFAlloc | elf32.SHFExecinstr, Addr: 0, Data: code},
			{Name: ".data", Type: elf32.SHTProgbits, Flags: elf32.SHFAlloc | elf32.SHFWrite, Addr: 0x1000_0000, Data: make([]byte, 1024)},
		},
	}
}

// TestRandomProgramsAgreeAcrossAllEngines is the cross-simulator
// differential property: for random programs, the interpreter, the
// block-compiled simulator, the RT-level proxy and the translation at
// levels 0 and 3 must produce identical outputs and final register files,
// and the level-3 generated cycle count must track the reference.
func TestRandomProgramsAgreeAcrossAllEngines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := genProgram(r)

		ref, err := iss.New(prog, iss.Config{CycleAccurate: true})
		if err != nil {
			t.Log(err)
			return false
		}
		if err := ref.Run(); err != nil {
			t.Log(err)
			return false
		}
		want := ref.Output()

		// Block-compiled.
		j, err := jit.New(prog, true)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := j.Run(); err != nil {
			t.Logf("jit: %v", err)
			return false
		}
		if !equalU32(j.Output(), want) || j.Arch.D != ref.Arch.D {
			t.Logf("seed %d: jit diverged", seed)
			return false
		}
		if j.Stats().Cycles != ref.Stats().Cycles {
			t.Logf("seed %d: jit cycles %d != %d", seed, j.Stats().Cycles, ref.Stats().Cycles)
			return false
		}

		// RT-level proxy.
		rtl, err := rtlsim.New(prog)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := rtl.Run(0); err != nil {
			t.Logf("rtl: %v", err)
			return false
		}
		if !equalU32(rtl.Output(), want) || rtl.D != ref.Arch.D {
			t.Logf("seed %d: rtl diverged", seed)
			return false
		}

		// Translated, functional and full-detail. The default engine is
		// the compiled one; the interpreter run below must match it bit
		// for bit (the engine-differential property).
		for _, level := range []core.Level{core.Level0, core.Level3} {
			tp, err := core.Translate(prog, core.Options{Level: level})
			if err != nil {
				t.Logf("seed %d: translate: %v", seed, err)
				return false
			}
			sys := platform.New(tp)
			if sys.Engine() != platform.EngineCompiled {
				t.Logf("seed %d L%d: translator output did not compile", seed, int(level))
				return false
			}
			if err := sys.Run(); err != nil {
				t.Logf("seed %d L%d: %v", seed, int(level), err)
				return false
			}
			isys := platform.NewWithEngine(tp, platform.EngineInterp)
			if err := isys.Run(); err != nil {
				t.Logf("seed %d L%d interp: %v", seed, int(level), err)
				return false
			}
			if isys.Stats() != sys.Stats() || !equalU32(isys.Output, sys.Output) || isys.CPU.Regs != sys.CPU.Regs {
				t.Logf("seed %d L%d: compiled engine diverged from interpreter", seed, int(level))
				return false
			}
			if !equalU32(sys.Output, want) {
				t.Logf("seed %d L%d: output %v want %v", seed, int(level), sys.Output, want)
				return false
			}
			for i := 0; i < 16; i++ {
				if sys.CPU.Reg(c6x.A(i)) != ref.Arch.D[i] {
					t.Logf("seed %d L%d: d%d = %#x want %#x", seed, int(level), i, sys.CPU.Reg(c6x.A(i)), ref.Arch.D[i])
					return false
				}
				if sys.CPU.Reg(c6x.B(i)) != ref.Arch.A[i] {
					t.Logf("seed %d L%d: a%d mismatch", seed, int(level), i)
					return false
				}
			}
			if level == core.Level3 {
				gen := sys.Stats().GeneratedCycles
				refC := ref.Stats().Cycles
				diff := gen - refC
				if diff < 0 {
					diff = -diff
				}
				if float64(diff) > 0.08*float64(refC)+4 {
					t.Logf("seed %d: L3 generated %d vs reference %d", seed, gen, refC)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
