package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestInlineCacheProbe verifies Section 3.4.2's optimization: inlining the
// cache-simulation code into large basic blocks preserves functional
// results and exact cache-correction cycles while saving the
// call/return overhead.
func TestInlineCacheProbe(t *testing.T) {
	// Only the large-block kernels qualify for inlining (fir's hot tap
	// loop sits below the threshold and keeps the subroutine call).
	for _, name := range []string{"ellip", "subband"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, _ := workload.ByName(name)
			f := assemble(t, w.Source)

			run := func(inline bool) (outs []uint32, gen, c6xCycles int64) {
				prog, err := core.Translate(f, core.Options{
					Level:                core.Level3,
					InlineCacheProbe:     inline,
					InlineCacheThreshold: 16,
				})
				if err != nil {
					t.Fatal(err)
				}
				sys := platform.New(prog)
				if err := sys.Run(); err != nil {
					t.Fatal(err)
				}
				return sys.Output, sys.Stats().GeneratedCycles, sys.Stats().C6xCycles
			}
			callOut, callGen, callCyc := run(false)
			inOut, inGen, inCyc := run(true)

			if len(callOut) != len(inOut) {
				t.Fatalf("output lengths differ")
			}
			for i := range callOut {
				if callOut[i] != inOut[i] {
					t.Errorf("out[%d]: call %#x inline %#x", i, callOut[i], inOut[i])
				}
			}
			// The simulated cache behaves identically, so the generated
			// cycle counts must match exactly.
			if callGen != inGen {
				t.Errorf("generated cycles differ: call %d, inline %d", callGen, inGen)
			}
			// Inlining must pay off for these large-block kernels.
			if inCyc >= callCyc {
				t.Errorf("inline probe not faster: %d vs %d C6x cycles", inCyc, callCyc)
			}
			t.Logf("%s: call %d cycles, inline %d cycles (%.1f%% saved)",
				name, callCyc, inCyc, 100*float64(callCyc-inCyc)/float64(callCyc))
		})
	}
}

// TestInlineThresholdRespected: small blocks keep the subroutine call even
// with inlining enabled.
func TestInlineThresholdRespected(t *testing.T) {
	w, _ := workload.ByName("gcd") // tiny blocks
	f := assemble(t, w.Source)
	a, err := core.Translate(f, core.Options{Level: core.Level3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Translate(f, core.Options{Level: core.Level3, InlineCacheProbe: true, InlineCacheThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.C6x.Packets) != len(b.C6x.Packets) {
		t.Errorf("high threshold should leave the program unchanged: %d vs %d packets",
			len(a.C6x.Packets), len(b.C6x.Packets))
	}
}
