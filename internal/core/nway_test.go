package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/iss"
	"repro/internal/march"
	"repro/internal/platform"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// nwayDesc returns a default description with the given I-cache geometry.
func nwayDesc(sets, ways int) *march.Desc {
	d := march.Default()
	d.ICache = march.CacheGeom{Sets: sets, Ways: ways, LineBytes: 8, MissPenalty: 8}
	return d
}

// TestNWayProbeMatchesReference is the differential test of the
// generalized cache-probe generator: for every geometry, the level-3
// correction cycles attributable to cache misses must equal the
// reference model's miss count times the penalty, exactly — the same
// accounting identity the 2-way generator is tested with. Small set
// counts force conflict misses so the LRU replacement path is actually
// exercised.
func TestNWayProbeMatchesReference(t *testing.T) {
	geoms := []struct{ sets, ways int }{
		{8, 4},
		{4, 4},
		{2, 8},
		{4, 8},
		{2, 16},
	}
	for _, wname := range []string{"gcd", "sieve"} {
		w, ok := workload.ByName(wname)
		if !ok {
			t.Fatalf("workload %s missing", wname)
		}
		f, err := tc32asm.Assemble(w.Source)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range geoms {
			t.Run(fmt.Sprintf("%s-%ds%dw", wname, g.sets, g.ways), func(t *testing.T) {
				desc := nwayDesc(g.sets, g.ways)

				ref, err := iss.New(f, iss.Config{Desc: desc, CycleAccurate: true})
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.Run(); err != nil {
					t.Fatal(err)
				}
				refStats := ref.Stats()
				if refStats.ICacheMisses == 0 {
					t.Fatalf("geometry produces no misses; test is vacuous")
				}

				run := func(level core.Level) *platform.System {
					prog, err := core.Translate(f, core.Options{Level: level, Desc: desc})
					if err != nil {
						t.Fatalf("L%d: %v", int(level), err)
					}
					sys := platform.New(prog)
					if err := sys.Run(); err != nil {
						t.Fatalf("L%d: %v", int(level), err)
					}
					if err := workload.SameOutput(sys.Output, w.Expected); err != nil {
						t.Fatalf("L%d: %v", int(level), err)
					}
					return sys
				}
				// Level 2 isolates the branch-correction cycles; the
				// level-3 surplus is purely cache-miss penalties.
				sys2 := run(core.Level2)
				sys3 := run(core.Level3)
				cacheCorr := sys3.Stats().GeneratedCycles - sys2.Stats().GeneratedCycles
				want := refStats.ICacheMisses * int64(desc.ICache.MissPenalty)
				if cacheCorr != want {
					t.Errorf("cache correction cycles = %d, want %d (%d misses × %d): generated LRU diverges from reference",
						cacheCorr, want, refStats.ICacheMisses, desc.ICache.MissPenalty)
				}
			})
		}
	}
}

// TestNWayHitRateNontrivial guards the differential test against a
// degenerate all-miss geometry: under the default 8-set 4-way geometry
// the reference must hit far more than it misses, so agreement between
// the models is meaningful.
func TestNWayHitRateNontrivial(t *testing.T) {
	w, _ := workload.ByName("gcd")
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := iss.New(f, iss.Config{Desc: nwayDesc(8, 4), CycleAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	st := ref.Stats()
	if st.ICacheHits < 10*st.ICacheMisses {
		t.Errorf("unexpectedly low hit rate: %d hits / %d misses", st.ICacheHits, st.ICacheMisses)
	}
}
