// Package core implements the paper's primary contribution: the cycle
// accurate static binary translator. It consumes TC32 object code (ELF32)
// and produces an annotated C6x VLIW program whose execution on the
// emulation platform (internal/platform) generates the source processor's
// clock cycles for the attached hardware, following the pipeline of the
// paper's Figure 1:
//
//	read object file → decode to intermediate code → basic blocks →
//	find base addresses → static cycle calculation → insert cycle
//	generation code → insert dynamic correction code (branch prediction,
//	instruction cache) → parallelize/bind/assign units → emit program
//
// # Entry point
//
// [Translate] runs the whole pipeline under [Options]: the detail
// [Level], the source-processor description (march.Desc, nil selects the
// default TC32), and the ablation switches. The result is a [Program] —
// C6x execute packets plus the block table, source↔packet maps and
// memory images the platform simulation and the debugger consume.
//
// # Detail levels
//
// The four [Level] values nest (Section 3.2 of the paper): Level0 is
// purely functional, Level1 annotates each basic block with its
// statically predicted cycle count, Level2 adds dynamic correction of
// the static branch prediction, Level3 adds instruction-cache simulation
// via cache analysis blocks. The static prediction replays the same
// march timing model the reference ISS uses, which is why deviation
// shrinks to the dynamic effects as the level rises.
//
// # Determinism and caching
//
// Translation is deterministic: equal ELF images under equal options
// produce identical Programs. The simulation farm exploits this by
// content-addressing translations (simfarm.ProgramKey) in a two-level
// cache; a Program is plain exported data and gob-serializable, which is
// what cmd/cabt writes to disk and what the persistent store
// (internal/simfarm/store) persists across processes.
package core
