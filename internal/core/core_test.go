package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/platform"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

func assemble(t *testing.T, src string) *elf32.File {
	t.Helper()
	f, err := tc32asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func runISS(t *testing.T, f *elf32.File) *iss.Sim {
	t.Helper()
	s, err := iss.New(f, iss.Config{CycleAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func translateRun(t *testing.T, f *elf32.File, level core.Level) (*core.Program, *platform.System) {
	t.Helper()
	prog, err := core.Translate(f, core.Options{Level: level})
	if err != nil {
		t.Fatalf("translate L%d: %v", int(level), err)
	}
	sys := platform.New(prog)
	if text := f.Section(".text"); text != nil {
		sys.SetText(text.Addr, text.Data)
	}
	if err := sys.Run(); err != nil {
		t.Fatalf("platform run L%d: %v\n%s", int(level), err, prog.Listing())
	}
	return prog, sys
}

func checkOutputs(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output %v, want %v", name, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: out[%d] = %#x, want %#x", name, i, got[i], want[i])
		}
	}
}

const tinyProgram = `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	movi	d0, 6
	movi	d1, 7
	mul	d2, d0, d1
	st.w	d2, 0(a15)
	movi	d3, 100
loop:	addi	d3, d3, -3
	jnz	d3, loop	; 100/... wait 100 not divisible by 3? 100-3k: k=34 leaves 100-102=-2 -> never zero
	halt
`

// A corrected tiny loop program (counts down by 4 from 100).
const tinyLoop = `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	movi	d0, 6
	movi	d1, 7
	mul	d2, d0, d1
	st.w	d2, 0(a15)
	movi	d3, 100
loop:	addi	d3, d3, -4
	jnz	d3, loop
	st.w	d3, 0(a15)
	halt
`

func TestTranslateTinyAllLevels(t *testing.T) {
	f := assemble(t, tinyLoop)
	ref := runISS(t, f)
	for _, level := range []core.Level{core.Level0, core.Level1, core.Level2, core.Level3} {
		prog, sys := translateRun(t, f, level)
		checkOutputs(t, level.String(), sys.Output, ref.Output())
		if level == core.Level0 {
			if sys.Sync.Total != 0 {
				t.Errorf("L0 generated %d cycles, want 0", sys.Sync.Total)
			}
			continue
		}
		gen := sys.Stats().GeneratedCycles
		refCycles := ref.Stats().Cycles
		dev := float64(gen-refCycles) / float64(refCycles)
		t.Logf("%s: generated %d vs reference %d (%.1f%%), c6x %d cycles, %d packets",
			level, gen, refCycles, 100*dev, sys.Stats().C6xCycles, len(prog.C6x.Packets))
		if dev < -0.5 || dev > 0.5 {
			t.Errorf("%s: generated cycles %d wildly off reference %d", level, gen, refCycles)
		}
	}
}

func TestTranslatedWorkloadsFunctionallyEquivalent(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f := assemble(t, w.Source)
			for _, level := range []core.Level{core.Level0, core.Level1, core.Level2, core.Level3} {
				_, sys := translateRun(t, f, level)
				checkOutputs(t, w.Name+"/"+level.String(), sys.Output, w.Expected)
			}
		})
	}
}

func TestCycleAccuracyPerLevel(t *testing.T) {
	// Figure 6's property: generated cycle counts approach the board
	// measurement as the detail level rises. Level 2 must be within 20%
	// (paper: 3–15%), level 3 within 5%.
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f := assemble(t, w.Source)
			ref := runISS(t, f).Stats()
			devOf := func(level core.Level) float64 {
				_, sys := translateRun(t, f, level)
				gen := sys.Stats().GeneratedCycles
				d := float64(gen-ref.Cycles) / float64(ref.Cycles)
				t.Logf("%v: generated %d vs reference %d (%+.2f%%)", level, gen, ref.Cycles, 100*d)
				return d
			}
			d2 := devOf(core.Level2)
			d3 := devOf(core.Level3)
			if d2 < -0.20 || d2 > 0.20 {
				t.Errorf("level 2 deviation %.2f%% exceeds 20%%", 100*d2)
			}
			if d3 < -0.05 || d3 > 0.05 {
				t.Errorf("level 3 deviation %.2f%% exceeds 5%%", 100*d3)
			}
		})
	}
}

func TestDivisionTranslations(t *testing.T) {
	src := `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	movi	d0, -100
	movi	d1, 7
	div	d2, d0, d1
	st.w	d2, 0(a15)
	rem	d3, d0, d1
	st.w	d3, 0(a15)
	movi	d4, 100
	divu	d5, d4, d1
	st.w	d5, 0(a15)
	remu	d6, d4, d1
	st.w	d6, 0(a15)
	movi	d7, 0
	div	d8, d0, d7	; divide by zero
	st.w	d8, 0(a15)
	rem	d9, d0, d7
	st.w	d9, 0(a15)
	movhi	d10, 0x8000	; MinInt32
	movi	d11, -1
	div	d12, d10, d11
	st.w	d12, 0(a15)
	rem	d13, d10, d11
	st.w	d13, 0(a15)
	halt
`
	f := assemble(t, src)
	ref := runISS(t, f)
	for _, level := range []core.Level{core.Level0, core.Level2} {
		_, sys := translateRun(t, f, level)
		checkOutputs(t, level.String(), sys.Output, ref.Output())
	}
}

func TestICacheMissCountsMatchReference(t *testing.T) {
	// The generated cache-simulation subroutine must agree with the
	// reference model: total level-3 correction cycles from cache misses
	// equal reference misses × penalty (plus branch corrections).
	w, _ := workload.ByName("gcd")
	f := assemble(t, w.Source)
	ref := runISS(t, f)
	prog, sys := translateRun(t, f, core.Level3)
	refStats := ref.Stats()

	// Sum of static cycles actually generated = total - corrections.
	// Corrections = mispredict cycles + miss penalties. We can't split
	// them directly, but level 2 gives us the mispredict part.
	_, sys2 := translateRun(t, f, core.Level2)
	staticPlusBranch := sys2.Stats().GeneratedCycles
	cacheCorr := sys.Stats().GeneratedCycles - staticPlusBranch
	wantCache := refStats.ICacheMisses * int64(prog.Desc.ICache.MissPenalty)
	if cacheCorr != wantCache {
		t.Errorf("cache correction cycles = %d, want %d (%d misses × %d)",
			cacheCorr, wantCache, refStats.ICacheMisses, prog.Desc.ICache.MissPenalty)
	}
}

func TestIndirectJumpThroughRegister(t *testing.T) {
	src := `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	la	a2, target
	ji	a2
	movi	d0, 1	; skipped
	halt
target:	movi	d0, 7
	st.w	d0, 0(a15)
	halt
`
	f := assemble(t, src)
	ref := runISS(t, f)
	for _, level := range []core.Level{core.Level0, core.Level2} {
		_, sys := translateRun(t, f, level)
		checkOutputs(t, level.String(), sys.Output, ref.Output())
	}
}

func TestLevel0FasterThanLevel3(t *testing.T) {
	w, _ := workload.ByName("sieve")
	f := assemble(t, w.Source)
	_, s0 := translateRun(t, f, core.Level0)
	_, s1 := translateRun(t, f, core.Level1)
	_, s3 := translateRun(t, f, core.Level3)
	c0, c1, c3 := s0.Stats().C6xCycles, s1.Stats().C6xCycles, s3.Stats().C6xCycles
	if !(c0 < c1 && c1 < c3) {
		t.Errorf("cycle ordering violated: L0=%d L1=%d L3=%d", c0, c1, c3)
	}
	// The paper's Table 1: the cache level costs several times more.
	if c3 < 3*c1 {
		t.Errorf("L3 (%d) should cost several times L1 (%d)", c3, c1)
	}
}

func TestListingSmoke(t *testing.T) {
	f := assemble(t, tinyLoop)
	prog, err := core.Translate(f, core.Options{Level: core.Level2})
	if err != nil {
		t.Fatal(err)
	}
	l := prog.Listing()
	if len(l) == 0 {
		t.Fatal("empty listing")
	}
}

func TestBlockMetadata(t *testing.T) {
	f := assemble(t, tinyLoop)
	prog, err := core.Translate(f, core.Options{Level: core.Level1})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) < 3 {
		t.Fatalf("expected several regions, got %d", len(prog.Blocks))
	}
	for _, b := range prog.Blocks {
		if b.SrcInsts <= 0 {
			t.Errorf("region %#x has no instructions", b.SrcStart)
		}
		if b.StaticCycles <= 0 {
			t.Errorf("region %#x has no static cycles", b.SrcStart)
		}
		if got, ok := prog.PacketOfSrc[b.SrcStart]; !ok || got != b.PacketStart {
			t.Errorf("PacketOfSrc[%#x] = %d, want %d", b.SrcStart, got, b.PacketStart)
		}
	}
}
