package core_test

import (
	"strings"
	"testing"

	"repro/internal/c6x"
	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/march"
	"repro/internal/platform"
)

func TestDynamicIndirectJumpRejected(t *testing.T) {
	// A ji through a register whose value the analysis cannot resolve
	// (loaded from memory) must be rejected at translation time.
	f := assemble(t, `
	.global _start
_start:	la	a2, slot
	ld.a	a3, 0(a2)
	ji	a3
	halt
	.data
slot:	.word	0
`)
	_, err := core.Translate(f, core.Options{Level: core.Level0})
	if err == nil || !strings.Contains(err.Error(), "indirect jump") {
		t.Errorf("err = %v, want unresolvable indirect jump", err)
	}
}

func TestStaticIndirectJumpAccepted(t *testing.T) {
	// The same ji with a la-materialized constant target translates.
	f := assemble(t, `
	.global _start
_start:	la	a3, target
	ji	a3
	halt
target:	halt
`)
	if _, err := core.Translate(f, core.Options{Level: core.Level2}); err != nil {
		t.Errorf("static ji should translate: %v", err)
	}
}

func TestInvalidLevelRejected(t *testing.T) {
	f := assemble(t, "_start: halt\n")
	if _, err := core.Translate(f, core.Options{Level: core.Level(9)}); err == nil {
		t.Error("invalid level should be rejected")
	}
}

func TestMissingTextRejected(t *testing.T) {
	f := &elf32.File{Sections: []elf32.Section{{Name: ".data", Type: elf32.SHTProgbits}}}
	if _, err := core.Translate(f, core.Options{}); err == nil {
		t.Error("missing .text should be rejected")
	}
}

func TestBadEntryRejected(t *testing.T) {
	f := assemble(t, "_start: halt\n")
	f.Entry = 0x999 // not an instruction boundary
	if _, err := core.Translate(f, core.Options{}); err == nil {
		t.Error("bad entry point should be rejected")
	}
}

func TestMergeRebasesTargets(t *testing.T) {
	f := assemble(t, `
	.global _start
_start:	movi	d0, 3
loop:	addi	d0, d0, -1
	jnz	d0, loop
	la	a15, 0xF0000F00
	st.w	d0, 0(a15)
	halt
`)
	a, err := core.Translate(f, core.Options{Level: core.Level1})
	if err != nil {
		t.Fatal(err)
	}
	bLen := 0
	{
		b2, err := core.Translate(f, core.Options{Level: core.Level1, InstructionOriented: true})
		if err != nil {
			t.Fatal(err)
		}
		bLen = len(b2.C6x.Packets)
		off := core.Merge(a, b2)
		if off == 0 {
			t.Fatal("offset should be nonzero")
		}
		// All of image B's branch targets must land inside image B.
		for pi := off; pi < len(a.C6x.Packets); pi++ {
			for _, in := range a.C6x.Packets[pi].Insts {
				if in.Op == c6x.BPKT && (in.Target < off || in.Target >= off+bLen) {
					t.Errorf("packet %d: rebased target %d outside image [%d,%d)", pi, in.Target, off, off+bLen)
				}
			}
		}
		// Running the merged program from entry still works (image A).
		sys := platform.New(a)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		if len(sys.Output) != 1 || sys.Output[0] != 0 {
			t.Errorf("merged program output = %v, want [0]", sys.Output)
		}
		// Running the instruction-oriented image directly also works.
		sys2 := platform.New(a)
		sys2.CPU.SetPC(off)
		if err := sys2.Run(); err != nil {
			t.Fatal(err)
		}
		if len(sys2.Output) != 1 || sys2.Output[0] != 0 {
			t.Errorf("image B output = %v, want [0]", sys2.Output)
		}
	}
}

func TestInstructionOrientedRegionsPerInstruction(t *testing.T) {
	f := assemble(t, `
	.global _start
_start:	movi	d0, 1
	movi	d1, 2
	add	d2, d0, d1
	halt
`)
	prog, err := core.Translate(f, core.Options{Level: core.Level1, InstructionOriented: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Blocks) != 4 {
		t.Errorf("instruction-oriented translation has %d regions, want 4", len(prog.Blocks))
	}
	for _, b := range prog.Blocks {
		if b.SrcInsts != 1 {
			t.Errorf("region at %#x has %d instructions, want 1", b.SrcStart, b.SrcInsts)
		}
	}
}

func TestTranslateAtAllLevelsWithCustomDesc(t *testing.T) {
	f := assemble(t, tinyLoop)
	desc := core.Options{}.Desc
	_ = desc
	d := *platformDesc(t)
	d.ICache.Sets = 8
	d.ICache.Ways = 1
	for _, level := range []core.Level{core.Level1, core.Level3} {
		prog, err := core.Translate(f, core.Options{Level: level, Desc: &d})
		if err != nil {
			t.Fatalf("L%d with 1-way cache: %v", int(level), err)
		}
		sys := platform.New(prog)
		if err := sys.Run(); err != nil {
			t.Fatalf("L%d run: %v", int(level), err)
		}
	}
	// Associativities up to 16 generate probes; beyond that is rejected.
	d4 := *platformDesc(t)
	d4.ICache.Ways = 4
	if _, err := core.Translate(f, core.Options{Level: core.Level3, Desc: &d4}); err != nil {
		t.Errorf("4-way probe generation should be supported: %v", err)
	}
	d32 := *platformDesc(t)
	d32.ICache.Ways = 32
	if _, err := core.Translate(f, core.Options{Level: core.Level3, Desc: &d32}); err == nil {
		t.Error("32-way probe generation should be rejected")
	}
}

// platformDesc returns a fresh default description for mutation in tests.
func platformDesc(t *testing.T) *march.Desc {
	t.Helper()
	return march.Default()
}
