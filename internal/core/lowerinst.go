package core

import (
	"fmt"

	"repro/internal/c6x"
	"repro/internal/tc32"
)

// lowerInst translates one non-terminator TC32 instruction into
// intermediate code. Register binding is the fixed map d0..d15 → A0..A15,
// a0..a15 → B0..B15 with block-local temporaries from the reserved pools.
func (l *lowerer) lowerInst(in tc32.Inst, mc memClass) error {
	e := l.emitI
	switch in.Op {
	case tc32.MOVI, tc32.MOVI16:
		l.matConst(in.Imm, dR(in.Rd))
	case tc32.MOVHI:
		l.matConst(in.Imm<<16, dR(in.Rd))
	case tc32.ADDI:
		e(c6x.Inst{Op: c6x.ADD, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opnd(in.Imm, c6x.SideA)})
	case tc32.ADDI16:
		e(c6x.Inst{Op: c6x.ADD, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rd)), Src2: l.opnd(in.Imm, c6x.SideA)})
	case tc32.RSUBI:
		tmp := l.tempA()
		l.matConst(in.Imm, tmp)
		e(c6x.Inst{Op: c6x.SUB, Dst: dR(in.Rd), Src1: c6x.R(tmp), Src2: c6x.R(dR(in.Rs1))})
	case tc32.ANDI:
		e(c6x.Inst{Op: c6x.AND, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opndU(in.Imm, c6x.SideA)})
	case tc32.ORI:
		e(c6x.Inst{Op: c6x.OR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opndU(in.Imm, c6x.SideA)})
	case tc32.XORI:
		e(c6x.Inst{Op: c6x.XOR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opndU(in.Imm, c6x.SideA)})
	case tc32.EQI:
		e(c6x.Inst{Op: c6x.CMPEQ, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opnd(in.Imm, c6x.SideA)})
	case tc32.LTI:
		e(c6x.Inst{Op: c6x.CMPLT, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: l.opnd(in.Imm, c6x.SideA)})
	case tc32.SHLI:
		e(c6x.Inst{Op: c6x.SHL, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(in.Imm & 31)})
	case tc32.SHRI:
		e(c6x.Inst{Op: c6x.SHR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(in.Imm & 31)})
	case tc32.SARI:
		e(c6x.Inst{Op: c6x.SAR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(in.Imm & 31)})
	case tc32.MOV, tc32.MOV16:
		e(c6x.Inst{Op: c6x.MV, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1))})
	case tc32.ADD:
		e(c6x.Inst{Op: c6x.ADD, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.ADD16:
		e(c6x.Inst{Op: c6x.ADD, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rd)), Src2: c6x.R(dR(in.Rs1))})
	case tc32.SUB:
		e(c6x.Inst{Op: c6x.SUB, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.SUB16:
		e(c6x.Inst{Op: c6x.SUB, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rd)), Src2: c6x.R(dR(in.Rs1))})
	case tc32.MUL:
		e(c6x.Inst{Op: c6x.MPY, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.AND:
		e(c6x.Inst{Op: c6x.AND, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.OR:
		e(c6x.Inst{Op: c6x.OR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.XOR:
		e(c6x.Inst{Op: c6x.XOR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.ANDN:
		e(c6x.Inst{Op: c6x.ANDN, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.SHL:
		e(c6x.Inst{Op: c6x.SHL, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.SHR:
		e(c6x.Inst{Op: c6x.SHR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.SAR:
		e(c6x.Inst{Op: c6x.SAR, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.EQ:
		e(c6x.Inst{Op: c6x.CMPEQ, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.NE:
		tmp := l.tempA()
		e(c6x.Inst{Op: c6x.CMPEQ, Dst: tmp, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		e(c6x.Inst{Op: c6x.XOR, Dst: dR(in.Rd), Src1: c6x.R(tmp), Src2: c6x.Imm(1)})
	case tc32.LT:
		e(c6x.Inst{Op: c6x.CMPLT, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.LTU:
		e(c6x.Inst{Op: c6x.CMPLTU, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
	case tc32.GE:
		tmp := l.tempA()
		e(c6x.Inst{Op: c6x.CMPLT, Dst: tmp, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		e(c6x.Inst{Op: c6x.XOR, Dst: dR(in.Rd), Src1: c6x.R(tmp), Src2: c6x.Imm(1)})
	case tc32.GEU:
		tmp := l.tempA()
		e(c6x.Inst{Op: c6x.CMPLTU, Dst: tmp, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		e(c6x.Inst{Op: c6x.XOR, Dst: dR(in.Rd), Src1: c6x.R(tmp), Src2: c6x.Imm(1)})
	case tc32.MIN, tc32.MAX:
		// tmp = rs2; [cond] tmp = rs1; rd = tmp — avoids clobbering
		// sources when rd aliases rs1/rs2.
		cond := l.tempA()
		tmp := l.tempA()
		e(c6x.Inst{Op: c6x.CMPLT, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.R(dR(in.Rs2))})
		e(c6x.Inst{Op: c6x.MV, Dst: tmp, Src1: c6x.R(dR(in.Rs2))})
		neg := in.Op == tc32.MAX
		e(c6x.Inst{Op: c6x.MV, Dst: tmp, Src1: c6x.R(dR(in.Rs1)), Pred: c6x.Pred{Valid: true, Reg: cond, Neg: neg}})
		e(c6x.Inst{Op: c6x.MV, Dst: dR(in.Rd), Src1: c6x.R(tmp)})
	case tc32.ABS:
		cond := l.tempA()
		e(c6x.Inst{Op: c6x.CMPLT, Dst: cond, Src1: c6x.R(dR(in.Rs1)), Src2: c6x.Imm(0)})
		e(c6x.Inst{Op: c6x.MV, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1))})
		e(c6x.Inst{Op: c6x.NEG, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1)), Pred: c6x.Pred{Valid: true, Reg: cond}})
	case tc32.SEXTB:
		e(c6x.Inst{Op: c6x.EXTB, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1))})
	case tc32.SEXTH:
		e(c6x.Inst{Op: c6x.EXTH, Dst: dR(in.Rd), Src1: c6x.R(dR(in.Rs1))})

	case tc32.DIV, tc32.REM:
		l.lowerDiv(in, "sdiv")
	case tc32.DIVU, tc32.REMU:
		l.lowerDiv(in, "udiv")

	case tc32.MOVHA:
		l.matConst(in.Imm<<16, aR(in.Rd))
	case tc32.LEA:
		e(c6x.Inst{Op: c6x.ADD, Dst: aR(in.Rd), Src1: c6x.R(aR(in.Rs1)), Src2: l.opnd(in.Imm, c6x.SideB)})
	case tc32.ADDIA:
		e(c6x.Inst{Op: c6x.ADD, Dst: aR(in.Rd), Src1: c6x.R(aR(in.Rs1)), Src2: l.opnd(in.Imm, c6x.SideB)})
	case tc32.MOVD2A:
		e(c6x.Inst{Op: c6x.MV, Dst: aR(in.Rd), Src1: c6x.R(dR(in.Rs1))})
	case tc32.MOVA2D:
		e(c6x.Inst{Op: c6x.MV, Dst: dR(in.Rd), Src1: c6x.R(aR(in.Rs1))})
	case tc32.ADDA:
		e(c6x.Inst{Op: c6x.ADD, Dst: aR(in.Rd), Src1: c6x.R(aR(in.Rs1)), Src2: c6x.R(aR(in.Rs2))})

	case tc32.LDW, tc32.LDH, tc32.LDHU, tc32.LDB, tc32.LDBU, tc32.LDA,
		tc32.STW, tc32.STH, tc32.STB, tc32.STA:
		l.lowerMem(in, mc)

	case tc32.NOP, tc32.NOP16:
		// Occupies source cycles (already counted); no target code.
	case tc32.EI, tc32.DI:
		// The interrupt-enable state of a translated core lives on the
		// platform: ei/di become a write of 1/0 to the IRQ control
		// register. Delivery only happens at region boundaries, so the
		// mid-region timing of the write is unobservable — only the IE
		// value at the next boundary matters, and program order
		// preserves it.
		v := int32(0)
		if in.Op == tc32.EI {
			v = 1
		}
		tmp := l.tempA()
		e(c6x.Inst{Op: c6x.MVK, Dst: tmp, Src2: c6x.Imm(v)})
		e(c6x.Inst{Op: c6x.STW, Data: tmp, Src1: c6x.R(regSyncBase), Src2: c6x.Imm(IRQCtl - SyncBase), Volatile: true})
	default:
		return fmt.Errorf("core: cannot lower %v at %#x", in.Op, in.Addr)
	}
	return nil
}

var memOpMap = map[tc32.Op]c6x.Op{
	tc32.LDW: c6x.LDW, tc32.LDH: c6x.LDH, tc32.LDHU: c6x.LDHU,
	tc32.LDB: c6x.LDB, tc32.LDBU: c6x.LDBU, tc32.LDA: c6x.LDW,
	tc32.STW: c6x.STW, tc32.STH: c6x.STH, tc32.STB: c6x.STB, tc32.STA: c6x.STW,
}

// lowerMem translates loads and stores. Data accesses translate directly
// (the platform maps source data addresses identically); I/O and unknown
// accesses are marked volatile — the enclosing region split plus the
// platform's bus interface provide the cycle-accurate bus transaction.
func (l *lowerer) lowerMem(in tc32.Inst, mc memClass) {
	op := memOpMap[in.Op]
	vol := mc == memIO || mc == memUnknown
	base := c6x.R(aR(in.Rs1))
	off := c6x.Imm(in.Imm)
	var data c6x.Reg
	if in.Op == tc32.LDA || in.Op == tc32.STA {
		data = aR(in.Rd)
	} else {
		data = dR(in.Rd)
	}
	if op.IsStore() {
		l.emitI(c6x.Inst{Op: op, Data: data, Src1: base, Src2: off, Volatile: vol})
	} else {
		l.emitI(c6x.Inst{Op: op, Dst: data, Src1: base, Src2: off, Volatile: vol})
	}
}

// lowerDiv calls the software divide routine: dividend in A24, divisor in
// A25; quotient returns in A24, remainder in A25.
func (l *lowerer) lowerDiv(in tc32.Inst, routine string) {
	l.emitI(c6x.Inst{Op: c6x.MV, Dst: regArg0, Src1: c6x.R(dR(in.Rs1))})
	l.emitI(c6x.Inst{Op: c6x.MV, Dst: regArg1, Src1: c6x.R(dR(in.Rs2))})
	l.call(l.t.routineLabel(routine))
	res := regArg0
	if in.Op == tc32.REM || in.Op == tc32.REMU {
		res = regArg1
	}
	l.emitI(c6x.Inst{Op: c6x.MV, Dst: dR(in.Rd), Src1: c6x.R(res)})
}
