package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/iss"
	"repro/internal/jit"
	"repro/internal/march"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestBoothMultiplierReopensDeviation demonstrates the paper's outlook
// item: with a Booth (operand-dependent) multiplier, the static cycle
// prediction cannot know the operand values, so even the cache detail
// level deviates from the board — data-dependent instruction timing is
// exactly the accuracy limit the paper names as future work.
func TestBoothMultiplierReopensDeviation(t *testing.T) {
	w, _ := workload.ByName("subband") // multiply-heavy
	f := assemble(t, w.Source)

	devL3 := func(booth bool) float64 {
		d := march.Default()
		d.BoothMul = booth
		ref, err := iss.New(f, iss.Config{CycleAccurate: true, Desc: d})
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}
		prog, err := core.Translate(f, core.Options{Level: core.Level3, Desc: d})
		if err != nil {
			t.Fatal(err)
		}
		sys := platform.New(prog)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		refC := ref.Stats().Cycles
		gen := sys.Stats().GeneratedCycles
		return 100 * float64(gen-refC) / float64(refC)
	}

	plain := math.Abs(devL3(false))
	booth := math.Abs(devL3(true))
	t.Logf("level-3 deviation: fixed multiplier %.2f%%, Booth multiplier %.2f%%", plain, booth)
	if plain > 1 {
		t.Errorf("fixed-latency multiplier should be nearly exact, got %.2f%%", plain)
	}
	if booth <= plain+0.5 {
		t.Errorf("Booth timing should reopen a visible deviation (%.2f%% vs %.2f%%)", booth, plain)
	}
}

// TestBoothModelConsistentAcrossSimulators: the interpreted and
// block-compiled simulators agree cycle-for-cycle under the Booth model.
func TestBoothModelConsistentAcrossSimulators(t *testing.T) {
	w, _ := workload.ByName("fir")
	f := assemble(t, w.Source)
	d := march.Default()
	d.BoothMul = true
	ref, err := iss.New(f, iss.Config{CycleAccurate: true, Desc: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	j, err := jit.NewWithDesc(f, true, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	if j.Stats().Cycles != ref.Stats().Cycles {
		t.Errorf("booth cycles differ: jit %d vs iss %d", j.Stats().Cycles, ref.Stats().Cycles)
	}
	// And the Booth model costs cycles relative to the fixed model.
	plain, err := iss.New(f, iss.Config{CycleAccurate: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	if ref.Stats().Cycles <= plain.Stats().Cycles {
		t.Errorf("booth run (%d cycles) should exceed fixed run (%d)", ref.Stats().Cycles, plain.Stats().Cycles)
	}
}

func TestBoothExtraFunction(t *testing.T) {
	cases := []struct {
		v    uint32
		want int64
	}{
		{0, 0}, {1, 0}, {15, 0},
		{16, 1}, {255, 1},
		{256, 2}, {4095, 2},
		{1 << 16, 4}, {1 << 24, 6},
		{0xFFFFFFFF, 0},         // -1: tiny magnitude
		{uint32(0x80000000), 7}, // large negative
	}
	for _, c := range cases {
		if got := march.BoothExtra(c.v); got != c.want {
			t.Errorf("BoothExtra(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}
