package sched

import (
	"testing"

	"repro/internal/c6x"
	"repro/internal/ir"
)

func ins(i c6x.Inst) ir.Ins { return ir.New(i) }

func TestIndependentOpsParallelize(t *testing.T) {
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(1), Src1: c6x.R(c6x.A(2)), Src2: c6x.R(c6x.A(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.B(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.R(c6x.B(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(4), Src1: c6x.R(c6x.A(5)), Src2: c6x.R(c6x.A(6))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.B(4), Src1: c6x.R(c6x.B(5)), Src2: c6x.R(c6x.B(6))}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 1 {
		t.Errorf("4 independent adds = %d cycles, want 1 (L1,L2,S1,S2)", r.Cycles)
	}
	if len(r.Packets) != 1 || len(r.Packets[0].Insts) != 4 {
		t.Errorf("packets = %+v", r.Packets)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(1), Src1: c6x.R(c6x.A(2)), Src2: c6x.R(c6x.A(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(4), Src1: c6x.R(c6x.A(1)), Src2: c6x.R(c6x.A(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(5), Src1: c6x.R(c6x.A(4)), Src2: c6x.R(c6x.A(3))}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 3 {
		t.Errorf("dependent chain = %d cycles, want 3", r.Cycles)
	}
}

func TestLoadLatencyPadded(t *testing.T) {
	// Load then use: the use must wait 5 cycles; trailing commit padding
	// must cover the load if its consumer is in the next block.
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(3), Src1: c6x.R(c6x.A(1)), Src2: c6x.R(c6x.A(1))}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	// ldw at 0, add at 5 (load latency), commit of add at 6.
	if r.Cycles != 6 {
		t.Errorf("load-use block = %d cycles, want 6", r.Cycles)
	}
}

func TestTrailingCommitPadding(t *testing.T) {
	// A lone load must pad to its commit horizon so the next block can
	// read the register safely.
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 5 {
		t.Errorf("lone load block = %d cycles, want 5 (commit padding)", r.Cycles)
	}
}

func TestBranchDelayFilling(t *testing.T) {
	// Enough independent work to fill the branch delay slots: the block
	// should cost branchCycle+6, with work inside the delay slots.
	var insns []ir.Ins
	insns = append(insns, ins(c6x.Inst{Op: c6x.CMPEQ, Dst: c6x.A(1), Src1: c6x.R(c6x.A(2)), Src2: c6x.R(c6x.A(3))}))
	for k := 0; k < 6; k++ {
		insns = append(insns, ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(4 + k), Src1: c6x.R(c6x.A(4 + k)), Src2: c6x.Imm(1)}))
	}
	br := ins(c6x.Inst{Op: c6x.BPKT, Target: 0, Pred: c6x.Pred{Valid: true, Reg: c6x.A(1)}})
	br.Pin = ir.PinBranch
	insns = append(insns, br)
	r, err := Schedule(&ir.Block{Label: "t", Ins: insns})
	if err != nil {
		t.Fatal(err)
	}
	// cmpeq+adds fit in ~2-3 cycles on L1/S1/D1 etc.; branch at cycle 1
	// (cond ready); block = branch+6 = 7.
	if r.Cycles > 8 {
		t.Errorf("branch block = %d cycles, want <= 8 (delay slots filled)", r.Cycles)
	}
	// The block must end exactly BranchDelay+1 cycles after the branch.
	branchCycle := -1
	cyc := 0
	for _, pk := range r.Packets {
		for _, in := range pk.Insts {
			if in.Op == c6x.BPKT {
				branchCycle = cyc
			}
		}
		cyc += pk.Cycles()
	}
	if branchCycle < 0 {
		t.Fatal("branch not emitted")
	}
	if r.Cycles != branchCycle+c6x.BranchDelay+1 {
		t.Errorf("block len %d, branch at %d: want len = branch+6", r.Cycles, branchCycle)
	}
}

func TestMemOrderPreserved(t *testing.T) {
	// Store then load of the same location must stay ordered.
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.STW, Data: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
		ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(3), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	var stCycle, ldCycle, cyc int
	for _, pk := range r.Packets {
		for _, in := range pk.Insts {
			if in.Op == c6x.STW {
				stCycle = cyc
			}
			if in.Op == c6x.LDW {
				ldCycle = cyc
			}
		}
		cyc += pk.Cycles()
	}
	if ldCycle <= stCycle {
		t.Errorf("load at %d not after store at %d", ldCycle, stCycle)
	}
}

func TestVolatileOrdering(t *testing.T) {
	// Two volatile loads (sync device reads) must not be reordered even
	// though plain loads could be.
	v1 := ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0), Volatile: true})
	v2 := ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(3), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(4), Volatile: true})
	r, err := Schedule(&ir.Block{Label: "t", Ins: []ir.Ins{v1, v2}})
	if err != nil {
		t.Fatal(err)
	}
	var c1, c2, cyc = -1, -1, 0
	for _, pk := range r.Packets {
		for _, in := range pk.Insts {
			if in.Op == c6x.LDW && in.Src2.Imm == 0 {
				c1 = cyc
			}
			if in.Op == c6x.LDW && in.Src2.Imm == 4 {
				c2 = cyc
			}
		}
		cyc += pk.Cycles()
	}
	if c2 <= c1 {
		t.Errorf("volatile loads reordered: %d vs %d", c1, c2)
	}
}

func TestPinLastScheduledLate(t *testing.T) {
	// The sync-wait load must land at/after all body work despite being
	// ready early.
	wait := ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(30), Src1: c6x.R(c6x.B(29)), Src2: c6x.Imm(0), Volatile: true})
	wait.Pin = ir.PinLast
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(1), Src1: c6x.R(c6x.A(2)), Src2: c6x.R(c6x.A(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(4), Src1: c6x.R(c6x.A(1)), Src2: c6x.R(c6x.A(3))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(5), Src1: c6x.R(c6x.A(4)), Src2: c6x.R(c6x.A(3))}),
		wait,
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	var waitCycle, lastAdd, cyc = -1, -1, 0
	for _, pk := range r.Packets {
		for _, in := range pk.Insts {
			if in.Op == c6x.LDW {
				waitCycle = cyc
			} else if in.Op == c6x.ADD {
				lastAdd = cyc
			}
		}
		cyc += pk.Cycles()
	}
	if waitCycle < lastAdd {
		t.Errorf("sync wait at %d before last work at %d", waitCycle, lastAdd)
	}
	// No commit padding for the wait's destination (scratch register).
	if r.Cycles > waitCycle+1 {
		t.Errorf("block padded to %d for exempt wait at %d", r.Cycles, waitCycle)
	}
}

func TestHaltLastAndAlone(t *testing.T) {
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.STW, Data: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
		ins(c6x.Inst{Op: c6x.HALT}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Packets[len(r.Packets)-1]
	if len(last.Insts) != 1 || last.Insts[0].Op != c6x.HALT {
		t.Errorf("halt not alone in final packet: %+v", last)
	}
}

func TestScheduleRunsOnSimulator(t *testing.T) {
	// End-to-end: schedule a block and execute it under strict mode.
	var insns []ir.Ins
	insns = append(insns,
		ins(c6x.Inst{Op: c6x.MVK, Dst: c6x.A(1), Src2: c6x.Imm(6)}),
		ins(c6x.Inst{Op: c6x.MVK, Dst: c6x.A(2), Src2: c6x.Imm(7)}),
		ins(c6x.Inst{Op: c6x.MPY, Dst: c6x.A(3), Src1: c6x.R(c6x.A(1)), Src2: c6x.R(c6x.A(2))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(4), Src1: c6x.R(c6x.A(3)), Src2: c6x.Imm(1)}),
		ins(c6x.Inst{Op: c6x.HALT}),
	)
	r, err := Schedule(&ir.Block{Label: "t", Ins: insns})
	if err != nil {
		t.Fatal(err)
	}
	s := c6x.NewSim(&c6x.Program{Packets: r.Packets}, nullMem{})
	if err := s.Run(); err != nil {
		t.Fatalf("strict simulation of scheduled block failed: %v", err)
	}
	if got := s.Reg(c6x.A(4)); got != 43 {
		t.Errorf("A4 = %d, want 43", got)
	}
}

func TestTwoBranchesRejected(t *testing.T) {
	br := ins(c6x.Inst{Op: c6x.BPKT})
	_, err := Schedule(&ir.Block{Label: "t", Ins: []ir.Ins{br, br}})
	if err == nil {
		t.Error("two branches should be rejected")
	}
}

func TestEmptyBlock(t *testing.T) {
	r, err := Schedule(&ir.Block{Label: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != 0 || len(r.Packets) != 0 {
		t.Errorf("empty block = %+v", r)
	}
}

type nullMem struct{}

func (nullMem) Load(addr uint32, size int, cycle int64) (uint32, int64, error) {
	return 0, cycle, nil
}
func (nullMem) Store(addr uint32, val uint32, size int, cycle int64) (int64, error) {
	return cycle, nil
}

func TestWAWShortThenLongLatency(t *testing.T) {
	// mvk A1 (lat 1) followed by ldw A1 (lat 5): the final value of A1
	// must be the load's. A negative-weight WAW edge is required; with no
	// edge the mvk can drift after the load commit and clobber it.
	b := &ir.Block{Label: "t", Ins: []ir.Ins{
		ins(c6x.Inst{Op: c6x.MVK, Dst: c6x.A(1), Src2: c6x.Imm(61)}),
		ins(c6x.Inst{Op: c6x.LDW, Dst: c6x.A(1), Src1: c6x.R(c6x.B(2)), Src2: c6x.Imm(0)}),
		// Filler that could otherwise let the scheduler delay the mvk.
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(3), Src1: c6x.R(c6x.A(4)), Src2: c6x.R(c6x.A(5))}),
		ins(c6x.Inst{Op: c6x.ADD, Dst: c6x.A(6), Src1: c6x.R(c6x.A(3)), Src2: c6x.R(c6x.A(5))}),
	}}
	r, err := Schedule(b)
	if err != nil {
		t.Fatal(err)
	}
	var mvkCycle, ldwCycle, cyc = -1, -1, 0
	for _, pk := range r.Packets {
		for _, in := range pk.Insts {
			switch in.Op {
			case c6x.MVK:
				mvkCycle = cyc
			case c6x.LDW:
				ldwCycle = cyc
			}
		}
		cyc += pk.Cycles()
	}
	// Commit order: mvk at m commits m+1, ldw at l commits l+5; need
	// m+1 <= l+5 - 1 i.e. m <= l+3.
	if mvkCycle > ldwCycle+3 {
		t.Errorf("mvk at %d commits after ldw at %d", mvkCycle, ldwCycle)
	}
	// Run it: A1 must hold the loaded value.
	mem := nullMem{}
	s := c6x.NewSim(&c6x.Program{Packets: append(r.Packets, c6x.Packet{Insts: []c6x.Inst{{Op: c6x.HALT}}})}, mem)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(c6x.A(1)); got != 0 { // nullMem loads 0
		t.Errorf("A1 = %d, want load result 0", got)
	}
}
