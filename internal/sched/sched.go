// Package sched implements the "further transformations of intermediate
// code" stage of the paper's Figure 1: finding instructions that can
// execute in parallel on the VLIW, assigning every instruction to the
// functional unit it will run on, and laying out execute packets with the
// C6x's exposed delay slots (including branch delay-slot filling).
//
// The scheduler is a classic critical-path list scheduler over the block's
// dependence graph, with the C6x resource model: one instruction per unit
// per cycle, one cross-path read per side, one memory op per data path,
// memory base registers on the unit's side, and no interlocks — every
// latency is enforced by construction and re-checked by the simulator's
// strict mode.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/c6x"
	"repro/internal/ir"
)

// Result is the schedule of one block.
type Result struct {
	Packets []c6x.Packet
	// Cycles is the number of core cycles the block occupies (the sum of
	// packet cycle costs, including trailing branch delay padding).
	Cycles int
}

type edge struct {
	to int
	w  int
}

type node struct {
	ins      *ir.Ins
	succs    []edge
	preds    int
	prio     int
	earliest int
	cycle    int
	unit     c6x.Unit
	placed   bool
}

// resources tracks per-cycle issue resources.
type resources struct {
	units map[int]uint16 // cycle -> bitmask of used units
	cross map[int][2]bool
	tpath map[int][2]bool
}

func newResources() *resources {
	return &resources{units: map[int]uint16{}, cross: map[int][2]bool{}, tpath: map[int][2]bool{}}
}

// fit tries to place ins at cycle, returning the unit to use.
func (r *resources) fit(in *ir.Ins, cycle int) (c6x.Unit, bool) {
	used := r.units[cycle]
	kinds := in.Op.UnitKinds()
	if kinds == "" { // NOP/HALT handled elsewhere
		return c6x.UnitNone, true
	}
	side := unitSide(in)
	// Cross-path requirement.
	cross := 0
	if in.Op.ReadsSrc1() && !in.Src1.IsImm && !in.Op.IsMem() && in.Src1.Reg.Side() != side {
		cross++
	}
	if in.Op.ReadsSrc2() && !in.Src2.IsImm && in.Src2.Reg.Side() != side {
		cross++
	}
	if cross > 1 {
		return c6x.UnitNone, false // illegal instruction shape (translator bug)
	}
	if cross == 1 && r.cross[cycle][side] {
		return c6x.UnitNone, false
	}
	if in.Op.IsMem() {
		t := dataSide(in)
		if r.tpath[cycle][t] {
			return c6x.UnitNone, false
		}
	}
	for i := 0; i < len(kinds); i++ {
		u := c6x.UnitFor(kinds[i], side)
		if used&(1<<u) == 0 {
			return u, true
		}
	}
	return c6x.UnitNone, false
}

func (r *resources) take(in *ir.Ins, cycle int, u c6x.Unit) {
	r.units[cycle] |= 1 << u
	side := u.Side()
	cross := 0
	if in.Op.ReadsSrc1() && !in.Src1.IsImm && !in.Op.IsMem() && in.Src1.Reg.Side() != side {
		cross++
	}
	if in.Op.ReadsSrc2() && !in.Src2.IsImm && in.Src2.Reg.Side() != side {
		cross++
	}
	if cross > 0 {
		c := r.cross[cycle]
		c[side] = true
		r.cross[cycle] = c
	}
	if in.Op.IsMem() {
		t := r.tpath[cycle]
		t[dataSide(in)] = true
		r.tpath[cycle] = t
	}
}

// unitSide returns the side the instruction must execute on: the memory
// base side for memory ops, otherwise the destination side (C6x units
// write their own file), or the branch-condition side for branches.
func unitSide(in *ir.Ins) c6x.Side {
	switch {
	case in.Op.IsMem():
		return in.Src1.Reg.Side()
	case in.Op == c6x.BPKT:
		return c6x.SideB // either S unit works; prefer S2 for branches
	case in.Op == c6x.BREG:
		return in.Src1.Reg.Side()
	case in.HasDst():
		return in.Dst.Side()
	}
	return c6x.SideA
}

// dataSide returns the data-path (T) side of a memory op.
func dataSide(in *ir.Ins) c6x.Side {
	if in.Op.IsStore() {
		return in.Data.Side()
	}
	return in.Dst.Side()
}

func latOf(in *ir.Ins) int { return in.Op.Latency() }

// Schedule schedules one block. Branch targets are left as block indices
// (rewritten by the caller after layout).
func Schedule(b *ir.Block) (*Result, error) {
	n := len(b.Ins)
	if n == 0 {
		return &Result{}, nil
	}
	nodes := make([]node, n)
	var branchIdx, haltIdx = -1, -1
	for i := range b.Ins {
		in := &b.Ins[i]
		nodes[i].ins = in
		nodes[i].cycle = -1
		switch {
		case in.Op.IsBranch():
			if branchIdx >= 0 {
				return nil, fmt.Errorf("sched: block %s has two branches", b.Label)
			}
			if i != n-1 {
				return nil, fmt.Errorf("sched: branch not last in block %s", b.Label)
			}
			branchIdx = i
		case in.Op == c6x.HALT:
			haltIdx = i
		case in.Op == c6x.NOP:
			return nil, fmt.Errorf("sched: explicit NOP in IR of block %s", b.Label)
		}
	}

	addEdge := func(from, to, w int) {
		nodes[from].succs = append(nodes[from].succs, edge{to: to, w: w})
		nodes[to].preds++
	}

	// Dependence edges.
	for j := 0; j < n; j++ {
		jr := b.Ins[j].Reads()
		jw, jHas := b.Ins[j].Writes()
		jMem := b.Ins[j].Op.IsMem()
		jStoreish := b.Ins[j].Op.IsStore() || b.Ins[j].Volatile
		for i := 0; i < j; i++ {
			iw, iHas := b.Ins[i].Writes()
			iMem := b.Ins[i].Op.IsMem()
			iStoreish := b.Ins[i].Op.IsStore() || b.Ins[i].Volatile
			// Edge weights may legitimately be negative (a short-latency
			// write followed by a long-latency write of the same register
			// needs w = lat_i - lat_j + 1 < 0), so edge existence is
			// tracked separately from the weight.
			w := 0
			has := false
			dep := func(min int) {
				if !has || min > w {
					w = min
				}
				has = true
			}
			if iHas {
				for _, r := range jr {
					if r == iw { // RAW
						dep(latOf(&b.Ins[i]))
					}
				}
			}
			if jHas && iHas && iw == jw { // WAW: commit order
				dep(latOf(&b.Ins[i]) - latOf(&b.Ins[j]) + 1)
			}
			if jHas { // WAR
				for _, r := range b.Ins[i].Reads() {
					if r == jw {
						dep(0)
					}
				}
			}
			if iMem && jMem && (iStoreish || jStoreish) { // memory order
				dep(1)
			}
			if haltIdx == j && (iMem || iHas) { // everything before halt
				dep(0)
			}
			if has {
				addEdge(i, j, w)
			}
		}
	}

	// Priorities: longest path to a sink.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := n - 1; i >= 0; i-- {
		p := 1
		for _, e := range nodes[i].succs {
			if q := nodes[e.to].prio + e.w + 1; q > p {
				p = q
			}
		}
		nodes[i].prio = p
		if nodes[i].ins.Pin == ir.PinFirst {
			nodes[i].prio += 1000 // schedule sync start as early as possible
		}
	}

	res := newResources()
	// Main list scheduling over all nodes except branch, halt and the
	// PinLast sync-wait (placed afterwards, as late as possible).
	deferred := func(i int) bool {
		return i == branchIdx || i == haltIdx || nodes[i].ins.Pin == ir.PinLast
	}
	remaining := 0
	for i := 0; i < n; i++ {
		if !deferred(i) {
			remaining++
		}
	}
	scheduledAt := func(i, cycle int, u c6x.Unit) {
		nodes[i].cycle = cycle
		nodes[i].unit = u
		nodes[i].placed = true
		for _, e := range nodes[i].succs {
			if t := cycle + e.w; t > nodes[e.to].earliest {
				nodes[e.to].earliest = t
			}
			nodes[e.to].preds--
		}
	}
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > 100000 {
			return nil, fmt.Errorf("sched: no progress in block %s", b.Label)
		}
		// Collect ready nodes.
		var ready []int
		for i := 0; i < n; i++ {
			if deferred(i) || nodes[i].placed {
				continue
			}
			if nodes[i].preds == 0 && nodes[i].earliest <= cycle {
				ready = append(ready, i)
			}
		}
		sort.Slice(ready, func(a, c int) bool {
			if nodes[ready[a]].prio != nodes[ready[c]].prio {
				return nodes[ready[a]].prio > nodes[ready[c]].prio
			}
			return ready[a] < ready[c]
		})
		for _, i := range ready {
			// A deferred predecessor still pending? preds==0 guarantees not.
			u, ok := res.fit(nodes[i].ins, cycle)
			if !ok {
				continue
			}
			res.take(nodes[i].ins, cycle, u)
			scheduledAt(i, cycle, u)
			remaining--
		}
	}

	workLast := -1
	for i := 0; i < n; i++ {
		if nodes[i].placed && nodes[i].cycle > workLast {
			workLast = nodes[i].cycle
		}
	}

	// Place the PinLast sync-wait load(s): as late as possible so the
	// cycle generation drains in parallel with the block body.
	for i := 0; i < n; i++ {
		if nodes[i].ins.Pin != ir.PinLast || nodes[i].placed {
			continue
		}
		if nodes[i].preds != 0 {
			return nil, fmt.Errorf("sched: sync wait depends on deferred node in %s", b.Label)
		}
		cycle := maxInt(nodes[i].earliest, workLast)
		for {
			if u, ok := res.fit(nodes[i].ins, cycle); ok {
				res.take(nodes[i].ins, cycle, u)
				scheduledAt(i, cycle, u)
				break
			}
			cycle++
		}
		if nodes[i].cycle > workLast {
			workLast = nodes[i].cycle
		}
	}

	// Commit horizon: every write to a register that outlives the block
	// must land before the block ends. PinLast loads are exempt (their
	// destination is a scratch register; only the stall matters).
	commitEnd := 0
	for i := 0; i < n; i++ {
		if !nodes[i].placed {
			continue
		}
		if _, has := nodes[i].ins.Writes(); has && nodes[i].ins.Pin != ir.PinLast {
			if e := nodes[i].cycle + latOf(nodes[i].ins); e > commitEnd {
				commitEnd = e
			}
		}
	}

	blockLen := maxInt(workLast+1, commitEnd)

	// Place the branch with delay-slot filling: as early as data allows,
	// but late enough that all remaining work fits in the 5 delay slots.
	if branchIdx >= 0 {
		bn := &nodes[branchIdx]
		if bn.preds != 0 {
			return nil, fmt.Errorf("sched: branch predecessors unplaced in %s", b.Label)
		}
		cycle := maxInt(bn.earliest, maxInt(workLast-c6x.BranchDelay, commitEnd-c6x.BranchDelay-1))
		if cycle < 0 {
			cycle = 0
		}
		for {
			if u, ok := res.fit(bn.ins, cycle); ok {
				res.take(bn.ins, cycle, u)
				scheduledAt(branchIdx, cycle, u)
				break
			}
			cycle++
		}
		blockLen = nodes[branchIdx].cycle + c6x.BranchDelay + 1
	}

	// Place HALT alone at the end.
	if haltIdx >= 0 {
		if nodes[haltIdx].preds != 0 {
			return nil, fmt.Errorf("sched: halt predecessors unplaced in %s", b.Label)
		}
		c := maxInt(blockLen, nodes[haltIdx].earliest)
		nodes[haltIdx].cycle = c
		nodes[haltIdx].placed = true
		blockLen = c + 1
	}

	// Emit packets cycle by cycle, merging idle cycles into NOP n.
	byCycle := map[int][]int{}
	for i := 0; i < n; i++ {
		if !nodes[i].placed {
			return nil, fmt.Errorf("sched: instruction %d unplaced in %s", i, b.Label)
		}
		byCycle[nodes[i].cycle] = append(byCycle[nodes[i].cycle], i)
	}
	var packets []c6x.Packet
	cycles := 0
	idle := 0
	flushIdle := func() {
		if idle > 0 {
			packets = append(packets, c6x.Packet{Insts: []c6x.Inst{{Op: c6x.NOP, NopCycles: idle}}})
			cycles += idle
			idle = 0
		}
	}
	for c := 0; c < blockLen; c++ {
		ids := byCycle[c]
		if len(ids) == 0 {
			idle++
			continue
		}
		flushIdle()
		sort.Slice(ids, func(a, b2 int) bool { return nodes[ids[a]].unit < nodes[ids[b2]].unit })
		var insts []c6x.Inst
		for _, i := range ids {
			inst := nodes[i].ins.Inst
			inst.Unit = nodes[i].unit
			insts = append(insts, inst)
		}
		packets = append(packets, c6x.Packet{Insts: insts})
		cycles++
	}
	flushIdle()
	return &Result{Packets: packets, Cycles: cycles}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
