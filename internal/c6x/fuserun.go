package c6x

import (
	"fmt"
	"sync"
)

// This file is the fused engine's runtime: entry detection, the segment
// dispatch loop, and the boundary-hook protocol the platform uses to
// keep interrupt delivery, tracing and clock limits bit-identical to
// the generic engines while steady-state loops stay inside fused code.

// FusedHook is the per-boundary callback of StepFused. It runs with the
// architectural state observable exactly as the generic engines present
// it at a region boundary: pc at the boundary packet, cycle/busy/stats
// synchronized, the register file committed, and any pending branch
// restored. In-flight writebacks are held in fused slots; they are
// flushed into the ordinary pending window automatically when the hook
// stops execution, returns an error, or redirects the pc (SetPC), so
// the caller always gets back a state the interpreter can continue
// from. Returning stop=true ends StepFused with that state.
type FusedHook func() (stop bool, err error)

// UseFused attaches a fused program. The Sim keeps executing through
// Step/Run as before; fused execution only engages through
// RunFused/StepFused at clean region entries.
func (s *Sim) UseFused(fp *FusedProgram) error {
	if fp == nil || fp.prog != s.prog {
		return fmt.Errorf("c6x: fused program does not match the simulator's program")
	}
	s.fused = fp
	if cap(s.pending) < 32 {
		p := make([]writeback, len(s.pending), 32)
		copy(p, s.pending)
		s.pending = p
	}
	return nil
}

// Fused reports whether a fused program is attached.
func (s *Sim) Fused() bool { return s.fused != nil }

// FusedEntryOK reports whether fused execution can engage at the
// current state: a clean machine state (no pending branch, no in-flight
// writebacks) at a compiled re-entry point. After a deopt the state is
// intentionally not clean mid-region; the generic engine carries it to
// the next boundary where fusion re-engages.
func (s *Sim) FusedEntryOK() bool {
	if s.fused == nil || s.halted || s.brValid || len(s.pending) != 0 {
		return false
	}
	return s.fused.entryAt(s.pc) >= 0
}

// flushEntry materializes a boundary segment's in-flight window into
// the ordinary pending list (pc and branch state are handled by the
// caller's protocol).
func flushEntry(s *Sim, seg *fseg) {
	for _, fi := range seg.entryFlush {
		if fi.pred && !s.fslotOn[fi.slot] {
			continue
		}
		s.pending = append(s.pending, writeback{reg: fi.reg, val: s.fslotVal[fi.slot], commitAt: s.busy + fi.rel})
	}
}

// StepFused runs fused segments from the current state (the caller must
// have checked FusedEntryOK) until the program halts, an op errors, the
// hook stops or redirects execution, or a segment deoptimizes back to
// the generic engines. The hook fires at every region-boundary segment
// except the first: the caller enters StepFused having just performed
// its own boundary actions there. With a nil hook the engine checks
// MaxCycles itself at boundaries, producing the interpreter-flavored
// limit error.
//
// On return the architectural state is always one the generic engines
// can continue from bit-identically; stopped reports that the hook
// ended the run (as opposed to a deopt, redirect or halt).
func (s *Sim) StepFused(hook FusedHook) (stopped bool, err error) {
	fp := s.fused
	si := fp.entryAt(s.pc)
	if si < 0 {
		return false, fmt.Errorf("c6x: StepFused at pc %d: not a fused entry", s.pc)
	}
	s.fusedActive = true
	defer func() { s.fusedActive = false }()
	first := true
	for {
		seg := fp.segs[si]
		if seg.boundary && !first {
			if hook == nil {
				if s.cycle > s.MaxCycles {
					s.pc = seg.pkt
					if seg.entryBr.valid {
						s.brValid, s.brTgt, s.brCnt = true, seg.entryBr.tgt, seg.entryBr.cnt
					}
					flushEntry(s, seg)
					return false, s.errf(seg.pkt, "cycle limit exceeded")
				}
			} else {
				s.pc = seg.pkt
				if seg.entryBr.valid {
					s.brValid, s.brTgt, s.brCnt = true, seg.entryBr.tgt, seg.entryBr.cnt
				}
				stop, err := hook()
				if err != nil || stop {
					flushEntry(s, seg)
					return stop, err
				}
				if s.pc != seg.pkt || s.halted {
					// Redirected (interrupt delivery, debugger): hand the
					// materialized state back; the caller re-dispatches.
					flushEntry(s, seg)
					return false, nil
				}
				if seg.entryBr.valid {
					s.brValid = false // back under static tracking
				}
			}
		}
		first = false
		s.fnext = -1
		for _, op := range seg.ops {
			if err := op(s); err != nil {
				return false, err
			}
		}
		if s.fnext < 0 {
			// Terminal materialized the state (deopt or halt).
			return false, nil
		}
		si = s.fnext
	}
}

// RunFused executes until HALT or error, preferring fused segments and
// falling back to generic steps between a deopt and the next clean
// region entry. Semantically identical to Run.
func (s *Sim) RunFused() error {
	for !s.halted {
		if s.cycle > s.MaxCycles {
			return s.errf(s.pc, "cycle limit exceeded")
		}
		if s.FusedEntryOK() {
			if _, err := s.StepFused(nil); err != nil {
				return err
			}
			continue
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// fuseOnce memoizes one program's fusion.
type fuseOnce struct {
	once sync.Once
	fp   *FusedProgram
	err  error
}

// fuseCache memoizes Fuse per *Program identity (see compileCache for
// why pointer keys are safe here).
var fuseCache sync.Map // *Program -> *fuseOnce

// FuseCached returns the memoized fusion of prog. The caller must
// derive cfg deterministically from prog (the platform does): the first
// caller's cfg wins for everyone sharing the program.
func FuseCached(prog *Program, cfg FuseConfig) (*FusedProgram, error) {
	v, _ := fuseCache.LoadOrStore(prog, &fuseOnce{})
	e := v.(*fuseOnce)
	e.once.Do(func() { e.fp, e.err = Fuse(prog, cfg) })
	return e.fp, e.err
}
