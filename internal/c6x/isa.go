package c6x

import "fmt"

// NumRegs is the number of registers per file.
const NumRegs = 32

// Reg identifies a register: 0..31 = A0..A31, 32..63 = B0..B31.
type Reg uint8

// NoReg marks an unused register field.
const NoReg Reg = 0xFF

// A and B construct register names.
func A(n int) Reg { return Reg(n) }

// B returns register Bn.
func B(n int) Reg { return Reg(NumRegs + n) }

// Side is a datapath side of the VLIW.
type Side uint8

// The two datapath sides.
const (
	SideA Side = iota
	SideB
)

// Side returns which register file the register belongs to.
func (r Reg) Side() Side {
	if r < NumRegs {
		return SideA
	}
	return SideB
}

// Index returns the register index within its file.
func (r Reg) Index() int { return int(r) % NumRegs }

// String returns the assembler name (A0..A31, B0..B31).
func (r Reg) String() string {
	if r == NoReg {
		return "-"
	}
	if r.Side() == SideA {
		return fmt.Sprintf("A%d", r.Index())
	}
	return fmt.Sprintf("B%d", r.Index())
}

// Unit is a functional unit.
type Unit uint8

// The eight functional units.
const (
	UnitNone Unit = iota
	L1
	S1
	M1
	D1
	L2
	S2
	M2
	D2
)

var unitNames = [...]string{"--", ".L1", ".S1", ".M1", ".D1", ".L2", ".S2", ".M2", ".D2"}

// String returns the assembler name of the unit.
func (u Unit) String() string { return unitNames[u] }

// Side returns the datapath side of the unit.
func (u Unit) Side() Side {
	if u >= L2 {
		return SideB
	}
	return SideA
}

// Kind returns the unit kind letter ('L', 'S', 'M', 'D').
func (u Unit) Kind() byte {
	switch u {
	case L1, L2:
		return 'L'
	case S1, S2:
		return 'S'
	case M1, M2:
		return 'M'
	case D1, D2:
		return 'D'
	}
	return '-'
}

// UnitFor returns the unit of the given kind on the given side.
func UnitFor(kind byte, side Side) Unit {
	var base Unit
	switch kind {
	case 'L':
		base = L1
	case 'S':
		base = S1
	case 'M':
		base = M1
	case 'D':
		base = D1
	default:
		return UnitNone
	}
	if side == SideB {
		base += 4
	}
	return base
}

// Op is a C6x operation.
type Op uint8

// C6x operations (the subset the translator emits).
const (
	INVALID Op = iota
	MV         // dst = src1
	MVK        // dst = sext16(imm)            (TI MVKL)
	MVKH       // dst = (dst & 0xFFFF) | imm<<16
	ADD        // dst = src1 + src2
	SUB        // dst = src1 - src2
	MPY        // dst = src1 * src2 (low 32; 1 delay slot)
	AND
	OR
	XOR
	ANDN   // dst = src1 &^ src2
	SHL    // dst = src1 << (src2 & 31)
	SHR    // logical
	SAR    // arithmetic (TI SHR on signed)
	NEG    // dst = -src1
	EXTB   // dst = sext8(src1)  (C64x-style)
	EXTH   // dst = sext16(src1)
	CMPEQ  // dst = src1 == src2
	CMPLT  // signed <
	CMPLTU // unsigned <
	CMPGT  // signed >
	CMPGTU // unsigned >
	LDW    // dst = mem32[src1 + offset] (4 delay slots)
	LDH    // signed halfword
	LDHU
	LDB // signed byte
	LDBU
	STW // mem[src1 + offset] = data
	STH
	STB
	BPKT // branch to packet Target (5 delay slots)
	BREG // branch to packet index in src1 (5 delay slots)
	NOP  // idle NopCycles cycles
	HALT // stop the core
	NumOps
)

var opNames = [NumOps]string{
	INVALID: "<invalid>", MV: "mv", MVK: "mvk", MVKH: "mvkh",
	ADD: "add", SUB: "sub", MPY: "mpy", AND: "and", OR: "or", XOR: "xor",
	ANDN: "andn", SHL: "shl", SHR: "shr", SAR: "sar", NEG: "neg",
	EXTB: "extb", EXTH: "exth",
	CMPEQ: "cmpeq", CMPLT: "cmplt", CMPLTU: "cmpltu", CMPGT: "cmpgt", CMPGTU: "cmpgtu",
	LDW: "ldw", LDH: "ldh", LDHU: "ldhu", LDB: "ldb", LDBU: "ldbu",
	STW: "stw", STH: "sth", STB: "stb",
	BPKT: "b", BREG: "b", NOP: "nop", HALT: "halt",
}

// String returns the mnemonic.
func (op Op) String() string {
	if op >= NumOps {
		return "<bad>"
	}
	return opNames[op]
}

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op >= LDW && op <= LDBU }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op >= STW && op <= STB }

// IsMem reports whether op accesses memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op transfers control.
func (op Op) IsBranch() bool { return op == BPKT || op == BREG }

// MemSize returns the access size in bytes of a memory op.
func (op Op) MemSize() int {
	switch op {
	case LDW, STW:
		return 4
	case LDH, LDHU, STH:
		return 2
	case LDB, LDBU, STB:
		return 1
	}
	return 0
}

// Latency returns the result latency in cycles (1 = usable next cycle).
// Branches have no result; their 5 delay slots are modeled separately.
func (op Op) Latency() int {
	switch {
	case op == MPY:
		return 2
	case op.IsLoad():
		return 5
	}
	return 1
}

// BranchDelay is the number of delay-slot cycles of a branch: the target
// packet executes BranchDelay+1 cycles after the branch issues.
const BranchDelay = 5

// UnitKinds returns the unit kinds that can execute op ("LS" = .L or .S).
func (op Op) UnitKinds() string {
	switch op {
	case ADD, SUB, AND, OR, XOR, ANDN, NEG, CMPEQ, CMPLT, CMPLTU, CMPGT, CMPGTU:
		return "LS"
	case MV:
		return "LSD"
	case MVK, MVKH, SHL, SHR, SAR, EXTB, EXTH:
		return "S"
	case MPY:
		return "M"
	case LDW, LDH, LDHU, LDB, LDBU, STW, STH, STB:
		return "D"
	case BPKT, BREG:
		return "S"
	}
	return ""
}

// ReadsSrc1 reports whether op reads the Src1 operand.
func (op Op) ReadsSrc1() bool {
	switch op {
	case MVK, MVKH, NOP, HALT, BPKT, INVALID:
		return false
	}
	return true
}

// ReadsSrc2 reports whether op reads the Src2 operand as a value source
// (memory offsets are immediates and never use the cross path).
func (op Op) ReadsSrc2() bool {
	switch op {
	case MV, NEG, EXTB, EXTH, MVK, MVKH, NOP, HALT, BPKT, BREG, INVALID:
		return false
	}
	return !op.IsMem()
}

// Operand is a register or immediate source operand.
type Operand struct {
	IsImm bool
	Reg   Reg
	Imm   int32
}

// R and Imm construct operands.
func R(r Reg) Operand { return Operand{Reg: r} }

// Imm returns an immediate operand.
func Imm(v int32) Operand { return Operand{IsImm: true, Imm: v} }

// String renders the operand.
func (o Operand) String() string {
	if o.IsImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return o.Reg.String()
}

// Pred is an optional predicate guard: execute iff (reg != 0) != Neg.
type Pred struct {
	Valid bool
	Neg   bool
	Reg   Reg
}

// String renders the predicate prefix ("[A1] " style).
func (p Pred) String() string {
	if !p.Valid {
		return ""
	}
	n := ""
	if p.Neg {
		n = "!"
	}
	return fmt.Sprintf("[%s%s] ", n, p.Reg)
}

// Inst is one C6x instruction within an execute packet.
//
// Field usage: ALU ops use Dst/Src1/Src2. Loads use Dst (data), Src1
// (base register) and Src2 (immediate byte offset). Stores use Data,
// Src1 (base) and Src2 (offset). BPKT uses Target (a packet index);
// BREG uses Src1. NOP uses NopCycles.
type Inst struct {
	Op     Op
	Unit   Unit
	Pred   Pred
	Dst    Reg
	Src1   Operand
	Src2   Operand
	Data   Reg // store data register
	Target int // branch target packet
	// NopCycles is the idle cycle count of a NOP (1..9 on real hardware;
	// the scheduler may emit larger values, which the simulator honors).
	NopCycles int
	// Volatile marks memory ops that must not be reordered (sync device,
	// bus interface accesses). Scheduling metadata only.
	Volatile bool
	// SymImm marks an MVK whose immediate is a label id to be replaced
	// by a packet index at link time (call return addresses). BPKT
	// instructions similarly hold a label id in Target until link time.
	SymImm bool
}

// HasDst reports whether the instruction writes Dst.
func (i Inst) HasDst() bool {
	switch i.Op {
	case STW, STH, STB, BPKT, BREG, NOP, HALT, INVALID:
		return false
	}
	return true
}

// String renders the instruction in a TI-flavoured listing syntax.
func (i Inst) String() string {
	p := i.Pred.String()
	switch {
	case i.Op == NOP:
		if i.NopCycles > 1 {
			return fmt.Sprintf("%snop %d", p, i.NopCycles)
		}
		return p + "nop"
	case i.Op == HALT:
		return p + "halt"
	case i.Op == BPKT:
		return fmt.Sprintf("%sb %s P%d", p, i.Unit, i.Target)
	case i.Op == BREG:
		return fmt.Sprintf("%sb %s %s", p, i.Unit, i.Src1)
	case i.Op.IsLoad():
		return fmt.Sprintf("%s%s %s *%+d[%s], %s", p, i.Op, i.Unit, i.Src2.Imm, i.Src1.Reg, i.Dst)
	case i.Op.IsStore():
		return fmt.Sprintf("%s%s %s %s, *%+d[%s]", p, i.Op, i.Unit, i.Data, i.Src2.Imm, i.Src1.Reg)
	case i.Op == MVK || i.Op == MVKH:
		return fmt.Sprintf("%s%s %s %d, %s", p, i.Op, i.Unit, i.Src2.Imm, i.Dst)
	case i.Op == MV || i.Op == NEG || i.Op == EXTB || i.Op == EXTH:
		return fmt.Sprintf("%s%s %s %s, %s", p, i.Op, i.Unit, i.Src1, i.Dst)
	default:
		return fmt.Sprintf("%s%s %s %s, %s, %s", p, i.Op, i.Unit, i.Src1, i.Src2, i.Dst)
	}
}

// Packet is one execute packet: up to eight instructions issued in the
// same cycle (at most one per functional unit).
type Packet struct {
	Insts []Inst
}

// Cycles returns the cycle cost of the packet (multi-cycle for NOP n).
func (pk Packet) Cycles() int {
	if len(pk.Insts) == 1 && pk.Insts[0].Op == NOP && pk.Insts[0].NopCycles > 1 {
		return pk.Insts[0].NopCycles
	}
	return 1
}

// Program is an executable C6x program: a flat list of execute packets.
// Branch targets are packet indices.
type Program struct {
	Packets []Packet
	Entry   int
}
