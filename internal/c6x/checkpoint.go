package c6x

// This file is the speculative-execution hook of the C6x core: the
// platform checkpoints the CPU at a quantum boundary and either commits
// or rolls back (see platform.System.Checkpoint). Both engines share
// the Sim state, so one hook serves the interpreter and the compiled
// engine; the compiled engine's per-packet scratch (cwb, dueBuf,
// cstall, cbrSeen) is reset at the top of every step and needs no
// saving.

type checkpoint struct {
	regs    [2 * NumRegs]uint32
	pc      int
	cycle   int64
	busy    int64
	halted  bool
	pending []writeback
	brValid bool
	brTgt   int
	brCnt   int
	stats   Stats
	valid   bool
}

// Checkpoint saves the core's complete execution state. Only one
// checkpoint is outstanding at a time; a new one replaces the last.
func (s *Sim) Checkpoint() {
	ck := &s.ck
	ck.regs = s.Regs
	ck.pc = s.pc
	ck.cycle = s.cycle
	ck.busy = s.busy
	ck.halted = s.halted
	ck.pending = append(ck.pending[:0], s.pending...)
	ck.brValid = s.brValid
	ck.brTgt = s.brTgt
	ck.brCnt = s.brCnt
	ck.stats = s.stats
	ck.valid = true
}

// CommitCheckpoint discards the outstanding checkpoint.
func (s *Sim) CommitCheckpoint() { s.ck.valid = false }

// Rollback restores the state saved by the last Checkpoint, exactly:
// register file, packet PC, clocks, in-flight writebacks, branch state
// and statistics.
func (s *Sim) Rollback() {
	if !s.ck.valid {
		return
	}
	ck := &s.ck
	s.Regs = ck.regs
	s.pc = ck.pc
	s.cycle = ck.cycle
	s.busy = ck.busy
	s.halted = ck.halted
	s.pending = append(s.pending[:0], ck.pending...)
	s.brValid = ck.brValid
	s.brTgt = ck.brTgt
	s.brCnt = ck.brCnt
	s.stats = ck.stats
	ck.valid = false
}
