package c6x

import (
	"fmt"
	"sort"
)

// MemPort is the memory system seen by the core. Implementations may stall
// the core by returning contCycle > cycle (e.g. the synchronization
// device's blocking read, or bus wait states on the SoC bridge).
type MemPort interface {
	Load(addr uint32, size int, cycle int64) (val uint32, contCycle int64, err error)
	Store(addr uint32, val uint32, size int, cycle int64) (contCycle int64, err error)
}

// SimError is a simulation-time error (machine fault or, in strict mode, a
// schedule-contract violation, which indicates a translator bug).
type SimError struct {
	Packet int
	Cycle  int64
	Msg    string
}

func (e *SimError) Error() string {
	return fmt.Sprintf("c6x: packet %d cycle %d: %s", e.Packet, e.Cycle, e.Msg)
}

type writeback struct {
	reg Reg
	val uint32
	// commitAt is the busy-time (stall-free cycle count) at which the
	// value lands in the register file. Tracking the precise cycle keeps
	// same-cycle WAW detection exact across multi-cycle NOPs.
	commitAt int64
}

// Stats are the C6x-side measurements: the cycle count at 200 MHz is the
// platform execution time of the translated program.
type Stats struct {
	Cycles       int64 // total core cycles including stalls
	StallCycles  int64 // cycles spent frozen on memory (sync waits etc.)
	Packets      int64 // execute packets issued
	Instructions int64 // instructions executed (predicates passed; NOPs excluded)
	NopCycles    int64 // cycles spent in NOPs (explicit idle)
}

// Sim is the cycle-exact C6x core simulator. It executes through one of
// two engines sharing the same architectural state: the packet
// interpreter (the reference below, and the equivalence oracle) or the
// threaded-code compiled engine attached with UseCompiled (see
// compile.go). Step, Run, SetPC and the register accessors behave
// identically under both.
type Sim struct {
	Regs [2 * NumRegs]uint32

	prog *Program
	mem  MemPort
	pc   int
	// Strict enables schedule-contract checking: reads of registers with
	// in-flight writes, overlapping branches, unit/cross-path conflicts
	// and writeback collisions become errors instead of silent hardware
	// behavior. The translator's output must run cleanly in strict mode.
	Strict bool

	cycle   int64
	busy    int64 // stall-free cycle count (latency clock)
	halted  bool
	pending []writeback
	brValid bool
	brTgt   int
	brCnt   int

	stats Stats

	// MaxCycles aborts runaway programs (default 2e9).
	MaxCycles int64

	// Compiled-engine state (see compile.go). comp selects the engine;
	// cwb, dueBuf, cstall and cbrSeen are the per-packet scratch the
	// interpreter keeps in locals, hoisted onto the Sim so packet
	// closures can share them without allocating.
	comp    *CompiledProgram
	cwb     []writeback // current packet's writebacks
	dueBuf  []writeback // commit scratch
	cstall  int64       // memory stall cycles of the current packet
	cbrSeen bool        // a branch issued in the current packet

	// Fused-engine state (see fuse.go, fuserun.go). fused selects the
	// superblock engine for RunFused/StepFused; fstall, fslotVal,
	// fslotOn, fcond0, fnext and fusedPkt are segment-local scratch that
	// is always drained (fstall) or dead by the time fused execution
	// returns, so — like the compiled engine's scratch — it needs no
	// checkpointing.
	fused       *FusedProgram
	fstall      int64                // memory stalls since the last sync point
	fslotVal    [fuseMaxSlots]uint32 // in-flight writeback values
	fslotOn     [fuseMaxSlots]bool   // predicated producer executed
	fcond0      bool                 // predicated-branch outcome for the segment terminal
	fnext       int32                // next segment (-1 = exit fused execution)
	fusedActive bool                 // inside StepFused (MemPkt source selector)
	fusedPkt    int32                // packet of the store being performed (fused engine)

	// Speculative-execution checkpoint (see checkpoint.go).
	ck checkpoint
}

// NewSim builds a simulator for prog with the given memory system.
func NewSim(prog *Program, mem MemPort) *Sim {
	return &Sim{prog: prog, mem: mem, pc: prog.Entry, Strict: true, MaxCycles: 2_000_000_000}
}

// Reg returns the value of r.
func (s *Sim) Reg(r Reg) uint32 { return s.Regs[r] }

// SetReg sets the value of r.
func (s *Sim) SetReg(r Reg, v uint32) { s.Regs[r] = v }

// Cycle returns the current core cycle.
func (s *Sim) Cycle() int64 { return s.cycle }

// PC returns the current packet index.
func (s *Sim) PC() int { return s.pc }

// MemPkt returns the packet index of the memory access currently being
// performed by a MemPort callback. Under the stepping engines the pc
// has already advanced past the packet (pc-1); under the fused engine
// the pc is not maintained per packet, so store ops record their packet
// explicitly. Valid only during a MemPort Load/Store callback.
func (s *Sim) MemPkt() int {
	if s.fusedActive {
		return int(s.fusedPkt)
	}
	return s.pc - 1
}

// SetPC redirects execution to a packet (used by the debug harness to
// switch between translation images at region boundaries). Any pending
// branch is cancelled; in-flight writebacks are preserved.
func (s *Sim) SetPC(pc int) {
	s.pc = pc
	s.brValid = false
}

// Halted reports whether the core has executed HALT.
func (s *Sim) Halted() bool { return s.halted }

// Stats returns the accumulated measurements.
func (s *Sim) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	return st
}

func (s *Sim) errf(pkt int, format string, args ...any) error {
	return &SimError{Packet: pkt, Cycle: s.cycle, Msg: fmt.Sprintf(format, args...)}
}

// readReg reads a register value, enforcing the no-interlock contract in
// strict mode: a register with a write still in flight from an earlier
// cycle must not be read (delay-slot underflow = translator bug).
func (s *Sim) readReg(pkt int, r Reg, thisPacket []writeback) (uint32, error) {
	if s.Strict {
		for i := range s.pending {
			if s.pending[i].reg == r {
				return 0, s.errf(pkt, "read of %s with write in flight (%d cycles remaining)", r, s.pending[i].commitAt-s.busy)
			}
		}
		_ = thisPacket // same-packet writes are legal old-value reads
	}
	return s.Regs[r], nil
}

func (s *Sim) operand(pkt int, o Operand, wbs []writeback) (uint32, error) {
	if o.IsImm {
		return uint32(o.Imm), nil
	}
	return s.readReg(pkt, o.Reg, wbs)
}

// Step executes one packet (possibly multi-cycle for NOP n) and returns
// whether the core is still running. With a compiled program attached it
// dispatches to the threaded-code engine; the body below is the
// interpreter, the equivalence oracle the compiled engine is tested
// against.
func (s *Sim) Step() error {
	if s.comp != nil {
		return s.stepCompiled()
	}
	if s.halted {
		return nil
	}
	if s.pc < 0 || s.pc >= len(s.prog.Packets) {
		return s.errf(s.pc, "fell off the program (pc=%d of %d packets)", s.pc, len(s.prog.Packets))
	}
	pktIdx := s.pc
	pk := s.prog.Packets[pktIdx]
	s.pc++
	s.stats.Packets++

	if err := s.validatePacket(pktIdx, pk); err != nil {
		return err
	}

	var newWbs []writeback
	var stall int64
	branchSeen := false
	for _, in := range pk.Insts {
		if in.Pred.Valid {
			pv, err := s.readReg(pktIdx, in.Pred.Reg, newWbs)
			if err != nil {
				return err
			}
			if (pv != 0) == in.Pred.Neg {
				continue // predicated off
			}
		}
		if in.Op != NOP {
			s.stats.Instructions++
		}
		switch {
		case in.Op == NOP:
			// handled by packet cycle accounting
		case in.Op == HALT:
			s.halted = true
		case in.Op == BPKT, in.Op == BREG:
			if s.brValid || branchSeen {
				if s.Strict {
					return s.errf(pktIdx, "branch issued while another branch is in flight")
				}
			}
			tgt := in.Target
			if in.Op == BREG {
				v, err := s.operand(pktIdx, in.Src1, newWbs)
				if err != nil {
					return err
				}
				tgt = int(int32(v))
			}
			s.brValid = true
			s.brTgt = tgt
			s.brCnt = BranchDelay + 1
			branchSeen = true
		case in.Op.IsLoad():
			base, err := s.operand(pktIdx, in.Src1, newWbs)
			if err != nil {
				return err
			}
			addr := base + uint32(in.Src2.Imm)
			v, cont, err := s.mem.Load(addr, in.Op.MemSize(), s.cycle)
			if err != nil {
				return s.errf(pktIdx, "load @%#x: %v", addr, err)
			}
			stall += cont - s.cycle
			switch in.Op {
			case LDH:
				v = uint32(int32(int16(v)))
			case LDB:
				v = uint32(int32(int8(v)))
			}
			newWbs = append(newWbs, writeback{reg: in.Dst, val: v, commitAt: s.busy + int64(in.Op.Latency())})
		case in.Op.IsStore():
			base, err := s.operand(pktIdx, in.Src1, newWbs)
			if err != nil {
				return err
			}
			data, err := s.readReg(pktIdx, in.Data, newWbs)
			if err != nil {
				return err
			}
			addr := base + uint32(in.Src2.Imm)
			cont, err := s.mem.Store(addr, data, in.Op.MemSize(), s.cycle)
			if err != nil {
				return s.errf(pktIdx, "store @%#x: %v", addr, err)
			}
			stall += cont - s.cycle
		default:
			v, err := s.alu(pktIdx, in, newWbs)
			if err != nil {
				return err
			}
			newWbs = append(newWbs, writeback{reg: in.Dst, val: v, commitAt: s.busy + int64(in.Op.Latency())})
		}
		if s.halted {
			break
		}
	}

	// Packet cycle accounting: a multi-cycle NOP runs until a pending
	// branch fires; memory stalls freeze the pipeline (latency counters
	// do not advance during a stall).
	busy := int64(pk.Cycles())
	if pk.Cycles() > 1 {
		s.stats.NopCycles += int64(pk.Cycles() - 1)
	}
	if s.brValid && int64(s.brCnt) < busy {
		busy = int64(s.brCnt)
	}
	s.cycle += busy + stall
	s.stats.StallCycles += stall

	// Advance the latency clock and commit in-flight writes at their
	// precise cycles (two writes to one register collide only if they
	// land in the same cycle, matching the hardware contract).
	s.busy += busy
	s.pending = append(s.pending, newWbs...)
	var due []writeback
	keep := s.pending[:0]
	for _, wb := range s.pending {
		if wb.commitAt <= s.busy {
			due = append(due, wb)
		} else {
			keep = append(keep, wb)
		}
	}
	s.pending = keep
	sort.SliceStable(due, func(i, j int) bool { return due[i].commitAt < due[j].commitAt })
	committed := map[Reg]int64{}
	for _, wb := range due {
		if prev, ok := committed[wb.reg]; ok && prev == wb.commitAt && s.Strict {
			return s.errf(pktIdx, "writeback collision on %s", wb.reg)
		}
		committed[wb.reg] = wb.commitAt
		s.Regs[wb.reg] = wb.val
	}

	if s.brValid {
		s.brCnt -= int(busy)
		if s.brCnt <= 0 {
			s.pc = s.brTgt
			s.brValid = false
		}
	}
	return nil
}

func (s *Sim) alu(pkt int, in Inst, wbs []writeback) (uint32, error) {
	// Read only the operands the op actually uses: the unused operand
	// field's zero value names A0, and a spurious read would trip the
	// strict in-flight check.
	var a, b uint32
	var err error
	if in.Op.ReadsSrc1() {
		a, err = s.operand(pkt, in.Src1, wbs)
		if err != nil {
			return 0, err
		}
	}
	if in.Op.ReadsSrc2() {
		b, err = s.operand(pkt, in.Src2, wbs)
		if err != nil {
			return 0, err
		}
	}
	switch in.Op {
	case MV:
		return a, nil
	case MVK:
		return uint32(int32(int16(in.Src2.Imm))), nil
	case MVKH:
		old, err := s.readReg(pkt, in.Dst, wbs)
		if err != nil {
			return 0, err
		}
		return old&0xFFFF | uint32(in.Src2.Imm)<<16, nil
	case ADD:
		return a + b, nil
	case SUB:
		return a - b, nil
	case MPY:
		return a * b, nil
	case AND:
		return a & b, nil
	case OR:
		return a | b, nil
	case XOR:
		return a ^ b, nil
	case ANDN:
		return a &^ b, nil
	case SHL:
		return a << (b & 31), nil
	case SHR:
		return a >> (b & 31), nil
	case SAR:
		return uint32(int32(a) >> (b & 31)), nil
	case NEG:
		return -a, nil
	case EXTB:
		return uint32(int32(int8(a))), nil
	case EXTH:
		return uint32(int32(int16(a))), nil
	case CMPEQ:
		return b2u(a == b), nil
	case CMPLT:
		return b2u(int32(a) < int32(b)), nil
	case CMPLTU:
		return b2u(a < b), nil
	case CMPGT:
		return b2u(int32(a) > int32(b)), nil
	case CMPGTU:
		return b2u(a > b), nil
	}
	return 0, s.errf(pkt, "unimplemented op %v", in.Op)
}

// validatePacket enforces the VLIW issue rules in strict mode: one
// instruction per unit, ops on legal unit kinds, one cross-path read per
// side, distinct data-path (T) sides for paired memory ops, and memory
// base registers on the unit's side. The compiled engine performs the
// same check once per packet at compile time (see Compile).
func (s *Sim) validatePacket(pktIdx int, pk Packet) error {
	if !s.Strict {
		return nil
	}
	if msg := issueViolation(pk); msg != "" {
		return s.errf(pktIdx, "%s", msg)
	}
	return nil
}

// issueViolation reports the packet's VLIW issue-rule violation, or ""
// for a well-formed packet. The rules do not depend on machine state, so
// the compiled engine hoists this check out of the execution loop.
func issueViolation(pk Packet) string {
	if len(pk.Insts) == 0 {
		return "empty packet"
	}
	if len(pk.Insts) > 8 {
		return fmt.Sprintf("packet with %d instructions", len(pk.Insts))
	}
	var unitUsed [9]bool
	var crossUsed [2]bool
	var tUsed [2]bool
	for _, in := range pk.Insts {
		if in.Op == NOP || in.Op == HALT {
			if len(pk.Insts) != 1 {
				return fmt.Sprintf("%v must be alone in its packet", in.Op)
			}
			continue
		}
		if in.Unit == UnitNone {
			return fmt.Sprintf("%v has no unit", in)
		}
		if unitUsed[in.Unit] {
			return fmt.Sprintf("unit %v used twice", in.Unit)
		}
		unitUsed[in.Unit] = true
		kinds := in.Op.UnitKinds()
		ok := false
		for i := 0; i < len(kinds); i++ {
			if kinds[i] == in.Unit.Kind() {
				ok = true
			}
		}
		if !ok {
			return fmt.Sprintf("%v cannot execute on %v", in.Op, in.Unit)
		}
		side := in.Unit.Side()
		if in.Op.IsMem() {
			if !in.Src1.IsImm && in.Src1.Reg.Side() != side {
				return fmt.Sprintf("memory base %s not on unit side of %v", in.Src1.Reg, in.Unit)
			}
			dataReg := in.Dst
			if in.Op.IsStore() {
				dataReg = in.Data
			}
			t := dataReg.Side()
			if tUsed[t] {
				return fmt.Sprintf("two memory ops on data path T%d", t+1)
			}
			tUsed[t] = true
			continue // memory offset/data do not use the cross path
		}
		if in.Op == BPKT {
			continue
		}
		// Count cross-path source reads (only operands the op reads).
		cross := 0
		if in.Op.ReadsSrc1() && !in.Src1.IsImm && in.Src1.Reg != NoReg && in.Src1.Reg.Side() != side {
			cross++
		}
		if in.Op.ReadsSrc2() && !in.Src2.IsImm && in.Src2.Reg != NoReg && in.Src2.Reg.Side() != side {
			cross++
		}
		if cross > 0 {
			if cross > 1 {
				return fmt.Sprintf("%v reads two cross-path operands", in)
			}
			if crossUsed[side] {
				return fmt.Sprintf("cross path %v used twice", side)
			}
			crossUsed[side] = true
		}
	}
	return ""
}

// Run executes until HALT or error.
func (s *Sim) Run() error {
	for !s.halted {
		if s.cycle > s.MaxCycles {
			return s.errf(s.pc, "cycle limit exceeded")
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Disassemble renders the whole program as a listing, one packet per
// group, with ‖ marking parallel instructions.
func Disassemble(p *Program) string {
	out := ""
	for i, pk := range p.Packets {
		for j, in := range pk.Insts {
			sep := "  "
			if j > 0 {
				sep = "||"
			}
			out += fmt.Sprintf("P%-5d %s %s\n", i, sep, in.String())
		}
	}
	return out
}
