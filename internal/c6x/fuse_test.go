package c6x

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// regions builds a RegionOf map for n packets with region starts at the
// given packet indices.
func regions(n int, starts ...int) []int32 {
	ro := make([]int32, n)
	for i := range ro {
		ro[i] = -1
	}
	for ri, p := range starts {
		ro[p] = int32(ri)
	}
	return ro
}

func mustFuse(t *testing.T, prog *Program, cfg FuseConfig) *FusedProgram {
	t.Helper()
	fp, err := Fuse(prog, cfg)
	if err != nil {
		t.Fatalf("fuse: %v", err)
	}
	return fp
}

// runTriple executes the same program on the interpreter, the compiled
// engine (via runBoth) and the fused engine, requiring bit-identical
// outcomes across all three: error presence and text, registers, cycle
// count, statistics, store sequences and memory.
func runTriple(t *testing.T, cfg FuseConfig, packets ...Packet) (*Sim, *Sim) {
	t.Helper()
	runBoth(t, packets...)
	return runTripleMem(t, cfg, nil, packets...)
}

// runTripleMem is runTriple's interpreter-vs-fused core with an optional
// memory configurator (stall regions etc.) applied to both sides.
func runTripleMem(t *testing.T, cfg FuseConfig, memCfg func(*testMem), packets ...Packet) (*Sim, *Sim) {
	t.Helper()

	im := newTestMem()
	if memCfg != nil {
		memCfg(im)
	}
	is := NewSim(&Program{Packets: packets}, im)
	ierr := is.Run()

	fprog := &Program{Packets: packets}
	fm := newTestMem()
	if memCfg != nil {
		memCfg(fm)
	}
	fs := NewSim(fprog, fm)
	fp := mustFuse(t, fprog, cfg)
	if err := fs.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	if !fs.Fused() {
		t.Fatal("fused engine not attached")
	}
	ferr := fs.RunFused()

	if (ierr == nil) != (ferr == nil) {
		t.Fatalf("error divergence: interp=%v fused=%v", ierr, ferr)
	}
	if ierr != nil && ierr.Error() != ferr.Error() {
		t.Fatalf("error text divergence:\n  interp: %v\n  fused:  %v", ierr, ferr)
	}
	if is.Regs != fs.Regs {
		t.Fatalf("register divergence:\n  interp: %v\n  fused:  %v", is.Regs, fs.Regs)
	}
	if is.Cycle() != fs.Cycle() {
		t.Fatalf("cycle divergence: interp=%d fused=%d", is.Cycle(), fs.Cycle())
	}
	if is.Stats() != fs.Stats() {
		t.Fatalf("stats divergence:\n  interp: %+v\n  fused:  %+v", is.Stats(), fs.Stats())
	}
	if is.Halted() != fs.Halted() {
		t.Fatalf("halt divergence: interp=%v fused=%v", is.Halted(), fs.Halted())
	}
	if ierr == nil && is.PC() != fs.PC() {
		t.Fatalf("pc divergence: interp=%d fused=%d", is.PC(), fs.PC())
	}
	if !reflect.DeepEqual(im.stores, fm.stores) {
		t.Fatalf("store-sequence divergence: interp=%v fused=%v", im.stores, fm.stores)
	}
	if !reflect.DeepEqual(im.ram, fm.ram) {
		t.Fatal("memory divergence")
	}
	return is, fs
}

func TestFusedMatchesInterpreterBasics(t *testing.T) {
	cases := map[string]struct {
		packets []Packet
		starts  []int
	}{
		"straight-line": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x5678)}),
				pk(Inst{Op: MVKH, Unit: S1, Dst: A(1), Src2: Imm(0x1234)}),
				pk(Inst{Op: ADD, Unit: L1, Dst: A(2), Src1: R(A(1)), Src2: Imm(1)}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 2},
		},
		"counted-loop": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(8), Src2: Imm(5)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(0)}),
				pk(Inst{Op: ADD, Unit: L1, Dst: A(9), Src1: R(A(9)), Src2: R(A(8))}), // loop head
				pk(Inst{Op: SUB, Unit: L1, Dst: A(8), Src1: R(A(8)), Src2: Imm(1)}),
				pk(Inst{Op: BPKT, Unit: S1, Target: 2, Pred: Pred{Valid: true, Reg: A(8)}}),
				pk(Inst{Op: NOP, NopCycles: 5}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 2},
		},
		"loop-with-memory": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(10), Src2: Imm(0x200)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(8), Src2: Imm(4)}),
				pk(Inst{Op: STW, Unit: D1, Data: A(8), Src1: R(A(10)), Src2: Imm(0)}), // loop head
				pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(10)), Src2: Imm(0)}),
				pk(Inst{Op: SUB, Unit: L1, Dst: A(8), Src1: R(A(8)), Src2: Imm(1)}),
				pk(Inst{Op: BPKT, Unit: S1, Target: 2, Pred: Pred{Valid: true, Reg: A(8)}}),
				pk(Inst{Op: NOP, NopCycles: 5}),
				pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 2},
		},
		"branch-shortens-nop": {
			packets: []Packet{
				pk(Inst{Op: BPKT, Unit: S1, Target: 3}),
				pk(Inst{Op: NOP, NopCycles: 5}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(9)}), // skipped
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0},
		},
		"predication-mix": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(0)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(10), Pred: Pred{Valid: true, Reg: A(1)}}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(4), Src2: Imm(11), Pred: Pred{Valid: true, Reg: A(2)}}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(12), Pred: Pred{Valid: true, Neg: true, Reg: A(2)}}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 3},
		},
		"predicated-memory": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(10), Src2: Imm(0x100)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(0)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(0x2A)}),
				pk(Inst{Op: STW, Unit: D1, Data: A(3), Src1: R(A(10)), Src2: Imm(0), Pred: Pred{Valid: true, Reg: A(1)}}),
				pk(Inst{Op: STW, Unit: D1, Data: A(3), Src1: R(A(10)), Src2: Imm(4), Pred: Pred{Valid: true, Reg: A(2)}}), // off
				pk(Inst{Op: LDW, Unit: D1, Dst: A(4), Src1: R(A(10)), Src2: Imm(0), Pred: Pred{Valid: true, Reg: A(1)}}),
				pk(Inst{Op: LDW, Unit: D1, Dst: A(5), Src1: R(A(10)), Src2: Imm(4), Pred: Pred{Valid: true, Reg: A(2)}}), // off: no writeback
				pk(Inst{Op: NOP, NopCycles: 4}),
				pk(Inst{Op: ADD, Unit: L1, Dst: A(6), Src1: R(A(4)), Src2: R(A(5))}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0},
		},
		"subword-sext": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(-2)}),
				pk(Inst{Op: STB, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
				pk(Inst{Op: STH, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(4)}),
				pk(Inst{Op: LDB, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
				pk(Inst{Op: NOP, NopCycles: 4}),
				pk(Inst{Op: LDBU, Unit: D1, Dst: A(3), Src1: R(A(5)), Src2: Imm(0)}),
				pk(Inst{Op: NOP, NopCycles: 4}),
				pk(Inst{Op: LDH, Unit: D1, Dst: A(4), Src1: R(A(5)), Src2: Imm(4)}),
				pk(Inst{Op: NOP, NopCycles: 4}),
				pk(Inst{Op: LDHU, Unit: D1, Dst: A(6), Src1: R(A(5)), Src2: Imm(4)}),
				pk(Inst{Op: NOP, NopCycles: 4}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 4},
		},
		"mpy-delay-slot": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(6)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(7)}),
				pk(Inst{Op: MPY, Unit: M1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
				pk(Inst{Op: NOP, NopCycles: 1}),
				pk(Inst{Op: ADD, Unit: L1, Dst: A(4), Src1: R(A(3)), Src2: R(A(3))}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0},
		},
		"predicated-halt-taken": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
				pk(Inst{Op: HALT, Pred: Pred{Valid: true, Reg: A(1)}}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}), // not reached
				pk(Inst{Op: HALT}),
			},
			starts: []int{0},
		},
		"predicated-halt-skipped": {
			packets: []Packet{
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0)}),
				pk(Inst{Op: HALT, Pred: Pred{Valid: true, Reg: A(1)}}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}),
				pk(Inst{Op: HALT}),
			},
			starts: []int{0},
		},
		"region-start-in-delay-slot": {
			// The branch is in flight when the trace crosses the region
			// start at packet 2: the boundary segment carries entry branch
			// state.
			packets: []Packet{
				pk(Inst{Op: BPKT, Unit: S1, Target: 5}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}), // region start, branch pending
				pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(3)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(4), Src2: Imm(4)}),
				pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(9)}), // skipped
				pk(Inst{Op: HALT}),
			},
			starts: []int{0, 2},
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			runTriple(t, FuseConfig{RegionOf: regions(len(tc.packets), tc.starts...)}, tc.packets...)
		})
	}
}

func TestFusedMatchesInterpreterErrors(t *testing.T) {
	cases := map[string][]Packet{
		"load-use-too-early": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
			pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
			pk(Inst{Op: HALT}),
		},
		"overlapping-branches": {
			pk(Inst{Op: BPKT, Unit: S1, Target: 0}),
			pk(Inst{Op: BPKT, Unit: S1, Target: 0}),
			pk(Inst{Op: HALT}),
		},
		"writeback-collision": {
			pk(Inst{Op: MPY, Unit: M1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: HALT}),
		},
		"fell-off-program": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
		},
		"unmapped-target": {
			pk(Inst{Op: BPKT, Unit: S1, Target: 99}),
			pk(Inst{Op: NOP, NopCycles: 5}),
			pk(Inst{Op: HALT}),
		},
	}
	for name, packets := range cases {
		t.Run(name, func(t *testing.T) {
			runTriple(t, FuseConfig{RegionOf: regions(len(packets), 0)}, packets...)
		})
	}
}

// TestFusedBREGFactResolution: MVK/MVKH-built indirect branch targets in
// tracked registers are resolved statically and stay fused; untracked
// ones deoptimize to the generic engine with identical results.
func TestFusedBREGFactResolution(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: B(3), Src2: Imm(8)}),
		pk(Inst{Op: MVKH, Unit: S1, Dst: B(3), Src2: Imm(0)}),
		pk(Inst{Op: BREG, Unit: S1, Src1: R(B(3))}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(9)}), // skipped
		pk(Inst{Op: HALT}), // skipped
		pk(Inst{Op: NOP}),  // skipped
		pk(Inst{Op: NOP}),  // skipped
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}), // BREG target
		pk(Inst{Op: HALT}),
	}
	t.Run("tracked", func(t *testing.T) {
		_, fs := runTriple(t, FuseConfig{
			RegionOf:  regions(len(packets), 0, 8),
			ConstRegs: []Reg{B(3)},
		}, packets...)
		if fs.Reg(A(1)) != 1 {
			t.Fatalf("A1 = %d, want 1", fs.Reg(A(1)))
		}
	})
	t.Run("untracked-deopts", func(t *testing.T) {
		runTriple(t, FuseConfig{RegionOf: regions(len(packets), 0, 8)}, packets...)
	})
}

// TestFusedBREGStaysFused proves fact-resolved indirect loops execute
// without deoptimizing: the boundary hook keeps firing, which a deopt
// (StepFused returning) would cut short.
func TestFusedBREGStaysFused(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: B(3), Src2: Imm(0)}), // loop head and BREG target
		pk(Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(1)), Src2: Imm(1)}),
		pk(Inst{Op: BREG, Unit: S1, Src1: R(B(3))}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: HALT}), // never reached
	}
	prog := &Program{Packets: packets}
	fp := mustFuse(t, prog, FuseConfig{RegionOf: regions(len(packets), 0), ConstRegs: []Reg{B(3)}})
	s := NewSim(prog, newTestMem())
	if err := s.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	boundaries := 0
	stopped, err := s.StepFused(func() (bool, error) {
		boundaries++
		return boundaries >= 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped {
		t.Fatal("StepFused returned without the hook stopping: the loop deoptimized")
	}
	if boundaries != 10 {
		t.Fatalf("hook fired %d times, want 10", boundaries)
	}
	if s.Reg(A(1)) != 10 {
		t.Fatalf("A1 = %d, want 10 iterations", s.Reg(A(1)))
	}
}

// TestFusedMemoryStall: memory stalls accrued in fused code freeze the
// cycle clock exactly like the interpreter's per-packet accounting.
func TestFusedMemoryStall(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x300)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x2A)}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: NOP, NopCycles: 4}),
		pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
		pk(Inst{Op: HALT}),
	}
	is, _ := runTripleMem(t, FuseConfig{RegionOf: regions(len(packets), 0, 3)}, func(m *testMem) {
		m.stallAddr = 0x300
		m.stallLen = 7
	}, packets...)
	if is.Stats().StallCycles == 0 {
		t.Fatal("test did not exercise memory stalls")
	}
}

// TestFusedInflightAcrossBoundary: a load writeback in flight across a
// region boundary rides the symbolic window through the boundary
// segment and commits on time.
func TestFusedInflightAcrossBoundary(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x2A)}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(6), Src2: Imm(6)}), // region start, load in flight
		pk(Inst{Op: NOP, NopCycles: 3}),
		pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
		pk(Inst{Op: HALT}),
	}
	runTriple(t, FuseConfig{RegionOf: regions(len(packets), 0, 4)}, packets...)
}

// TestStepFusedHookStopResume: stopping at every boundary and resuming
// (fused when possible, generic otherwise) is bit-identical to a pure
// interpreter run.
func TestStepFusedHookStopResume(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(8), Src2: Imm(5)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(0)}),
		pk(Inst{Op: ADD, Unit: L1, Dst: A(9), Src1: R(A(9)), Src2: R(A(8))}), // loop head
		pk(Inst{Op: SUB, Unit: L1, Dst: A(8), Src1: R(A(8)), Src2: Imm(1)}),
		pk(Inst{Op: BPKT, Unit: S1, Target: 2, Pred: Pred{Valid: true, Reg: A(8)}}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: HALT}),
	}

	is := NewSim(&Program{Packets: packets}, newTestMem())
	if err := is.Run(); err != nil {
		t.Fatal(err)
	}

	fprog := &Program{Packets: packets}
	fs := NewSim(fprog, newTestMem())
	fp := mustFuse(t, fprog, FuseConfig{RegionOf: regions(len(packets), 0, 2)})
	if err := fs.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	stops := 0
	hook := func() (bool, error) { stops++; return true, nil }
	for !fs.Halted() {
		if fs.FusedEntryOK() {
			if _, err := fs.StepFused(hook); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := fs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if stops == 0 {
		t.Fatal("hook never fired")
	}
	if is.Regs != fs.Regs || is.Cycle() != fs.Cycle() || is.Stats() != fs.Stats() || is.PC() != fs.PC() {
		t.Fatalf("state divergence after hook stops:\n  interp: regs=%v cycle=%d pc=%d %+v\n  fused:  regs=%v cycle=%d pc=%d %+v",
			is.Regs, is.Cycle(), is.PC(), is.Stats(), fs.Regs, fs.Cycle(), fs.PC(), fs.Stats())
	}
}

// TestStepFusedHookRedirect: a hook that redirects the pc (interrupt
// delivery, debugger) gets a materialized state the generic engine
// continues from, identical to redirecting the interpreter at the same
// boundary.
func TestStepFusedHookRedirect(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}), // region start: redirect here
		pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(3)}), // skipped by the redirect
		pk(Inst{Op: HALT}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(4), Src2: Imm(4)}), // redirect target
		pk(Inst{Op: HALT}),
	}

	// Reference: interpret to the boundary, redirect, run out.
	is := NewSim(&Program{Packets: packets}, newTestMem())
	for is.PC() != 1 {
		if err := is.Step(); err != nil {
			t.Fatal(err)
		}
	}
	is.SetPC(4)
	if err := is.Run(); err != nil {
		t.Fatal(err)
	}

	fprog := &Program{Packets: packets}
	fs := NewSim(fprog, newTestMem())
	fp := mustFuse(t, fprog, FuseConfig{RegionOf: regions(len(packets), 1)})
	if err := fs.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	hook := func() (bool, error) {
		if fs.PC() == 1 {
			fs.SetPC(4)
		}
		return false, nil
	}
	for !fs.Halted() {
		if fs.FusedEntryOK() {
			if _, err := fs.StepFused(hook); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := fs.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if is.Regs != fs.Regs || is.Cycle() != fs.Cycle() || is.Stats() != fs.Stats() {
		t.Fatalf("redirect divergence:\n  interp: regs=%v cycle=%d %+v\n  fused:  regs=%v cycle=%d %+v",
			is.Regs, is.Cycle(), is.Stats(), fs.Regs, fs.Cycle(), fs.Stats())
	}
	if fs.Reg(A(3)) != 0 || fs.Reg(A(4)) != 4 {
		t.Fatalf("redirect not honored: A3=%d A4=%d", fs.Reg(A(3)), fs.Reg(A(4)))
	}
}

// TestStepFusedHookError: hook errors surface with the boundary state
// materialized.
func TestStepFusedHookError(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}), // region start
		pk(Inst{Op: HALT}),
	}
	prog := &Program{Packets: packets}
	s := NewSim(prog, newTestMem())
	fp := mustFuse(t, prog, FuseConfig{RegionOf: regions(len(packets), 1)})
	if err := s.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	wantErr := &SimError{Packet: 1, Msg: "hook failure"}
	_, err := s.StepFused(func() (bool, error) { return false, wantErr })
	if err != wantErr {
		t.Fatalf("hook error not propagated: %v", err)
	}
	if s.PC() != 1 {
		t.Fatalf("pc = %d at hook error, want the boundary packet 1", s.PC())
	}
	if s.Reg(A(1)) != 1 {
		t.Fatal("state before the boundary not applied")
	}
}

// TestStepFusedStopWithInflight: stopping at a boundary with a load in
// flight materializes the pending writeback; the generic engine commits
// it on time.
func TestStepFusedStopWithInflight(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x2A)}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(6), Src2: Imm(6)}), // region start, load in flight
		pk(Inst{Op: NOP, NopCycles: 3}),
		pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
		pk(Inst{Op: HALT}),
	}

	is := NewSim(&Program{Packets: packets}, newTestMem())
	if err := is.Run(); err != nil {
		t.Fatal(err)
	}

	fprog := &Program{Packets: packets}
	fs := NewSim(fprog, newTestMem())
	fp := mustFuse(t, fprog, FuseConfig{RegionOf: regions(len(packets), 4)})
	if err := fs.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	stopped, err := fs.StepFused(func() (bool, error) { return true, nil })
	if err != nil || !stopped {
		t.Fatalf("StepFused: stopped=%v err=%v", stopped, err)
	}
	if fs.PC() != 4 {
		t.Fatalf("pc = %d at stop, want boundary packet 4", fs.PC())
	}
	// The interpreter finishes the program from the materialized state.
	if err := fs.Run(); err != nil {
		t.Fatal(err)
	}
	if is.Regs != fs.Regs || is.Cycle() != fs.Cycle() || is.Stats() != fs.Stats() {
		t.Fatalf("inflight materialization divergence:\n  interp: regs=%v cycle=%d %+v\n  fused:  regs=%v cycle=%d %+v",
			is.Regs, is.Cycle(), is.Stats(), fs.Regs, fs.Cycle(), fs.Stats())
	}
	if fs.Reg(A(2)) != 0x2A || fs.Reg(A(3)) != 0x54 {
		t.Fatalf("load writeback lost: A2=%#x A3=%#x", fs.Reg(A(2)), fs.Reg(A(3)))
	}
}

// TestRunFusedCycleLimit: the fused engine honors MaxCycles at region
// boundaries. The overshoot is bounded by one region, so only the error
// kind is asserted, not its exact packet/cycle.
func TestRunFusedCycleLimit(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: BPKT, Unit: S1, Target: 0}), // endless loop
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: HALT}),
	}
	prog := &Program{Packets: packets}
	s := NewSim(prog, newTestMem())
	s.MaxCycles = 1000
	fp := mustFuse(t, prog, FuseConfig{RegionOf: regions(len(packets), 0)})
	if err := s.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	err := s.RunFused()
	if err == nil || !strings.Contains(err.Error(), "cycle limit exceeded") {
		t.Fatalf("want cycle limit error, got %v", err)
	}
}

// TestFusedNoEnterSegment: a region start that deoptimizes immediately
// (unresolvable BREG) is excluded from the entry map so RunFused cannot
// livelock re-entering a zero-progress segment.
func TestFusedNoEnterSegment(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(7), Src2: Imm(4)}),
		pk(Inst{Op: BREG, Unit: S1, Src1: R(A(7))}), // region start; A7 untracked
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(9)}), // skipped
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}), // BREG target
		pk(Inst{Op: HALT}),
	}
	prog := &Program{Packets: packets}
	fp := mustFuse(t, prog, FuseConfig{RegionOf: regions(len(packets), 0, 1)})
	s := NewSim(prog, newTestMem())
	if err := s.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	s.SetPC(1)
	if s.FusedEntryOK() {
		t.Fatal("zero-progress segment advertised as a fused entry")
	}
	s.SetPC(0)
	if !s.FusedEntryOK() {
		t.Fatal("program entry not a fused entry")
	}
	if err := s.RunFused(); err != nil {
		t.Fatal(err)
	}
	if !s.Halted() || s.Reg(A(1)) != 1 {
		t.Fatalf("halted=%v A1=%d", s.Halted(), s.Reg(A(1)))
	}
	runTriple(t, FuseConfig{RegionOf: regions(len(packets), 0, 1)}, packets...)
}

func TestFuseRejectsIssueViolations(t *testing.T) {
	prog := &Program{Packets: []Packet{
		pk(Inst{Op: HALT}),
		pk( // unit conflict
			Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))},
			Inst{Op: SUB, Unit: L1, Dst: A(4), Src1: R(A(5)), Src2: R(A(6))},
		),
	}}
	if _, err := Fuse(prog, FuseConfig{}); err == nil {
		t.Fatal("fuse accepted a unit conflict")
	} else if se, ok := err.(*SimError); !ok || se.Packet != 1 {
		t.Fatalf("want SimError at packet 1, got %v", err)
	}
}

func TestUseFusedRejectsForeignProgram(t *testing.T) {
	a := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	b := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	fp, err := Fuse(a, FuseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSim(b, newTestMem()).UseFused(fp); err == nil {
		t.Fatal("attached a fused program to a different program's sim")
	}
}

func TestFuseCachedSharesFusion(t *testing.T) {
	prog := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	f1, err := FuseCached(prog, FuseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FuseCached(prog, FuseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("FuseCached refused the same program")
	}
}

// TestFusedMatchesInterpreterRandom: the engine-differential property
// test, with region starts sprinkled at random strides — segmentation
// must never change semantics.
func TestFusedMatchesInterpreterRandom(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		packets := genLegalProgram(r)
		stride := 2 + r.Intn(6)
		var starts []int
		for i := 0; i < len(packets); i += stride {
			starts = append(starts, i)
		}
		is, _ := runTriple(t, FuseConfig{RegionOf: regions(len(packets), starts...)}, packets...)
		return is.Halted()
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFusedSteadyStateAllocs: steady-state fused execution performs zero
// heap allocations, including the boundary-hook path.
func TestFusedSteadyStateAllocs(t *testing.T) {
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(10), Src2: Imm(0x200)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(3)}),
		// loop (packet 2 = region start):
		pk(Inst{Op: MPY, Unit: M1, Dst: A(2), Src1: R(A(1)), Src2: R(A(1))}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(10)), Src2: Imm(0)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(3), Src1: R(A(10)), Src2: Imm(0)}),
		pk(Inst{Op: BPKT, Unit: S1, Target: 2}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: HALT}), // never reached
	}
	prog := &Program{Packets: packets}
	fp, err := Fuse(prog, FuseConfig{RegionOf: regions(len(packets), 2)})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(prog, newAllocFreeMem())
	s.MaxCycles = 1 << 50
	if err := s.UseFused(fp); err != nil {
		t.Fatal(err)
	}
	n := 0
	hook := func() (bool, error) { n++; return n%16 == 0, nil }
	run := func() {
		if _, err := s.StepFused(hook); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm
	allocs := testing.AllocsPerRun(100, run)
	if allocs != 0 {
		t.Fatalf("steady-state fused execution allocates: %.1f allocs per 16 iterations", allocs)
	}
}
