// Package c6x models the target processor of the binary translator: a
// TMS320C6x-class VLIW DSP. Like the C62xx used on the paper's emulation
// platform it has eight functional units (.L/.S/.M/.D on each of two
// sides), two register files, full predication, exposed delay slots
// (multiply 1, load 4, branch 5), multi-cycle NOPs, and no interlocks —
// the schedule is the contract, and the simulator can verify it.
//
// One deliberate extension over the C6201: 32 registers per file (as on
// the C64x) instead of 16, because the translator's fixed register binding
// maps the TC32's 16 data + 16 address registers onto register file
// A/B directly (see DESIGN.md).
//
// # Execution engines
//
// The package ships two execution engines over one architectural state:
//
//   - The packet interpreter (sim.go) decodes and validates every packet
//     as it executes. It is the reference semantics and the equivalence
//     oracle.
//   - The compiled engine (compile.go) lowers a Program once into chains
//     of specialized Go closures — predicates, operand kinds, memory
//     sizes, latencies and the VLIW issue check resolved at compile
//     time — and executes with reused scratch buffers, so the steady-
//     state hot loop performs zero heap allocations. Attach it with
//     Compile/CompileCached + Sim.UseCompiled.
//
// Both engines run behind the same Sim API (Step, Run, SetPC, register
// accessors), and the compiled engine is differentially tested to be
// bit-identical to the interpreter in registers, cycles and statistics.
// internal/platform selects the engine for the emulation-platform
// simulation (compiled by default, interpreter via the front-ends'
// -interp flag).
package c6x
