package c6x

import (
	"fmt"
	"sync"
)

// This file is the compiled host-execution engine: a one-time compiler
// that lowers a Program into chains of specialized Go closures — one
// chain per execute packet — so the per-packet interpreter overhead
// (issue-rule validation, operand decoding, dispatch switches, and the
// per-step writeback/commit allocations) is paid once at load time
// instead of on every executed packet.
//
// What is resolved at compile time: predicates (presence, register,
// polarity), operand kinds (register index vs. pre-widened immediate),
// memory access sizes and sign extensions, result latencies, branch
// targets, NOP cycle counts, and the packet's VLIW issue-rule check.
// What stays dynamic, shared bit-for-bit with the interpreter: register
// values, the in-flight writeback window and its strict-mode contract
// checks, memory stalls, branch-delay bookkeeping, and all statistics.
//
// The engine runs on the interpreter's own Sim state (attach with
// Sim.UseCompiled), so Step/Run/SetPC and the register accessors keep
// their exact interpreter semantics — a debugger can single-step the
// compiled engine, and a differential test can run both engines over the
// same program and require identical registers, cycles and stats.

// instFn executes one compiled instruction against the simulator state.
type instFn func(s *Sim) error

// cpacket is one compiled execute packet.
type cpacket struct {
	insts    []instFn
	cycles   int64 // Packet.Cycles()
	nopExtra int64 // stats.NopCycles contribution per execution
}

// CompiledProgram is the threaded-code form of a Program. It is
// immutable after Compile and safe to share across Sims and goroutines
// (every closure operates only on the Sim passed to it).
type CompiledProgram struct {
	prog    *Program
	packets []cpacket
}

// Compile lowers prog into specialized closures. Every packet is checked
// against the VLIW issue rules once, here; a program with a malformed
// packet — even an unreachable one — is rejected, where the interpreter
// would only fault if execution reached it.
func Compile(prog *Program) (*CompiledProgram, error) {
	cp := &CompiledProgram{prog: prog, packets: make([]cpacket, len(prog.Packets))}
	for i, pk := range prog.Packets {
		if msg := issueViolation(pk); msg != "" {
			return nil, &SimError{Packet: i, Msg: msg}
		}
		c := &cp.packets[i]
		c.cycles = int64(pk.Cycles())
		if n := pk.Cycles(); n > 1 {
			c.nopExtra = int64(n - 1)
		}
		c.insts = make([]instFn, 0, len(pk.Insts))
		for _, in := range pk.Insts {
			c.insts = append(c.insts, compileInst(i, in))
		}
	}
	return cp, nil
}

// compileOnce memoizes one program's compilation.
type compileOnce struct {
	once sync.Once
	cp   *CompiledProgram
	err  error
}

// compileCache memoizes Compile per *Program identity. Entries pin their
// program, which is what makes pointer keys safe (an address can never
// be reused while its entry exists); programs are themselves retained by
// the translation caches that hand them out, so this adds no new
// lifetime class.
var compileCache sync.Map // *Program -> *compileOnce

// CompileCached returns the memoized compilation of prog, compiling on
// first use. Concurrent callers for the same program share one compile.
func CompileCached(prog *Program) (*CompiledProgram, error) {
	v, _ := compileCache.LoadOrStore(prog, &compileOnce{})
	e := v.(*compileOnce)
	e.once.Do(func() { e.cp, e.err = Compile(prog) })
	return e.cp, e.err
}

// UseCompiled attaches a compiled program, switching the Sim to the
// threaded-code engine. cp must have been compiled from this Sim's
// program. The scratch buffers are sized here so the steady-state hot
// loop never allocates.
func (s *Sim) UseCompiled(cp *CompiledProgram) error {
	if cp == nil || cp.prog != s.prog {
		return fmt.Errorf("c6x: compiled program does not match the simulator's program")
	}
	s.comp = cp
	if cap(s.cwb) < 8 {
		s.cwb = make([]writeback, 0, 8)
	}
	if cap(s.dueBuf) < 16 {
		s.dueBuf = make([]writeback, 0, 16)
	}
	if cap(s.pending) < 32 {
		p := make([]writeback, len(s.pending), 32)
		copy(p, s.pending)
		s.pending = p
	}
	return nil
}

// Compiled reports whether the compiled engine is attached.
func (s *Sim) Compiled() bool { return s.comp != nil }

// readRegC is the compiled engine's register read: identical to the
// interpreter's readReg contract (a register with a write in flight from
// an earlier cycle must not be read in strict mode), without the
// same-packet parameter the interpreter threads through.
func (s *Sim) readRegC(pkt int, r Reg) (uint32, error) {
	if s.Strict {
		for i := range s.pending {
			if s.pending[i].reg == r {
				return 0, s.errf(pkt, "read of %s with write in flight (%d cycles remaining)", r, s.pending[i].commitAt-s.busy)
			}
		}
	}
	return s.Regs[r], nil
}

// pushWB queues a register writeback landing lat busy-cycles from the
// current packet's issue.
func (s *Sim) pushWB(r Reg, v uint32, lat int64) {
	s.cwb = append(s.cwb, writeback{reg: r, val: v, commitAt: s.busy + lat})
}

// stepCompiled is the compiled engine's Step: the packet's instruction
// chain runs first, then the cycle accounting, writeback commit and
// branch bookkeeping — the same sequence as the interpreter, with the
// per-step slice/map/sort allocations replaced by reused scratch.
func (s *Sim) stepCompiled() error {
	if s.halted {
		return nil
	}
	if s.pc < 0 || s.pc >= len(s.comp.packets) {
		return s.errf(s.pc, "fell off the program (pc=%d of %d packets)", s.pc, len(s.prog.Packets))
	}
	pktIdx := s.pc
	cp := &s.comp.packets[pktIdx]
	s.pc++
	s.stats.Packets++

	s.cwb = s.cwb[:0]
	s.cstall = 0
	s.cbrSeen = false
	for _, fn := range cp.insts {
		if err := fn(s); err != nil {
			return err
		}
		if s.halted {
			break
		}
	}

	// Packet cycle accounting (see Step): a multi-cycle NOP runs until a
	// pending branch fires; memory stalls freeze the latency clock.
	busy := cp.cycles
	s.stats.NopCycles += cp.nopExtra
	if s.brValid && int64(s.brCnt) < busy {
		busy = int64(s.brCnt)
	}
	s.cycle += busy + s.cstall
	s.stats.StallCycles += s.cstall

	// Advance the latency clock and commit in-flight writes at their
	// precise cycles. due collects the landing writes in pending order,
	// then an insertion sort (stable, like the interpreter's
	// sort.SliceStable) orders them by commit cycle.
	s.busy += busy
	s.pending = append(s.pending, s.cwb...)
	due := s.dueBuf[:0]
	keep := s.pending[:0]
	for _, wb := range s.pending {
		if wb.commitAt <= s.busy {
			due = append(due, wb)
		} else {
			keep = append(keep, wb)
		}
	}
	s.pending = keep
	s.dueBuf = due
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j].commitAt < due[j-1].commitAt; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	for i := range due {
		if s.Strict {
			// Two writes to one register collide only if they land in the
			// same cycle. After the stable sort, the latest earlier write
			// to this register is the one the interpreter compares against.
			for j := i - 1; j >= 0; j-- {
				if due[j].reg == due[i].reg {
					if due[j].commitAt == due[i].commitAt {
						return s.errf(pktIdx, "writeback collision on %s", due[i].reg)
					}
					break
				}
			}
		}
		s.Regs[due[i].reg] = due[i].val
	}

	if s.brValid {
		s.brCnt -= int(busy)
		if s.brCnt <= 0 {
			s.pc = s.brTgt
			s.brValid = false
		}
	}
	return nil
}

// compileInst specializes one instruction, wrapping the body with the
// predicate guard when present.
func compileInst(pkt int, in Inst) instFn {
	body := compileBody(pkt, in)
	if !in.Pred.Valid {
		return body
	}
	pr, neg := in.Pred.Reg, in.Pred.Neg
	return func(s *Sim) error {
		pv, err := s.readRegC(pkt, pr)
		if err != nil {
			return err
		}
		if (pv != 0) == neg {
			return nil // predicated off
		}
		return body(s)
	}
}

// nopFn is the shared closure of every NOP (cycle cost is packet-level).
func nopFn(*Sim) error { return nil }

// compileBody specializes the instruction's action. The hot shapes are
// hand-specialized; anything else falls back to the interpreter's alu,
// which keeps rare ops identical to the oracle by construction.
func compileBody(pkt int, in Inst) instFn {
	switch {
	case in.Op == NOP:
		return nopFn
	case in.Op == HALT:
		return func(s *Sim) error {
			s.stats.Instructions++
			s.halted = true
			return nil
		}
	case in.Op == BPKT:
		tgt := in.Target
		return func(s *Sim) error {
			s.stats.Instructions++
			if (s.brValid || s.cbrSeen) && s.Strict {
				return s.errf(pkt, "branch issued while another branch is in flight")
			}
			s.brValid, s.brTgt, s.brCnt, s.cbrSeen = true, tgt, BranchDelay+1, true
			return nil
		}
	case in.Op == BREG:
		if in.Src1.IsImm {
			tgt := int(in.Src1.Imm)
			return func(s *Sim) error {
				s.stats.Instructions++
				if (s.brValid || s.cbrSeen) && s.Strict {
					return s.errf(pkt, "branch issued while another branch is in flight")
				}
				s.brValid, s.brTgt, s.brCnt, s.cbrSeen = true, tgt, BranchDelay+1, true
				return nil
			}
		}
		r := in.Src1.Reg
		return func(s *Sim) error {
			s.stats.Instructions++
			if (s.brValid || s.cbrSeen) && s.Strict {
				return s.errf(pkt, "branch issued while another branch is in flight")
			}
			v, err := s.readRegC(pkt, r)
			if err != nil {
				return err
			}
			s.brValid, s.brTgt, s.brCnt, s.cbrSeen = true, int(int32(v)), BranchDelay+1, true
			return nil
		}
	case in.Op.IsLoad():
		return compileLoad(pkt, in)
	case in.Op.IsStore():
		return compileStore(pkt, in)
	}
	return compileALU(pkt, in)
}

// compileLoad specializes a load: base register, immediate offset,
// access size, sign extension and result latency are all compile-time.
func compileLoad(pkt int, in Inst) instFn {
	base := in.Src1.Reg
	off := uint32(in.Src2.Imm)
	sz := in.Op.MemSize()
	lat := int64(in.Op.Latency())
	dst := in.Dst
	if in.Src1.IsImm {
		// Immediate base (legal, though the translator emits register
		// bases): the whole address is a compile-time constant.
		addr := uint32(in.Src1.Imm) + off
		op := in.Op
		return func(s *Sim) error {
			s.stats.Instructions++
			v, cont, err := s.mem.Load(addr, sz, s.cycle)
			if err != nil {
				return s.errf(pkt, "load @%#x: %v", addr, err)
			}
			s.cstall += cont - s.cycle
			switch op {
			case LDH:
				v = uint32(int32(int16(v)))
			case LDB:
				v = uint32(int32(int8(v)))
			}
			s.pushWB(dst, v, lat)
			return nil
		}
	}
	switch in.Op {
	case LDH:
		return func(s *Sim) error {
			s.stats.Instructions++
			b, err := s.readRegC(pkt, base)
			if err != nil {
				return err
			}
			addr := b + off
			v, cont, err := s.mem.Load(addr, sz, s.cycle)
			if err != nil {
				return s.errf(pkt, "load @%#x: %v", addr, err)
			}
			s.cstall += cont - s.cycle
			s.pushWB(dst, uint32(int32(int16(v))), lat)
			return nil
		}
	case LDB:
		return func(s *Sim) error {
			s.stats.Instructions++
			b, err := s.readRegC(pkt, base)
			if err != nil {
				return err
			}
			addr := b + off
			v, cont, err := s.mem.Load(addr, sz, s.cycle)
			if err != nil {
				return s.errf(pkt, "load @%#x: %v", addr, err)
			}
			s.cstall += cont - s.cycle
			s.pushWB(dst, uint32(int32(int8(v))), lat)
			return nil
		}
	default: // LDW, LDHU, LDBU
		return func(s *Sim) error {
			s.stats.Instructions++
			b, err := s.readRegC(pkt, base)
			if err != nil {
				return err
			}
			addr := b + off
			v, cont, err := s.mem.Load(addr, sz, s.cycle)
			if err != nil {
				return s.errf(pkt, "load @%#x: %v", addr, err)
			}
			s.cstall += cont - s.cycle
			s.pushWB(dst, v, lat)
			return nil
		}
	}
}

// compileStore specializes a store (base register, immediate offset,
// data register, access size).
func compileStore(pkt int, in Inst) instFn {
	base := in.Src1.Reg
	off := uint32(in.Src2.Imm)
	sz := in.Op.MemSize()
	data := in.Data
	if in.Src1.IsImm {
		addr := uint32(in.Src1.Imm) + off
		return func(s *Sim) error {
			s.stats.Instructions++
			d, err := s.readRegC(pkt, data)
			if err != nil {
				return err
			}
			cont, err := s.mem.Store(addr, d, sz, s.cycle)
			if err != nil {
				return s.errf(pkt, "store @%#x: %v", addr, err)
			}
			s.cstall += cont - s.cycle
			return nil
		}
	}
	return func(s *Sim) error {
		s.stats.Instructions++
		b, err := s.readRegC(pkt, base)
		if err != nil {
			return err
		}
		d, err := s.readRegC(pkt, data)
		if err != nil {
			return err
		}
		addr := b + off
		cont, err := s.mem.Store(addr, d, sz, s.cycle)
		if err != nil {
			return s.errf(pkt, "store @%#x: %v", addr, err)
		}
		s.cstall += cont - s.cycle
		return nil
	}
}

// compileALU specializes the register-writing ops. Operand kinds select
// the closure shape; the operation itself is a pre-resolved kernel.
func compileALU(pkt int, in Inst) instFn {
	dst := in.Dst
	lat := int64(in.Op.Latency())
	switch in.Op {
	case MVK:
		v := uint32(int32(int16(in.Src2.Imm)))
		return func(s *Sim) error {
			s.stats.Instructions++
			s.pushWB(dst, v, lat)
			return nil
		}
	case MVKH:
		hi := uint32(in.Src2.Imm) << 16
		return func(s *Sim) error {
			s.stats.Instructions++
			old, err := s.readRegC(pkt, dst)
			if err != nil {
				return err
			}
			s.pushWB(dst, old&0xFFFF|hi, lat)
			return nil
		}
	}
	if k := unaryKernel(in.Op); k != nil {
		if in.Src1.IsImm {
			v := k(uint32(in.Src1.Imm))
			return func(s *Sim) error {
				s.stats.Instructions++
				s.pushWB(dst, v, lat)
				return nil
			}
		}
		r1 := in.Src1.Reg
		return func(s *Sim) error {
			s.stats.Instructions++
			a, err := s.readRegC(pkt, r1)
			if err != nil {
				return err
			}
			s.pushWB(dst, k(a), lat)
			return nil
		}
	}
	if k := binaryKernel(in.Op); k != nil {
		switch {
		case !in.Src1.IsImm && !in.Src2.IsImm:
			r1, r2 := in.Src1.Reg, in.Src2.Reg
			return func(s *Sim) error {
				s.stats.Instructions++
				a, err := s.readRegC(pkt, r1)
				if err != nil {
					return err
				}
				b, err := s.readRegC(pkt, r2)
				if err != nil {
					return err
				}
				s.pushWB(dst, k(a, b), lat)
				return nil
			}
		case !in.Src1.IsImm && in.Src2.IsImm:
			r1, b := in.Src1.Reg, uint32(in.Src2.Imm)
			return func(s *Sim) error {
				s.stats.Instructions++
				a, err := s.readRegC(pkt, r1)
				if err != nil {
					return err
				}
				s.pushWB(dst, k(a, b), lat)
				return nil
			}
		case in.Src1.IsImm && !in.Src2.IsImm:
			a, r2 := uint32(in.Src1.Imm), in.Src2.Reg
			return func(s *Sim) error {
				s.stats.Instructions++
				b, err := s.readRegC(pkt, r2)
				if err != nil {
					return err
				}
				s.pushWB(dst, k(a, b), lat)
				return nil
			}
		default:
			v := k(uint32(in.Src1.Imm), uint32(in.Src2.Imm))
			return func(s *Sim) error {
				s.stats.Instructions++
				s.pushWB(dst, v, lat)
				return nil
			}
		}
	}
	// Fallback: shared interpreter semantics (also where INVALID and any
	// future op land, producing the interpreter's own error text).
	inst := in
	return func(s *Sim) error {
		s.stats.Instructions++
		v, err := s.alu(pkt, inst, s.cwb)
		if err != nil {
			return err
		}
		s.pushWB(inst.Dst, v, int64(inst.Op.Latency()))
		return nil
	}
}

// unaryKernel returns the value function of a one-source op.
func unaryKernel(op Op) func(uint32) uint32 {
	switch op {
	case MV:
		return func(a uint32) uint32 { return a }
	case NEG:
		return func(a uint32) uint32 { return -a }
	case EXTB:
		return func(a uint32) uint32 { return uint32(int32(int8(a))) }
	case EXTH:
		return func(a uint32) uint32 { return uint32(int32(int16(a))) }
	}
	return nil
}

// binaryKernel returns the value function of a two-source op.
func binaryKernel(op Op) func(a, b uint32) uint32 {
	switch op {
	case ADD:
		return func(a, b uint32) uint32 { return a + b }
	case SUB:
		return func(a, b uint32) uint32 { return a - b }
	case MPY:
		return func(a, b uint32) uint32 { return a * b }
	case AND:
		return func(a, b uint32) uint32 { return a & b }
	case OR:
		return func(a, b uint32) uint32 { return a | b }
	case XOR:
		return func(a, b uint32) uint32 { return a ^ b }
	case ANDN:
		return func(a, b uint32) uint32 { return a &^ b }
	case SHL:
		return func(a, b uint32) uint32 { return a << (b & 31) }
	case SHR:
		return func(a, b uint32) uint32 { return a >> (b & 31) }
	case SAR:
		return func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }
	case CMPEQ:
		return func(a, b uint32) uint32 { return b2u(a == b) }
	case CMPLT:
		return func(a, b uint32) uint32 { return b2u(int32(a) < int32(b)) }
	case CMPLTU:
		return func(a, b uint32) uint32 { return b2u(a < b) }
	case CMPGT:
		return func(a, b uint32) uint32 { return b2u(int32(a) > int32(b)) }
	case CMPGTU:
		return func(a, b uint32) uint32 { return b2u(a > b) }
	}
	return nil
}
