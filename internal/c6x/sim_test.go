package c6x

import (
	"strings"
	"testing"
)

// testMem is a flat RAM MemPort with an optional stalling region.
type testMem struct {
	ram       map[uint32]byte
	stallAddr uint32
	stallLen  int64
	stores    []uint32
}

func newTestMem() *testMem { return &testMem{ram: map[uint32]byte{}, stallAddr: 0xFFFFFFFF} }

func (m *testMem) Load(addr uint32, size int, cycle int64) (uint32, int64, error) {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.ram[addr+uint32(i)]) << (8 * i)
	}
	if addr == m.stallAddr {
		return v, cycle + m.stallLen, nil
	}
	return v, cycle, nil
}

func (m *testMem) Store(addr uint32, val uint32, size int, cycle int64) (int64, error) {
	for i := 0; i < size; i++ {
		m.ram[addr+uint32(i)] = byte(val >> (8 * i))
	}
	m.stores = append(m.stores, addr)
	return cycle, nil
}

func pk(insts ...Inst) Packet { return Packet{Insts: insts} }

func runProg(t *testing.T, packets ...Packet) *Sim {
	t.Helper()
	s := NewSim(&Program{Packets: packets}, newTestMem())
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMvkPair(t *testing.T) {
	s := runProg(t,
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x5678)}),
		pk(Inst{Op: MVKH, Unit: S1, Dst: A(1), Src2: Imm(0x1234)}),
		pk(Inst{Op: HALT}),
	)
	if got := s.Reg(A(1)); got != 0x12345678 {
		t.Errorf("A1 = %#x, want 0x12345678", got)
	}
}

func TestMvkNegative(t *testing.T) {
	s := runProg(t,
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(-5)}),
		pk(Inst{Op: HALT}),
	)
	if got := int32(s.Reg(A(1))); got != -5 {
		t.Errorf("A1 = %d, want -5", got)
	}
}

func TestParallelPacket(t *testing.T) {
	// Four independent instructions in one packet, one cycle.
	s := runProg(t,
		pk(
			Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)},
			Inst{Op: MVK, Unit: S2, Dst: B(1), Src2: Imm(2)},
			Inst{Op: ADD, Unit: L1, Dst: A(2), Src1: R(A(3)), Src2: R(A(4))},
			Inst{Op: ADD, Unit: L2, Dst: B(2), Src1: R(B(3)), Src2: R(B(4))},
		),
		pk(Inst{Op: HALT}),
	)
	if s.Stats().Packets != 2 {
		t.Errorf("packets = %d", s.Stats().Packets)
	}
	if s.Reg(A(1)) != 1 || s.Reg(B(1)) != 2 {
		t.Error("parallel MVKs failed")
	}
}

func TestSamePacketReadsOldValue(t *testing.T) {
	// mv A1->A2 in parallel with mvk 9->A1: A2 gets the OLD A1.
	s := NewSim(&Program{Packets: []Packet{
		pk(
			Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(9)},
			Inst{Op: MV, Unit: L1, Dst: A(2), Src1: R(A(1))},
		),
		pk(Inst{Op: HALT}),
	}}, newTestMem())
	s.SetReg(A(1), 42)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(A(2)); got != 42 {
		t.Errorf("A2 = %d, want old value 42", got)
	}
	if got := s.Reg(A(1)); got != 9 {
		t.Errorf("A1 = %d, want 9", got)
	}
}

func TestMpyDelaySlot(t *testing.T) {
	// Reading the MPY result too early is a strict-mode error.
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: MPY, Unit: M1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))}),
		pk(Inst{Op: MV, Unit: L1, Dst: A(4), Src1: R(A(1))}), // 1 delay slot violated
		pk(Inst{Op: HALT}),
	}}, newTestMem())
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "in flight") {
		t.Errorf("err = %v, want in-flight read error", err)
	}
	// With a NOP in between it is legal.
	s2 := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: MPY, Unit: M1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))}),
		pk(Inst{Op: NOP, NopCycles: 1}),
		pk(Inst{Op: MV, Unit: L1, Dst: A(4), Src1: R(A(1))}),
		pk(Inst{Op: HALT}),
	}}, newTestMem())
	s2.SetReg(A(2), 6)
	s2.SetReg(A(3), 7)
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Reg(A(4)); got != 42 {
		t.Errorf("A4 = %d, want 42", got)
	}
}

func TestLoadDelaySlots(t *testing.T) {
	mem := newTestMem()
	mem.ram[0x100] = 0x2A
	prog := &Program{Packets: []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(1), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: NOP, NopCycles: 4}),
		pk(Inst{Op: MV, Unit: L1, Dst: A(2), Src1: R(A(1))}),
		pk(Inst{Op: HALT}),
	}}
	s := NewSim(prog, mem)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(A(2)); got != 0x2A {
		t.Errorf("A2 = %#x, want 0x2A", got)
	}
	// 1 (mvk) + 1 (ldw) + 4 (nop) + 1 (mv) + 1 (halt) = 8 cycles.
	if got := s.Stats().Cycles; got != 8 {
		t.Errorf("cycles = %d, want 8", got)
	}
}

func TestLoadUseTooEarlyFails(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: LDW, Unit: D1, Dst: A(1), Src1: R(A(5)), Src2: Imm(0)}),
		pk(Inst{Op: NOP, NopCycles: 3}), // one short
		pk(Inst{Op: MV, Unit: L1, Dst: A(2), Src1: R(A(1))}),
	}}, newTestMem())
	if err := s.Run(); err == nil {
		t.Error("reading load result after 3 cycles should fail in strict mode")
	}
}

func TestBranchDelaySlots(t *testing.T) {
	// Branch at P0; delay slots P1..P5 execute; target P7 skips P6.
	var adds []Packet
	adds = append(adds, pk(Inst{Op: BPKT, Unit: S1, Target: 7}))
	for i := 1; i <= 5; i++ {
		adds = append(adds, pk(Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(1)), Src2: Imm(1)}))
	}
	adds = append(adds, pk(Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(1)), Src2: Imm(100)})) // skipped
	adds = append(adds, pk(Inst{Op: HALT}))
	s := runProg(t, adds...)
	if got := s.Reg(A(1)); got != 5 {
		t.Errorf("A1 = %d, want 5 (delay slots executed, fall-through skipped)", got)
	}
}

func TestBranchWithNop5(t *testing.T) {
	s := runProg(t,
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(7)}),
		pk(Inst{Op: BPKT, Unit: S1, Target: 4}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0)}), // skipped
		pk(Inst{Op: HALT}),
	)
	if got := s.Reg(A(1)); got != 7 {
		t.Errorf("A1 = %d, want 7", got)
	}
	// mvk 1 + branch 1 + nop cut to 5 + halt 1.
	if got := s.Stats().Cycles; got != 8 {
		t.Errorf("cycles = %d, want 8", got)
	}
}

func TestBranchToRegister(t *testing.T) {
	s := runProg(t,
		pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(4)}),
		pk(Inst{Op: BREG, Unit: S2, Src1: R(A(3))}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0)}), // skipped
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(9)}),
		pk(Inst{Op: HALT}),
	)
	if got := s.Reg(A(1)); got != 9 {
		t.Errorf("A1 = %d, want 9", got)
	}
}

func TestPredication(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}), // pred true
		pk(Inst{Op: MVK, Unit: S2, Dst: B(1), Src2: Imm(0)}), // pred false
		pk(Inst{Op: ADD, Unit: L1, Pred: Pred{Valid: true, Reg: A(1)}, Dst: A(2), Src1: R(A(2)), Src2: Imm(5)}),
		pk(Inst{Op: ADD, Unit: L2, Pred: Pred{Valid: true, Reg: B(1)}, Dst: B(2), Src1: R(B(2)), Src2: Imm(5)}),
		pk(Inst{Op: ADD, Unit: L2, Pred: Pred{Valid: true, Neg: true, Reg: B(1)}, Dst: B(3), Src1: R(B(3)), Src2: Imm(7)}),
		pk(Inst{Op: HALT}),
	}}, newTestMem())
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Reg(A(2)) != 5 {
		t.Errorf("A2 = %d, want 5 (pred true)", s.Reg(A(2)))
	}
	if s.Reg(B(2)) != 0 {
		t.Errorf("B2 = %d, want 0 (pred false)", s.Reg(B(2)))
	}
	if s.Reg(B(3)) != 7 {
		t.Errorf("B3 = %d, want 7 (negated pred)", s.Reg(B(3)))
	}
}

func TestStoreAndLoadRoundTrip(t *testing.T) {
	mem := newTestMem()
	prog := &Program{Packets: []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x200)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(-77)}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(8)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(8)}),
		pk(Inst{Op: NOP, NopCycles: 4}),
		pk(Inst{Op: HALT}),
	}}
	s := NewSim(prog, mem)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := int32(s.Reg(A(2))); got != -77 {
		t.Errorf("A2 = %d, want -77", got)
	}
}

func TestMemoryStallFreezesLatencies(t *testing.T) {
	mem := newTestMem()
	mem.stallAddr = 0x300
	mem.stallLen = 10
	prog := &Program{Packets: []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x300)}),
		// MPY in flight while the load stalls: its latency must not be
		// consumed by the stall.
		pk(
			Inst{Op: MPY, Unit: M1, Dst: A(7), Src1: R(A(8)), Src2: R(A(9))},
			Inst{Op: LDW, Unit: D2, Dst: B(1), Src1: R(B(5)), Src2: Imm(0)},
		),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(1), Src1: R(A(5)), Src2: Imm(0)}), // stalls 10
		pk(Inst{Op: MV, Unit: L1, Dst: A(6), Src1: R(A(7))}),                // MPY result ready
		pk(Inst{Op: NOP, NopCycles: 2}),
		pk(Inst{Op: HALT}),
	}}
	s := NewSim(prog, mem)
	s.SetReg(A(8), 3)
	s.SetReg(A(9), 5)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := s.Reg(A(6)); got != 15 {
		t.Errorf("A6 = %d, want 15", got)
	}
	st := s.Stats()
	if st.StallCycles != 10 {
		t.Errorf("stalls = %d, want 10", st.StallCycles)
	}
	if st.Cycles != 6+2-1+10 {
		t.Errorf("cycles = %d, want 17", st.Cycles)
	}
}

func TestStrictUnitConflict(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(
			Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))},
			Inst{Op: SUB, Unit: L1, Dst: A(4), Src1: R(A(5)), Src2: R(A(6))},
		),
	}}, newTestMem())
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "used twice") {
		t.Errorf("err = %v, want unit conflict", err)
	}
}

func TestStrictCrossPathLimit(t *testing.T) {
	// Two side-A instructions both reading B registers: two cross reads.
	s := NewSim(&Program{Packets: []Packet{
		pk(
			Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(B(3))},
			Inst{Op: SUB, Unit: S1, Dst: A(4), Src1: R(A(5)), Src2: R(B(6))},
		),
	}}, newTestMem())
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "cross path") {
		t.Errorf("err = %v, want cross-path error", err)
	}
	// One cross read per side is legal.
	s2 := NewSim(&Program{Packets: []Packet{
		pk(
			Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(B(3))},
			Inst{Op: SUB, Unit: L2, Dst: B(4), Src1: R(B(5)), Src2: R(A(6))},
		),
		pk(Inst{Op: HALT}),
	}}, newTestMem())
	if err := s2.Run(); err != nil {
		t.Errorf("one cross read per side should be legal: %v", err)
	}
}

func TestStrictUnitKind(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: MPY, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))}),
	}}, newTestMem())
	if err := s.Run(); err == nil {
		t.Error("MPY on .L unit should be rejected")
	}
}

func TestStrictMemBaseSide(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: LDW, Unit: D1, Dst: A(1), Src1: R(B(5)), Src2: Imm(0)}),
	}}, newTestMem())
	if err := s.Run(); err == nil {
		t.Error("load with base on wrong side should be rejected")
	}
}

func TestStrictTwoMemSameTPath(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(
			Inst{Op: LDW, Unit: D1, Dst: A(1), Src1: R(A(5)), Src2: Imm(0)},
			Inst{Op: LDW, Unit: D2, Dst: A(2), Src1: R(B(5)), Src2: Imm(0)},
		),
	}}, newTestMem())
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "data path") {
		t.Errorf("err = %v, want T-path conflict", err)
	}
}

func TestFallOffProgram(t *testing.T) {
	s := NewSim(&Program{Packets: []Packet{
		pk(Inst{Op: NOP, NopCycles: 1}),
	}}, newTestMem())
	if err := s.Run(); err == nil {
		t.Error("running past the last packet should fail")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	p := &Program{Packets: []Packet{
		pk(
			Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(10)},
			Inst{Op: LDW, Unit: D2, Dst: A(2), Src1: R(B(3)), Src2: Imm(4)},
		),
		pk(Inst{Op: BPKT, Unit: S2, Target: 0, Pred: Pred{Valid: true, Neg: true, Reg: B(0)}}),
		pk(Inst{Op: NOP, NopCycles: 5}),
	}}
	text := Disassemble(p)
	for _, want := range []string{"mvk", "ldw", "[!B0]", "nop 5", "P0", "||"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}
