package c6x

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// runBoth executes the same program on the interpreter and the compiled
// engine (each with its own memory) and requires bit-identical outcomes:
// error presence, final register file, cycle count, statistics and the
// sequence of store addresses.
func runBoth(t *testing.T, packets ...Packet) (*Sim, *Sim) {
	t.Helper()
	prog := &Program{Packets: packets}

	im := newTestMem()
	is := NewSim(prog, im)
	ierr := is.Run()

	cm := newTestMem()
	cs := NewSim(prog, cm)
	cp, err := Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cs.UseCompiled(cp); err != nil {
		t.Fatal(err)
	}
	if !cs.Compiled() {
		t.Fatal("compiled engine not attached")
	}
	cerr := cs.Run()

	if (ierr == nil) != (cerr == nil) {
		t.Fatalf("error divergence: interp=%v compiled=%v", ierr, cerr)
	}
	if ierr != nil && ierr.Error() != cerr.Error() {
		t.Fatalf("error text divergence:\n  interp:   %v\n  compiled: %v", ierr, cerr)
	}
	if is.Regs != cs.Regs {
		t.Fatalf("register divergence:\n  interp:   %v\n  compiled: %v", is.Regs, cs.Regs)
	}
	if is.Cycle() != cs.Cycle() {
		t.Fatalf("cycle divergence: interp=%d compiled=%d", is.Cycle(), cs.Cycle())
	}
	if is.Stats() != cs.Stats() {
		t.Fatalf("stats divergence:\n  interp:   %+v\n  compiled: %+v", is.Stats(), cs.Stats())
	}
	if !reflect.DeepEqual(im.stores, cm.stores) {
		t.Fatalf("store-sequence divergence: interp=%v compiled=%v", im.stores, cm.stores)
	}
	if !reflect.DeepEqual(im.ram, cm.ram) {
		t.Fatal("memory divergence")
	}
	return is, cs
}

func TestCompiledMatchesInterpreterBasics(t *testing.T) {
	cases := map[string][]Packet{
		"mvk-pair": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x5678)}),
			pk(Inst{Op: MVKH, Unit: S1, Dst: A(1), Src2: Imm(0x1234)}),
			pk(Inst{Op: HALT}),
		},
		"parallel-packet": {
			pk(
				Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)},
				Inst{Op: MVK, Unit: S2, Dst: B(1), Src2: Imm(2)},
				Inst{Op: ADD, Unit: L1, Dst: A(2), Src1: R(A(3)), Src2: R(A(4))},
				Inst{Op: ADD, Unit: L2, Dst: B(2), Src1: R(B(3)), Src2: R(B(4))},
			),
			pk(Inst{Op: HALT}),
		},
		"mpy-delay-slot": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(6)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(7)}),
			pk(Inst{Op: MPY, Unit: M1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: NOP, NopCycles: 1}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(4), Src1: R(A(3)), Src2: R(A(3))}),
			pk(Inst{Op: HALT}),
		},
		"load-use-delay": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x2A)}),
			pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
			pk(Inst{Op: HALT}),
		},
		"subword-sext": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(-2)}),
			pk(Inst{Op: STB, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: STH, Unit: D1, Data: A(1), Src1: R(A(5)), Src2: Imm(4)}),
			pk(Inst{Op: LDB, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: LDBU, Unit: D1, Dst: A(3), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: LDH, Unit: D1, Dst: A(4), Src1: R(A(5)), Src2: Imm(4)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: LDHU, Unit: D1, Dst: A(6), Src1: R(A(5)), Src2: Imm(4)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: HALT}),
		},
		"branch-delay": {
			pk(Inst{Op: BPKT, Unit: S1, Target: 7}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(2)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(3)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(4), Src2: Imm(4)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(5)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(6), Src2: Imm(6)}), // not reached
			pk(Inst{Op: HALT}),
		},
		"branch-with-nop5": {
			pk(Inst{Op: BPKT, Unit: S1, Target: 3}),
			pk(Inst{Op: NOP, NopCycles: 5}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(9)}), // skipped
			pk(Inst{Op: HALT}),
		},
		"breg": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(7), Src2: Imm(4)}),
			pk(Inst{Op: BREG, Unit: S1, Src1: R(A(7))}),
			pk(Inst{Op: NOP, NopCycles: 5}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(8), Src2: Imm(8)}), // skipped
			pk(Inst{Op: HALT}),
		},
		"predication": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(0)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(3), Src2: Imm(10), Pred: Pred{Valid: true, Reg: A(1)}}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(4), Src2: Imm(11), Pred: Pred{Valid: true, Reg: A(2)}}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(12), Pred: Pred{Valid: true, Neg: true, Reg: A(2)}}),
			pk(Inst{Op: HALT}),
		},
		"imm-base-memory": {
			// Immediate base addresses are legal (issueViolation skips the
			// side rule for them) even though the translator emits register
			// bases; both engines must use the immediate, not a register.
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(0x2A)}),
			pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: Imm(0x100), Src2: Imm(4)}),
			pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: Imm(0x100), Src2: Imm(4)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: STB, Unit: D1, Data: A(2), Src1: Imm(0x80), Src2: Imm(0)}),
			pk(Inst{Op: LDB, Unit: D1, Dst: A(3), Src1: Imm(0x80), Src2: Imm(0)}),
			pk(Inst{Op: NOP, NopCycles: 4}),
			pk(Inst{Op: HALT}),
		},
		"alu-mix": {
			pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(-7)}),
			pk(Inst{Op: MVK, Unit: S1, Dst: A(2), Src2: Imm(3)}),
			pk(Inst{Op: SUB, Unit: L1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: SAR, Unit: S1, Dst: A(4), Src1: R(A(1)), Src2: Imm(1)}),
			pk(Inst{Op: SHR, Unit: S1, Dst: A(5), Src1: R(A(1)), Src2: Imm(1)}),
			pk(Inst{Op: ANDN, Unit: L1, Dst: A(6), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: NEG, Unit: L1, Dst: A(7), Src1: R(A(1))}),
			pk(Inst{Op: EXTB, Unit: S1, Dst: A(8), Src1: R(A(1))}),
			pk(Inst{Op: EXTH, Unit: S1, Dst: A(9), Src1: R(A(1))}),
			pk(Inst{Op: CMPLT, Unit: L1, Dst: A(10), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: CMPLTU, Unit: L1, Dst: A(11), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: CMPGT, Unit: L1, Dst: A(12), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: CMPGTU, Unit: L1, Dst: A(13), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: CMPEQ, Unit: L1, Dst: A(14), Src1: R(A(1)), Src2: R(A(1))}),
			pk(Inst{Op: MV, Unit: L1, Dst: B(1), Src1: R(A(3))}),
			pk(Inst{Op: HALT}),
		},
	}
	for name, packets := range cases {
		t.Run(name, func(t *testing.T) { runBoth(t, packets...) })
	}
}

// TestCompiledMatchesInterpreterErrors checks that runtime contract
// violations produce the same error from both engines.
func TestCompiledMatchesInterpreterErrors(t *testing.T) {
	t.Run("load-use-too-early", func(t *testing.T) {
		runBoth(t,
			pk(Inst{Op: MVK, Unit: S1, Dst: A(5), Src2: Imm(0x100)}),
			pk(Inst{Op: LDW, Unit: D1, Dst: A(2), Src1: R(A(5)), Src2: Imm(0)}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(2)), Src2: R(A(2))}),
			pk(Inst{Op: HALT}),
		)
	})
	t.Run("overlapping-branches", func(t *testing.T) {
		runBoth(t,
			pk(Inst{Op: BPKT, Unit: S1, Target: 0}),
			pk(Inst{Op: BPKT, Unit: S1, Target: 0}),
			pk(Inst{Op: HALT}),
		)
	})
	t.Run("writeback-collision", func(t *testing.T) {
		// MPY (latency 2) issued one cycle before ADD (latency 1): both
		// land on A3 in the same cycle.
		runBoth(t,
			pk(Inst{Op: MPY, Unit: M1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: ADD, Unit: L1, Dst: A(3), Src1: R(A(1)), Src2: R(A(2))}),
			pk(Inst{Op: HALT}),
		)
	})
	t.Run("fell-off-program", func(t *testing.T) {
		runBoth(t, pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(1)}))
	})
	t.Run("unmapped-target", func(t *testing.T) {
		runBoth(t,
			pk(Inst{Op: BPKT, Unit: S1, Target: 99}),
			pk(Inst{Op: NOP, NopCycles: 5}),
			pk(Inst{Op: HALT}),
		)
	})
}

// TestCompileRejectsIssueViolations: malformed packets fail at compile
// time with the packet index, where the interpreter faults at runtime.
func TestCompileRejectsIssueViolations(t *testing.T) {
	prog := &Program{Packets: []Packet{
		pk(Inst{Op: HALT}),
		pk( // unreachable unit conflict
			Inst{Op: ADD, Unit: L1, Dst: A(1), Src1: R(A(2)), Src2: R(A(3))},
			Inst{Op: SUB, Unit: L1, Dst: A(4), Src1: R(A(5)), Src2: R(A(6))},
		),
	}}
	if _, err := Compile(prog); err == nil {
		t.Fatal("compile accepted a unit conflict")
	} else if se, ok := err.(*SimError); !ok || se.Packet != 1 {
		t.Fatalf("want SimError at packet 1, got %v", err)
	}
}

func TestUseCompiledRejectsForeignProgram(t *testing.T) {
	a := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	b := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	cp, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewSim(b, newTestMem()).UseCompiled(cp); err == nil {
		t.Fatal("attached a compiled program to a different program's sim")
	}
}

func TestCompileCachedSharesCompilation(t *testing.T) {
	prog := &Program{Packets: []Packet{pk(Inst{Op: HALT})}}
	c1, err := CompileCached(prog)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CompileCached(prog)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("CompileCached recompiled the same program")
	}
}

// genLegalProgram builds a random schedule-contract-respecting program:
// straight-line packets of ALU, memory and predicated operations with
// conservative NOP padding covering every in-flight latency, plus a
// counted loop, ending in HALT. Both engines must run it without error.
func genLegalProgram(r *rand.Rand) []Packet {
	var packets []Packet
	emit := func(in Inst) { packets = append(packets, pk(in)) }
	pad := func(n int) { packets = append(packets, pk(Inst{Op: NOP, NopCycles: n})) }

	// Seed a few registers on both sides.
	for i := 0; i < 6; i++ {
		emit(Inst{Op: MVK, Unit: S1, Dst: A(i), Src2: Imm(int32(r.Intn(4000) - 2000))})
		emit(Inst{Op: MVK, Unit: S2, Dst: B(i), Src2: Imm(int32(r.Intn(4000) - 2000))})
	}
	emit(Inst{Op: MVK, Unit: S1, Dst: A(10), Src2: Imm(0x200)}) // scratch base

	binOps := []Op{ADD, SUB, AND, OR, XOR, ANDN, SHL, SHR, SAR, CMPEQ, CMPLT, CMPLTU, CMPGT, CMPGTU}
	pickBin := func() (Op, Unit) {
		op := binOps[r.Intn(len(binOps))]
		return op, UnitFor(op.UnitKinds()[0], SideA)
	}
	n := 5 + r.Intn(25)
	for k := 0; k < n; k++ {
		dst := A(r.Intn(6))
		s1, s2 := A(r.Intn(6)), A(r.Intn(6))
		switch r.Intn(8) {
		case 0, 1, 2:
			op, u := pickBin()
			emit(Inst{Op: op, Unit: u, Dst: dst, Src1: R(s1), Src2: R(s2)})
		case 3:
			op, u := pickBin()
			emit(Inst{Op: op, Unit: u, Dst: dst, Src1: R(s1), Src2: Imm(int32(r.Intn(31)))})
		case 4:
			emit(Inst{Op: MPY, Unit: M1, Dst: dst, Src1: R(s1), Src2: R(s2)})
			pad(1) // multiply delay slot
		case 5:
			off := int32(4 * r.Intn(16))
			emit(Inst{Op: STW, Unit: D1, Data: s1, Src1: R(A(10)), Src2: Imm(off)})
			emit(Inst{Op: LDW, Unit: D1, Dst: dst, Src1: R(A(10)), Src2: Imm(off)})
			pad(4) // load delay slots
		case 6:
			off := int32(r.Intn(32))
			emit(Inst{Op: STB, Unit: D1, Data: s1, Src1: R(A(10)), Src2: Imm(off)})
			emit(Inst{Op: LDB, Unit: D1, Dst: dst, Src1: R(A(10)), Src2: Imm(off)})
			pad(4)
		case 7:
			pred := Pred{Valid: true, Neg: r.Intn(2) == 0, Reg: A(r.Intn(6))}
			op, u := pickBin()
			emit(Inst{Op: op, Unit: u, Pred: pred, Dst: dst, Src1: R(s1), Src2: R(s2)})
		}
	}

	// Counted loop: A8 iterations accumulating into A9, closed by a
	// predicated backward branch with its five delay slots padded.
	emit(Inst{Op: MVK, Unit: S1, Dst: A(8), Src2: Imm(int32(2 + r.Intn(5)))})
	emit(Inst{Op: MVK, Unit: S1, Dst: A(9), Src2: Imm(0)})
	loop := len(packets)
	emit(Inst{Op: ADD, Unit: L1, Dst: A(9), Src1: R(A(9)), Src2: R(A(8))})
	emit(Inst{Op: SUB, Unit: L1, Dst: A(8), Src1: R(A(8)), Src2: Imm(1)})
	emit(Inst{Op: BPKT, Unit: S1, Target: loop, Pred: Pred{Valid: true, Reg: A(8)}})
	pad(5)
	emit(Inst{Op: HALT})
	return packets
}

// TestCompiledMatchesInterpreterRandom is the engine-differential
// property test: random legal programs must produce bit-identical
// registers, cycles, stats and memory traffic on both engines.
func TestCompiledMatchesInterpreterRandom(t *testing.T) {
	f := func(seed int64) bool {
		packets := genLegalProgram(rand.New(rand.NewSource(seed)))
		is, _ := runBoth(t, packets...)
		return is.Halted()
	}
	cfg := &quick.Config{MaxCount: 120}
	if testing.Short() {
		cfg.MaxCount = 20
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// FuzzCompiledVsInterpreter drives the same differential through the
// fuzzer, letting it explore generator seeds beyond the property test's
// fixed budget.
func FuzzCompiledVsInterpreter(f *testing.F) {
	for _, seed := range []int64{0, 1, 42, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		packets := genLegalProgram(rand.New(rand.NewSource(seed)))
		runBoth(t, packets...)
	})
}

// TestCompiledSteadyStateAllocs is the allocation-free hot loop
// guarantee: once warm, stepping the compiled engine performs zero heap
// allocations per packet.
func TestCompiledSteadyStateAllocs(t *testing.T) {
	// A tight endless loop with in-flight loads and multiplies so the
	// writeback machinery is exercised every iteration.
	packets := []Packet{
		pk(Inst{Op: MVK, Unit: S1, Dst: A(10), Src2: Imm(0x200)}),
		pk(Inst{Op: MVK, Unit: S1, Dst: A(1), Src2: Imm(3)}),
		// loop (packet 2):
		pk(Inst{Op: MPY, Unit: M1, Dst: A(2), Src1: R(A(1)), Src2: R(A(1))}),
		pk(Inst{Op: STW, Unit: D1, Data: A(1), Src1: R(A(10)), Src2: Imm(0)}),
		pk(Inst{Op: LDW, Unit: D1, Dst: A(3), Src1: R(A(10)), Src2: Imm(0)}),
		pk(Inst{Op: BPKT, Unit: S1, Target: 2}),
		pk(Inst{Op: NOP, NopCycles: 5}),
		pk(Inst{Op: HALT}), // never reached
	}
	prog := &Program{Packets: packets}
	cp, err := Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSim(prog, newAllocFreeMem())
	if err := s.UseCompiled(cp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ { // warm the scratch buffers
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates: %.1f allocs per 64 packets", allocs)
	}
}

// allocFreeMem is a fixed-array MemPort (the map-backed testMem
// allocates on writes, which would mask engine allocations).
type allocFreeMem struct {
	ram [4096]byte
}

func newAllocFreeMem() *allocFreeMem { return &allocFreeMem{} }

func (m *allocFreeMem) Load(addr uint32, size int, cycle int64) (uint32, int64, error) {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.ram[(addr+uint32(i))%4096]) << (8 * i)
	}
	return v, cycle, nil
}

func (m *allocFreeMem) Store(addr uint32, val uint32, size int, cycle int64) (int64, error) {
	for i := 0; i < size; i++ {
		m.ram[(addr+uint32(i))%4096] = byte(val >> (8 * i))
	}
	return cycle, nil
}
