package c6x

import (
	"fmt"
	"sort"
)

// This file is the superblock (fused) execution engine: a region-graph
// compiler that traces the translated program across execute packets —
// and across cycle-region boundaries — folding the per-packet epilogue
// (cycle accounting, stats, writeback commit scans, branch-delay
// bookkeeping) into straight-line chains of closures with the constant
// parts pre-added at fuse time. Where the compiled engine (compile.go)
// pays a dispatch and a commit scan per packet, the fused engine pays
// one constant-folded accounting closure per segment and dispatches
// only at control-flow splits, so steady-state loops never return to
// the caller's region dispatcher.
//
// The fuser is a tiny abstract interpreter over the scheduler's
// machine-state contract: it tracks the branch-delay counter, the
// in-flight writeback window and (for the registers in
// FuseConfig.ConstRegs) MVK/MVKH-built constants symbolically, forking
// compiled segments at predicated branches and chaining them at
// resolved ones. Anything outside the contract — a read of an
// in-flight register, an unresolvable indirect branch, an op with no
// kernel, overlapping branches — ends the segment with a deoptimization
// exit that materializes the exact interpreter state (pc, pending
// writebacks, branch state, clocks, stats) and hands control back to
// the generic engines, which reproduce the oracle behavior including
// its error texts. Bit-identity with Step is the invariant every
// fusing rule below preserves; the differential tests in fuse_test.go
// and the platform matrix enforce it.
//
// Known, deliberate inexactness: when a memory op faults mid-segment
// the error value (packet, cycle, text) is exact, but the statistics
// counters lag by the packets folded since the last synchronization
// point. Errors are terminal, so no caller observes the difference.

const (
	// fuseMaxSlots bounds the in-flight writeback values a segment can
	// hold in the Sim's fixed slot array (the deepest translator output
	// keeps a handful in flight; overflow deoptimizes).
	fuseMaxSlots = 16
	// fuseMaxSegPackets bounds one segment's trace length; longer
	// straight-line runs chain through a continuation segment.
	fuseMaxSegPackets = 64
	// fuseDefaultMaxSegments bounds the total compiled segments
	// (distinct packet × machine-state pairs) before Fuse gives up.
	fuseDefaultMaxSegments = 16384
)

// FuseConfig parameterizes superblock compilation.
type FuseConfig struct {
	// RegionOf maps each packet index to the cycle region starting
	// there (-1 elsewhere). Region starts are the segment boundaries
	// where the runner's hook fires (interrupt delivery points, trace,
	// clock checks) and the only re-entry points after a deopt.
	RegionOf []int32
	// ConstRegs are registers whose MVK/MVKH-built values the fuser
	// tracks symbolically to resolve indirect branches (the translator's
	// link register and the source return-address register).
	ConstRegs []Reg
	// MaxSegments overrides fuseDefaultMaxSegments when positive.
	MaxSegments int
}

// fop is one compiled fused operation.
type fop func(s *Sim) error

// finflight is one in-flight writeback tracked symbolically: its value
// lives in fslotVal[slot] at run time, landing rel busy-cycles after
// the segment boundary it is relative to. pred marks a predicated
// producer whose execution is recorded in fslotOn[slot].
type finflight struct {
	reg  Reg
	rel  int64
	slot uint8
	pred bool
}

// fbr is the symbolic branch-delay state.
type fbr struct {
	valid bool
	tgt   int
	cnt   int
}

// ffact is a known register constant (MVK/MVKH tracking).
type ffact struct {
	reg Reg
	val uint32
}

// fstate is the symbolic machine state keying a segment: the packet the
// trace continues at, the branch-delay state, the in-flight writeback
// window (rel relative to the state's busy clock) and the known
// constants. Two traces reaching one packet in the same state share a
// segment.
type fstate struct {
	pkt      int
	br       fbr
	inflight []finflight
	facts    []ffact
}

func (st *fstate) key() string {
	b := make([]byte, 0, 12+10*len(st.inflight)+5*len(st.facts))
	put := func(v uint32) {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	put(uint32(st.pkt))
	if st.br.valid {
		b = append(b, 1)
		put(uint32(st.br.tgt))
		put(uint32(st.br.cnt))
	} else {
		b = append(b, 0)
	}
	b = append(b, byte(len(st.inflight)))
	for _, fi := range st.inflight {
		flag := byte(0)
		if fi.pred {
			flag = 1
		}
		b = append(b, byte(fi.reg), fi.slot, flag)
		put(uint32(fi.rel))
	}
	for _, fa := range st.facts {
		b = append(b, byte(fa.reg))
		put(fa.val)
	}
	return string(b)
}

// fseg is one compiled segment.
type fseg struct {
	pkt      int  // packet the segment's state sits at (pc at its boundary)
	boundary bool // sits at a region start: the runner hook fires here
	noEnter  bool // zero-progress (deopts immediately): not a re-entry point
	entryBr  fbr
	// entryFlush is the in-flight window at segment entry, flushed into
	// Sim.pending when the hook stops or redirects execution here.
	entryFlush []finflight
	ops        []fop
}

// FusedProgram is the superblock-compiled form of a Program. Immutable
// after Fuse and safe to share across Sims (closures only touch the Sim
// passed to them).
type FusedProgram struct {
	prog *Program
	segs []*fseg
	// entry maps a packet index to its clean-state re-entry segment, or
	// -1. A dense slice rather than a map: entry dispatch runs once per
	// region boundary on the hot path, and a bounds-checked load beats a
	// hash lookup there.
	entry   []int32
	entries int
}

// Segments returns the number of compiled segments (introspection).
func (fp *FusedProgram) Segments() int { return len(fp.segs) }

// Entries returns the number of clean re-entry points.
func (fp *FusedProgram) Entries() int { return fp.entries }

// entryAt returns the re-entry segment for packet pc, or -1.
func (fp *FusedProgram) entryAt(pc int) int32 {
	if pc < 0 || pc >= len(fp.entry) {
		return -1
	}
	return fp.entry[pc]
}

// fuser is the segment compiler.
type fuser struct {
	prog    *Program
	cfg     FuseConfig
	maxSegs int
	segs    []*fseg
	states  []fstate
	index   map[string]int32
	work    []int32
	seeds   map[int]int32 // seed packet -> segment index
}

// Fuse compiles prog into superblock segments. Programs with malformed
// packets are rejected (like Compile); a program whose control flow
// explodes the segment budget returns an error, and the caller runs
// unfused.
func Fuse(prog *Program, cfg FuseConfig) (*FusedProgram, error) {
	for i, pk := range prog.Packets {
		if msg := issueViolation(pk); msg != "" {
			return nil, &SimError{Packet: i, Msg: msg}
		}
	}
	f := &fuser{
		prog:    prog,
		cfg:     cfg,
		maxSegs: cfg.MaxSegments,
		index:   map[string]int32{},
		seeds:   map[int]int32{},
	}
	if f.maxSegs <= 0 {
		f.maxSegs = fuseDefaultMaxSegments
	}
	// Seeds: the program entry and every region start, in clean state.
	f.seeds[prog.Entry] = f.state(fstate{pkt: prog.Entry})
	for pkt, ri := range cfg.RegionOf {
		if ri >= 0 {
			if _, ok := f.seeds[pkt]; !ok {
				f.seeds[pkt] = f.state(fstate{pkt: pkt})
			}
		}
	}
	for len(f.work) > 0 {
		if len(f.segs) > f.maxSegs {
			return nil, fmt.Errorf("c6x: fuse: segment budget exceeded (%d)", f.maxSegs)
		}
		si := f.work[len(f.work)-1]
		f.work = f.work[:len(f.work)-1]
		f.compileSeg(si)
	}
	// +1: a program whose entry sits just past the last packet still
	// seeds a (deopting) segment there.
	fp := &FusedProgram{prog: prog, segs: f.segs, entry: make([]int32, len(prog.Packets)+1)}
	for i := range fp.entry {
		fp.entry[i] = -1
	}
	for pkt, si := range f.seeds {
		if !f.segs[si].noEnter && pkt >= 0 && pkt < len(fp.entry) {
			fp.entry[pkt] = si
			fp.entries++
		}
	}
	return fp, nil
}

// state interns a symbolic state, scheduling compilation on first use.
func (f *fuser) state(st fstate) int32 {
	k := st.key()
	if si, ok := f.index[k]; ok {
		return si
	}
	si := int32(len(f.segs))
	f.index[k] = si
	f.segs = append(f.segs, &fseg{})
	f.states = append(f.states, st)
	f.work = append(f.work, si)
	return si
}

func (f *fuser) regionAt(pkt int) int32 {
	if pkt >= 0 && pkt < len(f.cfg.RegionOf) {
		return f.cfg.RegionOf[pkt]
	}
	return -1
}

// fctx is the per-segment compilation context: the working symbolic
// state plus the accumulators the next synchronization op will fold
// into the Sim.
type fctx struct {
	f   *fuser
	seg *fseg

	busy     int64 // busy offset since segment entry
	br       fbr
	inflight []finflight
	facts    []ffact
	slots    uint32 // bitmask of live slots

	accCyc, accPkts, accInsts, accNop int64
	memSeen                           bool // a mem op ran since the last sync (fstall may be pending)
	progress                          bool
}

// compileSeg compiles the segment for state index si.
func (f *fuser) compileSeg(si int32) {
	st := f.states[si]
	seg := f.segs[si]
	seg.pkt = st.pkt
	seg.entryBr = st.br
	seg.entryFlush = append([]finflight(nil), st.inflight...)
	seg.boundary = f.regionAt(st.pkt) >= 0

	c := &fctx{
		f:        f,
		seg:      seg,
		br:       st.br,
		inflight: append([]finflight(nil), st.inflight...),
		facts:    append([]ffact(nil), st.facts...),
	}
	for _, fi := range st.inflight {
		c.slots |= 1 << fi.slot
	}

	pkt := st.pkt
	pkts := 0
	for {
		if pkt < 0 || pkt >= len(f.prog.Packets) {
			// Out of range: deopt; the generic engine produces the exact
			// "fell off the program" error.
			c.exitDeopt(pkt)
			break
		}
		if pkt != st.pkt && f.regionAt(pkt) >= 0 {
			// Region boundary: end the segment so the runner hook fires.
			c.termJump(c.stateAt(pkt))
			break
		}
		if pkts >= fuseMaxSegPackets {
			c.termJump(c.stateAt(pkt))
			break
		}
		pl, ok := c.plan(pkt, f.prog.Packets[pkt])
		if !ok {
			c.exitDeopt(pkt)
			break
		}
		pkts++
		c.emit(pkt, pl)
		c.progress = true
		if done := c.terminal(pkt, pl); done {
			break
		}
		pkt = pl.next
	}
	seg.noEnter = !c.progress
}

// stateAt interns the continuation state at pkt with the current
// symbolic machine state (rels rebased to the new segment's entry).
func (c *fctx) stateAt(pkt int) int32 {
	st := fstate{pkt: pkt, br: c.br}
	for _, fi := range c.inflight {
		fi.rel -= c.busy
		st.inflight = append(st.inflight, fi)
	}
	st.facts = append(st.facts, c.facts...)
	return c.f.state(st)
}

// fwrite is one planned register write of a packet.
type fwrite struct {
	inst      int // index into the packet's insts
	reg       Reg
	commitOff int64
	direct    bool
	slot      uint8
	pred      bool
}

// fplan is the static execution plan of one packet.
type fplan struct {
	hasMem  bool
	busyPk  int64
	busyEff int64
	nop     int64
	uncond  int64 // unpredicated executed instructions (folded count)

	writes []fwrite
	due    []finflight // commits landing at this packet's end, in order
	keep   []finflight // still in flight afterwards

	condBr    bool // predicated branch issued (fork at terminal)
	brTgt     int  // static branch target if a branch issues
	halt      bool // unpredicated HALT
	haltCond  bool // predicated HALT
	fired     bool // unpredicated branch fires at this packet's end
	firedTgt  int
	brAfter   fbr // branch state after this packet (not-taken path for condBr)
	brTaken   fbr // branch state after this packet on the taken path (condBr)
	killFacts []Reg
	setFact   *ffact
	next      int // fallthrough packet
}

// readsOf appends the registers inst reads at issue (the strict
// in-flight contract set: predicate registers unconditionally, operand
// registers per the interpreter's Step switch).
func readsOf(in Inst, dst []Reg) []Reg {
	if in.Pred.Valid {
		dst = append(dst, in.Pred.Reg)
	}
	switch {
	case in.Op == NOP, in.Op == HALT, in.Op == BPKT:
	case in.Op == BREG:
		if !in.Src1.IsImm {
			dst = append(dst, in.Src1.Reg)
		}
	case in.Op.IsLoad():
		if !in.Src1.IsImm {
			dst = append(dst, in.Src1.Reg)
		}
	case in.Op.IsStore():
		if !in.Src1.IsImm {
			dst = append(dst, in.Src1.Reg)
		}
		dst = append(dst, in.Data)
	default:
		if in.Op.ReadsSrc1() && !in.Src1.IsImm {
			dst = append(dst, in.Src1.Reg)
		}
		if in.Op.ReadsSrc2() && !in.Src2.IsImm {
			dst = append(dst, in.Src2.Reg)
		}
		if in.Op == MVKH {
			dst = append(dst, in.Dst)
		}
	}
	return dst
}

// fact returns the tracked constant of r, if known.
func (c *fctx) fact(r Reg) (uint32, bool) {
	for _, fa := range c.facts {
		if fa.reg == r {
			return fa.val, true
		}
	}
	return 0, false
}

func (c *fctx) tracked(r Reg) bool {
	for _, tr := range c.f.cfg.ConstRegs {
		if tr == r {
			return true
		}
	}
	return false
}

// plan statically simulates one packet against the symbolic state. A
// false result means the packet (in this state) is outside the fusable
// contract and the segment must deoptimize before it.
func (c *fctx) plan(pkt int, pk Packet) (fplan, bool) {
	var pl fplan
	pl.next = pkt + 1
	pl.busyPk = int64(pk.Cycles())
	if n := pk.Cycles(); n > 1 {
		pl.nop = int64(n - 1)
	}

	// Strict in-flight read contract: any read of an in-flight register
	// deopts (the generic engine errors, or proceeds when not strict).
	var readBuf [16]Reg
	reads := readBuf[:0]
	for _, in := range pk.Insts {
		reads = readsOf(in, reads)
	}
	for _, r := range reads {
		for _, fi := range c.inflight {
			if fi.reg == r {
				return pl, false
			}
		}
	}

	branches := 0
	for idx, in := range pk.Insts {
		if in.Op != NOP && !in.Pred.Valid {
			pl.uncond++
		}
		switch {
		case in.Op == NOP:
		case in.Op == HALT:
			if in.Pred.Valid {
				pl.haltCond = true
			} else {
				pl.halt = true
			}
		case in.Op == BPKT || in.Op == BREG:
			branches++
			if branches > 1 || c.br.valid {
				return pl, false // overlap: generic reproduces the strict error
			}
			tgt := in.Target
			if in.Op == BREG {
				if in.Src1.IsImm {
					tgt = int(in.Src1.Imm)
				} else {
					v, known := c.fact(in.Src1.Reg)
					if !known {
						return pl, false // unresolvable indirect branch
					}
					tgt = int(int32(v))
				}
			}
			pl.brTgt = tgt
			if in.Pred.Valid {
				pl.condBr = true
			}
		case in.Op.IsLoad(), in.Op.IsStore():
			pl.hasMem = true
			if in.Op.IsLoad() {
				pl.writes = append(pl.writes, fwrite{
					inst: idx, reg: in.Dst,
					commitOff: c.busy + int64(in.Op.Latency()),
					pred:      in.Pred.Valid,
				})
			}
		default:
			if in.Op != MVK && in.Op != MVKH && unaryKernel(in.Op) == nil && binaryKernel(in.Op) == nil {
				return pl, false // no kernel (INVALID etc.): generic errors
			}
			pl.writes = append(pl.writes, fwrite{
				inst: idx, reg: in.Dst,
				commitOff: c.busy + int64(in.Op.Latency()),
				pred:      in.Pred.Valid,
			})
		}
	}

	// Cycle accounting: a pending branch shortens a multi-cycle NOP. The
	// only path-dependent case (a predicated branch in a packet whose
	// busy differs by takenness) cannot come from the scheduler; deopt.
	pl.busyEff = pl.busyPk
	if c.br.valid && int64(c.br.cnt) < pl.busyEff {
		pl.busyEff = int64(c.br.cnt)
	}
	if pl.condBr {
		takenEff := pl.busyPk
		if int64(BranchDelay+1) < takenEff {
			takenEff = int64(BranchDelay + 1)
		}
		if takenEff != pl.busyEff {
			return pl, false
		}
	}
	busyAfter := c.busy + pl.busyEff

	// Writeback window: split due/keep in pending order, stable-sort due
	// by commit cycle, detect same-cycle collisions (deopt: the generic
	// engine produces the exact strict error), decide direct writes.
	var all []finflight
	all = append(all, c.inflight...)
	for wi := range pl.writes {
		w := &pl.writes[wi]
		// A direct write (straight to Regs at issue) is legal when the
		// commit lands exactly at this packet's end, no same-packet
		// instruction reads the register, and no other write to it is
		// in flight or planned — otherwise commit order matters and the
		// value goes through a slot.
		w.direct = w.commitOff == busyAfter
		if w.direct {
			for _, r := range reads {
				if r == w.reg {
					w.direct = false
					break
				}
			}
		}
		if w.direct {
			for _, fi := range c.inflight {
				if fi.reg == w.reg {
					w.direct = false
					break
				}
			}
			for oi := range pl.writes {
				if oi != wi && pl.writes[oi].reg == w.reg {
					w.direct = false
					break
				}
			}
		}
		if !w.direct {
			slot := -1
			for b := 0; b < fuseMaxSlots; b++ {
				if c.slots&(1<<b) == 0 {
					slot = b
					break
				}
			}
			if slot < 0 {
				return pl, false // slot pressure: deopt
			}
			c.slots |= 1 << slot // provisional; freed on commit or rolled back by caller discipline
			w.slot = uint8(slot)
			all = append(all, finflight{reg: w.reg, rel: w.commitOff, slot: w.slot, pred: w.pred})
		}
	}
	for _, fi := range all {
		if fi.rel <= busyAfter {
			pl.due = append(pl.due, fi)
		} else {
			pl.keep = append(pl.keep, fi)
		}
	}
	sort.SliceStable(pl.due, func(i, j int) bool { return pl.due[i].rel < pl.due[j].rel })
	for i := range pl.due {
		for j := i + 1; j < len(pl.due); j++ {
			if pl.due[i].reg == pl.due[j].reg && pl.due[i].rel == pl.due[j].rel {
				return pl, false // writeback collision: generic reproduces it
			}
		}
	}

	// Facts: kills first (any write to a tracked register), then the
	// MVK/MVKH set when the new value is statically known.
	for wi := range pl.writes {
		if c.tracked(pl.writes[wi].reg) {
			pl.killFacts = append(pl.killFacts, pl.writes[wi].reg)
		}
	}
	for _, in := range pk.Insts {
		if (in.Op != MVK && in.Op != MVKH) || in.Pred.Valid || !c.tracked(in.Dst) {
			continue
		}
		// The value must land this packet (lat 1 always does), be the
		// only write to the register in flight, and be computable.
		solo := true
		for _, fi := range pl.keep {
			if fi.reg == in.Dst {
				solo = false
			}
		}
		writers := 0
		for _, w := range pl.writes {
			if w.reg == in.Dst {
				writers++
			}
		}
		if !solo || writers != 1 {
			continue
		}
		switch in.Op {
		case MVK:
			pl.setFact = &ffact{reg: in.Dst, val: uint32(int32(int16(in.Src2.Imm)))}
		case MVKH:
			if old, known := c.fact(in.Dst); known {
				pl.setFact = &ffact{reg: in.Dst, val: old&0xFFFF | uint32(in.Src2.Imm)<<16}
			}
		}
	}

	// Branch bookkeeping after this packet.
	pl.brAfter = c.br
	if branches == 1 && !pl.condBr {
		pl.brAfter = fbr{valid: true, tgt: pl.brTgt, cnt: BranchDelay + 1}
	}
	if pl.brAfter.valid {
		pl.brAfter.cnt -= int(pl.busyEff)
		if pl.brAfter.cnt <= 0 {
			if !pl.condBr {
				pl.fired = true
				pl.firedTgt = pl.brAfter.tgt
			}
			pl.brAfter = fbr{}
		}
	}
	if pl.condBr {
		pl.brTaken = fbr{valid: true, tgt: pl.brTgt, cnt: BranchDelay + 1 - int(pl.busyEff)}
		if pl.brTaken.cnt <= 0 {
			// Degenerate: a predicated branch firing at its own packet end
			// (busy ≥ 6) cannot come from the scheduler; deopt.
			return pl, false
		}
	}
	return pl, true
}

// emit lowers the planned packet into ops and advances the symbolic
// state. Issue ops run in instruction order, then the due commits in
// their sorted order, exactly like the interpreter's packet epilogue.
func (c *fctx) emit(pkt int, pl fplan) {
	pk := c.f.prog.Packets[pkt]
	if pl.hasMem {
		c.emitSync()
	}
	wi := 0
	for idx, in := range pk.Insts {
		var w *fwrite
		if wi < len(pl.writes) && pl.writes[wi].inst == idx {
			w = &pl.writes[wi]
			wi++
		}
		c.emitInst(pkt, in, w)
	}
	if pl.hasMem {
		c.memSeen = true
	}

	// Commit ops, in due order.
	for _, fi := range pl.due {
		slot, reg := fi.slot, fi.reg
		if fi.pred {
			c.seg.ops = append(c.seg.ops, func(s *Sim) error {
				if s.fslotOn[slot] {
					s.Regs[reg] = s.fslotVal[slot]
				}
				return nil
			})
		} else {
			c.seg.ops = append(c.seg.ops, func(s *Sim) error {
				s.Regs[reg] = s.fslotVal[slot]
				return nil
			})
		}
		c.slots &^= 1 << slot
	}

	// Fold the accounting constants.
	c.accCyc += pl.busyEff
	c.accPkts++
	c.accInsts += pl.uncond
	c.accNop += pl.nop
	c.busy += pl.busyEff
	c.inflight = append(c.inflight[:0], pl.keep...)

	// Facts.
	for _, r := range pl.killFacts {
		for i := 0; i < len(c.facts); i++ {
			if c.facts[i].reg == r {
				c.facts = append(c.facts[:i], c.facts[i+1:]...)
				i--
			}
		}
	}
	if pl.setFact != nil {
		c.facts = append(c.facts, *pl.setFact)
		sort.Slice(c.facts, func(i, j int) bool { return c.facts[i].reg < c.facts[j].reg })
	}
}

// terminal emits the segment terminal the packet requires, returning
// whether the segment ends here. The branch state advance (brAfter /
// taken-fork / fire) was computed by plan.
func (c *fctx) terminal(pkt int, pl fplan) bool {
	switch {
	case pl.halt:
		c.br = pl.brAfter
		exitPC := pl.next
		if pl.fired {
			exitPC = pl.firedTgt
		}
		c.exitHalt(exitPC)
		return true
	case pl.haltCond:
		// Runtime fork on s.halted (set by the guarded HALT op). The
		// continuation pc is the same either way (fallthrough, or the
		// target of a pre-existing branch firing at this packet's end).
		c.br = pl.brAfter
		next := pl.next
		if pl.fired {
			next = pl.firedTgt
		}
		c.termHaltCond(next, c.stateAt(next))
		return true
	case pl.condBr:
		c.br = pl.brTaken
		taken := c.stateAt(pl.next)
		c.br = pl.brAfter
		fallSeg := c.stateAt(pl.next)
		c.termCond(taken, fallSeg)
		return true
	case pl.fired:
		c.br = fbr{}
		c.termJump(c.stateAt(pl.firedTgt))
		return true
	default:
		c.br = pl.brAfter
		return false
	}
}

// take drains the accounting accumulators for a terminal/sync op.
func (c *fctx) take() (cyc, pkts, insts, nop int64) {
	cyc, pkts, insts, nop = c.accCyc, c.accPkts, c.accInsts, c.accNop
	c.accCyc, c.accPkts, c.accInsts, c.accNop = 0, 0, 0, 0
	c.memSeen = false
	return
}

// emitSync folds the accumulated constants into the Sim — the constant
// part of every interpreted packet epilogue since the last sync point,
// paid once. Memory stalls collected in fstall freeze the cycle clock
// exactly like the interpreter's per-packet stall accounting.
func (c *fctx) emitSync() {
	if c.accCyc == 0 && c.accPkts == 0 && !c.memSeen {
		return
	}
	cyc, pkts, insts, nop := c.take()
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		return nil
	})
}

// flushOps returns the runtime flush of the current in-flight window
// (rels rebased to the exit's busy clock).
func (c *fctx) flushList() []finflight {
	var fl []finflight
	for _, fi := range c.inflight {
		fi.rel -= c.busy
		fl = append(fl, fi)
	}
	return fl
}

// exitDeopt materializes the exact interpreter state at pkt and leaves
// fused execution (fnext = -1).
func (c *fctx) exitDeopt(pkt int) {
	cyc, pkts, insts, nop := c.take()
	fl := c.flushList()
	br := c.br
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		for _, fi := range fl {
			if fi.pred && !s.fslotOn[fi.slot] {
				continue
			}
			s.pending = append(s.pending, writeback{reg: fi.reg, val: s.fslotVal[fi.slot], commitAt: s.busy + fi.rel})
		}
		s.pc = pkt
		if br.valid {
			s.brValid, s.brTgt, s.brCnt = true, br.tgt, br.cnt
		}
		s.fnext = -1
		return nil
	})
}

// exitHalt materializes the halted state (HALT executed this packet).
func (c *fctx) exitHalt(exitPC int) {
	cyc, pkts, insts, nop := c.take()
	fl := c.flushList()
	br := c.br
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		s.halted = true
		for _, fi := range fl {
			if fi.pred && !s.fslotOn[fi.slot] {
				continue
			}
			s.pending = append(s.pending, writeback{reg: fi.reg, val: s.fslotVal[fi.slot], commitAt: s.busy + fi.rel})
		}
		s.pc = exitPC
		if br.valid {
			s.brValid, s.brTgt, s.brCnt = true, br.tgt, br.cnt
		}
		s.fnext = -1
		return nil
	})
}

// termHaltCond forks at run time on whether the guarded HALT executed.
func (c *fctx) termHaltCond(exitPC int, fall int32) {
	cyc, pkts, insts, nop := c.take()
	fl := c.flushList()
	br := c.br
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		if !s.halted {
			s.fnext = fall
			return nil
		}
		for _, fi := range fl {
			if fi.pred && !s.fslotOn[fi.slot] {
				continue
			}
			s.pending = append(s.pending, writeback{reg: fi.reg, val: s.fslotVal[fi.slot], commitAt: s.busy + fi.rel})
		}
		s.pc = exitPC
		if br.valid {
			s.brValid, s.brTgt, s.brCnt = true, br.tgt, br.cnt
		}
		s.fnext = -1
		return nil
	})
}

// termCond forks on the predicated branch issued this packet (fcond0
// was set by its issue op).
func (c *fctx) termCond(taken, fall int32) {
	cyc, pkts, insts, nop := c.take()
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		if s.fcond0 {
			s.fnext = taken
		} else {
			s.fnext = fall
		}
		return nil
	})
}

// termJump chains to the next segment.
func (c *fctx) termJump(next int32) {
	cyc, pkts, insts, nop := c.take()
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		s.cycle += cyc + s.fstall
		s.busy += cyc
		s.stats.StallCycles += s.fstall
		s.fstall = 0
		s.stats.Packets += pkts
		s.stats.Instructions += insts
		s.stats.NopCycles += nop
		s.fnext = next
		return nil
	})
}

// emitInst lowers one instruction. w is its planned write (nil for
// non-writing instructions).
func (c *fctx) emitInst(pkt int, in Inst, w *fwrite) {
	switch {
	case in.Op == NOP:
		return
	case in.Op == HALT:
		if !in.Pred.Valid {
			return // folded into the exit terminal
		}
		pr, neg := in.Pred.Reg, in.Pred.Neg
		c.seg.ops = append(c.seg.ops, func(s *Sim) error {
			if (s.Regs[pr] != 0) == neg {
				return nil
			}
			s.stats.Instructions++
			s.halted = true
			return nil
		})
		return
	case in.Op == BPKT || in.Op == BREG:
		if !in.Pred.Valid {
			return // fully static: accounting folded, target known
		}
		pr, neg := in.Pred.Reg, in.Pred.Neg
		c.seg.ops = append(c.seg.ops, func(s *Sim) error {
			t := (s.Regs[pr] != 0) != neg
			if t {
				s.stats.Instructions++
			}
			s.fcond0 = t
			return nil
		})
		return
	case in.Op.IsLoad():
		c.emitLoad(pkt, in, w)
		return
	case in.Op.IsStore():
		c.emitStore(pkt, in)
		return
	}
	c.emitALU(in, w)
}

// fusedLoadRaw performs the load access and stall accounting shared by
// every load shape.
func (s *Sim) fusedLoadRaw(pkt int, addr uint32, sz int) (uint32, error) {
	v, cont, err := s.mem.Load(addr, sz, s.cycle)
	if err != nil {
		return 0, s.errf(pkt, "load @%#x: %v", addr, err)
	}
	s.fstall += cont - s.cycle
	return v, nil
}

func loadExtend(op Op, v uint32) uint32 {
	switch op {
	case LDH:
		return uint32(int32(int16(v)))
	case LDB:
		return uint32(int32(int8(v)))
	}
	return v
}

func (c *fctx) emitLoad(pkt int, in Inst, w *fwrite) {
	op := in.Op
	off := uint32(in.Src2.Imm)
	sz := in.Op.MemSize()
	immBase := in.Src1.IsImm
	var immAddr uint32
	base := in.Src1.Reg
	if immBase {
		immAddr = uint32(in.Src1.Imm) + off
	}
	slot := w.slot
	dst := w.reg
	direct := w.direct
	if !in.Pred.Valid {
		// Instruction count folded into the accounting sync (pl.uncond).
		c.seg.ops = append(c.seg.ops, func(s *Sim) error {
			addr := immAddr
			if !immBase {
				addr = s.Regs[base] + off
			}
			v, err := s.fusedLoadRaw(pkt, addr, sz)
			if err != nil {
				return err
			}
			v = loadExtend(op, v)
			if direct {
				s.Regs[dst] = v
			} else {
				s.fslotVal[slot] = v
			}
			return nil
		})
		return
	}
	pr, neg := in.Pred.Reg, in.Pred.Neg
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		if (s.Regs[pr] != 0) == neg {
			if !direct {
				s.fslotOn[slot] = false
			}
			return nil
		}
		s.stats.Instructions++
		addr := immAddr
		if !immBase {
			addr = s.Regs[base] + off
		}
		v, err := s.fusedLoadRaw(pkt, addr, sz)
		if err != nil {
			return err
		}
		v = loadExtend(op, v)
		if direct {
			s.Regs[dst] = v
		} else {
			s.fslotOn[slot] = true
			s.fslotVal[slot] = v
		}
		return nil
	})
}

func (c *fctx) emitStore(pkt int, in Inst) {
	off := uint32(in.Src2.Imm)
	sz := in.Op.MemSize()
	immBase := in.Src1.IsImm
	var immAddr uint32
	base := in.Src1.Reg
	if immBase {
		immAddr = uint32(in.Src1.Imm) + off
	}
	data := in.Data
	p32 := int32(pkt)
	// Instruction count: folded (pl.uncond) for the unpredicated shape,
	// counted at run time by the predicated wrapper.
	body := func(s *Sim) error {
		s.fusedPkt = p32
		addr := immAddr
		if !immBase {
			addr = s.Regs[base] + off
		}
		cont, err := s.mem.Store(addr, s.Regs[data], sz, s.cycle)
		if err != nil {
			return s.errf(pkt, "store @%#x: %v", addr, err)
		}
		s.fstall += cont - s.cycle
		return nil
	}
	if !in.Pred.Valid {
		c.seg.ops = append(c.seg.ops, body)
		return
	}
	pr, neg := in.Pred.Reg, in.Pred.Neg
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		if (s.Regs[pr] != 0) == neg {
			return nil
		}
		s.stats.Instructions++
		return body(s)
	})
}

// emitALU lowers a register-writing ALU op: a value computation wrapped
// in the direct/slot and predicate shells.
func (c *fctx) emitALU(in Inst, w *fwrite) {
	compute := fusedCompute(in)
	slot := w.slot
	dst := w.reg
	direct := w.direct
	if !in.Pred.Valid {
		// Instruction count folded into the accounting sync (pl.uncond).
		if direct {
			c.seg.ops = append(c.seg.ops, func(s *Sim) error {
				s.Regs[dst] = compute(s)
				return nil
			})
		} else {
			c.seg.ops = append(c.seg.ops, func(s *Sim) error {
				s.fslotVal[slot] = compute(s)
				return nil
			})
		}
		return
	}
	pr, neg := in.Pred.Reg, in.Pred.Neg
	if direct {
		c.seg.ops = append(c.seg.ops, func(s *Sim) error {
			if (s.Regs[pr] != 0) == neg {
				return nil
			}
			s.stats.Instructions++
			s.Regs[dst] = compute(s)
			return nil
		})
		return
	}
	c.seg.ops = append(c.seg.ops, func(s *Sim) error {
		if (s.Regs[pr] != 0) == neg {
			s.fslotOn[slot] = false
			return nil
		}
		s.stats.Instructions++
		s.fslotOn[slot] = true
		s.fslotVal[slot] = compute(s)
		return nil
	})
}

// fusedCompute builds the value function of an ALU op (same-packet
// reads see packet-start register values: plan routes any same-packet
// writer of a read register through a slot, so Regs is stable here).
func fusedCompute(in Inst) func(s *Sim) uint32 {
	switch in.Op {
	case MVK:
		v := uint32(int32(int16(in.Src2.Imm)))
		return func(*Sim) uint32 { return v }
	case MVKH:
		hi := uint32(in.Src2.Imm) << 16
		dst := in.Dst
		return func(s *Sim) uint32 { return s.Regs[dst]&0xFFFF | hi }
	}
	if k := unaryKernel(in.Op); k != nil {
		if in.Src1.IsImm {
			v := k(uint32(in.Src1.Imm))
			return func(*Sim) uint32 { return v }
		}
		r1 := in.Src1.Reg
		return func(s *Sim) uint32 { return k(s.Regs[r1]) }
	}
	k := binaryKernel(in.Op)
	switch {
	case !in.Src1.IsImm && !in.Src2.IsImm:
		r1, r2 := in.Src1.Reg, in.Src2.Reg
		return func(s *Sim) uint32 { return k(s.Regs[r1], s.Regs[r2]) }
	case !in.Src1.IsImm && in.Src2.IsImm:
		r1, b := in.Src1.Reg, uint32(in.Src2.Imm)
		return func(s *Sim) uint32 { return k(s.Regs[r1], b) }
	case in.Src1.IsImm && !in.Src2.IsImm:
		a, r2 := uint32(in.Src1.Imm), in.Src2.Reg
		return func(s *Sim) uint32 { return k(a, s.Regs[r2]) }
	default:
		v := k(uint32(in.Src1.Imm), uint32(in.Src2.Imm))
		return func(*Sim) uint32 { return v }
	}
}
