package gdbstub

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/tc32asm"
)

const debugProgram = `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	movi	d0, 0
	movi	d1, 5
loop:	addi	d0, d0, 10	; <- mid-block breakpoint target
	addi	d0, d0, 3
	addi	d1, d1, -1
	jnz	d1, loop
	st.w	d0, 0(a15)
	halt
`

func buildELF(t *testing.T) *elf32.File {
	t.Helper()
	f, err := tc32asm.Assemble(debugProgram)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// midBlockAddr returns the address of the first addi in the loop (a
// mid-block instruction: the block starts at the loop label).
func midBlockAddr(t *testing.T, f *elf32.File) uint32 {
	sym, ok := f.Symbol("loop")
	if !ok {
		t.Fatal("no loop symbol")
	}
	return sym.Value + 4 // second instruction of the block
}

func TestISSTargetStepAndRegs(t *testing.T) {
	f := buildELF(t)
	sim, err := iss.New(f, iss.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tgt := &ISSTarget{Sim: sim}
	// movh.a + la(2 instructions) + movi d0 + movi d1 = 5 steps.
	for i := 0; i < 5; i++ {
		if err := tgt.Step(); err != nil {
			t.Fatal(err)
		}
	}
	regs, err := tgt.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs[1] != 5 { // d1 = 5
		t.Errorf("d1 = %d, want 5", regs[1])
	}
	if regs[32] != tgt.PC() {
		t.Errorf("pc mismatch")
	}
}

func TestDualTargetSingleStepsThroughBlock(t *testing.T) {
	f := buildELF(t)
	d, err := NewDualTarget(f, core.Level2)
	if err != nil {
		t.Fatal(err)
	}
	// Step one instruction at a time and watch d0 evolve: after the
	// first loop addi, d0 = 10; after the second, 13.
	seen := map[uint32]bool{}
	var d0AfterFirst, d0AfterSecond uint32
	loopAddr, _ := f.Symbol("loop")
	for i := 0; i < 40 && !d.Exited(); i++ {
		before := d.PC()
		if err := d.Step(); err != nil {
			t.Fatal(err)
		}
		seen[before] = true
		if before == loopAddr.Value && d0AfterFirst == 0 {
			regs, _ := d.Regs()
			d0AfterFirst = regs[0]
		}
		if before == loopAddr.Value+4 && d0AfterSecond == 0 {
			regs, _ := d.Regs()
			d0AfterSecond = regs[0]
		}
	}
	if d0AfterFirst != 10 {
		t.Errorf("d0 after first loop addi = %d, want 10", d0AfterFirst)
	}
	if d0AfterSecond != 13 {
		t.Errorf("d0 after second loop addi = %d, want 13", d0AfterSecond)
	}
	if !seen[loopAddr.Value+4] {
		t.Error("single-step never paused at the mid-block instruction")
	}
}

func TestDualTargetMidBlockBreakpoint(t *testing.T) {
	f := buildELF(t)
	d, err := NewDualTarget(f, core.Level2)
	if err != nil {
		t.Fatal(err)
	}
	bp := midBlockAddr(t, f)
	bps := map[uint32]bool{bp: true}
	hits := 0
	for hits < 3 {
		running, err := d.Continue(bps)
		if err != nil {
			t.Fatal(err)
		}
		if !running {
			t.Fatalf("program exited after %d hits", hits)
		}
		if d.PC() != bp {
			t.Fatalf("stopped at %#x, want breakpoint %#x", d.PC(), bp)
		}
		hits++
		// d0 at hit k: after k-1 full iterations plus the first addi...
		// first hit: d0 = 10 (first addi executed? no: breakpoint is
		// BEFORE executing the instruction at bp). At first hit one
		// loop addi has run: d0 = 10.
		regs, _ := d.Regs()
		want := uint32(10 + (hits-1)*13)
		if regs[0] != want {
			t.Errorf("hit %d: d0 = %d, want %d", hits, regs[0], want)
		}
		if err := d.Step(); err != nil { // step off the breakpoint
			t.Fatal(err)
		}
	}
}

func TestDualTargetRunsToCompletion(t *testing.T) {
	f := buildELF(t)
	d, err := NewDualTarget(f, core.Level2)
	if err != nil {
		t.Fatal(err)
	}
	running, err := d.Continue(map[uint32]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if running {
		t.Fatal("expected program exit")
	}
	// 5 iterations × 13 = 65.
	if got := d.System().Output; len(got) != 1 || got[0] != 65 {
		t.Errorf("output = %v, want [65]", got)
	}
	if d.System().Stats().GeneratedCycles == 0 {
		t.Error("debug run should still generate cycles")
	}
}

// rspClient is a minimal RSP client for protocol tests.
type rspClient struct {
	t *testing.T
	c net.Conn
	r *bufio.Reader
}

func dialStub(t *testing.T, tgt Target) *rspClient {
	t.Helper()
	a, b := net.Pipe()
	srv := NewServer(tgt)
	go srv.Serve(a) //nolint:errcheck
	return &rspClient{t: t, c: b, r: bufio.NewReader(b)}
}

func (c *rspClient) cmd(payload string) string {
	c.t.Helper()
	var sum byte
	for i := 0; i < len(payload); i++ {
		sum += payload[i]
	}
	fmt.Fprintf(c.c, "$%s#%02x", payload, sum)
	// Read ack then response.
	for {
		b, err := c.r.ReadByte()
		if err != nil {
			c.t.Fatal(err)
		}
		if b == '$' {
			var resp []byte
			for {
				b, err := c.r.ReadByte()
				if err != nil {
					c.t.Fatal(err)
				}
				if b == '#' {
					break
				}
				resp = append(resp, b)
			}
			var csum [2]byte
			if _, err := c.r.Read(csum[:]); err != nil {
				c.t.Fatal(err)
			}
			return string(resp)
		}
	}
}

func TestRSPSessionAgainstISS(t *testing.T) {
	f := buildELF(t)
	sim, err := iss.New(f, iss.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl := dialStub(t, &ISSTarget{Sim: sim})

	if got := cl.cmd("qSupported:foo"); !strings.Contains(got, "PacketSize") {
		t.Errorf("qSupported = %q", got)
	}
	if got := cl.cmd("?"); got != "S05" {
		t.Errorf("? = %q", got)
	}
	// Set a breakpoint at the loop label and continue.
	loop, _ := f.Symbol("loop")
	if got := cl.cmd(fmt.Sprintf("Z0,%x,4", loop.Value)); got != "OK" {
		t.Errorf("Z0 = %q", got)
	}
	if got := cl.cmd("c"); got != "S05" {
		t.Errorf("c = %q", got)
	}
	// Read all registers; d1 (reg 1) must be 5.
	g := cl.cmd("g")
	if len(g) < 8*NumRegs {
		t.Fatalf("g reply too short: %d", len(g))
	}
	d1 := leHex32(t, g[8:16])
	if d1 != 5 {
		t.Errorf("d1 = %d, want 5", d1)
	}
	// Read pc (reg 32) via p.
	pc := leHex32(t, cl.cmd("p20"))
	if pc != loop.Value {
		t.Errorf("pc = %#x, want %#x", pc, loop.Value)
	}
	// Single step.
	if got := cl.cmd("s"); got != "S05" {
		t.Errorf("s = %q", got)
	}
	// Write then read a register: set d5 = 0xdeadbeef.
	if got := cl.cmd("P5=efbeadde"); got != "OK" {
		t.Errorf("P = %q", got)
	}
	if v := leHex32(t, cl.cmd("p5")); v != 0xdeadbeef {
		t.Errorf("d5 = %#x", v)
	}
	// Memory write/read round trip in RAM.
	if got := cl.cmd("M10000000,4:2a000000"); got != "OK" {
		t.Errorf("M = %q", got)
	}
	if got := cl.cmd("m10000000,4"); got != "2a000000" {
		t.Errorf("m = %q", got)
	}
	// Remove the breakpoint and run to exit.
	if got := cl.cmd(fmt.Sprintf("z0,%x,4", loop.Value)); got != "OK" {
		t.Errorf("z0 = %q", got)
	}
	if got := cl.cmd("c"); got != "W00" {
		t.Errorf("final c = %q", got)
	}
	cl.cmd("D")
}

func TestRSPSessionAgainstDualTarget(t *testing.T) {
	f := buildELF(t)
	d, err := NewDualTarget(f, core.Level2)
	if err != nil {
		t.Fatal(err)
	}
	cl := dialStub(t, d)
	bp := midBlockAddr(t, f)
	if got := cl.cmd(fmt.Sprintf("Z0,%x,4", bp)); got != "OK" {
		t.Fatalf("Z0 = %q", got)
	}
	if got := cl.cmd("c"); got != "S05" {
		t.Fatalf("c = %q", got)
	}
	if pc := leHex32(t, cl.cmd("p20")); pc != bp {
		t.Errorf("stopped at %#x, want %#x", pc, bp)
	}
	if got := cl.cmd("c"); got != "S05" {
		t.Fatalf("second c = %q", got)
	}
	if pc := leHex32(t, cl.cmd("p20")); pc != bp {
		t.Errorf("second stop at %#x, want %#x", pc, bp)
	}
	if got := cl.cmd(fmt.Sprintf("z0,%x,4", bp)); got != "OK" {
		t.Fatalf("z0 = %q", got)
	}
	if got := cl.cmd("c"); got != "W00" {
		t.Errorf("final c = %q", got)
	}
}

func leHex32(t *testing.T, s string) uint32 {
	t.Helper()
	if len(s) < 8 {
		t.Fatalf("hex too short: %q", s)
	}
	var v uint32
	for i := 0; i < 4; i++ {
		b, err := strconv.ParseUint(s[2*i:2*i+2], 16, 8)
		if err != nil {
			t.Fatal(err)
		}
		v |= uint32(b) << (8 * i)
	}
	return v
}

func TestRegNames(t *testing.T) {
	if regName(0) != "d0" || regName(26) != "sp(a10)" || regName(27) != "ra(a11)" || regName(32) != "pc" {
		t.Error("register naming wrong")
	}
}

// TestDualTargetFusedSystemSingleSteps pins the debugger's relationship
// with the superblock engine: the dual target's platform attaches the
// fused program (platform.New defaults to the fused compiled engine),
// but the stub drives the CPU packet-wise, which never enters fused
// dispatch — single-stepping is a forced deoptimization by
// construction. The observable contract: stepping and mid-block
// breakpoints behave identically to an interpreter-backed platform, and
// the program completes with the right output afterwards.
func TestDualTargetFusedSystemSingleSteps(t *testing.T) {
	f := buildELF(t)
	d, err := NewDualTarget(f, core.Level2)
	if err != nil {
		t.Fatal(err)
	}
	if !d.System().CPU.Fused() {
		t.Skip("debug image declined fusion — nothing to pin")
	}
	// Interleave: single-step twice, then continue to the mid-block
	// breakpoint, repeatedly. Compare d0 against the closed form.
	bp := midBlockAddr(t, f)
	bps := map[uint32]bool{bp: true}
	for hit := 1; hit <= 3; hit++ {
		running, err := d.Continue(bps)
		if err != nil {
			t.Fatal(err)
		}
		if !running || d.PC() != bp {
			t.Fatalf("hit %d: stopped at %#x (running=%v), want breakpoint %#x", hit, d.PC(), running, bp)
		}
		regs, _ := d.Regs()
		if want := uint32(10 + (hit-1)*13); regs[0] != want {
			t.Errorf("hit %d: d0 = %d, want %d", hit, regs[0], want)
		}
		for i := 0; i < 2; i++ { // resume by stepping off the breakpoint
			if err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	delete(bps, bp)
	if running, err := d.Continue(bps); err != nil || running {
		t.Fatalf("final continue: running=%v err=%v", running, err)
	}
	out := d.System().Output
	if len(out) != 1 || out[0] != 65 { // 5 iterations × 13
		t.Errorf("output = %v, want [65]", out)
	}
}
