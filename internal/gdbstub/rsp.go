package gdbstub

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Server speaks the GDB Remote Serial Protocol over a stream connection,
// backed by a Target. It implements the subset a stock gdb needs for the
// paper's debug flow: register and memory access, breakpoints, continue
// and single-step.
type Server struct {
	target Target
	bps    map[uint32]bool
	// Log, if non-nil, receives a line per handled packet.
	Log func(format string, args ...any)
}

// NewServer wraps a target.
func NewServer(t Target) *Server {
	return &Server{target: t, bps: map[uint32]bool{}}
}

// Serve handles one debug session on conn (blocking).
func (s *Server) Serve(conn io.ReadWriter) error {
	r := bufio.NewReader(conn)
	for {
		pkt, err := readPacket(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if pkt == "" { // ack or keepalive
			continue
		}
		if _, err := conn.Write([]byte("+")); err != nil {
			return err
		}
		resp, done := s.handle(pkt)
		if err := writePacket(conn, resp); err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// ListenAndServe accepts one connection at a time on addr.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer l.Close()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		err = s.Serve(conn)
		conn.Close()
		if err != nil {
			return err
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

// handle processes one RSP packet, returning the reply and whether the
// session is over.
func (s *Server) handle(pkt string) (string, bool) {
	s.logf("gdb <- %s", pkt)
	switch {
	case pkt == "?":
		return "S05", false
	case strings.HasPrefix(pkt, "qSupported"):
		return "PacketSize=4000", false
	case pkt == "qAttached":
		return "1", false
	case strings.HasPrefix(pkt, "qC"), strings.HasPrefix(pkt, "H"):
		return "OK", false
	case pkt == "g":
		regs, err := s.target.Regs()
		if err != nil {
			return "E01", false
		}
		var b strings.Builder
		for _, v := range regs {
			fmt.Fprintf(&b, "%02x%02x%02x%02x", byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return b.String(), false
	case strings.HasPrefix(pkt, "G"):
		data, err := hex.DecodeString(pkt[1:])
		if err != nil || len(data) < 4*NumRegs {
			return "E02", false
		}
		for i := 0; i < NumRegs; i++ {
			v := uint32(data[4*i]) | uint32(data[4*i+1])<<8 | uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
			if err := s.target.SetReg(i, v); err != nil {
				return "E02", false
			}
		}
		return "OK", false
	case strings.HasPrefix(pkt, "p"):
		n, err := strconv.ParseUint(pkt[1:], 16, 32)
		if err != nil || n >= NumRegs {
			return "E03", false
		}
		regs, err := s.target.Regs()
		if err != nil {
			return "E03", false
		}
		v := regs[n]
		return fmt.Sprintf("%02x%02x%02x%02x", byte(v), byte(v>>8), byte(v>>16), byte(v>>24)), false
	case strings.HasPrefix(pkt, "P"):
		parts := strings.SplitN(pkt[1:], "=", 2)
		if len(parts) != 2 {
			return "E04", false
		}
		n, err := strconv.ParseUint(parts[0], 16, 32)
		if err != nil || n >= NumRegs {
			return "E04", false
		}
		data, err := hex.DecodeString(parts[1])
		if err != nil || len(data) != 4 {
			return "E04", false
		}
		v := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		if err := s.target.SetReg(int(n), v); err != nil {
			return "E04", false
		}
		return "OK", false
	case strings.HasPrefix(pkt, "m"):
		addr, length, ok := parseAddrLen(pkt[1:])
		if !ok || length > 0x1000 {
			return "E05", false
		}
		buf := make([]byte, length)
		if err := s.target.ReadMem(addr, buf); err != nil {
			return "E05", false
		}
		return hex.EncodeToString(buf), false
	case strings.HasPrefix(pkt, "M"):
		head, data, ok := strings.Cut(pkt[1:], ":")
		if !ok {
			return "E06", false
		}
		addr, length, ok := parseAddrLen(head)
		if !ok {
			return "E06", false
		}
		raw, err := hex.DecodeString(data)
		if err != nil || uint32(len(raw)) != length {
			return "E06", false
		}
		if err := s.target.WriteMem(addr, raw); err != nil {
			return "E06", false
		}
		return "OK", false
	case strings.HasPrefix(pkt, "Z0"), strings.HasPrefix(pkt, "z0"):
		parts := strings.Split(pkt, ",")
		if len(parts) < 2 {
			return "E07", false
		}
		addr, err := strconv.ParseUint(parts[1], 16, 32)
		if err != nil {
			return "E07", false
		}
		if pkt[0] == 'Z' {
			s.bps[uint32(addr)] = true
			s.logf("breakpoint set at %#x", addr)
		} else {
			delete(s.bps, uint32(addr))
			s.logf("breakpoint cleared at %#x", addr)
		}
		return "OK", false
	case pkt == "s" || strings.HasPrefix(pkt, "s"):
		if err := s.target.Step(); err != nil {
			return "E08", false
		}
		return "S05", false
	case pkt == "c" || strings.HasPrefix(pkt, "c"):
		// Stepping off a breakpoint we are currently stopped on.
		if s.bps[s.target.PC()] {
			if err := s.target.Step(); err != nil {
				return "E09", false
			}
		}
		running, err := s.target.Continue(s.bps)
		if err != nil {
			return "E09", false
		}
		if !running {
			return "W00", false
		}
		return "S05", false
	case pkt == "D":
		return "OK", true
	case pkt == "k":
		return "", true
	}
	s.logf("unsupported packet %q", pkt)
	return "", false
}

func parseAddrLen(s string) (addr, length uint32, ok bool) {
	a, l, found := strings.Cut(s, ",")
	if !found {
		return 0, 0, false
	}
	av, err1 := strconv.ParseUint(a, 16, 32)
	lv, err2 := strconv.ParseUint(l, 16, 32)
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return uint32(av), uint32(lv), true
}

// readPacket reads one $...#xx RSP frame, returning its payload.
func readPacket(r *bufio.Reader) (string, error) {
	for {
		c, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		switch c {
		case '$':
			var payload []byte
			var sum byte
			for {
				c, err := r.ReadByte()
				if err != nil {
					return "", err
				}
				if c == '#' {
					break
				}
				sum += c
				payload = append(payload, c)
			}
			var csum [2]byte
			if _, err := io.ReadFull(r, csum[:]); err != nil {
				return "", err
			}
			want, err := strconv.ParseUint(string(csum[:]), 16, 8)
			if err != nil || byte(want) != sum {
				return "", fmt.Errorf("gdbstub: checksum mismatch")
			}
			return string(payload), nil
		case '+', '-', 3: // acks and interrupt
			continue
		default:
			// skip noise
		}
	}
}

// writePacket frames and sends payload.
func writePacket(w io.Writer, payload string) error {
	var sum byte
	for i := 0; i < len(payload); i++ {
		sum += payload[i]
	}
	_, err := fmt.Fprintf(w, "$%s#%02x", payload, sum)
	return err
}
