// Package gdbstub implements debugging of cycle-annotated translated code
// (Section 3.5 of the paper): a GDB Remote Serial Protocol server backed
// by a dual-translation harness. The debug image contains two
// translations of the program — a basic-block-oriented one (fast, cycle
// generation per block, breakpoints at block starts) and an
// instruction-oriented one (cycle generation per instruction) used to
// single-step to break points in the middle of a block. The stub also
// translates register names and addresses between the source and target
// worlds, as the paper requires.
package gdbstub

import (
	"fmt"

	"repro/internal/iss"
	"repro/internal/tc32"
)

// NumRegs is the size of the TC32 GDB register file: d0..d15, a0..a15, pc.
const NumRegs = 33

// Target is the debug view of an execution engine. Addresses and
// registers are in the source (TC32) world.
type Target interface {
	// Regs returns d0..d15, a0..a15, pc.
	Regs() ([NumRegs]uint32, error)
	// SetReg writes one register (index as in Regs).
	SetReg(n int, v uint32) error
	// ReadMem reads source memory.
	ReadMem(addr uint32, buf []byte) error
	// WriteMem writes source memory.
	WriteMem(addr uint32, data []byte) error
	// Step executes one source instruction.
	Step() error
	// Continue runs until a breakpoint or program exit; it reports
	// whether the program is still running (false = exited).
	Continue(breakpoints map[uint32]bool) (running bool, err error)
	// PC returns the current source program counter.
	PC() uint32
}

// ISSTarget adapts the reference simulator to the Target interface (used
// for debugging unannotated code and as the protocol test oracle).
type ISSTarget struct {
	Sim *iss.Sim
}

// Regs implements Target.
func (t *ISSTarget) Regs() ([NumRegs]uint32, error) {
	var r [NumRegs]uint32
	copy(r[0:16], t.Sim.Arch.D[:])
	copy(r[16:32], t.Sim.Arch.A[:])
	r[32] = t.Sim.Arch.PC
	return r, nil
}

// SetReg implements Target.
func (t *ISSTarget) SetReg(n int, v uint32) error {
	switch {
	case n < 16:
		t.Sim.Arch.D[n] = v
	case n < 32:
		t.Sim.Arch.A[n-16] = v
	case n == 32:
		t.Sim.Arch.PC = v
	default:
		return fmt.Errorf("gdbstub: register %d out of range", n)
	}
	return nil
}

// ReadMem implements Target.
func (t *ISSTarget) ReadMem(addr uint32, buf []byte) error {
	for i := range buf {
		v, err := t.Sim.Arch.Mem.Read(0, addr+uint32(i), 1, 0)
		if err != nil {
			return err
		}
		buf[i] = byte(v)
	}
	return nil
}

// WriteMem implements Target.
func (t *ISSTarget) WriteMem(addr uint32, data []byte) error {
	for i, b := range data {
		if err := t.Sim.Arch.Mem.Write(0, addr+uint32(i), uint32(b), 1, 0); err != nil {
			return err
		}
	}
	return nil
}

// Step implements Target.
func (t *ISSTarget) Step() error {
	if t.Sim.Arch.Halted {
		return nil
	}
	return t.Sim.Step()
}

// Continue implements Target.
func (t *ISSTarget) Continue(bps map[uint32]bool) (bool, error) {
	for !t.Sim.Arch.Halted {
		if err := t.Sim.Step(); err != nil {
			return false, err
		}
		if bps[t.Sim.Arch.PC] {
			return true, nil
		}
	}
	return false, nil
}

// PC implements Target.
func (t *ISSTarget) PC() uint32 { return t.Sim.Arch.PC }

var _ Target = (*ISSTarget)(nil)

// regName translates a GDB register index to its source-world name.
func regName(n int) string {
	switch {
	case n < 16:
		return fmt.Sprintf("d%d", n)
	case n == 16+tc32.SP:
		return "sp(a10)"
	case n == 16+tc32.RA:
		return "ra(a11)"
	case n < 32:
		return fmt.Sprintf("a%d", n-16)
	}
	return "pc"
}
