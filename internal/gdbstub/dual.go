package gdbstub

import (
	"fmt"
	"sort"

	"repro/internal/c6x"
	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/platform"
)

// DualTarget debugs a translated program using the paper's two
// translations: it runs the block-oriented code for speed, and switches to
// the instruction-oriented code (one cycle region per instruction) to
// reach break points inside a basic block and to single-step. Both
// translations live in one combined program, so machine state (registers,
// memory, sync device) is shared; the harness only moves the packet PC
// between the two translation images at source-block boundaries, where
// their register mappings agree.
type DualTarget struct {
	sys *platform.System
	bb  *core.Program
	ins *core.Program
	off int // packet offset of the instruction-oriented image

	// srcPC is the current source address (the program is always paused
	// at a region boundary of one of the two images).
	srcPC   uint32
	exited  bool
	regions map[int]uint32 // combined packet index -> source addr (both images)
	// blockOf maps a source address to its enclosing block-oriented
	// region (start, end).
	blocks []core.BlockInfo
}

// NewDualTarget translates f twice (block- and instruction-oriented) at
// the given detail level and prepares the debug platform.
func NewDualTarget(f *elf32.File, level core.Level) (*DualTarget, error) {
	bb, err := core.Translate(f, core.Options{Level: level})
	if err != nil {
		return nil, err
	}
	ins, err := core.Translate(f, core.Options{Level: level, InstructionOriented: true})
	if err != nil {
		return nil, err
	}
	off := core.Merge(bb, ins)
	sys := platform.New(bb)
	if text := f.Section(".text"); text != nil {
		sys.SetText(text.Addr, text.Data)
	}
	d := &DualTarget{
		sys: sys, bb: bb, ins: ins, off: off,
		srcPC:   f.Entry,
		regions: map[int]uint32{},
	}
	for pkt, src := range bb.SrcOfPacket {
		d.regions[pkt] = src
	}
	for pkt, src := range ins.SrcOfPacket {
		d.regions[pkt+off] = src
	}
	d.blocks = append(d.blocks, bb.Blocks...)
	sort.Slice(d.blocks, func(i, j int) bool { return d.blocks[i].SrcStart < d.blocks[j].SrcStart })
	// Execute the prologue (reserved-register setup) so the debuggee is
	// paused at its entry region with a fully initialized platform.
	src, err := d.runUntilRegion()
	if err != nil {
		return nil, err
	}
	d.srcPC = src
	return d, nil
}

// System exposes the underlying platform (for inspecting cycle counts).
func (d *DualTarget) System() *platform.System { return d.sys }

// Exited reports whether the program has halted.
func (d *DualTarget) Exited() bool { return d.exited }

// Regs implements Target, translating the fixed register binding back to
// source names: A0..A15 = d0..d15, B0..B15 = a0..a15.
func (d *DualTarget) Regs() ([NumRegs]uint32, error) {
	var r [NumRegs]uint32
	for i := 0; i < 16; i++ {
		r[i] = d.sys.CPU.Reg(c6x.A(i))
		r[16+i] = d.sys.CPU.Reg(c6x.B(i))
	}
	r[32] = d.srcPC
	return r, nil
}

// SetReg implements Target.
func (d *DualTarget) SetReg(n int, v uint32) error {
	switch {
	case n < 16:
		d.sys.CPU.SetReg(c6x.A(n), v)
	case n < 32:
		d.sys.CPU.SetReg(c6x.B(n-16), v)
	case n == 32:
		// Setting the PC re-targets execution to a region boundary.
		d.srcPC = v
	default:
		return fmt.Errorf("gdbstub: register %d out of range", n)
	}
	return nil
}

// ReadMem implements Target (source data addresses map identically on the
// platform).
func (d *DualTarget) ReadMem(addr uint32, buf []byte) error {
	for i := range buf {
		v, _, err := d.sys.Load(addr+uint32(i), 1, d.sys.CPU.Cycle())
		if err != nil {
			return err
		}
		buf[i] = byte(v)
	}
	return nil
}

// WriteMem implements Target.
func (d *DualTarget) WriteMem(addr uint32, data []byte) error {
	for i, b := range data {
		if _, err := d.sys.Store(addr+uint32(i), uint32(b), 1, d.sys.CPU.Cycle()); err != nil {
			return err
		}
	}
	return nil
}

// PC implements Target.
func (d *DualTarget) PC() uint32 { return d.srcPC }

// runUntilRegion advances the CPU packet-wise until it pauses at any
// region-start packet (of either image) or the program halts. Runtime
// routine packets and mid-region packets pass through transparently.
func (d *DualTarget) runUntilRegion() (uint32, error) {
	for {
		if d.sys.CPU.Halted() {
			d.exited = true
			return d.srcPC, nil
		}
		if err := d.sys.CPU.Step(); err != nil {
			return 0, err
		}
		if src, ok := d.regions[d.sys.CPU.PC()]; ok {
			return src, nil
		}
	}
}

// Step implements Target: executes exactly one source instruction using
// the instruction-oriented image.
func (d *DualTarget) Step() error {
	if d.exited {
		return nil
	}
	pkt, ok := d.ins.PacketOfSrc[d.srcPC]
	if !ok {
		return fmt.Errorf("gdbstub: no instruction-oriented region at %#x", d.srcPC)
	}
	d.sys.CPU.SetPC(pkt + d.off)
	src, err := d.runUntilRegion()
	if err != nil {
		return err
	}
	d.srcPC = src
	return nil
}

// blockContaining returns the block-oriented region covering addr.
func (d *DualTarget) blockContaining(addr uint32) (core.BlockInfo, bool) {
	i := sort.Search(len(d.blocks), func(i int) bool { return d.blocks[i].SrcStart > addr })
	if i == 0 {
		return core.BlockInfo{}, false
	}
	b := d.blocks[i-1]
	if addr >= b.SrcStart && addr < b.SrcEnd {
		return b, true
	}
	return core.BlockInfo{}, false
}

// Continue implements Target: run the block-oriented image from block
// boundary to block boundary; when entering a block that contains a
// breakpoint, switch to the instruction-oriented image and single-step to
// the precise address (the paper's mechanism).
func (d *DualTarget) Continue(bps map[uint32]bool) (bool, error) {
	if d.exited {
		return false, nil
	}
	for {
		// Mid-block position (e.g. just stepped off a breakpoint): use
		// the instruction-oriented image until the next block boundary.
		if _, atBlock := d.bb.PacketOfSrc[d.srcPC]; !atBlock {
			if bps[d.srcPC] {
				return true, nil
			}
			if err := d.Step(); err != nil {
				return false, err
			}
			if d.exited {
				return false, nil
			}
			continue
		}
		// If a breakpoint lies within the current block ahead of us,
		// approach it instruction by instruction.
		if blk, ok := d.blockContaining(d.srcPC); ok {
			inBlock := false
			for bp := range bps {
				if bp >= d.srcPC && bp < blk.SrcEnd {
					inBlock = true
				}
			}
			if inBlock {
				for {
					if bps[d.srcPC] {
						return true, nil
					}
					if err := d.Step(); err != nil {
						return false, err
					}
					if d.exited {
						return false, nil
					}
					cur, ok := d.blockContaining(d.srcPC)
					if !ok || cur.SrcStart != blk.SrcStart {
						break // left the block without hitting it
					}
				}
				continue
			}
		}
		// Fast path: run the block-oriented image one region.
		pkt, ok := d.bb.PacketOfSrc[d.srcPC]
		if !ok {
			return false, fmt.Errorf("gdbstub: no block-oriented region at %#x", d.srcPC)
		}
		d.sys.CPU.SetPC(pkt)
		src, err := d.runUntilRegion()
		if err != nil {
			return false, err
		}
		d.srcPC = src
		if d.exited {
			return false, nil
		}
		if bps[d.srcPC] {
			return true, nil
		}
	}
}

var _ Target = (*DualTarget)(nil)
