package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Labels is an ordered label set. Order is preserved in the exposition
// (callers pass them already grouped, e.g. {"tier","memory"}).
type Labels []Label

// Label is one name="value" pair.
type Label struct{ Key, Value string }

// L builds a label set from alternating key, value strings.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs.L: odd key/value list")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{kv[i], kv[i+1]})
	}
	return ls
}

// render writes {k="v",...} (empty string for no labels). extra, when
// non-empty, is appended as a final pair (histogram "le").
func (ls Labels) render(extra ...Label) string {
	all := append(append(Labels(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (ls Labels) key() string { return ls.render() }

// Counter is a monotonically increasing value. Updates are single
// atomic adds: allocation-free and safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// meaningful; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Observe is allocation-free:
// a binary search over the bucket bounds plus three atomic adds.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// DurationBuckets is the default latency bucket layout (seconds):
// 10 µs .. ~100 s, multiplicative steps of 10^(1/2).
var DurationBuckets = []float64{
	1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3,
	1e-2, 3.16e-2, 1e-1, 3.16e-1, 1, 3.16, 10, 31.6, 100,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Lowest bucket whose bound is >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a CAS-looped float64 accumulator (histogram sums are
// far off the per-cycle hot path, so contention is irrelevant).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// series is one (labels, value source) of a family.
type series struct {
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	s      *StripedCounter
	fn     func() float64
}

// family is all series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind
	// order preserves registration order; byLabel deduplicates.
	order   []*series
	byLabel map[string]*series
}

// Registry holds metric families. Creation takes the registry lock;
// updates touch only the returned metric.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at exposition
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

// Default is the process-global registry every subsystem registers
// into; GET /v1/metrics exposes it.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) series(labels Labels) (*series, bool) {
	k := labels.key()
	if s, ok := f.byLabel[k]; ok {
		return s, true
	}
	s := &series{labels: labels}
	f.byLabel[k] = s
	f.order = append(f.order, s)
	return s, false
}

// Counter returns (creating on first use) the counter name{labels...}.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindCounter).series(L(labels...))
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge returns (creating on first use) the gauge name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindGauge).series(L(labels...))
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram returns (creating on first use) the histogram
// name{labels...} with the given bucket upper bounds (nil =
// DurationBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindHistogram).series(L(labels...))
	if !ok {
		s.h = &Histogram{bounds: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
	}
	return s.h
}

// Striped returns (creating on first use) a striped counter — for
// counters several goroutines bump concurrently on simulation paths.
func (r *Registry) Striped(name, help string, labels ...string) *StripedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, KindCounter).series(L(labels...))
	if !ok {
		s.s = newStripedCounter()
	}
	return s.s
}

// Func registers a metric whose value is sampled from fn at exposition
// time — the bridge for values another subsystem already maintains
// (queue depth, store bytes). Re-registering the same (name, labels)
// replaces the closure, so a restarting component stays current.
func (r *Registry) Func(name, help string, kind Kind, fn func() float64, labels ...string) {
	if kind == KindHistogram {
		panic("obs: Func histograms are not supported")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.family(name, help, kind).series(L(labels...))
	s.fn = fn
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (0.0.4): families sorted by name, HELP and TYPE
// headers, histogram series as cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sort.Strings(r.names)
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.order {
			switch {
			case s.h != nil:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labels.render(Label{"le", formatBound(bound)}), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, s.labels.render(Label{"le", "+Inf"}), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels.render(), formatValue(s.h.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels.render(), s.h.Count())
			case s.fn != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels.render(), formatValue(s.fn()))
			case s.c != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels.render(), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels.render(), s.g.Value())
			case s.s != nil:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels.render(), s.s.Value())
			}
		}
	}
}

// formatValue renders a float without exponent noise for integral
// values (Prometheus accepts both; integral reads better and keeps the
// legacy "name value" lines byte-compatible for integer counters).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func formatBound(v float64) string { return fmt.Sprintf("%g", v) }
