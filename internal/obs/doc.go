// Package obs is the telemetry subsystem of the simulation stack: a
// process-global registry of counters, gauges and histograms, span-style
// stage timing, and a bounded ring-buffer event trace — all designed so
// the simulation hot paths pay nothing when telemetry is not being
// observed, and nothing they could observe even when it is.
//
// # Registry
//
// Metrics live in a Registry (usually the package-level Default). A
// metric is created once — Counter/Gauge/Histogram are idempotent
// get-or-create calls keyed on (name, labels) — and then updated with
// plain atomic operations: no allocation, no locks, no map lookups on
// the update path. Code that updates a metric holds the returned
// pointer in a package-level var. Contended counters (several worker
// goroutines bumping the same name) can use StripedCounter, which
// spreads the atomic adds over cache-line-padded cells.
//
// Values that another subsystem already maintains (the work queue's
// depth, the store's object count) are exposed without double counting
// through Func metrics: a closure sampled only at exposition time.
//
// Registry.WritePrometheus renders everything in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, sorted families,
// sorted label sets, histograms as cumulative _bucket/_sum/_count
// series. GET /v1/metrics on cabt-serve is exactly this.
//
// # Tracing
//
// The Tracer is a bounded ring buffer of trace events — quantum
// boundaries, speculative commit/rollback decisions and their causes,
// IRQ deliveries, pipeline stages — kept in memory and dumped on demand
// as Chrome trace_event JSON (chrome://tracing, Perfetto). Emission is
// gated on a single atomic load: with tracing disabled (the default),
// instrumented code performs one predictable branch and touches nothing
// else. The buffer is bounded; when full, the oldest events are
// overwritten, so a trace of an arbitrarily long run costs O(capacity).
//
// Simulation events are timestamped on the *emulated* clock (1 trace
// microsecond = 1 source cycle), which makes simulation traces
// deterministic: two runs of the same deterministic workload produce the
// same trace. Host-side pipeline events (assemble/translate/execute
// spans in the farm) use wall time since the tracer was enabled.
//
// # Determinism
//
// Telemetry strictly observes: it reads clocks and counters but never
// feeds a value back into simulation state, so enabling any of it —
// including full tracing — cannot change a simulation result. The CI
// obs-smoke job byte-diffs a traced against an untraced `cabt-soc -det
// -parallel` run to keep this true.
package obs
