package obs

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// stripe is one cache-line-padded counter cell: 64 bytes so neighboring
// cells never share a line (the point of striping).
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// StripedCounter spreads atomic adds over multiple cache lines, for
// counters that many simulation goroutines bump concurrently (per-core
// SoC lanes, farm workers). Pure Go has no per-CPU storage, so the cell
// is picked from the address of a caller stack slot — stable per
// goroutine, distinct across goroutines — which removes the shared-line
// ping-pong that a single atomic would suffer.
type StripedCounter struct {
	cells []stripe
	mask  uintptr
}

func newStripedCounter() *StripedCounter {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return &StripedCounter{cells: make([]stripe, n), mask: uintptr(n - 1)}
}

// Add adds n to one of the cells. Allocation-free.
func (s *StripedCounter) Add(n int64) {
	var probe byte
	// Goroutine stacks are at least 1 KiB apart; fold the middle bits of
	// the slot address into the cell index.
	idx := (uintptr(unsafe.Pointer(&probe)) >> 10) & s.mask
	s.cells[idx].v.Add(n)
}

// Inc adds one.
func (s *StripedCounter) Inc() { s.Add(1) }

// Value sums the cells.
func (s *StripedCounter) Value() int64 {
	var t int64
	for i := range s.cells {
		t += s.cells[i].v.Load()
	}
	return t
}
