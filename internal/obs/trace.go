package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event phases (the Chrome trace_event subset the tracer emits).
const (
	PhaseComplete = 'X' // a span: TS..TS+Dur
	PhaseInstant  = 'i' // a point event
	PhaseCounter  = 'C' // a sampled counter value (Val)
)

// Event is one trace record. Args are a fixed-size inline array so
// emitting an event allocates nothing beyond the ring slot it already
// owns.
type Event struct {
	Name string // what happened ("quantum", "commit", "irq", ...)
	Cat  string // event category ("soc", "farm", "dist")
	Ph   byte   // PhaseComplete | PhaseInstant | PhaseCounter
	TS   int64  // microseconds; simulation events use 1 µs = 1 source cycle
	Dur  int64  // span length (PhaseComplete only)
	TID  int64  // row: core index for per-core events, -1 for the scheduler
	Args [3]Arg // up to 3 integer arguments; unused entries have Key ""
}

// Arg is one integer event argument.
type Arg struct {
	Key string
	Val int64
}

// Tracer is a bounded ring buffer of events. Emission is mutex-guarded
// (events are per-quantum / per-job, not per-cycle) and gated on an
// atomic enabled flag so disabled tracing costs one load and a branch.
type Tracer struct {
	enabled atomic.Bool

	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever emitted
	start time.Time
}

// NewTracer builds a tracer with the given ring capacity (<=0 selects
// 65536 events). It starts disabled.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Trace is the process-global tracer (-trace-out enables it).
var Trace = NewTracer(0)

// Enabled reports whether the tracer is recording. Instrumented code
// checks this before building an Event, so disabled tracing has no
// other cost.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// SetEnabled switches recording on or off. Enabling (re)stamps the
// wall-clock origin used by Now.
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	if on {
		t.start = time.Now()
	}
	t.mu.Unlock()
	t.enabled.Store(on)
}

// Now returns the wall-clock timestamp (µs since enable) for host-side
// events. Simulation events pass their own emulated-clock timestamps
// instead.
func (t *Tracer) Now() int64 {
	t.mu.Lock()
	s := t.start
	t.mu.Unlock()
	return time.Since(s).Microseconds()
}

// Span opens a wall-clock span for a host-side pipeline stage and
// returns the closure that ends it. Disabled tracing returns a shared
// no-op, so the call costs one atomic load.
func (t *Tracer) Span(name, cat string, tid int64) (end func()) {
	if !t.enabled.Load() {
		return nopEnd
	}
	start := t.Now()
	return func() {
		t.Emit(Event{
			Name: name, Cat: cat, Ph: PhaseComplete,
			TS: start, Dur: t.Now() - start, TID: tid,
		})
	}
}

var nopEnd = func() {}

// Emit records one event (dropped when disabled; callers on hot paths
// should check Enabled first to skip even building the Event).
func (t *Tracer) Emit(e Event) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = e
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently held (bounded by
// capacity).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.buf)) {
		return int(t.next)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next <= uint64(len(t.buf)) {
		return 0
	}
	return int64(t.next - uint64(len(t.buf)))
}

// Events returns the retained events, oldest first (a copy).
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	c := uint64(len(t.buf))
	if n <= c {
		return append([]Event(nil), t.buf[:n]...)
	}
	out := make([]Event, 0, c)
	for i := n - c; i < n; i++ {
		out = append(out, t.buf[i%c])
	}
	return out
}

// Reset discards all retained events (the enabled flag is unchanged).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.next = 0
	t.mu.Unlock()
}

// chromeEvent is the trace_event JSON wire form.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur,omitempty"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	S    string           `json:"s,omitempty"` // instant scope
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChrome dumps the retained events as Chrome trace_event JSON
// (object form, {"traceEvents": [...]}) — loadable in chrome://tracing
// and Perfetto. Events come out oldest first.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	for _, e := range t.Events() {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: string(rune(e.Ph)),
			TS: e.TS, Dur: e.Dur, PID: 0, TID: e.TID,
		}
		if e.Ph == PhaseInstant {
			ce.S = "t" // thread scope: render on the emitting row
		}
		for _, a := range e.Args {
			if a.Key == "" {
				continue
			}
			if ce.Args == nil {
				ce.Args = map[string]int64{}
			}
			ce.Args[a.Key] = a.Val
		}
		data, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeFile dumps the trace to path ("-" = stdout).
func (t *Tracer) WriteChromeFile(path string) error {
	if path == "-" {
		return t.WriteChrome(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace out: %w", err)
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace out: %w", err)
	}
	return f.Close()
}
