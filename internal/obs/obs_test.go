package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Idempotent get-or-create: same pointer back.
	if r.Counter("t_jobs_total", "jobs") != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("t_depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	// Same name with different labels is a distinct series.
	c2 := r.Counter("t_hits_total", "hits", "tier", "memory")
	c3 := r.Counter("t_hits_total", "hits", "tier", "disk")
	if c2 == c3 {
		t.Fatal("label sets collapsed into one series")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("t_x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.005+0.005+0.05+5; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`t_lat_seconds_bucket{le="0.001"} 1`,
		`t_lat_seconds_bucket{le="0.01"} 3`,
		`t_lat_seconds_bucket{le="0.1"} 4`,
		`t_lat_seconds_bucket{le="+Inf"} 5`,
		`t_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestStripedCounter(t *testing.T) {
	r := NewRegistry()
	s := r.Striped("t_striped_total", "striped")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Inc()
			}
		}()
	}
	wg.Wait()
	if s.Value() != 8000 {
		t.Fatalf("striped = %d, want 8000", s.Value())
	}
}

func TestUpdatesAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_c_total", "")
	g := r.Gauge("t_g", "")
	h := r.Histogram("t_h_seconds", "", nil)
	s := r.Striped("t_s_total", "")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.01)
		s.Add(2)
	}); n != 0 {
		t.Fatalf("metric updates allocate (%v allocs/op)", n)
	}
	// Disabled trace emission: the Enabled check is the entire cost.
	tr := NewTracer(16)
	if n := testing.AllocsPerRun(100, func() {
		if tr.Enabled() {
			tr.Emit(Event{Name: "x"})
		}
	}); n != 0 {
		t.Fatalf("disabled tracing allocates (%v allocs/op)", n)
	}
}

// parseProm is a strict-enough parser of the Prometheus text exposition
// format for round-trip validation: it checks name syntax, TYPE header
// presence and coherence, label syntax, and numeric values, returning
// sample name{labels} → value.
func parseProm(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	samples := map[string]float64{}
	types := map[string]string{}
	nameRE := `[a-zA-Z_:][a-zA-Z0-9_:]*`
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: bad TYPE header %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: bad metric type %q", ln+1, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, key)
			}
			name = key[:i]
			for _, pair := range splitLabels(key[i+1 : len(key)-1]) {
				eq := strings.IndexByte(pair, '=')
				if eq < 0 || !strings.HasPrefix(pair[eq+1:], `"`) || !strings.HasSuffix(pair, `"`) {
					t.Fatalf("line %d: bad label %q", ln+1, pair)
				}
			}
		}
		if ok, _ := regexpMatch(nameRE, name); !ok {
			t.Fatalf("line %d: bad metric name %q", ln+1, name)
		}
		// Histogram series (_bucket/_sum/_count) belong to the base family.
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && types[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %q has no TYPE header", ln+1, name)
		}
		samples[key] = val
	}
	return samples, types
}

func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func regexpMatch(pattern, s string) (bool, error) {
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false, nil
		}
	}
	return len(s) > 0, nil
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_jobs_total", "jobs run").Add(42)
	r.Counter("t_hits_total", "cache hits", "tier", "memory").Add(7)
	r.Counter("t_hits_total", "cache hits", "tier", "disk").Add(3)
	r.Gauge("t_depth", "queue depth").Set(5)
	r.Histogram("t_lat_seconds", "latency", []float64{0.01, 0.1}).Observe(0.05)
	r.Func("t_uptime_seconds", "uptime", KindGauge, func() float64 { return 12.5 })

	var b bytes.Buffer
	r.WritePrometheus(&b)
	samples, types := parseProm(t, b.String())

	want := map[string]float64{
		`t_jobs_total`:                    42,
		`t_hits_total{tier="memory"}`:     7,
		`t_hits_total{tier="disk"}`:       3,
		`t_depth`:                         5,
		`t_lat_seconds_bucket{le="0.01"}`: 0,
		`t_lat_seconds_bucket{le="0.1"}`:  1,
		`t_lat_seconds_bucket{le="+Inf"}`: 1,
		`t_lat_seconds_count`:             1,
		`t_uptime_seconds`:                12.5,
	}
	for k, v := range want {
		if samples[k] != v {
			t.Errorf("%s = %v, want %v", k, samples[k], v)
		}
	}
	wantTypes := map[string]string{
		"t_jobs_total": "counter", "t_hits_total": "counter",
		"t_depth": "gauge", "t_lat_seconds": "histogram",
		"t_uptime_seconds": "gauge",
	}
	for k, v := range wantTypes {
		if types[k] != v {
			t.Errorf("TYPE %s = %q, want %q", k, types[k], v)
		}
	}
}

func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.Func("t_v", "", KindGauge, func() float64 { return 1 })
	r.Func("t_v", "", KindGauge, func() float64 { return 2 })
	var b bytes.Buffer
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "t_v 2") {
		t.Fatalf("Func not replaced:\n%s", b.String())
	}
}

func TestTracerRingAndChromeDump(t *testing.T) {
	tr := NewTracer(4)
	tr.SetEnabled(true)
	for i := 0; i < 6; i++ {
		tr.Emit(Event{
			Name: "quantum", Cat: "soc", Ph: PhaseComplete,
			TS: int64(i * 10), Dur: 10, TID: -1,
			Args: [3]Arg{{"q", int64(i)}},
		})
	}
	if tr.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].TS != 20 || evs[3].TS != 50 {
		t.Fatalf("ring order wrong: first TS %d, last TS %d", evs[0].TS, evs[3].TS)
	}

	var b bytes.Buffer
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			TID  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome dump is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("dump has %d events, want 4", len(doc.TraceEvents))
	}
	e := doc.TraceEvents[0]
	if e.Name != "quantum" || e.Ph != "X" || e.TS != 20 || e.Dur != 10 || e.TID != -1 || e.Args["q"] != 2 {
		t.Fatalf("bad first event: %+v", e)
	}
}

func TestTracerDisabledDropsEvents(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{Name: "x"})
	if tr.Len() != 0 {
		t.Fatal("disabled tracer retained an event")
	}
	tr.SetEnabled(true)
	tr.Emit(Event{Name: "x"})
	tr.SetEnabled(false)
	tr.Emit(Event{Name: "y"})
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_esc_total", "", "path", "a\"b\\c\nd").Inc()
	var b bytes.Buffer
	r.WritePrometheus(&b)
	want := `t_esc_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("example_total", "an example").Add(3)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total an example
	// # TYPE example_total counter
	// example_total 3
}
