// Package cliutil holds the flag-handling helpers shared by the cabt
// command-line front-ends, so cabt-farm, cabt-soc and c6xrun cannot
// drift apart in how they open the persistent translation store or
// select the host-execution engine.
package cliutil

import (
	"repro/internal/platform"
	"repro/internal/simfarm"
	"repro/internal/simfarm/store"
)

// OpenTranslationCache opens the content-addressed store at dir (with
// an optional LRU byte budget) and returns a translation cache backed
// by it, plus the store's close (index flush) function. An empty dir
// returns (nil, no-op, nil): the caller's farm falls back to its
// private in-memory cache.
func OpenTranslationCache(dir string, budget int64) (*simfarm.TranslationCache, func() error, error) {
	if dir == "" {
		return nil, func() error { return nil }, nil
	}
	st, err := store.Open(dir, store.Options{MaxBytes: budget})
	if err != nil {
		return nil, nil, err
	}
	return simfarm.NewPersistentTranslationCache(st), st.Close, nil
}

// Engine maps the front-ends' -interp and -nofuse flags to the platform
// engine. -interp wins: the interpreter never fuses.
func Engine(interp, nofuse bool) platform.Engine {
	switch {
	case interp:
		return platform.EngineInterp
	case nofuse:
		return platform.EngineCompiledNoFuse
	}
	return platform.EngineCompiled
}
