package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/obs"
)

// LogFlags carries the shared -log-level / -log-json flag values, so
// every cabt front-end exposes the same logging knobs.
type LogFlags struct {
	Level string
	JSON  bool
}

// RegisterLogFlags registers -log-level and -log-json on the default
// FlagSet. Call Setup after flag.Parse.
func RegisterLogFlags() *LogFlags {
	lf := &LogFlags{}
	flag.StringVar(&lf.Level, "log-level", "info", "minimum log level (debug, info, warn, error)")
	flag.BoolVar(&lf.JSON, "log-json", false, "emit logs as JSON lines instead of text")
	return lf
}

// Setup installs the process-default slog logger on stderr per the
// parsed flags, tagging every record with the program name. Simulation
// output (tables, reports) stays on stdout and is unaffected.
func (lf *LogFlags) Setup(prog string) error {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(lf.Level)); err != nil {
		return fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", lf.Level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if lf.JSON {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	slog.SetDefault(slog.New(h).With("prog", prog))
	return nil
}

// RegisterTraceFlag registers the shared -trace-out flag.
func RegisterTraceFlag() *string {
	return flag.String("trace-out", "",
		"record a run trace and write it as Chrome trace_event JSON to this file on exit ('-' = stdout)")
}

// StartTrace enables the global tracer when -trace-out was given.
func StartTrace(path string) {
	if path != "" {
		obs.Trace.SetEnabled(true)
	}
}

// WriteTrace dumps the recorded trace to the -trace-out path; a no-op
// when tracing was never requested.
func WriteTrace(path string) error {
	if path == "" {
		return nil
	}
	if d := obs.Trace.Dropped(); d > 0 {
		slog.Warn("trace ring overflowed, oldest events dropped", "dropped", d)
	}
	return obs.Trace.WriteChromeFile(path)
}
