package soc

import (
	"fmt"

	"repro/internal/socbus"
)

// Arbitration selects the bus-arbitration policy of the SoC: the order
// cores are serviced within a quantum, which is the order same-cycle
// contenders win the shared bus.
type Arbitration int

// Arbitration policies.
const (
	// RoundRobin rotates the starting core every quantum, so no core has
	// standing priority over the bus.
	RoundRobin Arbitration = iota
	// FixedPriority always services cores in index order: core 0 wins
	// every tie.
	FixedPriority
)

// String names the policy.
func (a Arbitration) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	}
	return fmt.Sprintf("Arbitration(%d)", int(a))
}

// ArbitrationByName parses a policy name ("rr", "round-robin", "fixed",
// "fixed-priority").
func ArbitrationByName(s string) (Arbitration, bool) {
	switch s {
	case "rr", "round-robin":
		return RoundRobin, true
	case "fixed", "fixed-priority":
		return FixedPriority, true
	}
	return 0, false
}

// Arbiter serializes shared-bus transactions and charges contention
// wait-states. A transaction granted at cycle g occupies the bus until
// g+BusyCycles; a request arriving earlier waits until the bus frees and
// the wait is charged to the requesting core.
type Arbiter struct {
	// BusyCycles is the bus occupancy of one transaction.
	BusyCycles int64

	busyUntil int64
	grants    []int64
	waits     []int64
}

func newArbiter(cores int, busy int64) *Arbiter {
	return &Arbiter{BusyCycles: busy, grants: make([]int64, cores), waits: make([]int64, cores)}
}

// acquire grants the bus to core for a transaction requested at cycle t
// and returns the grant cycle (≥ t).
func (a *Arbiter) acquire(core int, t int64) int64 {
	grant := t
	if a.busyUntil > t {
		grant = a.busyUntil
		a.waits[core] += grant - t
	}
	a.busyUntil = grant + a.BusyCycles
	a.grants[core]++
	return grant
}

// Grants returns the number of bus transactions core has performed.
func (a *Arbiter) Grants(core int) int64 { return a.grants[core] }

// Waits returns the total contention wait-state cycles charged to core.
func (a *Arbiter) Waits(core int) int64 { return a.waits[core] }

// busPort is one core's window onto the shared bus: it runs every access
// through the arbiter, timestamps the transaction with the grant cycle,
// and accumulates the wait-states for the core's timing model to drain
// (platform.WaitReporter on the translated side, an explicit Stall on the
// ISS side).
type busPort struct {
	core    int
	arb     *Arbiter
	bus     *socbus.Bus
	pending int64
}

// BusRead32 implements iss.Bus.
func (p *busPort) BusRead32(addr uint32, cycle int64) uint32 {
	grant := p.arb.acquire(p.core, cycle)
	p.pending += grant - cycle
	return p.bus.BusRead32(addr, grant)
}

// BusWrite32 implements iss.Bus.
func (p *busPort) BusWrite32(addr uint32, val uint32, cycle int64) {
	grant := p.arb.acquire(p.core, cycle)
	p.pending += grant - cycle
	p.bus.BusWrite32(addr, val, grant)
}

// TakeWait implements platform.WaitReporter: it drains the wait-states
// accumulated since the last call.
func (p *busPort) TakeWait() int64 {
	w := p.pending
	p.pending = 0
	return w
}
