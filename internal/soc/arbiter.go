package soc

import (
	"fmt"

	"repro/internal/socbus"
)

// Arbitration selects the bus-arbitration policy of the SoC: the order
// cores are serviced within a quantum, which is the order same-cycle
// contenders win the shared bus.
type Arbitration int

// Arbitration policies.
const (
	// RoundRobin rotates the starting core every quantum, so no core has
	// standing priority over the bus.
	RoundRobin Arbitration = iota
	// FixedPriority always services cores in index order: core 0 wins
	// every tie.
	FixedPriority
)

// String names the policy.
func (a Arbitration) String() string {
	switch a {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	}
	return fmt.Sprintf("Arbitration(%d)", int(a))
}

// ArbitrationByName parses a policy name ("rr", "round-robin", "fixed",
// "fixed-priority").
func ArbitrationByName(s string) (Arbitration, bool) {
	switch s {
	case "rr", "round-robin":
		return RoundRobin, true
	case "fixed", "fixed-priority":
		return FixedPriority, true
	}
	return 0, false
}

// Arbiter serializes shared-bus transactions and charges contention
// wait-states. A transaction granted at cycle g occupies the bus for
// [g, g+BusyCycles); a request at cycle t is granted the earliest slot
// ≥ t that avoids every reserved interval, and the slip is charged to
// the requesting core as wait-states.
//
// The reserved intervals live in a sliding window (sorted by start)
// that the quantum scheduler prunes at quantum boundaries. Compared to
// the previous single busy-until clock, slot packing fixes the
// quantum-skew overestimation at large quanta: a core serviced late in
// the quantum no longer queues behind bus occupancy that sits far in
// its own future — it packs into the free slot at its actual request
// time, exactly as same-cycle contenders would interleave at quantum 1.
// It is also what makes speculative parallel execution commit: a lane's
// grants replay identically as long as no earlier core reserved an
// overlapping slot.
type Arbiter struct {
	// BusyCycles is the bus occupancy of one transaction.
	BusyCycles int64

	window []busSlot
	grants []int64
	waits  []int64
}

// busSlot is one reserved occupancy interval [start, end).
type busSlot struct {
	start, end int64
}

func newArbiter(cores int, busy int64) *Arbiter {
	return &Arbiter{BusyCycles: busy, grants: make([]int64, cores), waits: make([]int64, cores)}
}

// slot returns the earliest grant cycle ≥ t whose occupancy interval
// avoids every reserved slot, without reserving it.
func (a *Arbiter) slot(t int64) int64 {
	g := t
	for _, s := range a.window {
		if s.start >= g+a.BusyCycles {
			break // sorted by start: nothing later can overlap either
		}
		if s.end > g {
			g = s.end
		}
	}
	return g
}

// reserve marks [g, g+BusyCycles) occupied.
func (a *Arbiter) reserve(g int64) {
	lo, hi := 0, len(a.window)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.window[mid].start < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a.window = append(a.window, busSlot{})
	copy(a.window[lo+1:], a.window[lo:])
	a.window[lo] = busSlot{start: g, end: g + a.BusyCycles}
}

// acquire grants the bus to core for a transaction requested at cycle t
// and returns the grant cycle (≥ t).
func (a *Arbiter) acquire(core int, t int64) int64 {
	grant := a.slot(t)
	a.reserve(grant)
	a.waits[core] += grant - t
	a.grants[core]++
	return grant
}

// prune drops reserved slots ending at or before cycle. The quantum
// scheduler calls it with a bound safely below any future request time,
// so pruning never changes a grant — it only keeps the window small.
func (a *Arbiter) prune(cycle int64) {
	keep := a.window[:0]
	for _, s := range a.window {
		if s.end > cycle {
			keep = append(keep, s)
		}
	}
	a.window = keep
}

// clone returns an independent copy (a speculative lane's private
// arbiter).
func (a *Arbiter) clone() *Arbiter {
	c := newArbiter(len(a.grants), a.BusyCycles)
	c.copyStateFrom(a)
	return c
}

// copyStateFrom refreshes a with src's state (same core count).
func (a *Arbiter) copyStateFrom(src *Arbiter) {
	a.BusyCycles = src.BusyCycles
	a.window = append(a.window[:0], src.window...)
	copy(a.grants, src.grants)
	copy(a.waits, src.waits)
}

// Grants returns the number of bus transactions core has performed.
func (a *Arbiter) Grants(core int) int64 { return a.grants[core] }

// Waits returns the total contention wait-state cycles charged to core.
func (a *Arbiter) Waits(core int) int64 { return a.waits[core] }

// busPort is one core's window onto the shared bus: it runs every access
// through the arbiter, timestamps the transaction with the grant cycle,
// and accumulates the wait-states for the core's timing model to drain
// (platform.WaitReporter on the translated side, an explicit Stall on the
// ISS side).
//
// The parallel scheduler retargets arb/bus at a speculative lane's
// private world for the duration of a quantum and sets rec to the
// lane's transaction log; the port is only ever retargeted between
// phases on the scheduler goroutine, so the core that runs through it
// always sees a consistent world.
type busPort struct {
	core    int
	arb     *Arbiter
	bus     *socbus.Bus
	pending int64
	rec     *[]busTxn
}

// BusRead32 implements iss.Bus.
func (p *busPort) BusRead32(addr uint32, cycle int64) uint32 {
	grant := p.arb.acquire(p.core, cycle)
	p.pending += grant - cycle
	v := p.bus.BusRead32(addr, grant)
	if p.rec != nil {
		*p.rec = append(*p.rec, busTxn{addr: addr, val: v, req: cycle, grant: grant})
	}
	return v
}

// BusWrite32 implements iss.Bus.
func (p *busPort) BusWrite32(addr uint32, val uint32, cycle int64) {
	grant := p.arb.acquire(p.core, cycle)
	p.pending += grant - cycle
	p.bus.BusWrite32(addr, val, grant)
	if p.rec != nil {
		*p.rec = append(*p.rec, busTxn{addr: addr, val: val, write: true, req: cycle, grant: grant})
	}
}

// TakeWait implements platform.WaitReporter: it drains the wait-states
// accumulated since the last call.
func (p *busPort) TakeWait() int64 {
	w := p.pending
	p.pending = 0
	return w
}
