package soc

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/socbus"
)

// This file is the speculative parallel quantum scheduler. Each quantum
// the runnable cores execute concurrently — every core on its own
// goroutine against a private shadow world (shadow bus devices, a clone
// of the arbiter, a shadow interrupt controller) — and then commit in
// service order on the scheduler goroutine. A lane whose transaction
// log is consistent with running after the already-committed prefix is
// replayed onto the live world; a conflicting lane is rolled back to
// its quantum-boundary checkpoint and re-run against the live world,
// which is exactly the sequential schedule for that lane.
//
// The commit check has four parts (see commitState in commitlog.go for
// the granule rules):
//
//  1. the lane ran without error (a speculative error is treated as a
//     conflict — the sequential re-run reproduces any real error
//     deterministically);
//  2. the core's live interrupt-controller block still equals its
//     quantum-boundary snapshot — a committed post (doorbell), a
//     cross-core RAISE or a timer raise would have changed the line the
//     lane sampled;
//  3. no logged transaction touches a conflict granule the committed
//     prefix mutated;
//  4. the lane's bus grants replay identically against the live
//     arbiter (previewed on a scratch copy), so its charged wait-states
//     — and therefore its timing — were right.
//
// By induction over the service order, a committed quantum is
// bit-identical to the sequential scheduler's: the first core in
// service order runs against the live world itself (the lead lane, on
// the scheduler goroutine — nothing can commit before it), and every
// later core either proves its speculation equivalent or re-runs
// sequentially. GOMAXPROCS, goroutine scheduling and commit timing
// never influence an architectural result.
type specLane struct {
	// bus and arb are the lane's private world; irq is the shadow
	// interrupt controller on that bus (the lane core's IRQ line samples
	// it while speculating).
	bus *socbus.Bus
	arb *Arbiter
	irq *socbus.IRQController

	// txns is the lane's transaction log for this quantum; irqSnap is
	// the live controller's block state at the quantum boundary; err is
	// the speculative run's error, if any.
	txns    []busTxn
	irqSnap socbus.IRQCoreState
	err     error
}

// parRuntime is the parallel scheduler's persistent state: one lane per
// core, the commit machinery, and the worker goroutine plumbing. All
// cross-goroutine handoff happens through the start/done channels —
// a lane's state is written only before its start send or after its
// done receive, so the channels' happens-before edges are the entire
// synchronization story.
type parRuntime struct {
	lanes []*specLane
	cs    *commitState

	run       []int    // runnable cores of the quantum, in service order
	leadTxns  []busTxn // lead lane's live-world transaction log
	rerunTxns []busTxn // a rolled-back lane's re-run transaction log

	start []chan int64 // per-core: run your lane to the sent target
	done  chan int     // lane finished (carries the core index)
	stop  chan struct{}

	// Speculation-outcome counters, per core. Written only by the
	// scheduler goroutine (plain ints, no atomics needed); the flushed*
	// shadows track what flushObs already published (see trace.go).
	specCommits, specRollbacks, specReruns          []int64
	flushedCommits, flushedRollbacks, flushedReruns []int64
}

// initParallel lazily builds the parallel runtime: one shadow world per
// core and the commit state. The shadow mailbox's doorbell port is
// wired to the shadow interrupt controller, so a speculating core's
// posts ring doorbells only in its own world; the commit machinery's
// extraMutation hook mirrors the same side channel on the live world —
// a committed post also mutates the receiving core's interrupt block.
func (s *System) initParallel() error {
	if s.par != nil {
		return nil
	}
	n := len(s.cores)
	pr := &parRuntime{
		lanes:            make([]*specLane, n),
		cs:               newCommitState(s.Bus, s.Arb),
		run:              make([]int, 0, n),
		start:            make([]chan int64, n),
		done:             make(chan int, n),
		specCommits:      make([]int64, n),
		specRollbacks:    make([]int64, n),
		specReruns:       make([]int64, n),
		flushedCommits:   make([]int64, n),
		flushedRollbacks: make([]int64, n),
		flushedReruns:    make([]int64, n),
	}
	for i := 0; i < n; i++ {
		sb, err := s.Bus.NewShadow()
		if err != nil {
			return fmt.Errorf("soc: parallel: %w", err)
		}
		lane := &specLane{bus: sb, arb: s.Arb.clone()}
		irq, ok := sb.DeviceAt(s.IRQ.Base).(*socbus.IRQController)
		if !ok {
			return fmt.Errorf("soc: parallel: shadow bus lost the interrupt controller")
		}
		lane.irq = irq
		if mail, ok := sb.DeviceAt(s.Mail.Base).(*socbus.Mailbox); ok {
			mail.OnPost = func(slot int) { irq.Raise(slot, socbus.LineDoorbell) }
		}
		pr.lanes[i] = lane
		pr.start[i] = make(chan int64)
	}
	mailBase, mailSize := s.Mail.Range()
	pr.cs.extraMutation = func(addr uint32) (uint64, bool) {
		if addr < mailBase || addr-mailBase >= mailSize {
			return 0, false
		}
		off := addr - mailBase
		if off%socbus.SlotStride != 0 {
			return 0, false
		}
		slot := off / socbus.SlotStride
		g, _ := s.Bus.AccessMeta(s.IRQ.Base + slot*socbus.IRQStride)
		return g, true
	}
	s.par = pr
	return nil
}

// startWorkers spawns one persistent worker goroutine per core. A
// worker only ever runs its own core against that core's private lane
// world, so concurrent lanes touch disjoint state.
func (pr *parRuntime) startWorkers(s *System) {
	pr.stop = make(chan struct{})
	for i := range s.cores {
		go func(ci int) {
			lane := pr.lanes[ci]
			c := s.cores[ci]
			for {
				select {
				case <-pr.stop:
					return
				case limit := <-pr.start[ci]:
					lane.err = c.runUntil(limit)
					pr.done <- ci
				}
			}
		}(i)
	}
}

// stopWorkers retires the worker goroutines.
func (pr *parRuntime) stopWorkers() { close(pr.stop) }

// runParallel is the speculative parallel scheduler. Its quantum loop
// is the sequential scheduler's, verbatim — the same liveness checks,
// the same interrupt-controller clocking, the same quantum accounting —
// with the per-quantum core servicing delegated to parallelQuantum.
func (s *System) runParallel() error {
	if err := s.initParallel(); err != nil {
		return err
	}
	s.traceInit()
	pr := s.par
	pr.startWorkers(s)
	defer pr.stopWorkers()
	defer pr.flushObs(s)
	target := int64(0)
	for q := int64(0); ; q++ {
		running, allWaiting := false, true
		for _, c := range s.cores {
			if !c.haltedCore() {
				running = true
				if !c.waitingCore() {
					allWaiting = false
				}
			}
		}
		if !running {
			return nil
		}
		if allWaiting && !s.irqPossible() {
			return fmt.Errorf("soc: deadlock: every running core waits in wfi with no line asserted and no timer armed")
		}
		if target >= s.cfg.MaxCycles {
			return fmt.Errorf("soc: cycle limit (%d) exceeded with cores still running (deadlock?)", s.cfg.MaxCycles)
		}
		s.Arb.prune(target - s.cfg.Quantum - pruneSlack)
		s.IRQ.Tick(target)
		target += s.cfg.Quantum
		s.quanta++
		if err := s.parallelQuantum(q, target); err != nil {
			return err
		}
		if s.trc != nil {
			s.traceQuantum(q, target-s.cfg.Quantum, target)
		}
	}
}

// parallelQuantum services one quantum: launch the speculative lanes,
// run the lead lane on this goroutine, then commit in service order.
func (s *System) parallelQuantum(q, target int64) error {
	pr := s.par
	pr.run = pr.run[:0]
	for _, ci := range s.scheduleOrder(q) {
		if !s.cores[ci].haltedCore() {
			pr.run = append(pr.run, ci)
		}
	}
	if len(pr.run) == 0 {
		return nil
	}
	if len(pr.run) == 1 {
		c := s.cores[pr.run[0]]
		if err := c.runUntil(target); err != nil {
			return fmt.Errorf("soc: %s: %w", c.name, err)
		}
		return nil
	}

	// Launch every core after the lead as a speculative lane: refresh
	// its shadow world from the live one, snapshot its interrupt block,
	// checkpoint the core, retarget its bus port and IRQ line at the
	// lane, and hand it to its worker.
	spec := pr.run[1:]
	for _, ci := range spec {
		c, lane := s.cores[ci], pr.lanes[ci]
		s.Bus.SyncShadow(lane.bus)
		lane.arb.copyStateFrom(s.Arb)
		lane.txns = lane.txns[:0]
		lane.irqSnap = s.IRQ.CoreState(ci)
		c.checkpoint()
		c.port.arb, c.port.bus, c.port.rec = lane.arb, lane.bus, &lane.txns
		c.irqSrc = lane.irq
		pr.start[ci] <- target
	}

	// The lead lane — the first runnable core in service order — runs
	// on this goroutine against the live world: nothing can commit
	// before it, so its execution is sequentially exact by construction.
	// Recording is on to seed the quantum's mutation set.
	pr.cs.reset()
	lead := s.cores[pr.run[0]]
	pr.leadTxns = pr.leadTxns[:0]
	lead.port.rec = &pr.leadTxns
	leadErr := lead.runUntil(target)
	lead.port.rec = nil

	// Join every lane before touching any of their state.
	for range spec {
		<-pr.done
	}

	var runErr error
	if leadErr != nil {
		runErr = fmt.Errorf("soc: %s: %w", lead.name, leadErr)
	} else {
		pr.cs.noteMutations(pr.leadTxns)
	}

	// Commit in service order. After an error, the remaining lanes are
	// only rolled back, leaving the SoC where the sequential scheduler's
	// abort would have left it.
	tracing := s.trc != nil && obs.Trace.Enabled()
	qStart := target - s.cfg.Quantum
	for _, ci := range spec {
		c, lane := s.cores[ci], pr.lanes[ci]
		c.port.arb, c.port.bus, c.port.rec = s.Arb, s.Bus, nil
		c.irqSrc = s.IRQ
		if runErr != nil {
			pr.specRollbacks[ci]++
			c.rollback()
			continue
		}
		// The four commit checks, in the order the package comment gives
		// them; cause names the first one that failed ("" = clean).
		var cause string
		switch {
		case lane.err != nil:
			cause = "error"
		case s.IRQ.CoreState(ci) != lane.irqSnap:
			cause = "irq"
		case pr.cs.conflicts(lane.txns):
			cause = "conflict"
		case !pr.cs.grantsMatch(lane.txns):
			cause = "grants"
		}
		if cause == "" {
			if err := pr.cs.replay(ci, lane.txns); err != nil {
				runErr = fmt.Errorf("soc: %s: %w", c.name, err)
				pr.specRollbacks[ci]++
				c.rollback()
				continue
			}
			pr.specCommits[ci]++
			if tracing {
				traceSpec("commit", ci, qStart, target)
			}
			c.commitCheckpoint()
			pr.cs.noteMutations(lane.txns)
			continue
		}
		// Conflict (or speculative error): back to the quantum boundary
		// and through the live world, i.e. the sequential schedule.
		pr.specRollbacks[ci]++
		if tracing {
			traceSpec("rollback:"+cause, ci, qStart, target)
		}
		c.rollback()
		pr.specReruns[ci]++
		pr.rerunTxns = pr.rerunTxns[:0]
		c.port.rec = &pr.rerunTxns
		err := c.runUntil(target)
		c.port.rec = nil
		if err != nil {
			runErr = fmt.Errorf("soc: %s: %w", c.name, err)
			continue
		}
		pr.cs.noteMutations(pr.rerunTxns)
	}
	return runErr
}
