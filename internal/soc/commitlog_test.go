package soc

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/socbus"
)

// The commit machinery's contract is schedule equivalence: for ANY set
// of lane transaction scripts, speculating every lane against a
// quantum-boundary shadow and then committing in lane order (replaying
// clean lanes, re-running conflicting ones) must leave the world —
// devices, arbiter accounting, bus log — exactly where running the
// lanes sequentially would have. The property test below checks that on
// randomized scripts; the fuzz target feeds it arbitrary byte strings.

// scriptOp is one scripted bus access of a lane.
type scriptOp struct {
	write bool
	addr  uint32
	val   uint32
	dt    int64 // request-cycle delta from the previous op
}

// scriptWorld is a miniature SoC world: the standard inter-core devices
// on a bus plus a 3-core arbiter.
type scriptWorld struct {
	bus    *socbus.Bus
	arb    *Arbiter
	shared *socbus.SharedRAM
	mail   *socbus.Mailbox
	count  *socbus.CounterBank
	irq    *socbus.IRQController
}

func newScriptWorld() *scriptWorld {
	w := &scriptWorld{
		shared: socbus.NewSharedRAM(8),
		mail:   socbus.NewMailbox(3),
		count:  socbus.NewCounterBank(4),
		irq:    socbus.NewIRQController(3),
		arb:    newArbiter(3, 2),
	}
	w.mail.OnPost = func(slot int) { w.irq.Raise(slot, socbus.LineDoorbell) }
	w.bus = socbus.NewBus(w.shared, w.mail, w.count, w.irq, socbus.NewTimer())
	return w
}

// runOps plays a lane's script through a bus port starting at base.
func runOps(port *busPort, ops []scriptOp, base int64) {
	t := base
	for _, op := range ops {
		t += op.dt
		if op.write {
			port.BusWrite32(op.addr, op.val, t)
		} else {
			port.BusRead32(op.addr, t)
		}
	}
}

// worldState is everything observable about a script world.
type worldState struct {
	log            []socbus.Transaction
	grants, waits  []int64
	shared         []uint32
	counters       []uint32
	mailFull       []bool
	posts, pops    int64
	overruns       int64
	irq            []socbus.IRQCoreState
	raises, claims int64
	acks, spurious int64
	unmapped       int
}

func (w *scriptWorld) state() worldState {
	st := worldState{
		log:   append([]socbus.Transaction(nil), w.bus.Log...),
		posts: w.mail.Posts, pops: w.mail.Pops, overruns: w.mail.Overruns,
		raises: w.irq.Raises, claims: w.irq.Claims, acks: w.irq.Acks, spurious: w.irq.Spurious,
		unmapped: w.bus.Unmapped,
	}
	for c := 0; c < 3; c++ {
		st.grants = append(st.grants, w.arb.Grants(c))
		st.waits = append(st.waits, w.arb.Waits(c))
		st.mailFull = append(st.mailFull, w.mail.Full(c))
		st.irq = append(st.irq, w.irq.CoreState(c))
	}
	for i := 0; i < 8; i++ {
		st.shared = append(st.shared, w.shared.Word(i))
	}
	for i := 0; i < 4; i++ {
		st.counters = append(st.counters, w.count.Value(i))
	}
	return st
}

const scriptBase = int64(100)

// sequentialRun is the oracle: lanes applied one after another in lane
// order on the live world.
func sequentialRun(lanes [][]scriptOp) worldState {
	w := newScriptWorld()
	for li, ops := range lanes {
		runOps(&busPort{core: li, arb: w.arb, bus: w.bus}, ops, scriptBase)
	}
	return w.state()
}

// speculativeRun mirrors parallelQuantum on the scripted lanes: lane 0
// is the lead (live world, recording); every later lane speculates on a
// shadow synced at the quantum boundary, then commits through the
// commitState rules or re-runs on conflict.
func speculativeRun(t testing.TB, lanes [][]scriptOp) worldState {
	w := newScriptWorld()
	cs := newCommitState(w.bus, w.arb)
	mailBase, mailSize := w.mail.Range()
	cs.extraMutation = func(addr uint32) (uint64, bool) {
		if addr < mailBase || addr-mailBase >= mailSize || (addr-mailBase)%socbus.SlotStride != 0 {
			return 0, false
		}
		g, _ := w.bus.AccessMeta(w.irq.Base + (addr-mailBase)/socbus.SlotStride*socbus.IRQStride)
		return g, true
	}

	// Quantum boundary: build every speculative lane's shadow world.
	n := len(lanes)
	shadowBus := make([]*socbus.Bus, n)
	shadowArb := make([]*Arbiter, n)
	txns := make([][]busTxn, n)
	snaps := make([]socbus.IRQCoreState, n)
	for li := 1; li < n; li++ {
		sb, err := w.bus.NewShadow()
		if err != nil {
			t.Fatalf("NewShadow: %v", err)
		}
		w.bus.SyncShadow(sb)
		irq := sb.DeviceAt(w.irq.Base).(*socbus.IRQController)
		sb.DeviceAt(w.mail.Base).(*socbus.Mailbox).OnPost = func(slot int) { irq.Raise(slot, socbus.LineDoorbell) }
		shadowBus[li], shadowArb[li] = sb, w.arb.clone()
		snaps[li] = w.irq.CoreState(li)
	}

	// Speculate (sequentially here — determinism makes real concurrency
	// irrelevant to the commit rules under test).
	for li := 1; li < n; li++ {
		runOps(&busPort{core: li, arb: shadowArb[li], bus: shadowBus[li], rec: &txns[li]}, lanes[li], scriptBase)
	}

	// Lead lane on the live world, recording to seed the mutation set.
	var leadTxns []busTxn
	runOps(&busPort{core: 0, arb: w.arb, bus: w.bus, rec: &leadTxns}, lanes[0], scriptBase)
	cs.reset()
	cs.noteMutations(leadTxns)

	// Commit in lane order.
	for li := 1; li < n; li++ {
		clean := w.irq.CoreState(li) == snaps[li] &&
			!cs.conflicts(txns[li]) &&
			cs.grantsMatch(txns[li])
		if clean {
			if err := cs.replay(li, txns[li]); err != nil {
				t.Fatalf("lane %d: %v", li, err)
			}
			cs.noteMutations(txns[li])
			continue
		}
		var rerun []busTxn
		runOps(&busPort{core: li, arb: w.arb, bus: w.bus, rec: &rerun}, lanes[li], scriptBase)
		cs.noteMutations(rerun)
	}
	return w.state()
}

// scriptAddr maps a selector byte onto the interesting address space:
// shared words, mailbox DATA/STATUS, counters, every IRQ register, the
// timer, and an unmapped hole.
func scriptAddr(b byte) uint32 {
	sub := uint32(b >> 3)
	switch b % 7 {
	case 0:
		return socbus.SharedRAMBase + sub%8*4
	case 1:
		return socbus.MailboxBase + sub%3*socbus.SlotStride + sub%2*4 // DATA or STATUS
	case 2:
		return socbus.CounterBase + sub%4*4
	case 3:
		regs := []uint32{socbus.IRQRegPending, socbus.IRQRegEnable, socbus.IRQRegAck, socbus.IRQRegRaise, socbus.IRQRegClaim}
		return socbus.IRQCtrlBase + sub%3*socbus.IRQStride + regs[sub%5]
	case 4:
		return socbus.TimerBase + sub%2*4 // COUNT or CTRL
	case 5:
		return 0xDEAD_0000 + sub*4
	}
	return socbus.SharedRAMBase + sub%8*4
}

// decodeScript turns a byte string into 3 lane scripts (4 bytes per
// op, dealt round-robin to the lanes).
func decodeScript(data []byte) [][]scriptOp {
	lanes := make([][]scriptOp, 3)
	li := 0
	for i := 0; i+4 <= len(data); i += 4 {
		lanes[li] = append(lanes[li], scriptOp{
			write: data[i]&1 == 1,
			addr:  scriptAddr(data[i+1]),
			val:   uint32(data[i+2]) & 0xF, // small masks keep IRQ lines meaningful
			dt:    int64(data[i+3] % 8),
		})
		li = (li + 1) % 3
	}
	return lanes
}

// checkScript runs one script both ways and returns a diff error.
func checkScript(t testing.TB, data []byte) error {
	lanes := decodeScript(data)
	seq := sequentialRun(lanes)
	spec := speculativeRun(t, lanes)
	if !reflect.DeepEqual(seq, spec) {
		return fmt.Errorf("speculative commit diverged from sequential:\nlanes: %v\nseq:  %+v\nspec: %+v", lanes, seq, spec)
	}
	return nil
}

// TestCommitReplayProperty is the quick.Check property: speculation +
// commit converges to the sequential schedule on random scripts.
func TestCommitReplayProperty(t *testing.T) {
	prop := func(data []byte) bool {
		if err := checkScript(t, data); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 50
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCommitReplayDirected pins hand-written conflict shapes the random
// generator may under-sample.
func TestCommitReplayDirected(t *testing.T) {
	sh := func(i uint32) uint32 { return socbus.SharedRAMBase + i*4 }
	cases := map[string][][]scriptOp{
		"war-on-shared": { // lead writes what lane 1 read: conflict, re-run
			{{write: true, addr: sh(0), val: 7}},
			{{addr: sh(0)}},
			{},
		},
		"raw-free": { // lane 1 writes what lead only read: anti-dep, clean
			{{addr: sh(1)}},
			{{write: true, addr: sh(1), val: 9}},
			{},
		},
		"mailbox-doorbell": { // lead posts to lane 1's slot: IRQ snapshot conflict
			{{write: true, addr: socbus.MailboxBase + 1*socbus.SlotStride, val: 5}},
			{{addr: socbus.IRQCtrlBase + 1*socbus.IRQStride + IRQClaimOff}},
			{{addr: sh(2)}},
		},
		"pop-vs-poll": { // lane 1 pops, lane 2 polls same slot: mutating read
			{},
			{{addr: socbus.MailboxBase + 0}},
			{{addr: socbus.MailboxBase + 4}},
		},
		"same-cycle-grants": { // all lanes contend for the same slot time
			{{write: true, addr: sh(3), val: 1}},
			{{write: true, addr: sh(4), val: 2}},
			{{write: true, addr: sh(5), val: 3}},
		},
		"cross-raise": { // lane 2 raises lane 1's soft line
			{},
			{{addr: socbus.IRQCtrlBase + 1*socbus.IRQStride + socbus.IRQRegPending}},
			{{write: true, addr: socbus.IRQCtrlBase + 1*socbus.IRQStride + socbus.IRQRegRaise, val: 4}},
		},
	}
	for name, lanes := range cases {
		t.Run(name, func(t *testing.T) {
			seq := sequentialRun(lanes)
			spec := speculativeRun(t, lanes)
			if !reflect.DeepEqual(seq, spec) {
				t.Errorf("diverged:\nseq:  %+v\nspec: %+v", seq, spec)
			}
		})
	}
}

// IRQClaimOff aliases the CLAIM register offset for the directed cases.
const IRQClaimOff = socbus.IRQRegClaim

// FuzzCommitReplay feeds arbitrary byte strings through the script
// decoder: any input on which speculation and sequential execution
// disagree is a commit-machinery bug.
func FuzzCommitReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 7, 2, 0, 0, 3, 1, 1, 8, 9, 0})
	f.Add([]byte{1, 1, 5, 0, 0, 24, 0, 0, 1, 9, 2, 3, 0, 15, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := checkScript(t, data); err != nil {
			t.Fatal(err)
		}
	})
}
