package soc

import (
	"strconv"

	"repro/internal/obs"
)

// Telemetry for the SoC schedulers. Everything here strictly observes:
// trace events and counters are derived from state the schedulers
// already maintain and never feed anything back, so enabling tracing
// cannot change a simulation result (-det output stays byte-identical).
//
// All events are emitted from the scheduler goroutine only — the
// speculative lanes never emit, so a rolled-back lane leaves no
// phantom events to retract — and are timestamped on the emulated
// clock (1 trace µs = 1 source cycle), which makes traces of a
// deterministic workload deterministic too.

// socTrace is the per-System trace state: previous-quantum counter
// snapshots for delta events. Allocated only when tracing is enabled
// at Run time.
type socTrace struct {
	prevIRQ   []int64
	prevGrant []int64
	prevWait  []int64
}

// traceInit arms per-run tracing when the global tracer is recording.
func (s *System) traceInit() {
	if !obs.Trace.Enabled() || s.trc != nil {
		return
	}
	n := len(s.cores)
	s.trc = &socTrace{
		prevIRQ:   make([]int64, n),
		prevGrant: make([]int64, n),
		prevWait:  make([]int64, n),
	}
	for i, c := range s.cores {
		s.trc.prevIRQ[i] = c.irqsTaken()
		s.trc.prevGrant[i] = s.Arb.Grants(i)
		s.trc.prevWait[i] = s.Arb.Waits(i)
	}
}

// traceQuantum emits the events of one serviced quantum: the quantum
// span on the scheduler row (tid -1), an IRQ-delivery instant on each
// core row whose delivered-interrupt count advanced, and a bus counter
// sample on each core row whose arbiter grants or wait-states moved.
func (s *System) traceQuantum(q, start, target int64) {
	t := s.trc
	obs.Trace.Emit(obs.Event{
		Name: "quantum", Cat: "soc", Ph: obs.PhaseComplete,
		TS: start, Dur: target - start, TID: -1,
		Args: [3]obs.Arg{{Key: "q", Val: q}},
	})
	for i, c := range s.cores {
		if irqs := c.irqsTaken(); irqs > t.prevIRQ[i] {
			obs.Trace.Emit(obs.Event{
				Name: "irq", Cat: "soc", Ph: obs.PhaseInstant,
				TS: target, TID: int64(i),
				Args: [3]obs.Arg{{Key: "delivered", Val: irqs - t.prevIRQ[i]}},
			})
			t.prevIRQ[i] = irqs
		}
		g, w := s.Arb.Grants(i), s.Arb.Waits(i)
		if g != t.prevGrant[i] || w != t.prevWait[i] {
			obs.Trace.Emit(obs.Event{
				Name: "bus", Cat: "soc", Ph: obs.PhaseCounter,
				TS: target, TID: int64(i),
				Args: [3]obs.Arg{
					{Key: "grants", Val: g - t.prevGrant[i]},
					{Key: "wait_cycles", Val: w - t.prevWait[i]},
				},
			})
			t.prevGrant[i], t.prevWait[i] = g, w
		}
	}
}

// traceSpec emits one speculation outcome (commit, or rollback with its
// cause and sequential re-run) as a span covering the quantum on the
// core's row.
func traceSpec(name string, ci int, start, target int64) {
	obs.Trace.Emit(obs.Event{
		Name: name, Cat: "soc", Ph: obs.PhaseComplete,
		TS: start, Dur: target - start, TID: int64(ci),
	})
}

// SpecStats reports the parallel scheduler's cumulative per-core
// speculation outcomes: lanes committed, lanes rolled back, and
// sequential re-runs after rollback (rollbacks exceed reruns only when
// a run aborted on an error). All nil before the first parallel Run.
// Deliberately not part of Results: the sequential and parallel
// schedulers must produce byte-identical result JSON.
func (s *System) SpecStats() (commits, rollbacks, reruns []int64) {
	if s.par == nil {
		return nil, nil, nil
	}
	pr := s.par
	return append([]int64(nil), pr.specCommits...),
		append([]int64(nil), pr.specRollbacks...),
		append([]int64(nil), pr.specReruns...)
}

// flushObs publishes speculation-outcome deltas accumulated since the
// last flush into the process-global registry, labeled by core.
func (pr *parRuntime) flushObs(s *System) {
	for i := range pr.lanes {
		core := s.cores[i].name + "#" + strconv.Itoa(i)
		if d := pr.specCommits[i] - pr.flushedCommits[i]; d > 0 {
			obs.Default.Counter("cabt_soc_spec_commits_total",
				"speculative lanes committed", "core", core).Add(d)
			pr.flushedCommits[i] = pr.specCommits[i]
		}
		if d := pr.specRollbacks[i] - pr.flushedRollbacks[i]; d > 0 {
			obs.Default.Counter("cabt_soc_spec_rollbacks_total",
				"speculative lanes rolled back", "core", core).Add(d)
			pr.flushedRollbacks[i] = pr.specRollbacks[i]
		}
		if d := pr.specReruns[i] - pr.flushedReruns[i]; d > 0 {
			obs.Default.Counter("cabt_soc_spec_reruns_total",
				"sequential re-runs after rollback", "core", core).Add(d)
			pr.flushedReruns[i] = pr.specReruns[i]
		}
	}
}
