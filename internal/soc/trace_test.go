package soc

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// runTraced runs one configuration with the global tracer in the given
// state and returns the system plus the captured event stream.
func runTraced(t *testing.T, cfg Config, label string, traced bool) (*System, []obs.Event) {
	t.Helper()
	obs.Trace.Reset()
	obs.Trace.SetEnabled(traced)
	defer obs.Trace.SetEnabled(false)
	s := mustRun(t, cfg, label)
	return s, obs.Trace.Events()
}

// TestTracingIsObservationOnly is the determinism contract of the trace
// layer: enabling the tracer must not change a single simulation
// observable on either scheduler, and — because SoC events are
// timestamped on the emulated clock and emitted only from the scheduler
// goroutine — two traced runs of the same configuration must produce
// identical event streams.
func TestTracingIsObservationOnly(t *testing.T) {
	for _, mw := range []workload.MultiWorkload{workload.MCPingPong(4), workload.MCIRQTimer(3)} {
		for _, parallel := range []bool{false, true} {
			label := mw.Name
			if parallel {
				label += "/par"
			}
			cfg := buildParCfg(t, mw, 64, engineModes()[2], RoundRobin, parallel)

			plain, none := runTraced(t, cfg, label+"/untraced", false)
			if len(none) != 0 {
				t.Fatalf("%s: disabled tracer captured %d events", label, len(none))
			}
			traced, events := runTraced(t, cfg, label+"/traced", true)
			traced2, events2 := runTraced(t, cfg, label+"/traced2", true)

			if a, b := plain.Results(), traced.Results(); !reflect.DeepEqual(a, b) {
				t.Errorf("%s: tracing changed results:\noff: %+v\non:  %+v", label, a, b)
			}
			if !reflect.DeepEqual(plain.Bus.Log, traced.Bus.Log) {
				t.Errorf("%s: tracing changed the bus transaction log", label)
			}
			if !reflect.DeepEqual(events, events2) {
				t.Errorf("%s: two traced runs emitted different event streams (%d vs %d events)",
					label, len(events), len(events2))
			}
			if a, b := traced.Results(), traced2.Results(); !reflect.DeepEqual(a, b) {
				t.Errorf("%s: traced runs disagree with each other", label)
			}
			checkTraceShape(t, label, cfg, events, parallel, traced)
		}
	}
}

// checkTraceShape validates the structural invariants of a SoC event
// stream: quantum spans tile the scheduler row in emulated-clock order,
// per-core rows stay within the core range, IRQ-driven workloads record
// deliveries, and on the parallel scheduler the commit/rollback spans
// agree exactly with SpecStats.
func checkTraceShape(t *testing.T, label string, cfg Config, events []obs.Event, parallel bool, s *System) {
	t.Helper()
	if len(events) == 0 {
		t.Errorf("%s: traced run captured no events", label)
		return
	}
	var quanta, irqs int
	var commits, rollbacks int64
	lastEnd := int64(-1)
	for _, e := range events {
		if e.TID < -1 || e.TID >= int64(len(cfg.Cores)) {
			t.Errorf("%s: event %q on row %d, outside [-1, %d)", label, e.Name, e.TID, len(cfg.Cores))
		}
		switch e.Name {
		case "quantum":
			quanta++
			if e.Ph != obs.PhaseComplete || e.TID != -1 {
				t.Errorf("%s: quantum event must be a scheduler-row span: %+v", label, e)
			}
			if e.TS < lastEnd {
				t.Errorf("%s: quantum span at %d overlaps previous end %d", label, e.TS, lastEnd)
			}
			lastEnd = e.TS + e.Dur
		case "irq":
			irqs++
			if e.Ph != obs.PhaseInstant {
				t.Errorf("%s: irq event must be an instant: %+v", label, e)
			}
		case "commit":
			commits++
		default:
			if len(e.Name) > 9 && e.Name[:9] == "rollback:" {
				rollbacks++
			}
		}
	}
	if quanta == 0 {
		t.Errorf("%s: no quantum spans in trace", label)
	}
	if s.IRQ != nil && s.IRQ.Claims > 0 && irqs == 0 {
		t.Errorf("%s: cores took interrupts but the trace has no irq events", label)
	}
	if !parallel && (commits+rollbacks) > 0 {
		t.Errorf("%s: sequential run emitted %d speculation events", label, commits+rollbacks)
	}
	if parallel {
		cs, rs, _ := s.SpecStats()
		var wantC, wantR int64
		for i := range cs {
			wantC += cs[i]
			wantR += rs[i]
		}
		// The ring may have dropped early events on long runs; only demand
		// exact agreement when nothing was dropped.
		if obs.Trace.Dropped() == 0 && (commits != wantC || rollbacks != wantR) {
			t.Errorf("%s: trace has %d commits / %d rollbacks, SpecStats says %d / %d",
				label, commits, rollbacks, wantC, wantR)
		}
	}

	// The stream must round-trip through the Chrome writer as valid JSON.
	var buf bytes.Buffer
	if err := obs.Trace.WriteChrome(&buf); err != nil {
		t.Fatalf("%s: WriteChrome: %v", label, err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("%s: Chrome trace is not valid JSON: %v", label, err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Errorf("%s: Chrome dump has %d events, captured %d", label, len(doc.TraceEvents), len(events))
	}
}
