package soc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

// TestEngineEquivalence runs every multi-core workload on the compiled
// and interpreted C6x engines — all-translated and mixed
// translated/ISS, cycle lockstep and a large quantum — and requires
// bit-identical SoC results, including per-core CPI, cycles, bus
// traffic and output.
func TestEngineEquivalence(t *testing.T) {
	for _, mw := range workload.MCAll(4) {
		for _, quantum := range []int64{1, 64} {
			for _, mixed := range []bool{false, true} {
				useISS := []bool{false}
				label := "translated"
				if mixed {
					useISS = []bool{false, true}
					label = "mixed"
				}
				t.Run(fmt.Sprintf("%s/q%d/%s", mw.Name, quantum, label), func(t *testing.T) {
					engines := []platform.Engine{platform.EngineCompiled, platform.EngineCompiledNoFuse, platform.EngineInterp}
					results := make([]Stats, len(engines))
					for i, engine := range engines {
						cfg := buildConfig(t, mw, quantum, useISS, core.Options{Level: core.Level2})
						cfg.Engine = engine
						s, err := New(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if err := s.Run(); err != nil {
							t.Fatalf("%v: %v", engine, err)
						}
						verifyOutputs(t, mw, s, engine.String())
						results[i] = s.Results()
					}
					for i := 1; i < len(engines); i++ {
						if !reflect.DeepEqual(results[0], results[i]) {
							t.Fatalf("engine divergence:\n  %v: %+v\n  %v: %+v",
								engines[0], results[0], engines[i], results[i])
						}
					}
				})
			}
		}
	}
}
