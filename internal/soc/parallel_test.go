package soc

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

// The parallel scheduler's contract is bit-identity with the sequential
// scheduler — not approximate equivalence. The torture matrix below
// runs every multi-core workload under both schedulers across engines,
// quanta and arbitration policies and compares everything observable:
// outputs, registers, cycle counts, CPI, bus traffic and wait-states,
// interrupt delivery, device statistics, and the complete bus
// transaction log.

// engineMode names one execution-engine column of the matrix.
type engineMode struct {
	name   string
	useISS []bool
	opts   core.Options
	engine platform.Engine
}

func engineModes() []engineMode {
	return []engineMode{
		{"iss", []bool{true}, core.Options{}, platform.EngineCompiled},
		{"interp", []bool{false}, core.Options{Level: core.Level3}, platform.EngineInterp},
		{"compiled", []bool{false}, core.Options{Level: core.Level3}, platform.EngineCompiled},
		{"compiled-nofuse", []bool{false}, core.Options{Level: core.Level3}, platform.EngineCompiledNoFuse},
		{"mixed", []bool{false, true}, core.Options{Level: core.Level3}, platform.EngineCompiled},
	}
}

// buildParCfg builds one matrix cell's configuration.
func buildParCfg(t *testing.T, mw workload.MultiWorkload, quantum int64, em engineMode, arb Arbitration, parallel bool) Config {
	t.Helper()
	cfg := buildConfig(t, mw, quantum, em.useISS, em.opts)
	cfg.Engine = em.engine
	cfg.Arbitration = arb
	cfg.Parallel = parallel
	return cfg
}

func mustRun(t *testing.T, cfg Config, label string) *System {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", label, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s: Run: %v", label, err)
	}
	return s
}

// compareWorlds demands complete observable equality between a
// sequential and a parallel run of the same configuration.
func compareWorlds(t *testing.T, label string, seq, par *System) {
	t.Helper()
	compareSnapshots(t, label, snapshotSoC(seq), snapshotSoC(par), compareFull)
	if a, b := seq.Results(), par.Results(); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: Stats differ:\nseq: %+v\npar: %+v", label, a, b)
	}
	if !reflect.DeepEqual(seq.Bus.Log, par.Bus.Log) {
		t.Errorf("%s: bus transaction logs differ (%d vs %d entries)", label, len(seq.Bus.Log), len(par.Bus.Log))
	}
	type devStats struct {
		SharedReads, SharedWrites      int64
		Posts, Pops, Overruns          int64
		Adds                           int64
		Raises, Acks, Claims, Spurious int64
		Unmapped                       int
	}
	stats := func(s *System) devStats {
		return devStats{
			SharedReads: s.Shared.Reads, SharedWrites: s.Shared.Writes,
			Posts: s.Mail.Posts, Pops: s.Mail.Pops, Overruns: s.Mail.Overruns,
			Adds:   s.Counters.Adds,
			Raises: s.IRQ.Raises, Acks: s.IRQ.Acks, Claims: s.IRQ.Claims, Spurious: s.IRQ.Spurious,
			Unmapped: s.Bus.Unmapped,
		}
	}
	if a, b := stats(seq), stats(par); a != b {
		t.Errorf("%s: device statistics differ:\nseq: %+v\npar: %+v", label, a, b)
	}
}

// parallelWorkloads is the torture set: every mc-* and mc-irq-*
// workload at a core count that exercises real cross-core traffic.
func parallelWorkloads() []workload.MultiWorkload {
	ws := workload.MCAll(4)
	ws = append(ws, irqWorkloads(3)...)
	return ws
}

// TestParallelTortureMatrix is the differential torture matrix: every
// multi-core workload × engine mode × quantum × arbitration policy,
// sequential vs parallel, zero tolerance.
func TestParallelTortureMatrix(t *testing.T) {
	quanta := []int64{1, 16, 64}
	arbs := []Arbitration{RoundRobin, FixedPriority}
	if testing.Short() {
		quanta = []int64{16}
		arbs = []Arbitration{RoundRobin}
	}
	for _, mw := range parallelWorkloads() {
		for _, em := range engineModes() {
			for _, quantum := range quanta {
				for _, arb := range arbs {
					name := fmt.Sprintf("%s/%s/q%d/%v", mw.Name, em.name, quantum, arb)
					t.Run(name, func(t *testing.T) {
						seq := mustRun(t, buildParCfg(t, mw, quantum, em, arb, false), name+"/seq")
						par := mustRun(t, buildParCfg(t, mw, quantum, em, arb, true), name+"/par")
						verifyOutputs(t, mw, par, name)
						compareWorlds(t, name, seq, par)
					})
				}
			}
		}
	}
}

// TestParallelDeterminismStress re-runs one parallel configuration
// repeatedly under GOMAXPROCS 1, 2 and 8 and requires bit-identical
// results every time: goroutine scheduling must never reach an
// architectural observable.
func TestParallelDeterminismStress(t *testing.T) {
	mw := workload.MCPingPong(4)
	reps := 3
	if testing.Short() {
		reps = 1
	}
	var ref Stats
	var refLog int
	first := true
	for _, procs := range []int{1, 2, 8} {
		old := runtime.GOMAXPROCS(procs)
		for r := 0; r < reps; r++ {
			cfg := buildParCfg(t, mw, 16, engineModes()[3], RoundRobin, true)
			s := mustRun(t, cfg, fmt.Sprintf("procs%d/rep%d", procs, r))
			st := s.Results()
			if first {
				ref, refLog, first = st, len(s.Bus.Log), false
				continue
			}
			if !reflect.DeepEqual(ref, st) {
				t.Errorf("GOMAXPROCS=%d rep %d: results diverged:\nref: %+v\ngot: %+v", procs, r, ref, st)
			}
			if len(s.Bus.Log) != refLog {
				t.Errorf("GOMAXPROCS=%d rep %d: bus log length %d, want %d", procs, r, len(s.Bus.Log), refLog)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestParallelSingleCore pins the degenerate configurations: one core
// (parallel falls through to the sequential scheduler) and a quantum of
// 1 (every quantum is contended, maximally stressing rollback).
func TestParallelSingleCore(t *testing.T) {
	mw := workload.MCShardedSieve(1)
	cfg := buildConfig(t, mw, 16, []bool{true}, core.Options{})
	cfg.Parallel = true
	s := mustRun(t, cfg, "single")
	verifyOutputs(t, mw, s, "single-core parallel")
}

// TestParallelContentionWindow is the quantum-skew regression test for
// the windowed arbiter. Under the old single busy-until clock, the
// contention stressor's bus wait-states exploded with the quantum (a
// core serviced late in a large quantum queued behind occupancy far in
// its own future). Slot packing makes contention accounting
// quantum-stable: the waits charged at quantum 64 must stay within a
// small factor of the quantum-1 oracle's, for both schedulers.
func TestParallelContentionWindow(t *testing.T) {
	mw := workload.MCContention(4)
	waits := func(quantum int64, parallel bool) int64 {
		cfg := buildConfig(t, mw, quantum, []bool{true}, core.Options{})
		cfg.BusBusyCycles = 2
		cfg.Parallel = parallel
		s := mustRun(t, cfg, fmt.Sprintf("contention q%d", quantum))
		verifyOutputs(t, mw, s, "contention")
		return s.Results().BusWaitCycles
	}
	w1 := waits(1, false)
	if w1 == 0 {
		t.Fatal("contention stressor charged no wait-states at quantum 1")
	}
	for _, parallel := range []bool{false, true} {
		w64 := waits(64, parallel)
		if w64 == 0 {
			t.Errorf("parallel=%v: no wait-states at quantum 64", parallel)
		}
		// The pre-window arbiter charged an order of magnitude more at
		// quantum 64 than at quantum 1; the window keeps them comparable.
		if w64 > 2*w1 || w64 < w1/2 {
			t.Errorf("parallel=%v: quantum-64 waits %d not within 2x of quantum-1 waits %d", parallel, w64, w1)
		}
	}
}
