package soc

import (
	"fmt"

	"repro/internal/socbus"
)

// busTxn is one logged shared-bus transaction of a scheduler lane: the
// access itself plus its request and grant cycles. For a read, val is
// the value the core observed — the commit replay asserts the live bus
// produces the same one.
type busTxn struct {
	addr  uint32
	val   uint32
	write bool
	req   int64
	grant int64
}

// commitState is the per-quantum commit machinery of the parallel
// scheduler. Cores commit in service order; the machinery tracks which
// conflict granules the committed prefix has mutated, decides whether a
// speculative lane's log is consistent with running after that prefix,
// and replays consistent logs onto the live world.
//
// The rules, per transaction:
//
//   - a write mutates its granule; a read mutates it only if the device
//     declares the offset side-effectful (mailbox DATA pop, IRQ CLAIM);
//   - a lane conflicts if any of its transactions touches a granule the
//     committed prefix mutated (reads would observe the mutation;
//     writes may behave differently against mutated state — a mailbox
//     post against a now-full slot);
//   - a lane also conflicts if its bus grants would not replay
//     identically against the live arbiter (earlier cores reserved
//     overlapping slots, so its wait-states — and therefore its timing
//     — were wrong).
//
// A conflicting lane is rolled back and re-run against the live world,
// which is exactly the sequential schedule for that lane.
type commitState struct {
	bus *socbus.Bus
	arb *Arbiter

	mutated map[uint64]struct{}
	scratch *Arbiter

	// extraMutation reports an additional granule mutated as a side
	// effect of a write to addr — the SoC wires the mailbox→doorbell
	// path here, so a post also marks the receiving core's interrupt
	// block as mutated.
	extraMutation func(addr uint32) (uint64, bool)
}

func newCommitState(bus *socbus.Bus, arb *Arbiter) *commitState {
	return &commitState{bus: bus, arb: arb, mutated: make(map[uint64]struct{}), scratch: arb.clone()}
}

// reset clears the quantum's mutation set.
func (cs *commitState) reset() {
	clear(cs.mutated)
}

// noteMutations folds a committed (or directly-run) lane's mutations
// into the quantum's mutation set.
func (cs *commitState) noteMutations(txns []busTxn) {
	for i := range txns {
		t := &txns[i]
		granule, readMutates := cs.bus.AccessMeta(t.addr)
		if !t.write && !readMutates {
			continue
		}
		cs.mutated[granule] = struct{}{}
		if t.write && cs.extraMutation != nil {
			if g, ok := cs.extraMutation(t.addr); ok {
				cs.mutated[g] = struct{}{}
			}
		}
	}
}

// conflicts reports whether any of the lane's transactions touches a
// granule the committed prefix mutated.
func (cs *commitState) conflicts(txns []busTxn) bool {
	for i := range txns {
		granule, _ := cs.bus.AccessMeta(txns[i].addr)
		if _, hit := cs.mutated[granule]; hit {
			return true
		}
	}
	return false
}

// grantsMatch reports whether the lane's speculative bus grants replay
// identically against the live arbiter, without mutating it.
func (cs *commitState) grantsMatch(txns []busTxn) bool {
	cs.scratch.copyStateFrom(cs.arb)
	for i := range txns {
		g := cs.scratch.slot(txns[i].req)
		if g != txns[i].grant {
			return false
		}
		cs.scratch.reserve(g)
	}
	return true
}

// replay commits a conflict-free lane: every logged transaction is
// re-acquired and re-applied on the live world in lane order, which
// lands device state, bus log, arbitration counters and statistics
// exactly where the sequential schedule would have put them. Read
// values are asserted against the speculation — a mismatch means the
// conflict rules missed a dependency, which is a scheduler bug, never
// a workload error.
func (cs *commitState) replay(core int, txns []busTxn) error {
	for i := range txns {
		t := &txns[i]
		g := cs.arb.acquire(core, t.req)
		if g != t.grant {
			return fmt.Errorf("parallel commit: grant diverged on replay (%#x: got %d, speculated %d)", t.addr, g, t.grant)
		}
		if t.write {
			cs.bus.BusWrite32(t.addr, t.val, g)
			continue
		}
		if v := cs.bus.BusRead32(t.addr, g); v != t.val {
			return fmt.Errorf("parallel commit: read diverged on replay (%#x: got %#x, speculated %#x)", t.addr, v, t.val)
		}
	}
	return nil
}
