package soc

import "testing"

// TestArbiterSlotPacking pins the windowed arbiter's defining behavior:
// a request timestamped before existing reservations packs into the
// free slot at its own time instead of queueing behind occupancy that
// sits in its future — the quantum-skew fix. Requests arrive out of
// order exactly as a large quantum produces them (one core's whole
// quantum of traffic before the next core's).
func TestArbiterSlotPacking(t *testing.T) {
	a := newArbiter(2, 2)
	// Core 0's quantum: transactions at cycles 10 and 20.
	if g := a.acquire(0, 10); g != 10 {
		t.Fatalf("grant %d, want 10", g)
	}
	if g := a.acquire(0, 20); g != 20 {
		t.Fatalf("grant %d, want 20", g)
	}
	// Core 1, serviced later in the same quantum, requests at cycle 14 —
	// between core 0's reservations. A busy-until clock would stall it
	// to 22; the window packs it into the hole at 14.
	if g := a.acquire(1, 14); g != 14 {
		t.Errorf("mid-hole request granted %d, want 14 (quantum-skew overestimation)", g)
	}
	if w := a.Waits(1); w != 0 {
		t.Errorf("mid-hole request charged %d wait cycles, want 0", w)
	}
	// A request overlapping a reservation still slips to the slot end.
	if g := a.acquire(1, 11); g != 12 {
		t.Errorf("overlapping request granted %d, want 12", g)
	}
	// The hole at [16,20) is too narrow at occupancy 2 for a request at
	// 15 (would collide with the reservation at 14..16): earliest fit 16.
	if g := a.acquire(1, 15); g != 16 {
		t.Errorf("tight-hole request granted %d, want 16", g)
	}
}

// TestArbiterPruneSafety: pruning below every future request time never
// changes a grant — only the window size.
func TestArbiterPruneSafety(t *testing.T) {
	a := newArbiter(2, 3)
	for _, req := range []int64{5, 5, 9, 14, 14, 20} {
		a.acquire(0, req)
	}
	b := a.clone()
	b.prune(24) // strictly below the next request times used below
	if len(b.window) >= len(a.window) {
		t.Errorf("prune dropped nothing (window %d -> %d)", len(a.window), len(b.window))
	}
	for _, req := range []int64{25, 26, 27, 40} {
		ga, gb := a.acquire(1, req), b.acquire(1, req)
		if ga != gb {
			t.Errorf("req %d: pruned arbiter granted %d, unpruned %d", req, gb, ga)
		}
	}
	if a.Waits(1) != b.Waits(1) || a.Grants(1) != b.Grants(1) {
		t.Errorf("accounting diverged after prune: waits %d/%d grants %d/%d",
			a.Waits(1), b.Waits(1), a.Grants(1), b.Grants(1))
	}
}

// TestArbiterCloneIndependence: a lane's private arbiter never leaks
// reservations or accounting back into its source.
func TestArbiterCloneIndependence(t *testing.T) {
	a := newArbiter(2, 1)
	a.acquire(0, 10)
	c := a.clone()
	c.acquire(1, 10)
	c.acquire(1, 11)
	if g := a.Grants(1); g != 0 {
		t.Errorf("clone leaked %d grants into source", g)
	}
	if g := a.acquire(1, 11); g != 11 {
		t.Errorf("source arbiter granted %d, want 11 (clone reservation leaked)", g)
	}
	// copyStateFrom refreshes the clone back to the source's state.
	c.copyStateFrom(a)
	if g, w := c.Grants(1), c.Waits(1); g != a.Grants(1) || w != a.Waits(1) {
		t.Errorf("copyStateFrom: grants/waits %d/%d, want %d/%d", g, w, a.Grants(1), a.Waits(1))
	}
	if g := c.acquire(0, 11); g != 12 {
		t.Errorf("refreshed clone granted %d, want 12", g)
	}
}
