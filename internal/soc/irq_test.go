package soc

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/socbus"
	"repro/internal/workload"
)

// The differential interrupt matrix: every interrupt-driven workload ×
// execution engine (reference ISS / interpreted C6x / compiled C6x) ×
// both correction-drain shapes, pinned bit-identical against the
// all-ISS oracle at the same quantum — registers, cycle counts, per-core
// CPI (instructions), memory traffic and delivered-interrupt counts.
// The workloads are exactly statically predictable at Level3 (see
// internal/workload/mcirq.go), which is what entitles the tests to
// demand zero tolerance.

// coreSnapshot is everything the matrix compares per core.
type coreSnapshot struct {
	Output       []uint32
	Cycles       int64
	Instructions int64
	CPI          float64
	BusGrants    int64
	BusWaits     int64
	IRQsTaken    int64
	D            [16]uint32
	A            [16]uint32 // index 11 excluded by compare (link fixup differs)
}

func snapshotSoC(s *System) []coreSnapshot {
	st := s.Results()
	out := make([]coreSnapshot, len(st.Cores))
	for i, cr := range st.Cores {
		d, a := s.CoreRegs(i)
		out[i] = coreSnapshot{
			Output:       cr.Output,
			Cycles:       cr.Cycles,
			Instructions: cr.Instructions,
			CPI:          cr.CPI,
			BusGrants:    cr.BusGrants,
			BusWaits:     cr.BusWaitCycles,
			IRQsTaken:    cr.IRQsTaken,
			D:            d,
			A:            a,
		}
	}
	return out
}

// Comparison strengths.
//
// compareFull is the same-quantum, homogeneous-engine contract: zero
// tolerance on everything, including cycle counts, per-core CPI and bus
// traffic. compareFunctional drops the timing, traffic and delivery
// counts: it applies across quanta (wfi wake cycles are quantum
// boundaries, and coalesced IPIs change wake counts) and to mixed-engine
// SoCs (the two engines stamp bus transactions at different pipeline
// positions — a pre-existing convention skew that shifts arbitration
// collisions when the engines share one bus).
const (
	compareFull = iota
	compareFunctional
)

func compareSnapshots(t *testing.T, label string, ref, got []coreSnapshot, mode int) {
	t.Helper()
	for i := range ref {
		r, g := ref[i], got[i]
		if !reflect.DeepEqual(r.Output, g.Output) {
			t.Errorf("%s core %d: output %v, want %v", label, i, g.Output, r.Output)
		}
		if mode == compareFull {
			if g.IRQsTaken != r.IRQsTaken {
				t.Errorf("%s core %d: irqs %d, want %d", label, i, g.IRQsTaken, r.IRQsTaken)
			}
			if g.BusGrants != r.BusGrants {
				t.Errorf("%s core %d: bus grants %d, want %d", label, i, g.BusGrants, r.BusGrants)
			}
			if g.Cycles != r.Cycles {
				t.Errorf("%s core %d: cycles %d, want %d", label, i, g.Cycles, r.Cycles)
			}
			if g.Instructions != r.Instructions {
				t.Errorf("%s core %d: instructions %d, want %d", label, i, g.Instructions, r.Instructions)
			}
			if g.CPI != r.CPI {
				t.Errorf("%s core %d: CPI %v, want %v", label, i, g.CPI, r.CPI)
			}
			if g.BusWaits != r.BusWaits {
				t.Errorf("%s core %d: bus waits %d, want %d", label, i, g.BusWaits, r.BusWaits)
			}
		}
		for r2 := 0; r2 < 16; r2++ {
			if g.D[r2] != r.D[r2] {
				t.Errorf("%s core %d: d%d = %#x, want %#x", label, i, r2, g.D[r2], r.D[r2])
			}
			if r2 != 11 && g.A[r2] != r.A[r2] {
				t.Errorf("%s core %d: a%d = %#x, want %#x", label, i, r2, g.A[r2], r.A[r2])
			}
		}
	}
}

// runIRQSoC builds and runs one SoC configuration of a multi-core
// workload and verifies every core's functional output.
func runIRQSoC(t *testing.T, mw workload.MultiWorkload, quantum int64, useISS bool, opts core.Options, engine platform.Engine, arb Arbitration) *System {
	t.Helper()
	cfg := buildConfig(t, mw, quantum, []bool{useISS}, opts)
	cfg.Engine = engine
	cfg.Arbitration = arb
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", mw.Name, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s: Run: %v", mw.Name, err)
	}
	verifyOutputs(t, mw, s, fmt.Sprintf("q=%d", quantum))
	return s
}

// irqWorkloads instantiates the interrupt-driven set at the given core
// count.
func irqWorkloads(cores int) []workload.MultiWorkload {
	return []workload.MultiWorkload{
		workload.MCIRQPingPong(cores),
		workload.MCIRQBarrier(cores),
		workload.MCIRQTimer(cores),
	}
}

// TestIRQDifferentialMatrix is the differential interrupt matrix. For
// every mc-irq-* workload and both tested quanta, the quantum's all-ISS
// run is the oracle; all-translated runs at Level3 under both engines
// and both drain shapes must reproduce it bit-exactly — an interrupt
// raised at source cycle k is taken at the identical source cycle on
// every engine, and nothing downstream may differ.
func TestIRQDifferentialMatrix(t *testing.T) {
	for _, mw := range irqWorkloads(3) {
		for _, quantum := range []int64{1, 64} {
			oracle := runIRQSoC(t, mw, quantum, true, core.Options{}, platform.EngineCompiled, RoundRobin)
			ref := snapshotSoC(oracle)
			var totalIRQs int64
			for _, c := range ref {
				totalIRQs += c.IRQsTaken
			}
			if totalIRQs == 0 {
				t.Fatalf("%s q=%d: oracle delivered no interrupts — the matrix would be vacuous", mw.Name, quantum)
			}
			for _, drain := range []bool{false, true} {
				for _, eng := range []platform.Engine{platform.EngineInterp, platform.EngineCompiled, platform.EngineCompiledNoFuse} {
					opts := core.Options{Level: core.Level3, SingleDrainCorrection: drain}
					label := fmt.Sprintf("%s q=%d drain%d %s", mw.Name, quantum, map[bool]int{false: 2, true: 1}[drain], eng)
					s := runIRQSoC(t, mw, quantum, false, opts, eng, RoundRobin)
					compareSnapshots(t, label, ref, snapshotSoC(s), compareFull)
				}
			}
		}
	}
}

// TestIRQMixedCores runs translated and ISS cores side by side in one
// SoC at Level3: the per-core differential mode must also be
// bit-identical against the all-ISS oracle — the aligned bus-timestamp
// convention and region-at-a-time quantum progress make even a
// heterogeneous SoC's arbitration outcomes exact.
func TestIRQMixedCores(t *testing.T) {
	for _, mw := range irqWorkloads(4) {
		for _, quantum := range []int64{1, 64} {
			oracle := runIRQSoC(t, mw, quantum, true, core.Options{}, platform.EngineCompiled, RoundRobin)
			cfg := buildConfig(t, mw, quantum, []bool{false, true}, core.Options{Level: core.Level3})
			s, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: New: %v", mw.Name, err)
			}
			if err := s.Run(); err != nil {
				t.Fatalf("%s: Run: %v", mw.Name, err)
			}
			verifyOutputs(t, mw, s, "mixed")
			compareSnapshots(t, fmt.Sprintf("%s mixed q=%d", mw.Name, quantum), snapshotSoC(oracle), snapshotSoC(s), compareFull)
		}
	}
}

// TestIRQQuantumEquivalence extends the quantum-equivalence suite to the
// interrupt-driven workloads: quantum 1 vs 64, under both arbitration
// policies and for both core kinds, the functional results — outputs,
// final register files, bus traffic, delivered-interrupt counts — are
// bit-identical. (Cycle counts legitimately differ across quanta: wfi
// wake cycles are quantum boundaries.)
func TestIRQQuantumEquivalence(t *testing.T) {
	for _, mw := range irqWorkloads(4) {
		for _, arb := range []Arbitration{RoundRobin, FixedPriority} {
			for _, kind := range []string{KindISS, KindTranslated} {
				t.Run(fmt.Sprintf("%s/%v/%s", mw.Name, arb, kind), func(t *testing.T) {
					useISS := kind == KindISS
					opts := core.Options{}
					if !useISS {
						opts = core.Options{Level: core.Level3}
					}
					a := runIRQSoC(t, mw, 1, useISS, opts, platform.EngineCompiled, arb)
					b := runIRQSoC(t, mw, 64, useISS, opts, platform.EngineCompiled, arb)
					compareSnapshots(t, "q1-vs-q64", snapshotSoC(a), snapshotSoC(b), compareFunctional)
				})
			}
		}
	}
}

// TestIRQTimerTickCount pins the timer workload's semantics directly:
// every core takes exactly the configured number of timer interrupts
// (the saturating handler makes the count quantum-invariant) and spends
// real emulated time idle in wfi.
func TestIRQTimerTickCount(t *testing.T) {
	mw := workload.MCIRQTimer(2)
	s := runIRQSoC(t, mw, 16, false, core.Options{Level: core.Level2}, platform.EngineCompiled, RoundRobin)
	st := s.Results()
	for i, cr := range st.Cores {
		if cr.IRQsTaken < 6 {
			t.Errorf("core %d: %d interrupts, want >= 6 (6 ticks + coalesced wakes)", i, cr.IRQsTaken)
		}
		if cr.IdleCycles == 0 {
			t.Errorf("core %d: no wfi idle time recorded", i)
		}
	}
	if s.IRQ.Claims == 0 {
		t.Errorf("controller recorded no claims")
	}
}

// TestIRQConfigValidation covers the config error paths: every
// misconfiguration must be rejected by New with a direct error.
func TestIRQConfigValidation(t *testing.T) {
	mw := workload.MCIRQTimer(1)
	files := assembleMulti(t, mw)
	good := func() Config {
		return Config{
			Quantum: 1,
			Cores:   []CoreConfig{{Name: "c0", ELF: files[0], UseISS: true}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no-cores", func(c *Config) { c.Cores = nil }},
		{"quantum-zero", func(c *Config) { c.Quantum = 0 }},
		{"quantum-negative", func(c *Config) { c.Quantum = -3 }},
		{"bad-arbitration", func(c *Config) { c.Arbitration = Arbitration(7) }},
		{"bad-engine", func(c *Config) { c.Engine = platform.Engine(9) }},
		{"negative-bus-busy", func(c *Config) { c.BusBusyCycles = -1 }},
		{"negative-shared", func(c *Config) { c.SharedWords = -1 }},
		{"negative-counters", func(c *Config) { c.CounterRegs = -1 }},
		{"negative-max-cycles", func(c *Config) { c.MaxCycles = -1 }},
		{"iss-core-no-elf", func(c *Config) { c.Cores[0].ELF = nil }},
		{"translated-core-no-input", func(c *Config) { c.Cores[0].ELF = nil; c.Cores[0].UseISS = false }},
		{"parallel-unshadowable-device", func(c *Config) {
			c.Parallel = true
			c.ExtraDevices = []socbus.Device{opaqueDevice{}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Errorf("New accepted %s", tc.name)
			}
		})
	}
	// The unmutated config must pass.
	if _, err := New(good()); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	// A shadowable extra device must pass under Parallel.
	cfg := good()
	cfg.Parallel = true
	cfg.ExtraDevices = []socbus.Device{socbus.NewUART(4)}
	if _, err := New(cfg); err != nil {
		t.Fatalf("parallel config with shadowable device rejected: %v", err)
	}
}

// opaqueDevice is a bus device without shadow support — the parallel
// scheduler must reject it at Validate.
type opaqueDevice struct{}

func (opaqueDevice) Range() (uint32, uint32)                   { return 0xF0FF_0000, 0x100 }
func (opaqueDevice) Read(off uint32, cycle int64) uint32       { return 0 }
func (opaqueDevice) Write(off uint32, val uint32, cycle int64) {}

// TestIRQAllWaitingDeadlock pins the fail-fast deadlock diagnosis: a
// program that sleeps with no raiser must produce the deadlock error,
// not spin to the cycle limit.
func TestIRQAllWaitingDeadlock(t *testing.T) {
	w := workload.Workload{
		Name: "sleeper",
		Source: "\t.text\n\t.global _start\n_start:\tla\ta8, 0xF0130000\n\tmovi\td0, 1\n" +
			"\tst.w\td0, 4(a8)\n\tei\n\twfi\n\thalt\n__irq:\treti\n",
	}
	mw := workload.MultiWorkload{Name: "sleeper", Cores: []workload.Workload{w}}
	files := assembleMulti(t, mw)
	s, err := New(Config{Quantum: 4, Cores: []CoreConfig{{ELF: files[0], UseISS: true}}})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Run()
	if err == nil {
		t.Fatal("deadlocked SoC ran to completion")
	}
	if want := "deadlock"; !containsStr(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
