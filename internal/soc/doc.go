// Package soc simulates a multi-core SoC: N TC32 cores — each executing
// its own program on the translated emulation platform
// (internal/platform) or on the cycle-accurate reference ISS
// (internal/iss), selectable per core — around one shared SoC bus
// (internal/socbus) carrying the inter-core devices: shared memory, a
// per-core mailbox/doorbell block, a bank of atomic counters, and the
// interrupt controller.
//
// # Quantum scheduling
//
// Every core owns a private memory and a private clock in the common
// source-cycle domain (the ISS pipeline clock, or the translated
// platform's generated-cycle count). The scheduler advances the cores
// toward a global target in fixed quanta of Config.Quantum cycles: each
// quantum, every non-halted core runs until its local clock reaches the
// target. Quantum=1 degenerates to cycle-lockstep — the accuracy oracle —
// while larger quanta amortize the scheduling overhead at the cost of
// intra-quantum skew between cores, exactly the trade made by
// quantum-based multi-core binary-translation simulators. Cores only
// interact through bus transactions (timestamped in the shared cycle
// domain), so on race-free workloads the functional results are
// independent of the quantum; cycle counts of workloads that synchronize
// by polling legitimately vary with it (a poll loop spins to the end of
// its quantum before the producer runs).
//
// # Bus arbitration
//
// All cores share the bus through per-core ports feeding one arbiter. A
// transaction occupies the bus for Config.BusBusyCycles; a port whose
// transaction arrives while the bus is busy is granted at the earliest
// free cycle and the difference is charged back to the requesting core as
// wait-state cycles — pipeline stalls on an ISS core, generated cycles on
// a translated core (platform.WaitReporter). The arbitration policy
// decides the intra-quantum service order of the cores, which is exactly
// the order same-cycle contenders win the bus: FixedPriority always runs
// core 0 first, RoundRobin rotates the starting core every quantum.
//
// # Interrupts
//
// Every core's interrupt-line input is wired to its output of the
// interrupt controller (socbus.IRQController): mailbox posts ring the
// receiving core's doorbell line, RAISE writes are cross-core soft
// IPIs, and the per-core periodic timer line is clocked by the
// scheduler at quantum boundaries — never by bus timestamps, so raises
// are engine-independent. Between quanta the scheduler ticks the
// controller; within a core's slice, delivery happens at basic-block
// boundaries (the architecture's delivery points, identical for the
// ISS and the translated program — see docs/architecture.md,
// "Interrupts"), and a core waiting in wfi with an idle line advances
// its clock to exactly the quantum target. The sequential schedule
// makes all of it deterministic: at a fixed quantum, an interrupt
// raised at source cycle k is taken at the identical source cycle on
// every engine, which the package's differential interrupt matrix
// pins with zero tolerance; across quanta the interrupt-driven mc-irq-*
// workloads stay functionally bit-identical. An all-waiting SoC with no
// line asserted and no timer armed fails fast with a deadlock error.
//
// # Determinism
//
// The default scheduler is strictly sequential: cores run one after
// another within a quantum, in an order that depends only on (policy,
// quantum index). No goroutines, no map iteration, no wall-clock input —
// a run is bit-identical for any host GOMAXPROCS, which the package's
// tests enforce together with quantum=1 vs quantum=k equivalence on
// race-free workloads and translated-vs-ISS per-core differential runs.
//
// # Parallel execution
//
// Config.Parallel switches to a speculative parallel scheduler that is
// bit-identical to the sequential one — same outputs, cycle counts,
// wait-state accounting, device statistics and bus log — at any
// GOMAXPROCS. Each core runs its quantum on its own goroutine against a
// private shadow of the shared world while recording its bus
// transactions; cores then commit in sequential service order, a lane
// committing cleanly only if its reads, arbiter grants and sampled IRQ
// state are unaffected by everything committed before it (conflict
// granules: per word of shared RAM and counters, per mailbox slot, per
// core block of the interrupt controller; mutating reads count as
// writes). Clean lanes replay their transaction log onto the live world;
// conflicting lanes roll back via the engines' checkpoint/rollback hooks
// and re-run sequentially. The differential torture matrix, a
// property/fuzz harness over the commit log, and -race determinism
// stress tests pin the equivalence with zero tolerance; see
// docs/architecture.md, "Parallel SoC execution".
package soc
