package soc

import (
	"fmt"

	"repro/internal/c6x"
	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/march"
	"repro/internal/platform"
	"repro/internal/socbus"
)

// CoreConfig configures one core of the SoC.
type CoreConfig struct {
	// Name labels the core in errors and results ("core0" if empty).
	Name string
	// ELF is the core's assembled program. It may be nil when Prog is
	// given (a pre-translated program, e.g. from the farm's
	// content-addressed translation cache).
	ELF *elf32.File
	// Prog is an optional pre-translated program; when nil and UseISS is
	// false, ELF is translated under Options.
	Prog *core.Program
	// UseISS runs this core on the cycle-accurate reference ISS instead
	// of the translated platform (per-core differential testing).
	UseISS bool
	// Options are the translation options of a translated core.
	Options core.Options
	// Desc is the ISS timing description; nil falls back to Options.Desc,
	// then march.Default.
	Desc *march.Desc
}

// Config configures a System.
type Config struct {
	Cores []CoreConfig
	// Quantum is the scheduling quantum in source cycles (min 1; 1 =
	// cycle lockstep, the accuracy oracle).
	Quantum int64
	// Arbitration is the bus-arbitration policy.
	Arbitration Arbitration
	// BusBusyCycles is the shared-bus occupancy of one transaction
	// (default 1).
	BusBusyCycles int64
	// SharedWords sizes the shared memory window (default 1024 words).
	SharedWords int
	// CounterRegs sizes the atomic counter bank (default 16).
	CounterRegs int
	// MaxCycles aborts a run whose global target clock exceeds it — the
	// deadlock guard for workloads whose peers never signal (default
	// 50e6 cycles).
	MaxCycles int64
	// ExtraDevices attaches additional peripherals to the shared bus.
	ExtraDevices []socbus.Device
	// Engine selects the C6x host-execution engine of every translated
	// core (the zero value is platform.EngineCompiled; ISS cores are
	// unaffected).
	Engine platform.Engine
	// Parallel runs the cores of each quantum speculatively on their own
	// goroutines with deterministic commit (see parallel.go). Results
	// are bit-identical to the sequential scheduler at any GOMAXPROCS.
	Parallel bool
}

// CoreKind names how a core executes.
const (
	KindTranslated = "translated"
	KindISS        = "iss"
)

// Validate checks the configuration, rejecting misconfiguration with a
// direct error instead of the confusing downstream failure it would
// otherwise become. Zero values of the sized fields (bus occupancy,
// shared words, counter regs, cycle limit) still mean "default"; the
// quantum does not — a quantum below 1 cycle is meaningless.
func (cfg *Config) Validate() error {
	if len(cfg.Cores) < 1 {
		return fmt.Errorf("soc: no cores configured")
	}
	if cfg.Quantum < 1 {
		return fmt.Errorf("soc: quantum %d invalid (minimum 1 source cycle; 1 = lockstep)", cfg.Quantum)
	}
	switch cfg.Arbitration {
	case RoundRobin, FixedPriority:
	default:
		return fmt.Errorf("soc: unknown arbitration policy %d", int(cfg.Arbitration))
	}
	switch cfg.Engine {
	case platform.EngineCompiled, platform.EngineCompiledNoFuse, platform.EngineInterp:
	default:
		return fmt.Errorf("soc: unknown execution engine %d", int(cfg.Engine))
	}
	if cfg.BusBusyCycles < 0 {
		return fmt.Errorf("soc: negative bus occupancy %d", cfg.BusBusyCycles)
	}
	if cfg.SharedWords < 0 || cfg.CounterRegs < 0 {
		return fmt.Errorf("soc: negative device size (shared %d, counters %d)", cfg.SharedWords, cfg.CounterRegs)
	}
	if cfg.MaxCycles < 0 {
		return fmt.Errorf("soc: negative cycle limit %d", cfg.MaxCycles)
	}
	for i, cc := range cfg.Cores {
		if cc.ELF == nil && (cc.UseISS || cc.Prog == nil) {
			name := cc.Name
			if name == "" {
				name = fmt.Sprintf("core%d", i)
			}
			if cc.UseISS {
				return fmt.Errorf("soc: %s: ISS core needs an ELF", name)
			}
			return fmt.Errorf("soc: %s: translated core needs an ELF or a Program", name)
		}
	}
	if cfg.Parallel {
		for _, d := range cfg.ExtraDevices {
			if _, ok := d.(socbus.ShadowDevice); !ok {
				base, _ := d.Range()
				return fmt.Errorf("soc: parallel execution needs shadowable devices; %T at %#x is not a socbus.ShadowDevice", d, base)
			}
		}
	}
	return nil
}

// coreState is one instantiated core.
type coreState struct {
	name string
	kind string
	port *busPort

	// irqSrc is the interrupt controller the core's IRQ line samples —
	// normally the live controller, retargeted at a lane's shadow
	// controller while the core runs speculatively.
	irqSrc *socbus.IRQController

	// Exactly one of the two is non-nil.
	iss  *iss.Sim
	plat *platform.System
}

// checkpoint saves the core's complete execution state through its
// engine's hook.
func (c *coreState) checkpoint() {
	if c.iss != nil {
		c.iss.Checkpoint()
		return
	}
	c.plat.Checkpoint()
}

// commitCheckpoint discards the outstanding checkpoint.
func (c *coreState) commitCheckpoint() {
	if c.iss != nil {
		c.iss.CommitCheckpoint()
		return
	}
	c.plat.CommitCheckpoint()
}

// rollback restores the state saved by checkpoint, including the bus
// port's undrained wait-states (accumulated speculatively, never handed
// to the timing model the checkpoint restored).
func (c *coreState) rollback() {
	if c.iss != nil {
		c.iss.Rollback()
	} else {
		c.plat.Rollback()
	}
	c.port.pending = 0
}

// System is an assembled multi-core SoC.
type System struct {
	cfg Config

	// Bus is the shared SoC bus; Shared, Mail, Counters and IRQ are the
	// standard inter-core devices attached to it.
	Bus      *socbus.Bus
	Shared   *socbus.SharedRAM
	Mail     *socbus.Mailbox
	Counters *socbus.CounterBank
	// IRQ is the interrupt controller: every mailbox post raises the
	// receiving core's doorbell line, RAISE writes are cross-core IPIs,
	// and the per-core timer line is clocked at quantum boundaries. Each
	// core's interrupt input is wired to its controller output.
	IRQ *socbus.IRQController
	// Arb is the bus arbiter.
	Arb *Arbiter

	cores  []*coreState
	order  []int
	quanta int64

	// par is the lazily-built parallel-scheduler runtime (nil until the
	// first parallel Run).
	par *parRuntime

	// trc is the per-run trace state (nil unless the global tracer was
	// recording when Run started; see trace.go).
	trc *socTrace
}

// New assembles a SoC from the configuration: builds the shared bus and
// devices, instantiates every core (translating where needed), and wires
// each core's bus port through the arbiter.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BusBusyCycles <= 0 {
		cfg.BusBusyCycles = 1
	}
	if cfg.SharedWords <= 0 {
		cfg.SharedWords = 1024
	}
	if cfg.CounterRegs <= 0 {
		cfg.CounterRegs = 16
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 50_000_000
	}

	s := &System{
		cfg:      cfg,
		Shared:   socbus.NewSharedRAM(cfg.SharedWords),
		Mail:     socbus.NewMailbox(len(cfg.Cores)),
		Counters: socbus.NewCounterBank(cfg.CounterRegs),
		IRQ:      socbus.NewIRQController(len(cfg.Cores)),
		Arb:      newArbiter(len(cfg.Cores), cfg.BusBusyCycles),
		order:    make([]int, len(cfg.Cores)),
	}
	// Every mailbox post rings the receiving core's doorbell line. Cores
	// that never enable the line (the polling workloads) just accumulate
	// pending bits — delivery additionally requires the program to
	// enable interrupts and carry a `__irq` handler.
	s.Mail.OnPost = func(slot int) { s.IRQ.Raise(slot, socbus.LineDoorbell) }
	devs := []socbus.Device{s.Shared, s.Mail, s.Counters, s.IRQ, socbus.NewTimer()}
	devs = append(devs, cfg.ExtraDevices...)
	s.Bus = socbus.NewBus(devs...)

	for i, cc := range cfg.Cores {
		name := cc.Name
		if name == "" {
			name = fmt.Sprintf("core%d", i)
		}
		cs := &coreState{name: name, irqSrc: s.IRQ, port: &busPort{core: i, arb: s.Arb, bus: s.Bus}}
		if cc.UseISS {
			if cc.ELF == nil {
				return nil, fmt.Errorf("soc: %s: ISS core needs an ELF", name)
			}
			desc := cc.Desc
			if desc == nil {
				desc = cc.Options.Desc
			}
			sim, err := iss.New(cc.ELF, iss.Config{Desc: desc, CycleAccurate: true})
			if err != nil {
				return nil, fmt.Errorf("soc: %s: %w", name, err)
			}
			sim.AttachBus(cs.port)
			core := i
			sim.IRQLine = func() bool { return cs.irqSrc.Line(core) }
			cs.kind = KindISS
			cs.iss = sim
		} else {
			prog := cc.Prog
			if prog == nil {
				if cc.ELF == nil {
					return nil, fmt.Errorf("soc: %s: translated core needs an ELF or a Program", name)
				}
				p, err := core.Translate(cc.ELF, cc.Options)
				if err != nil {
					return nil, fmt.Errorf("soc: %s: %w", name, err)
				}
				prog = p
			}
			sys := platform.NewWithEngine(prog, cfg.Engine)
			sys.Bus = cs.port
			core := i
			sys.IRQLine = func() bool { return cs.irqSrc.Line(core) }
			cs.kind = KindTranslated
			cs.plat = sys
		}
		s.cores = append(s.cores, cs)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Quanta returns the number of scheduling quanta executed so far.
func (s *System) Quanta() int64 { return s.quanta }

// now returns the core's position on the shared source-cycle clock.
func (c *coreState) now() int64 {
	if c.iss != nil {
		return c.iss.Cycles()
	}
	return c.plat.Now()
}

func (c *coreState) haltedCore() bool {
	if c.iss != nil {
		return c.iss.Arch.Halted
	}
	return c.plat.CPU.Halted()
}

// waitingCore reports whether the core is idling in wfi.
func (c *coreState) waitingCore() bool {
	if c.iss != nil {
		return c.iss.WaitingForIRQ()
	}
	return c.plat.WaitingForIRQ()
}

// irqsTaken returns the core's delivered-interrupt count.
func (c *coreState) irqsTaken() int64 {
	if c.iss != nil {
		return c.iss.Stats().IRQsTaken
	}
	return c.plat.Stats().IRQsTaken
}

// runUntil advances the core until its clock reaches limit or it halts,
// draining bus wait-states into its timing model as it goes. A core
// waiting in wfi whose line is idle advances its clock to exactly limit:
// the strictly sequential scheduler guarantees no other core can raise
// the line before the next quantum boundary, so the idle is exact — and
// identical for ISS and translated cores, which is what keeps wfi wake
// cycles bit-identical across the engines.
func (c *coreState) runUntil(limit int64) error {
	if c.iss != nil {
		for !c.iss.Arch.Halted && c.iss.Cycles() < limit {
			if c.iss.WaitingForIRQ() && !c.iss.IRQLineAsserted() {
				c.iss.IdleTo(limit)
				return nil
			}
			if err := c.iss.Step(); err != nil {
				return err
			}
			if w := c.port.TakeWait(); w > 0 {
				c.iss.Stall(w)
			}
		}
		return nil
	}
	return c.plat.RunUntil(limit)
}

// output returns the core's debug-port writes.
func (c *coreState) output() []uint32 {
	if c.iss != nil {
		return c.iss.Output()
	}
	return c.plat.Output
}

// scheduleOrder fills s.order with the core service order of quantum q.
func (s *System) scheduleOrder(q int64) []int {
	n := len(s.order)
	start := 0
	if s.cfg.Arbitration == RoundRobin {
		start = int(q % int64(n))
	}
	for i := 0; i < n; i++ {
		s.order[i] = (start + i) % n
	}
	return s.order
}

// pruneSlack pads the arbiter's window-prune bound below the previous
// quantum's start: a translated core's bus clock can sit one cycle
// behind its region boundary (platform busNow is Sync.Total-1+corr), so
// requests from the current quantum can be timestamped slightly before
// its start. The slack keeps pruning strictly below any future request
// time, which is what makes it grant-preserving.
const pruneSlack = int64(4)

// Run executes the SoC until every core has halted, on the sequential
// scheduler — or, when Config.Parallel is set and there is more than
// one core, on the speculative parallel scheduler, which is
// bit-identical by construction (see parallel.go).
func (s *System) Run() error {
	if s.cfg.Parallel && len(s.cores) > 1 {
		return s.runParallel()
	}
	return s.runSequential()
}

// runSequential is the strictly sequential scheduler (see the package
// comment on determinism): each quantum it services the cores one after
// another in arbitration order, advancing each to the quantum's target
// cycle.
func (s *System) runSequential() error {
	s.traceInit()
	target := int64(0)
	for q := int64(0); ; q++ {
		running, allWaiting := false, true
		for _, c := range s.cores {
			if !c.haltedCore() {
				running = true
				if !c.waitingCore() {
					allWaiting = false
				}
			}
		}
		if !running {
			return nil
		}
		if allWaiting && !s.irqPossible() {
			return fmt.Errorf("soc: deadlock: every running core waits in wfi with no line asserted and no timer armed")
		}
		if target >= s.cfg.MaxCycles {
			return fmt.Errorf("soc: cycle limit (%d) exceeded with cores still running (deadlock?)", s.cfg.MaxCycles)
		}
		s.Arb.prune(target - s.cfg.Quantum - pruneSlack)
		// Clock the interrupt controller with the quantum's start time:
		// timer lines raise here, between quanta, so every core observes
		// the raise at the same boundary regardless of engine.
		s.IRQ.Tick(target)
		target += s.cfg.Quantum
		s.quanta++
		for _, ci := range s.scheduleOrder(q) {
			c := s.cores[ci]
			if c.haltedCore() {
				continue
			}
			if err := c.runUntil(target); err != nil {
				return fmt.Errorf("soc: %s: %w", c.name, err)
			}
		}
		if s.trc != nil {
			s.traceQuantum(q, target-s.cfg.Quantum, target)
		}
	}
}

// irqPossible reports whether any interrupt can still arrive while every
// running core waits: a line already asserted, or a timer armed. Without
// either, an all-waiting SoC is a deadlock — failing fast beats spinning
// quanta to the cycle limit.
func (s *System) irqPossible() bool {
	for i := range s.cores {
		if s.IRQ.Line(i) {
			return true
		}
	}
	return s.IRQ.AnyTimerArmed()
}

// Output returns the debug-port output of core i.
func (s *System) Output(i int) []uint32 { return s.cores[i].output() }

// CoreRegs returns the final TC32 register files of core i (data and
// address registers) — directly from iss.Arch on an ISS core, from the
// C6x register mapping (d→A0..15, a→B0..15) on a translated core. The
// differential tests compare them bit-exactly; a11 is excluded there
// because translated code keeps packet-index return links in it.
func (s *System) CoreRegs(i int) (d, a [16]uint32) {
	c := s.cores[i]
	if c.iss != nil {
		return c.iss.Arch.D, c.iss.Arch.A
	}
	for r := 0; r < 16; r++ {
		d[r] = c.plat.CPU.Regs[c6x.A(r)]
		a[r] = c.plat.CPU.Regs[c6x.B(r)]
	}
	return d, a
}

// CoreResult is the measurement of one core after a run.
type CoreResult struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "translated" or "iss"

	// Instructions is the number of source instructions executed (ISS:
	// retired; translated: attributed to executed cycle regions — 0 at
	// Level0, which generates no cycles to attribute against).
	Instructions int64 `json:"instructions"`
	// Cycles is the core's final position on the emulated source-cycle
	// clock.
	Cycles int64 `json:"cycles"`
	// CPI is Cycles per source instruction (the board-CPI analog; 0 when
	// Instructions is 0).
	CPI float64 `json:"cpi"`
	// C6xCycles is the host-platform cycle count of a translated core (0
	// for ISS cores).
	C6xCycles int64 `json:"c6x_cycles,omitempty"`

	// BusGrants and BusWaitCycles are the core's shared-bus traffic and
	// the contention wait-states charged to it.
	BusGrants     int64 `json:"bus_grants"`
	BusWaitCycles int64 `json:"bus_wait_cycles"`

	// IRQsTaken counts delivered interrupts; IdleCycles is emulated time
	// spent waiting in wfi.
	IRQsTaken  int64 `json:"irqs_taken,omitempty"`
	IdleCycles int64 `json:"idle_cycles,omitempty"`

	Output []uint32 `json:"output"`
}

// Stats summarizes a run.
type Stats struct {
	Quanta  int64 `json:"quanta"`
	Quantum int64 `json:"quantum"`

	Cores []CoreResult `json:"cores"`

	// TotalInstructions and TotalCycles aggregate over all cores (the
	// simulated work of the run); MakespanCycles is the slowest core's
	// clock.
	TotalInstructions int64 `json:"total_instructions"`
	TotalCycles       int64 `json:"total_cycles"`
	MakespanCycles    int64 `json:"makespan_cycles"`

	BusTransactions int64 `json:"bus_transactions"`
	BusWaitCycles   int64 `json:"bus_wait_cycles"`
}

// Results measures every core.
func (s *System) Results() Stats {
	st := Stats{Quanta: s.quanta, Quantum: s.cfg.Quantum}
	for i, c := range s.cores {
		r := CoreResult{
			Name:          c.name,
			Kind:          c.kind,
			Cycles:        c.now(),
			BusGrants:     s.Arb.Grants(i),
			BusWaitCycles: s.Arb.Waits(i),
			Output:        append([]uint32(nil), c.output()...),
		}
		if c.iss != nil {
			is := c.iss.Stats()
			r.Instructions = is.Retired
			r.IRQsTaken = is.IRQsTaken
			r.IdleCycles = c.iss.IdleCycles()
		} else {
			ps := c.plat.Stats()
			r.Instructions = ps.SrcInstructions
			r.C6xCycles = ps.C6xCycles
			r.IRQsTaken = ps.IRQsTaken
			r.IdleCycles = ps.IdleCycles
		}
		if r.Instructions > 0 {
			r.CPI = float64(r.Cycles) / float64(r.Instructions)
		}
		st.Cores = append(st.Cores, r)
		st.TotalInstructions += r.Instructions
		st.TotalCycles += r.Cycles
		if r.Cycles > st.MakespanCycles {
			st.MakespanCycles = r.Cycles
		}
		st.BusTransactions += r.BusGrants
		st.BusWaitCycles += r.BusWaitCycles
	}
	return st
}
