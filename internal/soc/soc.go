package soc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/march"
	"repro/internal/platform"
	"repro/internal/socbus"
)

// CoreConfig configures one core of the SoC.
type CoreConfig struct {
	// Name labels the core in errors and results ("core0" if empty).
	Name string
	// ELF is the core's assembled program. It may be nil when Prog is
	// given (a pre-translated program, e.g. from the farm's
	// content-addressed translation cache).
	ELF *elf32.File
	// Prog is an optional pre-translated program; when nil and UseISS is
	// false, ELF is translated under Options.
	Prog *core.Program
	// UseISS runs this core on the cycle-accurate reference ISS instead
	// of the translated platform (per-core differential testing).
	UseISS bool
	// Options are the translation options of a translated core.
	Options core.Options
	// Desc is the ISS timing description; nil falls back to Options.Desc,
	// then march.Default.
	Desc *march.Desc
}

// Config configures a System.
type Config struct {
	Cores []CoreConfig
	// Quantum is the scheduling quantum in source cycles (min 1; 1 =
	// cycle lockstep, the accuracy oracle).
	Quantum int64
	// Arbitration is the bus-arbitration policy.
	Arbitration Arbitration
	// BusBusyCycles is the shared-bus occupancy of one transaction
	// (default 1).
	BusBusyCycles int64
	// SharedWords sizes the shared memory window (default 1024 words).
	SharedWords int
	// CounterRegs sizes the atomic counter bank (default 16).
	CounterRegs int
	// MaxCycles aborts a run whose global target clock exceeds it — the
	// deadlock guard for workloads whose peers never signal (default
	// 50e6 cycles).
	MaxCycles int64
	// ExtraDevices attaches additional peripherals to the shared bus.
	ExtraDevices []socbus.Device
	// Engine selects the C6x host-execution engine of every translated
	// core (the zero value is platform.EngineCompiled; ISS cores are
	// unaffected).
	Engine platform.Engine
}

// CoreKind names how a core executes.
const (
	KindTranslated = "translated"
	KindISS        = "iss"
)

// coreState is one instantiated core.
type coreState struct {
	name string
	kind string
	port *busPort

	// Exactly one of the two is non-nil.
	iss  *iss.Sim
	plat *platform.System
}

// System is an assembled multi-core SoC.
type System struct {
	cfg Config

	// Bus is the shared SoC bus; Shared, Mail and Counters are the
	// standard inter-core devices attached to it.
	Bus      *socbus.Bus
	Shared   *socbus.SharedRAM
	Mail     *socbus.Mailbox
	Counters *socbus.CounterBank
	// Arb is the bus arbiter.
	Arb *Arbiter

	cores  []*coreState
	order  []int
	quanta int64
}

// New assembles a SoC from the configuration: builds the shared bus and
// devices, instantiates every core (translating where needed), and wires
// each core's bus port through the arbiter.
func New(cfg Config) (*System, error) {
	if len(cfg.Cores) == 0 {
		return nil, fmt.Errorf("soc: no cores configured")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 1
	}
	if cfg.BusBusyCycles <= 0 {
		cfg.BusBusyCycles = 1
	}
	if cfg.SharedWords <= 0 {
		cfg.SharedWords = 1024
	}
	if cfg.CounterRegs <= 0 {
		cfg.CounterRegs = 16
	}
	if cfg.MaxCycles <= 0 {
		cfg.MaxCycles = 50_000_000
	}

	s := &System{
		cfg:      cfg,
		Shared:   socbus.NewSharedRAM(cfg.SharedWords),
		Mail:     socbus.NewMailbox(len(cfg.Cores)),
		Counters: socbus.NewCounterBank(cfg.CounterRegs),
		Arb:      newArbiter(len(cfg.Cores), cfg.BusBusyCycles),
		order:    make([]int, len(cfg.Cores)),
	}
	devs := []socbus.Device{s.Shared, s.Mail, s.Counters, socbus.NewTimer()}
	devs = append(devs, cfg.ExtraDevices...)
	s.Bus = socbus.NewBus(devs...)

	for i, cc := range cfg.Cores {
		name := cc.Name
		if name == "" {
			name = fmt.Sprintf("core%d", i)
		}
		cs := &coreState{name: name, port: &busPort{core: i, arb: s.Arb, bus: s.Bus}}
		if cc.UseISS {
			if cc.ELF == nil {
				return nil, fmt.Errorf("soc: %s: ISS core needs an ELF", name)
			}
			desc := cc.Desc
			if desc == nil {
				desc = cc.Options.Desc
			}
			sim, err := iss.New(cc.ELF, iss.Config{Desc: desc, CycleAccurate: true})
			if err != nil {
				return nil, fmt.Errorf("soc: %s: %w", name, err)
			}
			sim.AttachBus(cs.port)
			cs.kind = KindISS
			cs.iss = sim
		} else {
			prog := cc.Prog
			if prog == nil {
				if cc.ELF == nil {
					return nil, fmt.Errorf("soc: %s: translated core needs an ELF or a Program", name)
				}
				p, err := core.Translate(cc.ELF, cc.Options)
				if err != nil {
					return nil, fmt.Errorf("soc: %s: %w", name, err)
				}
				prog = p
			}
			sys := platform.NewWithEngine(prog, cfg.Engine)
			sys.Bus = cs.port
			cs.kind = KindTranslated
			cs.plat = sys
		}
		s.cores = append(s.cores, cs)
	}
	return s, nil
}

// Cores returns the number of cores.
func (s *System) Cores() int { return len(s.cores) }

// Quanta returns the number of scheduling quanta executed so far.
func (s *System) Quanta() int64 { return s.quanta }

// now returns the core's position on the shared source-cycle clock.
func (c *coreState) now() int64 {
	if c.iss != nil {
		return c.iss.Cycles()
	}
	return c.plat.Now()
}

func (c *coreState) haltedCore() bool {
	if c.iss != nil {
		return c.iss.Arch.Halted
	}
	return c.plat.CPU.Halted()
}

// runUntil advances the core until its clock reaches limit or it halts,
// draining bus wait-states into its timing model as it goes.
func (c *coreState) runUntil(limit int64) error {
	if c.iss != nil {
		for !c.iss.Arch.Halted && c.iss.Cycles() < limit {
			if err := c.iss.Step(); err != nil {
				return err
			}
			if w := c.port.TakeWait(); w > 0 {
				c.iss.Stall(w)
			}
		}
		return nil
	}
	return c.plat.RunUntil(limit)
}

// output returns the core's debug-port writes.
func (c *coreState) output() []uint32 {
	if c.iss != nil {
		return c.iss.Output()
	}
	return c.plat.Output
}

// scheduleOrder fills s.order with the core service order of quantum q.
func (s *System) scheduleOrder(q int64) []int {
	n := len(s.order)
	start := 0
	if s.cfg.Arbitration == RoundRobin {
		start = int(q % int64(n))
	}
	for i := 0; i < n; i++ {
		s.order[i] = (start + i) % n
	}
	return s.order
}

// Run executes the SoC until every core has halted. The scheduler is
// strictly sequential (see the package comment on determinism): each
// quantum it services the cores one after another in arbitration order,
// advancing each to the quantum's target cycle.
func (s *System) Run() error {
	target := int64(0)
	for q := int64(0); ; q++ {
		running := false
		for _, c := range s.cores {
			if !c.haltedCore() {
				running = true
				break
			}
		}
		if !running {
			return nil
		}
		if target >= s.cfg.MaxCycles {
			return fmt.Errorf("soc: cycle limit (%d) exceeded with cores still running (deadlock?)", s.cfg.MaxCycles)
		}
		target += s.cfg.Quantum
		s.quanta++
		for _, ci := range s.scheduleOrder(q) {
			c := s.cores[ci]
			if c.haltedCore() {
				continue
			}
			if err := c.runUntil(target); err != nil {
				return fmt.Errorf("soc: %s: %w", c.name, err)
			}
		}
	}
}

// Output returns the debug-port output of core i.
func (s *System) Output(i int) []uint32 { return s.cores[i].output() }

// CoreResult is the measurement of one core after a run.
type CoreResult struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "translated" or "iss"

	// Instructions is the number of source instructions executed (ISS:
	// retired; translated: attributed to executed cycle regions — 0 at
	// Level0, which generates no cycles to attribute against).
	Instructions int64 `json:"instructions"`
	// Cycles is the core's final position on the emulated source-cycle
	// clock.
	Cycles int64 `json:"cycles"`
	// CPI is Cycles per source instruction (the board-CPI analog; 0 when
	// Instructions is 0).
	CPI float64 `json:"cpi"`
	// C6xCycles is the host-platform cycle count of a translated core (0
	// for ISS cores).
	C6xCycles int64 `json:"c6x_cycles,omitempty"`

	// BusGrants and BusWaitCycles are the core's shared-bus traffic and
	// the contention wait-states charged to it.
	BusGrants     int64 `json:"bus_grants"`
	BusWaitCycles int64 `json:"bus_wait_cycles"`

	Output []uint32 `json:"output"`
}

// Stats summarizes a run.
type Stats struct {
	Quanta  int64 `json:"quanta"`
	Quantum int64 `json:"quantum"`

	Cores []CoreResult `json:"cores"`

	// TotalInstructions and TotalCycles aggregate over all cores (the
	// simulated work of the run); MakespanCycles is the slowest core's
	// clock.
	TotalInstructions int64 `json:"total_instructions"`
	TotalCycles       int64 `json:"total_cycles"`
	MakespanCycles    int64 `json:"makespan_cycles"`

	BusTransactions int64 `json:"bus_transactions"`
	BusWaitCycles   int64 `json:"bus_wait_cycles"`
}

// Results measures every core.
func (s *System) Results() Stats {
	st := Stats{Quanta: s.quanta, Quantum: s.cfg.Quantum}
	for i, c := range s.cores {
		r := CoreResult{
			Name:          c.name,
			Kind:          c.kind,
			Cycles:        c.now(),
			BusGrants:     s.Arb.Grants(i),
			BusWaitCycles: s.Arb.Waits(i),
			Output:        append([]uint32(nil), c.output()...),
		}
		if c.iss != nil {
			is := c.iss.Stats()
			r.Instructions = is.Retired
		} else {
			ps := c.plat.Stats()
			r.Instructions = ps.SrcInstructions
			r.C6xCycles = ps.C6xCycles
		}
		if r.Instructions > 0 {
			r.CPI = float64(r.Cycles) / float64(r.Instructions)
		}
		st.Cores = append(st.Cores, r)
		st.TotalInstructions += r.Instructions
		st.TotalCycles += r.Cycles
		if r.Cycles > st.MakespanCycles {
			st.MakespanCycles = r.Cycles
		}
		st.BusTransactions += r.BusGrants
		st.BusWaitCycles += r.BusWaitCycles
	}
	return st
}
