package soc

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// assembleMulti assembles every core program of a multi-core workload.
func assembleMulti(t *testing.T, mw workload.MultiWorkload) []*elf32.File {
	t.Helper()
	files := make([]*elf32.File, len(mw.Cores))
	for i, w := range mw.Cores {
		f, err := tc32asm.Assemble(w.Source)
		if err != nil {
			t.Fatalf("%s: assemble: %v", w.Name, err)
		}
		files[i] = f
	}
	return files
}

// buildConfig builds a Config with one core per program. kind selects
// per-core execution: for core i, useISS[i%len(useISS)].
func buildConfig(t *testing.T, mw workload.MultiWorkload, quantum int64, useISS []bool, opts core.Options) Config {
	t.Helper()
	files := assembleMulti(t, mw)
	cfg := Config{Quantum: quantum}
	for i, f := range files {
		cfg.Cores = append(cfg.Cores, CoreConfig{
			Name:    mw.Cores[i].Name,
			ELF:     f,
			UseISS:  useISS[i%len(useISS)],
			Options: opts,
		})
	}
	return cfg
}

// verifyOutputs checks every core's debug output against its expectation.
func verifyOutputs(t *testing.T, mw workload.MultiWorkload, s *System, label string) {
	t.Helper()
	for i, w := range mw.Cores {
		if err := workload.SameOutput(s.Output(i), w.Expected); err != nil {
			t.Errorf("%s %s: %v", label, w.Name, err)
		}
	}
}

// runMulti assembles, runs and verifies one configuration.
func runMulti(t *testing.T, mw workload.MultiWorkload, quantum int64, useISS []bool, opts core.Options) *System {
	t.Helper()
	s, err := New(buildConfig(t, mw, quantum, useISS, opts))
	if err != nil {
		t.Fatalf("%s: New: %v", mw.Name, err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("%s: Run: %v", mw.Name, err)
	}
	verifyOutputs(t, mw, s, fmt.Sprintf("q=%d", quantum))
	return s
}

// TestISSLockstep runs every multi-core workload on reference-ISS cores
// in cycle lockstep (quantum 1), the accuracy oracle.
func TestISSLockstep(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		for _, mw := range workload.MCAll(cores) {
			t.Run(fmt.Sprintf("%s-%d", mw.Name, cores), func(t *testing.T) {
				runMulti(t, mw, 1, []bool{true}, core.Options{})
			})
		}
	}
}

// TestTranslatedCores runs every multi-core workload on translated cores
// at every detail level.
func TestTranslatedCores(t *testing.T) {
	for _, level := range []core.Level{core.Level0, core.Level1, core.Level2, core.Level3} {
		for _, mw := range workload.MCAll(4) {
			t.Run(fmt.Sprintf("%s-L%d", mw.Name, int(level)), func(t *testing.T) {
				runMulti(t, mw, 16, []bool{false}, core.Options{Level: level})
			})
		}
	}
}

// TestMixedDifferential runs translated and ISS cores side by side in
// one SoC — the per-core differential mode — and expects every core to
// produce its reference output.
func TestMixedDifferential(t *testing.T) {
	for _, mw := range workload.MCAll(4) {
		t.Run(mw.Name, func(t *testing.T) {
			runMulti(t, mw, 8, []bool{false, true}, core.Options{Level: core.Level2})
		})
	}
}

// TestQuantumEquivalence checks that on the (race-free) multi-core
// workloads the functional results are bit-identical between cycle
// lockstep and large quanta.
func TestQuantumEquivalence(t *testing.T) {
	for _, mw := range workload.MCAll(4) {
		t.Run(mw.Name, func(t *testing.T) {
			a := runMulti(t, mw, 1, []bool{true}, core.Options{})
			b := runMulti(t, mw, 64, []bool{true}, core.Options{})
			for i := range mw.Cores {
				if !reflect.DeepEqual(a.Output(i), b.Output(i)) {
					t.Errorf("core %d: output differs between quantum 1 and 64: %v vs %v",
						i, a.Output(i), b.Output(i))
				}
			}
		})
	}
}

// TestDeterminism runs the same SoC twice under different GOMAXPROCS and
// requires bit-identical results — outputs, cycle counts, bus statistics,
// everything in Stats.
func TestDeterminism(t *testing.T) {
	mw := workload.MCAll(4)[0]
	run := func(procs int) Stats {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		s := runMulti(t, mw, 16, []bool{false, true}, core.Options{Level: core.Level3})
		return s.Results()
	}
	one := run(1)
	many := run(4)
	if !reflect.DeepEqual(one, many) {
		t.Errorf("results differ across GOMAXPROCS:\n1: %+v\n4: %+v", one, many)
	}
}

// TestArbitrationPolicies runs the contention stressor under both
// policies: functional results must agree (the adds are atomic), and the
// contended run must actually charge wait-states.
func TestArbitrationPolicies(t *testing.T) {
	mw := workload.MCContention(4)
	for _, pol := range []Arbitration{RoundRobin, FixedPriority} {
		cfg := buildConfig(t, mw, 4, []bool{true}, core.Options{})
		cfg.Arbitration = pol
		cfg.BusBusyCycles = 2
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		verifyOutputs(t, mw, s, pol.String())
		st := s.Results()
		if st.BusWaitCycles == 0 {
			t.Errorf("%v: contention stressor charged no bus wait-states", pol)
		}
		if got := s.Counters.Value(1); got != uint32(4*32) {
			t.Errorf("%v: contended counter = %d, want %d", pol, got, 4*32)
		}
	}
}

// TestArbiterAccounting checks the arbiter's grant/wait math exactly.
func TestArbiterAccounting(t *testing.T) {
	a := newArbiter(3, 2)
	cases := []struct {
		core      int
		t         int64
		wantGrant int64
	}{
		{0, 10, 10}, // bus idle
		{1, 10, 12}, // same-cycle contender waits one occupancy
		{2, 11, 14}, // arrives while busy with core 1's transaction
		{0, 20, 20}, // bus long idle again
		{0, 21, 22}, // back-to-back from the same core also waits
	}
	for i, c := range cases {
		if got := a.acquire(c.core, c.t); got != c.wantGrant {
			t.Errorf("acquire %d: grant %d, want %d", i, got, c.wantGrant)
		}
	}
	if w := a.Waits(1); w != 2 {
		t.Errorf("core 1 waits = %d, want 2", w)
	}
	if w := a.Waits(2); w != 3 {
		t.Errorf("core 2 waits = %d, want 3", w)
	}
	if w := a.Waits(0); w != 1 {
		t.Errorf("core 0 waits = %d, want 1", w)
	}
	if g := a.Grants(0); g != 3 {
		t.Errorf("core 0 grants = %d, want 3", g)
	}
}

// TestPerCoreCPI checks that per-core CPI is populated for both core
// kinds and that the translated core's attributed instruction count
// matches the ISS retirement count of the same program running in the
// same SoC roles (sharded sieve shards 1 and 2 run identical code paths
// only on their own shards, so compare each core against itself across
// two runs).
func TestPerCoreCPI(t *testing.T) {
	mw := workload.MCShardedSieve(2)
	trans := runMulti(t, mw, 16, []bool{false}, core.Options{Level: core.Level2}).Results()
	ref := runMulti(t, mw, 16, []bool{true}, core.Options{}).Results()
	for i := range mw.Cores {
		tc, rc := trans.Cores[i], ref.Cores[i]
		if tc.Instructions == 0 || tc.CPI == 0 {
			t.Errorf("core %d: translated CPI not populated: %+v", i, tc)
		}
		if rc.Instructions == 0 || rc.CPI == 0 {
			t.Errorf("core %d: ISS CPI not populated: %+v", i, rc)
		}
		// The attributed source instructions of the translated core and
		// the ISS retirement count differ only by the spin-loop
		// iterations each timing model sees; both must be in the same
		// ballpark (within 25%) for the sieve shards.
		lo, hi := rc.Instructions*3/4, rc.Instructions*5/4
		if tc.Instructions < lo || tc.Instructions > hi {
			t.Errorf("core %d: attributed instructions %d far from ISS %d",
				i, tc.Instructions, rc.Instructions)
		}
	}
}
