package tc32

// Leaders computes the basic-block leader set of a decoded instruction
// stream: the entry point, every statically-known branch target, the
// fall-through successor of every branch (including halt, reti and wfi),
// every code address materialized by the movh.a/lea `la` idiom (a
// potential indirect-jump target), and any extra entry points (the
// `__irq` interrupt vector).
//
// The set defines the architecture's interrupt delivery points: an
// asynchronous interrupt is taken only when the core is about to execute
// a leader. The binary translator (internal/core) forms its cycle
// regions from exactly this set, so the reference simulator and the
// translated program agree bit-exactly on where — and therefore at which
// source cycle — a pending interrupt is taken. Both consumers must call
// this one function; a second implementation would be a divergence bug
// waiting to happen.
//
// Addresses in the returned set are not guaranteed to be instruction
// boundaries (a branch may target padding); callers filter against their
// decode index.
func Leaders(insts []Inst, entry uint32, extra ...uint32) map[uint32]bool {
	leaders := map[uint32]bool{entry: true}
	for _, in := range insts {
		if !in.Op.IsBranch() {
			continue
		}
		if !in.Op.IsIndirect() && in.Op != HALT && in.Op != WFI {
			leaders[in.Target()] = true
		}
		leaders[in.Addr+uint32(in.Size)] = true
	}
	for i := 0; i+1 < len(insts); i++ {
		a, b := insts[i], insts[i+1]
		if a.Op == MOVHA && b.Op == LEA && a.Rd == b.Rd && b.Rs1 == a.Rd {
			leaders[uint32(a.Imm)<<16+uint32(b.Imm)] = true
		}
	}
	for _, x := range extra {
		if x != 0 {
			leaders[x] = true
		}
	}
	return leaders
}
