package tc32

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpNamesUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(1); op < NumOps; op++ {
		name := op.String()
		if name == "" || name == "<invalid>" {
			t.Fatalf("op %d has no name", op)
		}
		if prev, ok := seen[name]; ok {
			t.Fatalf("duplicate mnemonic %q for ops %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestOpByName(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		if got := OpByName(op.String()); got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
	if got := OpByName("frobnicate"); got != BAD {
		t.Errorf("OpByName(frobnicate) = %v, want BAD", got)
	}
}

func TestEncodingWidthBit(t *testing.T) {
	for op := Op(1); op < NumOps; op++ {
		enc := opInfo[op].Enc
		if op.Is16Bit() != (enc&1 == 1) {
			t.Errorf("%v: width bit mismatch (enc=%#x, is16=%v)", op, enc, op.Is16Bit())
		}
		if EncodedSize(op) != map[bool]uint8{true: 2, false: 4}[op.Is16Bit()] {
			t.Errorf("%v: EncodedSize mismatch", op)
		}
	}
}

// randomInst generates a valid random instruction for property testing.
func randomInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(int(NumOps)-1))
		i := Inst{Op: op, Addr: uint32(r.Intn(1<<16) * 2)}
		switch op.Format() {
		case FmtRI:
			i.Rd = uint8(r.Intn(16))
			i.Rs1 = uint8(r.Intn(16))
			switch op {
			case ANDI, ORI, XORI, MOVHI, MOVHA:
				i.Imm = int32(r.Intn(1 << 16))
			default:
				i.Imm = int32(r.Intn(1<<16)) - 1<<15
			}
		case FmtRR:
			i.Rd = uint8(r.Intn(16))
			i.Rs1 = uint8(r.Intn(16))
			i.Rs2 = uint8(r.Intn(16))
		case FmtLS:
			i.Rd = uint8(r.Intn(16))
			i.Rs1 = uint8(r.Intn(16))
			i.Imm = int32(r.Intn(1<<16)) - 1<<15
		case FmtBR:
			i.Rs1 = uint8(r.Intn(16))
			i.Rs2 = uint8(r.Intn(16))
			i.Imm = 2 * (int32(r.Intn(1<<16)) - 1<<15)
		case FmtJ:
			i.Imm = 2 * (int32(r.Intn(1<<24)) - 1<<23)
		case FmtJR:
			i.Rs1 = uint8(r.Intn(16))
		case FmtSRR:
			i.Rd = uint8(r.Intn(16))
			i.Rs1 = uint8(r.Intn(16))
		case FmtSRC:
			i.Rd = uint8(r.Intn(16))
			i.Imm = int32(r.Intn(16)) - 8
		case FmtSB:
			i.Imm = 2 * (int32(r.Intn(256)) - 128)
		}
		return i
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomInst(r)
		var buf [4]byte
		n, err := Encode(want, buf[:])
		if err != nil {
			t.Logf("encode %+v: %v", want, err)
			return false
		}
		if n != int(EncodedSize(want.Op)) {
			t.Logf("encode size %d != %d", n, EncodedSize(want.Op))
			return false
		}
		got, err := Decode(buf[:n], want.Addr)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		want.Size = uint8(n)
		if got != want {
			t.Logf("round trip mismatch:\n got %+v\nwant %+v", got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{0x00, 0x00}, 0); err == nil {
		t.Error("decoding opcode 0 should fail")
	}
	if _, err := Decode([]byte{0x02}, 0); err == nil {
		t.Error("decoding truncated instruction should fail")
	}
	if _, err := Decode([]byte{0x02, 0x00, 0x00}, 0); err == nil {
		t.Error("decoding truncated 32-bit instruction should fail")
	}
	if _, err := Decode(nil, 0); err == nil {
		t.Error("decoding empty buffer should fail")
	}
}

func TestEncodeRangeChecks(t *testing.T) {
	cases := []Inst{
		{Op: MOVI, Rd: 16},
		{Op: MOVI, Rd: 0, Imm: 1 << 17},
		{Op: ADD, Rd: 0, Rs1: 16},
		{Op: ADD, Rd: 0, Rs2: 16},
		{Op: LDW, Rd: 0, Rs1: 0, Imm: 1 << 16},
		{Op: JEQ, Imm: 3},       // odd displacement
		{Op: JEQ, Imm: 1 << 18}, // out of range
		{Op: J16, Imm: 600},     // out of 8-bit range
		{Op: MOVI16, Imm: 9},    // out of const4 range
		{Op: BAD},
	}
	var buf [4]byte
	for _, c := range cases {
		if _, err := Encode(c, buf[:]); err == nil {
			t.Errorf("Encode(%+v) should fail", c)
		}
	}
}

func TestBranchTargets(t *testing.T) {
	i := Inst{Op: JEQ, Rs1: 1, Rs2: 2, Imm: -8, Addr: 0x100}
	if got := i.Target(); got != 0xF8 {
		t.Errorf("Target = %#x, want 0xF8", got)
	}
	if !i.Backward() {
		t.Error("negative displacement should be backward")
	}
	fwd := Inst{Op: JNE, Imm: 12, Addr: 0x100}
	if fwd.Backward() {
		t.Error("positive displacement should be forward")
	}
}

func TestClassPredicates(t *testing.T) {
	checks := []struct {
		op                                     Op
		branch, cond, call, indir, load, store bool
	}{
		{J, true, false, false, false, false, false},
		{JL, true, false, true, false, false, false},
		{JI, true, false, false, true, false, false},
		{RET, true, false, false, true, false, false},
		{RET16, true, false, false, true, false, false},
		{JEQ, true, true, false, false, false, false},
		{JZ16, true, true, false, false, false, false},
		{HALT, true, false, false, false, false, false},
		{LDW, false, false, false, false, true, false},
		{LDA, false, false, false, false, true, false},
		{STW, false, false, false, false, false, true},
		{STA, false, false, false, false, false, true},
		{ADD, false, false, false, false, false, false},
	}
	for _, c := range checks {
		if c.op.IsBranch() != c.branch {
			t.Errorf("%v.IsBranch() = %v", c.op, c.op.IsBranch())
		}
		if c.op.IsCondBranch() != c.cond {
			t.Errorf("%v.IsCondBranch() = %v", c.op, c.op.IsCondBranch())
		}
		if c.op.IsCall() != c.call {
			t.Errorf("%v.IsCall() = %v", c.op, c.op.IsCall())
		}
		if c.op.IsIndirect() != c.indir {
			t.Errorf("%v.IsIndirect() = %v", c.op, c.op.IsIndirect())
		}
		if c.op.IsLoad() != c.load {
			t.Errorf("%v.IsLoad() = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v.IsStore() = %v", c.op, c.op.IsStore())
		}
	}
}

func TestDivSemantics(t *testing.T) {
	cases := []struct {
		a, b, q, r int32
	}{
		{7, 2, 3, 1},
		{-7, 2, -3, -1},
		{7, -2, -3, 1},
		{5, 0, 0, 5},
		{-1 << 31, -1, -1 << 31, 0},
		{0, 3, 0, 0},
	}
	for _, c := range cases {
		if q := DivQuot(c.a, c.b); q != c.q {
			t.Errorf("DivQuot(%d, %d) = %d, want %d", c.a, c.b, q, c.q)
		}
		if r := DivRem(c.a, c.b); r != c.r {
			t.Errorf("DivRem(%d, %d) = %d, want %d", c.a, c.b, r, c.r)
		}
	}
	if q := DivQuotU(10, 0); q != 0 {
		t.Errorf("DivQuotU(10,0) = %d, want 0", q)
	}
	if r := DivRemU(10, 0); r != 10 {
		t.Errorf("DivRemU(10,0) = %d, want 10", r)
	}
	if q := DivQuotU(10, 3); q != 3 {
		t.Errorf("DivQuotU(10,3) = %d, want 3", q)
	}
	if r := DivRemU(10, 3); r != 1 {
		t.Errorf("DivRemU(10,3) = %d, want 1", r)
	}
}

func TestDecodeAll(t *testing.T) {
	var buf []byte
	insts := []Inst{
		{Op: MOVI, Rd: 1, Imm: 42},
		{Op: ADD16, Rd: 1, Rs1: 2},
		{Op: HALT},
	}
	for _, i := range insts {
		var b [4]byte
		n, err := Encode(i, b[:])
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, b[:n]...)
	}
	got, err := DecodeAll(buf, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d insts, want 3", len(got))
	}
	if got[0].Addr != 0x1000 || got[1].Addr != 0x1004 || got[2].Addr != 0x1006 {
		t.Errorf("addresses wrong: %#x %#x %#x", got[0].Addr, got[1].Addr, got[2].Addr)
	}
	if got[1].Op != ADD16 || got[2].Op != HALT {
		t.Errorf("ops wrong: %v %v", got[1].Op, got[2].Op)
	}
}

func TestStringSmoke(t *testing.T) {
	// Every op should render without panicking and include its mnemonic.
	r := rand.New(rand.NewSource(1))
	for n := 0; n < 200; n++ {
		i := randomInst(r)
		s := i.String()
		if s == "" {
			t.Fatalf("empty disassembly for %+v", i)
		}
	}
}
