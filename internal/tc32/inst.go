package tc32

import (
	"fmt"
)

// Inst is one decoded TC32 instruction.
//
// Field usage by format:
//
//	FmtRI:  Rd, Rs1, Imm (immediate, already sign- or zero-extended)
//	FmtRR:  Rd, Rs1, Rs2
//	FmtLS:  Rd (data), Rs1 (base address register), Imm (signed offset)
//	FmtBR:  Rs1, Rs2, Imm (byte displacement relative to Addr)
//	FmtJ:   Imm (byte displacement relative to Addr)
//	FmtJR:  Rs1 (address register)
//	FmtSRR: Rd, Rs1
//	FmtSRC: Rd, Imm (signed 4-bit constant)
//	FmtSB:  Imm (byte displacement relative to Addr)
type Inst struct {
	Op   Op
	Rd   uint8
	Rs1  uint8
	Rs2  uint8
	Imm  int32
	Addr uint32 // address the instruction was decoded from
	Size uint8  // encoding size in bytes (2 or 4)
}

// Target returns the branch target address for direct branches.
// It must only be called for ops with statically known targets.
func (i Inst) Target() uint32 {
	return i.Addr + uint32(i.Imm)
}

// Backward reports whether a direct branch jumps backwards (used by the
// static branch predictor: backward predicted taken).
func (i Inst) Backward() bool { return i.Imm <= 0 }

// EncodedSize returns the encoding size in bytes of op (2 or 4).
func EncodedSize(op Op) uint8 {
	if op.Is16Bit() {
		return 2
	}
	return 4
}

const (
	immMin16 = -1 << 15
	immMax16 = 1<<15 - 1
	immMaxU  = 1<<16 - 1
)

// Encode encodes the instruction into buf, returning the number of bytes
// written (2 or 4). It validates field ranges.
func Encode(i Inst, buf []byte) (int, error) {
	info := opInfo[i.Op]
	if i.Op == BAD || i.Op >= NumOps {
		return 0, fmt.Errorf("tc32: cannot encode op %d", i.Op)
	}
	checkReg := func(r uint8, what string) error {
		if r > 15 {
			return fmt.Errorf("tc32: %s: %s register %d out of range", info.Name, what, r)
		}
		return nil
	}
	disp := func(bits int) (uint32, error) {
		if i.Imm%2 != 0 {
			return 0, fmt.Errorf("tc32: %s: odd branch displacement %d", info.Name, i.Imm)
		}
		hw := i.Imm / 2
		limit := int32(1) << (bits - 1)
		if hw < -limit || hw >= limit {
			return 0, fmt.Errorf("tc32: %s: displacement %d out of range", info.Name, i.Imm)
		}
		return uint32(hw) & (1<<bits - 1), nil
	}
	var word uint32
	size := 4
	word = uint32(info.Enc)
	switch info.Format {
	case FmtNone:
		// op only
	case FmtRI:
		if err := checkReg(i.Rd, "dest"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs1, "source"); err != nil {
			return 0, err
		}
		if i.Imm < immMin16 || i.Imm > immMaxU {
			return 0, fmt.Errorf("tc32: %s: immediate %d out of range", info.Name, i.Imm)
		}
		word |= uint32(i.Rd)<<8 | uint32(i.Rs1)<<12 | uint32(uint16(i.Imm))<<16
	case FmtRR:
		if err := checkReg(i.Rd, "dest"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs1, "source 1"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs2, "source 2"); err != nil {
			return 0, err
		}
		word |= uint32(i.Rd)<<8 | uint32(i.Rs1)<<12 | uint32(i.Rs2)<<16
	case FmtLS:
		if err := checkReg(i.Rd, "data"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs1, "base"); err != nil {
			return 0, err
		}
		if i.Imm < immMin16 || i.Imm > immMax16 {
			return 0, fmt.Errorf("tc32: %s: offset %d out of range", info.Name, i.Imm)
		}
		word |= uint32(i.Rd)<<8 | uint32(i.Rs1)<<12 | uint32(uint16(i.Imm))<<16
	case FmtBR:
		if err := checkReg(i.Rs1, "source 1"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs2, "source 2"); err != nil {
			return 0, err
		}
		d, err := disp(16)
		if err != nil {
			return 0, err
		}
		word |= uint32(i.Rs1)<<8 | uint32(i.Rs2)<<12 | d<<16
	case FmtJ:
		d, err := disp(24)
		if err != nil {
			return 0, err
		}
		word |= d << 8
	case FmtJR:
		if err := checkReg(i.Rs1, "target"); err != nil {
			return 0, err
		}
		word |= uint32(i.Rs1) << 8
	case FmtSRR:
		size = 2
		if err := checkReg(i.Rd, "dest"); err != nil {
			return 0, err
		}
		if err := checkReg(i.Rs1, "source"); err != nil {
			return 0, err
		}
		word |= uint32(i.Rd)<<8 | uint32(i.Rs1)<<12
	case FmtSRC:
		size = 2
		if err := checkReg(i.Rd, "dest"); err != nil {
			return 0, err
		}
		if i.Imm < -8 || i.Imm > 7 {
			return 0, fmt.Errorf("tc32: %s: const4 %d out of range", info.Name, i.Imm)
		}
		word |= uint32(i.Rd)<<8 | (uint32(i.Imm)&0xF)<<12
	case FmtSB:
		size = 2
		d, err := disp(8)
		if err != nil {
			return 0, err
		}
		word |= d << 8
	case FmtS0:
		size = 2
	}
	if len(buf) < size {
		return 0, fmt.Errorf("tc32: buffer too small (%d < %d)", len(buf), size)
	}
	buf[0] = byte(word)
	buf[1] = byte(word >> 8)
	if size == 4 {
		buf[2] = byte(word >> 16)
		buf[3] = byte(word >> 24)
	}
	return size, nil
}

func sext(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode decodes one instruction from buf, which must hold the bytes at
// address addr. It returns the instruction and its size in bytes.
func Decode(buf []byte, addr uint32) (Inst, error) {
	if len(buf) < 2 {
		return Inst{}, fmt.Errorf("tc32: truncated instruction at %#x", addr)
	}
	op := encToOp[buf[0]]
	if op == BAD {
		return Inst{}, fmt.Errorf("tc32: illegal opcode %#02x at %#x", buf[0], addr)
	}
	info := opInfo[op]
	i := Inst{Op: op, Addr: addr, Size: 2}
	if !op.Is16Bit() {
		if len(buf) < 4 {
			return Inst{}, fmt.Errorf("tc32: truncated 32-bit instruction at %#x", addr)
		}
		i.Size = 4
	}
	var word uint32
	word = uint32(buf[0]) | uint32(buf[1])<<8
	if i.Size == 4 {
		word |= uint32(buf[2])<<16 | uint32(buf[3])<<24
	}
	switch info.Format {
	case FmtNone, FmtS0:
		// nothing
	case FmtRI:
		i.Rd = uint8(word >> 8 & 0xF)
		i.Rs1 = uint8(word >> 12 & 0xF)
		imm := word >> 16
		switch op {
		case ANDI, ORI, XORI, MOVHI, MOVHA:
			i.Imm = int32(imm) // zero-extended / high-half value
		default:
			i.Imm = sext(imm, 16)
		}
	case FmtRR:
		i.Rd = uint8(word >> 8 & 0xF)
		i.Rs1 = uint8(word >> 12 & 0xF)
		i.Rs2 = uint8(word >> 16 & 0xF)
	case FmtLS:
		i.Rd = uint8(word >> 8 & 0xF)
		i.Rs1 = uint8(word >> 12 & 0xF)
		i.Imm = sext(word>>16, 16)
	case FmtBR:
		i.Rs1 = uint8(word >> 8 & 0xF)
		i.Rs2 = uint8(word >> 12 & 0xF)
		i.Imm = 2 * sext(word>>16, 16)
	case FmtJ:
		i.Imm = 2 * sext(word>>8, 24)
	case FmtJR:
		i.Rs1 = uint8(word >> 8 & 0xF)
	case FmtSRR:
		i.Rd = uint8(word >> 8 & 0xF)
		i.Rs1 = uint8(word >> 12 & 0xF)
	case FmtSRC:
		i.Rd = uint8(word >> 8 & 0xF)
		i.Imm = sext(word>>12, 4)
	case FmtSB:
		i.Imm = 2 * sext(word>>8, 8)
	}
	return i, nil
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	name := i.Op.String()
	switch i.Op.Format() {
	case FmtNone, FmtS0:
		return name
	case FmtRI:
		switch i.Op {
		case MOVI, MOVHI:
			return fmt.Sprintf("%s d%d, %d", name, i.Rd, i.Imm)
		case MOVHA:
			return fmt.Sprintf("%s a%d, %d", name, i.Rd, i.Imm)
		case ADDIA:
			return fmt.Sprintf("%s a%d, a%d, %d", name, i.Rd, i.Rs1, i.Imm)
		default:
			return fmt.Sprintf("%s d%d, d%d, %d", name, i.Rd, i.Rs1, i.Imm)
		}
	case FmtRR:
		switch i.Op {
		case MOV, ABS, SEXTB, SEXTH:
			return fmt.Sprintf("%s d%d, d%d", name, i.Rd, i.Rs1)
		case MOVD2A:
			return fmt.Sprintf("%s a%d, d%d", name, i.Rd, i.Rs1)
		case MOVA2D:
			return fmt.Sprintf("%s d%d, a%d", name, i.Rd, i.Rs1)
		case ADDA:
			return fmt.Sprintf("%s a%d, a%d, a%d", name, i.Rd, i.Rs1, i.Rs2)
		default:
			return fmt.Sprintf("%s d%d, d%d, d%d", name, i.Rd, i.Rs1, i.Rs2)
		}
	case FmtLS:
		reg := fmt.Sprintf("d%d", i.Rd)
		if i.Op == LDA || i.Op == STA || i.Op == LEA {
			reg = fmt.Sprintf("a%d", i.Rd)
		}
		return fmt.Sprintf("%s %s, %d(a%d)", name, reg, i.Imm, i.Rs1)
	case FmtBR:
		if i.Op == JZ || i.Op == JNZ {
			return fmt.Sprintf("%s d%d, %#x", name, i.Rs1, i.Target())
		}
		return fmt.Sprintf("%s d%d, d%d, %#x", name, i.Rs1, i.Rs2, i.Target())
	case FmtJ, FmtSB:
		return fmt.Sprintf("%s %#x", name, i.Target())
	case FmtJR:
		return fmt.Sprintf("%s a%d", name, i.Rs1)
	case FmtSRR:
		return fmt.Sprintf("%s d%d, d%d", name, i.Rd, i.Rs1)
	case FmtSRC:
		return fmt.Sprintf("%s d%d, %d", name, i.Rd, i.Imm)
	}
	return name
}

// DecodeAll decodes the instruction stream in text starting at base,
// returning one Inst per encoded instruction.
func DecodeAll(text []byte, base uint32) ([]Inst, error) {
	var out []Inst
	off := 0
	for off < len(text) {
		inst, err := Decode(text[off:], base+uint32(off))
		if err != nil {
			return nil, err
		}
		out = append(out, inst)
		off += int(inst.Size)
	}
	return out, nil
}
