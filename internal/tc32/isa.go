// Package tc32 defines the TC32 instruction-set architecture: a
// TriCore-class 32-bit embedded processor used as the source processor of
// the cycle-accurate binary translator.
//
// Like Infineon's TriCore, TC32 has a split register file (16 data
// registers d0..d15 and 16 address registers a0..a15, with a10 as stack
// pointer and a11 as return address), little-endian memory, and mixed
// 16-bit/32-bit instruction encodings.  The mixed encoding is what makes
// instruction-cache analysis blocks non-trivial, exactly as in the paper.
package tc32

// Register file indices.
const (
	// SP is the stack pointer (address register a10).
	SP = 10
	// RA is the return-address register (address register a11).
	RA = 11
	// ImplicitCond is the data register tested by the 16-bit jz16/jnz16
	// forms (d15, as in TriCore's SB format).
	ImplicitCond = 15
)

// Op identifies a TC32 operation (mnemonic level, not encoding level).
type Op uint8

// TC32 operations. Ops with a "16" suffix use the 16-bit encoding.
const (
	BAD Op = iota // illegal/unknown encoding

	// Data-register ALU, immediate forms.
	MOVI  // d[rd] = sext16(imm)
	MOVHI // d[rd] = imm << 16
	ADDI  // d[rd] = d[rs1] + sext16(imm)
	RSUBI // d[rd] = sext16(imm) - d[rs1]
	ANDI  // d[rd] = d[rs1] & zext16(imm)
	ORI   // d[rd] = d[rs1] | zext16(imm)
	XORI  // d[rd] = d[rs1] ^ zext16(imm)
	EQI   // d[rd] = d[rs1] == sext16(imm) ? 1 : 0
	LTI   // d[rd] = d[rs1] < sext16(imm) ? 1 : 0 (signed)
	SHLI  // d[rd] = d[rs1] << (imm & 31)
	SHRI  // d[rd] = d[rs1] >> (imm & 31) (logical)
	SARI  // d[rd] = d[rs1] >> (imm & 31) (arithmetic)

	// Data-register ALU, register forms.
	MOV   // d[rd] = d[rs1]
	ADD   // d[rd] = d[rs1] + d[rs2]
	SUB   // d[rd] = d[rs1] - d[rs2]
	MUL   // d[rd] = d[rs1] * d[rs2] (low 32 bits)
	DIV   // d[rd] = d[rs1] / d[rs2] (signed; see DivQuot)
	DIVU  // d[rd] = d[rs1] / d[rs2] (unsigned)
	REM   // d[rd] = d[rs1] % d[rs2] (signed)
	REMU  // d[rd] = d[rs1] % d[rs2] (unsigned)
	AND   // d[rd] = d[rs1] & d[rs2]
	OR    // d[rd] = d[rs1] | d[rs2]
	XOR   // d[rd] = d[rs1] ^ d[rs2]
	ANDN  // d[rd] = d[rs1] &^ d[rs2]
	SHL   // d[rd] = d[rs1] << (d[rs2] & 31)
	SHR   // d[rd] = d[rs1] >> (d[rs2] & 31) (logical)
	SAR   // d[rd] = d[rs1] >> (d[rs2] & 31) (arithmetic)
	EQ    // d[rd] = d[rs1] == d[rs2] ? 1 : 0
	NE    // d[rd] = d[rs1] != d[rs2] ? 1 : 0
	LT    // signed <
	LTU   // unsigned <
	GE    // signed >=
	GEU   // unsigned >=
	MIN   // signed minimum
	MAX   // signed maximum
	ABS   // d[rd] = |d[rs1]| (signed)
	SEXTB // d[rd] = sign-extend low byte of d[rs1]
	SEXTH // d[rd] = sign-extend low half of d[rs1]

	// Address-register operations.
	MOVHA  // a[rd] = imm << 16
	LEA    // a[rd] = a[rs1] + sext16(imm)
	MOVD2A // a[rd] = d[rs1]
	MOVA2D // d[rd] = a[rs1]
	ADDA   // a[rd] = a[rs1] + a[rs2]
	ADDIA  // a[rd] = a[rs1] + sext16(imm)

	// Loads and stores: effective address a[rs1] + sext16(imm).
	LDW  // d[rd] = mem32[ea]
	LDH  // d[rd] = sext(mem16[ea])
	LDHU // d[rd] = zext(mem16[ea])
	LDB  // d[rd] = sext(mem8[ea])
	LDBU // d[rd] = zext(mem8[ea])
	STW  // mem32[ea] = d[rd]
	STH  // mem16[ea] = d[rd]
	STB  // mem8[ea] = d[rd]
	LDA  // a[rd] = mem32[ea]
	STA  // mem32[ea] = a[rd]

	// Control flow. Branch displacements are byte offsets relative to the
	// address of the branch instruction itself (always even).
	J    // pc = pc + imm
	JL   // a11 = pc + 4; pc = pc + imm
	JI   // pc = a[rs1]
	RET  // pc = a11
	JEQ  // if d[rs1] == d[rs2]: pc += imm
	JNE  // if d[rs1] != d[rs2]: pc += imm
	JLT  // if d[rs1] <  d[rs2] (signed): pc += imm
	JGE  // if d[rs1] >= d[rs2] (signed): pc += imm
	JLTU // unsigned <
	JGEU // unsigned >=
	JZ   // if d[rs1] == 0: pc += imm
	JNZ  // if d[rs1] != 0: pc += imm

	NOP  // no operation (32-bit)
	HALT // stop the processor (simulation exit)

	// Interrupt architecture. TC32 has a single external interrupt line
	// (driven by an interrupt controller), one shadow register pair
	// (saved PC + interrupt-enable), and a single vector: the `__irq`
	// symbol. Delivery happens only at basic-block boundaries — see
	// Leaders — which is what lets the binary translator take an
	// interrupt at the identical source cycle (docs/architecture.md,
	// "Interrupts").
	EI   // enable interrupts (IE = 1)
	DI   // disable interrupts (IE = 0)
	RETI // return from interrupt: pc = shadow pc, IE = 1
	WFI  // wait for interrupt: idle until the line delivers

	// 16-bit encodings.
	MOV16  // d[rd] = d[rs1]
	ADD16  // d[rd] += d[rs1]
	SUB16  // d[rd] -= d[rs1]
	MOVI16 // d[rd] = sext4(imm)
	ADDI16 // d[rd] += sext4(imm)
	J16    // pc += imm
	JZ16   // if d15 == 0: pc += imm
	JNZ16  // if d15 != 0: pc += imm
	RET16  // pc = a11
	NOP16  // no operation (16-bit)

	NumOps // number of operations (not an op)
)

// Format describes the encoding format of an operation.
type Format uint8

// Encoding formats. 32-bit formats first, then 16-bit.
const (
	FmtNone Format = iota // op only (nop, halt, ret)
	FmtRI                 // op, rd, rs1, imm16
	FmtRR                 // op, rd, rs1, rs2
	FmtLS                 // op, rd, rs1(base), off16
	FmtBR                 // op, rs1, rs2, disp16 (halfwords)
	FmtJ                  // op, disp24 (halfwords)
	FmtJR                 // op, rs1 (address register)
	FmtSRR                // 16-bit: op, rd, rs1
	FmtSRC                // 16-bit: op, rd, const4
	FmtSB                 // 16-bit: op, disp8 (halfwords)
	FmtS0                 // 16-bit: op only
)

// Info describes static properties of an operation.
type Info struct {
	Name   string
	Format Format
	Enc    uint8 // primary opcode byte (bit 0 set for 16-bit encodings)
}

var opInfo = [NumOps]Info{
	BAD:    {"<bad>", FmtNone, 0x00},
	MOVI:   {"movi", FmtRI, 0x02},
	MOVHI:  {"movhi", FmtRI, 0x04},
	ADDI:   {"addi", FmtRI, 0x06},
	RSUBI:  {"rsubi", FmtRI, 0x08},
	ANDI:   {"andi", FmtRI, 0x0A},
	ORI:    {"ori", FmtRI, 0x0C},
	XORI:   {"xori", FmtRI, 0x0E},
	EQI:    {"eqi", FmtRI, 0x10},
	LTI:    {"lti", FmtRI, 0x12},
	SHLI:   {"shli", FmtRI, 0x14},
	SHRI:   {"shri", FmtRI, 0x16},
	SARI:   {"sari", FmtRI, 0x18},
	MOV:    {"mov", FmtRR, 0x1A},
	ADD:    {"add", FmtRR, 0x1C},
	SUB:    {"sub", FmtRR, 0x1E},
	MUL:    {"mul", FmtRR, 0x20},
	DIV:    {"div", FmtRR, 0x22},
	DIVU:   {"divu", FmtRR, 0x24},
	REM:    {"rem", FmtRR, 0x26},
	REMU:   {"remu", FmtRR, 0x28},
	AND:    {"and", FmtRR, 0x2A},
	OR:     {"or", FmtRR, 0x2C},
	XOR:    {"xor", FmtRR, 0x2E},
	ANDN:   {"andn", FmtRR, 0x30},
	SHL:    {"shl", FmtRR, 0x32},
	SHR:    {"shr", FmtRR, 0x34},
	SAR:    {"sar", FmtRR, 0x36},
	EQ:     {"eq", FmtRR, 0x38},
	NE:     {"ne", FmtRR, 0x3A},
	LT:     {"lt", FmtRR, 0x3C},
	LTU:    {"ltu", FmtRR, 0x3E},
	GE:     {"ge", FmtRR, 0x40},
	GEU:    {"geu", FmtRR, 0x42},
	MIN:    {"min", FmtRR, 0x44},
	MAX:    {"max", FmtRR, 0x46},
	ABS:    {"abs", FmtRR, 0x48},
	SEXTB:  {"sext.b", FmtRR, 0x4A},
	SEXTH:  {"sext.h", FmtRR, 0x4C},
	MOVHA:  {"movh.a", FmtRI, 0x50},
	LEA:    {"lea", FmtLS, 0x52},
	MOVD2A: {"mov.a", FmtRR, 0x54},
	MOVA2D: {"mov.d", FmtRR, 0x56},
	ADDA:   {"add.a", FmtRR, 0x58},
	ADDIA:  {"addi.a", FmtRI, 0x5A},
	LDW:    {"ld.w", FmtLS, 0x60},
	LDH:    {"ld.h", FmtLS, 0x62},
	LDHU:   {"ld.hu", FmtLS, 0x64},
	LDB:    {"ld.b", FmtLS, 0x66},
	LDBU:   {"ld.bu", FmtLS, 0x68},
	STW:    {"st.w", FmtLS, 0x6A},
	STH:    {"st.h", FmtLS, 0x6C},
	STB:    {"st.b", FmtLS, 0x6E},
	LDA:    {"ld.a", FmtLS, 0x70},
	STA:    {"st.a", FmtLS, 0x72},
	J:      {"j", FmtJ, 0x80},
	JL:     {"jl", FmtJ, 0x82},
	JI:     {"ji", FmtJR, 0x84},
	RET:    {"ret", FmtNone, 0x86},
	JEQ:    {"jeq", FmtBR, 0x88},
	JNE:    {"jne", FmtBR, 0x8A},
	JLT:    {"jlt", FmtBR, 0x8C},
	JGE:    {"jge", FmtBR, 0x8E},
	JLTU:   {"jltu", FmtBR, 0x90},
	JGEU:   {"jgeu", FmtBR, 0x92},
	JZ:     {"jz", FmtBR, 0x94},
	JNZ:    {"jnz", FmtBR, 0x96},
	NOP:    {"nop", FmtNone, 0x98},
	HALT:   {"halt", FmtNone, 0x9A},
	EI:     {"ei", FmtNone, 0x9C},
	DI:     {"di", FmtNone, 0x9E},
	RETI:   {"reti", FmtNone, 0xA0},
	WFI:    {"wfi", FmtNone, 0xA2},
	MOV16:  {"mov16", FmtSRR, 0x03},
	ADD16:  {"add16", FmtSRR, 0x05},
	SUB16:  {"sub16", FmtSRR, 0x07},
	MOVI16: {"movi16", FmtSRC, 0x09},
	ADDI16: {"addi16", FmtSRC, 0x0B},
	J16:    {"j16", FmtSB, 0x0D},
	JZ16:   {"jz16", FmtSB, 0x0F},
	JNZ16:  {"jnz16", FmtSB, 0x11},
	RET16:  {"ret16", FmtS0, 0x13},
	NOP16:  {"nop16", FmtS0, 0x15},
}

// encToOp maps primary opcode bytes back to operations.
var encToOp [256]Op

func init() {
	for op := Op(1); op < NumOps; op++ {
		info := opInfo[op]
		if encToOp[info.Enc] != BAD {
			panic("tc32: duplicate encoding " + info.Name)
		}
		wide := info.Format < FmtSRR
		if wide == (info.Enc&1 == 1) {
			panic("tc32: encoding width bit mismatch for " + info.Name)
		}
		encToOp[info.Enc] = op
	}
}

// String returns the mnemonic of the operation.
func (op Op) String() string {
	if op >= NumOps {
		return "<invalid>"
	}
	return opInfo[op].Name
}

// Format returns the encoding format of op.
func (op Op) Format() Format {
	if op >= NumOps {
		return FmtNone
	}
	return opInfo[op].Format
}

// Is16Bit reports whether op uses the 16-bit encoding.
func (op Op) Is16Bit() bool { return op.Format() >= FmtSRR }

// OpByName looks up an operation by its mnemonic. It returns BAD if the
// mnemonic is unknown.
func OpByName(name string) Op {
	for op := Op(1); op < NumOps; op++ {
		if opInfo[op].Name == name {
			return op
		}
	}
	return BAD
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case JEQ, JNE, JLT, JGE, JLTU, JGEU, JZ, JNZ, JZ16, JNZ16:
		return true
	}
	return false
}

// IsBranch reports whether op alters control flow (including halt, reti
// and wfi — wfi ends a basic block because the instruction after it is
// an interrupt-return target and must be a block leader).
func (op Op) IsBranch() bool {
	switch op {
	case J, JL, JI, RET, J16, RET16, HALT, RETI, WFI:
		return true
	}
	return op.IsCondBranch()
}

// IsCall reports whether op is a call (saves a return address).
func (op Op) IsCall() bool { return op == JL }

// IsIndirect reports whether the branch target is not statically known.
// RETI is indirect: it branches through the shadow PC.
func (op Op) IsIndirect() bool { return op == JI || op == RET || op == RET16 || op == RETI }

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	switch op {
	case LDW, LDH, LDHU, LDB, LDBU, LDA:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool {
	switch op {
	case STW, STH, STB, STA:
		return true
	}
	return false
}

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// DivQuot returns the TC32 quotient of a signed division, defining the
// edge cases the hardware guarantees: division by zero yields quotient 0,
// and MinInt32 / -1 yields MinInt32 (no trap).
func DivQuot(a, b int32) int32 {
	switch {
	case b == 0:
		return 0
	case a == -1<<31 && b == -1:
		return a
	}
	return a / b
}

// DivRem returns the TC32 remainder of a signed division (dividend when
// dividing by zero, 0 for MinInt32 % -1).
func DivRem(a, b int32) int32 {
	switch {
	case b == 0:
		return a
	case a == -1<<31 && b == -1:
		return 0
	}
	return a % b
}

// DivQuotU and DivRemU are the unsigned counterparts.
func DivQuotU(a, b uint32) uint32 {
	if b == 0 {
		return 0
	}
	return a / b
}

// DivRemU returns the unsigned remainder (dividend when dividing by zero).
func DivRemU(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}
