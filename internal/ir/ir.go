// Package ir defines the translator's intermediate code. As in the paper,
// the intermediate instructions "resemble the assembler instructions of
// the C6x processor but do not have their constraints": they are C6x
// operations without unit assignment, packet placement or delay-slot
// bookkeeping — that is the scheduler's job (internal/sched).
//
// Branch targets at this level are symbolic block indices; the linker step
// in internal/core rewrites them to packet indices after layout.
package ir

import "repro/internal/c6x"

// Pin constrains where the scheduler may place an instruction within its
// block (used for the cycle-generation annotations of the paper's
// Figures 2 and 3).
type Pin uint8

// Pin values.
const (
	PinNone   Pin = iota
	PinFirst      // schedule as early as possible (sync start store)
	PinLast       // keep near the block end (sync wait load)
	PinBranch     // the block-terminating branch
)

// Ins is one intermediate instruction: a C6x instruction plus scheduling
// metadata. For BPKT instructions Inst.Target is a block index until the
// final layout; MVK instructions with BlockRef >= 0 materialize the packet
// index of that block (for call return addresses).
type Ins struct {
	c6x.Inst
	Pin      Pin
	BlockRef int // -1 = none; otherwise block whose packet index this MVK loads
}

// New returns an Ins with no block reference.
func New(inst c6x.Inst) Ins { return Ins{Inst: inst, BlockRef: -1} }

// Block is a sequence of intermediate instructions ending (optionally)
// with a branch. Fallthrough blocks simply continue into the next block.
type Block struct {
	// Label is a human-readable name for listings ("bb_0x100", "divrt").
	Label string
	Ins   []Ins
}

// Reads returns the registers an instruction reads (including predicate,
// store data and MVKH's destination merge).
func (in *Ins) Reads() []c6x.Reg {
	var rs []c6x.Reg
	if in.Pred.Valid {
		rs = append(rs, in.Pred.Reg)
	}
	if in.Op.ReadsSrc1() && !in.Src1.IsImm {
		rs = append(rs, in.Src1.Reg)
	}
	if in.Op.ReadsSrc2() && !in.Src2.IsImm {
		rs = append(rs, in.Src2.Reg)
	}
	if in.Op.IsMem() && !in.Src1.IsImm {
		// base register (Src1) already covered by ReadsSrc1
	}
	if in.Op.IsStore() {
		rs = append(rs, in.Data)
	}
	if in.Op == c6x.MVKH {
		rs = append(rs, in.Dst)
	}
	return rs
}

// Writes returns the register the instruction writes, if any.
func (in *Ins) Writes() (c6x.Reg, bool) {
	if in.HasDst() {
		return in.Dst, true
	}
	return c6x.NoReg, false
}
