// Package jit implements the just-in-time compiled instruction-set
// simulator of the paper's Section 2 taxonomy ("dynamic compilation",
// Nohl et al.): basic blocks are translated on first execution into
// closure chains that are cached and re-executed without decode overhead.
// It is the middle point between the interpreted ISS (internal/iss) and
// the static binary translation (internal/core), and the host-speed
// ablation bench compares all three.
//
// Go cannot generate machine code at runtime with the standard library,
// so the compiled form is threaded code: one specialized closure per
// instruction, the accepted Go equivalent (see DESIGN.md).
//
// # Shape
//
// [New] (and [NewWithDesc] for a non-default march description) builds a
// [Sim] from an ELF32 image. Execution walks basic blocks: on first
// entry a block is compiled instruction-by-instruction into a chain of
// step closures and memoized by source address; on re-entry the chain
// runs directly. Self-modifying code is out of scope, exactly as in the
// static translator. With cycleAccurate set the compiled code threads
// the same march timing model the ISS replays (pipeline, live I-cache,
// Booth multiplier, I/O wait states), so the JIT reproduces the ISS's
// cycle counts at compiled-code speed; without it, it is the functional
// host-speed baseline. Statistics and the debug-port output mirror the
// ISS's so the three simulators are directly comparable in the ablation
// benchmarks.
package jit
