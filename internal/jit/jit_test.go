package jit

import (
	"testing"

	"repro/internal/iss"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

func TestEquivalenceWithInterpreter(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			f, err := tc32asm.Assemble(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := iss.New(f, iss.Config{CycleAccurate: true})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(); err != nil {
				t.Fatal(err)
			}
			j, err := New(f, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Run(); err != nil {
				t.Fatal(err)
			}
			rs, js := ref.Stats(), j.Stats()
			if js.Retired != rs.Retired {
				t.Errorf("retired %d, want %d", js.Retired, rs.Retired)
			}
			// Block-compiled timing must be cycle-identical to the
			// interpreter: both replay the same pipeline model.
			if js.Cycles != rs.Cycles {
				t.Errorf("cycles %d, want %d", js.Cycles, rs.Cycles)
			}
			if js.ICacheMisses != rs.ICacheMisses {
				t.Errorf("icache misses %d, want %d", js.ICacheMisses, rs.ICacheMisses)
			}
			got, want := j.Output(), ref.Output()
			if len(got) != len(want) {
				t.Fatalf("output %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("out[%d] = %#x, want %#x", i, got[i], want[i])
				}
			}
		})
	}
}

func TestBlockCacheReused(t *testing.T) {
	w, _ := workload.ByName("sieve")
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	j, err := New(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	// Far fewer compilations than executed blocks: the cache works.
	if j.Compiled > 64 {
		t.Errorf("compiled %d blocks for sieve; cache not effective", j.Compiled)
	}
	if j.Arch.Retired < 10000 {
		t.Errorf("retired only %d", j.Arch.Retired)
	}
}

func TestFallbackOps(t *testing.T) {
	// Ops without hand specializations go through the shared interpreter
	// semantics; results must match.
	src := `
	.global _start
_start:	movh.a	sp, 0x1010
	la	a15, 0xF0000F00
	movi	d0, -37
	movi	d1, 5
	div	d2, d0, d1
	rem	d3, d0, d1
	abs	d4, d0
	min	d5, d0, d1
	max	d6, d0, d1
	sext.b	d7, d0
	andn	d8, d1, d0
	st.w	d2, 0(a15)
	st.w	d3, 0(a15)
	st.w	d4, 0(a15)
	st.w	d5, 0(a15)
	st.w	d6, 0(a15)
	st.w	d7, 0(a15)
	st.w	d8, 0(a15)
	halt
`
	f, err := tc32asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := iss.New(f, iss.Config{})
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	j, _ := New(f, false)
	if err := j.Run(); err != nil {
		t.Fatal(err)
	}
	got, want := j.Output(), ref.Output()
	if len(got) != len(want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if j.Arch.Retired != ref.Arch.Retired {
		t.Errorf("retired %d, want %d", j.Arch.Retired, ref.Arch.Retired)
	}
}
