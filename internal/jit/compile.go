package jit

import (
	"fmt"

	"repro/internal/tc32"
)

// compileInst specializes one instruction into a closure. The hot cases
// (ALU, loads/stores, branches) are hand-specialized; rare ops fall back
// to the shared interpreter semantics, which keeps the two simulators
// behaviorally identical by construction.
func compileInst(in tc32.Inst) step {
	next := in.Addr + uint32(in.Size)
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	imm := uint32(in.Imm)
	target := next
	if in.Op.IsBranch() && !in.Op.IsIndirect() && in.Op != tc32.HALT {
		target = in.Target()
	}
	switch in.Op {
	case tc32.MOVI, tc32.MOVI16:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = imm; return next, false, nil }
	case tc32.MOVHI:
		v := imm << 16
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = v; return next, false, nil }
	case tc32.ADDI:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.D[rs1] + imm; return next, false, nil }
	case tc32.ADDI16:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] += imm; return next, false, nil }
	case tc32.MOV, tc32.MOV16:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.D[rs1]; return next, false, nil }
	case tc32.ADD:
		return func(s *Sim) (uint32, bool, error) {
			s.Arch.D[rd] = s.Arch.D[rs1] + s.Arch.D[rs2]
			return next, false, nil
		}
	case tc32.ADD16:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] += s.Arch.D[rs1]; return next, false, nil }
	case tc32.SUB:
		return func(s *Sim) (uint32, bool, error) {
			s.Arch.D[rd] = s.Arch.D[rs1] - s.Arch.D[rs2]
			return next, false, nil
		}
	case tc32.SUB16:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] -= s.Arch.D[rs1]; return next, false, nil }
	case tc32.MUL:
		return func(s *Sim) (uint32, bool, error) {
			s.Arch.D[rd] = s.Arch.D[rs1] * s.Arch.D[rs2]
			return next, false, nil
		}
	case tc32.SHLI:
		sh := imm & 31
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.D[rs1] << sh; return next, false, nil }
	case tc32.SHRI:
		sh := imm & 31
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.D[rs1] >> sh; return next, false, nil }
	case tc32.SARI:
		sh := imm & 31
		return func(s *Sim) (uint32, bool, error) {
			s.Arch.D[rd] = uint32(int32(s.Arch.D[rs1]) >> sh)
			return next, false, nil
		}
	case tc32.ANDI:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.D[rs1] & imm; return next, false, nil }
	case tc32.MOVHA:
		v := imm << 16
		return func(s *Sim) (uint32, bool, error) { s.Arch.A[rd] = v; return next, false, nil }
	case tc32.LEA, tc32.ADDIA:
		return func(s *Sim) (uint32, bool, error) { s.Arch.A[rd] = s.Arch.A[rs1] + imm; return next, false, nil }
	case tc32.MOVD2A:
		return func(s *Sim) (uint32, bool, error) { s.Arch.A[rd] = s.Arch.D[rs1]; return next, false, nil }
	case tc32.MOVA2D:
		return func(s *Sim) (uint32, bool, error) { s.Arch.D[rd] = s.Arch.A[rs1]; return next, false, nil }
	case tc32.ADDA:
		return func(s *Sim) (uint32, bool, error) {
			s.Arch.A[rd] = s.Arch.A[rs1] + s.Arch.A[rs2]
			return next, false, nil
		}
	case tc32.LDW:
		pc := in.Addr
		return func(s *Sim) (uint32, bool, error) {
			v, err := s.Arch.Mem.Read(pc, s.Arch.A[rs1]+imm, 4, s.pipe.Cycles())
			if err != nil {
				return 0, false, err
			}
			s.Arch.D[rd] = v
			return next, false, nil
		}
	case tc32.STW:
		pc := in.Addr
		return func(s *Sim) (uint32, bool, error) {
			err := s.Arch.Mem.Write(pc, s.Arch.A[rs1]+imm, s.Arch.D[rd], 4, s.pipe.Cycles())
			return next, false, err
		}
	case tc32.LDBU:
		pc := in.Addr
		return func(s *Sim) (uint32, bool, error) {
			v, err := s.Arch.Mem.Read(pc, s.Arch.A[rs1]+imm, 1, s.pipe.Cycles())
			if err != nil {
				return 0, false, err
			}
			s.Arch.D[rd] = v
			return next, false, nil
		}
	case tc32.STB:
		pc := in.Addr
		return func(s *Sim) (uint32, bool, error) {
			err := s.Arch.Mem.Write(pc, s.Arch.A[rs1]+imm, s.Arch.D[rd], 1, s.pipe.Cycles())
			return next, false, err
		}
	case tc32.J, tc32.J16:
		return func(s *Sim) (uint32, bool, error) { return target, false, nil }
	case tc32.JL:
		ra := next
		return func(s *Sim) (uint32, bool, error) { s.Arch.A[tc32.RA] = ra; return target, false, nil }
	case tc32.JI:
		return func(s *Sim) (uint32, bool, error) { return s.Arch.A[rs1], false, nil }
	case tc32.RET, tc32.RET16:
		return func(s *Sim) (uint32, bool, error) { return s.Arch.A[tc32.RA], false, nil }
	case tc32.JEQ:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] == s.Arch.D[rs2] })
	case tc32.JNE:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] != s.Arch.D[rs2] })
	case tc32.JLT:
		return condStep(next, target, func(s *Sim) bool { return int32(s.Arch.D[rs1]) < int32(s.Arch.D[rs2]) })
	case tc32.JGE:
		return condStep(next, target, func(s *Sim) bool { return int32(s.Arch.D[rs1]) >= int32(s.Arch.D[rs2]) })
	case tc32.JLTU:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] < s.Arch.D[rs2] })
	case tc32.JGEU:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] >= s.Arch.D[rs2] })
	case tc32.JZ:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] == 0 })
	case tc32.JNZ:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[rs1] != 0 })
	case tc32.JZ16:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[tc32.ImplicitCond] == 0 })
	case tc32.JNZ16:
		return condStep(next, target, func(s *Sim) bool { return s.Arch.D[tc32.ImplicitCond] != 0 })
	case tc32.NOP, tc32.NOP16:
		return func(s *Sim) (uint32, bool, error) { return next, false, nil }
	case tc32.HALT:
		return func(s *Sim) (uint32, bool, error) { s.Arch.Halted = true; return next, false, nil }
	}
	// Fallback: shared interpreter semantics (keeps rare ops identical to
	// the reference by construction). The closure adjusts bookkeeping the
	// outer loop also performs.
	inst := in
	return func(s *Sim) (uint32, bool, error) {
		taken, err := s.Arch.Exec(inst, s.pipe.Cycles())
		if err != nil {
			return 0, false, err
		}
		s.Arch.Retired-- // outer loop will re-count
		return s.Arch.PC, taken, nil
	}
}

func condStep(next, target uint32, cond func(*Sim) bool) step {
	return func(s *Sim) (uint32, bool, error) {
		if cond(s) {
			return target, true, nil
		}
		return next, false, nil
	}
}

var _ = fmt.Sprintf // keep fmt for error paths in future specializations
