package jit

import (
	"fmt"

	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/march"
	"repro/internal/tc32"
)

// step executes one compiled instruction; it returns the next source PC
// and whether a conditional branch was taken.
type step func(s *Sim) (nextPC uint32, taken bool, err error)

// block is one compiled basic block.
type block struct {
	start uint32
	insts []tc32.Inst
	steps []step
}

// Sim is the block-compiled simulator.
type Sim struct {
	Arch iss.Arch

	desc     *march.Desc
	pipe     *march.Pipe
	icache   *march.Cache
	accurate bool

	text     []byte
	textBase uint32
	blocks   map[uint32]*block

	// Compiled counts compilation events (cache effectiveness metric).
	Compiled int64

	MaxInstructions int64
}

// New builds a JIT simulator from an assembled image with the default
// microarchitecture description.
func New(f *elf32.File, cycleAccurate bool) (*Sim, error) {
	return NewWithDesc(f, cycleAccurate, march.Default())
}

// NewWithDesc builds a JIT simulator with an explicit description.
func NewWithDesc(f *elf32.File, cycleAccurate bool, desc *march.Desc) (*Sim, error) {
	text := f.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("jit: no .text")
	}
	ramBase := uint32(0x1000_0000)
	if d := f.Section(".data"); d != nil {
		ramBase = d.Addr
	}
	mem := iss.NewMemory(text.Addr, text.Data, ramBase, iss.RAMSize)
	if d := f.Section(".data"); d != nil {
		if err := mem.LoadImage(d.Addr, d.Data); err != nil {
			return nil, err
		}
	}
	if desc == nil {
		desc = march.Default()
	}
	s := &Sim{
		desc:            desc,
		pipe:            march.NewPipe(desc),
		icache:          march.NewCache(desc.ICache),
		accurate:        cycleAccurate,
		text:            append([]byte(nil), text.Data...),
		textBase:        text.Addr,
		blocks:          map[uint32]*block{},
		MaxInstructions: 500_000_000,
	}
	s.Arch.Mem = mem
	s.Arch.PC = f.Entry
	return s, nil
}

// compile translates the basic block starting at pc.
func (s *Sim) compile(pc uint32) (*block, error) {
	b := &block{start: pc}
	addr := pc
	for {
		off := addr - s.textBase
		if off >= uint32(len(s.text)) {
			return nil, fmt.Errorf("jit: pc %#x outside code", addr)
		}
		inst, err := tc32.Decode(s.text[off:], addr)
		if err != nil {
			return nil, err
		}
		b.insts = append(b.insts, inst)
		b.steps = append(b.steps, compileInst(inst))
		addr += uint32(inst.Size)
		if inst.Op.IsBranch() {
			break
		}
		// Hard cap to keep pathological blocks bounded.
		if len(b.insts) >= 4096 {
			break
		}
	}
	s.Compiled++
	return b, nil
}

// Run executes until HALT.
func (s *Sim) Run() error {
	for !s.Arch.Halted {
		if s.Arch.Waiting {
			// The JIT has no interrupt controller attachment; programs
			// that idle in wfi run on the ISS or the translated platform.
			return fmt.Errorf("jit: wfi executed but the JIT has no interrupt source")
		}
		if s.Arch.Retired >= s.MaxInstructions {
			return fmt.Errorf("jit: instruction limit exceeded")
		}
		b := s.blocks[s.Arch.PC]
		if b == nil {
			nb, err := s.compile(s.Arch.PC)
			if err != nil {
				return err
			}
			s.blocks[s.Arch.PC] = nb
			b = nb
		}
		if err := s.runBlock(b); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sim) runBlock(b *block) error {
	for i, st := range b.steps {
		inst := b.insts[i]
		if s.accurate {
			if !s.icache.Access(inst.Addr) {
				s.pipe.Stall(int64(s.desc.ICache.MissPenalty))
			}
		}
		issue := s.pipe.Issue(inst)
		if s.accurate && s.desc.BoothMul && inst.Op == tc32.MUL {
			s.pipe.Extend(inst, march.BoothExtra(s.Arch.D[inst.Rs2]))
		}
		if s.accurate && inst.Op.IsMem() {
			if ea := s.Arch.A[inst.Rs1] + uint32(inst.Imm); iss.IsIO(ea) {
				s.pipe.Stall(int64(s.desc.IOWaitCycles))
			}
		}
		nextPC, taken, err := st(s)
		if err != nil {
			return err
		}
		s.Arch.Retired++
		switch {
		case inst.Op.IsCondBranch():
			s.pipe.Control(issue, s.desc.CondBranchCost(s.desc.PredictTaken(inst), taken))
		case inst.Op == tc32.J, inst.Op == tc32.JL, inst.Op == tc32.J16:
			s.pipe.Control(issue, s.desc.Branch.Direct)
		case inst.Op.IsIndirect():
			s.pipe.Control(issue, s.desc.Branch.Indirect)
		case inst.Op == tc32.HALT, inst.Op == tc32.WFI:
			s.pipe.Control(issue, 1)
		}
		s.Arch.PC = nextPC
		if s.Arch.Halted || s.Arch.Waiting {
			return nil
		}
	}
	return nil
}

// Stats returns the run measurements.
func (s *Sim) Stats() iss.Stats {
	st := iss.Stats{
		Retired: s.Arch.Retired,
		Cycles:  s.pipe.Cycles(),
	}
	if !s.accurate {
		st.Cycles = s.Arch.Retired
	}
	st.ICacheHits = s.icache.Hits
	st.ICacheMisses = s.icache.Misses
	return st
}

// Output returns the debug-port writes.
func (s *Sim) Output() []uint32 { return s.Arch.Mem.Output }
