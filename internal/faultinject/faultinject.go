package faultinject

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Point is one armed fault point of a Plan: the trigger rule for a
// named injection site. Exactly how a firing manifests (error, torn
// write, delay, process exit) is decided by the code hosting the site;
// the Point only decides *whether* an evaluation fires.
type Point struct {
	// Name is the site, e.g. "journal.sync.err" (see points.go).
	Name string
	// P is the per-evaluation fire probability (0..1), drawn from the
	// point's own seeded PRNG. Ignored when Nth is set.
	P float64
	// Nth, when > 0, fires exactly on the Nth evaluation (1-based) of
	// this point in this process — the deterministic "crash at step N"
	// trigger — and never again.
	Nth int64
	// Times, when > 0, caps the total number of firings.
	Times int64
	// MS parameterizes delay points: the maximum injected latency in
	// milliseconds (the actual delay is uniform in [1, MS]).
	MS int64
}

// pointState is a Point plus its runtime trigger state. Each point owns
// an independent PRNG derived from (plan seed, point name), so its
// decision sequence depends only on the seed and the point's own
// evaluation order, never on other points or goroutine interleaving.
type pointState struct {
	Point
	mu    sync.Mutex
	rng   *rand.Rand
	evals int64
	fires int64
	ctr   *obs.Counter
}

// Plan is an armed fault profile: a seed plus a set of points. Arm it
// with Activate; a nil Plan (or none) means every hook is a no-op.
type Plan struct {
	Seed   int64
	points map[string]*pointState
}

var active atomic.Pointer[Plan]

// Activate installs p as the process-wide fault plan (nil disarms).
// Counters for each point are registered on obs.Default as
// cabt_faults_injected_total{point="..."}.
func Activate(p *Plan) {
	if p != nil {
		for name, ps := range p.points {
			ps.ctr = obs.Default.Counter("cabt_faults_injected_total",
				"fault-point firings by injection site", "point", name)
		}
	}
	active.Store(p)
}

// Deactivate disarms fault injection (equivalent to Activate(nil)).
func Deactivate() { active.Store(nil) }

// Enabled reports whether a fault plan is armed. It is the one-atomic-
// load fast path every hook takes first.
func Enabled() bool { return active.Load() != nil }

// Active returns the armed plan (nil when disarmed).
func Active() *Plan { return active.Load() }

// Should evaluates the named fault point: true means the caller must
// inject its failure now. With no armed plan, or a plan that does not
// arm this point, it is false at the cost of an atomic load (and a map
// read when armed) — no allocation either way.
func Should(name string) bool {
	p := active.Load()
	if p == nil {
		return false
	}
	ps, ok := p.points[name]
	if !ok {
		return false
	}
	return ps.eval()
}

// eval runs one trigger decision.
func (ps *pointState) eval() bool {
	ps.mu.Lock()
	ps.evals++
	fire := false
	switch {
	case ps.Times > 0 && ps.fires >= ps.Times:
	case ps.Nth > 0:
		fire = ps.evals == ps.Nth
	default:
		fire = ps.P > 0 && ps.rng.Float64() < ps.P
	}
	if fire {
		ps.fires++
	}
	ctr := ps.ctr
	ps.mu.Unlock()
	if fire && ctr != nil {
		ctr.Inc()
	}
	return fire
}

// Fires reports how many times the named point has fired (0 when the
// point is unarmed). Tests and logs use it; injection sites never do.
func Fires(name string) int64 {
	p := active.Load()
	if p == nil {
		return 0
	}
	ps, ok := p.points[name]
	if !ok {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.fires
}

// Sleep injects the named delay point: when it fires, the caller sleeps
// a seeded-uniform duration in [1ms, MS] (MS defaults to 2 when the
// point does not set it). Returns the injected delay (0 = no firing).
func Sleep(name string) time.Duration {
	p := active.Load()
	if p == nil {
		return 0
	}
	ps, ok := p.points[name]
	if !ok || !ps.eval() {
		return 0
	}
	ms := ps.MS
	if ms <= 0 {
		ms = 2
	}
	ps.mu.Lock()
	d := time.Duration(1+ps.rng.Int63n(ms)) * time.Millisecond
	ps.mu.Unlock()
	time.Sleep(d)
	return d
}

// CrashExitCode is the exit status of an injected process crash, so
// harnesses can tell an injected death from a genuine failure.
const CrashExitCode = 7

// CrashFn is what an injected crash does. The default is an immediate
// os.Exit — no deferred functions, no flushes: a crash point models
// power loss at that line. In-process harnesses (the chaos soak test)
// replace it with a panic they recover at the victim's top frame.
var CrashFn = func(point string) {
	fmt.Fprintf(os.Stderr, "faultinject: crash at %s\n", point)
	os.Exit(CrashExitCode)
}

// Crash evaluates the named crash point and, when it fires, kills the
// process via CrashFn. The call does not return after a firing.
func Crash(point string) {
	if Should(point) {
		CrashFn(point)
	}
}

// InjectedError marks an injected failure; errors.Is/As see through it
// to the underlying errno-shaped cause.
type InjectedError struct {
	Point string
	Err   error
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s: %v", e.Point, e.Err)
}

func (e *InjectedError) Unwrap() error { return e.Err }

// ErrAt returns an InjectedError wrapping err when the named point
// fires, nil otherwise. The idiom at an injection site:
//
//	if err := faultinject.ErrAt("journal.sync.err", errSync); err != nil {
//		return err
//	}
func ErrAt(point string, err error) error {
	if Should(point) {
		return &InjectedError{Point: point, Err: err}
	}
	return nil
}

// --- profile parsing ---

// Parse builds a Plan from a compact spec:
//
//	seed=42;net.delay:p=0.05,ms=3;journal.append.crash:nth=3;store.write.enospc:p=0.02,times=2
//
// Segments are ';'-separated. "seed=N" sets the seed (default 1). The
// segment "default" (or "default:seed=N") starts from the built-in
// chaos profile (DefaultProfile); later segments override its points.
// Each point segment is "name:param=value,..." with params p (float
// probability), nth (1-based evaluation), times (max firings) and ms
// (delay bound). An empty spec returns (nil, nil) — disarmed.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed int64 = 1
	seedSet := false
	useDefault := false
	var pts []Point
	for _, seg := range strings.Split(spec, ";") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", v)
			}
			seed, seedSet = n, true
			continue
		}
		name, params, _ := strings.Cut(seg, ":")
		if name == "default" {
			useDefault = true
			// "default:seed=N" carries the seed inline.
			for _, kv := range strings.Split(params, ",") {
				if v, ok := strings.CutPrefix(strings.TrimSpace(kv), "seed="); ok {
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("faultinject: bad seed %q", v)
					}
					seed, seedSet = n, true
				}
			}
			continue
		}
		if !validPoint(name) {
			return nil, fmt.Errorf("faultinject: unknown fault point %q (see internal/faultinject/points.go)", name)
		}
		pt := Point{Name: name}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("faultinject: bad param %q in %q", kv, seg)
				}
				switch k {
				case "p":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1 {
						return nil, fmt.Errorf("faultinject: bad probability %q in %q", v, seg)
					}
					pt.P = f
				case "nth":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("faultinject: bad nth %q in %q", v, seg)
					}
					pt.Nth = n
				case "times":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("faultinject: bad times %q in %q", v, seg)
					}
					pt.Times = n
				case "ms":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("faultinject: bad ms %q in %q", v, seg)
					}
					pt.MS = n
				default:
					return nil, fmt.Errorf("faultinject: unknown param %q in %q", k, seg)
				}
			}
		}
		if pt.P == 0 && pt.Nth == 0 {
			return nil, fmt.Errorf("faultinject: point %q needs p= or nth=", name)
		}
		pts = append(pts, pt)
	}
	var base []Point
	if useDefault {
		base = defaultPoints()
	}
	if len(base) == 0 && len(pts) == 0 {
		if !seedSet {
			return nil, fmt.Errorf("faultinject: spec %q arms no points", spec)
		}
		return nil, fmt.Errorf("faultinject: spec %q sets a seed but arms no points", spec)
	}
	return NewPlan(seed, append(base, pts...)), nil
}

// NewPlan builds a plan from explicit points (later duplicates override
// earlier ones, which is how a spec overrides the default profile).
func NewPlan(seed int64, points []Point) *Plan {
	p := &Plan{Seed: seed, points: make(map[string]*pointState, len(points))}
	for _, pt := range points {
		p.points[pt.Name] = &pointState{Point: pt, rng: rand.New(rand.NewSource(pointSeed(seed, pt.Name)))}
	}
	return p
}

// pointSeed derives a point's private PRNG seed from the plan seed and
// the point name, so each point's sequence is independent.
func pointSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// String renders the plan as a canonical spec (points sorted by name)
// that Parse round-trips; servers log it at startup so a failing chaos
// run is replayable.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	names := make([]string, 0, len(p.points))
	for n := range p.points {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", p.Seed)
	for _, n := range names {
		pt := p.points[n].Point
		b.WriteByte(';')
		b.WriteString(n)
		sep := ':'
		param := func(k string, v string) {
			b.WriteRune(sep)
			sep = ','
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
		if pt.Nth > 0 {
			param("nth", strconv.FormatInt(pt.Nth, 10))
		} else {
			param("p", strconv.FormatFloat(pt.P, 'g', -1, 64))
		}
		if pt.Times > 0 {
			param("times", strconv.FormatInt(pt.Times, 10))
		}
		if pt.MS > 0 {
			param("ms", strconv.FormatInt(pt.MS, 10))
		}
	}
	return b.String()
}
