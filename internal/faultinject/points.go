package faultinject

// The fault-point catalog. Every injection site in the tree evaluates
// one of these names; Parse rejects names outside the catalog so a
// typo in a chaos profile fails loudly instead of silently arming
// nothing. Grouped by where the site cuts:
//
// Network, client side (faultinject.Transport, wrapped around every
// worker control-plane and remote-store HTTP client):
//
//	net.delay             sleep before sending (param ms)
//	net.request.drop      fail before the request is sent
//	net.request.dup       send the request twice (at-least-once delivery;
//	                      only when the body is replayable)
//	net.response.drop     send the request, then lose the response — the
//	                      server-side effect happened, the client errors
//	net.response.truncate deliver a body that dies halfway through
//
// Network, server side (faultinject.Middleware, mounted by cabt-serve
// on the worker-protocol and store-protocol routes only — the tenant
// API stays clean so chaos runs can still be byte-verified through it):
//
//	server.delay          sleep before handling (param ms)
//	server.drop           abort the connection without a response
//	server.err            answer 503 without running the handler
//
// Disk (journal and store write paths):
//
//	journal.append.torn   write a partial frame, then fail the append
//	journal.sync.err      the append's fsync reports an I/O error
//	journal.write.enospc  the append's write reports ENOSPC
//	store.write.enospc    a store object write reports ENOSPC
//
// Process crash (CrashFn: os.Exit(CrashExitCode), modeling power loss
// at that line; the journal points are exercised by subprocess tests,
// the worker point by the chaos soak and CI):
//
//	journal.append.crash.torn    die after writing a partial frame
//	journal.append.crash.synced  die after a durable append
//	journal.rotate.crash.seal    die after sealing a segment, before
//	                             creating its successor
//	journal.rotate.crash.open    die after creating the new segment,
//	                             before the index records the rotation
//	journal.compact.crash.segment die after writing the compacted
//	                             segment, before the index commit
//	journal.compact.crash.commit die after the index commit, before the
//	                             old epoch's files are removed
//	worker.complete.crash        die after executing a task, before
//	                             reporting it (lease expiry re-runs it)
//	server.complete.crash        die while handling a completion
//	store.put.crash              die while handling a store-protocol PUT
const (
	PointNetDelay            = "net.delay"
	PointNetRequestDrop      = "net.request.drop"
	PointNetRequestDup       = "net.request.dup"
	PointNetResponseDrop     = "net.response.drop"
	PointNetResponseTruncate = "net.response.truncate"

	PointServerDelay = "server.delay"
	PointServerDrop  = "server.drop"
	PointServerErr   = "server.err"

	PointJournalAppendTorn  = "journal.append.torn"
	PointJournalSyncErr     = "journal.sync.err"
	PointJournalWriteENOSPC = "journal.write.enospc"
	PointStoreWriteENOSPC   = "store.write.enospc"

	PointJournalAppendCrashTorn    = "journal.append.crash.torn"
	PointJournalAppendCrashSynced  = "journal.append.crash.synced"
	PointJournalRotateCrashSeal    = "journal.rotate.crash.seal"
	PointJournalRotateCrashOpen    = "journal.rotate.crash.open"
	PointJournalCompactCrashSeg    = "journal.compact.crash.segment"
	PointJournalCompactCrashCommit = "journal.compact.crash.commit"
	PointWorkerCompleteCrash       = "worker.complete.crash"
	PointServerCompleteCrash       = "server.complete.crash"
	PointStorePutCrash             = "store.put.crash"
)

// catalog is the set Parse validates against.
var catalog = map[string]bool{
	PointNetDelay:            true,
	PointNetRequestDrop:      true,
	PointNetRequestDup:       true,
	PointNetResponseDrop:     true,
	PointNetResponseTruncate: true,

	PointServerDelay: true,
	PointServerDrop:  true,
	PointServerErr:   true,

	PointJournalAppendTorn:  true,
	PointJournalSyncErr:     true,
	PointJournalWriteENOSPC: true,
	PointStoreWriteENOSPC:   true,

	PointJournalAppendCrashTorn:    true,
	PointJournalAppendCrashSynced:  true,
	PointJournalRotateCrashSeal:    true,
	PointJournalRotateCrashOpen:    true,
	PointJournalCompactCrashSeg:    true,
	PointJournalCompactCrashCommit: true,
	PointWorkerCompleteCrash:       true,
	PointServerCompleteCrash:       true,
	PointStorePutCrash:             true,
}

func validPoint(name string) bool { return catalog[name] }

// defaultPoints is the built-in chaos profile ("default" in a spec):
// every network fault the transport and middleware can produce at rates
// that fire many times over a 16-job batch, the non-fatal disk faults,
// and one crash point — each worker process dies after its fourth
// completed task, so a respawning worker fleet (or the soak harness's
// replacement workers) is exercised along with lease expiry.
//
// The rates are chosen so a batch completes in seconds despite dozens
// of injected failures: every fault here is one the self-healing layer
// (retry/backoff, lease expiry, journal recovery, store quarantine)
// must absorb without failing a single job or perturbing a single
// result byte.
func defaultPoints() []Point {
	return []Point{
		{Name: PointNetDelay, P: 0.05, MS: 3},
		{Name: PointNetRequestDrop, P: 0.04},
		{Name: PointNetRequestDup, P: 0.03},
		{Name: PointNetResponseDrop, P: 0.04},
		{Name: PointNetResponseTruncate, P: 0.03},
		{Name: PointServerDelay, P: 0.04, MS: 3},
		{Name: PointServerDrop, P: 0.04},
		{Name: PointServerErr, P: 0.04},
		{Name: PointJournalSyncErr, P: 0.05},
		{Name: PointJournalAppendTorn, P: 0.03},
		{Name: PointJournalWriteENOSPC, P: 0.02},
		{Name: PointStoreWriteENOSPC, P: 0.02},
		{Name: PointWorkerCompleteCrash, Nth: 5},
	}
}

// DefaultProfile returns the built-in chaos profile armed with seed.
func DefaultProfile(seed int64) *Plan { return NewPlan(seed, defaultPoints()) }
