package faultinject

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func arm(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	Activate(p)
	t.Cleanup(Deactivate)
	return p
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"no.such.point:p=0.5",     // outside the catalog
		"net.delay",               // no trigger
		"net.delay:p=2",           // probability out of range
		"net.delay:nth=0",         // nth must be 1-based
		"net.delay:p=0.1,bogus=1", // unknown param
		"seed=notanumber;net.delay:p=0.1",
		"seed=42", // arms nothing
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
	if p, err := Parse(""); p != nil || err != nil {
		t.Fatalf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	spec := "seed=42;journal.append.crash.torn:nth=3;net.delay:p=0.05,ms=3;store.write.enospc:p=0.02,times=2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-Parse(%q): %v", p.String(), err)
	}
	if p.String() != p2.String() {
		t.Fatalf("canonical spec not a fixed point:\n  %s\n  %s", p.String(), p2.String())
	}
	if p.Seed != 42 || len(p.points) != 3 {
		t.Fatalf("seed=%d points=%d, want 42/3", p.Seed, len(p.points))
	}
}

func TestDefaultProfile(t *testing.T) {
	p, err := Parse("default:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed %d, want 7", p.Seed)
	}
	if _, ok := p.points[PointWorkerCompleteCrash]; !ok {
		t.Fatal("default profile lacks the worker crash point")
	}
	// Overrides after "default" win.
	p, err = Parse("default:seed=7;worker.complete.crash:nth=99")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.points[PointWorkerCompleteCrash].Nth; got != 99 {
		t.Fatalf("override: nth=%d, want 99", got)
	}
}

// Same seed, same point, same evaluation order → identical decisions;
// a different seed diverges. This is the replayability contract.
func TestDeterministicSequence(t *testing.T) {
	seq := func(seed int64) []bool {
		Activate(NewPlan(seed, []Point{{Name: PointNetRequestDrop, P: 0.3}}))
		defer Deactivate()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Should(PointNetRequestDrop)
		}
		return out
	}
	a, b, c := seq(42), seq(42), seq(43)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical 200-evaluation sequences")
	}
	fires := 0
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires < 30 || fires > 90 {
		t.Fatalf("p=0.3 over 200 evals fired %d times — PRNG looks broken", fires)
	}
}

// Evaluations of one point must not perturb another point's sequence.
func TestPointIndependence(t *testing.T) {
	run := func(interleave bool) []bool {
		Activate(NewPlan(1, []Point{
			{Name: PointNetRequestDrop, P: 0.5},
			{Name: PointServerErr, P: 0.5},
		}))
		defer Deactivate()
		out := make([]bool, 50)
		for i := range out {
			if interleave {
				Should(PointServerErr)
			}
			out[i] = Should(PointNetRequestDrop)
		}
		return out
	}
	if fmt.Sprint(run(false)) != fmt.Sprint(run(true)) {
		t.Fatal("evaluating another point changed this point's sequence")
	}
}

func TestNthAndTimes(t *testing.T) {
	arm(t, "net.request.drop:nth=3;server.err:p=1,times=2")
	for i := 1; i <= 6; i++ {
		want := i == 3
		if got := Should(PointNetRequestDrop); got != want {
			t.Fatalf("nth=3: eval %d = %v, want %v", i, got, want)
		}
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if Should(PointServerErr) {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("p=1,times=2 fired %d times, want 2", fired)
	}
	if Fires(PointServerErr) != 2 {
		t.Fatalf("Fires = %d, want 2", Fires(PointServerErr))
	}
}

func TestErrAt(t *testing.T) {
	arm(t, "journal.sync.err:nth=1")
	base := errors.New("fsync failed")
	err := ErrAt(PointJournalSyncErr, base)
	if err == nil || !errors.Is(err, base) {
		t.Fatalf("ErrAt = %v, want wrap of %v", err, base)
	}
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Point != PointJournalSyncErr {
		t.Fatalf("not an InjectedError with the point name: %v", err)
	}
	if err := ErrAt(PointJournalSyncErr, base); err != nil {
		t.Fatalf("second evaluation of nth=1 fired: %v", err)
	}
}

func TestCrashFnOverride(t *testing.T) {
	arm(t, "worker.complete.crash:nth=1")
	old := CrashFn
	defer func() { CrashFn = old }()
	var crashed atomic.Bool
	CrashFn = func(point string) { crashed.Store(true) }
	Crash(PointWorkerCompleteCrash)
	if !crashed.Load() {
		t.Fatal("nth=1 crash point did not fire")
	}
	Crash(PointWorkerCompleteCrash)
}

// The disarmed fast path must be free: no allocation on any hook.
func TestDisabledZeroAlloc(t *testing.T) {
	Deactivate()
	if n := testing.AllocsPerRun(1000, func() {
		Should(PointJournalSyncErr)
		Sleep(PointNetDelay)
		Crash(PointWorkerCompleteCrash)
		if ErrAt(PointStoreWriteENOSPC, errTruncated) != nil {
			t.Fatal("fired while disarmed")
		}
	}); n != 0 {
		t.Fatalf("disarmed hooks allocate %.1f per call, want 0", n)
	}
}

func BenchmarkShouldDisabled(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Should(PointJournalSyncErr) {
			b.Fatal("fired while disarmed")
		}
	}
}

func BenchmarkShouldArmedMiss(b *testing.B) {
	Activate(NewPlan(1, []Point{{Name: PointNetDelay, P: 0.0, Nth: 1 << 60}}))
	defer Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Should(PointJournalSyncErr) // unarmed point under an armed plan
	}
}

func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, strings.Repeat("x", 400))
	}))
	defer srv.Close()
	client := WrapClient(srv.Client())

	t.Run("request drop never reaches the server", func(t *testing.T) {
		arm(t, "net.request.drop:nth=1")
		before := hits.Load()
		_, err := client.Get(srv.URL)
		if err == nil {
			t.Fatal("dropped request returned no error")
		}
		if hits.Load() != before {
			t.Fatal("dropped request reached the server")
		}
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("second request: %v", err)
		}
		resp.Body.Close()
	})

	t.Run("response drop happens after the server acted", func(t *testing.T) {
		arm(t, "net.response.drop:nth=1")
		before := hits.Load()
		_, err := client.Get(srv.URL)
		if err == nil {
			t.Fatal("dropped response returned no error")
		}
		if hits.Load() != before+1 {
			t.Fatal("response drop must still deliver the request")
		}
	})

	t.Run("truncated body fails mid-read", func(t *testing.T) {
		arm(t, "net.response.truncate:nth=1")
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		var inj *InjectedError
		if !errors.As(err, &inj) {
			t.Fatalf("read all %d bytes with err %v, want injected truncation", len(data), err)
		}
		if len(data) >= 400 {
			t.Fatalf("truncation delivered the whole %d-byte body", len(data))
		}
	})

	t.Run("duplicated request delivers twice", func(t *testing.T) {
		arm(t, "net.request.dup:nth=1")
		before := hits.Load()
		resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := hits.Load() - before; got != 2 {
			t.Fatalf("server saw %d deliveries, want 2", got)
		}
	})
}

func TestMiddleware(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	onlyWorkers := func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/v1/workers/")
	}
	srv := httptest.NewServer(Middleware(inner, onlyWorkers))
	defer srv.Close()

	arm(t, "server.err:p=1")
	resp, err := srv.Client().Get(srv.URL + "/v1/workers/w-1/lease")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted route: HTTP %d, want 503", resp.StatusCode)
	}
	// The tenant API is outside the match predicate: always clean.
	resp, err = srv.Client().Get(srv.URL + "/v1/jobs/job-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unmatched route: HTTP %d, want 200", resp.StatusCode)
	}

	arm(t, "server.drop:p=1")
	if _, err := srv.Client().Get(srv.URL + "/v1/workers/w-1/lease"); err == nil {
		t.Fatal("server.drop: want a transport error, got a response")
	}
}

func TestSleepInjectsBoundedDelay(t *testing.T) {
	arm(t, "net.delay:p=1,ms=2")
	start := time.Now()
	d := Sleep(PointNetDelay)
	if d <= 0 || d > 2*time.Millisecond {
		t.Fatalf("injected delay %v outside (0, 2ms]", d)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("slept %v, promised %v", elapsed, d)
	}
}
