package faultinject

import (
	"errors"
	"io"
	"net/http"
)

var (
	errRequestDropped  = errors.New("injected connection failure before send")
	errResponseDropped = errors.New("injected connection loss after send")
	errTruncated       = errors.New("injected truncated response body")
)

// Transport is an http.RoundTripper that injects the client-side
// network faults (net.* points) around a base transport. It is wired
// unconditionally into the worker's control-plane and remote-store
// clients: with no armed plan the overhead is one atomic load per
// request.
//
// The two drop points model different failures on purpose:
// net.request.drop fails before the server sees anything (a pure
// retry), while net.response.drop loses the reply after the server
// acted — the case that forces idempotent protocol design (stale
// completions answered 409, immutable store PUTs, re-registration).
type Transport struct {
	// Base is the underlying transport (nil = http.DefaultTransport).
	Base http.RoundTripper
}

// WrapClient returns a copy of c (nil = a fresh client) whose transport
// injects network faults. Idempotent: an already-wrapped transport is
// returned unchanged.
func WrapClient(c *http.Client) *http.Client {
	if c == nil {
		c = &http.Client{}
	}
	if _, ok := c.Transport.(*Transport); ok {
		return c
	}
	cc := *c
	cc.Transport = &Transport{Base: c.Transport}
	return &cc
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !Enabled() {
		return t.base().RoundTrip(req)
	}
	Sleep(PointNetDelay)
	if Should(PointNetRequestDrop) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &InjectedError{Point: PointNetRequestDrop, Err: errRequestDropped}
	}
	// Duplicate delivery: send a clone first and discard its response,
	// then deliver the real exchange. Only possible when the body is
	// replayable (GetBody) or absent.
	if Should(PointNetRequestDup) && (req.Body == nil || req.GetBody != nil) {
		dup := req.Clone(req.Context())
		if req.GetBody != nil {
			if body, err := req.GetBody(); err == nil {
				dup.Body = body
			} else {
				dup = nil
			}
		}
		if dup != nil {
			if resp, err := t.base().RoundTrip(dup); err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if Should(PointNetResponseDrop) {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		return nil, &InjectedError{Point: PointNetResponseDrop, Err: errResponseDropped}
	}
	if Should(PointNetResponseTruncate) {
		// Deliver roughly half the advertised body, then fail the read —
		// the decoder-side verification (JSON decode errors, store object
		// checksums) must catch it and the client must retry.
		n := resp.ContentLength / 2
		if n <= 0 {
			n = 16
		}
		resp.Body = &truncatedBody{rc: resp.Body, remain: n}
	}
	return resp, nil
}

// truncatedBody yields remain bytes then fails.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, &InjectedError{Point: PointNetResponseTruncate, Err: errTruncated}
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	if err == io.EOF {
		return n, err // body was shorter than the cut anyway
	}
	if b.remain <= 0 && err == nil {
		err = &InjectedError{Point: PointNetResponseTruncate, Err: errTruncated}
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Middleware injects the server-side network faults (server.delay,
// server.drop, server.err) in front of next, but only for requests
// match accepts (nil matches everything). cabt-serve scopes it to the
// worker-protocol and store-protocol routes so the tenant-facing API
// stays clean and chaos runs remain byte-verifiable through it.
func Middleware(next http.Handler, match func(*http.Request) bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !Enabled() || (match != nil && !match(r)) {
			next.ServeHTTP(w, r)
			return
		}
		Sleep(PointServerDelay)
		if Should(PointServerDrop) {
			// The canonical way to abort the connection mid-request:
			// net/http recognizes this panic value and resets the
			// connection without logging a stack.
			panic(http.ErrAbortHandler)
		}
		if Should(PointServerErr) {
			http.Error(w, "faultinject: injected server error", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}
