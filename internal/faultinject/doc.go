// Package faultinject is the repository's seeded, deterministic
// fault-injection layer: named fault points threaded through the
// distributed farm (journal appends, segment rotation, compaction,
// store writes, the worker protocol and the remote store protocol)
// that can be armed with per-point probability, nth-evaluation and
// fire-count triggers from a single seeded profile.
//
// The contract has three parts:
//
//   - Deterministic: every point draws from its own PRNG, derived from
//     (profile seed, point name), so a point's fire/no-fire sequence is
//     a pure function of the seed and that point's evaluation order —
//     independent of what other points or goroutines do. A failing
//     chaos run replays from its printed seed.
//
//   - Free when disarmed: with no active plan, every hook is one atomic
//     pointer load returning the zero decision — no allocation, no map
//     lookup, no lock (pinned by TestDisabledZeroAlloc and
//     BenchmarkShouldDisabled). The simulation engines themselves carry
//     no fault points at all; injection lives only on control-plane and
//     storage paths.
//
//   - Failure-shaped: the helpers produce the real failure modes the
//     self-healing machinery must survive — transport errors and
//     truncated bodies (Transport, Middleware), torn writes, fsync
//     errors and ENOSPC (Should + the errno helpers), and process death
//     (Crash, which exits the process via CrashFn so lease expiry,
//     journal recovery and worker respawn are exercised for real).
//
// Profiles are parsed from a compact spec (see Parse), usually taken
// from the CABT_FAULTS environment variable by cmd/cabt-serve and
// cmd/cabt-worker:
//
//	CABT_FAULTS='seed=42;net.delay:p=0.05,ms=3;journal.sync.err:p=0.1;worker.complete.crash:nth=5'
//	CABT_FAULTS='default:seed=42'   // the built-in chaos profile
//
// The canonical point catalog lives in points.go; docs/architecture.md
// ("Fault tolerance") documents where each point cuts.
package faultinject
