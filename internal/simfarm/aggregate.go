package simfarm

import (
	"fmt"

	"repro/internal/core"
)

// WorkloadAgg aggregates one workload's sweep results across detail
// levels: the board-side reference quantities (identical in every level's
// Result) plus the per-level translated measurements. It is the bridge
// between a farm sweep and per-workload reporting such as the paper's
// Figure 5 (MIPS per level) and Figure 6 (cycle deviation per level).
type WorkloadAgg struct {
	Name string
	// Board carries the reference quantities (BoardCycles, BoardCPI,
	// BoardMIPS, Instructions, ...); taken from the workload's first
	// result.
	Board Result
	// ByLevel holds each level's full result.
	ByLevel map[core.Level]Result
}

// AggregateByWorkload groups a sweep's results by workload, in first-
// appearance order. It fails on any failed result and on duplicate
// (workload, level) pairs — the helper aggregates level sweeps of a
// single configuration, not config sweeps.
func AggregateByWorkload(results []Result) ([]WorkloadAgg, error) {
	var aggs []WorkloadAgg
	index := map[string]int{}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("%s L%d: %w", r.Name, int(r.Level), r.Err)
		}
		i, ok := index[r.Name]
		if !ok {
			i = len(aggs)
			index[r.Name] = i
			aggs = append(aggs, WorkloadAgg{Name: r.Name, Board: r, ByLevel: map[core.Level]Result{}})
		}
		if _, dup := aggs[i].ByLevel[r.Level]; dup {
			return nil, fmt.Errorf("duplicate result for %s L%d (aggregate one configuration at a time)", r.Name, int(r.Level))
		}
		aggs[i].ByLevel[r.Level] = r
	}
	return aggs, nil
}
