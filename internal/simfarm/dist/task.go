package dist

import (
	"time"

	"repro/internal/simfarm"
)

// Task is one unit of distributable work: a single fully resolved
// simulation job of a batch. Exactly one of Sim or SoC is set, selected
// by Kind. Specs are shipped resolved (source text, options, march
// description) rather than by name, so a worker binary never resolves
// against registries that could drift from the server's.
type Task struct {
	// ID is the queue-assigned task identity ("t-<n>").
	ID string `json:"id"`
	// Batch is the server job record this task belongs to.
	Batch string `json:"batch"`
	// Index is the task's position in its batch; the collector writes
	// the result back at this index, preserving job order.
	Index int `json:"index"`
	// Tenant scopes the worker's translation-cache namespace.
	Tenant string `json:"tenant,omitempty"`
	// Kind selects the payload: "sim" (single-core sweep job) or "soc".
	Kind string `json:"kind"`
	// Attempt counts deliveries of this task, 1-based: 2 means one
	// earlier lease was lost or failed.
	Attempt int `json:"attempt"`

	Sim *simfarm.Job    `json:"sim,omitempty"`
	SoC *simfarm.SoCJob `json:"soc,omitempty"`
}

// Task kinds.
const (
	KindSim = "sim"
	KindSoC = "soc"
)

// TaskResult is a worker's completion report for one task. Err is a
// task-level execution failure (the worker could not run the job at
// all); a deterministic job failure — functional mismatch, translation
// error — travels inside the result's own Error field and is never
// retried, exactly like the local path.
type TaskResult struct {
	TaskID string `json:"task_id"`
	Index  int    `json:"index"`
	Worker string `json:"worker,omitempty"`

	Sim *simfarm.Result    `json:"sim,omitempty"`
	SoC *simfarm.SoCResult `json:"soc,omitempty"`

	// CacheState carries Result.CacheOutcome across the wire (the field
	// itself is unexported); CacheHits/CacheMisses carry the SoC
	// per-core counts. The collector restores them before summarizing.
	CacheState  int `json:"cache_state,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`

	Err string `json:"error,omitempty"`
}

// --- worker protocol wire types ---

// RegisterRequest is the POST /v1/workers/register body.
type RegisterRequest struct {
	// Name is a human-readable worker label (host-pid by default); the
	// server's reply assigns the authoritative worker ID.
	Name string `json:"name"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTL is the lease duration the server grants; a worker must
	// heartbeat an in-flight task well within it (TTL/3 is the
	// convention) or the task is requeued elsewhere.
	LeaseTTL time.Duration `json:"lease_ttl_ns"`
}

// LeaseResponse is the POST /v1/workers/{id}/lease body. Task is nil
// when the queue has nothing to hand out (empty or draining) — the
// worker sleeps its poll interval and tries again.
type LeaseResponse struct {
	Task *Task `json:"task"`
}

// HeartbeatRequest extends the leases of the listed in-flight tasks.
type HeartbeatRequest struct {
	TaskIDs []string `json:"task_ids"`
}

// HeartbeatResponse reports leases the worker no longer holds (expired
// and requeued elsewhere); the worker's eventual completion of a lost
// task is rejected as stale, never double-delivered.
type HeartbeatResponse struct {
	Lost []string `json:"lost,omitempty"`
}
