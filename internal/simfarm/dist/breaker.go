package dist

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: healthy, traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerOpen: tripped, traffic is refused until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen: cooldown over, one probe is in flight; its outcome
	// closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value means: trip after 3
// consecutive failures, probe again after 5 s.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker.
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe.
	Cooldown time.Duration
	// Clock is the time source (tests inject a fake one).
	Clock func() time.Time
}

// Breaker is a consecutive-failure circuit breaker. The server front
// one guards distributed dispatch (persistently failing workers degrade
// the server to local execution instead of burning every batch's retry
// budget); the worker-side one guards the remote store (a persistently
// unreachable store degrades translation to local-only instead of
// paying a network timeout per cache miss).
//
// Allow is the gate: callers skip the protected operation when it
// returns false and report the outcome with Success/Failure when it
// returns true. In the half-open state exactly one caller gets a probe;
// the rest stay refused until the probe reports.
type Breaker struct {
	name string
	cfg  BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	until    time.Time // open until (state == BreakerOpen)
	probing  bool      // a half-open probe is in flight
	trips    int64
	refusals int64

	ctrTrips *obs.Counter
}

// NewBreaker builds a breaker. name labels its telemetry
// (cabt_breaker_trips_total{breaker=name}).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{
		name: name,
		cfg:  cfg,
		ctrTrips: obs.Default.Counter("cabt_breaker_trips_total",
			"circuit-breaker trips (closed/half-open to open)", "breaker", name),
	}
}

// Allow reports whether the protected operation may run now. A true
// return obligates the caller to report Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Clock().Before(b.until) {
			b.refusals++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.refusals++
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a healthy outcome: the circuit closes and the failure
// streak resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Failure reports an unhealthy outcome. A half-open probe failure or a
// closed-state streak reaching the threshold re-opens the circuit for a
// full cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.fails++
	if b.state == BreakerClosed && b.fails >= b.cfg.Threshold {
		b.trip()
	}
}

// trip opens the circuit. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.until = b.cfg.Clock().Add(b.cfg.Cooldown)
	b.fails = 0
	b.probing = false
	b.trips++
	b.ctrTrips.Inc()
}

// State reports the breaker's position (open reports half-open once its
// cooldown has lapsed, since the next Allow would probe).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.cfg.Clock().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Refusals reports how many operations the breaker has short-circuited.
func (b *Breaker) Refusals() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refusals
}
