package dist

import (
	"fmt"
	"testing"
	"time"
)

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(1, 3, clk.Now) // 1 token/s, burst 3

	for i := range 3 {
		if ok, _ := l.Allow("acme"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("acme")
	if ok {
		t.Fatal("request beyond burst allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s]", retry)
	}

	// Tenants are independent.
	if ok, _ := l.Allow("globex"); !ok {
		t.Fatal("fresh tenant denied")
	}

	// Waiting the advertised time makes the next request pass.
	clk.Advance(retry)
	if ok, _ := l.Allow("acme"); !ok {
		t.Fatal("request denied after waiting Retry-After")
	}
	// ...but only one token refilled.
	if ok, _ := l.Allow("acme"); ok {
		t.Fatal("second request allowed after one token refill")
	}

	// Refill caps at burst.
	clk.Advance(time.Hour)
	for i := range 3 {
		if ok, _ := l.Allow("acme"); !ok {
			t.Fatalf("request %d denied after full refill", i)
		}
	}
	if ok, _ := l.Allow("acme"); ok {
		t.Fatal("refill exceeded burst")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	l := NewRateLimiter(0, 1, nil)
	for range 100 {
		if ok, _ := l.Allow("anyone"); !ok {
			t.Fatal("disabled limiter denied a request")
		}
	}
	var nilL *RateLimiter
	if ok, _ := nilL.Allow("anyone"); !ok {
		t.Fatal("nil limiter denied a request")
	}
}

func TestRateLimiterPrunesIdleTenants(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(10, 2, clk.Now)
	for i := range 2000 {
		l.Allow(fmt.Sprintf("tenant-%d", i))
	}
	clk.Advance(time.Minute) // everyone refills fully
	l.Allow("trigger")       // prune runs on new-bucket creation
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 2 {
		t.Fatalf("%d buckets retained after prune, want <= 2", n)
	}
}
