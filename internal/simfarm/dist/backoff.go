package dist

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff is exponential backoff with full jitter for the worker's
// control-plane and store clients: attempt n waits a uniform random
// duration in (0, min(Base·2ⁿ, Max)]. Full jitter (rather than ±ε
// around the exponential) is deliberate — when a whole fleet loses the
// server at once, it is what spreads the reconnect stampede.
//
// The zero value is not usable; construct with NewBackoff. A Backoff is
// safe for concurrent use, though each retry loop normally owns one.
type Backoff struct {
	base, max time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// NewBackoff builds a backoff policy. base <= 0 defaults to 100 ms,
// max <= 0 to 10 s.
func NewBackoff(base, max time.Duration) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 10 * time.Second
	}
	return &Backoff{
		base: base,
		max:  max,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Next returns the next delay and advances the attempt counter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.base << b.attempt
	if d <= 0 || d > b.max { // <= 0 catches shift overflow
		d = b.max
	}
	if b.attempt < 62 {
		b.attempt++
	}
	return time.Duration(1 + b.rng.Int63n(int64(d)))
}

// Attempt reports how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset rewinds to the first attempt; call it after a success.
func (b *Backoff) Reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}

// Sleep waits the next backoff delay or until ctx ends, reporting
// whether the full delay elapsed (false = cancelled).
func (b *Backoff) Sleep(ctx context.Context) bool {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
