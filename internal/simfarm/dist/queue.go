package dist

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// QueueConfig tunes the leased work queue. The zero value is usable:
// 15 s leases, 3 attempts per task, workers considered gone after two
// lease TTLs of silence, wall clock.
type QueueConfig struct {
	// LeaseTTL is how long a leased task stays assigned without a
	// heartbeat before it is requeued.
	LeaseTTL time.Duration
	// MaxAttempts is the per-task delivery budget: a task whose lease
	// expires or whose worker reports an execution failure is retried
	// until it has been delivered MaxAttempts times, then failed.
	MaxAttempts int
	// WorkerTTL is how long a registered worker counts as live after its
	// last contact (register, lease, heartbeat, complete).
	WorkerTTL time.Duration
	// Clock is the time source (tests inject a fake one).
	Clock func() time.Time
}

const (
	defaultLeaseTTL    = 15 * time.Second
	defaultMaxAttempts = 3
)

// QueueStats is a point-in-time snapshot for /v1/metrics.
type QueueStats struct {
	Pending     int   // enqueued, waiting for a lease
	Leased      int   // currently leased to a worker
	LiveWorkers int   // workers heard from within WorkerTTL
	Enqueued    int64 // tasks ever enqueued
	Completed   int64 // tasks delivered with a worker result
	Failed      int64 // tasks failed by the queue (budget exhausted, drain)
	Expiries    int64 // leases lost to TTL expiry
	Retries     int64 // requeues (expiry or worker-reported failure)
}

type workerState struct {
	name     string
	lastSeen time.Time
}

type queueTask struct {
	task     Task
	ch       chan<- TaskResult
	worker   string // "" while pending
	deadline time.Time
	done     bool
	// lastErr is the most recent worker-reported execution error, kept
	// so a task that exhausts its budget can surface what actually went
	// wrong instead of a bare "lease expired".
	lastErr string
}

// Queue is the in-memory leased work queue. Enqueue hands back a
// channel that receives exactly one TaskResult per task — from a
// worker's completion or synthesized by the queue when a task exhausts
// its budget — so the dispatcher's collect loop never hangs on a lost
// worker. Leases expire lazily: every operation first requeues any
// leased task whose deadline has passed. Durability is deliberately not
// the queue's job — the journal records batches, and an unfinished
// batch is failed on restart, so the queue can stay simple and
// in-memory.
type Queue struct {
	mu sync.Mutex
	// instance is a per-queue random nonce embedded in worker IDs.
	// Without it a restarted server's fresh queue would re-issue the same
	// sequential IDs, and a pre-restart worker could silently impersonate
	// a post-restart one instead of being told 410 to re-register.
	instance string
	cfg      QueueConfig
	nextW    int
	nextT    int
	workers  map[string]*workerState
	tasks    map[string]*queueTask
	pending  []string // task IDs, lease order
	draining bool

	enqueued  int64
	completed int64
	failed    int64
	expiries  int64
	retries   int64
}

// NewQueue builds a queue, applying defaults for unset config fields.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultLeaseTTL
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = defaultMaxAttempts
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 2 * cfg.LeaseTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	var nonce [4]byte
	rand.Read(nonce[:])
	return &Queue{
		cfg:      cfg,
		instance: hex.EncodeToString(nonce[:]),
		workers:  make(map[string]*workerState),
		tasks:    make(map[string]*queueTask),
	}
}

// LeaseTTL returns the queue's lease duration (advertised to workers at
// registration).
func (q *Queue) LeaseTTL() time.Duration { return q.cfg.LeaseTTL }

// Register adds a worker and returns its queue-assigned ID.
func (q *Queue) Register(name string) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.nextW++
	id := fmt.Sprintf("w-%s-%d", q.instance, q.nextW)
	q.workers[id] = &workerState{name: name, lastSeen: q.cfg.Clock()}
	return id
}

// Known reports whether workerID was issued by this queue instance. A
// server restart builds a fresh queue, so IDs from before the restart
// are unknown — the worker API answers them 410 Gone, which tells the
// worker to re-register rather than retry.
func (q *Queue) Known(workerID string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.workers[workerID]
	return ok
}

// LiveWorkers reports how many workers have been heard from within
// WorkerTTL. The dispatcher uses it to choose distributed over local
// execution.
func (q *Queue) LiveWorkers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.liveWorkersLocked(q.cfg.Clock())
}

func (q *Queue) liveWorkersLocked(now time.Time) int {
	n := 0
	for _, w := range q.workers {
		if now.Sub(w.lastSeen) <= q.cfg.WorkerTTL {
			n++
		}
	}
	return n
}

// Enqueue adds a batch of tasks and returns the channel their results
// will be delivered on. The channel is buffered for the whole batch and
// receives exactly len(tasks) sends, in completion order. Task IDs are
// assigned here; the caller's Batch/Index/Kind/spec fields are
// preserved. Enqueueing into a draining queue fails every task
// immediately.
func (q *Queue) Enqueue(tasks []Task) <-chan TaskResult {
	ch := make(chan TaskResult, len(tasks))
	q.mu.Lock()
	defer q.mu.Unlock()
	for i := range tasks {
		q.nextT++
		t := tasks[i]
		t.ID = fmt.Sprintf("t-%d", q.nextT)
		t.Attempt = 0
		q.enqueued++
		if q.draining {
			q.failed++
			ch <- TaskResult{TaskID: t.ID, Index: t.Index, Err: "queue draining"}
			continue
		}
		q.tasks[t.ID] = &queueTask{task: t, ch: ch}
		q.pending = append(q.pending, t.ID)
	}
	return ch
}

// Lease hands the worker the next pending task, or nil when the queue
// is empty or draining. The returned task's Attempt is 1-based.
func (q *Queue) Lease(workerID string) *Task {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.touch(workerID)
	q.expireLocked(now)
	if q.draining || len(q.pending) == 0 {
		return nil
	}
	id := q.pending[0]
	q.pending = q.pending[1:]
	qt := q.tasks[id]
	qt.worker = workerID
	qt.deadline = now.Add(q.cfg.LeaseTTL)
	qt.task.Attempt++
	t := qt.task
	return &t
}

// Heartbeat extends the worker's leases on the listed tasks and returns
// the IDs it no longer holds (expired and requeued, or already
// completed) so the worker can abandon them.
func (q *Queue) Heartbeat(workerID string, taskIDs []string) (lost []string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.touch(workerID)
	q.expireLocked(now)
	for _, id := range taskIDs {
		qt, ok := q.tasks[id]
		if !ok || qt.done || qt.worker != workerID {
			lost = append(lost, id)
			continue
		}
		qt.deadline = now.Add(q.cfg.LeaseTTL)
	}
	return lost
}

// Complete delivers a worker's result for a task. A completion is
// accepted if the worker still holds the lease, or if the lease expired
// but the task is back in pending un-leased — the work is done and
// deterministic, so delivering it early is safe. It is rejected (false)
// once the task has been completed or re-leased to another worker,
// which is what prevents double delivery after an expiry race. A result
// carrying a task-level execution error consumes an attempt and is
// retried while budget remains.
func (q *Queue) Complete(workerID string, res TaskResult) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.touch(workerID)
	q.expireLocked(now)
	qt, ok := q.tasks[res.TaskID]
	if !ok || qt.done {
		return false
	}
	if qt.worker != workerID && qt.worker != "" {
		return false // re-leased elsewhere: the new holder owns delivery
	}
	if qt.worker == "" {
		// Expired back to pending but not re-leased: accept, and drop it
		// from the pending list.
		q.unpend(res.TaskID)
	}
	if res.Err != "" {
		qt.lastErr = res.Err
	}
	if res.Err != "" && qt.task.Attempt < q.cfg.MaxAttempts && !q.draining {
		// Worker-reported execution failure with budget left: requeue.
		q.retries++
		qt.worker = ""
		q.pending = append([]string{res.TaskID}, q.pending...)
		return true
	}
	qt.done = true
	q.completed++
	delete(q.tasks, res.TaskID)
	res.Index = qt.task.Index
	qt.ch <- res
	return true
}

// Drain switches the queue into shutdown mode: no new leases are
// granted, every pending un-leased task is failed immediately, and
// in-flight leased tasks may still complete (the server waits for them
// up to its drain timeout). Idempotent.
func (q *Queue) Drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return
	}
	q.draining = true
	for _, id := range q.pending {
		q.failTask(q.tasks[id], "queue draining")
	}
	q.pending = nil
}

// InFlight reports how many tasks are currently leased.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.cfg.Clock())
	n := 0
	for _, qt := range q.tasks {
		if !qt.done && qt.worker != "" {
			n++
		}
	}
	return n
}

// Expire requeues every lease whose deadline has passed. Expiry is also
// performed lazily by every queue operation; a periodic Expire from the
// server bounds requeue latency when no worker is talking to us.
func (q *Queue) Expire() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.cfg.Clock())
}

// Stats snapshots the queue for /v1/metrics.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Clock()
	q.expireLocked(now)
	st := QueueStats{
		Pending:     len(q.pending),
		LiveWorkers: q.liveWorkersLocked(now),
		Enqueued:    q.enqueued,
		Completed:   q.completed,
		Failed:      q.failed,
		Expiries:    q.expiries,
		Retries:     q.retries,
	}
	for _, qt := range q.tasks {
		if !qt.done && qt.worker != "" {
			st.Leased++
		}
	}
	return st
}

// touch records worker contact and returns now.
func (q *Queue) touch(workerID string) time.Time {
	now := q.cfg.Clock()
	if w, ok := q.workers[workerID]; ok {
		w.lastSeen = now
	}
	return now
}

// expireLocked requeues (or fails, once out of budget or draining)
// every lease past its deadline. Callers hold q.mu.
func (q *Queue) expireLocked(now time.Time) {
	for id, qt := range q.tasks {
		if qt.done || qt.worker == "" || now.Before(qt.deadline) {
			continue
		}
		q.expiries++
		qt.worker = ""
		if q.draining {
			q.failTask(qt, "queue draining")
			continue
		}
		if qt.task.Attempt >= q.cfg.MaxAttempts {
			msg := fmt.Sprintf("lease expired after %d attempts", qt.task.Attempt)
			if qt.lastErr != "" {
				msg = fmt.Sprintf("%s; last worker error: %s", msg, qt.lastErr)
			}
			q.failTask(qt, msg)
			continue
		}
		q.retries++
		// Requeue at the front: a retry should not wait behind the rest
		// of the batch.
		q.pending = append([]string{id}, q.pending...)
	}
}

// failTask synthesizes a failure result for a task the queue gave up
// on. Callers hold q.mu.
func (q *Queue) failTask(qt *queueTask, msg string) {
	if qt.done {
		return
	}
	qt.done = true
	q.failed++
	delete(q.tasks, qt.task.ID)
	qt.ch <- TaskResult{TaskID: qt.task.ID, Index: qt.task.Index, Err: msg}
}

// unpend removes id from the pending list. Callers hold q.mu.
func (q *Queue) unpend(id string) {
	for i, p := range q.pending {
		if p == id {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
			return
		}
	}
}
