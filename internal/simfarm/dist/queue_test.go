package dist

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newQueue(clk *fakeClock, maxAttempts int) *Queue {
	return NewQueue(QueueConfig{
		LeaseTTL:    10 * time.Second,
		MaxAttempts: maxAttempts,
		Clock:       clk.Now,
	})
}

func simTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Batch: "job-1", Index: i, Kind: KindSim}
	}
	return tasks
}

// recv pops one result without blocking forever.
func recv(t *testing.T, ch <-chan TaskResult) TaskResult {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("no result delivered")
		panic("unreachable")
	}
}

func TestQueueLeaseComplete(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w1 := q.Register("alpha")
	w2 := q.Register("beta")
	if q.LiveWorkers() != 2 {
		t.Fatalf("LiveWorkers = %d, want 2", q.LiveWorkers())
	}

	ch := q.Enqueue(simTasks(3))

	// FIFO lease order, 1-based attempts, queue-assigned IDs.
	t1 := q.Lease(w1)
	t2 := q.Lease(w2)
	if t1 == nil || t2 == nil {
		t.Fatal("lease returned nil with pending tasks")
	}
	if t1.Index != 0 || t2.Index != 1 {
		t.Fatalf("lease order: got indices %d, %d", t1.Index, t2.Index)
	}
	if t1.Attempt != 1 || t2.Attempt != 1 {
		t.Fatalf("attempts: %d, %d, want 1, 1", t1.Attempt, t2.Attempt)
	}
	if t1.ID == "" || t1.ID == t2.ID {
		t.Fatalf("bad task IDs %q, %q", t1.ID, t2.ID)
	}

	if !q.Complete(w1, TaskResult{TaskID: t1.ID, Worker: w1}) {
		t.Fatal("Complete rejected a held lease")
	}
	r := recv(t, ch)
	if r.Index != 0 {
		t.Fatalf("result index = %d, want 0", r.Index)
	}

	t3 := q.Lease(w1)
	if t3 == nil || t3.Index != 2 {
		t.Fatalf("third lease = %+v, want index 2", t3)
	}
	if q.Lease(w2) != nil {
		t.Fatal("lease of empty queue returned a task")
	}
	q.Complete(w2, TaskResult{TaskID: t2.ID})
	q.Complete(w1, TaskResult{TaskID: t3.ID})
	got := map[int]bool{r.Index: true}
	got[recv(t, ch).Index] = true
	got[recv(t, ch).Index] = true
	if len(got) != 3 {
		t.Fatalf("delivered indices %v, want {0,1,2}", got)
	}

	st := q.Stats()
	if st.Completed != 3 || st.Pending != 0 || st.Leased != 0 || st.Failed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueLeaseExpiryRequeues(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w1 := q.Register("doomed")
	w2 := q.Register("survivor")
	ch := q.Enqueue(simTasks(1))

	t1 := q.Lease(w1)
	// w1 is kill -9'd: no heartbeat. Past the TTL the task must be
	// leasable by w2, with the attempt counter bumped.
	clk.Advance(11 * time.Second)
	t2 := q.Lease(w2)
	if t2 == nil || t2.ID != t1.ID {
		t.Fatalf("expired task not re-leased: %+v", t2)
	}
	if t2.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", t2.Attempt)
	}

	// w1 rises from the dead and completes: must be rejected — w2 owns
	// delivery now.
	if q.Complete(w1, TaskResult{TaskID: t1.ID, Worker: w1}) {
		t.Fatal("stale completion accepted after re-lease")
	}
	if !q.Complete(w2, TaskResult{TaskID: t2.ID, Worker: w2}) {
		t.Fatal("live completion rejected")
	}
	r := recv(t, ch)
	if r.Err != "" || r.Worker != w2 {
		t.Fatalf("delivered %+v, want w2's result", r)
	}
	// Exactly one delivery.
	select {
	case r := <-ch:
		t.Fatalf("double delivery: %+v", r)
	default:
	}
	st := q.Stats()
	if st.Expiries != 1 || st.Retries != 1 {
		t.Fatalf("stats %+v, want 1 expiry, 1 retry", st)
	}
}

func TestQueueLateCompletionBeforeRelease(t *testing.T) {
	// Lease expires but the original worker finishes before anyone else
	// leases the task: the work is deterministic, accept it.
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w1 := q.Register("slow")
	ch := q.Enqueue(simTasks(1))
	t1 := q.Lease(w1)
	clk.Advance(11 * time.Second)
	if !q.Complete(w1, TaskResult{TaskID: t1.ID, Worker: w1}) {
		t.Fatal("late completion of an un-re-leased task rejected")
	}
	if r := recv(t, ch); r.Err != "" {
		t.Fatalf("delivered %+v", r)
	}
	// The requeued copy must not be leasable anymore.
	if tk := q.Lease(w1); tk != nil {
		t.Fatalf("completed task re-leased: %+v", tk)
	}
}

func TestQueueAttemptBudgetExhaustion(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 2)
	w := q.Register("flaky")
	ch := q.Enqueue(simTasks(1))

	for attempt := 1; attempt <= 2; attempt++ {
		tk := q.Lease(w)
		if tk == nil || tk.Attempt != attempt {
			t.Fatalf("lease %d: %+v", attempt, tk)
		}
		clk.Advance(11 * time.Second)
	}
	// Third expiry check synthesizes the failure (any op triggers it).
	q.Expire()
	r := recv(t, ch)
	if !strings.Contains(r.Err, "lease expired after 2 attempts") {
		t.Fatalf("failure result %+v", r)
	}
	if st := q.Stats(); st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueWorkerErrorRetried(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 2)
	w := q.Register("w")
	ch := q.Enqueue(simTasks(1))

	t1 := q.Lease(w)
	if !q.Complete(w, TaskResult{TaskID: t1.ID, Err: "transient: store unreachable"}) {
		t.Fatal("error completion rejected")
	}
	// Budget left: retried, not delivered.
	select {
	case r := <-ch:
		t.Fatalf("error delivered with retry budget left: %+v", r)
	default:
	}
	t2 := q.Lease(w)
	if t2 == nil || t2.ID != t1.ID || t2.Attempt != 2 {
		t.Fatalf("retry lease %+v", t2)
	}
	// Out of budget: the error is delivered as-is.
	if !q.Complete(w, TaskResult{TaskID: t2.ID, Err: "still broken"}) {
		t.Fatal("final error completion rejected")
	}
	if r := recv(t, ch); r.Err != "still broken" {
		t.Fatalf("delivered %+v", r)
	}
}

func TestQueueHeartbeatExtendsLease(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w1 := q.Register("steady")
	w2 := q.Register("vulture")
	ch := q.Enqueue(simTasks(1))
	t1 := q.Lease(w1)

	for range 5 {
		clk.Advance(8 * time.Second) // inside each extended TTL
		if lost := q.Heartbeat(w1, []string{t1.ID}); lost != nil {
			t.Fatalf("heartbeat lost %v", lost)
		}
		if tk := q.Lease(w2); tk != nil {
			t.Fatalf("heartbeat did not hold the lease: %+v leased", tk)
		}
	}
	// Stop heartbeating: the lease dies and the heartbeat reports it.
	clk.Advance(11 * time.Second)
	lost := q.Heartbeat(w1, []string{t1.ID})
	if len(lost) != 1 || lost[0] != t1.ID {
		t.Fatalf("lost = %v, want [%s]", lost, t1.ID)
	}
	if tk := q.Lease(w2); tk == nil || tk.Attempt != 2 {
		t.Fatalf("expired task not leasable: %+v", tk)
	}
	_ = ch
}

func TestQueueDrain(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w := q.Register("w")
	ch := q.Enqueue(simTasks(3))
	t1 := q.Lease(w)

	q.Drain()
	q.Drain() // idempotent

	// The two pending tasks fail instantly; the leased one stays out.
	for range 2 {
		if r := recv(t, ch); r.Err != "queue draining" {
			t.Fatalf("pending task result %+v", r)
		}
	}
	if tk := q.Lease(w); tk != nil {
		t.Fatalf("drained queue leased %+v", tk)
	}
	if q.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", q.InFlight())
	}
	// The in-flight task may still complete.
	if !q.Complete(w, TaskResult{TaskID: t1.ID}) {
		t.Fatal("in-flight completion rejected while draining")
	}
	if r := recv(t, ch); r.Err != "" {
		t.Fatalf("in-flight result %+v", r)
	}
	if q.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", q.InFlight())
	}

	// New batches fail wholesale.
	ch2 := q.Enqueue(simTasks(2))
	for range 2 {
		if r := recv(t, ch2); r.Err != "queue draining" {
			t.Fatalf("post-drain enqueue result %+v", r)
		}
	}
}

func TestQueueDrainFailsExpiredInFlight(t *testing.T) {
	// A leased task whose worker dies during drain must fail, not hang.
	clk := newFakeClock()
	q := newQueue(clk, 3)
	w := q.Register("w")
	ch := q.Enqueue(simTasks(1))
	q.Lease(w)
	q.Drain()
	clk.Advance(11 * time.Second)
	q.Expire()
	if r := recv(t, ch); r.Err != "queue draining" {
		t.Fatalf("result %+v", r)
	}
}

func TestQueueLiveWorkersExpire(t *testing.T) {
	clk := newFakeClock()
	q := newQueue(clk, 3) // WorkerTTL defaults to 2×LeaseTTL = 20 s
	w := q.Register("w")
	q.Register("silent")
	clk.Advance(15 * time.Second)
	q.Heartbeat(w, nil) // only w stays in touch
	clk.Advance(10 * time.Second)
	if n := q.LiveWorkers(); n != 1 {
		t.Fatalf("LiveWorkers = %d, want 1 (only the heartbeating one)", n)
	}
	clk.Advance(25 * time.Second)
	if n := q.LiveWorkers(); n != 0 {
		t.Fatalf("LiveWorkers = %d, want 0", n)
	}
}
