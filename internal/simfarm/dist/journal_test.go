package dist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/simfarm"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.cabt")
}

func openJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func rec(id string, typ RecordType) Record {
	r := Record{
		Type:   typ,
		ID:     id,
		Tenant: "acme",
		Kind:   KindSim,
		Jobs:   2,
		Time:   time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC),
	}
	if typ == RecordFinished {
		r.Results = []simfarm.Result{
			{Index: 0, Name: "gcd", Config: "default", Instructions: 4242, CPI: 1.25, CacheHit: true},
			{Index: 1, Name: "fir", Config: "default", Instructions: 991, DeviationPct: -0.5},
		}
		r.Stats = &simfarm.BatchStats{Jobs: 2, Workers: 3, CacheHits: 1, CacheMisses: 1, CacheHitRate: 0.5}
	}
	return r
}

func appendRec(t *testing.T, j *Journal, r Record) {
	t.Helper()
	if err := j.Append(r); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func wantRecords(t *testing.T, j *Journal, want []Record) {
	t.Helper()
	got := j.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j := openJournal(t, path)
	if j.Repaired() != 0 {
		t.Fatalf("fresh journal reports %d repaired bytes", j.Repaired())
	}
	recs := []Record{
		rec("job-1", RecordSubmitted),
		rec("job-1", RecordStarted),
		rec("job-2", RecordSubmitted),
		rec("job-1", RecordFinished),
		{Type: RecordFailed, ID: "job-2", Kind: KindSoC, Time: time.Date(2026, 8, 7, 12, 1, 0, 0, time.UTC), Error: "boom"},
	}
	for _, r := range recs {
		appendRec(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openJournal(t, path)
	if j2.Repaired() != 0 {
		t.Fatalf("intact journal reports %d repaired bytes", j2.Repaired())
	}
	wantRecords(t, j2, recs)
}

// seedJournal writes two intact records and returns the file's bytes so
// corruption tests can damage the tail precisely.
func seedJournal(t *testing.T, path string) (data []byte, intact []Record) {
	t.Helper()
	j := openJournal(t, path)
	intact = []Record{rec("job-1", RecordSubmitted), rec("job-1", RecordFinished)}
	for _, r := range intact {
		appendRec(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return data, intact
}

// frameEnd returns the offset just past record n (0-based) in data.
func frameEnd(t *testing.T, data []byte, n int) int {
	t.Helper()
	off := len(journalMagic) + 4
	for i := 0; i <= n; i++ {
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		off += frameHeaderSize + int(plen)
	}
	return off
}

// TestJournalCrashRecovery mirrors the translation store's corruption
// suite: every damage shape must recover to the longest intact prefix,
// never an error, and the journal must accept appends afterwards.
func TestJournalCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		// damage rewrites the intact two-record file image.
		damage func(t *testing.T, data []byte) []byte
		// keep is how many of the two seeded records must survive.
		keep int
		// repaired is whether the open must report discarded bytes
		// (false for damage shapes that are themselves valid states,
		// like an empty file).
		repaired bool
	}{
		{"truncated-mid-payload", func(t *testing.T, data []byte) []byte {
			return data[:frameEnd(t, data, 1)-3]
		}, 1, true},
		{"truncated-mid-frame-header", func(t *testing.T, data []byte) []byte {
			return data[:frameEnd(t, data, 0)+5]
		}, 1, true},
		{"empty-file", func(t *testing.T, data []byte) []byte {
			return nil
		}, 0, false},
		{"header-only", func(t *testing.T, data []byte) []byte {
			return data[:len(journalMagic)+4]
		}, 0, false},
		{"bad-magic", func(t *testing.T, data []byte) []byte {
			data[0] ^= 0xff
			return data
		}, 0, true},
		{"wrong-version", func(t *testing.T, data []byte) []byte {
			binary.LittleEndian.PutUint32(data[8:], journalVersion+7)
			return data
		}, 0, true},
		{"flipped-payload-bit", func(t *testing.T, data []byte) []byte {
			// Flip one bit inside the second record's payload: the CRC
			// must reject it and keep only the first record.
			data[frameEnd(t, data, 0)+frameHeaderSize+4] ^= 0x01
			return data
		}, 1, true},
		{"garbage-tail", func(t *testing.T, data []byte) []byte {
			return append(data, []byte("not a frame at all")...)
		}, 2, true},
		{"garbage-length-field", func(t *testing.T, data []byte) []byte {
			// A frame header whose length claims more than the file holds.
			var frame [frameHeaderSize]byte
			binary.LittleEndian.PutUint32(frame[:4], 1<<30)
			return append(data, frame[:]...)
		}, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := journalPath(t)
			data, intact := seedJournal(t, path)
			if err := os.WriteFile(path, tc.damage(t, append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatalf("write damaged journal: %v", err)
			}

			j := openJournal(t, path)
			wantRecords(t, j, intact[:tc.keep])
			if tc.repaired && j.Repaired() == 0 {
				t.Error("damage repaired but Repaired() == 0")
			}

			// The repaired journal must be fully usable: append, close,
			// reopen, and see prefix + new record with no residual damage.
			extra := rec("job-9", RecordSubmitted)
			appendRec(t, j, extra)
			if err := j.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			j2 := openJournal(t, path)
			if j2.Repaired() != 0 {
				t.Fatalf("journal still damaged after repair: %d bytes", j2.Repaired())
			}
			wantRecords(t, j2, append(append([]Record(nil), intact[:tc.keep]...), extra))
		})
	}
}

func TestJournalDuplicateRecordsSurviveReplay(t *testing.T) {
	// The journal itself is append-only and preserves duplicates; replay
	// idempotence (folding by batch ID) is the server's job. Verify the
	// journal's half of the contract: duplicates come back verbatim, in
	// order, so folding is deterministic.
	path := journalPath(t)
	j := openJournal(t, path)
	r := rec("job-1", RecordFinished)
	for range 3 {
		appendRec(t, j, r)
	}
	j.Close()
	wantRecords(t, openJournal(t, path), []Record{r, r, r})
}

func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j := openJournal(t, path)
	for i := range 5 {
		appendRec(t, j, rec("job-"+string(rune('1'+i)), RecordSubmitted))
	}
	keep := []Record{rec("job-4", RecordSubmitted), rec("job-5", RecordFinished)}
	if err := j.Compact(keep); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wantRecords(t, j, keep)

	// The compacted journal must keep accepting appends on the same
	// handle, and a reopen must see compacted + appended records.
	extra := rec("job-6", RecordSubmitted)
	appendRec(t, j, extra)
	j.Close()
	wantRecords(t, openJournal(t, path), append(append([]Record(nil), keep...), extra))

	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(path) {
			t.Errorf("leftover file %q after compaction", e.Name())
		}
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j := openJournal(t, journalPath(t))
	j.Close()
	if err := j.Append(rec("job-1", RecordSubmitted)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Compact(nil); err == nil {
		t.Fatal("Compact after Close succeeded")
	}
}
