package dist

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/simfarm"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.cabt")
}

func openJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// seg1 returns the path of the first segment of epoch 1 — where all
// records land until the journal rotates or compacts.
func seg1(path string) string {
	return filepath.Join(path, segmentName(1, 1))
}

func rec(id string, typ RecordType) Record {
	r := Record{
		Type:   typ,
		ID:     id,
		Tenant: "acme",
		Kind:   KindSim,
		Jobs:   2,
		Time:   time.Date(2026, 8, 7, 12, 0, 0, 123456789, time.UTC),
	}
	if typ == RecordFinished {
		r.Results = []simfarm.Result{
			{Index: 0, Name: "gcd", Config: "default", Instructions: 4242, CPI: 1.25, CacheHit: true},
			{Index: 1, Name: "fir", Config: "default", Instructions: 991, DeviationPct: -0.5},
		}
		r.Stats = &simfarm.BatchStats{Jobs: 2, Workers: 3, CacheHits: 1, CacheMisses: 1, CacheHitRate: 0.5}
	}
	return r
}

func appendRec(t *testing.T, j *Journal, r Record) {
	t.Helper()
	if err := j.Append(r); err != nil {
		t.Fatalf("Append: %v", err)
	}
}

func wantRecords(t *testing.T, j *Journal, want []Record) {
	t.Helper()
	got := j.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j := openJournal(t, path)
	if j.Repaired() != 0 {
		t.Fatalf("fresh journal reports %d repaired bytes", j.Repaired())
	}
	recs := []Record{
		rec("job-1", RecordSubmitted),
		rec("job-1", RecordStarted),
		rec("job-2", RecordSubmitted),
		rec("job-1", RecordFinished),
		{Type: RecordFailed, ID: "job-2", Kind: KindSoC, Time: time.Date(2026, 8, 7, 12, 1, 0, 0, time.UTC), Error: "boom"},
	}
	for _, r := range recs {
		appendRec(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openJournal(t, path)
	if j2.Repaired() != 0 {
		t.Fatalf("intact journal reports %d repaired bytes", j2.Repaired())
	}
	wantRecords(t, j2, recs)
}

// A journal written by the pre-segmentation format (one plain file at
// the journal path) must migrate in place and replay identically.
func TestJournalLegacyMigration(t *testing.T) {
	path := journalPath(t)
	intact := []Record{rec("job-1", RecordSubmitted), rec("job-1", RecordFinished)}

	// Build a legacy image: a segment is byte-identical to the old
	// single-file format, so seed via the segmented journal and then
	// flatten the directory back into one file at the path.
	j := openJournal(t, path)
	for _, r := range intact {
		appendRec(t, j, r)
	}
	j.Close()
	data, err := os.ReadFile(seg1(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, path)
	wantRecords(t, j2, intact)
	if j2.Repaired() != 0 {
		t.Fatalf("migration reported %d repaired bytes", j2.Repaired())
	}
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		t.Fatalf("journal path not migrated to a directory: %v %v", fi, err)
	}
	// And the migration is idempotent across another cycle.
	extra := rec("job-2", RecordSubmitted)
	appendRec(t, j2, extra)
	j2.Close()
	wantRecords(t, openJournal(t, path), append(append([]Record(nil), intact...), extra))
}

// seedJournal writes two intact records and returns the active
// segment's bytes so corruption tests can damage the tail precisely.
func seedJournal(t *testing.T, path string) (data []byte, intact []Record) {
	t.Helper()
	j := openJournal(t, path)
	intact = []Record{rec("job-1", RecordSubmitted), rec("job-1", RecordFinished)}
	for _, r := range intact {
		appendRec(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(seg1(path))
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	return data, intact
}

// frameEnd returns the offset just past record n (0-based) in data.
func frameEnd(t *testing.T, data []byte, n int) int {
	t.Helper()
	off := segmentHeaderSize
	for i := 0; i <= n; i++ {
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		off += frameHeaderSize + int(plen)
	}
	return off
}

// TestJournalCrashRecovery mirrors the translation store's corruption
// suite: every damage shape must recover to the longest intact prefix,
// never an error, and the journal must accept appends afterwards.
func TestJournalCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		// damage rewrites the intact two-record segment image.
		damage func(t *testing.T, data []byte) []byte
		// keep is how many of the two seeded records must survive.
		keep int
		// repaired is whether the open must report discarded bytes
		// (false for damage shapes that are themselves valid states,
		// like an empty file).
		repaired bool
	}{
		{"truncated-mid-payload", func(t *testing.T, data []byte) []byte {
			return data[:frameEnd(t, data, 1)-3]
		}, 1, true},
		{"truncated-mid-frame-header", func(t *testing.T, data []byte) []byte {
			return data[:frameEnd(t, data, 0)+5]
		}, 1, true},
		{"empty-file", func(t *testing.T, data []byte) []byte {
			return nil
		}, 0, false},
		{"header-only", func(t *testing.T, data []byte) []byte {
			return data[:segmentHeaderSize]
		}, 0, false},
		{"bad-magic", func(t *testing.T, data []byte) []byte {
			data[0] ^= 0xff
			return data
		}, 0, true},
		{"wrong-version", func(t *testing.T, data []byte) []byte {
			binary.LittleEndian.PutUint32(data[8:], journalVersion+7)
			return data
		}, 0, true},
		{"flipped-payload-bit", func(t *testing.T, data []byte) []byte {
			// Flip one bit inside the second record's payload: the CRC
			// must reject it and keep only the first record.
			data[frameEnd(t, data, 0)+frameHeaderSize+4] ^= 0x01
			return data
		}, 1, true},
		{"garbage-tail", func(t *testing.T, data []byte) []byte {
			return append(data, []byte("not a frame at all")...)
		}, 2, true},
		{"garbage-length-field", func(t *testing.T, data []byte) []byte {
			// A frame header whose length claims more than the file holds.
			var frame [frameHeaderSize]byte
			binary.LittleEndian.PutUint32(frame[:4], 1<<30)
			return append(data, frame[:]...)
		}, 2, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := journalPath(t)
			data, intact := seedJournal(t, path)
			if err := os.WriteFile(seg1(path), tc.damage(t, append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatalf("write damaged segment: %v", err)
			}

			j := openJournal(t, path)
			wantRecords(t, j, intact[:tc.keep])
			if tc.repaired && j.Repaired() == 0 {
				t.Error("damage repaired but Repaired() == 0")
			}

			// The repaired journal must be fully usable: append, close,
			// reopen, and see prefix + new record with no residual damage.
			extra := rec("job-9", RecordSubmitted)
			appendRec(t, j, extra)
			if err := j.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			j2 := openJournal(t, path)
			if j2.Repaired() != 0 {
				t.Fatalf("journal still damaged after repair: %d bytes", j2.Repaired())
			}
			wantRecords(t, j2, append(append([]Record(nil), intact[:tc.keep]...), extra))
		})
	}
}

func TestJournalDuplicateRecordsSurviveReplay(t *testing.T) {
	// The journal itself is append-only and preserves duplicates; replay
	// idempotence (folding by batch ID) is the server's job. Verify the
	// journal's half of the contract: duplicates come back verbatim, in
	// order, so folding is deterministic.
	path := journalPath(t)
	j := openJournal(t, path)
	r := rec("job-1", RecordFinished)
	for range 3 {
		appendRec(t, j, r)
	}
	j.Close()
	wantRecords(t, openJournal(t, path), []Record{r, r, r})
}

// With a tiny rotation threshold every append seals a segment; replay
// must stitch all segments back together in order, and the sealed ones
// must appear in the recovery index.
func TestJournalRotation(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournalWith(path, JournalOptions{RotateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := range 8 {
		r := rec(fmt.Sprintf("job-%d", i), RecordSubmitted)
		recs = append(recs, r)
		appendRec(t, j, r)
	}
	if got := j.Segments(); got < 3 {
		t.Fatalf("RotateBytes=64 after 8 appends: %d segments, want several", got)
	}
	segs := j.Segments()
	j.Close()

	idx, ok := readJournalIndex(path)
	if !ok {
		t.Fatal("no readable recovery index")
	}
	if len(idx.Sealed) != segs-1 {
		t.Fatalf("index lists %d sealed segments, journal had %d", len(idx.Sealed), segs-1)
	}

	j2 := openJournal(t, path)
	wantRecords(t, j2, recs)
	if j2.Repaired() != 0 {
		t.Fatalf("intact rotated journal reports %d repaired bytes", j2.Repaired())
	}
}

// Damage in the middle of a segment chain: the damaged segment keeps
// its intact prefix and everything after it — later segments included —
// is discarded, because a lost tail breaks the order guarantee.
func TestJournalRotationDamageDropsLaterSegments(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournalWith(path, JournalOptions{RotateBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := range 6 {
		r := rec(fmt.Sprintf("job-%d", i), RecordSubmitted)
		recs = append(recs, r)
		appendRec(t, j, r)
	}
	if j.Segments() < 3 {
		t.Fatalf("want at least 3 segments, got %d", j.Segments())
	}
	j.Close()

	// Corrupt the second segment's first record payload.
	p2 := filepath.Join(path, segmentName(1, 2))
	data, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	data[segmentHeaderSize+frameHeaderSize+2] ^= 0x01
	if err := os.WriteFile(p2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, path)
	if j2.Repaired() == 0 {
		t.Fatal("mid-chain damage not reported")
	}
	got := j2.Records()
	// RotateBytes=64 rotates after every record: segment 1 holds record 0.
	if len(got) == 0 || len(got) >= len(recs) {
		t.Fatalf("kept %d of %d records; want a proper non-empty prefix", len(got), len(recs))
	}
	wantRecords(t, j2, recs[:len(got)])
	// Appends continue after the repair and survive a reopen.
	extra := rec("job-X", RecordSubmitted)
	appendRec(t, j2, extra)
	j2.Close()
	wantRecords(t, openJournal(t, path), append(append([]Record(nil), recs[:len(got)]...), extra))
}

func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j := openJournal(t, path)
	for i := range 5 {
		appendRec(t, j, rec("job-"+string(rune('1'+i)), RecordSubmitted))
	}
	keep := []Record{rec("job-4", RecordSubmitted), rec("job-5", RecordFinished)}
	if err := j.Compact(keep); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	wantRecords(t, j, keep)
	if j.Epoch() != 2 {
		t.Fatalf("epoch %d after first compaction, want 2", j.Epoch())
	}

	// The compacted journal must keep accepting appends on the same
	// handle, and a reopen must see compacted + appended records.
	extra := rec("job-6", RecordSubmitted)
	appendRec(t, j, extra)
	j.Close()
	wantRecords(t, openJournal(t, path), append(append([]Record(nil), keep...), extra))

	// Only the new epoch's segment and the index remain — no temp files,
	// no old-epoch segments.
	entries, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != segmentName(2, 1) && e.Name() != indexName {
			t.Errorf("leftover file %q after compaction", e.Name())
		}
	}
}

// A compaction that wrote the new epoch's segment but crashed before
// the index commit must roll back: the old epoch is still the journal.
func TestJournalCompactCrashBeforeCommitRollsBack(t *testing.T) {
	path := journalPath(t)
	recs := []Record{rec("job-1", RecordSubmitted), rec("job-2", RecordSubmitted)}
	j := openJournal(t, path)
	for _, r := range recs {
		appendRec(t, j, r)
	}
	j.Close()

	// Simulate the crash by planting an uncommitted epoch-2 segment.
	if err := rewriteEmptySegment(filepath.Join(path, segmentName(2, 1))); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, path)
	wantRecords(t, j2, recs)
	if j2.Epoch() != 1 {
		t.Fatalf("epoch %d, want rollback to 1", j2.Epoch())
	}
	if _, err := os.Stat(filepath.Join(path, segmentName(2, 1))); !os.IsNotExist(err) {
		t.Error("uncommitted epoch-2 segment survived recovery")
	}
}

// The mirror image: index committed to epoch 2, but the crash happened
// before the old epoch's files were deleted. Recovery must finish the
// deletion and serve epoch 2.
func TestJournalCompactCrashAfterCommitFinishesDeletion(t *testing.T) {
	path := journalPath(t)
	j := openJournal(t, path)
	appendRec(t, j, rec("job-old", RecordSubmitted))
	keep := []Record{rec("job-new", RecordFinished)}
	if err := j.Compact(keep); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Resurrect a stale epoch-1 segment, as if deletion never ran.
	stale := filepath.Join(path, segmentName(1, 1))
	if err := rewriteEmptySegment(stale); err != nil {
		t.Fatal(err)
	}
	j2 := openJournal(t, path)
	wantRecords(t, j2, keep)
	if j2.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2", j2.Epoch())
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale epoch-1 segment survived recovery")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j := openJournal(t, journalPath(t))
	j.Close()
	if err := j.Append(rec("job-1", RecordSubmitted)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := j.Compact(nil); err == nil {
		t.Fatal("Compact after Close succeeded")
	}
}
