package dist

import (
	"crypto/sha256"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/simfarm/store"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// testProgram translates one workload once per test binary.
var testProgram = sync.OnceValues(func() (*core.Program, error) {
	w, ok := workload.ByName("gcd")
	if !ok {
		panic("no gcd workload")
	}
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		return nil, err
	}
	return core.Translate(f, core.Options{Level: core.Level1})
})

func prog(t *testing.T) *core.Program {
	t.Helper()
	p, err := testProgram()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func logicalKey(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

// progCycles runs a program on the platform; equal cycle counts are the
// round-trip equivalence criterion that matters to the farm.
func progCycles(t *testing.T, p *core.Program) (int64, int64) {
	t.Helper()
	sys := platform.New(p)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	return st.C6xCycles, st.GeneratedCycles
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// storeServer spins up a StoreServer over a fresh store and returns
// both plus the test server's base URL.
func storeServer(t *testing.T) (*store.Store, *StoreServer, string) {
	t.Helper()
	st := openStore(t, t.TempDir())
	ss := NewStoreServer(st)
	mux := http.NewServeMux()
	ss.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return st, ss, srv.URL
}

func TestRemoteStoreRoundTrip(t *testing.T) {
	_, ss, base := storeServer(t)
	p := prog(t)
	k := logicalKey("remote-round-trip")

	up := NewRemoteStore(base, "acme", nil, nil)
	if err := up.Store(k, p); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if st := up.Stats(); st.Puts != 1 || st.PutsSkipped != 0 {
		t.Fatalf("uploader stats %+v, want 1 put", st)
	}

	// A different client (different machine in production) loads it.
	down := NewRemoteStore(base, "acme", nil, nil)
	got, ok, err := down.Load(k)
	if err != nil || !ok {
		t.Fatalf("Load = (_, %v, %v), want hit", ok, err)
	}
	wc6x, wgen := progCycles(t, p)
	gc6x, ggen := progCycles(t, got)
	if gc6x != wc6x || ggen != wgen {
		t.Fatalf("round-tripped program runs (%d, %d) cycles, want (%d, %d)", gc6x, ggen, wc6x, wgen)
	}
	if st := down.Stats(); st.RemoteHits != 1 || st.Misses != 0 {
		t.Fatalf("downloader stats %+v, want 1 remote hit", st)
	}

	// Namespaces isolate tenants: the same logical key under another
	// tenant is a miss.
	other := NewRemoteStore(base, "globex", nil, nil)
	if _, ok, err := other.Load(k); err != nil || ok {
		t.Fatalf("cross-tenant Load = (_, %v, %v), want miss", ok, err)
	}

	// Storing again revalidates with If-None-Match and skips the upload.
	if err := up.Store(k, p); err != nil {
		t.Fatalf("re-Store: %v", err)
	}
	if st := up.Stats(); st.Puts != 1 || st.PutsSkipped != 1 {
		t.Fatalf("uploader stats %+v, want the second store skipped", st)
	}
	sst := ss.Stats()
	if sst.NotModified == 0 {
		t.Fatalf("server stats %+v, want a 304", sst)
	}
	if sst.Puts != 1 {
		t.Fatalf("server stats %+v, want exactly 1 accepted put", sst)
	}
}

func TestRemoteStoreLocalDiskLevel(t *testing.T) {
	_, _, base := storeServer(t)
	p := prog(t)
	k := logicalKey("disk-level")

	// Seed the server through a diskless client.
	if err := NewRemoteStore(base, "", nil, nil).Store(k, p); err != nil {
		t.Fatal(err)
	}

	disk := openStore(t, t.TempDir())
	rs := NewRemoteStore(base, "", disk, nil)

	// First load: remote hit, back-filled to disk.
	if _, ok, err := rs.Load(k); err != nil || !ok {
		t.Fatalf("Load = (_, %v, %v)", ok, err)
	}
	// Second load: served from the local disk level.
	if _, ok, err := rs.Load(k); err != nil || !ok {
		t.Fatalf("second Load = (_, %v, %v)", ok, err)
	}
	st := rs.Stats()
	if st.RemoteHits != 1 || st.LocalHits != 1 {
		t.Fatalf("stats %+v, want 1 remote + 1 local hit", st)
	}

	// The disk level alone can satisfy a fresh client offline: point one
	// at a dead server with the same disk.
	dead := NewRemoteStore("http://127.0.0.1:0", "", disk, nil)
	if _, ok, err := dead.Load(k); err != nil || !ok {
		t.Fatalf("offline Load = (_, %v, %v), want local hit", ok, err)
	}
}

func TestRemoteStoreMiss(t *testing.T) {
	_, ss, base := storeServer(t)
	rs := NewRemoteStore(base, "", nil, nil)
	if _, ok, err := rs.Load(logicalKey("absent")); err != nil || ok {
		t.Fatalf("Load = (_, %v, %v), want clean miss", ok, err)
	}
	if st := rs.Stats(); st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st := ss.Stats(); st.Misses != 1 {
		t.Fatalf("server stats %+v", st)
	}
}

func TestRemoteStoreRejectsCorruptTransfer(t *testing.T) {
	// A server (or proxy) handing back garbage must read as a miss, not
	// a poisoned program: the client verifies the framed bytes itself.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("CABTOBJ\nthis is not a framed object"))
	}))
	defer srv.Close()
	rs := NewRemoteStore(srv.URL, "", nil, nil)
	if _, ok, err := rs.Load(logicalKey("corrupt")); err != nil || ok {
		t.Fatalf("Load of corrupt transfer = (_, %v, %v), want miss", ok, err)
	}
}

func TestStoreServerRejectsBadPut(t *testing.T) {
	st, ss, base := storeServer(t)
	dk := store.DeriveKey("", logicalKey("bad-put"))
	rs := NewRemoteStore(base, "", nil, nil)

	req, _ := http.NewRequest(http.MethodPut, rs.url(dk), http.NoBody)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty PUT = %s, want 400", resp.Status)
	}
	if ss.Stats().BadPuts != 1 {
		t.Fatalf("server stats %+v", ss.Stats())
	}
	// Nothing was planted.
	if _, ok, _ := st.LoadRaw(dk); ok {
		t.Fatal("bad PUT left an object behind")
	}
}

func TestStoreServerRejectsBadKey(t *testing.T) {
	_, _, base := storeServer(t)
	for _, path := range []string{"/v1/store/zz", "/v1/store/" + strings.Repeat("zq", 32)} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %q = %s, want 400", path, resp.Status)
		}
	}
}
