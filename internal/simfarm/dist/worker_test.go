package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simfarm"
	"repro/internal/soc"
	"repro/internal/workload"
)

// controlPlane wires a Queue and a StoreServer onto one test server —
// the worker-facing half of cabt-serve, without the job API.
func controlPlane(t *testing.T, qcfg QueueConfig) (*Queue, *StoreServer, string) {
	t.Helper()
	q := NewQueue(qcfg)
	st := openStore(t, t.TempDir())
	ss := NewStoreServer(st)
	mux := http.NewServeMux()
	ss.Register(mux)
	(&WorkerAPI{Queue: q}).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return q, ss, srv.URL
}

func startWorker(t *testing.T, ctx context.Context, cfg WorkerConfig) *Worker {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	w := NewWorker(cfg)
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("worker did not exit")
		}
	})
	return w
}

func simBatch(t *testing.T) []Task {
	t.Helper()
	w, ok := workload.ByName("gcd")
	if !ok {
		t.Fatal("no gcd workload")
	}
	jobs := simfarm.SweepJobs([]workload.Workload{w}, []core.Level{core.Level0, core.Level1, core.Level2, core.Level3}, nil)
	tasks := make([]Task, len(jobs))
	for i := range jobs {
		tasks[i] = Task{Batch: "job-1", Index: i, Tenant: "acme", Kind: KindSim, Sim: &jobs[i]}
	}
	return tasks
}

func TestWorkerEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, ss, base := controlPlane(t, QueueConfig{LeaseTTL: 3 * time.Second})
	w1 := startWorker(t, ctx, WorkerConfig{Server: base, Name: "w1"})
	w2 := startWorker(t, ctx, WorkerConfig{Server: base, Name: "w2"})

	tasks := simBatch(t)
	ch := q.Enqueue(tasks)
	results := make([]TaskResult, len(tasks))
	for range tasks {
		r := recv(t, ch)
		if r.Err != "" || r.Sim == nil || r.Sim.Error != "" {
			t.Fatalf("task result %+v", r)
		}
		results[r.Index] = r
	}

	// Distributed results must match the single-process farm on every
	// deterministic quantity (wall times legitimately differ).
	want, _ := simfarm.New(simfarm.Config{Workers: 1}).Run(simJobs(tasks))
	for i, r := range results {
		g, w := r.Sim, want[i]
		if g.Name != w.Name || g.Level != w.Level ||
			g.Instructions != w.Instructions || g.BoardCycles != w.BoardCycles ||
			g.C6xCycles != w.C6xCycles || g.GeneratedCycles != w.GeneratedCycles ||
			g.CPI != w.CPI || g.MIPS != w.MIPS ||
			g.DeviationPct != w.DeviationPct || g.Seconds != w.Seconds {
			t.Errorf("task %d: distributed %+v != local %+v", i, g, w)
		}
	}

	// Both workers pulled work (4 tasks, 2 workers, each runs one at a
	// time — with 4 gcd translations each taking real time, a single
	// worker finishing all 4 before the other's first lease is the only
	// way this fails, and the 10 ms poll makes that a non-flake). A
	// worker bumps its counter only after its complete POST returns,
	// which races the queue-side result delivery above — so poll briefly
	// for the counters to settle instead of reading them once.
	total := func() int64 { return w1.TasksDone() + w2.TasksDone() }
	for deadline := time.Now().Add(2 * time.Second); total() != int64(len(tasks)) && time.Now().Before(deadline); {
		time.Sleep(5 * time.Millisecond)
	}
	if total() != int64(len(tasks)) {
		t.Errorf("tasks done: %d + %d, want %d", w1.TasksDone(), w2.TasksDone(), len(tasks))
	}

	// The translations flowed through the shared store: each (ELF,
	// options) fingerprint was uploaded exactly once and the workers'
	// caches interacted with the remote level.
	sst := ss.Stats()
	if sst.Puts == 0 {
		t.Errorf("server store saw no uploads: %+v", sst)
	}
	agg := w1.StoreStats()
	w2s := w2.StoreStats()
	if agg.Puts+w2s.Puts+agg.PutsSkipped+w2s.PutsSkipped == 0 {
		t.Errorf("workers report no store writes: %+v %+v", agg, w2s)
	}

	cancel()
}

// simJobs unpacks the Sim specs back out of tasks.
func simJobs(tasks []Task) []simfarm.Job {
	jobs := make([]simfarm.Job, len(tasks))
	for i, tk := range tasks {
		jobs[i] = *tk.Sim
	}
	return jobs
}

func TestWorkerRunsSoCTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, _, base := controlPlane(t, QueueConfig{LeaseTTL: 3 * time.Second})
	startWorker(t, ctx, WorkerConfig{Server: base, Name: "w"})

	jobs, err := simfarm.SoCSweepJobs([]string{"mc-sieve"}, []int{2}, []int64{100}, []soc.Arbitration{0}, core.Options{Level: core.Level1}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("%d jobs", len(jobs))
	}
	ch := q.Enqueue([]Task{{Batch: "job-1", Index: 0, Kind: KindSoC, SoC: &jobs[0]}})
	r := recv(t, ch)
	if r.Err != "" || r.SoC == nil || r.SoC.Error != "" {
		t.Fatalf("SoC result %+v", r)
	}

	want, _ := simfarm.New(simfarm.Config{Workers: 1}).RunSoC(jobs)
	if r.SoC.TotalCycles != want[0].TotalCycles || r.SoC.MakespanCycles != want[0].MakespanCycles ||
		r.SoC.BusTransactions != want[0].BusTransactions || r.SoC.Quanta != want[0].Quanta {
		t.Errorf("distributed SoC %+v != local %+v", r.SoC, want[0])
	}
	hits, misses := 0, 0
	if r.CacheHits+r.CacheMisses == 0 {
		t.Errorf("no cache counts on the wire: %+v (local: %d/%d)", r, hits, misses)
	}
}

func TestWorkerReportsMalformedTask(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// MaxAttempts 1: the worker-reported error is delivered, not retried.
	q, _, base := controlPlane(t, QueueConfig{LeaseTTL: 3 * time.Second, MaxAttempts: 1})
	startWorker(t, ctx, WorkerConfig{Server: base, Name: "w"})

	ch := q.Enqueue([]Task{{Batch: "job-1", Index: 0, Kind: KindSim}}) // no payload
	r := recv(t, ch)
	if r.Err == "" {
		t.Fatalf("malformed task returned %+v, want error", r)
	}
}

func TestWorkerEphemeralUsesRemoteStore(t *testing.T) {
	// Ephemeral mode drops the farm after each task, so a repeated task
	// must be served by the remote store, not farm memory.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, _, base := controlPlane(t, QueueConfig{LeaseTTL: 3 * time.Second})
	w := startWorker(t, ctx, WorkerConfig{Server: base, Name: "w", Ephemeral: true})

	tasks := simBatch(t)[:1]
	if r := recv(t, q.Enqueue(tasks)); r.Err != "" {
		t.Fatalf("cold task %+v", r)
	}
	if r := recv(t, q.Enqueue(tasks)); r.Err != "" {
		t.Fatalf("warm task %+v", r)
	} else if r.Sim == nil || !r.Sim.CacheHit {
		t.Fatalf("warm task was not a cache hit: %+v", r.Sim)
	}
	st := w.StoreStats()
	if st.RemoteHits == 0 {
		t.Errorf("warm ephemeral task did not hit the remote store: %+v", st)
	}
}
