package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/simfarm"
)

// RecordType labels a journal record.
type RecordType string

// The batch lifecycle: every batch appends Submitted, then Started when
// dispatch begins, then exactly one of Finished or Failed. Replay folds
// records by batch ID, so duplicates and interleavings are harmless.
const (
	RecordSubmitted RecordType = "submitted"
	RecordStarted   RecordType = "started"
	RecordFinished  RecordType = "finished"
	RecordFailed    RecordType = "failed"
)

// Record is one journal entry. Submitted carries the batch identity and
// shape; Finished carries the full result payload — exactly what
// GET /v1/jobs/{id} serves — so a replayed record answers queries
// bit-identically to the pre-restart server. Failed carries the batch
// error (a batch found Submitted-but-unfinished at replay is failed with
// an "interrupted" error, since its in-memory execution died with the
// old process).
type Record struct {
	Type   RecordType `json:"type"`
	ID     string     `json:"id"`
	Tenant string     `json:"tenant,omitempty"`
	Kind   string     `json:"kind,omitempty"`
	Jobs   int        `json:"jobs,omitempty"`
	// Time is the event time: creation for Submitted/Started, completion
	// for Finished/Failed.
	Time  time.Time `json:"time"`
	Error string    `json:"error,omitempty"`

	Results []simfarm.Result    `json:"results,omitempty"`
	Stats   *simfarm.BatchStats `json:"stats,omitempty"`

	SoCResults []simfarm.SoCResult    `json:"soc_results,omitempty"`
	SoCStats   *simfarm.SoCBatchStats `json:"soc_stats,omitempty"`
}

// journalMagic opens every segment; the u32 version after it is
// negotiated explicitly, like the store's object format.
var journalMagic = [8]byte{'C', 'A', 'B', 'T', 'J', 'R', 'N', '\n'}

const journalVersion = 1

// segmentHeaderSize is the magic-plus-version prefix of every segment.
const segmentHeaderSize = len(journalMagic) + 4

// frameHeaderSize is the per-record frame: payload length (u32 LE) then
// CRC-32 (IEEE) of the payload.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record (a finished sweep of thousands
// of jobs is a few MB of JSON; 256 MB is far beyond any legitimate
// record and keeps a garbage length field from allocating the world).
const maxRecordBytes = 256 << 20

// DefaultJournalRotateBytes is the segment size at which Append rotates
// to a fresh segment. Small enough that recovery after damage loses at
// most one segment's tail, large enough that a segment holds thousands
// of typical batch records.
const DefaultJournalRotateBytes = 4 << 20

// indexName is the recovery index inside the journal directory: the
// epoch commit pointer plus the sealed-segment manifest.
const indexName = "index.json"

// journalIndex is the on-disk recovery index. Epoch is load-bearing:
// compaction commits by atomically writing an index with the bumped
// epoch, and recovery discards every segment from another epoch. The
// sealed list is advisory — recovery re-scans segments with CRCs either
// way — but lets damage to a sealed segment be reported precisely.
type journalIndex struct {
	Version int             `json:"version"`
	Epoch   int             `json:"epoch"`
	Sealed  []sealedSegment `json:"sealed,omitempty"`
}

// sealedSegment describes a rotated-out (immutable) segment.
type sealedSegment struct {
	Seq     int   `json:"seq"`
	Bytes   int64 `json:"bytes"`
	Records int   `json:"records"`
}

// segmentName renders the canonical segment filename for (epoch, seq).
func segmentName(epoch, seq int) string {
	return fmt.Sprintf("seg-%06d-%06d.cabtj", epoch, seq)
}

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (epoch, seq int, ok bool) {
	if n, err := fmt.Sscanf(name, "seg-%06d-%06d.cabtj", &epoch, &seq); err != nil || n != 2 {
		return 0, 0, false
	}
	if segmentName(epoch, seq) != name || epoch < 1 || seq < 1 {
		return 0, 0, false
	}
	return epoch, seq, true
}

// Journal is the durable batch journal: a directory of append-only
// segments of checksum-framed JSON records, plus a recovery index.
// Append syncs the active segment, so a record returned to a client as
// durable survives power loss, and rotates to a new segment once the
// active one passes the rotation threshold. Compaction writes the
// surviving records as a new epoch and commits it with one atomic index
// write, so a crash at any instant leaves either the old epoch or the
// new one — never a mixture.
//
// Opening replays every segment of the committed epoch in order,
// repairing damage by the rule the single-file journal established:
// nothing after the first damaged byte is trustworthy, so the damaged
// segment is truncated to its last intact record and all later segments
// are discarded. A journal created by an older build (one plain file)
// is migrated in place into a one-segment directory. A Journal is safe
// for concurrent use.
type Journal struct {
	mu  sync.Mutex
	dir string

	epoch int
	seq   int // active segment
	f     *os.File
	size  int64 // bytes in the active segment
	nrec  int   // records in the active segment

	sealed      []sealedSegment
	records     []Record
	repaired    int64
	rotateBytes int64
}

// JournalOptions tunes OpenJournalWith.
type JournalOptions struct {
	// RotateBytes is the active-segment size that triggers rotation
	// (<= 0 means DefaultJournalRotateBytes).
	RotateBytes int64
}

// OpenJournal opens (creating if needed) the journal at path and
// replays it with default options. Every failure mode of the directory
// body recovers: a missing directory is created, a legacy single-file
// journal is migrated, an unreadable segment header or foreign content
// restarts that segment empty, and a damaged tail is truncated at the
// last intact record with later segments discarded.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalWith(path, JournalOptions{})
}

// OpenJournalWith is OpenJournal with explicit options.
func OpenJournalWith(path string, opts JournalOptions) (*Journal, error) {
	rb := opts.RotateBytes
	if rb <= 0 {
		rb = DefaultJournalRotateBytes
	}
	if err := migrateLegacyJournal(path); err != nil {
		return nil, fmt.Errorf("journal: migrate: %w", err)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: path, rotateBytes: rb}
	if err := j.recover(); err != nil {
		if j.f != nil {
			j.f.Close()
			j.f = nil
		}
		return nil, err
	}
	return j, nil
}

// migrateLegacyJournal converts a pre-segmentation single-file journal
// at path into a directory whose first segment is that file, byte for
// byte (the file format and the segment format are identical). The
// two-rename dance is crash-safe: the file moves into a staging
// directory, then the staging directory renames over the now-vacant
// path. A crash between the renames leaves the staging directory, which
// the next open finishes renaming.
func migrateLegacyJournal(path string) error {
	staging := path + ".migrate"
	fi, err := os.Stat(path)
	switch {
	case err == nil && fi.Mode().IsRegular():
		if err := os.RemoveAll(staging); err != nil {
			return err
		}
		if err := os.MkdirAll(staging, 0o755); err != nil {
			return err
		}
		if err := os.Rename(path, filepath.Join(staging, segmentName(1, 1))); err != nil {
			return err
		}
		return os.Rename(staging, path)
	case os.IsNotExist(err):
		if sfi, serr := os.Stat(staging); serr == nil && sfi.IsDir() {
			if _, ferr := os.Stat(filepath.Join(staging, segmentName(1, 1))); ferr == nil {
				return os.Rename(staging, path)
			}
			return os.RemoveAll(staging) // crashed before the file moved in
		}
		return nil
	case err != nil:
		return err
	}
	return nil
}

type segmentRef struct {
	epoch, seq int
	path       string
	size       int64
}

// recover chooses the committed epoch, replays its segments in order,
// repairs damage, and leaves the last surviving segment open for
// appends.
func (j *Journal) recover() error {
	idx, idxOK := readJournalIndex(j.dir)

	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var segs []segmentRef
	for _, e := range entries {
		epoch, seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		segs = append(segs, segmentRef{epoch, seq, filepath.Join(j.dir, e.Name()), info.Size()})
	}

	// The committed epoch: the index's when it is readable, else the
	// highest present (an index lost to corruption must not resurrect a
	// compacted-away epoch whose files were already deleted).
	epoch := 1
	if idxOK {
		epoch = idx.Epoch
	} else {
		for _, s := range segs {
			if s.epoch > epoch {
				epoch = s.epoch
			}
		}
	}

	// Segments from other epochs are leftovers of a crashed compaction:
	// either the not-yet-deleted old epoch (commit happened) or the
	// never-committed new one. Both roll back by deletion.
	var mine []segmentRef
	for _, s := range segs {
		if s.epoch != epoch {
			os.Remove(s.path)
			continue
		}
		mine = append(mine, s)
	}
	sort.Slice(mine, func(a, b int) bool { return mine[a].seq < mine[b].seq })

	// Sealed sizes recorded in the index let damage inside a sealed
	// segment be attributed even when the CRC scan below would find it
	// anyway; build the lookup before replaying.
	sealedBytes := map[int]int64{}
	if idxOK {
		for _, s := range idx.Sealed {
			sealedBytes[s.Seq] = s.Bytes
		}
	}

	damaged := false
	var kept []segmentRef
	var keptRecords []int
	for i, s := range mine {
		if damaged || (i > 0 && s.seq != mine[i-1].seq+1) {
			// Past the first damage (or a sequence gap) nothing is
			// trustworthy: the segment is discarded whole.
			j.repaired += s.size
			os.Remove(s.path)
			damaged = true
			continue
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("journal: read %s: %w", s.path, err)
		}
		recs, good, headerOK := scanSegment(data)
		if !headerOK && len(data) > 0 {
			if len(kept) == 0 {
				// The epoch's first segment has an unreadable header:
				// nothing framed can be trusted, restart the journal
				// empty (mirrors the single-file behavior).
				j.repaired += int64(len(data))
				if err := rewriteEmptySegment(s.path); err != nil {
					return err
				}
				s.size = int64(segmentHeaderSize)
				kept = append(kept, s)
				keptRecords = append(keptRecords, 0)
				damaged = true
				continue
			}
			j.repaired += s.size
			os.Remove(s.path)
			damaged = true
			continue
		}
		if len(data) == 0 {
			// A segment created but not yet headered (crash inside
			// rotation): make it a valid empty segment.
			if err := rewriteEmptySegment(s.path); err != nil {
				return err
			}
			good = int64(segmentHeaderSize)
			s.size = good
		}
		j.records = append(j.records, recs...)
		if good < int64(len(data)) {
			if want, ok := sealedBytes[s.seq]; ok && good < want {
				// A sealed segment shrank below its recorded size: real
				// damage, not a torn in-flight append.
				damaged = true
			}
			j.repaired += int64(len(data)) - good
			if err := os.Truncate(s.path, good); err != nil {
				return fmt.Errorf("journal: truncate damaged tail: %w", err)
			}
			s.size = good
			damaged = true
		}
		kept = append(kept, s)
		keptRecords = append(keptRecords, len(recs))
	}

	if len(kept) == 0 {
		path := filepath.Join(j.dir, segmentName(epoch, 1))
		if err := rewriteEmptySegment(path); err != nil {
			return err
		}
		kept = append(kept, segmentRef{epoch, 1, path, int64(segmentHeaderSize)})
		keptRecords = append(keptRecords, 0)
	}

	active := kept[len(kept)-1]
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Seek(active.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.epoch = epoch
	j.seq = active.seq
	j.size = active.size
	j.nrec = keptRecords[len(kept)-1]
	j.sealed = j.sealed[:0]
	for i, s := range kept[:len(kept)-1] {
		j.sealed = append(j.sealed, sealedSegment{Seq: s.seq, Bytes: s.size, Records: keptRecords[i]})
	}
	if err := j.writeIndexLocked(); err != nil {
		return err
	}
	return syncDir(j.dir)
}

// scanSegment frames records out of a segment image. It returns the
// decoded records, the offset just past the last intact record, and
// whether the header was valid (an empty image reports headerOK=false
// with good 0; callers decide whether that is fresh or damaged).
func scanSegment(data []byte) (recs []Record, good int64, headerOK bool) {
	if len(data) < segmentHeaderSize ||
		string(data[:len(journalMagic)]) != string(journalMagic[:]) ||
		binary.LittleEndian.Uint32(data[len(journalMagic):segmentHeaderSize]) != journalVersion {
		return nil, 0, false
	}
	off := segmentHeaderSize
	goodOff := off
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			break // torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen == 0 || plen > maxRecordBytes || int(plen) > len(rest)-frameHeaderSize {
			break // absurd or truncated payload
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: nothing after it is trustworthy
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // framed but undecodable: same treatment
		}
		off += frameHeaderSize + int(plen)
		goodOff = off
		recs = append(recs, rec)
	}
	return recs, int64(goodOff), true
}

// rewriteEmptySegment (re)creates path as a valid empty segment.
func rewriteEmptySegment(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = writeSegmentHeader(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeSegmentHeader(f *os.File) error {
	var hdr [segmentHeaderSize]byte
	copy(hdr[:], journalMagic[:])
	binary.LittleEndian.PutUint32(hdr[len(journalMagic):], journalVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	return nil
}

func readJournalIndex(dir string) (journalIndex, bool) {
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		return journalIndex{}, false
	}
	var idx journalIndex
	if json.Unmarshal(data, &idx) != nil || idx.Version != 1 || idx.Epoch < 1 {
		return journalIndex{}, false
	}
	return idx, true
}

// writeIndexLocked atomically replaces the recovery index with the
// current epoch and sealed manifest. The rename is the commit point
// compaction relies on.
func (j *Journal) writeIndexLocked() error {
	idx := journalIndex{Version: 1, Epoch: j.epoch, Sealed: j.sealed}
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("journal: index: %w", err)
	}
	tmp, err := os.CreateTemp(j.dir, ".tmp-index-*")
	if err != nil {
		return fmt.Errorf("journal: index: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(j.dir, indexName))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: index: %w", werr)
	}
	return nil
}

// syncDir makes directory-entry changes (creates, renames, removes)
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Records returns the records replayed when the journal was opened
// (records appended since open are not included — the opener already
// knows them).
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Repaired reports how many bytes of damage the open discarded
// (0 = the journal was intact).
func (j *Journal) Repaired() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.repaired
}

// Path returns the journal's directory path.
func (j *Journal) Path() string { return j.dir }

// Segments reports how many segments the journal currently spans
// (sealed plus the active one).
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sealed) + 1
}

// Epoch reports the committed compaction epoch.
func (j *Journal) Epoch() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

var errInjectedSync = errors.New("fsync failed")

// Append durably appends one record to the active segment: frame
// (length + CRC-32), payload, then fsync, so the record survives a
// crash the moment Append returns. A failed write heals in place — the
// segment is truncated back to its last good byte, so one failed append
// never poisons the next. When the active segment passes the rotation
// threshold it is sealed and a fresh segment takes over (best-effort:
// a failed rotation leaves the current segment active and retries on
// the next append).
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if err := faultinject.ErrAt(faultinject.PointJournalWriteENOSPC, syscall.ENOSPC); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if faultinject.Should(faultinject.PointJournalAppendTorn) {
		// A torn write: part of the frame lands, then the device errors.
		j.f.Write(frame[:len(frame)/2])
		j.healTailLocked()
		return fmt.Errorf("journal: append: %w",
			&faultinject.InjectedError{Point: faultinject.PointJournalAppendTorn, Err: errors.New("torn write")})
	}
	if faultinject.Should(faultinject.PointJournalAppendCrashTorn) {
		// Power loss mid-frame: persist a torn prefix, then die. Recovery
		// must truncate it away. (When CrashFn is overridden in-process,
		// heal and fail the append instead of wedging the journal.)
		j.f.Write(frame[:len(frame)-3])
		j.f.Sync()
		faultinject.CrashFn(faultinject.PointJournalAppendCrashTorn)
		j.healTailLocked()
		return fmt.Errorf("journal: append: %w",
			&faultinject.InjectedError{Point: faultinject.PointJournalAppendCrashTorn, Err: errors.New("crash mid-frame")})
	}
	if _, err := j.f.Write(frame); err != nil {
		j.healTailLocked()
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := faultinject.ErrAt(faultinject.PointJournalSyncErr, errInjectedSync); err != nil {
		j.healTailLocked()
		return fmt.Errorf("journal: sync: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.healTailLocked()
		return fmt.Errorf("journal: sync: %w", err)
	}
	faultinject.Crash(faultinject.PointJournalAppendCrashSynced)
	j.size += int64(len(frame))
	j.nrec++
	if j.size >= j.rotateBytes {
		// Best-effort: the record above is already durable either way,
		// and an over-threshold segment rotates on the next append.
		j.rotateLocked()
	}
	return nil
}

// healTailLocked truncates the active segment back to its last good
// byte after a failed or torn append, so the in-process journal stays
// consistent without a reopen.
func (j *Journal) healTailLocked() {
	if j.f == nil {
		return
	}
	j.f.Truncate(j.size)
	j.f.Seek(j.size, 0)
}

// rotateLocked seals the active segment and opens its successor.
// Ordering is crash-safe at every step: seal (sync) the old segment,
// create the new one, then record the rotation in the index — recovery
// re-derives any state a crash kept the index from recording.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: rotate: seal: %w", err)
	}
	faultinject.Crash(faultinject.PointJournalRotateCrashSeal)
	nextSeq := j.seq + 1
	path := filepath.Join(j.dir, segmentName(j.epoch, nextSeq))
	nf, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	err = writeSegmentHeader(nf)
	if err == nil {
		err = nf.Sync()
	}
	if err == nil {
		err = syncDir(j.dir)
	}
	if err != nil {
		nf.Close()
		os.Remove(path)
		return fmt.Errorf("journal: rotate: %w", err)
	}
	faultinject.Crash(faultinject.PointJournalRotateCrashOpen)
	j.sealed = append(j.sealed, sealedSegment{Seq: j.seq, Bytes: j.size, Records: j.nrec})
	j.f.Close()
	j.f = nf
	j.seq = nextSeq
	j.size = int64(segmentHeaderSize)
	j.nrec = 0
	// The index entry is advisory (recovery rescans); losing it to a
	// crash or write failure costs nothing.
	j.writeIndexLocked()
	return nil
}

// Compact atomically rewrites the journal to contain exactly recs (in
// order). The server calls it after replay with the records that
// survived retention, so pruned batches stop being resurrected and the
// journal does not grow across restarts without bound. The rewrite is
// an epoch bump: the survivors are written as the next epoch's first
// segment, the index commit flips the epoch atomically, and only then
// are the old epoch's segments deleted — a crash at any instant leaves
// one complete epoch.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	newEpoch := j.epoch + 1
	newPath := filepath.Join(j.dir, segmentName(newEpoch, 1))

	tmp, err := os.CreateTemp(j.dir, ".tmp-seg-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	werr := func() error {
		if err := writeSegmentHeader(tmp); err != nil {
			return err
		}
		for _, rec := range recs {
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
			binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
			if _, err := tmp.Write(append(frame, payload...)); err != nil {
				return err
			}
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), newPath)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", werr)
	}
	faultinject.Crash(faultinject.PointJournalCompactCrashSeg)

	// The commit point: recovery trusts the index's epoch, so after this
	// rename the new epoch is the journal.
	oldEpoch, oldSealed := j.epoch, j.sealed
	j.epoch = newEpoch
	j.sealed = nil
	if err := j.writeIndexLocked(); err != nil {
		j.epoch, j.sealed = oldEpoch, oldSealed
		os.Remove(newPath)
		return err
	}
	faultinject.Crash(faultinject.PointJournalCompactCrashCommit)

	// Open the new active segment before deleting anything, so a failure
	// here cannot leave the journal without a live handle.
	f, err := os.OpenFile(newPath, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: reopen: %w", err)
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.seq = 1
	j.size = end
	j.nrec = len(recs)
	j.records = append([]Record(nil), recs...)

	// Old-epoch segments are now garbage; recovery deletes any a crash
	// leaves behind.
	entries, err := os.ReadDir(j.dir)
	if err == nil {
		for _, e := range entries {
			if epoch, _, ok := parseSegmentName(e.Name()); ok && epoch != newEpoch {
				os.Remove(filepath.Join(j.dir, e.Name()))
			}
		}
	}
	syncDir(j.dir)
	return nil
}

// Close releases the file handle. Records are already durable (Append
// syncs), so Close is a teardown, not a flush point.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
