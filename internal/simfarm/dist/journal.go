package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/simfarm"
)

// RecordType labels a journal record.
type RecordType string

// The batch lifecycle: every batch appends Submitted, then Started when
// dispatch begins, then exactly one of Finished or Failed. Replay folds
// records by batch ID, so duplicates and interleavings are harmless.
const (
	RecordSubmitted RecordType = "submitted"
	RecordStarted   RecordType = "started"
	RecordFinished  RecordType = "finished"
	RecordFailed    RecordType = "failed"
)

// Record is one journal entry. Submitted carries the batch identity and
// shape; Finished carries the full result payload — exactly what
// GET /v1/jobs/{id} serves — so a replayed record answers queries
// bit-identically to the pre-restart server. Failed carries the batch
// error (a batch found Submitted-but-unfinished at replay is failed with
// an "interrupted" error, since its in-memory execution died with the
// old process).
type Record struct {
	Type   RecordType `json:"type"`
	ID     string     `json:"id"`
	Tenant string     `json:"tenant,omitempty"`
	Kind   string     `json:"kind,omitempty"`
	Jobs   int        `json:"jobs,omitempty"`
	// Time is the event time: creation for Submitted/Started, completion
	// for Finished/Failed.
	Time  time.Time `json:"time"`
	Error string    `json:"error,omitempty"`

	Results []simfarm.Result    `json:"results,omitempty"`
	Stats   *simfarm.BatchStats `json:"stats,omitempty"`

	SoCResults []simfarm.SoCResult    `json:"soc_results,omitempty"`
	SoCStats   *simfarm.SoCBatchStats `json:"soc_stats,omitempty"`
}

// journalMagic opens the file; the u32 version after it is negotiated
// explicitly, like the store's object format.
var journalMagic = [8]byte{'C', 'A', 'B', 'T', 'J', 'R', 'N', '\n'}

const journalVersion = 1

// frameHeaderSize is the per-record frame: payload length (u32 LE) then
// CRC-32 (IEEE) of the payload.
const frameHeaderSize = 8

// maxRecordBytes bounds a single record (a finished sweep of thousands
// of jobs is a few MB of JSON; 256 MB is far beyond any legitimate
// record and keeps a garbage length field from allocating the world).
const maxRecordBytes = 256 << 20

// Journal is the durable batch journal: an append-only file of
// checksum-framed JSON records. Opening replays it, repairing any
// damaged tail by truncating to the last intact record — the crash
// contract is that a torn append costs exactly the record being written,
// never an earlier one. Append syncs the file, so a record returned to a
// client as durable survives power loss. A Journal is safe for
// concurrent use.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	records []Record
	// repaired reports how many bytes of damaged tail open discarded.
	repaired int64
}

// OpenJournal opens (creating if needed) the journal at path and replays
// it. Every failure mode of the file body recovers: a missing file is
// created, an unreadable header or foreign content restarts the journal
// empty (the old bytes are discarded — they cannot be trusted framed),
// and a damaged tail is truncated at the last intact record.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the file, fills j.records, and truncates damage.
func (j *Journal) replay() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("journal: read: %w", err)
	}
	if len(data) == 0 {
		return j.writeHeader()
	}
	if len(data) < len(journalMagic)+4 ||
		string(data[:8]) != string(journalMagic[:]) ||
		binary.LittleEndian.Uint32(data[8:12]) != journalVersion {
		// Not a journal we can frame records out of: restart it. The
		// store-dir layout makes collisions with foreign files unlikely;
		// a truly corrupt header means nothing after it is trustworthy.
		j.repaired = int64(len(data))
		if err := j.f.Truncate(0); err != nil {
			return fmt.Errorf("journal: truncate: %w", err)
		}
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		return j.writeHeader()
	}

	off := len(journalMagic) + 4
	good := off // end of the last intact record
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			break // torn frame header
		}
		plen := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen == 0 || plen > maxRecordBytes || int(plen) > len(rest)-frameHeaderSize {
			break // absurd or truncated payload
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt record: nothing after it is trustworthy
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // framed but undecodable: same treatment
		}
		off += frameHeaderSize + int(plen)
		good = off
		j.records = append(j.records, rec)
	}
	if good < len(data) {
		j.repaired = int64(len(data) - good)
		if err := j.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("journal: truncate damaged tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(good), io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

func (j *Journal) writeHeader() error {
	var hdr [12]byte
	copy(hdr[:8], journalMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], journalVersion)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	return nil
}

// Records returns the records replayed when the journal was opened
// (records appended since open are not included — the opener already
// knows them).
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.records...)
}

// Repaired reports how many bytes of damaged tail the open discarded
// (0 = the journal was intact).
func (j *Journal) Repaired() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.repaired
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably appends one record: frame (length + CRC-32), payload,
// then fsync, so the record survives a crash the moment Append returns.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode: %w", err)
	}
	frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Compact atomically rewrites the journal to contain exactly recs (in
// order). The server calls it after replay with the records that
// survived retention, so pruned batches stop being resurrected and the
// file does not grow across restarts without bound. The rewrite is a
// temp-file-plus-rename, so a crash mid-compaction leaves the previous
// journal intact.
func (j *Journal) Compact(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("journal: closed")
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".tmp-journal-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	werr := func() error {
		var hdr [12]byte
		copy(hdr[:8], journalMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:], journalVersion)
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		for _, rec := range recs {
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			frame := make([]byte, frameHeaderSize, frameHeaderSize+len(payload))
			binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
			if _, err := tmp.Write(append(frame, payload...)); err != nil {
				return err
			}
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), j.path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", werr)
	}
	// Swap the handle to the new file, positioned at its end.
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: reopen: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.records = append([]Record(nil), recs...)
	return nil
}

// Close releases the file handle. Records are already durable (Append
// syncs), so Close is a teardown, not a flush point.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
