// Package dist is the distribution layer of the simulation farm: the
// pieces that turn cabt-serve from one process with in-memory job
// records into a control plane with replaceable workers.
//
// It has three independent parts, composed by internal/simfarm/server:
//
//   - Journal: a durable, append-only, checksum-framed record of every
//     batch (submitted/started/finished/failed), replayed on startup so
//     the server survives a restart without losing finished job results.
//     Any damaged tail — a torn write, a flipped bit — is truncated at
//     the last intact record, mirroring the translation store's
//     corruption tolerance.
//
//   - Queue: a leased work queue. Worker processes (cmd/cabt-worker)
//     register, lease one task at a time, heartbeat while executing and
//     complete with the result. A lease that is not heartbeat within its
//     TTL expires and the task is requeued with a retry budget, so a
//     kill -9'd worker's tasks are re-run elsewhere and the batch still
//     completes. Tasks carry fully resolved simfarm.Job / simfarm.SoCJob
//     specs (everything is exported and JSON-serializable), so workers
//     never resolve names against registries that could drift.
//
//   - Store protocol: StoreServer serves the content-addressed
//     translation store over HTTP (GET/PUT /v1/store/{key}) and
//     RemoteStore is the worker-side client, a simfarm.ProgramStore
//     whose levels are local memory (the TranslationCache above it), a
//     local disk store, and the server's store over HTTP. Objects are
//     immutable and addressed by their namespace-derived content key, so
//     ETag is simply that key and If-None-Match revalidation short-
//     circuits redundant transfers with 304.
//
// Everything is deterministic where it matters: a task executed on any
// worker produces results bit-identical to the single-process farm
// (repro.Measure stays the oracle), which is also what makes re-running
// a lost worker's tasks safe.
package dist
