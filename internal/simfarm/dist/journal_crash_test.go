package dist

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/faultinject"
)

// The crash-point suite kills a real subprocess at every injected crash
// point in the journal's append, rotation and compaction paths, then
// replays the survivor in this process. The contract under test is the
// journal's whole durability story:
//
//   - an append acknowledged before the crash is always replayed
//     (unless a committed compaction pruned it by design),
//   - replay converges: opening the recovered journal a second time
//     finds zero damage and identical records,
//   - the recovered journal accepts appends.
//
// The child re-executes this test binary with CABT_JOURNAL_CRASH_SCENARIO
// set; faultinject.CrashFn (the default os.Exit) does the killing, so
// the death is as abrupt as the production code path allows.

const (
	envCrashScenario = "CABT_JOURNAL_CRASH_SCENARIO"
	envCrashDir      = "CABT_JOURNAL_CRASH_DIR"
	envCrashFaults   = "CABT_JOURNAL_CRASH_FAULTS"
)

// ackPath tracks how many appends the child saw return successfully —
// the records whose durability the parent asserts.
func ackPath(dir string) string { return filepath.Join(filepath.Dir(dir), "acked") }

func TestJournalCrashScenarioChild(t *testing.T) {
	scenario := os.Getenv(envCrashScenario)
	if scenario == "" {
		t.Skip("subprocess scenario runner; driven by TestJournalCrashPoints")
	}
	dir := os.Getenv(envCrashDir)
	plan, err := faultinject.Parse(os.Getenv(envCrashFaults))
	if err != nil {
		t.Fatalf("child: parse faults: %v", err)
	}
	faultinject.Activate(plan)

	j, err := OpenJournalWith(dir, JournalOptions{RotateBytes: 150})
	if err != nil {
		t.Fatalf("child: open: %v", err)
	}
	ack := func(n int) {
		if err := os.WriteFile(ackPath(dir), []byte(strconv.Itoa(n)), 0o644); err != nil {
			t.Fatalf("child: ack: %v", err)
		}
	}
	switch scenario {
	case "appends":
		for i := range 6 {
			if err := j.Append(rec(fmt.Sprintf("a-%d", i), RecordSubmitted)); err != nil {
				t.Fatalf("child: append %d: %v", i, err)
			}
			ack(i + 1)
		}
	case "compact":
		for i := range 4 {
			if err := j.Append(rec(fmt.Sprintf("a-%d", i), RecordSubmitted)); err != nil {
				t.Fatalf("child: append %d: %v", i, err)
			}
			ack(i + 1)
		}
		keep := []Record{rec("c-0", RecordSubmitted), rec("c-1", RecordSubmitted)}
		if err := j.Compact(keep); err != nil {
			t.Fatalf("child: compact: %v", err)
		}
	default:
		t.Fatalf("child: unknown scenario %q", scenario)
	}
	// Reaching here means the armed crash point never fired; the parent
	// treats a clean exit as a test failure.
}

func TestJournalCrashPoints(t *testing.T) {
	appendIDs := func(n int) []string {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("a-%d", i)
		}
		return ids
	}
	cases := []struct {
		point    string
		scenario string
		// check validates the replayed record IDs; acked is the child's
		// last acknowledged append count.
		check func(t *testing.T, j *Journal, ids []string, acked int)
	}{
		{faultinject.PointJournalAppendCrashTorn + ":nth=4", "appends",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				// Died mid-frame on the 4th append: exactly the 3 acked
				// records survive and the torn tail is reported repaired.
				if want := appendIDs(3); !reflect.DeepEqual(ids, want) {
					t.Fatalf("replayed %v, want %v", ids, want)
				}
				if j.Repaired() == 0 {
					t.Error("torn tail left no repair trace")
				}
			}},
		{faultinject.PointJournalAppendCrashSynced + ":nth=4", "appends",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				// Died after the 4th append's fsync: the unacknowledged
				// record is durable anyway.
				if want := appendIDs(4); !reflect.DeepEqual(ids, want) {
					t.Fatalf("replayed %v, want %v", ids, want)
				}
			}},
		{faultinject.PointJournalRotateCrashSeal + ":nth=1", "appends",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				checkPrefix(t, ids, appendIDs(6), acked)
			}},
		{faultinject.PointJournalRotateCrashOpen + ":nth=1", "appends",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				checkPrefix(t, ids, appendIDs(6), acked)
			}},
		{faultinject.PointJournalCompactCrashSeg + ":nth=1", "compact",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				// New epoch written but not committed: rollback to the
				// full pre-compaction journal.
				if want := appendIDs(4); !reflect.DeepEqual(ids, want) {
					t.Fatalf("replayed %v, want pre-compaction %v", ids, want)
				}
				if j.Epoch() != 1 {
					t.Fatalf("epoch %d, want rollback to 1", j.Epoch())
				}
			}},
		{faultinject.PointJournalCompactCrashCommit + ":nth=1", "compact",
			func(t *testing.T, j *Journal, ids []string, acked int) {
				// Index committed: the compacted epoch is the journal,
				// even though Compact never returned to the caller.
				if want := []string{"c-0", "c-1"}; !reflect.DeepEqual(ids, want) {
					t.Fatalf("replayed %v, want compacted %v", ids, want)
				}
				if j.Epoch() != 2 {
					t.Fatalf("epoch %d, want committed 2", j.Epoch())
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			base := t.TempDir()
			dir := filepath.Join(base, "journal")

			cmd := exec.Command(os.Args[0], "-test.run", "TestJournalCrashScenarioChild$")
			cmd.Env = append(os.Environ(),
				envCrashScenario+"="+tc.scenario,
				envCrashDir+"="+dir,
				envCrashFaults+"=seed=1;"+tc.point,
			)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != faultinject.CrashExitCode {
				t.Fatalf("child exit = %v, want crash exit %d\n%s", err, faultinject.CrashExitCode, out)
			}

			acked := 0
			if data, err := os.ReadFile(ackPath(dir)); err == nil {
				acked, _ = strconv.Atoi(string(data))
			}

			j, err := OpenJournal(dir)
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer j.Close()
			first := j.Records()
			tc.check(t, j, recordIDs(first), acked)

			// The recovered journal must accept appends...
			if err := j.Append(rec("post-crash", RecordSubmitted)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			j.Close()

			// ...and a second open must converge: no residual damage,
			// identical records plus the new append.
			j2, err := OpenJournal(dir)
			if err != nil {
				t.Fatalf("second open: %v", err)
			}
			defer j2.Close()
			if j2.Repaired() != 0 {
				t.Fatalf("recovery did not converge: %d bytes repaired on reopen", j2.Repaired())
			}
			want := append(recordIDs(first), "post-crash")
			if got := recordIDs(j2.Records()); !reflect.DeepEqual(got, want) {
				t.Fatalf("reopen replayed %v, want %v", got, want)
			}
		})
	}
}

func recordIDs(recs []Record) []string {
	ids := make([]string, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	return ids
}

// checkPrefix asserts ids is a prefix of want that covers at least the
// acked appends — the invariant for crashes inside rotation, where the
// in-flight (unacknowledged) append may or may not have become durable.
func checkPrefix(t *testing.T, ids, want []string, acked int) {
	t.Helper()
	if len(ids) > len(want) || len(ids) < acked {
		t.Fatalf("replayed %d records (%v); acked %d of %v", len(ids), ids, acked, want)
	}
	if !reflect.DeepEqual(ids, want[:len(ids)]) {
		t.Fatalf("replayed %v is not a prefix of %v", ids, want)
	}
}
