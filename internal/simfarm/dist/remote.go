package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/simfarm/store"
)

// Remote-tier cache telemetry: the network leg of a worker's
// translation-cache lookup (the memory and disk tiers are counted by
// internal/simfarm; see its obs.go for the tier taxonomy).
var (
	obsRemoteHit = obs.Default.Counter("cabt_cache_requests_total",
		"translation-cache requests by tier and outcome", "tier", "remote", "outcome", "hit")
	obsRemoteMiss = obs.Default.Counter("cabt_cache_requests_total",
		"translation-cache requests by tier and outcome", "tier", "remote", "outcome", "miss")
	obsRemoteHitLat = obs.Default.Histogram("cabt_cache_lookup_seconds",
		"translation-cache lookup latency by tier and outcome", nil,
		"tier", "remote", "outcome", "hit")
	obsRemoteMissLat = obs.Default.Histogram("cabt_cache_lookup_seconds",
		"translation-cache lookup latency by tier and outcome", nil,
		"tier", "remote", "outcome", "miss")
	obsRemotePutsSkipped = obs.Default.Counter("cabt_remote_store_puts_skipped_total",
		"uploads avoided by If-None-Match revalidation (304s observed)")
	obsRemoteDegraded = obs.Default.Counter("cabt_remote_store_degraded_total",
		"store operations short-circuited by the remote-store breaker")
)

// remoteOpTimeout bounds each store-protocol request; a hung server
// costs one deadline per operation, and the breaker below stops paying
// even that once failures persist.
const remoteOpTimeout = 10 * time.Second

// RemoteStore is the worker-side client of the store protocol: a
// simfarm.ProgramStore whose backing levels are an optional local disk
// store and the server's store over HTTP. Together with the in-memory
// TranslationCache above it, a worker has three cache levels — memory,
// local disk, server — each consulted in order and back-filled on a
// hit from below. Keys are namespace-derived here (the server never
// sees a logical key), and objects move as their exact on-disk framed
// bytes, verified end to end on every hop.
type RemoteStore struct {
	base    string // server base URL, no trailing slash
	ns      string // tenant namespace for key derivation
	disk    *store.Store
	client  *http.Client
	breaker *Breaker

	loads, localHits, remoteHits, misses atomic.Int64
	puts, putsSkipped, degraded          atomic.Int64
}

// NewRemoteStore builds a client for the store protocol at baseURL
// (e.g. "http://127.0.0.1:8080"). ns scopes keys to a tenant ("" is
// the shared default namespace, matching the server's own farms). disk
// is an optional local store used as a second cache level; client nil
// means http.DefaultClient.
func NewRemoteStore(baseURL, ns string, disk *store.Store, client *http.Client) *RemoteStore {
	client = faultinject.WrapClient(client)
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RemoteStore{
		base: baseURL, ns: ns, disk: disk, client: client,
		// The store is a cache tier, so degrading is always safe: while
		// the breaker is open every Load is a remote miss (the worker
		// re-translates locally) and every Store skips the upload.
		breaker: NewBreaker("remote-store", BreakerConfig{}),
	}
}

// Breaker exposes the remote-store circuit breaker (for telemetry and
// tests).
func (rs *RemoteStore) Breaker() *Breaker { return rs.breaker }

// degrade counts a breaker short-circuit.
func (rs *RemoteStore) degrade() {
	rs.degraded.Add(1)
	obsRemoteDegraded.Inc()
}

// RemoteStoreStats is the client-side traffic snapshot.
type RemoteStoreStats struct {
	Loads       int64 `json:"loads"`
	LocalHits   int64 `json:"local_hits"`
	RemoteHits  int64 `json:"remote_hits"`
	Misses      int64 `json:"misses"`
	Puts        int64 `json:"puts"`
	PutsSkipped int64 `json:"puts_skipped"` // avoided by If-None-Match revalidation
	Degraded    int64 `json:"degraded"`     // short-circuited by the breaker
}

// Stats snapshots the traffic counters.
func (rs *RemoteStore) Stats() RemoteStoreStats {
	return RemoteStoreStats{
		Loads:       rs.loads.Load(),
		LocalHits:   rs.localHits.Load(),
		RemoteHits:  rs.remoteHits.Load(),
		Misses:      rs.misses.Load(),
		Puts:        rs.puts.Load(),
		PutsSkipped: rs.putsSkipped.Load(),
		Degraded:    rs.degraded.Load(),
	}
}

func (rs *RemoteStore) url(dk [sha256.Size]byte) string {
	return rs.base + "/v1/store/" + hex.EncodeToString(dk[:])
}

// Load implements simfarm.ProgramStore: local disk first, then the
// server. A remote hit is verified (the transfer could corrupt) and
// back-filled to the local disk level so the next cold farm on this
// machine never goes over the network for it.
func (rs *RemoteStore) Load(key [sha256.Size]byte) (*core.Program, bool, error) {
	rs.loads.Add(1)
	dk := store.DeriveKey(rs.ns, key)
	if rs.disk != nil {
		if data, ok, err := rs.disk.LoadRaw(dk); err == nil && ok {
			if prog, err := store.DecodeObject(dk, data); err == nil {
				rs.localHits.Add(1)
				return prog, true, nil
			}
		}
	}

	// Network tier, behind the breaker: while it is open a load is just
	// a miss — the farm re-translates locally, correctness unaffected.
	if !rs.breaker.Allow() {
		rs.degrade()
		rs.misses.Add(1)
		obsRemoteMiss.Inc()
		return nil, false, nil
	}
	netStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), remoteOpTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.url(dk), nil)
	if err != nil {
		rs.breaker.Success() // our bug, not the network's
		return nil, false, fmt.Errorf("remote store: %w", err)
	}
	resp, err := rs.client.Do(req)
	if err != nil {
		rs.breaker.Failure()
		return nil, false, fmt.Errorf("remote store: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 5 {
		rs.breaker.Failure()
	} else {
		rs.breaker.Success()
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		rs.misses.Add(1)
		obsRemoteMiss.Inc()
		obsRemoteMissLat.Observe(time.Since(netStart).Seconds())
		return nil, false, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, false, fmt.Errorf("remote store: GET %x: %s: %s", dk[:8], resp.Status, bytes.TrimSpace(body))
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxObjectBytes+1))
	if err != nil {
		return nil, false, fmt.Errorf("remote store: read %x: %w", dk[:8], err)
	}
	prog, err := store.DecodeObject(dk, data)
	if err != nil {
		// A corrupt transfer (or server) is a miss, like a corrupt local
		// object: the worker re-translates and repairs it with a PUT.
		rs.misses.Add(1)
		obsRemoteMiss.Inc()
		obsRemoteMissLat.Observe(time.Since(netStart).Seconds())
		return nil, false, nil
	}
	rs.remoteHits.Add(1)
	obsRemoteHit.Inc()
	obsRemoteHitLat.Observe(time.Since(netStart).Seconds())
	if rs.disk != nil {
		rs.disk.StoreRaw(dk, data) // best effort back-fill
	}
	return prog, true, nil
}

// Store implements simfarm.ProgramStore: encode once, write the local
// disk level, then upload — unless an If-None-Match revalidation says
// the server already holds the object (it is immutable, so any match
// is definitive and the upload is skipped).
func (rs *RemoteStore) Store(key [sha256.Size]byte, prog *core.Program) error {
	dk := store.DeriveKey(rs.ns, key)
	data, err := store.EncodeObject(dk, prog)
	if err != nil {
		return err
	}
	if rs.disk != nil {
		rs.disk.StoreRaw(dk, data) // best effort
	}

	// Uploads degrade cleanly too: an open breaker means the object
	// stays in the local tiers until the store heals.
	if !rs.breaker.Allow() {
		rs.degrade()
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), remoteOpTimeout)
	defer cancel()

	// Revalidate before uploading: a conditional GET with our ETag
	// costs a 304 with no body when the server already has the object.
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rs.url(dk), nil)
	if err != nil {
		rs.breaker.Success()
		return fmt.Errorf("remote store: %w", err)
	}
	req.Header.Set("If-None-Match", etag(dk))
	if resp, err := rs.client.Do(req); err == nil {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxObjectBytes))
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotModified || resp.StatusCode == http.StatusOK {
			rs.breaker.Success()
			rs.putsSkipped.Add(1)
			obsRemotePutsSkipped.Inc()
			return nil
		}
	}

	put, err := http.NewRequestWithContext(ctx, http.MethodPut, rs.url(dk), bytes.NewReader(data))
	if err != nil {
		rs.breaker.Success()
		return fmt.Errorf("remote store: %w", err)
	}
	put.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rs.client.Do(put)
	if err != nil {
		rs.breaker.Failure()
		return fmt.Errorf("remote store: PUT %x: %w", dk[:8], err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		if resp.StatusCode/100 == 5 {
			rs.breaker.Failure()
		} else {
			rs.breaker.Success()
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("remote store: PUT %x: %s: %s", dk[:8], resp.Status, bytes.TrimSpace(body))
	}
	rs.breaker.Success()
	rs.puts.Add(1)
	return nil
}
