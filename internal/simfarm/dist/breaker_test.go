package dist

import (
	"context"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(100*time.Millisecond, 800*time.Millisecond)
	var prevCap time.Duration
	for i := range 6 {
		d := b.Next()
		wantCap := 100 * time.Millisecond << i
		if wantCap > 800*time.Millisecond {
			wantCap = 800 * time.Millisecond
		}
		if d <= 0 || d > wantCap {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", i, d, wantCap)
		}
		if wantCap < prevCap {
			t.Fatalf("cap shrank: %v after %v", wantCap, prevCap)
		}
		prevCap = wantCap
	}
	b.Reset()
	if d := b.Next(); d > 100*time.Millisecond {
		t.Fatalf("after Reset, delay %v exceeds base", d)
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	b := NewBackoff(time.Hour, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if b.Sleep(ctx) {
		t.Fatal("Sleep returned true on a cancelled context")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep blocked past cancellation")
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := NewBreaker("test", BreakerConfig{Threshold: 3, Cooldown: 5 * time.Second, Clock: clock})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("fresh breaker must be closed")
	}
	// Two failures: still closed. Third: open.
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker tripped before threshold")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after %d failures, want open", b.State(), 3)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}
	if b.Refusals() == 0 {
		t.Fatal("refusal not counted")
	}

	// Cooldown elapses: exactly one probe is allowed.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// Probe fails: open again for a full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}

	// Next probe succeeds: closed, and the failure streak is forgotten.
	now = now.Add(6 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", b.State())
	}
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("streak survived the successful probe")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker("streak", BreakerConfig{Threshold: 3})
	for range 10 {
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes must keep the breaker closed")
	}
	if b.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", b.Trips())
	}
}
