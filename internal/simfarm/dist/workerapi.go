package dist

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/faultinject"
)

// WorkerAPI serves the worker protocol over a Queue:
//
//	POST /v1/workers/register       -> RegisterResponse
//	POST /v1/workers/{id}/lease     -> LeaseResponse (task null when idle)
//	POST /v1/workers/{id}/heartbeat -> HeartbeatResponse
//	POST /v1/workers/{id}/complete  -> 204, or 409 for a stale completion
//
// Every {id} route answers 410 Gone for a worker ID the queue did not
// issue — after a server restart the fresh queue knows no pre-restart
// IDs, and 410 is the signal that re-registering (not retrying) is the
// way back in.
//
// It is mounted by internal/simfarm/server next to the job API; tests
// mount it directly on a mux to exercise Worker against a bare Queue.
type WorkerAPI struct {
	Queue *Queue
}

// Register mounts the worker protocol on mux.
func (a *WorkerAPI) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/workers/register", a.handleRegister)
	mux.HandleFunc("POST /v1/workers/{id}/lease", a.handleLease)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", a.handleHeartbeat)
	mux.HandleFunc("POST /v1/workers/{id}/complete", a.handleComplete)
}

func jsonOut(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func jsonIn(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObjectBytes)).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (a *WorkerAPI) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !jsonIn(w, r, &req) {
		return
	}
	jsonOut(w, RegisterResponse{
		WorkerID: a.Queue.Register(req.Name),
		LeaseTTL: a.Queue.LeaseTTL(),
	})
}

// knownWorker answers 410 Gone (and reports false) when the path's
// worker ID was not issued by this queue instance.
func (a *WorkerAPI) knownWorker(w http.ResponseWriter, r *http.Request) (string, bool) {
	id := r.PathValue("id")
	if !a.Queue.Known(id) {
		http.Error(w, "unknown worker (re-register)", http.StatusGone)
		return id, false
	}
	return id, true
}

func (a *WorkerAPI) handleLease(w http.ResponseWriter, r *http.Request) {
	id, ok := a.knownWorker(w, r)
	if !ok {
		return
	}
	jsonOut(w, LeaseResponse{Task: a.Queue.Lease(id)})
}

func (a *WorkerAPI) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id, ok := a.knownWorker(w, r)
	if !ok {
		return
	}
	var req HeartbeatRequest
	if !jsonIn(w, r, &req) {
		return
	}
	jsonOut(w, HeartbeatResponse{Lost: a.Queue.Heartbeat(id, req.TaskIDs)})
}

func (a *WorkerAPI) handleComplete(w http.ResponseWriter, r *http.Request) {
	id, ok := a.knownWorker(w, r)
	if !ok {
		return
	}
	var res TaskResult
	if !jsonIn(w, r, &res) {
		return
	}
	// Models the server dying while handling a completion — after the
	// worker did the work, before the queue records it.
	faultinject.Crash(faultinject.PointServerCompleteCrash)
	if !a.Queue.Complete(id, res) {
		// The lease moved on (expired and re-leased, or already
		// completed); the worker just drops the result.
		http.Error(w, "stale completion", http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
