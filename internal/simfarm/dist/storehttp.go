package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/simfarm/store"
)

// maxObjectBytes bounds a PUT body; a translated program is well under
// a megabyte of gob, so 64 MB is a generous ceiling, not a limit anyone
// legitimate hits.
const maxObjectBytes = 64 << 20

// StoreServer serves a content-addressed translation store over HTTP:
//
//	GET /v1/store/{key}  -> 200 + object bytes, 304 on If-None-Match, 404 miss
//	PUT /v1/store/{key}  -> 204 stored, 400 object does not verify
//
// {key} is the 64-hex namespace-derived on-disk key (see
// store.DeriveKey); derivation happens on the worker, so the server
// stays a dumb byte store and tenant isolation costs it nothing.
// Objects are immutable — the key is a content address — so the ETag
// is simply the quoted key and never changes, which makes
// If-None-Match revalidation exact rather than heuristic.
type StoreServer struct {
	store *store.Store

	gets, hits, misses, notModified atomic.Int64
	puts, badPuts                   atomic.Int64
}

// NewStoreServer wraps st for HTTP serving. Raw keys bypass st's own
// namespace, so any handle onto the right directory works.
func NewStoreServer(st *store.Store) *StoreServer {
	return &StoreServer{store: st}
}

// Register mounts the store protocol on mux.
func (s *StoreServer) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/store/{key}", s.handleGet)
	mux.HandleFunc("PUT /v1/store/{key}", s.handlePut)
}

// StoreServerStats is the server-side traffic snapshot for /v1/metrics.
type StoreServerStats struct {
	Gets        int64 // GET requests
	Hits        int64 // GETs served with object bytes
	Misses      int64 // GETs answered 404
	NotModified int64 // GETs short-circuited 304
	Puts        int64 // objects accepted
	BadPuts     int64 // PUT bodies rejected by verification
}

// Stats snapshots the traffic counters.
func (s *StoreServer) Stats() StoreServerStats {
	return StoreServerStats{
		Gets:        s.gets.Load(),
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		NotModified: s.notModified.Load(),
		Puts:        s.puts.Load(),
		BadPuts:     s.badPuts.Load(),
	}
}

// parseKey decodes the 64-hex path key.
func parseKey(r *http.Request) ([sha256.Size]byte, error) {
	var dk [sha256.Size]byte
	hx := r.PathValue("key")
	if len(hx) != 2*sha256.Size {
		return dk, fmt.Errorf("key must be %d hex characters", 2*sha256.Size)
	}
	raw, err := hex.DecodeString(hx)
	if err != nil {
		return dk, fmt.Errorf("key is not hex: %v", err)
	}
	copy(dk[:], raw)
	return dk, nil
}

// etag returns the strong ETag of the (immutable) object at dk.
func etag(dk [sha256.Size]byte) string {
	return `"` + hex.EncodeToString(dk[:]) + `"`
}

func (s *StoreServer) handleGet(w http.ResponseWriter, r *http.Request) {
	s.gets.Add(1)
	dk, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, ok, err := s.store.LoadRaw(dk)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !ok {
		s.misses.Add(1)
		http.Error(w, "object not found", http.StatusNotFound)
		return
	}
	// The content address never changes, so a matching If-None-Match on
	// an object we verifiably hold is a definitive 304 — the revalidation
	// can never be stale, only short-circuited.
	if r.Header.Get("If-None-Match") == etag(dk) {
		s.notModified.Add(1)
		w.Header().Set("ETag", etag(dk))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.hits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", etag(dk))
	w.Header().Set("Cache-Control", "immutable")
	w.Write(data)
}

func (s *StoreServer) handlePut(w http.ResponseWriter, r *http.Request) {
	dk, err := parseKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(data) > maxObjectBytes {
		s.badPuts.Add(1)
		http.Error(w, "object too large", http.StatusRequestEntityTooLarge)
		return
	}
	// Models the server dying mid-PUT: the temp-plus-rename write below
	// guarantees the store never holds a half-written object either way.
	faultinject.Crash(faultinject.PointStorePutCrash)
	// StoreRaw verifies framing, embedded key, checksum and payload
	// before writing, so a broken or malicious worker cannot plant an
	// object another worker would later quarantine.
	if err := s.store.StoreRaw(dk, data); err != nil {
		s.badPuts.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.puts.Add(1)
	w.Header().Set("ETag", etag(dk))
	w.WriteHeader(http.StatusNoContent)
}
