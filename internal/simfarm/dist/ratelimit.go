package dist

import (
	"math"
	"sync"
	"time"
)

// RateLimiter is a per-tenant token bucket for job submissions. Each
// tenant gets burst tokens refilled at rate per second; Allow spends
// one per submission. A rate <= 0 disables limiting entirely.
type RateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clock   func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter builds a limiter; clock nil means wall clock.
func NewRateLimiter(rate float64, burst int, clock func() time.Time) *RateLimiter {
	if clock == nil {
		clock = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		clock:   clock,
		buckets: make(map[string]*bucket),
	}
}

// Allow spends one token of the tenant's bucket. When the bucket is
// empty it reports false plus how long until a token is available —
// the Retry-After value.
func (l *RateLimiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.clock()
	b := l.buckets[tenant]
	if b == nil {
		l.maybePrune(now)
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// maybePrune drops buckets that have refilled completely — they carry
// no state an absent entry would not — so the map tracks active
// tenants, not every tenant ever seen. Callers hold l.mu.
func (l *RateLimiter) maybePrune(now time.Time) {
	if len(l.buckets) < 1024 {
		return
	}
	for tenant, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, tenant)
		}
	}
}
