package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/platform"
	"repro/internal/simfarm"
	"repro/internal/simfarm/store"
)

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Server is the control plane's base URL ("http://host:port").
	Server string
	// Name labels the worker in registration (host-pid style); the
	// server assigns the authoritative ID.
	Name string
	// Disk is an optional local store used as the middle cache level
	// between farm memory and the server's store.
	Disk *store.Store
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Poll is the idle sleep between empty leases (default 200 ms).
	Poll time.Duration
	// OpTimeout bounds every control-plane HTTP request (default 10 s),
	// so a hung server costs one deadline, not a wedged worker.
	OpTimeout time.Duration
	// Engine selects the C6x host-execution engine for translated runs.
	Engine platform.Engine
	// Ephemeral discards the per-tenant farm (and with it the in-memory
	// translation cache) after every task, so each task's translations
	// come from the store levels. CI uses it to make remote-store
	// traffic deterministic.
	Ephemeral bool
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// Worker is one farm worker process: it registers with the control
// plane, then leases tasks one at a time, executes them on a local
// single-worker Farm whose translation cache reads and writes the
// shared store over HTTP, heartbeats while executing, and reports the
// result. Execution is exactly the in-process farm path — same Farm,
// same engine, same verification against the reference ISS — so a
// distributed batch is bit-identical to a local one.
type Worker struct {
	cfg WorkerConfig
	id  string
	ttl time.Duration

	mu      sync.Mutex
	farms   map[string]*simfarm.Farm
	remotes map[string]*RemoteStore
	done    int64
}

// NewWorker builds a worker (it does not contact the server yet). The
// HTTP client is wrapped for fault injection unconditionally — with no
// armed plan the wrapper costs one atomic load per request.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg.Client = faultinject.WrapClient(cfg.Client)
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{
		cfg:     cfg,
		farms:   make(map[string]*simfarm.Farm),
		remotes: make(map[string]*RemoteStore),
	}
}

// ID returns the server-assigned worker ID ("" before Run registers).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// TasksDone reports how many tasks this worker has completed.
func (w *Worker) TasksDone() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.done
}

// StoreStats aggregates remote-store traffic across tenants.
func (w *Worker) StoreStats() RemoteStoreStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	var agg RemoteStoreStats
	for _, rs := range w.remotes {
		st := rs.Stats()
		agg.Loads += st.Loads
		agg.LocalHits += st.LocalHits
		agg.RemoteHits += st.RemoteHits
		agg.Misses += st.Misses
		agg.Puts += st.Puts
		agg.PutsSkipped += st.PutsSkipped
	}
	return agg
}

// Run registers and processes tasks until ctx is cancelled. A task in
// flight at cancellation is finished and completed first — the graceful
// half of shutdown; the abrupt half (kill -9) is what lease expiry is
// for. Run returns nil on cancellation, an error only when
// registration never succeeds.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.cfg.Logf("registered as %s (lease TTL %v)", w.ID(), w.ttl)
	for {
		if ctx.Err() != nil {
			w.cfg.Logf("shutting down after %d tasks", w.TasksDone())
			return nil
		}
		task, err := w.lease()
		if err != nil {
			if isGone(err) {
				// The server restarted and its fresh queue does not know
				// our ID: re-register and carry on under the new one.
				w.cfg.Logf("worker ID gone (server restarted?); re-registering")
				if err := w.register(ctx); err != nil {
					return nil // ctx ended while re-registering
				}
				continue
			}
			w.cfg.Logf("lease: %v", err)
			w.sleep(ctx)
			continue
		}
		if task == nil {
			w.sleep(ctx)
			continue
		}
		res := w.execute(ctx, task)
		if err := w.complete(ctx, res); err != nil {
			if isGone(err) {
				// The work is lost to the old registration; lease expiry
				// re-runs the task, deterministically, under whoever
				// leases it next.
				w.cfg.Logf("complete %s: worker ID gone; re-registering", task.ID)
				if err := w.register(ctx); err != nil {
					return nil
				}
			} else {
				w.cfg.Logf("complete %s: %v", task.ID, err)
			}
		}
		w.mu.Lock()
		w.done++
		w.mu.Unlock()
	}
}

// register retries registration with exponential backoff until it
// succeeds or ctx ends, so a worker started moments before its server
// comes up (or orphaned by a server restart) just waits — without the
// whole fleet stampeding the server the instant it returns.
func (w *Worker) register(ctx context.Context) error {
	bo := NewBackoff(w.cfg.Poll, 5*time.Second)
	for {
		var resp RegisterResponse
		err := w.post("/v1/workers/register", RegisterRequest{Name: w.cfg.Name}, &resp)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			w.ttl = resp.LeaseTTL
			if w.ttl <= 0 {
				w.ttl = defaultLeaseTTL
			}
			return nil
		}
		w.cfg.Logf("register: %v (retry %d)", err, bo.Attempt()+1)
		if !bo.Sleep(ctx) {
			return fmt.Errorf("worker: register: %w", err)
		}
	}
}

func (w *Worker) lease() (*Task, error) {
	var resp LeaseResponse
	if err := w.post("/v1/workers/"+w.ID()+"/lease", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return resp.Task, nil
}

// execute runs one task on the tenant's farm, heartbeating at TTL/3
// until the run finishes.
func (w *Worker) execute(ctx context.Context, task *Task) TaskResult {
	res := TaskResult{TaskID: task.ID, Index: task.Index, Worker: w.id}
	w.cfg.Logf("task %s (%s, attempt %d)", task.ID, task.Kind, task.Attempt)

	stop := w.heartbeat(ctx, task.ID)
	defer stop()

	farm := w.farm(task.Tenant)
	switch {
	case task.Kind == KindSim && task.Sim != nil:
		results, _ := farm.Run([]simfarm.Job{*task.Sim})
		r := results[0]
		res.Sim = &r
		res.CacheState = r.CacheOutcome()
	case task.Kind == KindSoC && task.SoC != nil:
		results, _ := farm.RunSoC([]simfarm.SoCJob{*task.SoC})
		r := results[0]
		res.SoC = &r
		res.CacheHits, res.CacheMisses = r.CacheCounts()
	default:
		res.Err = fmt.Sprintf("malformed task: kind %q with no matching payload", task.Kind)
	}
	if w.cfg.Ephemeral {
		w.mu.Lock()
		delete(w.farms, task.Tenant)
		w.mu.Unlock()
	}
	return res
}

// heartbeat keeps one task's lease alive until the returned stop
// function is called (or ctx ends — a worker draining out still
// heartbeats its last task through the drain).
func (w *Worker) heartbeat(ctx context.Context, taskID string) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	interval := w.ttl / 3
	if interval <= 0 {
		interval = defaultLeaseTTL / 3
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				var resp HeartbeatResponse
				if err := w.post("/v1/workers/"+w.ID()+"/heartbeat", HeartbeatRequest{TaskIDs: []string{taskID}}, &resp); err != nil {
					w.cfg.Logf("heartbeat %s: %v", taskID, err)
				} else if len(resp.Lost) > 0 {
					// The lease moved on; finish anyway — Complete will
					// be accepted only if delivery is still ours.
					w.cfg.Logf("lease %s lost", taskID)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// complete reports a result, retrying transient transport errors with
// backoff; a 409 (stale completion) is a clean non-error outcome, and
// a 410 (unknown worker) aborts the retries — the caller re-registers.
func (w *Worker) complete(ctx context.Context, res TaskResult) error {
	// The canonical crash window: the task is executed but unreported.
	// Recovery is the lease expiring and the task re-running elsewhere.
	faultinject.Crash(faultinject.PointWorkerCompleteCrash)
	bo := NewBackoff(w.cfg.Poll/2, 2*time.Second)
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 && !bo.Sleep(ctx) {
			return err
		}
		err = w.post("/v1/workers/"+w.ID()+"/complete", res, nil)
		if err == nil || isStale(err) {
			return nil
		}
		if isGone(err) {
			return err
		}
	}
	return err
}

type staleError struct{ msg string }

func (e *staleError) Error() string { return e.msg }

func isStale(err error) bool {
	_, ok := err.(*staleError)
	return ok
}

// goneError is a 410 from a worker route: this queue never issued our
// ID (the server restarted), so retrying is pointless — re-register.
type goneError struct{ msg string }

func (e *goneError) Error() string { return e.msg }

func isGone(err error) bool {
	_, ok := err.(*goneError)
	return ok
}

// farm returns (building if needed) the tenant's single-worker farm,
// backed by a translation cache whose persistent level is the remote
// store under the tenant's namespace.
func (w *Worker) farm(tenant string) *simfarm.Farm {
	w.mu.Lock()
	defer w.mu.Unlock()
	if f, ok := w.farms[tenant]; ok {
		return f
	}
	rs, ok := w.remotes[tenant]
	if !ok {
		rs = NewRemoteStore(w.cfg.Server, tenant, w.cfg.Disk, w.cfg.Client)
		w.remotes[tenant] = rs
	}
	f := simfarm.New(simfarm.Config{
		Workers: 1,
		Cache:   simfarm.NewPersistentTranslationCache(rs),
		Engine:  w.cfg.Engine,
	})
	w.farms[tenant] = f
	return f
}

// sleep waits one poll interval or until ctx ends.
func (w *Worker) sleep(ctx context.Context) {
	select {
	case <-ctx.Done():
	case <-time.After(w.cfg.Poll):
	}
}

// post sends a JSON request and decodes a JSON response (out nil skips
// decoding), bounded by OpTimeout. Non-2xx statuses become errors; 409
// becomes a staleError, 410 a goneError.
func (w *Worker) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.OpTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Server+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &staleError{msg: string(bytes.TrimSpace(msg))}
	}
	if resp.StatusCode == http.StatusGone {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &goneError{msg: string(bytes.TrimSpace(msg))}
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
