// Persistent-cache tests live in the external test package for the same
// reason as the equivalence test: repro.Measure is the farm-free oracle.
package simfarm_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/simfarm"
	"repro/internal/simfarm/store"
	"repro/internal/workload"
)

// sweep returns a small but representative batch: two workloads at every
// level under every default march config.
func sweep(t *testing.T) []simfarm.Job {
	t.Helper()
	var ws []workload.Workload
	for _, name := range []string{"gcd", "sieve"} {
		w, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		ws = append(ws, w)
	}
	return simfarm.SweepJobs(ws, repro.AllLevels(), simfarm.DefaultMarchConfigs())
}

// assertNoFailures fails the test on the first failed job.
func assertNoFailures(t *testing.T, results []simfarm.Result) {
	t.Helper()
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s %s L%d: %v", r.Name, r.Config, int(r.Level), r.Err)
		}
	}
}

// TestFarmDiskStoreEquivalence is the cross-process story of the
// persistent store, compressed into one process: a cold farm populates a
// disk store, a completely fresh farm + store handle (what a second
// cabt-farm invocation sees) serves every translation from disk, and the
// warm results are bit-identical both to the cold run and to the direct
// repro.Measure path.
func TestFarmDiskStoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	jobs := sweep(t)

	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := simfarm.New(simfarm.Config{Workers: 4, Cache: simfarm.NewPersistentTranslationCache(st1)})
	coldResults, coldStats := cold.Run(jobs)
	assertNoFailures(t, coldResults)
	if coldStats.CacheMisses == 0 {
		t.Fatal("cold run reported no translations")
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Second process": fresh store handle, fresh farm, same directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmCache := simfarm.NewPersistentTranslationCache(st2)
	warm := simfarm.New(simfarm.Config{Workers: 4, Cache: warmCache})
	warmResults, warmStats := warm.Run(jobs)
	assertNoFailures(t, warmResults)

	if warmStats.CacheMisses != 0 {
		t.Errorf("warm run re-translated %d programs", warmStats.CacheMisses)
	}
	if warmStats.CacheHitRate < 0.9 {
		t.Errorf("warm hit rate = %v, want >= 0.9", warmStats.CacheHitRate)
	}
	if warmCache.DiskHits() != coldStats.CacheMisses {
		t.Errorf("disk hits = %d, want one per cold translation (%d)",
			warmCache.DiskHits(), coldStats.CacheMisses)
	}

	for i := range warmResults {
		w, c := warmResults[i], coldResults[i]
		if w.Instructions != c.Instructions || w.BoardCycles != c.BoardCycles ||
			w.C6xCycles != c.C6xCycles || w.GeneratedCycles != c.GeneratedCycles ||
			w.CPI != c.CPI || w.MIPS != c.MIPS || w.DeviationPct != c.DeviationPct ||
			w.Seconds != c.Seconds {
			t.Errorf("%s %s L%d: warm result differs from cold", w.Name, w.Config, int(w.Level))
		}
	}

	// Against the oracle, for the default ("base") config only: those
	// jobs are exactly what repro.Measure computes.
	for _, r := range warmResults {
		if r.Config != "base" {
			continue
		}
		w, _ := workload.ByName(r.Name)
		m, err := repro.Measure(w, r.Level)
		if err != nil {
			t.Fatal(err)
		}
		lr := m.Levels[r.Level]
		if r.Instructions != m.Instructions || r.BoardCycles != m.BoardCycles ||
			r.C6xCycles != lr.C6xCycles || r.GeneratedCycles != lr.GeneratedCycles {
			t.Errorf("%s L%d: disk-store result differs from repro.Measure", r.Name, int(r.Level))
		}
	}
}

// TestFarmSurvivesStoreCorruption damages objects under a running farm's
// store between batches: the farm must re-translate and keep producing
// correct results, never crash.
func TestFarmSurvivesStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	jobs := sweep(t)

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold := simfarm.New(simfarm.Config{Workers: 4, Cache: simfarm.NewPersistentTranslationCache(st)})
	coldResults, _ := cold.Run(jobs)
	assertNoFailures(t, coldResults)
	st.Close()

	// Truncate every object on disk.
	damaged := 0
	err = filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		damaged++
		return os.Truncate(path, 13)
	})
	if err != nil {
		t.Fatal(err)
	}
	if damaged == 0 {
		t.Fatal("no objects written")
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm := simfarm.New(simfarm.Config{Workers: 4, Cache: simfarm.NewPersistentTranslationCache(st2)})
	warmResults, warmStats := warm.Run(jobs)
	assertNoFailures(t, warmResults)
	if warmStats.CacheMisses == 0 {
		t.Error("truncated store served hits")
	}
	if got := st2.Stats().Corrupt; got == 0 {
		t.Error("corruption went undetected")
	}
	for i := range warmResults {
		if warmResults[i].C6xCycles != coldResults[i].C6xCycles {
			t.Errorf("%s %s L%d: rebuilt result differs", warmResults[i].Name,
				warmResults[i].Config, int(warmResults[i].Level))
		}
	}
}

// TestAssemblyDeterminism guards the property the whole store rests on:
// the same source must produce a byte-identical ELF image (and therefore
// the same content address) in every process. The symbol table is the
// part that historically depended on map iteration order.
func TestAssemblyDeterminism(t *testing.T) {
	for _, w := range workload.All() {
		var first simfarm.ELFHash
		for i := 0; i < 4; i++ {
			f, err := repro.Assemble(w.Source)
			if err != nil {
				t.Fatal(err)
			}
			h, err := simfarm.HashELF(f)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = h
			} else if h != first {
				t.Fatalf("%s: assembly #%d hashed differently", w.Name, i)
			}
		}
	}
}
