// Package store persists translated programs on disk under their content
// addresses, so farm runs share translation work across processes: the
// in-memory simfarm.TranslationCache uses a Store as its write-through
// second level, and any process pointed at the same directory (a second
// cabt-farm sweep, the cabt-serve HTTP service, the benchmark harness)
// reuses every program translated before it.
//
// # Layout
//
//	<dir>/index.json            versioned index (sizes, LRU timestamps)
//	<dir>/objects/<aa>/<key>    one object per 64-hex-digit content address,
//	                            sharded by the first byte
//
// Each object file is a fixed header — magic, format version, the
// object's own key, payload length, payload SHA-256 — followed by a
// gob-encoded core.Program. Writes go to a temp file in the destination
// directory, are synced, then renamed into place, so a final-name object
// is always complete. Content addressing makes concurrent writers
// harmless: the same key always carries the same payload.
//
// # Failure model
//
// Every load re-verifies the header, the embedded key, and the payload
// checksum, and decodes defensively; a file that fails any check is
// deleted and reported as an ordinary miss, so corruption (truncation,
// bit rot, a foreign or renamed file, an old format version) costs one
// re-translation, never a crash. The index is an optimization, not a
// source of truth — when it is missing, unreadable, or the wrong
// version, Open rebuilds it by scanning the objects directory with file
// mtimes as the LRU order.
//
// # Eviction and namespaces
//
// A byte budget (Options.MaxBytes) bounds the store: writes that push it
// past the budget evict least-recently-used objects. Store.Namespace
// derives per-tenant views by folding the tenant name into the content
// address, so tenants sharing one directory can never observe each
// other's objects — the isolation the cabt-serve multi-tenant API
// builds on.
package store
