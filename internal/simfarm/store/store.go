package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// FormatVersion is the on-disk object format version. Objects written
// with a different version are treated as misses and rebuilt, never
// parsed: the payload is a gob stream of core.Program, whose layout the
// repository does not promise across versions.
//
// Version 2: core.Program gained interrupt metadata (BlockInfo.Leader,
// Program.IRQEntry) that older objects decode as zero values — which
// would silently disable interrupt delivery — so they must be rebuilt.
//
// Version 3: superblock fusion (and the generation stamp in
// simfarm.ProgramKey). Pre-fusion objects decode cleanly but were keyed
// without the translator generation; refusing their format version
// guarantees none of them replays into the fused engine even through a
// store populated before the key change.
const FormatVersion = 3

// indexVersion versions index.json independently of the object format;
// an unreadable or wrong-version index is rebuilt by scanning objects/.
const indexVersion = 1

// magic opens every object file. Eight bytes, never versioned: version
// negotiation happens in the explicit version field that follows it.
var magic = [8]byte{'C', 'A', 'B', 'T', 'O', 'B', 'J', '\n'}

// headerSize is the fixed object header: magic, format version (u32 LE),
// key (32), payload length (u64 LE), payload SHA-256 (32).
const headerSize = 8 + 4 + sha256.Size + 8 + sha256.Size

// Options configure Open.
type Options struct {
	// MaxBytes is the garbage-collection budget for object payload+header
	// bytes; when a write pushes the store past it, least-recently-used
	// objects are evicted until it fits. 0 means no budget (never GC).
	MaxBytes int64
}

// Store is a content-addressed, on-disk cache of translated programs.
// Object files live under dir/objects/<aa>/<64-hex-key>, written with a
// temp-file+rename so a crash can never leave a half-written object under
// its final name; every read verifies the header and a payload checksum,
// and anything that fails verification is deleted and reported as a miss,
// so the worst corruption costs one re-translation.
//
// A Store is safe for concurrent use within a process. Across processes,
// content addressing makes sharing safe by construction: two writers of
// the same key write identical payloads, and rename is atomic, so readers
// see either a complete old object or a complete new one.
type Store struct {
	ns string
	st *state
}

// state is shared between a Store and its Namespace views.
type state struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index map[[sha256.Size]byte]*entry
	bytes int64

	loads     atomic.Int64
	hits      atomic.Int64
	puts      atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64
}

// entry is one object's index record.
type entry struct {
	Size     int64 // file size in bytes (header + payload)
	LastUsed int64 // unix nanoseconds of the last load or store
}

// Stats is a point-in-time snapshot of a store's contents and traffic.
type Stats struct {
	Dir       string `json:"dir"`
	Namespace string `json:"namespace,omitempty"`
	Objects   int    `json:"objects"`
	Bytes     int64  `json:"bytes"`
	Loads     int64  `json:"loads"`
	Hits      int64  `json:"hits"`
	Puts      int64  `json:"puts"`
	Evictions int64  `json:"evictions"`
	Corrupt   int64  `json:"corrupt"`
}

// Open opens (creating if needed) the store rooted at dir. The index is
// loaded from dir/index.json when present and valid; a missing, corrupt
// or wrong-version index is rebuilt by scanning dir/objects, using file
// modification times as the LRU order, so no index failure mode is fatal.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &state{dir: dir, maxBytes: opts.MaxBytes}
	if !st.loadIndex() {
		if err := st.rescan(); err != nil {
			return nil, err
		}
	}
	return &Store{st: st}, nil
}

// Namespace returns a view of the same store whose keys are scoped to ns.
// The view shares the index, budget and counters with its parent; only
// the key derivation differs, so distinct namespaces can never observe
// each other's objects even for identical logical keys. ns "" returns the
// root view.
func (s *Store) Namespace(ns string) *Store { return &Store{ns: ns, st: s.st} }

// DeriveKey maps a logical key into namespace ns's on-disk key. It is a
// pure function of (ns, key), so any process — a remote worker included —
// computes the same on-disk address for the same logical object; the
// remote store protocol (internal/simfarm/dist) addresses objects by this
// derived key. ns "" is the root namespace (the identity derivation).
func DeriveKey(ns string, key [sha256.Size]byte) [sha256.Size]byte {
	if ns == "" {
		return key
	}
	h := sha256.New()
	io.WriteString(h, "cabt-store-namespace\x00")
	io.WriteString(h, ns)
	h.Write([]byte{0})
	h.Write(key[:])
	var d [sha256.Size]byte
	h.Sum(d[:0])
	return d
}

// derive maps a logical key into the namespace-scoped on-disk key.
func (s *Store) derive(key [sha256.Size]byte) [sha256.Size]byte {
	return DeriveKey(s.ns, key)
}

// objectPath returns the sharded path of an on-disk key.
func (st *state) objectPath(key [sha256.Size]byte) string {
	hx := hex.EncodeToString(key[:])
	return filepath.Join(st.dir, "objects", hx[:2], hx)
}

// Load reads the program stored under key. A missing object is (nil,
// false, nil); an object that fails verification (truncated, wrong magic
// or version, checksum or key mismatch, undecodable payload) is deleted,
// counted as corrupt, and also reported as a plain miss — the caller
// re-translates and the next Store repairs the file.
func (s *Store) Load(key [sha256.Size]byte) (*core.Program, bool, error) {
	_, prog, ok, err := s.st.loadObject(s.derive(key))
	return prog, ok, err
}

// LoadRaw reads the complete verified framed object stored under the
// on-disk key dk (already namespace-derived — see DeriveKey; LoadRaw
// never derives). It returns the exact file bytes, so the remote store
// protocol serves objects byte-identically to what was written, and a
// worker's local cache level stores what it fetched without a re-encode.
// Verification, quarantine and traffic accounting are identical to Load.
func (s *Store) LoadRaw(dk [sha256.Size]byte) ([]byte, bool, error) {
	data, _, ok, err := s.st.loadObject(dk)
	return data, ok, err
}

// loadObject reads, verifies and decodes the object at the on-disk key.
func (st *state) loadObject(dk [sha256.Size]byte) ([]byte, *core.Program, bool, error) {
	st.loads.Add(1)
	path := st.objectPath(dk)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		// Heal any stale index entry (the object may have been evicted
		// or removed out from under a rebuilt index).
		st.mu.Lock()
		if e, ok := st.index[dk]; ok {
			st.bytes -= e.Size
			delete(st.index, dk)
		}
		st.mu.Unlock()
		return nil, nil, false, nil
	}
	if err != nil {
		return nil, nil, false, fmt.Errorf("store: load %x: %w", dk[:8], err)
	}
	prog, err := decodeObject(dk, data)
	if err != nil {
		st.quarantine(dk, path, err)
		return nil, nil, false, nil
	}
	st.hits.Add(1)
	st.refresh(dk, path, int64(len(data)))
	now := time.Now()
	os.Chtimes(path, now, now) // keep mtime usable as LRU if the index is lost
	return data, prog, true, nil
}

// Store writes prog under key. The object is first written completely
// (and synced) to a temporary file in the same directory, then renamed
// into place, so concurrent readers and crashes only ever see complete
// objects. Storing an already-present key rewrites it idempotently.
func (s *Store) Store(key [sha256.Size]byte, prog *core.Program) error {
	dk := s.derive(key)
	data, err := EncodeObject(dk, prog)
	if err != nil {
		return err
	}
	return s.st.writeObject(dk, data)
}

// StoreRaw writes a complete framed object under the on-disk key dk
// (already namespace-derived; StoreRaw never derives). The bytes are
// verified end to end — framing, embedded key, checksum, decodable
// payload — before anything touches the disk, so a remote peer can never
// plant an object that Load would later quarantine.
func (s *Store) StoreRaw(dk [sha256.Size]byte, data []byte) error {
	if _, err := decodeObject(dk, data); err != nil {
		return fmt.Errorf("store: raw object %x does not verify: %w", dk[:8], err)
	}
	return s.st.writeObject(dk, data)
}

// writeObject atomically installs framed object bytes at their on-disk
// key: complete write (and sync) to a temp file in the same directory,
// then rename, so concurrent readers and crashes only ever see complete
// objects.
func (st *state) writeObject(dk [sha256.Size]byte, data []byte) error {
	path := st.objectPath(dk)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if ferr := faultinject.ErrAt(faultinject.PointStoreWriteENOSPC, syscall.ENOSPC); ferr != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: store %x: %w", dk[:8], ferr)
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: store %x: %w", dk[:8], werr)
	}
	st.puts.Add(1)
	st.touch(dk, int64(len(data)))
	st.enforceBudget(dk)
	st.writeIndex()
	return nil
}

// touch records (or refreshes) an index entry.
func (st *state) touch(dk [sha256.Size]byte, size int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.index[dk]
	if !ok {
		e = &entry{}
		st.index[dk] = e
	}
	st.bytes += size - e.Size
	e.Size = size
	e.LastUsed = time.Now().UnixNano()
}

// refresh is touch for the Load path: a load that raced an eviction must
// not resurrect the victim's index entry, so an absent entry is only
// re-added if the object file still exists (eviction removes the file
// under the same lock that removes the entry, so the stat under the lock
// observes a consistent pair).
func (st *state) refresh(dk [sha256.Size]byte, path string, size int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.index[dk]
	if !ok {
		if _, err := os.Stat(path); err != nil {
			return
		}
		e = &entry{}
		st.index[dk] = e
	}
	st.bytes += size - e.Size
	e.Size = size
	e.LastUsed = time.Now().UnixNano()
}

// quarantine removes an object that failed verification.
func (st *state) quarantine(dk [sha256.Size]byte, path string, cause error) {
	st.corrupt.Add(1)
	os.Remove(path)
	st.mu.Lock()
	if e, ok := st.index[dk]; ok {
		st.bytes -= e.Size
		delete(st.index, dk)
	}
	st.mu.Unlock()
	_ = cause // surfaced via Stats.Corrupt; the caller rebuilds the object
}

// enforceBudget evicts least-recently-used objects until the store fits
// its byte budget. The just-written key is never evicted, so a store
// smaller than one object still serves the write-through read.
func (st *state) enforceBudget(keep [sha256.Size]byte) {
	if st.maxBytes <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked(&keep, 0)
}

// evictLocked removes objects under st.mu: first everything not used
// since cutoff (when cutoff > 0), then least-recently-used objects until
// the store fits its byte budget. keep (when non-nil) is never evicted.
// Index entry and object file are removed under one lock hold, so a
// concurrent Load can never observe the entry gone but the file present
// (or re-index a file that is about to disappear — see refresh).
func (st *state) evictLocked(keep *[sha256.Size]byte, cutoff int64) (evicted int, freed int64) {
	type victim struct {
		key [sha256.Size]byte
		e   *entry
	}
	var vs []victim
	for k, e := range st.index {
		if keep != nil && k == *keep {
			continue
		}
		vs = append(vs, victim{k, e})
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].e.LastUsed < vs[j].e.LastUsed })
	for _, v := range vs {
		stale := cutoff > 0 && v.e.LastUsed < cutoff
		over := st.maxBytes > 0 && st.bytes > st.maxBytes
		if !stale && !over {
			if cutoff <= 0 {
				break // LRU order: once within budget, the rest stays
			}
			continue // keep scanning for stale entries
		}
		st.bytes -= v.e.Size
		freed += v.e.Size
		delete(st.index, v.key)
		os.Remove(st.objectPath(v.key))
		st.evictions.Add(1)
		evicted++
	}
	return evicted, freed
}

// GCResult summarizes one garbage-collection sweep.
type GCResult struct {
	Evicted    int   `json:"evicted"`
	FreedBytes int64 `json:"freed_bytes"`
	Objects    int   `json:"objects"` // objects remaining after the sweep
	Bytes      int64 `json:"bytes"`   // bytes remaining after the sweep
}

// GC sweeps the store now: the index is first rebuilt from the objects
// directory — picking up objects written by other processes sharing
// it, which writes alone never see — then objects not used within
// maxAge are evicted (maxAge 0 disables the age rule), then
// least-recently-used objects until the byte budget is met, and the
// index is flushed. File mtimes are the cross-process LRU clock (Load
// refreshes them on every hit), so the rescan keeps recency intact.
// cmd/cabt-serve runs GC from a background ticker and exposes it at
// POST /v1/admin/gc.
func (s *Store) GC(maxAge time.Duration) GCResult {
	st := s.st
	var cutoff int64
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge).UnixNano()
	}
	// A rescan failure (e.g. an unreadable directory) degrades to
	// sweeping this process's own view, never to skipping the sweep.
	_ = st.rescan()
	st.mu.Lock()
	evicted, freed := st.evictLocked(nil, cutoff)
	objects, bytes := len(st.index), st.bytes
	st.mu.Unlock()
	st.writeIndex()
	return GCResult{Evicted: evicted, FreedBytes: freed, Objects: objects, Bytes: bytes}
}

// StartSweeper garbage-collects the store every interval (with the
// given maxAge) until the returned stop function is called. Stop is
// idempotent.
func (s *Store) StartSweeper(interval, maxAge time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.GC(maxAge)
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	st := s.st
	st.mu.Lock()
	objects, bytes := len(st.index), st.bytes
	st.mu.Unlock()
	return Stats{
		Dir:       st.dir,
		Namespace: s.ns,
		Objects:   objects,
		Bytes:     bytes,
		Loads:     st.loads.Load(),
		Hits:      st.hits.Load(),
		Puts:      st.puts.Load(),
		Evictions: st.evictions.Load(),
		Corrupt:   st.corrupt.Load(),
	}
}

// Close flushes the index. The store remains usable (Close is a flush
// point, not a teardown): object files are always complete on disk, and
// the index is reconstructible, so Close losing a race only costs a
// rescan on the next Open.
func (s *Store) Close() error { return s.st.writeIndex() }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.st.dir }

// --- object encoding ---

// EncodeObject frames a gob-encoded program: header (magic, version, key,
// payload length, payload SHA-256) then payload. The key is part of the
// header so a file renamed to the wrong address fails verification. dk is
// the on-disk (namespace-derived) key; the framed bytes are what Store
// writes, LoadRaw returns and the remote store protocol carries.
func EncodeObject(dk [sha256.Size]byte, prog *core.Program) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(prog); err != nil {
		return nil, fmt.Errorf("store: encode program: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	buf := make([]byte, 0, headerSize+payload.Len())
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)
	buf = append(buf, dk[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = append(buf, sum[:]...)
	buf = append(buf, payload.Bytes()...)
	return buf, nil
}

// DecodeObject verifies framed object bytes end to end (magic, version,
// embedded key, length, payload checksum) and decodes the program. Every
// return path that is not a fully verified program is an error; callers
// treat any error as corruption.
func DecodeObject(dk [sha256.Size]byte, data []byte) (*core.Program, error) {
	return decodeObject(dk, data)
}

// decodeObject verifies an object file end to end and decodes its
// program. Every return path that is not a fully verified program is an
// error; callers treat any error as corruption.
func decodeObject(dk [sha256.Size]byte, data []byte) (*core.Program, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header: %d bytes", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, errors.New("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("format version %d, want %d", v, FormatVersion)
	}
	if !bytes.Equal(data[12:44], dk[:]) {
		return nil, errors.New("key mismatch")
	}
	plen := binary.LittleEndian.Uint64(data[44:52])
	payload := data[headerSize:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("truncated payload: %d bytes, want %d", len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(data[52:84], sum[:]) {
		return nil, errors.New("payload checksum mismatch")
	}
	prog := new(core.Program)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(prog); err != nil {
		return nil, fmt.Errorf("decode program: %w", err)
	}
	return prog, nil
}

// --- index ---

// indexFile is the JSON document at dir/index.json.
type indexFile struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"`
}

type indexEntry struct {
	Key      string `json:"key"`
	Size     int64  `json:"size"`
	LastUsed int64  `json:"last_used"`
}

func (st *state) indexPath() string { return filepath.Join(st.dir, "index.json") }

// loadIndex reads index.json; false means the caller must rescan.
func (st *state) loadIndex() bool {
	data, err := os.ReadFile(st.indexPath())
	if err != nil {
		return false
	}
	var f indexFile
	if json.Unmarshal(data, &f) != nil || f.Version != indexVersion {
		return false
	}
	index := make(map[[sha256.Size]byte]*entry, len(f.Entries))
	var total int64
	for _, ie := range f.Entries {
		raw, err := hex.DecodeString(ie.Key)
		if err != nil || len(raw) != sha256.Size || ie.Size < 0 {
			return false
		}
		var k [sha256.Size]byte
		copy(k[:], raw)
		index[k] = &entry{Size: ie.Size, LastUsed: ie.LastUsed}
		total += ie.Size
	}
	st.mu.Lock()
	st.index, st.bytes = index, total
	st.mu.Unlock()
	return true
}

// writeIndex atomically persists the index.
func (st *state) writeIndex() error {
	st.mu.Lock()
	f := indexFile{Version: indexVersion, Entries: make([]indexEntry, 0, len(st.index))}
	for k, e := range st.index {
		f.Entries = append(f.Entries, indexEntry{Key: hex.EncodeToString(k[:]), Size: e.Size, LastUsed: e.LastUsed})
	}
	st.mu.Unlock()
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key < f.Entries[j].Key })
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	tmp, err := os.CreateTemp(st.dir, ".tmp-index-*")
	if err != nil {
		return fmt.Errorf("store: index: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), st.indexPath())
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: index: %w", werr)
	}
	return nil
}

// rescan rebuilds the index from the objects directory: every well-named
// object file becomes an entry (content verification stays lazy, in
// Load), stray temp files from interrupted writes are removed, and file
// mtimes stand in for the lost LRU order.
func (st *state) rescan() error {
	index := map[[sha256.Size]byte]*entry{}
	var total int64
	root := filepath.Join(st.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if strings.HasPrefix(name, ".tmp-") {
			os.Remove(path)
			return nil
		}
		raw, err := hex.DecodeString(name)
		if err != nil || len(raw) != sha256.Size {
			return nil // not an object; leave foreign files alone
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		var k [sha256.Size]byte
		copy(k[:], raw)
		index[k] = &entry{Size: info.Size(), LastUsed: info.ModTime().UnixNano()}
		total += info.Size()
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: rescan: %w", err)
	}
	st.mu.Lock()
	st.index, st.bytes = index, total
	st.mu.Unlock()
	return nil
}
