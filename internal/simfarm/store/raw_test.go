package store_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/simfarm/store"
)

// TestRawRoundTrip: LoadRaw returns the exact bytes an earlier Store
// wrote, StoreRaw installs them verbatim in another store, and the
// logical Load on the receiving side decodes the same program — the
// byte-preserving path the remote store protocol depends on.
func TestRawRoundTrip(t *testing.T) {
	p := prog(t)
	k := key("raw-round-trip")
	src := open(t, t.TempDir(), store.Options{})
	mustStore(t, src, k, p)

	// Root namespace: the on-disk key is the logical key.
	dk := store.DeriveKey("", k)
	if dk != k {
		t.Fatalf("root DeriveKey changed the key")
	}
	data, ok, err := src.LoadRaw(dk)
	if err != nil || !ok {
		t.Fatalf("LoadRaw = (ok=%v, err=%v)", ok, err)
	}
	onDisk, err2 := os.ReadFile(objectPath(t, src.Dir()))
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(data, onDisk) {
		t.Fatal("LoadRaw bytes differ from the object file")
	}

	dst := open(t, t.TempDir(), store.Options{})
	if err := dst.StoreRaw(dk, data); err != nil {
		t.Fatal(err)
	}
	got, ok, err := dst.Load(k)
	if err != nil || !ok {
		t.Fatalf("Load after StoreRaw = (ok=%v, err=%v)", ok, err)
	}
	wc6x, wgen := cycles(t, p)
	gc6x, ggen := cycles(t, got)
	if gc6x != wc6x || ggen != wgen {
		t.Fatalf("raw-transferred program cycles (%d,%d) != original (%d,%d)", gc6x, ggen, wc6x, wgen)
	}
}

// TestStoreRawRejectsBadObjects: StoreRaw never installs bytes that fail
// verification — truncated, mis-keyed or bit-flipped objects are refused
// before touching the disk.
func TestStoreRawRejectsBadObjects(t *testing.T) {
	p := prog(t)
	k := key("raw-reject")
	src := open(t, t.TempDir(), store.Options{})
	mustStore(t, src, k, p)
	data, ok, err := src.LoadRaw(k)
	if err != nil || !ok {
		t.Fatal("source object missing")
	}

	dst := open(t, t.TempDir(), store.Options{})
	for _, tc := range []struct {
		name string
		dk   [32]byte
		data []byte
	}{
		{"truncated", k, data[:len(data)-3]},
		{"bit-flip", k, flip(data)},
		{"wrong-key", key("some-other-address"), data},
		{"empty", k, nil},
	} {
		if err := dst.StoreRaw(tc.dk, tc.data); err == nil {
			t.Errorf("%s: StoreRaw accepted a bad object", tc.name)
		}
	}
	if st := dst.Stats(); st.Objects != 0 || st.Puts != 0 {
		t.Fatalf("rejected objects left state behind: %+v", st)
	}
}

func flip(b []byte) []byte {
	c := append([]byte(nil), b...)
	c[len(c)-1] ^= 1
	return c
}

// TestDeriveKeyMatchesNamespace: DeriveKey computes exactly the on-disk
// key a Namespace view uses, so a remote worker addressing objects by
// DeriveKey(tenant, key) reads what the server's namespaced view wrote.
func TestDeriveKeyMatchesNamespace(t *testing.T) {
	p := prog(t)
	k := key("derive")
	root := open(t, t.TempDir(), store.Options{})
	mustStore(t, root.Namespace("tenant-a"), k, p)

	dk := store.DeriveKey("tenant-a", k)
	if dk == k {
		t.Fatal("namespace derivation is the identity")
	}
	if data, ok, err := root.LoadRaw(dk); err != nil || !ok || len(data) == 0 {
		t.Fatalf("LoadRaw(DeriveKey) = (ok=%v, err=%v)", ok, err)
	}
	if _, ok, _ := root.LoadRaw(k); ok {
		t.Fatal("undeprived key resolved a namespaced object")
	}
}

// TestEncodeDecodeObject: the exported framing round-trips and the
// decoder rejects a frame addressed to the wrong key.
func TestEncodeDecodeObject(t *testing.T) {
	p := prog(t)
	dk := key("frame")
	data, err := store.EncodeObject(dk, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.DecodeObject(dk, data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Level != p.Level || len(got.Blocks) != len(p.Blocks) {
		t.Fatal("decoded program metadata mismatch")
	}
	if _, err := store.DecodeObject(key("other"), data); err == nil {
		t.Fatal("DecodeObject accepted a mis-addressed frame")
	}
}
