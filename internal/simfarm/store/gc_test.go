package store_test

import (
	"testing"
	"time"

	"repro/internal/simfarm/store"
)

// TestGCEnforcesBudget: a store grown past its budget by another writer
// (simulated by opening the same directory unbounded) is brought back
// under budget by an explicit GC — the case writes alone cannot fix.
func TestGCEnforcesBudget(t *testing.T) {
	dir := t.TempDir()
	p := prog(t)

	// Measure one object, then overfill the directory without a budget.
	probe := open(t, dir, store.Options{})
	mustStore(t, probe, key("a"), p)
	objSize := probe.Stats().Bytes
	mustStore(t, probe, key("b"), p)
	mustStore(t, probe, key("c"), p)
	mustStore(t, probe, key("d"), p)
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	s := open(t, dir, store.Options{MaxBytes: 2 * objSize})
	res := s.GC(0)
	if res.Evicted != 2 {
		t.Fatalf("GC evicted %d objects, want 2 (%+v)", res.Evicted, res)
	}
	if res.Objects != 2 || res.Bytes > 2*objSize {
		t.Fatalf("store after GC: %+v", res)
	}
	if res.FreedBytes != 2*objSize {
		t.Fatalf("FreedBytes = %d, want %d", res.FreedBytes, 2*objSize)
	}
	if st := s.Stats(); st.Objects != 2 || st.Evictions != 2 {
		t.Fatalf("stats after GC: %+v", st)
	}
}

// TestGCMaxAge: the age rule evicts idle objects even within budget and
// spares recently used ones.
func TestGCMaxAge(t *testing.T) {
	dir := t.TempDir()
	p := prog(t)
	s := open(t, dir, store.Options{})
	mustStore(t, s, key("old"), p)
	time.Sleep(20 * time.Millisecond)
	mustStore(t, s, key("new"), p)

	res := s.GC(10 * time.Millisecond)
	if res.Evicted != 1 || res.Objects != 1 {
		t.Fatalf("age GC: %+v", res)
	}
	if _, ok, _ := s.Load(key("old")); ok {
		t.Fatal("idle object survived age GC")
	}
	if _, ok, err := s.Load(key("new")); err != nil || !ok {
		t.Fatalf("fresh object evicted (ok=%v, err=%v)", ok, err)
	}

	// No budget, nothing stale: a sweep is a no-op.
	if res := s.GC(time.Hour); res.Evicted != 0 {
		t.Fatalf("no-op GC evicted %d objects", res.Evicted)
	}
}

// TestGCFlushesIndex: a reopened store sees the post-GC index without a
// rescan (the sweeper persists what it did).
func TestGCFlushesIndex(t *testing.T) {
	dir := t.TempDir()
	p := prog(t)
	s := open(t, dir, store.Options{})
	mustStore(t, s, key("a"), p)
	mustStore(t, s, key("b"), p)
	s.GC(0) // no-op sweep, but must flush the index

	re := open(t, dir, store.Options{})
	if st := re.Stats(); st.Objects != 2 {
		t.Fatalf("reopened store sees %d objects, want 2", st.Objects)
	}
}

// TestGCSeesExternalWriters: a sweep must cover objects another store
// handle wrote into the directory after this handle opened — writes
// alone only ever see the opener's own view.
func TestGCSeesExternalWriters(t *testing.T) {
	dir := t.TempDir()
	p := prog(t)

	s := open(t, dir, store.Options{})
	mustStore(t, s, key("mine"), p)

	other := open(t, dir, store.Options{}) // a sibling process
	mustStore(t, other, key("theirs-1"), p)
	mustStore(t, other, key("theirs-2"), p)

	res := s.GC(0)
	if res.Objects != 3 {
		t.Fatalf("GC sees %d objects, want 3 (externally written objects invisible)", res.Objects)
	}
	res = s.GC(time.Nanosecond)
	if res.Evicted != 3 || res.Objects != 0 {
		t.Fatalf("age sweep over the shared directory: %+v", res)
	}
	if _, ok, _ := other.Load(key("theirs-1")); ok {
		t.Fatal("externally written object survived the sweep")
	}
}

// TestSweeper: the background ticker garbage-collects without any
// explicit call, and stop is idempotent.
func TestSweeper(t *testing.T) {
	dir := t.TempDir()
	p := prog(t)
	s := open(t, dir, store.Options{})
	mustStore(t, s, key("idle"), p)

	stop := s.StartSweeper(5*time.Millisecond, time.Nanosecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := s.Stats(); st.Objects == 0 && st.Evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeper never collected: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}
