package store_test

import (
	"crypto/sha256"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/simfarm/store"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// testProgram translates one workload once per test binary.
var testProgram = sync.OnceValues(func() (*core.Program, error) {
	w, ok := workload.ByName("gcd")
	if !ok {
		panic("no gcd workload")
	}
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		return nil, err
	}
	return core.Translate(f, core.Options{Level: core.Level1})
})

func prog(t *testing.T) *core.Program {
	t.Helper()
	p, err := testProgram()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func key(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

// cycles runs a program on the platform; equal cycle counts are the
// round-trip equivalence criterion that matters to the farm.
func cycles(t *testing.T, p *core.Program) (int64, int64) {
	t.Helper()
	sys := platform.New(p)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	return st.C6xCycles, st.GeneratedCycles
}

func open(t *testing.T, dir string, opts store.Options) *store.Store {
	t.Helper()
	s, err := store.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustStore(t *testing.T, s *store.Store, k [sha256.Size]byte, p *core.Program) {
	t.Helper()
	if err := s.Store(k, p); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	p := prog(t)
	k := key("round-trip")

	if got, ok, err := s.Load(k); err != nil || ok || got != nil {
		t.Fatalf("empty store Load = (%v, %v, %v), want (nil, false, nil)", got, ok, err)
	}
	mustStore(t, s, k, p)

	// Same handle, then a fresh process-equivalent handle.
	for i, ld := range []*store.Store{s, open(t, dir, store.Options{})} {
		got, ok, err := ld.Load(k)
		if err != nil || !ok {
			t.Fatalf("load[%d] = (ok=%v, err=%v)", i, ok, err)
		}
		if got.Level != p.Level || got.TotalSrcInsts != p.TotalSrcInsts || len(got.Blocks) != len(p.Blocks) {
			t.Fatalf("load[%d]: metadata mismatch", i)
		}
		wc6x, wgen := cycles(t, p)
		gc6x, ggen := cycles(t, got)
		if gc6x != wc6x || ggen != wgen {
			t.Fatalf("load[%d]: cycles (%d,%d) != original (%d,%d)", i, gc6x, ggen, wc6x, wgen)
		}
	}
	st := s.Stats()
	if st.Objects != 1 || st.Puts != 1 || st.Hits != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// objectPath finds the single object file under dir.
func objectPath(t *testing.T, dir string) string {
	t.Helper()
	var paths []string
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			paths = append(paths, path)
		}
		return nil
	})
	if len(paths) != 1 {
		t.Fatalf("found %d objects, want 1", len(paths))
	}
	return paths[0]
}

// TestCorruptionTolerated is the crash-safety contract: every damaged
// shape of an object file is detected, quarantined and reported as a
// miss, and a subsequent Store repairs it.
func TestCorruptionTolerated(t *testing.T) {
	p := prog(t)
	k := key("corruption")
	corruptions := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated-header", func(b []byte) []byte { return b[:10] }},
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-7] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad-magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"wrong-version", func(b []byte) []byte { b[8] = 0xEE; return b }},
		{"flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"garbage-payload-valid-length", func(b []byte) []byte {
			for i := 90; i < len(b); i++ {
				b[i] = 0x5A
			}
			return b
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, store.Options{})
			mustStore(t, s, k, p)
			path := objectPath(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mangle(data), 0o644); err != nil {
				t.Fatal(err)
			}

			// A fresh open (no memory of the put) must see a plain miss.
			s2 := open(t, dir, store.Options{})
			got, ok, err := s2.Load(k)
			if err != nil || ok || got != nil {
				t.Fatalf("corrupt Load = (%v, %v, %v), want (nil, false, nil)", got, ok, err)
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1 (stats %+v)", st.Corrupt, st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt object not quarantined: %v", err)
			}

			// The store must rebuild, not stay poisoned.
			mustStore(t, s2, k, p)
			if _, ok, err := s2.Load(k); err != nil || !ok {
				t.Fatalf("rebuilt Load = (ok=%v, err=%v)", ok, err)
			}
		})
	}
}

// TestStaleFormatVersionRejected is the translator-generation
// invalidation contract: an object written by a previous format version
// is internally consistent — good magic, matching key, valid length and
// checksum — yet must never decode, because its key was derived without
// the current translator generation and the cached program predates the
// fused engine's contract. Unlike random corruption, this is the exact
// shape of every object in a store populated before the version bump.
func TestStaleFormatVersionRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	p := prog(t)
	k := key("stale-generation")
	mustStore(t, s, k, p)

	// Rewrite only the format version field to the previous generation.
	// The payload checksum does not cover the header, so the file stays
	// exactly as self-consistent as a genuine old-format object.
	path := objectPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], store.FormatVersion-1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The verifier must name the version mismatch, not a generic failure.
	if _, err := store.DecodeObject(k, data); err == nil ||
		!strings.Contains(err.Error(), "format version") {
		t.Fatalf("DecodeObject(stale) err = %v, want format-version mismatch", err)
	}

	// A fresh open must treat the stale object as a miss, quarantine it,
	// and let the next Store rebuild it under the current version.
	s2 := open(t, dir, store.Options{})
	if got, ok, err := s2.Load(k); err != nil || ok || got != nil {
		t.Fatalf("stale Load = (%v, %v, %v), want (nil, false, nil)", got, ok, err)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1 (stats %+v)", st.Corrupt, st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("stale object not quarantined: %v", err)
	}
	mustStore(t, s2, k, p)
	if _, ok, err := s2.Load(k); err != nil || !ok {
		t.Fatalf("rebuilt Load = (ok=%v, err=%v)", ok, err)
	}
}

// TestKeyMismatchDetected: an object renamed to another address (or a
// colliding foreign file) fails the embedded-key check.
func TestKeyMismatchDetected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	mustStore(t, s, key("original"), prog(t))
	data, err := os.ReadFile(objectPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}

	other := key("somewhere-else")
	otherPath := filepath.Join(dir, "objects", hexShard(other), hexName(other))
	if err := os.MkdirAll(filepath.Dir(otherPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(otherPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load(other); err != nil || ok {
		t.Fatalf("renamed object Load = (ok=%v, err=%v), want miss", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func hexShard(k [sha256.Size]byte) string { return hexName(k)[:2] }
func hexName(k [sha256.Size]byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 64)
	for _, b := range k {
		out = append(out, digits[b>>4], digits[b&0xF])
	}
	return string(out)
}

// TestIndexRecovery: the index is advisory — missing, garbage, or
// wrong-version index files all recover by rescanning objects/.
func TestIndexRecovery(t *testing.T) {
	p := prog(t)
	for _, tc := range []struct {
		name   string
		mangle func(indexPath string)
	}{
		{"missing", func(ip string) { os.Remove(ip) }},
		{"garbage", func(ip string) { os.WriteFile(ip, []byte("{not json"), 0o644) }},
		{"wrong-version", func(ip string) { os.WriteFile(ip, []byte(`{"version":99,"entries":[]}`), 0o644) }},
		{"truncated", func(ip string) {
			data, _ := os.ReadFile(ip)
			os.WriteFile(ip, data[:len(data)/2], 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, store.Options{})
			mustStore(t, s, key("a"), p)
			mustStore(t, s, key("b"), p)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			tc.mangle(filepath.Join(dir, "index.json"))

			s2 := open(t, dir, store.Options{})
			if st := s2.Stats(); st.Objects != 2 {
				t.Fatalf("recovered Objects = %d, want 2 (stats %+v)", st.Objects, st)
			}
			for _, k := range [][sha256.Size]byte{key("a"), key("b")} {
				if _, ok, err := s2.Load(k); err != nil || !ok {
					t.Fatalf("recovered Load = (ok=%v, err=%v)", ok, err)
				}
			}
		})
	}
}

// TestRescanRemovesTempFiles: leftovers of interrupted writes are swept
// during index recovery and never mistaken for objects.
func TestRescanRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	mustStore(t, s, key("a"), prog(t))
	stray := filepath.Join(dir, "objects", "ab", ".tmp-interrupted")
	if err := os.MkdirAll(filepath.Dir(stray), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stray, []byte("partial object write"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir, "index.json"))

	s2 := open(t, dir, store.Options{})
	if st := s2.Stats(); st.Objects != 1 {
		t.Fatalf("Objects = %d, want 1", st.Objects)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived rescan: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	p := prog(t)
	mustStore(t, s, key("probe"), p)
	objSize := s.Stats().Bytes

	// Budget for two objects; the third put evicts the least recently
	// used, which is "a" after "a" then "b" are written.
	dir2 := t.TempDir()
	s2 := open(t, dir2, store.Options{MaxBytes: 2 * objSize})
	mustStore(t, s2, key("a"), p)
	mustStore(t, s2, key("b"), p)
	mustStore(t, s2, key("c"), p)

	st := s2.Stats()
	if st.Evictions != 1 || st.Objects != 2 || st.Bytes > 2*objSize {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if _, ok, _ := s2.Load(key("a")); ok {
		t.Fatal("LRU object 'a' survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok, err := s2.Load(key(k)); err != nil || !ok {
			t.Fatalf("object %q evicted unexpectedly (ok=%v, err=%v)", k, ok, err)
		}
	}

	// A load refreshes recency: touch "b", store "d", expect "c" evicted.
	if _, ok, _ := s2.Load(key("b")); !ok {
		t.Fatal("b missing")
	}
	mustStore(t, s2, key("d"), p)
	if _, ok, _ := s2.Load(key("c")); ok {
		t.Fatal("eviction ignored LRU order: c should have been evicted")
	}
	if _, ok, _ := s2.Load(key("b")); !ok {
		t.Fatal("recently used b was evicted")
	}
}

func TestNamespaceIsolation(t *testing.T) {
	dir := t.TempDir()
	root := open(t, dir, store.Options{})
	a, b := root.Namespace("tenant-a"), root.Namespace("tenant-b")
	p := prog(t)
	k := key("shared-logical-key")

	mustStore(t, root, k, p)
	if _, ok, _ := a.Load(k); ok {
		t.Fatal("tenant-a sees root object")
	}
	mustStore(t, a, k, p)
	if _, ok, _ := b.Load(k); ok {
		t.Fatal("tenant-b sees tenant-a object")
	}
	if _, ok, err := a.Load(k); err != nil || !ok {
		t.Fatalf("tenant-a misses its own object (ok=%v, err=%v)", ok, err)
	}
	if _, ok, err := root.Load(k); err != nil || !ok {
		t.Fatalf("root misses its own object (ok=%v, err=%v)", ok, err)
	}
	// Same logical key, two namespaces = two physical objects.
	if st := root.Stats(); st.Objects != 2 {
		t.Fatalf("Objects = %d, want 2", st.Objects)
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, store.Options{})
	p := prog(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := key(string(rune('a' + i%4)))
				if g%2 == 0 {
					if err := s.Store(k, p); err != nil {
						t.Error(err)
						return
					}
				} else if _, _, err := s.Load(k); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if _, ok, err := s.Load(key(string(rune('a' + i)))); err != nil || !ok {
			t.Fatalf("object %d missing after concurrent writes (ok=%v, err=%v)", i, ok, err)
		}
	}
}
