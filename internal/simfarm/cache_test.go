package simfarm

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/march"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

func TestCacheHitMissAccounting(t *testing.T) {
	w, _ := workload.ByName("gcd")
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTranslationCache()

	// First request: miss.
	p1, hit, err := c.Translate(f, core.Options{Level: core.Level1})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first translation reported as cache hit")
	}
	// Second identical request: hit, same program pointer.
	p2, hit, err := c.Translate(f, core.Options{Level: core.Level1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("repeat translation missed the cache")
	}
	if p1 != p2 {
		t.Error("cache hit returned a different program")
	}
	// Different level: miss.
	if _, hit, err = c.Translate(f, core.Options{Level: core.Level2}); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("different level reported as cache hit")
	}
	if got, want := c.Hits(), int64(1); got != want {
		t.Errorf("Hits() = %d, want %d", got, want)
	}
	if got, want := c.Misses(), int64(2); got != want {
		t.Errorf("Misses() = %d, want %d", got, want)
	}
	if got, want := c.Len(), 2; got != want {
		t.Errorf("Len() = %d, want %d", got, want)
	}
}

func TestProgramKeyLevelSensitivity(t *testing.T) {
	var h ELFHash
	for i := range h {
		h[i] = byte(i)
	}
	base := ProgramKey(h, core.Options{Level: core.Level1})
	if ProgramKey(h, core.Options{Level: core.Level2}) == base {
		t.Error("key ignores the detail level")
	}
	var h2 ELFHash
	h2[0] = 0xFF
	if ProgramKey(h2, core.Options{Level: core.Level1}) == base {
		t.Error("key ignores the ELF contents")
	}
}

func TestProgramKeyICacheOnlyAtLevel3(t *testing.T) {
	var h ELFHash
	big := march.Default()
	big.ICache = march.CacheGeom{Sets: 128, Ways: 4, LineBytes: 8, MissPenalty: 8}

	// Below Level3 the translator cannot observe the I-cache geometry, so
	// a cache-config sweep must share one translated program.
	for _, l := range []core.Level{core.Level0, core.Level1, core.Level2} {
		def := ProgramKey(h, core.Options{Level: l})
		alt := ProgramKey(h, core.Options{Level: l, Desc: big})
		if def != alt {
			t.Errorf("L%d: I-cache geometry leaked into the key", int(l))
		}
	}
	// At Level3 it is baked into the generated cache-analysis code.
	def := ProgramKey(h, core.Options{Level: core.Level3})
	alt := ProgramKey(h, core.Options{Level: core.Level3, Desc: big})
	if def == alt {
		t.Error("L3: I-cache geometry missing from the key")
	}
}

func TestProgramKeyRuntimeRelevantDescFields(t *testing.T) {
	var h ELFHash
	// IOWaitCycles is read from the cached program's Desc by the platform
	// at run time, so it must always split the key.
	d := march.Default()
	d.IOWaitCycles = 7
	if ProgramKey(h, core.Options{Level: core.Level1, Desc: d}) ==
		ProgramKey(h, core.Options{Level: core.Level1}) {
		t.Error("IOWaitCycles missing from the key")
	}
	// BoothMul only affects the dynamic simulators; sweeping it must hit.
	b := march.Default()
	b.BoothMul = true
	if ProgramKey(h, core.Options{Level: core.Level3, Desc: b}) !=
		ProgramKey(h, core.Options{Level: core.Level3}) {
		t.Error("BoothMul spuriously split the key")
	}
	// Branch costs feed the static cycle calculation at every level.
	br := march.Default()
	br.Branch.Mispredict = 9
	if ProgramKey(h, core.Options{Level: core.Level1, Desc: br}) ==
		ProgramKey(h, core.Options{Level: core.Level1}) {
		t.Error("branch costs missing from the key")
	}
}

func TestProgramKeyCanonicalDefaults(t *testing.T) {
	var h ELFHash
	// nil Desc and an explicit march.Default() are the same translation.
	if ProgramKey(h, core.Options{Level: core.Level2}) !=
		ProgramKey(h, core.Options{Level: core.Level2, Desc: march.Default()}) {
		t.Error("nil Desc and march.Default() key differently")
	}
	// Zero InlineCacheThreshold means 24 inside core.Translate.
	a := ProgramKey(h, core.Options{Level: core.Level3, InlineCacheProbe: true})
	b := ProgramKey(h, core.Options{Level: core.Level3, InlineCacheProbe: true, InlineCacheThreshold: 24})
	if a != b {
		t.Error("default InlineCacheThreshold keys differently from explicit 24")
	}
	// Ablation switches below the level they act at must not split keys.
	if ProgramKey(h, core.Options{Level: core.Level1, SingleDrainCorrection: true}) !=
		ProgramKey(h, core.Options{Level: core.Level1}) {
		t.Error("SingleDrainCorrection split a Level1 key")
	}
	if ProgramKey(h, core.Options{Level: core.Level2, SingleDrainCorrection: true}) ==
		ProgramKey(h, core.Options{Level: core.Level2}) {
		t.Error("SingleDrainCorrection missing from a Level2 key")
	}
}

func TestCacheConcurrentSingleTranslation(t *testing.T) {
	w, _ := workload.ByName("sieve")
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTranslationCache()
	const n = 16
	progs := make([]*core.Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := c.Translate(f, core.Options{Level: core.Level3})
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	if got := c.Misses(); got != 1 {
		t.Errorf("concurrent identical requests ran %d translations, want 1", got)
	}
	if got := c.Hits(); got != n-1 {
		t.Errorf("Hits() = %d, want %d", got, n-1)
	}
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("request %d got a different program", i)
		}
	}
}
