// The equivalence test lives in an external test package so it can
// import the top-level repro package (which itself imports simfarm for
// the table helpers) without an import cycle: repro.Measure is the
// direct, farm-free measurement path and serves as the oracle the farm
// must match bit-for-bit.
package simfarm_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/simfarm"
)

// TestFarmMatchesDirectMeasure runs every workload at every level both
// through the farm and through repro.Measure and requires identical
// cycle counts and derived metrics for the same job.
func TestFarmMatchesDirectMeasure(t *testing.T) {
	levels := repro.AllLevels()
	jobs := simfarm.SweepJobs(repro.Workloads(), levels, nil)
	farm := simfarm.New(simfarm.Config{Workers: 8})
	results, bs := farm.Run(jobs)
	if bs.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("farm: %s L%d: %v", r.Name, int(r.Level), r.Err)
			}
		}
	}
	byJob := map[string]simfarm.Result{}
	for _, r := range results {
		byJob[r.Name+"/"+r.Level.String()] = r
	}

	for _, w := range repro.Workloads() {
		m, err := repro.Measure(w, levels...)
		if err != nil {
			t.Fatalf("direct: %s: %v", w.Name, err)
		}
		for _, l := range levels {
			r, ok := byJob[w.Name+"/"+l.String()]
			if !ok {
				t.Fatalf("farm produced no result for %s L%d", w.Name, int(l))
			}
			lr := m.Levels[l]
			if r.Instructions != m.Instructions {
				t.Errorf("%s L%d: Instructions = %d, direct %d", w.Name, int(l), r.Instructions, m.Instructions)
			}
			if r.BoardCycles != m.BoardCycles {
				t.Errorf("%s L%d: BoardCycles = %d, direct %d", w.Name, int(l), r.BoardCycles, m.BoardCycles)
			}
			if r.C6xCycles != lr.C6xCycles {
				t.Errorf("%s L%d: C6xCycles = %d, direct %d", w.Name, int(l), r.C6xCycles, lr.C6xCycles)
			}
			if r.GeneratedCycles != lr.GeneratedCycles {
				t.Errorf("%s L%d: GeneratedCycles = %d, direct %d", w.Name, int(l), r.GeneratedCycles, lr.GeneratedCycles)
			}
			for _, q := range []struct {
				name      string
				got, want float64
			}{
				{"BoardCPI", r.BoardCPI, m.BoardCPI},
				{"BoardMIPS", r.BoardMIPS, m.BoardMIPS},
				{"BoardSeconds", r.BoardSeconds, m.BoardSeconds},
				{"CPI", r.CPI, lr.CPI},
				{"MIPS", r.MIPS, lr.MIPS},
				{"Seconds", r.Seconds, lr.Seconds},
				{"DeviationPct", r.DeviationPct, lr.DeviationPct},
			} {
				if q.got != q.want && !(math.IsNaN(q.got) && math.IsNaN(q.want)) {
					t.Errorf("%s L%d: %s = %v, direct %v", w.Name, int(l), q.name, q.got, q.want)
				}
			}
		}
	}
}

// TestTablesRunThroughFarm checks that the repro table helpers, now
// rewired through the shared farm, keep producing measurements and
// populate the farm's translation cache.
func TestTablesRunThroughFarm(t *testing.T) {
	t1, err := repro.MeasureTable1()
	if err != nil {
		t.Fatal(err)
	}
	if t1.BoardCPI <= 0 {
		t.Errorf("Table1 board CPI = %v", t1.BoardCPI)
	}
	for _, l := range repro.AllLevels() {
		if t1.CPI[l] <= 0 {
			t.Errorf("Table1 CPI[L%d] = %v", int(l), t1.CPI[l])
		}
	}
	// Calling it again must be served from the shared farm's cache.
	before := repro.Farm().Stats()
	if _, err := repro.MeasureTable1(); err != nil {
		t.Fatal(err)
	}
	after := repro.Farm().Stats()
	if after.CacheMisses != before.CacheMisses {
		t.Errorf("repeat MeasureTable1 re-translated: misses %d -> %d", before.CacheMisses, after.CacheMisses)
	}
	if after.CacheHits <= before.CacheHits {
		t.Errorf("repeat MeasureTable1 did not hit the cache")
	}

	rows, err := repro.MeasureTable2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Table2 rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Instructions <= 0 || r.RTLSimCycles <= 0 {
			t.Errorf("Table2 %s: empty row %+v", r.Name, r)
		}
		for _, l := range []core.Level{core.Level1, core.Level2, core.Level3} {
			if r.TranslationSeconds[l] <= 0 {
				t.Errorf("Table2 %s: no translation time at L%d", r.Name, int(l))
			}
		}
	}
}
