package server_test

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/simfarm/server"
	"repro/internal/workload"
)

// fakeClock is a settable retention clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newServerCfg(t *testing.T, cfg server.Config) func(tenant string) *client {
	t.Helper()
	ts := httptest.NewServer(mustNew(t, cfg))
	t.Cleanup(ts.Close)
	return func(tenant string) *client {
		return &client{t: t, base: ts.URL, tenant: tenant, http: ts.Client()}
	}
}

// TestRetentionMaxRecords: finished records beyond RetainMax are pruned
// oldest-first; pruned ids answer 404 like never-existing ones.
func TestRetentionMaxRecords(t *testing.T) {
	clock := &fakeClock{now: time.Now()}
	mk := newServerCfg(t, server.Config{Workers: 2, RetainMax: 2, Clock: clock.Now})
	c := mk("")
	var ids []string
	for i := 0; i < 4; i++ {
		job := c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}})
		ids = append(ids, job.ID)
		clock.Advance(time.Second) // distinct creation times
	}
	// A submission prunes before registering, so after the 4th submit at
	// most (RetainMax finished + the new one) remain; the oldest must be
	// gone once one more arrives.
	c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1}})
	c.do("GET", "/v1/jobs/"+ids[0], nil, http.StatusNotFound, nil)
	// The most recent finished records survive.
	var last server.JobResponse
	c.do("GET", "/v1/jobs/"+ids[3], nil, http.StatusOK, &last)
	if last.Status != "done" {
		t.Errorf("recent record lost: %+v", last)
	}
}

// TestRetentionTTL: finished records older than RetainTTL are pruned on
// the next submission or stats call.
func TestRetentionTTL(t *testing.T) {
	clock := &fakeClock{now: time.Now()}
	mk := newServerCfg(t, server.Config{Workers: 2, RetainTTL: time.Hour, Clock: clock.Now})
	c := mk("")
	old := c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}})
	clock.Advance(30 * time.Minute)
	var alive server.JobResponse
	c.do("GET", "/v1/jobs/"+old.ID, nil, http.StatusOK, &alive)

	clock.Advance(time.Hour) // now 1.5h old
	c.do("GET", "/v1/stats", nil, http.StatusOK, nil)
	c.do("GET", "/v1/jobs/"+old.ID, nil, http.StatusNotFound, nil)
}

// submitSoCAndWait submits a SoC sweep and blocks until done.
func (c *client) submitSoCAndWait(req server.SoCSubmitRequest) server.JobResponse {
	c.t.Helper()
	var sub server.SubmitResponse
	c.do("POST", "/v1/soc-jobs", req, http.StatusAccepted, &sub)
	deadline := time.Now().Add(time.Minute)
	for {
		var job server.JobResponse
		c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
		if job.Status == "done" {
			return job
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("soc job %s did not finish", sub.ID)
		}
	}
}

// TestSoCJobsOverHTTP submits a multi-core sweep and checks every core's
// output against the workload expectations.
func TestSoCJobsOverHTTP(t *testing.T) {
	_, mk := newServer(t, nil)
	c := mk("soc-tenant")
	job := c.submitSoCAndWait(server.SoCSubmitRequest{
		Workloads:  []string{"mc-pingpong"},
		CoreCounts: []int{2},
		Quanta:     []int64{1, 16},
		Level:      1,
	})
	if job.Kind != "soc" {
		t.Fatalf("kind = %q, want soc", job.Kind)
	}
	if job.SoCStats == nil || job.SoCStats.Failed != 0 {
		t.Fatalf("soc stats: %+v", job.SoCStats)
	}
	if len(job.SoCResults) != 2 {
		t.Fatalf("got %d soc results, want 2", len(job.SoCResults))
	}
	mw, _ := workload.MCByName("mc-pingpong", 2)
	for _, r := range job.SoCResults {
		if len(r.PerCore) != 2 {
			t.Fatalf("%s: per-core results: %+v", r.Config, r.PerCore)
		}
		for i, pc := range r.PerCore {
			if err := workload.SameOutput(pc.Output, mw.Cores[i].Expected); err != nil {
				t.Errorf("%s core %d: %v", r.Config, i, err)
			}
		}
	}
	// The quantum sweep shares translations: second job all hits.
	if job.SoCStats.CacheMisses != 2 || job.SoCStats.CacheHits != 2 {
		t.Errorf("cache traffic: %+v", job.SoCStats)
	}
}

// TestSoCSubmitRejects covers the validation paths.
func TestSoCSubmitRejects(t *testing.T) {
	_, mk := newServer(t, nil)
	c := mk("")
	bad := []server.SoCSubmitRequest{
		{},
		{Workloads: []string{"nope"}, CoreCounts: []int{2}, Quanta: []int64{1}},
		{Workloads: []string{"mc-fir"}, CoreCounts: []int{0}, Quanta: []int64{1}},
		{Workloads: []string{"mc-fir"}, CoreCounts: []int{2}, Quanta: []int64{0}},
		{Workloads: []string{"mc-fir"}, CoreCounts: []int{2}, Quanta: []int64{1}, Level: 9},
		{Workloads: []string{"mc-fir"}, CoreCounts: []int{2}, Quanta: []int64{1}, Arbitrations: []string{"lifo"}},
		{Workloads: []string{"mc-pingpong"}, CoreCounts: []int{1}, Quanta: []int64{1}}, // empty sweep
	}
	for _, req := range bad {
		c.do("POST", "/v1/soc-jobs", req, http.StatusBadRequest, nil)
	}
}
