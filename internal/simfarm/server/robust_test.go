package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/server"
)

// TestHealthEndpoints: /healthz is always 200 (process liveness);
// /readyz flips to 503 once the server drains.
func TestHealthEndpoints(t *testing.T) {
	s, ts, _ := distServer(t, server.Config{})

	get := func(path string) (int, server.HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h server.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, h
	}

	if code, h := get("/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v, want 200 ok", code, h)
	}
	if code, h := get("/readyz"); code != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Fatalf("readyz = %d %+v, want 200 ok", code, h)
	}
	if _, h := get("/readyz"); h.Dispatch != "closed" {
		t.Fatalf("fresh dispatch breaker = %q, want closed", h.Dispatch)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code, h := get("/readyz"); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining readyz = %d %+v, want 503 draining", code, h)
	}
	// Liveness is unaffected: a draining server must not be restarted.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", code)
	}
}

// completeErr reports a task as failed from the evil worker.
func (e *evilWorker) completeErr(task *dist.Task, msg string) {
	e.t.Helper()
	e.post("/v1/workers/"+e.id+"/complete", dist.TaskResult{
		TaskID: task.ID, Index: task.Index, Worker: e.id, Err: msg,
	}, nil)
}

// TestLastWorkerErrorSurfaced: a task that burns its whole delivery
// budget must report the worker's actual error through GET
// /v1/jobs/{id}, not a bare "lease expired".
func TestLastWorkerErrorSurfaced(t *testing.T) {
	_, ts, mk := distServer(t, server.Config{LeaseTTL: 300 * time.Millisecond, TaskRetries: 2})
	c := mk("")

	evil := newEvilWorker(t, ts.URL)
	var sub server.SubmitResponse
	c.do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}}, http.StatusAccepted, &sub)

	// Attempt 1: the worker reports an execution failure (requeued,
	// budget left). Attempt 2: the worker leases the retry and vanishes;
	// the lease expires with the budget spent.
	evil.completeErr(evil.lease(), "simulated device failure")
	if task := evil.lease(); task == nil {
		t.Fatal("retry not leased")
	}

	var job server.JobResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
		if job.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never failed over")
		}
	}
	if job.Status != "done" || len(job.Results) != 1 {
		t.Fatalf("job = %+v, want done with 1 result", job)
	}
	got := job.Results[0].Error
	if !strings.Contains(got, "lease expired after 2 attempts") ||
		!strings.Contains(got, "last worker error: simulated device failure") {
		t.Fatalf("surfaced error = %q, want lease expiry with the worker's error", got)
	}
}

// TestWorkerReregistersAfterServerRestart: a server restart invalidates
// every worker ID (fresh queue). The worker must notice the 410, come
// back with a new registration, and keep executing work — without being
// restarted itself.
func TestWorkerReregistersAfterServerRestart(t *testing.T) {
	// The "restart" swaps a fresh Server behind a stable URL, exactly
	// what a worker sees when the process on the other end bounces.
	// Workers: 4 makes a local fallback visible: a locally-executed batch
	// reports the farm pool size (4), a distributed one the live worker
	// count (1).
	var cur atomic.Pointer[server.Server]
	cur.Store(mustNew(t, server.Config{Workers: 4}))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	w := startWorker(t, ts.URL, dist.WorkerConfig{Name: "survivor", Poll: 10 * time.Millisecond})
	oldID := w.ID()

	cur.Store(mustNew(t, server.Config{Workers: 4}))

	// The worker's next lease poll gets 410 Gone (the fresh queue's
	// instance nonce makes the old ID unknown) and re-registers; wait
	// until the new server sees it live.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := metrics(t, ts.URL); m["cabt_workers_live"] == "1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never re-registered with the restarted server")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if w.ID() == oldID {
		t.Fatalf("worker kept its pre-restart ID %q", oldID)
	}

	// And it actually executes work for the new server, distributed.
	c := &client{t: t, base: ts.URL, tenant: "", http: http.DefaultClient}
	job := c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0, 1}})
	if job.Stats == nil || job.Stats.Failed != 0 {
		t.Fatalf("post-restart batch: %+v", job)
	}
	// 1 live worker at dispatch means the batch went distributed (a
	// local fallback would report the farm pool, 4).
	if job.Stats.Workers != 1 {
		t.Fatalf("post-restart batch ran with %d workers, want 1 (local fallback?)", job.Stats.Workers)
	}
}

// TestDispatchBreakerFallsBackToLocal: persistent distributed failures
// trip the dispatch breaker, after which batches run locally — and
// succeed — even though a (broken) worker is still registered.
func TestDispatchBreakerFallsBackToLocal(t *testing.T) {
	// Workers: 2 distinguishes the paths in BatchStats: local execution
	// reports the farm pool (2), distributed the live worker count (1).
	_, ts, mk := distServer(t, server.Config{Workers: 2, LeaseTTL: time.Minute, TaskRetries: 1})
	c := mk("")

	evil := newEvilWorker(t, ts.URL)
	// Three consecutive batches whose only task the worker fails
	// permanently (TaskRetries 1: the first error exhausts the budget).
	for i := 0; i < 3; i++ {
		var sub server.SubmitResponse
		c.do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}}, http.StatusAccepted, &sub)
		evil.completeErr(evil.lease(), "rotten worker")
		var job server.JobResponse
		c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
		if job.Status != "done" || job.Stats.Failed != 1 {
			t.Fatalf("sacrificial batch %d: %+v", i, job)
		}
	}

	if m := metrics(t, ts.URL); m[`cabt_dispatch_breaker_state`] != "1" {
		t.Fatalf("breaker state = %s after 3 failed batches, want 1 (open)", m[`cabt_dispatch_breaker_state`])
	}

	// The next batch bypasses the unhealthy fleet entirely: it runs
	// locally on the farm pool and succeeds.
	job := c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}})
	if job.Stats == nil || job.Stats.Failed != 0 {
		t.Fatalf("degraded batch: %+v", job)
	}
	if job.Stats.Workers != 2 {
		t.Fatalf("degraded batch reports %d workers, want 2 (local farm pool)", job.Stats.Workers)
	}
	if m := metrics(t, ts.URL); m["cabt_dispatch_breaker_refusals_total"] == "0" {
		t.Fatal("no breaker refusal recorded")
	}
}
