package server

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/simfarm"
	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/store"
)

// This file is the server's distribution layer: dispatching batches to
// the leased work queue when workers are registered, replaying the
// durable journal on startup, the /v1/metrics endpoint, submission
// admission (drain + rate limit) and graceful shutdown.

// admitSubmission applies the submission gates shared by /v1/jobs and
// /v1/soc-jobs: a draining server refuses new work outright (503, so a
// load balancer retries elsewhere), and a tenant over its rate limit
// gets 429 with Retry-After.
func (s *Server) admitSubmission(w http.ResponseWriter, tenant string) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	if ok, retry := s.limiter.Allow(tenant); !ok {
		s.rateLimited.Add(1)
		secs := int(math.Ceil(retry.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded, retry in %ds", secs)
		return false
	}
	return true
}

// journalAppend records rec if a journal is configured. Append failure
// (disk full, yanked volume) must not fail the batch — the results
// still live in memory — so it degrades to a logged warning.
func (s *Server) journalAppend(rec dist.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		slog.Warn("journal append failed", "id", rec.ID, "err", err)
	}
}

// replayJournal rebuilds the job table from the journal: fold records
// by batch ID (duplicates are idempotent), fail batches that were still
// running when the previous process died, apply retention, and compact
// the file so it does not grow across restarts. Called from New before
// the server accepts traffic.
func (s *Server) replayJournal() {
	now := s.now()
	s.mu.Lock()
	for _, r := range s.journal.Records() {
		if n := idNumber(r.ID); n > s.nextID {
			s.nextID = n
		}
		rec := s.jobs[r.ID]
		if rec == nil {
			// Normally created by the Submitted record; a Finished or
			// Failed whose Submitted was lost to tail damage still
			// carries everything the record needs.
			rec = &jobRecord{id: r.ID, tenant: r.Tenant, created: r.Time, kind: r.Kind, jobs: r.Jobs, done: make(chan struct{})}
			s.jobs[r.ID] = rec
			s.submitted++
		}
		finished := func() bool {
			select {
			case <-rec.done:
				return true
			default:
				return false
			}
		}
		switch r.Type {
		case dist.RecordSubmitted, dist.RecordStarted:
			// Identity only; already folded above.
		case dist.RecordFinished:
			if finished() {
				continue // duplicate replay
			}
			rec.results = r.Results
			if r.Stats != nil {
				rec.stats = *r.Stats
			}
			rec.socResults = r.SoCResults
			if r.SoCStats != nil {
				rec.socStats = *r.SoCStats
			}
			rec.finished = r.Time
			close(rec.done)
		case dist.RecordFailed:
			if finished() {
				continue
			}
			rec.err = r.Error
			rec.finished = r.Time
			close(rec.done)
		}
	}

	// A batch submitted but never finished was executing in the previous
	// process; its in-flight state died with it. Fail it durably so the
	// submitter gets a definitive answer instead of "running" forever.
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
		default:
			rec.err = "interrupted by server restart"
			rec.finished = now
			close(rec.done)
			s.journalAppend(dist.Record{
				Type: dist.RecordFailed, ID: rec.id, Tenant: rec.tenant,
				Kind: rec.kind, Jobs: rec.jobs, Time: now, Error: rec.err,
			})
		}
	}

	s.prune(now)

	// Compact: rewrite the journal as exactly the surviving records, in
	// ID order, two records per batch. Replayed-and-pruned batches stop
	// being resurrected, and the file stays proportional to retention.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return idNumber(ids[i]) < idNumber(ids[j]) })
	var recs []dist.Record
	for _, id := range ids {
		rec := s.jobs[id]
		recs = append(recs, dist.Record{
			Type: dist.RecordSubmitted, ID: rec.id, Tenant: rec.tenant,
			Kind: rec.kind, Jobs: rec.jobs, Time: rec.created,
		})
		jr := dist.Record{ID: rec.id, Tenant: rec.tenant, Kind: rec.kind, Jobs: rec.jobs, Time: rec.finished}
		if rec.err != "" {
			jr.Type = dist.RecordFailed
			jr.Error = rec.err
		} else {
			jr.Type = dist.RecordFinished
			if rec.kind == "soc" {
				jr.SoCResults = rec.socResults
				stats := rec.socStats
				jr.SoCStats = &stats
			} else {
				jr.Results = rec.results
				stats := rec.stats
				jr.Stats = &stats
			}
		}
		recs = append(recs, jr)
	}
	s.mu.Unlock()
	if err := s.journal.Compact(recs); err != nil {
		slog.Warn("journal compact failed", "err", err)
	}
}

// idNumber extracts N from "job-N" (0 when malformed).
func idNumber(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// startSweeper runs periodic lease expiry until the returned stop
// function is called.
func (s *Server) startSweeper() (stop func()) {
	interval := s.queue.LeaseTTL() / 2
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.queue.Expire()
			}
		}
	}()
	return func() { close(done) }
}

// --- dispatch ---

// distributed reports whether a batch should go to the worker queue:
// only when at least one worker is live and the dispatch breaker
// admits it. The decision is taken once per batch at submission; with
// no workers (or a tripped breaker) the server executes in-process on
// the tenant's farm, bit-identical to the pre-distribution behavior —
// distribution is an optimization, so degrading it is always safe.
func (s *Server) distributed() bool {
	if s.queue.LiveWorkers() == 0 || s.draining.Load() {
		return false
	}
	return s.dispatch.Allow()
}

// dispatchOutcome feeds a finished distributed batch back to the
// breaker: a batch with any permanently-failed task is a failure (the
// worker fleet is unhealthy — retries and lease expiries were already
// exhausted before a task fails), a clean batch is a success. Three
// consecutive failed batches trip the breaker and the server falls
// back to local execution until a cooldown probe succeeds.
func (s *Server) dispatchOutcome(failed int) {
	if failed > 0 {
		s.dispatch.Failure()
	} else {
		s.dispatch.Success()
	}
}

// runSim executes a single-core batch, distributed when workers are
// available, locally otherwise.
func (s *Server) runSim(rec *jobRecord, tenant string, jobs []simfarm.Job) ([]simfarm.Result, simfarm.BatchStats) {
	if !s.distributed() {
		return s.farm(tenant).Run(jobs)
	}
	s.journalAppend(dist.Record{Type: dist.RecordStarted, ID: rec.id, Tenant: tenant, Kind: rec.kind, Jobs: rec.jobs, Time: s.now()})
	start := time.Now()
	workers := s.queue.LiveWorkers()
	tasks := make([]dist.Task, len(jobs))
	for i := range jobs {
		tasks[i] = dist.Task{Batch: rec.id, Index: i, Tenant: tenant, Kind: dist.KindSim, Sim: &jobs[i]}
	}
	results := make([]simfarm.Result, len(jobs))
	ch := s.queue.Enqueue(tasks)
	failed := 0
	for range jobs {
		tr := <-ch
		if tr.Err != "" || tr.Sim == nil {
			failed++
			j := jobs[tr.Index]
			msg := tr.Err
			if msg == "" {
				msg = "worker returned no result"
			}
			results[tr.Index] = simfarm.Result{
				Index: tr.Index, Name: j.Workload.Name, Level: j.Options.Level,
				Config: j.Config, Error: fmt.Sprintf("distributed execution failed: %s", msg),
			}
			continue
		}
		r := *tr.Sim
		r.Index = tr.Index
		r.SetCacheOutcome(tr.CacheState)
		results[tr.Index] = r
	}
	s.dispatchOutcome(failed)
	return results, simfarm.SummarizeResults(results, time.Since(start), workers)
}

// runSoC is runSim for multi-core batches.
func (s *Server) runSoC(rec *jobRecord, tenant string, jobs []simfarm.SoCJob) ([]simfarm.SoCResult, simfarm.SoCBatchStats) {
	if !s.distributed() {
		return s.farm(tenant).RunSoC(jobs)
	}
	s.journalAppend(dist.Record{Type: dist.RecordStarted, ID: rec.id, Tenant: tenant, Kind: rec.kind, Jobs: rec.jobs, Time: s.now()})
	start := time.Now()
	workers := s.queue.LiveWorkers()
	tasks := make([]dist.Task, len(jobs))
	for i := range jobs {
		tasks[i] = dist.Task{Batch: rec.id, Index: i, Tenant: tenant, Kind: dist.KindSoC, SoC: &jobs[i]}
	}
	results := make([]simfarm.SoCResult, len(jobs))
	ch := s.queue.Enqueue(tasks)
	failed := 0
	for range jobs {
		tr := <-ch
		if tr.Err != "" || tr.SoC == nil {
			failed++
			j := jobs[tr.Index]
			msg := tr.Err
			if msg == "" {
				msg = "worker returned no result"
			}
			results[tr.Index] = simfarm.SoCResult{
				Index: tr.Index, Name: j.Name, Config: j.Config, CoreCount: len(j.Cores),
				Quantum: j.Quantum, Arbitration: j.Arbitration.String(),
				Error: fmt.Sprintf("distributed execution failed: %s", msg),
			}
			continue
		}
		r := *tr.SoC
		r.Index = tr.Index
		r.SetCacheCounts(tr.CacheHits, tr.CacheMisses)
		results[tr.Index] = r
	}
	s.dispatchOutcome(failed)
	return results, simfarm.SummarizeSoCResults(results, time.Since(start), workers)
}

// --- shutdown ---

// Drain gracefully quiesces the server: new submissions are refused
// (503), the queue stops granting leases and fails its un-leased
// backlog, and Drain waits — up to ctx — for every running batch to
// finish and be journaled. In-flight distributed tasks complete on
// their workers; in-flight local batches run to completion. After a
// clean Drain, a restart replays every batch as finished.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Drain()
	s.mu.Lock()
	running := make([]*jobRecord, 0)
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
		default:
			running = append(running, rec)
		}
	}
	s.mu.Unlock()
	for _, rec := range running {
		select {
		case <-rec.done:
		case <-ctx.Done():
			return fmt.Errorf("drain: %d batches still running: %w", stillRunning(running), ctx.Err())
		}
	}
	return nil
}

func stillRunning(recs []*jobRecord) int {
	n := 0
	for _, rec := range recs {
		select {
		case <-rec.done:
		default:
			n++
		}
	}
	return n
}

// --- metrics ---

// registerMetrics wires the server's state into its obs registry as
// Func bridges sampled at scrape time — never double-counted against
// the stats the queue, store and job table already maintain. Every
// pre-existing /v1/metrics series keeps its exact name and integral
// rendering, so line-oriented consumers (grep-based smoke checks) keep
// working across the move to full Prometheus exposition.
func (s *Server) registerMetrics() {
	reg := s.reg
	gauge := func(name, help string, fn func() float64) { reg.Func(name, help, obs.KindGauge, fn) }
	counter := func(name, help string, fn func() float64) { reg.Func(name, help, obs.KindCounter, fn) }

	gauge("cabt_up", "server is serving", func() float64 { return 1 })
	gauge("cabt_uptime_seconds", "seconds since server start",
		func() float64 { return float64(int64(time.Since(s.start).Seconds())) })
	gauge("cabt_draining", "1 while the server refuses new submissions",
		func() float64 { return float64(b2i(s.draining.Load())) })
	gauge("cabt_tenants", "tenants with an instantiated farm",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.tenants)) })
	counter("cabt_jobs_submitted_total", "batches submitted",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.submitted) })
	gauge("cabt_jobs_running", "batches currently executing",
		func() float64 { r, _, _ := s.jobCounts(); return float64(r) })
	gauge("cabt_jobs_done", "retained batches that finished cleanly",
		func() float64 { _, d, _ := s.jobCounts(); return float64(d) })
	gauge("cabt_jobs_failed", "retained batches that failed",
		func() float64 { _, _, f := s.jobCounts(); return float64(f) })
	counter("cabt_rate_limited_total", "submissions refused by the rate limiter",
		func() float64 { return float64(s.rateLimited.Load()) })

	qstat := func(f func(dist.QueueStats) int64) func() float64 {
		return func() float64 { return float64(f(s.queue.Stats())) }
	}
	gauge("cabt_queue_pending", "tasks waiting for a lease", qstat(func(q dist.QueueStats) int64 { return int64(q.Pending) }))
	gauge("cabt_queue_leased", "tasks currently leased", qstat(func(q dist.QueueStats) int64 { return int64(q.Leased) }))
	counter("cabt_queue_enqueued_total", "tasks enqueued", qstat(func(q dist.QueueStats) int64 { return q.Enqueued }))
	counter("cabt_queue_completed_total", "tasks completed", qstat(func(q dist.QueueStats) int64 { return q.Completed }))
	counter("cabt_queue_failed_total", "tasks failed permanently", qstat(func(q dist.QueueStats) int64 { return q.Failed }))
	counter("cabt_queue_lease_expiries_total", "leases expired", qstat(func(q dist.QueueStats) int64 { return q.Expiries }))
	counter("cabt_queue_retries_total", "task redeliveries after expiry", qstat(func(q dist.QueueStats) int64 { return q.Retries }))
	gauge("cabt_workers_live", "workers with a fresh heartbeat", qstat(func(q dist.QueueStats) int64 { return int64(q.LiveWorkers) }))

	gauge("cabt_dispatch_breaker_state", "dispatch breaker: 0 closed, 1 open, 2 half-open",
		func() float64 { return float64(s.dispatch.State()) })
	counter("cabt_dispatch_breaker_refusals_total", "batches sent local by an open dispatch breaker",
		func() float64 { return float64(s.dispatch.Refusals()) })

	if s.journal != nil {
		gauge("cabt_journal_segments", "journal segments on disk (including active)",
			func() float64 { return float64(s.journal.Segments()) })
		gauge("cabt_journal_epoch", "journal compaction epoch",
			func() float64 { return float64(s.journal.Epoch()) })
		gauge("cabt_journal_repaired_records", "records dropped by tail repair at last open",
			func() float64 { return float64(s.journal.Repaired()) })
	}

	if s.cfg.Store != nil {
		sstat := func(f func(store.Stats) int64) func() float64 {
			return func() float64 { return float64(f(s.cfg.Store.Stats())) }
		}
		gauge("cabt_store_objects", "objects in the persistent store", sstat(func(t store.Stats) int64 { return int64(t.Objects) }))
		gauge("cabt_store_bytes", "bytes in the persistent store", sstat(func(t store.Stats) int64 { return t.Bytes }))
		counter("cabt_store_loads_total", "store loads", sstat(func(t store.Stats) int64 { return t.Loads }))
		counter("cabt_store_hits_total", "store load hits", sstat(func(t store.Stats) int64 { return t.Hits }))
		counter("cabt_store_puts_total", "store puts", sstat(func(t store.Stats) int64 { return t.Puts }))
		counter("cabt_store_corrupt_total", "corrupt objects detected", sstat(func(t store.Stats) int64 { return t.Corrupt }))
		counter("cabt_store_evictions_total", "objects evicted", sstat(func(t store.Stats) int64 { return t.Evictions }))
	}
	if s.storeSrv != nil {
		rstat := func(f func(dist.StoreServerStats) int64) func() float64 {
			return func() float64 { return float64(f(s.storeSrv.Stats())) }
		}
		counter("cabt_store_remote_gets_total", "store-protocol GETs served", rstat(func(t dist.StoreServerStats) int64 { return t.Gets }))
		counter("cabt_store_remote_hits_total", "store-protocol GET hits", rstat(func(t dist.StoreServerStats) int64 { return t.Hits }))
		counter("cabt_store_remote_misses_total", "store-protocol GET misses", rstat(func(t dist.StoreServerStats) int64 { return t.Misses }))
		counter("cabt_store_remote_not_modified_total", "store-protocol 304 responses", rstat(func(t dist.StoreServerStats) int64 { return t.NotModified }))
		counter("cabt_store_remote_puts_total", "store-protocol PUTs accepted", rstat(func(t dist.StoreServerStats) int64 { return t.Puts }))
		counter("cabt_store_remote_bad_puts_total", "store-protocol PUTs rejected", rstat(func(t dist.StoreServerStats) int64 { return t.BadPuts }))
	}
}

// jobCounts scans the job table: running, done, failed.
func (s *Server) jobCounts() (running, done, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
			if rec.err != "" {
				failed++
			} else {
				done++
			}
		default:
			running++
		}
	}
	return running, done, failed
}

// handleMetrics serves GET /v1/metrics in the Prometheus text
// exposition format (0.0.4): the server's own bridges followed by the
// process-global registry (farm stage timings, cache tiers, SoC
// speculation counters). It is an operator endpoint (scraped, not
// tenant-facing) and deliberately discloses no tenant names.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.reg.WritePrometheus(&b)
	obs.Default.WritePrometheus(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
