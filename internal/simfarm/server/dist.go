package server

import (
	"context"
	"fmt"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/simfarm"
	"repro/internal/simfarm/dist"
)

// This file is the server's distribution layer: dispatching batches to
// the leased work queue when workers are registered, replaying the
// durable journal on startup, the /v1/metrics endpoint, submission
// admission (drain + rate limit) and graceful shutdown.

// admitSubmission applies the submission gates shared by /v1/jobs and
// /v1/soc-jobs: a draining server refuses new work outright (503, so a
// load balancer retries elsewhere), and a tenant over its rate limit
// gets 429 with Retry-After.
func (s *Server) admitSubmission(w http.ResponseWriter, tenant string) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	if ok, retry := s.limiter.Allow(tenant); !ok {
		s.rateLimited.Add(1)
		secs := int(math.Ceil(retry.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded, retry in %ds", secs)
		return false
	}
	return true
}

// journalAppend records rec if a journal is configured. Append failure
// (disk full, yanked volume) must not fail the batch — the results
// still live in memory — so it degrades to a logged warning.
func (s *Server) journalAppend(rec dist.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(rec); err != nil {
		log.Printf("simfarm server: journal: %v", err)
	}
}

// replayJournal rebuilds the job table from the journal: fold records
// by batch ID (duplicates are idempotent), fail batches that were still
// running when the previous process died, apply retention, and compact
// the file so it does not grow across restarts. Called from New before
// the server accepts traffic.
func (s *Server) replayJournal() {
	now := s.now()
	s.mu.Lock()
	for _, r := range s.journal.Records() {
		if n := idNumber(r.ID); n > s.nextID {
			s.nextID = n
		}
		rec := s.jobs[r.ID]
		if rec == nil {
			// Normally created by the Submitted record; a Finished or
			// Failed whose Submitted was lost to tail damage still
			// carries everything the record needs.
			rec = &jobRecord{id: r.ID, tenant: r.Tenant, created: r.Time, kind: r.Kind, jobs: r.Jobs, done: make(chan struct{})}
			s.jobs[r.ID] = rec
			s.submitted++
		}
		finished := func() bool {
			select {
			case <-rec.done:
				return true
			default:
				return false
			}
		}
		switch r.Type {
		case dist.RecordSubmitted, dist.RecordStarted:
			// Identity only; already folded above.
		case dist.RecordFinished:
			if finished() {
				continue // duplicate replay
			}
			rec.results = r.Results
			if r.Stats != nil {
				rec.stats = *r.Stats
			}
			rec.socResults = r.SoCResults
			if r.SoCStats != nil {
				rec.socStats = *r.SoCStats
			}
			rec.finished = r.Time
			close(rec.done)
		case dist.RecordFailed:
			if finished() {
				continue
			}
			rec.err = r.Error
			rec.finished = r.Time
			close(rec.done)
		}
	}

	// A batch submitted but never finished was executing in the previous
	// process; its in-flight state died with it. Fail it durably so the
	// submitter gets a definitive answer instead of "running" forever.
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
		default:
			rec.err = "interrupted by server restart"
			rec.finished = now
			close(rec.done)
			s.journalAppend(dist.Record{
				Type: dist.RecordFailed, ID: rec.id, Tenant: rec.tenant,
				Kind: rec.kind, Jobs: rec.jobs, Time: now, Error: rec.err,
			})
		}
	}

	s.prune(now)

	// Compact: rewrite the journal as exactly the surviving records, in
	// ID order, two records per batch. Replayed-and-pruned batches stop
	// being resurrected, and the file stays proportional to retention.
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return idNumber(ids[i]) < idNumber(ids[j]) })
	var recs []dist.Record
	for _, id := range ids {
		rec := s.jobs[id]
		recs = append(recs, dist.Record{
			Type: dist.RecordSubmitted, ID: rec.id, Tenant: rec.tenant,
			Kind: rec.kind, Jobs: rec.jobs, Time: rec.created,
		})
		jr := dist.Record{ID: rec.id, Tenant: rec.tenant, Kind: rec.kind, Jobs: rec.jobs, Time: rec.finished}
		if rec.err != "" {
			jr.Type = dist.RecordFailed
			jr.Error = rec.err
		} else {
			jr.Type = dist.RecordFinished
			if rec.kind == "soc" {
				jr.SoCResults = rec.socResults
				stats := rec.socStats
				jr.SoCStats = &stats
			} else {
				jr.Results = rec.results
				stats := rec.stats
				jr.Stats = &stats
			}
		}
		recs = append(recs, jr)
	}
	s.mu.Unlock()
	if err := s.journal.Compact(recs); err != nil {
		log.Printf("simfarm server: journal compact: %v", err)
	}
}

// idNumber extracts N from "job-N" (0 when malformed).
func idNumber(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	return n
}

// startSweeper runs periodic lease expiry until the returned stop
// function is called.
func (s *Server) startSweeper() (stop func()) {
	interval := s.queue.LeaseTTL() / 2
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.queue.Expire()
			}
		}
	}()
	return func() { close(done) }
}

// --- dispatch ---

// distributed reports whether a batch should go to the worker queue:
// only when at least one worker is live. The decision is taken once per
// batch at submission; with no workers the server executes in-process
// on the tenant's farm, bit-identical to the pre-distribution behavior.
func (s *Server) distributed() bool {
	return s.queue.LiveWorkers() > 0 && !s.draining.Load()
}

// runSim executes a single-core batch, distributed when workers are
// available, locally otherwise.
func (s *Server) runSim(rec *jobRecord, tenant string, jobs []simfarm.Job) ([]simfarm.Result, simfarm.BatchStats) {
	if !s.distributed() {
		return s.farm(tenant).Run(jobs)
	}
	s.journalAppend(dist.Record{Type: dist.RecordStarted, ID: rec.id, Tenant: tenant, Kind: rec.kind, Jobs: rec.jobs, Time: s.now()})
	start := time.Now()
	workers := s.queue.LiveWorkers()
	tasks := make([]dist.Task, len(jobs))
	for i := range jobs {
		tasks[i] = dist.Task{Batch: rec.id, Index: i, Tenant: tenant, Kind: dist.KindSim, Sim: &jobs[i]}
	}
	results := make([]simfarm.Result, len(jobs))
	ch := s.queue.Enqueue(tasks)
	for range jobs {
		tr := <-ch
		if tr.Err != "" || tr.Sim == nil {
			j := jobs[tr.Index]
			msg := tr.Err
			if msg == "" {
				msg = "worker returned no result"
			}
			results[tr.Index] = simfarm.Result{
				Index: tr.Index, Name: j.Workload.Name, Level: j.Options.Level,
				Config: j.Config, Error: fmt.Sprintf("distributed execution failed: %s", msg),
			}
			continue
		}
		r := *tr.Sim
		r.Index = tr.Index
		r.SetCacheOutcome(tr.CacheState)
		results[tr.Index] = r
	}
	return results, simfarm.SummarizeResults(results, time.Since(start), workers)
}

// runSoC is runSim for multi-core batches.
func (s *Server) runSoC(rec *jobRecord, tenant string, jobs []simfarm.SoCJob) ([]simfarm.SoCResult, simfarm.SoCBatchStats) {
	if !s.distributed() {
		return s.farm(tenant).RunSoC(jobs)
	}
	s.journalAppend(dist.Record{Type: dist.RecordStarted, ID: rec.id, Tenant: tenant, Kind: rec.kind, Jobs: rec.jobs, Time: s.now()})
	start := time.Now()
	workers := s.queue.LiveWorkers()
	tasks := make([]dist.Task, len(jobs))
	for i := range jobs {
		tasks[i] = dist.Task{Batch: rec.id, Index: i, Tenant: tenant, Kind: dist.KindSoC, SoC: &jobs[i]}
	}
	results := make([]simfarm.SoCResult, len(jobs))
	ch := s.queue.Enqueue(tasks)
	for range jobs {
		tr := <-ch
		if tr.Err != "" || tr.SoC == nil {
			j := jobs[tr.Index]
			msg := tr.Err
			if msg == "" {
				msg = "worker returned no result"
			}
			results[tr.Index] = simfarm.SoCResult{
				Index: tr.Index, Name: j.Name, Config: j.Config, CoreCount: len(j.Cores),
				Quantum: j.Quantum, Arbitration: j.Arbitration.String(),
				Error: fmt.Sprintf("distributed execution failed: %s", msg),
			}
			continue
		}
		r := *tr.SoC
		r.Index = tr.Index
		r.SetCacheCounts(tr.CacheHits, tr.CacheMisses)
		results[tr.Index] = r
	}
	return results, simfarm.SummarizeSoCResults(results, time.Since(start), workers)
}

// --- shutdown ---

// Drain gracefully quiesces the server: new submissions are refused
// (503), the queue stops granting leases and fails its un-leased
// backlog, and Drain waits — up to ctx — for every running batch to
// finish and be journaled. In-flight distributed tasks complete on
// their workers; in-flight local batches run to completion. After a
// clean Drain, a restart replays every batch as finished.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Drain()
	s.mu.Lock()
	running := make([]*jobRecord, 0)
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
		default:
			running = append(running, rec)
		}
	}
	s.mu.Unlock()
	for _, rec := range running {
		select {
		case <-rec.done:
		case <-ctx.Done():
			return fmt.Errorf("drain: %d batches still running: %w", stillRunning(running), ctx.Err())
		}
	}
	return nil
}

func stillRunning(recs []*jobRecord) int {
	n := 0
	for _, rec := range recs {
		select {
		case <-rec.done:
		default:
			n++
		}
	}
	return n
}

// --- metrics ---

// handleMetrics serves GET /v1/metrics in the text exposition format:
// one "name value" line per counter, gauges and counters mixed, no
// labels. It is an operator endpoint (scraped, not tenant-facing) and
// deliberately discloses no tenant names.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	line := func(name string, value any) {
		fmt.Fprintf(&b, "%s %v\n", name, value)
	}

	s.mu.Lock()
	submitted := s.submitted
	tenantCount := len(s.tenants)
	var running, done, failed int
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
			if rec.err != "" {
				failed++
			} else {
				done++
			}
		default:
			running++
		}
	}
	s.mu.Unlock()

	line("cabt_up", 1)
	line("cabt_uptime_seconds", int64(time.Since(s.start).Seconds()))
	line("cabt_draining", b2i(s.draining.Load()))
	line("cabt_tenants", tenantCount)
	line("cabt_jobs_submitted_total", submitted)
	line("cabt_jobs_running", running)
	line("cabt_jobs_done", done)
	line("cabt_jobs_failed", failed)
	line("cabt_rate_limited_total", s.rateLimited.Load())

	qs := s.queue.Stats()
	line("cabt_queue_pending", qs.Pending)
	line("cabt_queue_leased", qs.Leased)
	line("cabt_queue_enqueued_total", qs.Enqueued)
	line("cabt_queue_completed_total", qs.Completed)
	line("cabt_queue_failed_total", qs.Failed)
	line("cabt_queue_lease_expiries_total", qs.Expiries)
	line("cabt_queue_retries_total", qs.Retries)
	line("cabt_workers_live", qs.LiveWorkers)

	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		line("cabt_store_objects", st.Objects)
		line("cabt_store_bytes", st.Bytes)
		line("cabt_store_loads_total", st.Loads)
		line("cabt_store_hits_total", st.Hits)
		line("cabt_store_puts_total", st.Puts)
		line("cabt_store_corrupt_total", st.Corrupt)
		line("cabt_store_evictions_total", st.Evictions)
	}
	if s.storeSrv != nil {
		ss := s.storeSrv.Stats()
		line("cabt_store_remote_gets_total", ss.Gets)
		line("cabt_store_remote_hits_total", ss.Hits)
		line("cabt_store_remote_misses_total", ss.Misses)
		line("cabt_store_remote_not_modified_total", ss.NotModified)
		line("cabt_store_remote_puts_total", ss.Puts)
		line("cabt_store_remote_bad_puts_total", ss.BadPuts)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
