package server_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/faultinject"
	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/server"
	"repro/internal/simfarm/store"
)

// chaosCrash is the sentinel an injected crash panics with in-process:
// the fleet supervisor recovers it and boots a replacement worker,
// modelling a process supervisor restarting a worker that exited.
type chaosCrash struct{ point string }

// chaosSpec is the soak's fault profile: every network fault on the
// worker/store plane, every disk fault on the journal and store, and a
// deterministic worker crash on the 4th completion. The seed makes any
// failure replayable: the whole plan derives from it.
func chaosSpec(seed int64) string {
	return fmt.Sprintf("seed=%d;"+
		"net.delay:p=0.05,ms=2;net.request.drop:p=0.05;net.request.dup:p=0.04;"+
		"net.response.drop:p=0.05;net.response.truncate:p=0.04;"+
		"server.delay:p=0.05,ms=2;server.drop:p=0.05;server.err:p=0.05;"+
		"journal.sync.err:p=0.1;journal.append.torn:p=0.05;journal.write.enospc:p=0.03;"+
		"store.write.enospc:p=0.05;"+
		"worker.complete.crash:nth=4", seed)
}

// TestChaosSoak is the robustness capstone: a 16-job batch on a
// multi-worker farm under the full fault profile must finish with zero
// failed jobs and results bit-identical to both a fault-free run and
// repro.Measure. Every retry path earns its keep here at once —
// request/response loss, duplicated deliveries, injected 503s, torn
// journal writes, failed fsyncs, full disks and a worker crash between
// executing and reporting.
func TestChaosSoak(t *testing.T) {
	seed := int64(20260808)
	if s := os.Getenv("CABT_CHAOS_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CABT_CHAOS_SEED=%q: %v", s, err)
		}
		seed = n
	}
	// On any failure below, this line is how the run is reproduced.
	t.Logf("chaos seed %d (re-run with CABT_CHAOS_SEED=%d)", seed, seed)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := mustNew(t, server.Config{
		Workers: 2, Store: st,
		Journal:            filepath.Join(t.TempDir(), "journal.cabt"),
		JournalRotateBytes: 4096, // rotate for real during the soak
		LeaseTTL:           2 * time.Second,
		TaskRetries:        8,
	})
	// Exactly cabt-serve's wiring: faults only on the worker control
	// plane and store protocol, so the tenant API stays byte-comparable.
	handler := faultinject.Middleware(s, func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/v1/workers/") || strings.HasPrefix(r.URL.Path, "/v1/store/")
	})
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	c := &client{t: t, base: ts.URL, tenant: "chaos", http: http.DefaultClient}

	req := server.SubmitRequest{
		Workloads: []string{"gcd", "sieve", "fir", "ellip"},
		Levels:    []int{0, 1, 2, 3},
	}

	// Fault-free oracle first, while the plan is disarmed: no workers
	// are up yet, so it runs locally — proven bit-identical to the
	// distributed path by TestDistributedBatchMatchesLocal.
	oracle := c.submitAndWait(req)
	if oracle.Stats.Failed != 0 || len(oracle.Results) != 16 {
		t.Fatalf("fault-free oracle: %+v", oracle)
	}

	plan, err := faultinject.Parse(chaosSpec(seed))
	if err != nil {
		t.Fatal(err)
	}
	// An injected crash panics instead of exiting the test process; the
	// supervisor below treats it exactly like a worker process death.
	oldCrash := faultinject.CrashFn
	faultinject.CrashFn = func(point string) { panic(chaosCrash{point}) }
	faultinject.Activate(plan)
	t.Cleanup(func() {
		faultinject.Deactivate()
		faultinject.CrashFn = oldCrash
	})

	// A supervised fleet of three workers: each goroutine runs workers
	// back to back, replacing any that an injected crash takes down.
	ctx, cancel := context.WithCancel(context.Background())
	var crashes atomic.Int64
	var wg sync.WaitGroup
	runOnce := func(name string) (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if cc, ok := r.(chaosCrash); ok {
					t.Logf("worker %s crashed at %s", name, cc.point)
					crashed = true
					return
				}
				panic(r)
			}
		}()
		w := dist.NewWorker(dist.WorkerConfig{
			Server: ts.URL, Name: name, Poll: 10 * time.Millisecond,
		})
		w.Run(ctx)
		return false
	}
	for i := range 3 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gen := 0; ctx.Err() == nil; gen++ {
				if !runOnce(fmt.Sprintf("chaos-%d.%d", i, gen)) {
					return
				}
				crashes.Add(1)
			}
		}()
	}
	t.Cleanup(func() { cancel(); wg.Wait() })

	deadline := time.Now().Add(10 * time.Second)
	for metrics(t, ts.URL)["cabt_workers_live"] == "0" {
		if time.Now().After(deadline) {
			t.Fatal("no worker came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	chaos := c.submitAndWait(req)
	if chaos.Stats.Failed != 0 {
		t.Fatalf("seed %d: %d failed jobs under chaos: %+v", seed, chaos.Stats.Failed, chaos.Results)
	}
	if len(chaos.Results) != len(oracle.Results) {
		t.Fatalf("seed %d: %d results, want %d", seed, len(chaos.Results), len(oracle.Results))
	}
	for i, g := range chaos.Results {
		w := oracle.Results[i]
		// Everything the simulation measures must be bit-identical; only
		// cache-outcome bookkeeping may differ between the runs.
		if g.Name != w.Name || g.Level != w.Level || g.Config != w.Config ||
			g.Instructions != w.Instructions || g.BoardCycles != w.BoardCycles ||
			g.C6xCycles != w.C6xCycles || g.GeneratedCycles != w.GeneratedCycles ||
			g.CPI != w.CPI || g.MIPS != w.MIPS ||
			g.DeviationPct != w.DeviationPct || g.Seconds != w.Seconds {
			t.Errorf("seed %d: result %d differs under chaos:\n chaos  %+v\n oracle %+v", seed, i, g, w)
		}
	}
	// And the oracle itself is anchored to the reference measurement.
	for _, r := range chaos.Results {
		w, ok := repro.WorkloadByName(r.Name)
		if !ok {
			t.Fatalf("unknown workload %q", r.Name)
		}
		m, err := repro.Measure(w, r.Level)
		if err != nil {
			t.Fatal(err)
		}
		lr := m.Levels[r.Level]
		if r.Instructions != m.Instructions || r.BoardCycles != m.BoardCycles ||
			r.C6xCycles != lr.C6xCycles || r.GeneratedCycles != lr.GeneratedCycles {
			t.Errorf("seed %d: %s L%d differs from repro.Measure", seed, r.Name, int(r.Level))
		}
	}

	// The profile's deterministic crash must actually have happened (the
	// 4th completion attempt fires it), and the batch survived it.
	if crashes.Load() < 1 {
		t.Errorf("seed %d: no worker crash was injected", seed)
	}
	// Faults visibly fired and were counted.
	fired := false
	for name := range metrics(t, ts.URL) {
		if strings.HasPrefix(name, "cabt_faults_injected_total") {
			fired = true
			break
		}
	}
	if !fired {
		t.Errorf("seed %d: no cabt_faults_injected_total series in /v1/metrics", seed)
	}
}
