package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/simfarm/server"
	"repro/internal/simfarm/store"
)

// adminClient drives the admin endpoints with an explicit token header.
type adminClient struct {
	t     *testing.T
	base  string
	token string
	http  *http.Client
}

func (c *adminClient) do(method, path string, wantCode int, out any) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, &bytes.Buffer{})
	if err != nil {
		c.t.Fatal(err)
	}
	if c.token != "" {
		req.Header.Set(server.AdminTokenHeader, c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		c.t.Fatalf("%s %s: HTTP %d (want %d): %s", method, path, resp.StatusCode, wantCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatal(err)
		}
	}
}

// TestAdminStoreAndGC: with a configured token, the admin endpoints
// inspect and sweep the persistent store. A batch populates it; a
// budget-only GC is a no-op; a max-age sweep drains it.
func TestAdminStoreAndGC(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustNew(t, server.Config{Workers: 4, Store: st, AdminToken: "sekrit"}))
	t.Cleanup(ts.Close)
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	admin := &adminClient{t: t, base: ts.URL, token: "sekrit", http: ts.Client()}

	c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1, 3}})

	var stats store.Stats
	admin.do("GET", "/v1/admin/store", http.StatusOK, &stats)
	if stats.Objects != 2 || stats.Puts != 2 {
		t.Fatalf("store after batch: %+v", stats)
	}

	var gc server.GCResponse
	admin.do("POST", "/v1/admin/gc", http.StatusOK, &gc)
	if gc.GC.Evicted != 0 || gc.Store.Objects != 2 {
		t.Fatalf("budget-only GC on an unbounded store must be a no-op: %+v", gc)
	}

	admin.do("POST", "/v1/admin/gc?max-age=1ns", http.StatusOK, &gc)
	if gc.GC.Evicted != 2 || gc.Store.Objects != 0 {
		t.Fatalf("max-age sweep: %+v", gc)
	}

	admin.do("POST", "/v1/admin/gc?max-age=bogus", http.StatusBadRequest, nil)
	admin.do("POST", "/v1/admin/gc?max-age=-1s", http.StatusBadRequest, nil)
}

// TestAdminRequiresToken: the admin endpoints act on the store shared
// by all tenants, so without the right credential they must refuse —
// missing or wrong tokens get 403, and a server started without a
// token keeps them disabled even for token-bearing requests.
func TestAdminRequiresToken(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(mustNew(t, server.Config{Workers: 1, Store: st, AdminToken: "sekrit"}))
	t.Cleanup(ts.Close)

	noToken := &adminClient{t: t, base: ts.URL, http: ts.Client()}
	noToken.do("GET", "/v1/admin/store", http.StatusForbidden, nil)
	noToken.do("POST", "/v1/admin/gc?max-age=1ns", http.StatusForbidden, nil)

	badToken := &adminClient{t: t, base: ts.URL, token: "guess", http: ts.Client()}
	badToken.do("GET", "/v1/admin/store", http.StatusForbidden, nil)
	badToken.do("POST", "/v1/admin/gc", http.StatusForbidden, nil)

	disabled := httptest.NewServer(mustNew(t, server.Config{Workers: 1, Store: st}))
	t.Cleanup(disabled.Close)
	d := &adminClient{t: t, base: disabled.URL, token: "anything", http: disabled.Client()}
	d.do("GET", "/v1/admin/store", http.StatusForbidden, nil)
	d.do("POST", "/v1/admin/gc", http.StatusForbidden, nil)
}

// TestAdminWithoutStore: an authorized request against a server with no
// persistent store answers 404 (nothing to administer).
func TestAdminWithoutStore(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, server.Config{Workers: 1, AdminToken: "sekrit"}))
	t.Cleanup(ts.Close)
	c := &adminClient{t: t, base: ts.URL, token: "sekrit", http: ts.Client()}
	c.do("GET", "/v1/admin/store", http.StatusNotFound, nil)
	c.do("POST", "/v1/admin/gc", http.StatusNotFound, nil)
}
