package server

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/simfarm"
	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/store"
	"repro/internal/soc"
	"repro/internal/workload"
)

// Config configures a Server.
type Config struct {
	// Workers is the per-tenant farm worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Store is the shared persistent translation-cache store; nil runs
	// every tenant on a private in-memory cache.
	Store *store.Store

	// AdminToken enables the store-administration endpoints
	// (GET /v1/admin/store, POST /v1/admin/gc): requests must present it
	// in the X-Cabt-Admin-Token header. Empty leaves the endpoints
	// disabled — the store is shared across tenants, and a sweep evicts
	// every tenant's objects, so administration must never be reachable
	// by an ordinary tenant.
	AdminToken string

	// RetainTTL is the job-record retention time: finished records older
	// than it are pruned (0 = keep forever). Running records are never
	// pruned.
	RetainTTL time.Duration
	// RetainMax caps the number of finished records kept per tenant; the
	// earliest-finished are pruned first (0 = unlimited).
	RetainMax int
	// Clock overrides the retention clock (tests); nil = time.Now.
	Clock func() time.Time

	// Journal is the path of the durable batch journal. When set, every
	// batch's submission and completion is recorded there and replayed on
	// startup, so finished results survive a server restart. "" disables
	// durability (records are in-memory only, as before).
	Journal string
	// JournalRotateBytes caps the active journal segment before rotation
	// (0 = the dist default, 4 MiB).
	JournalRotateBytes int64

	// LeaseTTL is the distributed task lease duration: a worker that
	// stops heartbeating loses its task after this long and the task is
	// re-run elsewhere (0 = the dist default, 15 s).
	LeaseTTL time.Duration
	// TaskRetries is the per-task delivery budget for distributed
	// execution (0 = the dist default, 3).
	TaskRetries int

	// RateLimit caps each tenant's job submissions per second (token
	// bucket of RateBurst capacity); beyond it submissions get 429 with
	// Retry-After. 0 disables limiting.
	RateLimit float64
	// RateBurst is the rate limiter's burst size (minimum 1).
	RateBurst int
}

// Server is the HTTP front-end of the simulation farm. Each tenant
// (X-Cabt-Tenant header) gets its own Farm whose translation cache is
// backed by the tenant's namespace of the shared store, so tenants share
// server capacity but never cache entries.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time
	// reg holds this server's metric bridges (Func metrics sampling the
	// queue, store and job table); /v1/metrics renders it followed by
	// the process-global obs.Default. Per-server so concurrent servers
	// in one process (tests) never read each other's closures.
	reg *obs.Registry

	// Distribution layer: queue and workerAPI always exist (a queue with
	// no registered workers simply never wins the dispatch decision);
	// journal, limiter and storeSrv are nil when unconfigured.
	queue    *dist.Queue
	journal  *dist.Journal
	limiter  *dist.RateLimiter
	storeSrv *dist.StoreServer
	// dispatch gates distributed execution: batches whose distributed
	// runs keep coming back with permanently-failed tasks trip it, and
	// while it is open every batch executes locally — the farm is always
	// a correct (if slower) fallback, so degrading costs only speed.
	dispatch *dist.Breaker

	draining    atomic.Bool
	rateLimited atomic.Int64
	stopSweep   func()
	closeOnce   sync.Once

	mu      sync.Mutex
	tenants map[string]*simfarm.Farm
	jobs    map[string]*jobRecord
	nextID  int
	// submitted counts batches cumulatively — retention prunes records
	// from jobs but must not shrink the reported submission counter.
	submitted int
}

// jobRecord tracks one submitted batch (single-core or SoC). done is
// closed when results and stats are populated; they are written exactly
// once, before the close.
type jobRecord struct {
	id      string
	tenant  string
	created time.Time
	kind    string // "sweep" or "soc"
	jobs    int
	// finished is when the batch completed; written once before done is
	// closed (readers synchronize on the close). Retention ages finished
	// records from this time, so a long-running batch is never prunable
	// the moment it completes.
	finished time.Time

	done    chan struct{}
	results []simfarm.Result
	stats   simfarm.BatchStats

	socResults []simfarm.SoCResult
	socStats   simfarm.SoCBatchStats

	// err marks a batch that never produced results (today: interrupted
	// by a server restart, or rejected wholesale by a draining queue).
	err string
}

// New builds a server. The only error source is the journal: an
// unusable journal file (unreadable directory, I/O error) refuses to
// start rather than silently running without durability.
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		start:   time.Now(),
		reg:     obs.NewRegistry(),
		queue:   dist.NewQueue(dist.QueueConfig{LeaseTTL: cfg.LeaseTTL, MaxAttempts: cfg.TaskRetries, Clock: cfg.Clock}),
		tenants: map[string]*simfarm.Farm{},
		jobs:    map[string]*jobRecord{},

		dispatch: dist.NewBreaker("dispatch", dist.BreakerConfig{Clock: cfg.Clock}),
	}
	if cfg.RateLimit > 0 {
		s.limiter = dist.NewRateLimiter(cfg.RateLimit, cfg.RateBurst, cfg.Clock)
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/soc-jobs", s.handleSoCSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/admin/store", s.handleStoreStats)
	s.mux.HandleFunc("POST /v1/admin/gc", s.handleGC)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	(&dist.WorkerAPI{Queue: s.queue}).Register(s.mux)
	if cfg.Store != nil {
		s.storeSrv = dist.NewStoreServer(cfg.Store)
		s.storeSrv.Register(s.mux)
	}
	if cfg.Journal != "" {
		j, err := dist.OpenJournalWith(cfg.Journal, dist.JournalOptions{RotateBytes: cfg.JournalRotateBytes})
		if err != nil {
			return nil, err
		}
		s.journal = j
		s.replayJournal()
	}
	if cfg.Clock == nil {
		// Background lease-expiry sweep (expiry is also lazy on every
		// queue operation; the sweep bounds requeue latency when no
		// worker is talking to us). Tests with a fake clock drive expiry
		// themselves.
		s.stopSweep = s.startSweeper()
	}
	s.registerMetrics()
	s.registerPprof()
	return s, nil
}

// registerPprof mounts net/http/pprof on the server mux, gated on the
// admin token alone (unlike adminOK it does not require a store —
// profiling is about this process, not the cache). Without a configured
// token the endpoints stay disabled.
func (s *Server) registerPprof() {
	gate := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if s.cfg.AdminToken == "" {
				httpError(w, http.StatusForbidden, "profiling disabled (start the server with an admin token)")
				return
			}
			got := r.Header.Get(AdminTokenHeader)
			if subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.AdminToken)) != 1 {
				httpError(w, http.StatusForbidden, "bad admin token")
				return
			}
			h(w, r)
		}
	}
	s.mux.HandleFunc("/debug/pprof/", gate(pprof.Index))
	s.mux.HandleFunc("/debug/pprof/cmdline", gate(pprof.Cmdline))
	s.mux.HandleFunc("/debug/pprof/profile", gate(pprof.Profile))
	s.mux.HandleFunc("/debug/pprof/symbol", gate(pprof.Symbol))
	s.mux.HandleFunc("/debug/pprof/trace", gate(pprof.Trace))
}

// Close releases the server's background resources (expiry sweeper,
// journal handle). It does not drain — call Drain first for a graceful
// shutdown. Idempotent.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.stopSweep != nil {
			s.stopSweep()
		}
		if s.journal != nil {
			err = s.journal.Close()
		}
	})
	return err
}

// now returns the retention clock's time.
func (s *Server) now() time.Time {
	if s.cfg.Clock != nil {
		return s.cfg.Clock()
	}
	return time.Now()
}

// prune applies the retention policy (caller holds s.mu): finished
// records older than RetainTTL go, then the oldest finished records
// beyond RetainMax. Running batches are always kept — their results are
// still being produced and the submitter holds the id.
func (s *Server) prune(now time.Time) {
	finished := func(rec *jobRecord) bool {
		select {
		case <-rec.done:
			return true
		default:
			return false
		}
	}
	if s.cfg.RetainTTL > 0 {
		for id, rec := range s.jobs {
			if finished(rec) && now.Sub(rec.finished) > s.cfg.RetainTTL {
				delete(s.jobs, id)
			}
		}
	}
	if s.cfg.RetainMax > 0 {
		// The cap applies per tenant: one tenant's burst must not evict
		// another tenant's fresh records (job visibility is tenant-scoped).
		byTenant := map[string][]*jobRecord{}
		for _, rec := range s.jobs {
			if finished(rec) {
				byTenant[rec.tenant] = append(byTenant[rec.tenant], rec)
			}
		}
		for _, done := range byTenant {
			if len(done) <= s.cfg.RetainMax {
				continue
			}
			sort.Slice(done, func(i, j int) bool { return done[i].finished.Before(done[j].finished) })
			for _, rec := range done[:len(done)-s.cfg.RetainMax] {
				delete(s.jobs, rec.id)
			}
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// TenantHeader names the tenant selector. An absent or empty header is
// the shared root tenant, whose cache namespace is the store's root — the
// same namespace the cabt-farm CLI uses, so CLI sweeps and anonymous HTTP
// traffic pool their translations.
const TenantHeader = "X-Cabt-Tenant"

var tenantRE = regexp.MustCompile(`^[A-Za-z0-9._-]{0,64}$`)

// farm returns (creating on first use) the tenant's farm.
func (s *Server) farm(tenant string) *simfarm.Farm {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.tenants[tenant]; ok {
		return f
	}
	var cache *simfarm.TranslationCache
	if s.cfg.Store != nil {
		cache = simfarm.NewPersistentTranslationCache(s.cfg.Store.Namespace(tenant))
	}
	f := simfarm.New(simfarm.Config{Workers: s.cfg.Workers, Cache: cache})
	s.tenants[tenant] = f
	return f
}

// --- wire types ---

// JobSpec is one job of a submission, by name: the workload and march
// config resolve against the server's registries (workload.ByName and
// simfarm.DefaultMarchConfigs), so clients never ship code or raw
// descriptions.
type JobSpec struct {
	// Workload names a built-in benchmark program.
	Workload string `json:"workload"`
	// Level is the translation detail level, 0..3.
	Level int `json:"level"`
	// Config optionally names a sweep configuration ("base",
	// "icache-4k", "icache-64b-direct", "icache-4way"); "" is the
	// default march.
	Config string `json:"config,omitempty"`
}

// SubmitRequest is the POST /v1/jobs body. Either Jobs is given
// explicitly, or the Workloads × Levels sweep shorthand (with the
// default configuration) — not both.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs,omitempty"`

	Workloads []string `json:"workloads,omitempty"`
	Levels    []int    `json:"levels,omitempty"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Jobs   int    `json:"jobs"`
	URL    string `json:"url"`
}

// SoCSubmitRequest is the POST /v1/soc-jobs body: a multi-core sweep
// over workloads × core counts × quanta × arbitration policies, every
// core translated at Level (or run on the reference ISS with ISS set).
type SoCSubmitRequest struct {
	Workloads    []string `json:"workloads"`
	CoreCounts   []int    `json:"core_counts"`
	Quanta       []int64  `json:"quanta"`
	Arbitrations []string `json:"arbitrations,omitempty"` // default ["rr"]
	Level        int      `json:"level"`
	ISS          bool     `json:"iss,omitempty"`
	// Parallel runs each SoC on the speculative parallel scheduler
	// (bit-identical results to the sequential one).
	Parallel bool `json:"parallel,omitempty"`
}

// JobResponse is the GET /v1/jobs/{id} body. Kind says which result set
// applies; Results/Stats (sweep) or SoCResults/SoCStats (soc) are
// present once Status is "done".
type JobResponse struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant,omitempty"`
	Status  string    `json:"status"`
	Kind    string    `json:"kind"`
	Created time.Time `json:"created"`
	Jobs    int       `json:"jobs"`

	Results []simfarm.Result    `json:"results,omitempty"`
	Stats   *simfarm.BatchStats `json:"stats,omitempty"`

	SoCResults []simfarm.SoCResult    `json:"soc_results,omitempty"`
	SoCStats   *simfarm.SoCBatchStats `json:"soc_stats,omitempty"`

	// Error is set (with Status "failed") when the batch produced no
	// results at all — e.g. it was running when the server restarted.
	Error string `json:"error,omitempty"`
}

// TenantStats is one tenant's cumulative farm view.
type TenantStats struct {
	Tenant string            `json:"tenant"`
	Farm   simfarm.FarmStats `json:"farm"`
}

// StatsResponse is the GET /v1/stats body. Tenants carries at most the
// requesting tenant's own farm stats; TenantCount is the only
// cross-tenant figure disclosed.
type StatsResponse struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	JobsSubmitted int           `json:"jobs_submitted"`
	JobsRunning   int           `json:"jobs_running"`
	TenantCount   int           `json:"tenant_count"`
	Store         *store.Stats  `json:"store,omitempty"`
	Tenants       []TenantStats `json:"tenants"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if !tenantRE.MatchString(tenant) {
		httpError(w, http.StatusBadRequest, "bad tenant %q: want [A-Za-z0-9._-]{0,64}", tenant)
		return
	}
	if !s.admitSubmission(w, tenant) {
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	jobs, err := resolve(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	rec := s.register(tenant, "sweep", len(jobs))
	go func() {
		results, stats := s.runSim(rec, tenant, jobs)
		rec.results, rec.stats = results, stats
		s.finish(rec)
	}()

	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: rec.id, Status: "running", Jobs: len(jobs), URL: "/v1/jobs/" + rec.id})
}

// register files a new job record under the retention policy and
// journals the submission.
func (s *Server) register(tenant, kind string, jobs int) *jobRecord {
	rec := &jobRecord{tenant: tenant, created: s.now(), kind: kind, jobs: jobs, done: make(chan struct{})}
	s.mu.Lock()
	s.prune(rec.created)
	s.nextID++
	s.submitted++
	rec.id = fmt.Sprintf("job-%d", s.nextID)
	s.jobs[rec.id] = rec
	s.mu.Unlock()
	s.journalAppend(dist.Record{
		Type: dist.RecordSubmitted, ID: rec.id, Tenant: tenant,
		Kind: kind, Jobs: jobs, Time: rec.created,
	})
	return rec
}

// finish stamps a completed record, journals the full result payload,
// and wakes waiters. Results/stats (or socResults/socStats) must be
// populated before the call.
func (s *Server) finish(rec *jobRecord) {
	rec.finished = s.now()
	jr := dist.Record{
		Type: dist.RecordFinished, ID: rec.id, Tenant: rec.tenant,
		Kind: rec.kind, Jobs: rec.jobs, Time: rec.finished,
	}
	if rec.kind == "soc" {
		jr.SoCResults = rec.socResults
		stats := rec.socStats
		jr.SoCStats = &stats
	} else {
		jr.Results = rec.results
		stats := rec.stats
		jr.Stats = &stats
	}
	s.journalAppend(jr)
	close(rec.done)
}

// handleSoCSubmit accepts a multi-core SoC sweep.
func (s *Server) handleSoCSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if !tenantRE.MatchString(tenant) {
		httpError(w, http.StatusBadRequest, "bad tenant %q: want [A-Za-z0-9._-]{0,64}", tenant)
		return
	}
	if !s.admitSubmission(w, tenant) {
		return
	}
	var req SoCSubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	jobs, err := resolveSoC(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	rec := s.register(tenant, "soc", len(jobs))
	go func() {
		results, stats := s.runSoC(rec, tenant, jobs)
		rec.socResults, rec.socStats = results, stats
		s.finish(rec)
	}()

	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: rec.id, Status: "running", Jobs: len(jobs), URL: "/v1/jobs/" + rec.id})
}

// resolveSoC validates and expands a SoC sweep request.
func resolveSoC(req SoCSubmitRequest) ([]simfarm.SoCJob, error) {
	if len(req.Workloads) == 0 || len(req.CoreCounts) == 0 || len(req.Quanta) == 0 {
		return nil, fmt.Errorf("need workloads, core_counts and quanta")
	}
	for _, n := range req.CoreCounts {
		if n < 1 || n > 64 {
			return nil, fmt.Errorf("bad core count %d: want 1..64", n)
		}
	}
	for _, q := range req.Quanta {
		if q < 1 || q > 1<<20 {
			return nil, fmt.Errorf("bad quantum %d: want 1..%d", q, 1<<20)
		}
	}
	if req.Level < int(core.Level0) || req.Level > int(core.Level3) {
		return nil, fmt.Errorf("bad level %d: want 0..3", req.Level)
	}
	arbNames := req.Arbitrations
	if len(arbNames) == 0 {
		arbNames = []string{"rr"}
	}
	var arbs []soc.Arbitration
	for _, n := range arbNames {
		a, ok := soc.ArbitrationByName(n)
		if !ok {
			return nil, fmt.Errorf("bad arbitration %q: want rr or fixed", n)
		}
		arbs = append(arbs, a)
	}
	jobs, err := simfarm.SoCSweepJobs(req.Workloads, req.CoreCounts, req.Quanta, arbs,
		core.Options{Level: core.Level(req.Level)}, req.ISS, req.Parallel)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("empty sweep (are the workloads available at these core counts?)")
	}
	return jobs, nil
}

// resolve turns a submission into farm jobs, validating every name.
func resolve(req SubmitRequest) ([]simfarm.Job, error) {
	specs := req.Jobs
	if len(specs) > 0 && (len(req.Workloads) > 0 || len(req.Levels) > 0) {
		return nil, fmt.Errorf("give either jobs or workloads×levels, not both")
	}
	if len(specs) == 0 {
		for _, wl := range req.Workloads {
			for _, l := range req.Levels {
				specs = append(specs, JobSpec{Workload: wl, Level: l})
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	configs := map[string]simfarm.MarchConfig{"": {}}
	for _, c := range simfarm.DefaultMarchConfigs() {
		configs[c.Name] = c
	}
	jobs := make([]simfarm.Job, 0, len(specs))
	for _, sp := range specs {
		wl, ok := workload.ByName(sp.Workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", sp.Workload)
		}
		if sp.Level < int(core.Level0) || sp.Level > int(core.Level3) {
			return nil, fmt.Errorf("bad level %d: want 0..3", sp.Level)
		}
		cfg, ok := configs[sp.Config]
		if !ok {
			return nil, fmt.Errorf("unknown config %q", sp.Config)
		}
		jobs = append(jobs, simfarm.Job{
			Workload: wl,
			Config:   cfg.Name,
			Options:  core.Options{Level: core.Level(sp.Level), Desc: cfg.Desc},
		})
	}
	return jobs, nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if !tenantRE.MatchString(tenant) {
		httpError(w, http.StatusBadRequest, "bad tenant %q: want [A-Za-z0-9._-]{0,64}", tenant)
		return
	}
	s.mu.Lock()
	rec, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	// A job is only visible to the tenant that submitted it; a foreign
	// tenant gets the same 404 as a nonexistent id, revealing nothing.
	if !ok || rec.tenant != tenant {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-rec.done:
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Minute):
		}
	}
	resp := JobResponse{ID: rec.id, Tenant: rec.tenant, Status: "running", Kind: rec.kind, Created: rec.created, Jobs: rec.jobs}
	select {
	case <-rec.done:
		if rec.err != "" {
			resp.Status = "failed"
			resp.Error = rec.err
			break
		}
		resp.Status = "done"
		if rec.kind == "soc" {
			resp.SoCResults = rec.socResults
			stats := rec.socStats
			resp.SoCStats = &stats
		} else {
			resp.Results = rec.results
			stats := rec.stats
			resp.Stats = &stats
		}
	default:
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats reports service-wide aggregates (uptime, job and store
// counters) plus the requesting tenant's own farm view only — tenant
// names and per-tenant traffic are never disclosed across tenants.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if !tenantRE.MatchString(tenant) {
		httpError(w, http.StatusBadRequest, "bad tenant %q: want [A-Za-z0-9._-]{0,64}", tenant)
		return
	}
	s.mu.Lock()
	s.prune(s.now())
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		JobsSubmitted: s.submitted,
		TenantCount:   len(s.tenants),
		Tenants:       []TenantStats{},
	}
	for _, rec := range s.jobs {
		select {
		case <-rec.done:
		default:
			resp.JobsRunning++
		}
	}
	farm := s.tenants[tenant]
	s.mu.Unlock()
	if farm != nil {
		resp.Tenants = append(resp.Tenants, TenantStats{Tenant: tenant, Farm: farm.Stats()})
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// GCResponse is the POST /v1/admin/gc body: what the sweep removed and
// the store state after it.
type GCResponse struct {
	GC    store.GCResult `json:"gc"`
	Store store.Stats    `json:"store"`
}

// AdminTokenHeader carries the admin credential of the /v1/admin
// endpoints.
const AdminTokenHeader = "X-Cabt-Admin-Token"

// adminOK authorizes an admin request, writing the error response
// itself when it fails: the endpoints are disabled without a configured
// token (403), useless without a store (404), and tenant-blind — only
// the token grants access, because the store is shared across tenants.
func (s *Server) adminOK(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.AdminToken == "" {
		httpError(w, http.StatusForbidden, "administration disabled (start the server with an admin token)")
		return false
	}
	got := r.Header.Get(AdminTokenHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(s.cfg.AdminToken)) != 1 {
		httpError(w, http.StatusForbidden, "bad admin token")
		return false
	}
	if s.cfg.Store == nil {
		httpError(w, http.StatusNotFound, "no persistent store configured")
		return false
	}
	return true
}

// handleStoreStats reports the persistent store's point-in-time state
// (GET /v1/admin/store).
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Store.Stats())
}

// handleGC triggers a store sweep (POST /v1/admin/gc). The optional
// max-age query parameter (a Go duration, e.g. "24h") additionally
// evicts objects not used within that window; without it the sweep only
// enforces the byte budget.
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	if !s.adminOK(w, r) {
		return
	}
	var maxAge time.Duration
	if raw := r.URL.Query().Get("max-age"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "bad max-age %q: want a non-negative duration", raw)
			return
		}
		maxAge = d
	}
	writeJSON(w, http.StatusOK, GCResponse{GC: s.cfg.Store.GC(maxAge), Store: s.cfg.Store.Stats()})
}

// HealthResponse is the /healthz and /readyz body.
type HealthResponse struct {
	Status string `json:"status"`
	// Draining is true while the server refuses new submissions.
	Draining bool `json:"draining,omitempty"`
	// Workers is the live worker count (informational; a server with no
	// workers is still ready — it executes locally).
	Workers int `json:"workers"`
	// Dispatch is the dispatch breaker's state ("closed", "half-open",
	// "open").
	Dispatch string `json:"dispatch"`
}

// handleHealthz is process liveness: if the handler runs at all, the
// process is alive. Always 200 — restarts are for dead processes, and a
// degraded-but-serving server must not be killed by its supervisor.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Workers:  s.queue.LiveWorkers(),
		Dispatch: s.dispatch.State().String(),
	})
}

// handleReadyz is traffic readiness: 503 while draining so a load
// balancer routes new submissions elsewhere, 200 otherwise. Degraded
// dispatch (breaker open, no workers) is still ready — batches run
// locally with identical results.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:   "ok",
		Draining: s.draining.Load(),
		Workers:  s.queue.LiveWorkers(),
		Dispatch: s.dispatch.State().String(),
	}
	code := http.StatusOK
	if resp.Draining {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
