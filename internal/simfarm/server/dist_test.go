package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/simfarm"
	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/server"
	"repro/internal/simfarm/store"
)

// distServer builds a server with the given config on an httptest
// listener and returns it with a client factory.
func distServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, func(tenant string) *client) {
	t.Helper()
	s := mustNew(t, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, func(tenant string) *client {
		return &client{t: t, base: ts.URL, tenant: tenant, http: ts.Client()}
	}
}

// startWorker runs an in-process dist.Worker against the server and
// blocks until it has registered.
func startWorker(t *testing.T, base string, cfg dist.WorkerConfig) *dist.Worker {
	t.Helper()
	cfg.Server = base
	if cfg.Poll == 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := dist.NewWorker(cfg)
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("worker did not exit")
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for w.ID() == "" {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return w
}

// metrics fetches and returns /v1/metrics as a name -> value map.
func metrics(t *testing.T, base string) map[string]string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]string{}
	for _, ln := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		name, value, ok := strings.Cut(ln, " ")
		if !ok {
			t.Fatalf("bad metrics line %q", ln)
		}
		m[name] = value
	}
	return m
}

// TestDistributedBatchMatchesLocal submits the same sweep twice — once
// with no workers (in-process execution) and once with two registered
// workers — and requires identical deterministic results.
func TestDistributedBatchMatchesLocal(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, ts, mk := distServer(t, server.Config{Workers: 2, Store: st, LeaseTTL: 5 * time.Second})
	c := mk("acme")

	req := server.SubmitRequest{Workloads: []string{"gcd", "sieve"}, Levels: []int{0, 2}}
	local := c.submitAndWait(req)
	if local.Stats.Failed != 0 {
		t.Fatalf("local batch failed: %+v", local.Results)
	}

	startWorker(t, ts.URL, dist.WorkerConfig{Name: "w1"})
	startWorker(t, ts.URL, dist.WorkerConfig{Name: "w2"})
	if m := metrics(t, ts.URL); m["cabt_workers_live"] != "2" {
		t.Fatalf("cabt_workers_live = %s, want 2", m["cabt_workers_live"])
	}

	remote := c.submitAndWait(req)
	if remote.Stats.Failed != 0 {
		t.Fatalf("distributed batch failed: %+v", remote.Results)
	}
	if len(remote.Results) != len(local.Results) {
		t.Fatalf("%d results, want %d", len(remote.Results), len(local.Results))
	}
	for i, g := range remote.Results {
		w := local.Results[i]
		if g.Name != w.Name || g.Level != w.Level ||
			g.Instructions != w.Instructions || g.BoardCycles != w.BoardCycles ||
			g.C6xCycles != w.C6xCycles || g.GeneratedCycles != w.GeneratedCycles ||
			g.CPI != w.CPI || g.MIPS != w.MIPS ||
			g.DeviationPct != w.DeviationPct || g.Seconds != w.Seconds {
			t.Errorf("result %d: distributed differs from local:\n dist  %+v\n local %+v", i, g, w)
		}
	}
	if remote.Stats.Workers != 2 {
		t.Errorf("distributed stats report %d workers, want 2", remote.Stats.Workers)
	}

	// The workers executed through the shared store and the queue saw
	// the whole batch.
	m := metrics(t, ts.URL)
	if m["cabt_queue_completed_total"] != fmt.Sprint(len(req.Workloads)*len(req.Levels)) {
		t.Errorf("cabt_queue_completed_total = %s, want %d", m["cabt_queue_completed_total"], len(req.Workloads)*len(req.Levels))
	}
	if m["cabt_store_remote_gets_total"] == "0" {
		t.Errorf("no remote store traffic: %v", m)
	}
}

// evilWorker is a raw protocol client that leases tasks and never
// completes them — the kill -9 simulator.
type evilWorker struct {
	t    *testing.T
	base string
	id   string
}

func newEvilWorker(t *testing.T, base string) *evilWorker {
	t.Helper()
	e := &evilWorker{t: t, base: base}
	var resp dist.RegisterResponse
	e.post("/v1/workers/register", dist.RegisterRequest{Name: "evil"}, &resp)
	e.id = resp.WorkerID
	return e
}

func (e *evilWorker) post(path string, in, out any) {
	e.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := http.Post(e.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		e.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(resp.Body)
		e.t.Fatalf("POST %s: %s: %s", path, resp.Status, msg)
	}
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
}

// lease polls until a task is granted — the submit handler enqueues
// from a goroutine, so the first poll can race it.
func (e *evilWorker) lease() *dist.Task {
	deadline := time.Now().Add(5 * time.Second)
	for {
		var resp dist.LeaseResponse
		e.post("/v1/workers/"+e.id+"/lease", struct{}{}, &resp)
		if resp.Task != nil {
			return resp.Task
		}
		if time.Now().After(deadline) {
			e.t.Fatal("no task leased")
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWorkerLossRequeues kills a worker mid-task (by having it lease
// and vanish) and requires the batch to complete on the surviving
// worker anyway.
func TestWorkerLossRequeues(t *testing.T) {
	_, ts, mk := distServer(t, server.Config{LeaseTTL: time.Second})
	c := mk("")

	// The evil worker registers first, so the batch is dispatched to the
	// queue; it leases one task and is never heard from again.
	evil := newEvilWorker(t, ts.URL)

	var sub server.SubmitResponse
	c.do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0, 1}}, http.StatusAccepted, &sub)
	if tk := evil.lease(); tk == nil {
		t.Fatal("evil worker got no task")
	}

	// A real worker arrives, drains the other task, and — once the evil
	// lease expires — re-runs the abandoned one.
	startWorker(t, ts.URL, dist.WorkerConfig{Name: "survivor"})

	var job server.JobResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
		if job.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch did not recover from worker loss")
		}
	}
	if job.Status != "done" || job.Stats == nil || job.Stats.Failed != 0 {
		t.Fatalf("batch after worker loss: %+v", job)
	}
	m := metrics(t, ts.URL)
	if m["cabt_queue_lease_expiries_total"] == "0" {
		t.Errorf("no lease expiry recorded: %v", m)
	}
	if m["cabt_queue_retries_total"] == "0" {
		t.Errorf("no retry recorded: %v", m)
	}
}

// rawJob fetches GET /v1/jobs/{id} and returns the exact response body.
func rawJob(t *testing.T, base, tenant, id string) []byte {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(server.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: %s", id, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRestartDurability runs a batch, restarts the server over the same
// journal, and requires GET /v1/jobs/{id} to return byte-identical
// responses before and after.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal.cabt")

	s1, ts1, mk := distServer(t, server.Config{Workers: 2, Journal: journal})
	c := mk("acme")
	job := c.submitAndWait(server.SubmitRequest{Workloads: []string{"gcd", "sieve"}, Levels: []int{1, 3}})
	if job.Stats.Failed != 0 {
		t.Fatalf("batch failed: %+v", job.Results)
	}
	before := rawJob(t, ts1.URL, "acme", job.ID)
	ts1.Close()
	s1.Close()

	_, ts2, _ := distServer(t, server.Config{Workers: 2, Journal: journal})
	after := rawJob(t, ts2.URL, "acme", job.ID)
	if !bytes.Equal(before, after) {
		t.Fatalf("restart changed the response:\nbefore: %s\nafter:  %s", before, after)
	}

	// Tenant isolation survives the restart too.
	if body := rawJobStatus(t, ts2.URL, "globex", job.ID); body != http.StatusNotFound {
		t.Fatalf("foreign tenant sees replayed job: HTTP %d", body)
	}
}

func rawJobStatus(t *testing.T, base, tenant, id string) int {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+id, nil)
	if tenant != "" {
		req.Header.Set(server.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestRestartFailsInterruptedBatch: a batch submitted but unfinished at
// crash time replays as failed, durably.
func TestRestartFailsInterruptedBatch(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.cabt")
	j, err := dist.OpenJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	created := time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)
	if err := j.Append(dist.Record{Type: dist.RecordSubmitted, ID: "job-1", Tenant: "acme", Kind: "sweep", Jobs: 4, Time: created}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts, mk := distServer(t, server.Config{Journal: journal})
	var job server.JobResponse
	mk("acme").do("GET", "/v1/jobs/job-1", nil, http.StatusOK, &job)
	if job.Status != "failed" || !strings.Contains(job.Error, "interrupted") {
		t.Fatalf("interrupted batch = %+v, want failed/interrupted", job)
	}
	if !job.Created.Equal(created) {
		t.Fatalf("created = %v, want %v", job.Created, created)
	}

	// New submissions must not collide with the replayed ID.
	sweep := mk("acme").submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}})
	if sweep.ID == "job-1" {
		t.Fatalf("replayed ID reused: %s", sweep.ID)
	}
	_ = ts
}

// TestGracefulDrain wires a fake signal exactly like cabt-serve's main
// and verifies the drain contract: the signal stops new submissions
// (503), pending queue work fails fast, the in-flight task finishes,
// and the batch lands journaled.
func TestGracefulDrain(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "journal.cabt")
	s, ts, mk := distServer(t, server.Config{Journal: journal, LeaseTTL: time.Minute})
	c := mk("")

	evil := newEvilWorker(t, ts.URL)
	var sub server.SubmitResponse
	c.do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0, 1}}, http.StatusAccepted, &sub)
	task := evil.lease()
	if task == nil {
		t.Fatal("no task leased")
	}

	// The fake SIGTERM arrives, as in cabt-serve's main loop.
	sig := make(chan os.Signal, 1)
	sig <- syscall.SIGTERM
	<-sig
	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Draining: new submissions are refused with Retry-After.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"workloads":["gcd"],"levels":[0]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted while draining (last: %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight worker finishes its task through the drain.
	evil.post("/v1/workers/"+evil.id+"/complete", dist.TaskResult{
		TaskID: task.ID, Index: task.Index, Worker: evil.id,
		Sim: &simfarm.Result{Index: 0, Name: task.Sim.Workload.Name, Level: task.Sim.Options.Level},
	}, nil)

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	var job server.JobResponse
	c.do("GET", sub.URL, nil, http.StatusOK, &job)
	if job.Status != "done" {
		t.Fatalf("batch after drain: %+v", job)
	}
	// One result came from the in-flight worker; the other was failed by
	// the draining queue.
	var failed int
	for _, r := range job.Results {
		if r.Error != "" {
			failed++
			if !strings.Contains(r.Error, "draining") {
				t.Errorf("unexpected failure: %q", r.Error)
			}
		}
	}
	if failed != 1 || job.Stats.Failed != 1 {
		t.Fatalf("failed results = %d (stats %d), want 1", failed, job.Stats.Failed)
	}

	// The drained batch is journaled: a restart replays it verbatim.
	before := rawJob(t, ts.URL, "", job.ID)
	ts.Close()
	s.Close()
	_, ts2, _ := distServer(t, server.Config{Journal: journal})
	if after := rawJob(t, ts2.URL, "", job.ID); !bytes.Equal(before, after) {
		t.Fatalf("drained batch not journaled faithfully:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestMetricsEndpoint sanity-checks the exposition format and a few
// lifecycle transitions.
func TestMetricsEndpoint(t *testing.T) {
	_, ts, mk := distServer(t, server.Config{})
	m := metrics(t, ts.URL)
	for _, name := range []string{
		"cabt_up", "cabt_uptime_seconds", "cabt_draining",
		"cabt_jobs_submitted_total", "cabt_jobs_running", "cabt_jobs_done", "cabt_jobs_failed",
		"cabt_queue_pending", "cabt_queue_leased", "cabt_workers_live",
		"cabt_queue_lease_expiries_total", "cabt_rate_limited_total",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	if m["cabt_up"] != "1" || m["cabt_jobs_submitted_total"] != "0" {
		t.Fatalf("fresh server metrics: %v", m)
	}

	mk("").submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}})
	m = metrics(t, ts.URL)
	if m["cabt_jobs_submitted_total"] != "1" || m["cabt_jobs_done"] != "1" {
		t.Fatalf("after one batch: submitted=%s done=%s", m["cabt_jobs_submitted_total"], m["cabt_jobs_done"])
	}
}

// lockedClock is a race-safe manual clock for server.Config.Clock.
type lockedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *lockedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *lockedClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestRateLimit drives the per-tenant token bucket with a fake clock.
func TestRateLimit(t *testing.T) {
	clk := &lockedClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
	_, ts, mk := distServer(t, server.Config{
		RateLimit: 1, RateBurst: 2,
		Clock: clk.Now,
	})

	submit := func() *http.Response {
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"workloads":["gcd"],"levels":[0]}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(server.TenantHeader, "acme")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := range 2 {
		if resp := submit(); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submission %d: HTTP %d", i, resp.StatusCode)
		}
	}
	resp := submit()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submission: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Other tenants are unaffected.
	var sub server.SubmitResponse
	mk("globex").do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0}}, http.StatusAccepted, &sub)

	// After the advertised wait the tenant may submit again.
	clk.Advance(time.Second)
	if resp := submit(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submission: HTTP %d", resp.StatusCode)
	}

	if m := metrics(t, ts.URL); m["cabt_rate_limited_total"] != "1" {
		t.Fatalf("cabt_rate_limited_total = %s, want 1", m["cabt_rate_limited_total"])
	}
}
