package server_test

import (
	"crypto/sha256"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simfarm/dist"
	"repro/internal/simfarm/server"
	"repro/internal/simfarm/store"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// promScrape fetches /v1/metrics and parses it as strict Prometheus
// text exposition (0.0.4): every sample line must belong to a family
// declared by a preceding # TYPE, names and labels must be well-formed,
// and histogram families must expose cumulative buckets whose +Inf
// bucket equals _count. The round trip is the test: anything the
// registry emits that a Prometheus scraper would reject fails here.
type promDump struct {
	types map[string]string  // family -> counter|gauge|histogram
	vals  map[string]float64 // "name{labels}" (labels as rendered) -> value
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9].*|\+Inf|NaN)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// histFamily maps a histogram sample name back to its base family.
func histFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

func promScrape(t *testing.T, base string) promDump {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	d := promDump{types: map[string]string{}, vals: map[string]float64{}}
	for _, ln := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(ln, "# HELP "):
			rest := strings.TrimPrefix(ln, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("bad HELP line %q", ln)
			}
		case strings.HasPrefix(ln, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(ln, "# TYPE "))
			if len(fields) != 2 || !promNameRe.MatchString(fields[0]) {
				t.Fatalf("bad TYPE line %q", ln)
			}
			typ := fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown metric type in %q", ln)
			}
			if prev, dup := d.types[fields[0]]; dup {
				t.Fatalf("family %s declared twice (%s then %s): registries overlap", fields[0], prev, typ)
			}
			d.types[fields[0]] = typ
		case strings.HasPrefix(ln, "#"):
			t.Fatalf("unparseable comment line %q", ln)
		default:
			m := promSampleRe.FindStringSubmatch(ln)
			if m == nil {
				t.Fatalf("unparseable sample line %q", ln)
			}
			name, labels, valStr := m[1], m[2], m[3]
			if labels != "" {
				for _, l := range strings.Split(labels[1:len(labels)-1], ",") {
					if !promLabelRe.MatchString(l) {
						t.Fatalf("bad label %q in line %q", l, ln)
					}
				}
			}
			fam := histFamily(name, d.types)
			typ, declared := d.types[fam]
			if !declared {
				t.Fatalf("sample %q has no preceding # TYPE", ln)
			}
			if typ == "histogram" && fam == name {
				t.Fatalf("histogram family %s exposes a bare sample %q", fam, ln)
			}
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", ln, err)
			}
			key := name + labels
			if _, dup := d.vals[key]; dup {
				t.Fatalf("duplicate series %q", key)
			}
			d.vals[key] = v
		}
	}
	d.checkHistograms(t)
	return d
}

// checkHistograms verifies every histogram label-set is cumulative and
// coherent: non-decreasing buckets, +Inf bucket present and equal to
// _count.
func (d promDump) checkHistograms(t *testing.T) {
	t.Helper()
	type hkey struct{ series string } // _bucket series minus the le label
	buckets := map[string][]struct {
		le string
		v  float64
	}{}
	leRe := regexp.MustCompile(`le="([^"]*)",?`)
	for key, v := range d.vals {
		name, labels, _ := strings.Cut(key, "{")
		if !strings.HasSuffix(name, "_bucket") || d.types[histFamily(name, d.types)] != "histogram" {
			continue
		}
		le := leRe.FindStringSubmatch(labels)
		if le == nil {
			t.Fatalf("bucket series %q has no le label", key)
		}
		rest := strings.Trim(leRe.ReplaceAllString(labels, ""), "{},")
		id := strings.TrimSuffix(name, "_bucket") + "{" + rest + "}"
		buckets[id] = append(buckets[id], struct {
			le string
			v  float64
		}{le[1], v})
	}
	for id, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return leFloat(bs[i].le) < leFloat(bs[j].le) })
		var prev float64
		var haveInf bool
		var infV float64
		for _, b := range bs {
			if b.v < prev {
				t.Errorf("%s: bucket le=%s value %g below previous %g (not cumulative)", id, b.le, b.v, prev)
			}
			prev = b.v
			if b.le == "+Inf" {
				haveInf, infV = true, b.v
			}
		}
		if !haveInf {
			t.Errorf("%s: no +Inf bucket", id)
			continue
		}
		base, rest, _ := strings.Cut(id, "{")
		rest = strings.TrimSuffix(rest, "}")
		countKey := base + "_count"
		if rest != "" {
			countKey += "{" + rest + "}"
		}
		if c, ok := d.vals[countKey]; !ok {
			t.Errorf("%s: missing %s", id, countKey)
		} else if c != infV {
			t.Errorf("%s: +Inf bucket %g != count %g", id, infV, c)
		}
	}
}

func leFloat(s string) float64 {
	if s == "+Inf" {
		return 1e308
	}
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// val returns a series value, failing the test when the series is
// absent — exact-count assertions must not silently read zero.
func (d promDump) val(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := d.vals[key]
	if !ok {
		t.Fatalf("metrics have no series %q", key)
	}
	return v
}

// delta is the change in a series between two scrapes (0 when absent in
// both — process-global families may not exist before first use).
func delta(after, before promDump, key string) float64 {
	return after.vals[key] - before.vals[key]
}

// TestMetricsPrometheusRoundTrip scrapes a store-backed server after
// one in-process batch and requires the exposition to parse strictly,
// with every legacy series still present under its original name and a
// sensible type.
func TestMetricsPrometheusRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, ts, mk := distServer(t, server.Config{Workers: 2, Store: st})

	mk("").submitAndWait(server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0, 1}})
	d := promScrape(t, ts.URL)

	wantType := map[string]string{
		"cabt_up":                         "gauge",
		"cabt_uptime_seconds":             "gauge",
		"cabt_draining":                   "gauge",
		"cabt_tenants":                    "gauge",
		"cabt_jobs_submitted_total":       "counter",
		"cabt_jobs_running":               "gauge",
		"cabt_jobs_done":                  "gauge",
		"cabt_jobs_failed":                "gauge",
		"cabt_rate_limited_total":         "counter",
		"cabt_queue_pending":              "gauge",
		"cabt_queue_leased":               "gauge",
		"cabt_queue_enqueued_total":       "counter",
		"cabt_queue_completed_total":      "counter",
		"cabt_queue_failed_total":         "counter",
		"cabt_queue_lease_expiries_total": "counter",
		"cabt_queue_retries_total":        "counter",
		"cabt_workers_live":               "gauge",
		"cabt_store_objects":              "gauge",
		"cabt_store_bytes":                "gauge",
		"cabt_store_loads_total":          "counter",
		"cabt_store_puts_total":           "counter",
		"cabt_store_remote_gets_total":    "counter",
		// Process-global instrumentation, populated by the batch above.
		"cabt_farm_jobs_total":      "counter",
		"cabt_farm_stage_seconds":   "histogram",
		"cabt_cache_requests_total": "counter",
	}
	for fam, typ := range wantType {
		if got := d.types[fam]; got != typ {
			t.Errorf("family %s: type %q, want %q", fam, got, typ)
		}
	}

	if d.val(t, "cabt_up") != 1 {
		t.Errorf("cabt_up = %g, want 1", d.val(t, "cabt_up"))
	}
	if d.val(t, "cabt_jobs_submitted_total") != 1 {
		t.Errorf("cabt_jobs_submitted_total = %g, want 1", d.val(t, "cabt_jobs_submitted_total"))
	}
	// The farm instrumented both jobs of the batch and timed each stage.
	if v := d.val(t, "cabt_farm_stage_seconds_count{stage=\"execute\"}"); v < 2 {
		t.Errorf("execute stage count = %g, want >= 2", v)
	}
	// Legacy grep-compatibility: integral series still render without an
	// exponent or decimal point (the dist-smoke CI greps ^cabt_workers_live 2).
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"\ncabt_workers_live 0\n", "cabt_up 1\n", "\ncabt_jobs_submitted_total 1\n"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition lost the legacy line %q", strings.TrimSpace(want))
		}
	}
}

// TestDistObservabilityExactCounters drives a scripted distributed
// scenario — an abandoned lease, a recovering worker, a warm second
// pass, and a revalidated upload — and asserts the exact counter values
// the metrics endpoint must report for it.
func TestDistObservabilityExactCounters(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, ts, mk := distServer(t, server.Config{Store: st, LeaseTTL: 2 * time.Second})
	c := mk("")
	before := promScrape(t, ts.URL)

	// Phase 1 — cold pass with a lost worker: the evil worker leases one
	// of the two tasks and vanishes; the real (ephemeral) worker drains
	// the other, then re-runs the abandoned one after its lease expires.
	evil := newEvilWorker(t, ts.URL)
	var sub server.SubmitResponse
	req := server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{0, 1}}
	c.do("POST", "/v1/jobs", req, http.StatusAccepted, &sub)
	if tk := evil.lease(); tk == nil {
		t.Fatal("evil worker got no task")
	}
	startWorker(t, ts.URL, dist.WorkerConfig{Name: "w1", Ephemeral: true})
	waitDone(t, c, sub.URL)

	cold := promScrape(t, ts.URL)
	// Queue accounting: 2 tasks enqueued and completed; exactly the one
	// abandoned lease expired and was redelivered exactly once.
	for key, want := range map[string]float64{
		"cabt_queue_enqueued_total":       2,
		"cabt_queue_completed_total":      2,
		"cabt_queue_failed_total":         0,
		"cabt_queue_lease_expiries_total": 1,
		"cabt_queue_retries_total":        1,
		"cabt_queue_pending":              0,
		"cabt_queue_leased":               0,
	} {
		if got := cold.val(t, key); got != want {
			t.Errorf("cold pass: %s = %g, want %g", key, got, want)
		}
	}
	// Store-protocol accounting: per task one Load GET (404) and one
	// If-None-Match revalidation GET (404) before the PUT.
	for key, want := range map[string]float64{
		"cabt_store_remote_gets_total":         4,
		"cabt_store_remote_hits_total":         0,
		"cabt_store_remote_misses_total":       4,
		"cabt_store_remote_not_modified_total": 0,
		"cabt_store_remote_puts_total":         2,
		"cabt_store_remote_bad_puts_total":     0,
	} {
		if got := cold.val(t, key); got != want {
			t.Errorf("cold pass: %s = %g, want %g", key, got, want)
		}
	}
	// Worker-side remote-tier cache telemetry (process-global, so
	// compared as a delta): both lookups missed over the network.
	if got := delta(cold, before, `cabt_cache_requests_total{tier="remote",outcome="miss"}`); got != 2 {
		t.Errorf("cold pass: remote-tier misses delta = %g, want 2", got)
	}

	// Phase 2 — warm pass: the ephemeral worker starts each task with an
	// empty memory cache, so both translations are served by the server
	// store: one GET and one hit each, no uploads.
	c.submitAndWait(req)
	warm := promScrape(t, ts.URL)
	for key, want := range map[string]float64{
		"cabt_store_remote_gets_total":         2,
		"cabt_store_remote_hits_total":         2,
		"cabt_store_remote_misses_total":       0,
		"cabt_store_remote_puts_total":         0,
		"cabt_store_remote_not_modified_total": 0,
		"cabt_queue_completed_total":           2,
		"cabt_queue_lease_expiries_total":      0,
	} {
		if got := delta(warm, cold, key); got != want {
			t.Errorf("warm pass: Δ%s = %g, want %g", key, got, want)
		}
	}
	if got := delta(warm, cold, `cabt_cache_requests_total{tier="remote",outcome="hit"}`); got != 2 {
		t.Errorf("warm pass: remote-tier hits delta = %g, want 2", got)
	}

	// Phase 3 — revalidated upload: storing an object the server already
	// holds must cost one 304, not a second upload.
	rs := dist.NewRemoteStore(ts.URL, "obs-test", nil, nil)
	prog := translateGCD(t)
	key := sha256.Sum256([]byte("obs-exact-counter-object"))
	if err := rs.Store(key, prog); err != nil {
		t.Fatal(err)
	}
	if err := rs.Store(key, prog); err != nil {
		t.Fatal(err)
	}
	reval := promScrape(t, ts.URL)
	for key, want := range map[string]float64{
		"cabt_store_remote_puts_total":         1, // first Store uploads
		"cabt_store_remote_not_modified_total": 1, // second is a 304
		"cabt_store_remote_gets_total":         2, // one revalidation GET each
	} {
		if got := delta(reval, warm, key); got != want {
			t.Errorf("revalidation: Δ%s = %g, want %g", key, got, want)
		}
	}
	if got := delta(reval, warm, "cabt_remote_store_puts_skipped_total"); got != 1 {
		t.Errorf("revalidation: Δcabt_remote_store_puts_skipped_total = %g, want 1", got)
	}
	if st := rs.Stats(); st.Puts != 1 || st.PutsSkipped != 1 {
		t.Errorf("client stats %+v, want 1 put + 1 skipped", st)
	}
}

// waitDone polls a submitted job until it leaves "running".
func waitDone(t *testing.T, c *client, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var job server.JobResponse
		c.do("GET", url+"?wait=1", nil, http.StatusOK, &job)
		if job.Status != "running" {
			if job.Status != "done" || job.Stats == nil || job.Stats.Failed != 0 {
				t.Fatalf("batch did not finish cleanly: %+v", job)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("batch did not finish")
		}
	}
}

// translateGCD builds a small real program for store round trips.
func translateGCD(t *testing.T) *core.Program {
	t.Helper()
	w, ok := workload.ByName("gcd")
	if !ok {
		t.Fatal("no gcd workload")
	}
	f, err := tc32asm.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Translate(f, core.Options{Level: core.Level1})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}
