package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/simfarm/server"
	"repro/internal/simfarm/store"
)

// client wraps one tenant's view of a test server.
type client struct {
	t      *testing.T
	base   string
	tenant string
	http   *http.Client
}

// mustNew builds a server, failing the test on a journal error, and
// releases its background resources at cleanup.
func mustNew(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newServer(t *testing.T, st *store.Store) (*httptest.Server, func(tenant string) *client) {
	t.Helper()
	ts := httptest.NewServer(mustNew(t, server.Config{Workers: 4, Store: st}))
	t.Cleanup(ts.Close)
	return ts, func(tenant string) *client {
		return &client{t: t, base: ts.URL, tenant: tenant, http: ts.Client()}
	}
}

func (c *client) do(method, path string, body any, wantCode int, out any) {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.tenant != "" {
		req.Header.Set(server.TenantHeader, c.tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		c.t.Fatalf("%s %s: HTTP %d (want %d): %s", method, path, resp.StatusCode, wantCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatal(err)
		}
	}
}

// submitAndWait submits a batch and blocks until it is done.
func (c *client) submitAndWait(req server.SubmitRequest) server.JobResponse {
	c.t.Helper()
	var sub server.SubmitResponse
	c.do("POST", "/v1/jobs", req, http.StatusAccepted, &sub)
	deadline := time.Now().Add(time.Minute)
	for {
		var job server.JobResponse
		c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
		if job.Status == "done" {
			return job
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s did not finish", sub.ID)
		}
	}
}

// TestSubmitMatchesDirectMeasure: an HTTP-submitted job must return
// exactly what repro.Measure computes for the same (workload, level).
func TestSubmitMatchesDirectMeasure(t *testing.T) {
	_, mk := newServer(t, nil)
	job := mk("").submitAndWait(server.SubmitRequest{Workloads: []string{"gcd", "sieve"}, Levels: []int{0, 3}})
	if job.Stats.Failed != 0 {
		t.Fatalf("failed jobs: %+v", job.Results)
	}
	if len(job.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(job.Results))
	}
	for _, r := range job.Results {
		w, ok := repro.WorkloadByName(r.Name)
		if !ok {
			t.Fatalf("unknown workload %q in result", r.Name)
		}
		m, err := repro.Measure(w, r.Level)
		if err != nil {
			t.Fatal(err)
		}
		lr := m.Levels[r.Level]
		if r.Instructions != m.Instructions || r.BoardCycles != m.BoardCycles ||
			r.C6xCycles != lr.C6xCycles || r.GeneratedCycles != lr.GeneratedCycles {
			t.Errorf("%s L%d: HTTP result differs from repro.Measure", r.Name, int(r.Level))
		}
	}
}

// TestExplicitJobSpecs exercises the jobs form with named configs.
func TestExplicitJobSpecs(t *testing.T) {
	_, mk := newServer(t, nil)
	job := mk("").submitAndWait(server.SubmitRequest{Jobs: []server.JobSpec{
		{Workload: "gcd", Level: 3, Config: "icache-4k"},
		{Workload: "gcd", Level: 3, Config: "icache-64b-direct"},
	}})
	if job.Stats.Failed != 0 {
		t.Fatalf("failed jobs: %+v", job.Results)
	}
	if job.Results[0].GeneratedCycles == job.Results[1].GeneratedCycles {
		t.Error("different I-cache configs produced identical L3 cycle counts")
	}
}

// TestWarmPassHitsCacheAcrossRestart: a second server over the same
// store directory serves the batch from disk.
func TestWarmPassHitsCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, mk := newServer(t, st)
	req := server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1, 2}}
	cold := mk("").submitAndWait(req)
	if cold.Stats.CacheMisses == 0 {
		t.Fatal("cold pass translated nothing")
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, mk2 := newServer(t, st2)
	warm := mk2("").submitAndWait(req)
	if warm.Stats.CacheHits == 0 || warm.Stats.CacheMisses != 0 {
		t.Fatalf("restarted server did not serve from disk: %+v", warm.Stats)
	}
	for i := range warm.Results {
		if warm.Results[i].C6xCycles != cold.Results[i].C6xCycles {
			t.Errorf("result %d differs across restart", i)
		}
	}
}

// TestTenantIsolation: two tenants submitting the identical batch share
// no cache entries — each translates for itself, and the store holds one
// object per (tenant, key).
func TestTenantIsolation(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, mk := newServer(t, st)
	req := server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1}}

	ca, cb := mk("tenant-a"), mk("tenant-b")
	a := ca.submitAndWait(req)
	if a.Stats.CacheMisses != 1 {
		t.Fatalf("tenant-a misses = %d, want 1", a.Stats.CacheMisses)
	}
	b := cb.submitAndWait(req)
	if b.Stats.CacheMisses != 1 {
		t.Fatalf("tenant-b should not see tenant-a's cache: %+v", b.Stats)
	}
	if a.Results[0].C6xCycles != b.Results[0].C6xCycles {
		t.Error("tenants disagree on identical jobs")
	}
	if got := st.Stats().Objects; got != 2 {
		t.Errorf("store objects = %d, want 2 (one per tenant namespace)", got)
	}

	// Job records are tenant-scoped: a foreign tenant (or the anonymous
	// tenant) sees a 404 indistinguishable from a missing id.
	cb.do("GET", "/v1/jobs/"+a.ID, nil, http.StatusNotFound, nil)
	mk("").do("GET", "/v1/jobs/"+a.ID, nil, http.StatusNotFound, nil)
	ca.do("GET", "/v1/jobs/"+a.ID, nil, http.StatusOK, nil)

	// Stats disclose only the caller's own farm, plus the tenant count.
	var stats server.StatsResponse
	ca.do("GET", "/v1/stats", nil, http.StatusOK, &stats)
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "tenant-a" {
		t.Fatalf("tenant-a stats tenants = %+v, want only tenant-a", stats.Tenants)
	}
	if stats.TenantCount != 2 {
		t.Errorf("tenant count = %d, want 2", stats.TenantCount)
	}
	if stats.Store == nil || stats.Store.Objects != 2 {
		t.Errorf("stats store = %+v", stats.Store)
	}
	var anon server.StatsResponse
	mk("").do("GET", "/v1/stats", nil, http.StatusOK, &anon)
	if len(anon.Tenants) != 0 {
		t.Errorf("anonymous caller sees tenant farms: %+v", anon.Tenants)
	}
}

// TestBadRequests covers the API's rejection paths.
func TestBadRequests(t *testing.T) {
	ts, mk := newServer(t, nil)
	c := mk("")
	for _, tc := range []struct {
		name string
		req  server.SubmitRequest
	}{
		{"empty", server.SubmitRequest{}},
		{"unknown-workload", server.SubmitRequest{Workloads: []string{"nope"}, Levels: []int{1}}},
		{"bad-level", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{7}}},
		{"unknown-config", server.SubmitRequest{Jobs: []server.JobSpec{{Workload: "gcd", Level: 1, Config: "nope"}}}},
		{"both-forms", server.SubmitRequest{
			Jobs:      []server.JobSpec{{Workload: "gcd", Level: 1}},
			Workloads: []string{"gcd"}, Levels: []int{1},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c.do("POST", "/v1/jobs", tc.req, http.StatusBadRequest, nil)
		})
	}

	t.Run("bad-tenant", func(t *testing.T) {
		mk("no/slashes allowed").do("POST", "/v1/jobs",
			server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1}}, http.StatusBadRequest, nil)
	})
	t.Run("unknown-job", func(t *testing.T) {
		c.do("GET", "/v1/jobs/job-999", nil, http.StatusNotFound, nil)
	})
	t.Run("malformed-json", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400", resp.StatusCode)
		}
	})
}

// TestStatusTransitions: a submitted job is observable as running before
// done, and its record carries the batch shape.
func TestStatusTransitions(t *testing.T) {
	_, mk := newServer(t, nil)
	c := mk("")
	var sub server.SubmitResponse
	c.do("POST", "/v1/jobs", server.SubmitRequest{Workloads: []string{"gcd"}, Levels: []int{1}},
		http.StatusAccepted, &sub)
	if sub.Jobs != 1 || sub.Status != "running" || sub.URL != fmt.Sprintf("/v1/jobs/%s", sub.ID) {
		t.Fatalf("submit response = %+v", sub)
	}
	var job server.JobResponse
	c.do("GET", sub.URL+"?wait=1", nil, http.StatusOK, &job)
	if job.Status != "done" || job.Jobs != 1 || len(job.Results) != 1 || job.Stats == nil {
		t.Fatalf("job response = %+v", job)
	}
}
