// Package server is the HTTP front-end of the simulation farm: it turns
// the in-process batch API (simfarm.Farm.Run) into the multi-tenant
// batch-simulation service the ROADMAP's north star describes, served by
// cmd/cabt-serve.
//
// # API
//
//	POST /v1/jobs        submit a batch; returns 202 and a job id
//	GET  /v1/jobs/{id}   status; results + batch stats once done
//	                     (?wait=1 blocks until the batch finishes)
//	GET  /v1/stats       uptime, job counts, the caller's own farm
//	                     stats, persistent-store stats
//
// Requests and responses are JSON; the wire types (SubmitRequest,
// JobResponse, StatsResponse, …) are the authoritative schema and are
// shared with the cabt-smoke client. A submission either lists explicit
// JobSpec entries (workload × level × named config) or uses the
// workloads × levels sweep shorthand. Everything is by name — clients
// never ship code — so a job's results are exactly what the in-process
// farm, and transitively repro.Measure, would produce for the same
// (workload, options) pair.
//
// # Tenancy
//
// The X-Cabt-Tenant header scopes a request. Each tenant gets its own
// Farm (memoized assemblies, reference runs, in-memory translation
// cache), and, when the server has a persistent store, the tenant's
// cache writes through to the tenant's namespace of that store
// (store.Store.Namespace): capacity is shared, cache entries are not.
// The empty tenant is the store's root namespace — shared with local
// cabt-farm -cache-dir runs against the same directory. Job records and
// stats are scoped the same way: another tenant's job id answers 404,
// and /v1/stats reports only the caller's own farm counters.
package server
