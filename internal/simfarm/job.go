package simfarm

import (
	"repro/internal/core"
	"repro/internal/workload"
)

// Job is one simulation request: run one workload through the translator
// at one detail level under one microarchitecture configuration, and
// measure it against the cycle-accurate reference simulator.
type Job struct {
	// Workload is the program to simulate (assembly source plus the
	// expected debug-port output used for functional verification).
	Workload workload.Workload
	// Config optionally labels the microarchitecture configuration for
	// sweeps; it is carried through to the Result untouched.
	Config string
	// Options selects the translation detail level, the source-processor
	// description (nil = march.Default) and the ablation switches.
	Options core.Options
}

// Result is the outcome of one Job. The modeled quantities use exactly
// the formulas of repro.Measure, so a farm result is interchangeable
// with a direct measurement: CPI and MIPS follow the paper's Table 1 and
// Figure 5, DeviationPct follows Figure 6, Seconds follows Table 2.
type Result struct {
	// Index is the job's position in the submitted batch; Farm.Run
	// orders its result slice by it.
	Index  int        `json:"index"`
	Name   string     `json:"name"`
	Level  core.Level `json:"level"`
	Config string     `json:"config,omitempty"`

	// Reference ("TC10GP evaluation board") quantities.
	Instructions int64   `json:"instructions"`
	BoardCycles  int64   `json:"board_cycles"`
	BoardCPI     float64 `json:"board_cpi"`
	BoardMIPS    float64 `json:"board_mips"`
	BoardSeconds float64 `json:"board_seconds"`

	// Translated-run quantities.
	C6xCycles       int64   `json:"c6x_cycles"`
	GeneratedCycles int64   `json:"generated_cycles"`
	CPI             float64 `json:"cpi"`
	MIPS            float64 `json:"mips"`
	DeviationPct    float64 `json:"deviation_pct"`
	Seconds         float64 `json:"seconds"`

	// CacheHit reports whether translation was served from the
	// content-addressed cache.
	CacheHit bool `json:"cache_hit"`

	// Host wall-times. RefWallSeconds is the wall-time of the reference
	// ISS run for this program (recorded once; memoized runs repeat the
	// first measurement). SpeedupVsISS is the host-speed advantage of
	// the translated platform run over the reference ISS —
	// RefWallSeconds / RunWallSeconds.
	TranslateWallSeconds float64 `json:"translate_wall_seconds"`
	RunWallSeconds       float64 `json:"run_wall_seconds"`
	RefWallSeconds       float64 `json:"ref_wall_seconds"`
	SpeedupVsISS         float64 `json:"speedup_vs_iss"`

	// Err is the job failure, if any (functional mismatch, assembly or
	// translation error); Error is its string form for JSON consumers.
	Err   error  `json:"-"`
	Error string `json:"error,omitempty"`

	// cacheState tracks whether this job reached translation, for batch
	// hit/miss accounting (0 = never translated, 1 = hit, 2 = miss).
	cacheState int
}

// CacheOutcome reports the job's translation-cache outcome for batch
// accounting: 0 = the job never reached translation, 1 = cache hit,
// 2 = cache miss. It exists so the distributed path can carry the
// outcome over the wire (the field is deliberately not serialized with
// the result) and restore it with SetCacheOutcome before summarizing.
func (r *Result) CacheOutcome() int { return r.cacheState }

// SetCacheOutcome restores a wire-transferred cache outcome; see
// CacheOutcome.
func (r *Result) SetCacheOutcome(state int) { r.cacheState = state }

// BatchStats summarizes one Farm.Run batch.
type BatchStats struct {
	Jobs    int `json:"jobs"`
	Failed  int `json:"failed"`
	Workers int `json:"workers"`

	// Translation-cache traffic of this batch.
	CacheHits    int64   `json:"translation_cache_hits"`
	CacheMisses  int64   `json:"translation_cache_misses"`
	CacheHitRate float64 `json:"translation_cache_hit_rate"`

	// Totals across successful jobs.
	TotalC6xCycles       int64 `json:"total_c6x_cycles"`
	TotalGeneratedCycles int64 `json:"total_generated_cycles"`

	// Throughput: simulated platform cycles per host wall-second.
	WallSeconds        float64 `json:"wall_seconds"`
	C6xCyclesPerSecond float64 `json:"c6x_cycles_per_second"`
}

// FarmStats is the farm's cumulative view across every batch it has run.
type FarmStats struct {
	JobsRun        int64 `json:"jobs_run"`
	Failed         int64 `json:"failed"`
	CacheHits      int64 `json:"translation_cache_hits"`
	CacheMisses    int64 `json:"translation_cache_misses"`
	CachedPrograms int   `json:"cached_programs"`
	ReferenceRuns  int64 `json:"reference_runs"`

	// DiskCacheHits counts the cache hits served from the persistent
	// translation-cache store (a subset of CacheHits; 0 when the farm's
	// cache is memory-only).
	DiskCacheHits int64 `json:"disk_cache_hits"`
}

// Report is the JSON document cmd/cabt-farm emits for a sweep.
type Report struct {
	Workers int        `json:"workers"`
	Results []Result   `json:"results"`
	Stats   BatchStats `json:"stats"`
}
