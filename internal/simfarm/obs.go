package simfarm

// Farm telemetry: job counters, per-stage wall-time histograms, and
// translation-cache tier counters/latencies, all in the process-global
// obs registry. Everything is per-job granularity — the simulation hot
// loops themselves are never instrumented.
//
// Cache tiers: "memory" is the in-process TranslationCache map;
// "disk" is its persistent ProgramStore level, whatever backs it — on a
// distributed worker that level is a dist.RemoteStore, whose own
// local-disk/network split is broken out by the tier="remote" series
// it maintains itself.

import "repro/internal/obs"

var (
	obsJobs = obs.Default.Counter("cabt_farm_jobs_total",
		"farm jobs executed")
	obsJobsFailed = obs.Default.Counter("cabt_farm_jobs_failed_total",
		"farm jobs failed")

	obsStageAssemble = obs.Default.Histogram("cabt_farm_stage_seconds",
		"wall time per farm pipeline stage", nil, "stage", "assemble")
	obsStageReference = obs.Default.Histogram("cabt_farm_stage_seconds",
		"wall time per farm pipeline stage", nil, "stage", "reference")
	obsStageTranslate = obs.Default.Histogram("cabt_farm_stage_seconds",
		"wall time per farm pipeline stage", nil, "stage", "translate")
	obsStageExecute = obs.Default.Histogram("cabt_farm_stage_seconds",
		"wall time per farm pipeline stage", nil, "stage", "execute")

	obsCacheMemHit = obs.Default.Counter("cabt_cache_requests_total",
		"translation-cache requests by tier and outcome", "tier", "memory", "outcome", "hit")
	obsCacheDiskHit = obs.Default.Counter("cabt_cache_requests_total",
		"translation-cache requests by tier and outcome", "tier", "disk", "outcome", "hit")
	obsCacheMiss = obs.Default.Counter("cabt_cache_requests_total",
		"translation-cache requests by tier and outcome", "tier", "none", "outcome", "miss")

	obsCacheMemLat = obs.Default.Histogram("cabt_cache_lookup_seconds",
		"translation-cache lookup latency by tier and outcome", nil,
		"tier", "memory", "outcome", "hit")
	obsCacheDiskHitLat = obs.Default.Histogram("cabt_cache_lookup_seconds",
		"translation-cache lookup latency by tier and outcome", nil,
		"tier", "disk", "outcome", "hit")
	obsCacheDiskMissLat = obs.Default.Histogram("cabt_cache_lookup_seconds",
		"translation-cache lookup latency by tier and outcome", nil,
		"tier", "disk", "outcome", "miss")

	obsPlatRegions = obs.Default.Counter("cabt_platform_regions_total",
		"source cycle regions entered by translated runs")
	obsPlatC6xCycles = obs.Default.Counter("cabt_platform_c6x_cycles_total",
		"host C6x cycles simulated by translated runs")
)
