package simfarm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// stripWall zeroes the host-timing fields, leaving only the
// deterministic simulation quantities.
func stripWall(rs []Result) []Result {
	out := append([]Result(nil), rs...)
	for i := range out {
		out[i].TranslateWallSeconds = 0
		out[i].RunWallSeconds = 0
		out[i].RefWallSeconds = 0
		out[i].SpeedupVsISS = 0
		// The first run of a batch misses where a warm farm hits; cache
		// state is checked separately, not part of determinism.
		out[i].CacheHit = false
		out[i].cacheState = 0
	}
	return out
}

func TestFarmDeterministicOrderingAndCycles(t *testing.T) {
	jobs := SweepJobs(workload.Six(), []core.Level{core.Level0, core.Level1, core.Level2, core.Level3}, nil)

	wide := New(Config{Workers: 8})
	r1, bs := wide.Run(jobs)
	if bs.Failed != 0 {
		for _, r := range r1 {
			if r.Err != nil {
				t.Fatalf("%s L%d: %v", r.Name, int(r.Level), r.Err)
			}
		}
	}
	for i, r := range r1 {
		if r.Index != i {
			t.Fatalf("result %d carries index %d", i, r.Index)
		}
		if r.Name != jobs[i].Workload.Name || r.Level != jobs[i].Options.Level {
			t.Fatalf("result %d is %s/L%d, want %s/L%d", i,
				r.Name, int(r.Level), jobs[i].Workload.Name, int(jobs[i].Options.Level))
		}
		if r.C6xCycles <= 0 || r.Instructions <= 0 {
			t.Fatalf("%s L%d: empty measurement", r.Name, int(r.Level))
		}
	}

	// A second farm with a different pool size must produce identical
	// simulation quantities in identical order.
	narrow := New(Config{Workers: 1})
	r2, _ := narrow.Run(jobs)
	a, b := stripWall(r1), stripWall(r2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across pool sizes:\n  8 workers: %+v\n  1 worker:  %+v", i, a[i], b[i])
		}
	}
}

func TestFarmTranslationCacheReuse(t *testing.T) {
	f := New(Config{Workers: 4})
	levels := []core.Level{core.Level0, core.Level1, core.Level2, core.Level3}
	jobs := SweepJobs(workload.Six(), levels, DefaultMarchConfigs())

	results, bs := f.Run(jobs)
	if bs.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("%s/%s L%d: %v", r.Name, r.Config, int(r.Level), r.Err)
			}
		}
	}
	// The configs differ only in I-cache geometry: levels 0–2 are
	// translated once and shared across all of them, Level3 is
	// translated per config. So misses = 6 workloads × (3 shared levels
	// + one Level3 per config), and every remaining job hits.
	nCfg := len(DefaultMarchConfigs())
	misses := int64(6 * (3 + nCfg))
	if bs.CacheMisses != misses {
		t.Errorf("CacheMisses = %d, want %d", bs.CacheMisses, misses)
	}
	if want := int64(len(jobs)) - misses; bs.CacheHits != want {
		t.Errorf("CacheHits = %d, want %d", bs.CacheHits, want)
	}
	if bs.CacheHitRate <= 0 {
		t.Errorf("CacheHitRate = %v, want > 0", bs.CacheHitRate)
	}

	// Shared programs must still produce per-config Level3 differences
	// (the tiny direct-mapped cache misses more) while levels < 3 agree
	// across configs.
	byKey := map[string]Result{}
	for _, r := range results {
		byKey[r.Config+"/"+r.Name+"/"+r.Level.String()] = r
	}
	for _, w := range workload.Six() {
		for _, l := range []core.Level{core.Level0, core.Level1, core.Level2} {
			base := byKey["base/"+w.Name+"/"+l.String()]
			for _, cfg := range []string{"icache-4k", "icache-64b-direct"} {
				alt := byKey[cfg+"/"+w.Name+"/"+l.String()]
				if alt.C6xCycles != base.C6xCycles || alt.GeneratedCycles != base.GeneratedCycles {
					t.Errorf("%s %s L%d: cycles differ from base below the cache level", cfg, w.Name, int(l))
				}
			}
		}
	}

	// Re-running the same batch on the warm farm is all hits.
	_, bs2 := f.Run(jobs)
	if bs2.CacheMisses != 0 {
		t.Errorf("warm re-run missed %d times", bs2.CacheMisses)
	}
	if bs2.CacheHits != int64(len(jobs)) {
		t.Errorf("warm re-run hits = %d, want %d", bs2.CacheHits, len(jobs))
	}

	st := f.Stats()
	if st.JobsRun != int64(2*len(jobs)) {
		t.Errorf("cumulative JobsRun = %d, want %d", st.JobsRun, 2*len(jobs))
	}
	if st.CachedPrograms != int(misses) {
		t.Errorf("CachedPrograms = %d, want %d", st.CachedPrograms, misses)
	}
}

func TestFarmSubmitStreams(t *testing.T) {
	f := New(Config{Workers: 2})
	jobs := SweepJobs([]workload.Workload{mustWorkload(t, "gcd"), mustWorkload(t, "fir")},
		[]core.Level{core.Level1}, nil)
	seen := map[int]bool{}
	for r := range f.Submit(jobs) {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(jobs))
	}
}

func TestFarmJobErrorIsolation(t *testing.T) {
	bad := workload.Workload{
		Name:     "bad",
		Source:   "\t.text\n\t.global _start\n_start:\tnot_an_instruction d0\n",
		Expected: nil,
	}
	jobs := []Job{
		{Workload: mustWorkload(t, "gcd"), Options: core.Options{Level: core.Level1}},
		{Workload: bad, Options: core.Options{Level: core.Level1}},
		{Workload: mustWorkload(t, "sieve"), Options: core.Options{Level: core.Level1}},
	}
	f := New(Config{Workers: 3})
	results, bs := f.Run(jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("broken workload did not fail")
	}
	if results[1].Error == "" || !strings.Contains(results[1].Error, "bad") {
		t.Errorf("Error = %q, want the workload name in the message", results[1].Error)
	}
	if bs.Failed != 1 {
		t.Errorf("Failed = %d, want 1", bs.Failed)
	}
}

func TestFarmWrongExpectedOutputFails(t *testing.T) {
	w := mustWorkload(t, "gcd")
	w.Expected = append([]uint32{0xdeadbeef}, w.Expected[1:]...)
	f := New(Config{Workers: 1})
	results, _ := f.Run([]Job{{Workload: w, Options: core.Options{Level: core.Level1}}})
	if results[0].Err == nil {
		t.Fatal("functional mismatch went undetected")
	}
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return w
}
