package simfarm

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/elf32"
	"repro/internal/march"
)

// ELFHash is the SHA-256 of a marshalled ELF image: the content address
// of a program's object code.
type ELFHash [sha256.Size]byte

// HashELF content-addresses an assembled ELF image.
func HashELF(f *elf32.File) (ELFHash, error) {
	data, err := f.Marshal()
	if err != nil {
		return ELFHash{}, fmt.Errorf("simfarm: hash elf: %w", err)
	}
	return sha256.Sum256(data), nil
}

// translatorGen is the translation pipeline's generation: it enters
// every ProgramKey unconditionally, so bumping it invalidates all
// cached translations at once. Bump it whenever the translator or a
// downstream engine changes in a way cached core.Programs must not
// survive.
//
// Generation 3: superblock fusion. The fused engine compiles region
// topology and the translator's link-register conventions into direct
// segment chains; programs translated before the fusion contract
// existed must be rebuilt, not replayed.
const translatorGen = 3

// Key is the content address of a translated program: ELF contents plus
// a canonical fingerprint of the translation-relevant options.
type Key [sha256.Size]byte

// String renders the key in short hex form for logs.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// ProgramKey derives the translation-cache key for translating the
// program addressed by h under opts.
//
// The options fingerprint is canonical: defaults are applied exactly as
// core.Translate applies them (nil Desc → march.Default, zero
// InlineCacheThreshold → 24), and fields that cannot influence the
// translated program at the requested level are omitted. In particular
// the I-cache geometry only enters the key at Level3, the cache-probe
// inlining switches only at Level3, and the correction-drain shape only
// at Level2 and above — so sweeps over those dimensions at lower levels
// hit the cache. Desc.IOWaitCycles is always keyed even though the
// translator ignores it: the platform reads it from the cached program's
// Desc at run time, so two jobs differing in it must not share a
// Program. Desc.ClockHz, Desc.Name and Desc.BoothMul affect only the
// dynamic reference simulators and reporting, never the translated
// program or its platform run, and are excluded.
func ProgramKey(h ELFHash, opts core.Options) Key {
	d := opts.Desc
	if d == nil {
		d = march.Default()
	}
	hs := sha256.New()
	hs.Write(h[:])
	// The generation stamp is keyed before anything else: a program
	// translated by an older pipeline must never be replayed by a newer
	// engine even when every option matches.
	var gen [8]byte
	binary.LittleEndian.PutUint64(gen[:], translatorGen)
	hs.Write(gen[:])
	put := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], v)
			hs.Write(b[:])
		}
	}
	putBool := func(vs ...bool) {
		for _, v := range vs {
			if v {
				put(1)
			} else {
				put(0)
			}
		}
	}
	put(uint64(opts.Level))
	putBool(opts.InstructionOriented)
	// Static cycle calculation reads the pipeline timings and branch
	// costs at every level except Level0 — but Level0 still schedules
	// through the same binder, so key them unconditionally; they are
	// cheap and never vary spuriously in a sweep.
	put(uint64(d.LoadLat), uint64(d.MulLat), uint64(d.DivBlock))
	put(uint64(d.Branch.NotTakenOK), uint64(d.Branch.TakenOK),
		uint64(d.Branch.Mispredict), uint64(d.Branch.Direct), uint64(d.Branch.Indirect))
	putBool(d.BackwardTaken)
	// Like IOWaitCycles, IRQEntryCycles is read from the cached
	// program's Desc at run time (interrupt entry cost).
	put(uint64(d.IOWaitCycles), uint64(d.IRQEntryCycles))
	if opts.Level >= core.Level2 {
		putBool(opts.SingleDrainCorrection)
	}
	if opts.Level >= core.Level3 {
		put(uint64(d.ICache.Sets), uint64(d.ICache.Ways),
			uint64(d.ICache.LineBytes), uint64(d.ICache.MissPenalty))
		putBool(opts.InlineCacheProbe)
		threshold := opts.InlineCacheThreshold
		if threshold == 0 {
			threshold = 24 // core.Translate's default
		}
		put(uint64(threshold))
	}
	var k Key
	hs.Sum(k[:0])
	return k
}

// descFingerprint hashes every Desc field the dynamic reference
// simulator observes (the full description: the live I-cache and the
// Booth multiplier are visible to it at any level).
func descFingerprint(hs hash.Hash, d *march.Desc) {
	put := func(vs ...uint64) {
		var b [8]byte
		for _, v := range vs {
			binary.LittleEndian.PutUint64(b[:], v)
			hs.Write(b[:])
		}
	}
	put(uint64(d.LoadLat), uint64(d.MulLat), uint64(d.DivBlock))
	put(uint64(d.Branch.NotTakenOK), uint64(d.Branch.TakenOK),
		uint64(d.Branch.Mispredict), uint64(d.Branch.Direct), uint64(d.Branch.Indirect))
	var flags uint64
	if d.BackwardTaken {
		flags |= 1
	}
	if d.BoothMul {
		flags |= 2
	}
	put(flags, uint64(d.IOWaitCycles), uint64(d.IRQEntryCycles))
	put(uint64(d.ICache.Sets), uint64(d.ICache.Ways),
		uint64(d.ICache.LineBytes), uint64(d.ICache.MissPenalty))
}

// referenceKey addresses a reference-simulator run: ELF contents × full
// microarchitecture description.
func referenceKey(h ELFHash, d *march.Desc) Key {
	hs := sha256.New()
	hs.Write(h[:])
	descFingerprint(hs, d)
	var k Key
	hs.Sum(k[:0])
	return k
}

// ProgramStore is the persistent second level of a TranslationCache —
// implemented by store.Store. Load returns (nil, false, nil) for a plain
// miss; Store persists a freshly translated program. Both must be safe
// for concurrent use.
type ProgramStore interface {
	Load(key [sha256.Size]byte) (*core.Program, bool, error)
	Store(key [sha256.Size]byte, prog *core.Program) error
}

// TranslationCache memoizes core.Translate results under content
// addresses. It is safe for concurrent use; concurrent requests for the
// same key run the translation exactly once (the winner is accounted as
// the miss, every waiter as a hit).
//
// An optional write-through disk level (see NewPersistentTranslationCache)
// makes the cache survive the process: a key absent from memory is looked
// up on disk before translating, and every actual translation is written
// back. A disk-served program counts as a hit (plus DiskHits), since the
// translation work was saved — only a real core.Translate run is a miss.
type TranslationCache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	disk    ProgramStore // nil = memory only

	hits     atomic.Int64
	misses   atomic.Int64
	diskHits atomic.Int64
}

type cacheEntry struct {
	once     sync.Once
	prog     *core.Program
	err      error
	fromDisk bool
}

// NewTranslationCache returns an empty, memory-only cache.
func NewTranslationCache() *TranslationCache {
	return &TranslationCache{entries: map[Key]*cacheEntry{}}
}

// NewPersistentTranslationCache returns a cache backed by the given
// persistent store as a write-through second level. Store errors are
// deliberately non-fatal: a failed write-back or read leaves the cache
// behaving as memory-only for that key (translation correctness never
// depends on the disk).
func NewPersistentTranslationCache(disk ProgramStore) *TranslationCache {
	return &TranslationCache{entries: map[Key]*cacheEntry{}, disk: disk}
}

// Translate returns the translation of f under opts, running
// core.Translate only on a cache miss. The second result reports whether
// the program came from the cache.
func (c *TranslationCache) Translate(f *elf32.File, opts core.Options) (*core.Program, bool, error) {
	h, err := HashELF(f)
	if err != nil {
		return nil, false, err
	}
	return c.TranslateHashed(h, f, opts)
}

// TranslateHashed is Translate for callers that already hold the ELF
// content hash (the farm memoizes it per assembled workload).
func (c *TranslationCache) TranslateHashed(h ELFHash, f *elf32.File, opts core.Options) (*core.Program, bool, error) {
	key := ProgramKey(h, opts)
	lookupStart := time.Now()
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		if c.disk != nil {
			diskStart := time.Now()
			prog, ok, err := c.disk.Load([sha256.Size]byte(key))
			if err == nil && ok {
				obsCacheDiskHitLat.Observe(time.Since(diskStart).Seconds())
				e.prog, e.fromDisk = prog, true
				return
			}
			obsCacheDiskMissLat.Observe(time.Since(diskStart).Seconds())
		}
		e.prog, e.err = core.Translate(f, opts)
		if c.disk != nil && e.err == nil {
			c.disk.Store([sha256.Size]byte(key), e.prog) // best effort; see NewPersistentTranslationCache
		}
	})
	hit := !first || e.fromDisk
	if hit {
		c.hits.Add(1)
		if first {
			c.diskHits.Add(1)
			obsCacheDiskHit.Inc()
		} else {
			obsCacheMemHit.Inc()
			obsCacheMemLat.Observe(time.Since(lookupStart).Seconds())
		}
	} else {
		c.misses.Add(1)
		obsCacheMiss.Inc()
	}
	return e.prog, hit, e.err
}

// Hits returns the number of cache hits served so far (memory and disk).
func (c *TranslationCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses (actual translations) so far.
func (c *TranslationCache) Misses() int64 { return c.misses.Load() }

// DiskHits returns the number of hits served from the persistent store
// rather than process memory.
func (c *TranslationCache) DiskHits() int64 { return c.diskHits.Load() }

// Persistent reports whether the cache has a disk level.
func (c *TranslationCache) Persistent() bool { return c.disk != nil }

// Len returns the number of distinct programs cached.
func (c *TranslationCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
