package simfarm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

// TestRunSoCBatch runs a small multi-core sweep through the farm and
// checks results, ordering and cache accounting.
func TestRunSoCBatch(t *testing.T) {
	f := New(Config{Workers: 4})
	jobs, err := SoCSweepJobs(workload.MCNames(), []int{2}, []int64{1, 32},
		[]soc.Arbitration{soc.RoundRobin}, core.Options{Level: core.Level2}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	results, stats := f.RunSoC(jobs)
	if stats.Failed != 0 {
		for _, r := range results {
			if r.Err != nil {
				t.Errorf("%s %s: %v", r.Name, r.Config, r.Err)
			}
		}
		t.Fatalf("%d failed jobs", stats.Failed)
	}
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Index != i || r.Name != jobs[i].Name || r.Config != jobs[i].Config {
			t.Errorf("result %d out of order: %+v", i, r)
		}
		if r.CoreCount != 2 || len(r.PerCore) != 2 {
			t.Errorf("%s %s: bad core counts: %+v", r.Name, r.Config, r)
		}
		if r.TotalCycles == 0 || r.BusTransactions == 0 {
			t.Errorf("%s %s: empty aggregates: %+v", r.Name, r.Config, r)
		}
	}
	// Each (workload, core index) translates once; the second quantum
	// point reuses every translation. Sweeping the quantum must not
	// retranslate anything.
	if stats.CacheMisses*2 != stats.CacheHits+stats.CacheMisses {
		t.Errorf("quantum sweep should hit the cache for its second half: %+v", stats)
	}
	if f.Stats().JobsRun != int64(len(jobs)) {
		t.Errorf("farm JobsRun = %d, want %d", f.Stats().JobsRun, len(jobs))
	}
}

// TestSoCHeterogeneousSharing checks the per-core cache keying: a
// heterogeneous job (per-core levels) shares translations with earlier
// jobs that used the same (program, options) pairs.
func TestSoCHeterogeneousSharing(t *testing.T) {
	f := New(Config{Workers: 2})
	mw := workload.MCShardedFIR(2)
	mk := func(l0, l1 core.Level) SoCJob {
		return SoCJob{
			Name:    mw.Name,
			Quantum: 16,
			Cores: []SoCCoreSpec{
				{Workload: mw.Cores[0], Options: core.Options{Level: l0}},
				{Workload: mw.Cores[1], Options: core.Options{Level: l1}},
			},
		}
	}
	// First batch translates (L1, L2); the heterogeneous second batch
	// swaps per-core levels but needs no new translation... except the
	// two programs differ per core, so swapping levels introduces two
	// genuinely new (program, options) keys. The third batch repeats the
	// second and must be all hits.
	_, s1 := f.RunSoC([]SoCJob{mk(core.Level1, core.Level2)})
	if s1.Failed != 0 || s1.CacheMisses != 2 {
		t.Fatalf("batch1: %+v", s1)
	}
	_, s2 := f.RunSoC([]SoCJob{mk(core.Level2, core.Level1)})
	if s2.Failed != 0 || s2.CacheMisses != 2 {
		t.Fatalf("batch2: %+v", s2)
	}
	_, s3 := f.RunSoC([]SoCJob{mk(core.Level2, core.Level1)})
	if s3.Failed != 0 || s3.CacheMisses != 0 || s3.CacheHits != 2 {
		t.Fatalf("batch3 should be all cache hits: %+v", s3)
	}
}

// TestSoCJobFailure checks that a functional mismatch is reported on the
// result, not swallowed.
func TestSoCJobFailure(t *testing.T) {
	f := New(Config{Workers: 1})
	mw := workload.MCContention(2)
	bad := mw.Cores[1]
	bad.Expected = []uint32{0xDEAD}
	_, stats := f.RunSoC([]SoCJob{{
		Name:    "bad",
		Quantum: 8,
		Cores: []SoCCoreSpec{
			{Workload: mw.Cores[0], UseISS: true},
			{Workload: bad, UseISS: true},
		},
	}})
	if stats.Failed != 1 {
		t.Fatalf("expected 1 failed job, got %+v", stats)
	}
}

// TestSoCSweepJobsSkips checks pingpong is skipped at 1 core and unknown
// names are rejected.
func TestSoCSweepJobsSkips(t *testing.T) {
	jobs, err := SoCSweepJobs([]string{"mc-pingpong"}, []int{1, 2}, []int64{1}, []soc.Arbitration{soc.RoundRobin}, core.Options{}, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Cores) != 2 {
		t.Fatalf("jobs = %+v", jobs)
	}
	if _, err := SoCSweepJobs([]string{"nope"}, []int{2}, []int64{1}, []soc.Arbitration{soc.RoundRobin}, core.Options{}, true, false); err == nil ||
		!strings.Contains(err.Error(), "unknown") {
		t.Fatalf("expected unknown-workload error, got %v", err)
	}
}

// TestSoCSweepJobsParallel checks the parallel flag is carried onto the
// jobs and reflected in the config label, and that a parallel batch runs
// to the same aggregates as the sequential one.
func TestSoCSweepJobsParallel(t *testing.T) {
	mk := func(parallel bool) []SoCJob {
		jobs, err := SoCSweepJobs([]string{"mc-pingpong"}, []int{2}, []int64{16},
			[]soc.Arbitration{soc.RoundRobin}, core.Options{Level: core.Level2}, false, parallel)
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	par := mk(true)
	if len(par) != 1 || !par[0].Parallel || !strings.HasSuffix(par[0].Config, "-par") {
		t.Fatalf("parallel sweep jobs = %+v", par)
	}
	seq := mk(false)
	if seq[0].Parallel || strings.HasSuffix(seq[0].Config, "-par") {
		t.Fatalf("sequential sweep jobs = %+v", seq)
	}

	f := New(Config{Workers: 2})
	rs, ss := f.RunSoC(seq)
	rp, sp := f.RunSoC(par)
	if ss.Failed != 0 || sp.Failed != 0 {
		t.Fatalf("failures: seq %+v par %+v (%s / %s)", ss, sp, rs[0].Error, rp[0].Error)
	}
	if rs[0].TotalCycles != rp[0].TotalCycles || rs[0].BusWaitCycles != rp[0].BusWaitCycles ||
		rs[0].TotalInstructions != rp[0].TotalInstructions {
		t.Errorf("parallel job diverged from sequential:\nseq %+v\npar %+v", rs[0], rp[0])
	}
}
