package simfarm

import (
	"repro/internal/core"
	"repro/internal/march"
	"repro/internal/workload"
)

// MarchConfig is one named microarchitecture configuration of a sweep.
type MarchConfig struct {
	Name string
	Desc *march.Desc
}

// DefaultMarchConfigs returns the standard sweep configurations: the
// paper's TC32 description plus three I-cache variants, including a
// high-associativity point (the probe generator handles up to 16 ways).
// Because the translation-cache key omits I-cache geometry below Level3,
// a sweep over these configs re-translates each (workload, level) pair
// only for Level3 — levels 0–2 share one translated program across all
// four.
func DefaultMarchConfigs() []MarchConfig {
	base := march.Default()

	big := march.Default()
	big.Name = "tc32-icache4k"
	big.ICache = march.CacheGeom{Sets: 256, Ways: 2, LineBytes: 8, MissPenalty: 8}

	tiny := march.Default()
	tiny.Name = "tc32-icache64b"
	tiny.ICache = march.CacheGeom{Sets: 8, Ways: 1, LineBytes: 8, MissPenalty: 8}

	assoc := march.Default()
	assoc.Name = "tc32-icache4w"
	assoc.ICache = march.CacheGeom{Sets: 16, Ways: 4, LineBytes: 8, MissPenalty: 8}

	return []MarchConfig{
		{Name: "base", Desc: base},
		{Name: "icache-4k", Desc: big},
		{Name: "icache-64b-direct", Desc: tiny},
		{Name: "icache-4way", Desc: assoc},
	}
}

// SweepJobs builds the batch for a full sweep: every workload at every
// level under every configuration, in deterministic
// (config, workload, level) order. A nil or empty configs slice means
// one unlabeled default configuration.
func SweepJobs(workloads []workload.Workload, levels []core.Level, configs []MarchConfig) []Job {
	if len(configs) == 0 {
		configs = []MarchConfig{{}}
	}
	jobs := make([]Job, 0, len(configs)*len(workloads)*len(levels))
	for _, c := range configs {
		for _, w := range workloads {
			for _, l := range levels {
				jobs = append(jobs, Job{
					Workload: w,
					Config:   c.Name,
					Options:  core.Options{Level: l, Desc: c.Desc},
				})
			}
		}
	}
	return jobs
}
