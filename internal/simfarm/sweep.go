package simfarm

import (
	"repro/internal/core"
	"repro/internal/march"
	"repro/internal/workload"
)

// MarchConfig is one named microarchitecture configuration of a sweep.
type MarchConfig struct {
	Name string
	Desc *march.Desc
}

// DefaultMarchConfigs returns the standard sweep configurations: the
// paper's TC32 description plus two I-cache variants. Because the
// translation-cache key omits I-cache geometry below Level3, a sweep
// over these configs re-translates each (workload, level) pair only for
// Level3 — levels 0–2 share one translated program across all three.
func DefaultMarchConfigs() []MarchConfig {
	base := march.Default()

	// The translator's cache-probe generator supports 1- and 2-way
	// geometries, so the large variant scales sets, not associativity.
	big := march.Default()
	big.Name = "tc32-icache4k"
	big.ICache = march.CacheGeom{Sets: 256, Ways: 2, LineBytes: 8, MissPenalty: 8}

	tiny := march.Default()
	tiny.Name = "tc32-icache64b"
	tiny.ICache = march.CacheGeom{Sets: 8, Ways: 1, LineBytes: 8, MissPenalty: 8}

	return []MarchConfig{
		{Name: "base", Desc: base},
		{Name: "icache-4k", Desc: big},
		{Name: "icache-64b-direct", Desc: tiny},
	}
}

// SweepJobs builds the batch for a full sweep: every workload at every
// level under every configuration, in deterministic
// (config, workload, level) order. A nil or empty configs slice means
// one unlabeled default configuration.
func SweepJobs(workloads []workload.Workload, levels []core.Level, configs []MarchConfig) []Job {
	if len(configs) == 0 {
		configs = []MarchConfig{{}}
	}
	jobs := make([]Job, 0, len(configs)*len(workloads)*len(levels))
	for _, c := range configs {
		for _, w := range workloads {
			for _, l := range levels {
				jobs = append(jobs, Job{
					Workload: w,
					Config:   c.Name,
					Options:  core.Options{Level: l, Desc: c.Desc},
				})
			}
		}
	}
	return jobs
}
