// Package simfarm is a job-oriented simulation farm: it accepts batches
// of simulation jobs (workload × translation level × microarchitecture
// config), runs them on a bounded worker pool, and memoizes the expensive
// stages so batch traffic scales.
//
// # Model
//
// A [Job] names one simulation: a workload (TC32 assembly plus expected
// output), translator options (detail level, microarchitecture
// description, ablation switches) and an optional config label for
// sweeps. A [Result] carries the same quantities as the paper's
// evaluation — per-job cycle counts, CPI, MIPS, cycle-count deviation
// versus the reference board — plus host wall-times and the speedup of
// the translated run over the reference instruction-set simulator.
//
// # Farm
//
// A [Farm] executes batches with configurable parallelism.
// [Farm.Submit] streams results on a channel in completion order for
// progress consumers; [Farm.Run] collects them back into deterministic
// job order and summarizes the batch ([BatchStats]: jobs run, cache
// hits/misses, simulated cycles per wall-second). All simulators in the
// repository are deterministic, so a job's cycle counts are independent
// of worker scheduling — only wall-times vary between runs, which the
// determinism tests exploit.
//
// # Content-addressed translation cache
//
// Translation (core.Translate) is the farm's expensive static stage, and
// batches repeat it heavily: a sweep over cache geometries re-translates
// the same program at the same level, and repeated jobs re-translate
// identical inputs. [TranslationCache] memoizes translated programs
// under a content-addressed [Key]: the SHA-256 of the marshalled ELF
// image combined with a canonical fingerprint of the translation-
// relevant core.Options fields. The fingerprint deliberately excludes
// fields a given detail level cannot observe — most usefully the
// instruction-cache geometry below Level3 — so a sweep over I-cache
// configs at levels 0–2 shares one translated program per
// (workload, level). Assembly and reference-simulator runs are memoized
// the same way inside the farm (reference results keyed on ELF hash ×
// full microarchitecture description, since the live reference I-cache
// observes every Desc field).
//
// The cache is optionally two-level: [NewPersistentTranslationCache]
// backs the in-memory map with a write-through on-disk store
// (internal/simfarm/store), so translations survive the process and are
// shared across concurrent processes pointed at the same directory —
// content addresses make that safe by construction. A disk-served
// program counts as a hit (tracked separately as [TranslationCache.DiskHits]);
// only an actual core.Translate run is a miss, and store failures
// degrade to memory-only behaviour rather than failing jobs.
//
// # Serving batches over HTTP
//
// internal/simfarm/server exposes Farm.Run as a multi-tenant HTTP job
// API (cmd/cabt-serve): per-tenant farms share server capacity while
// their caches write through to per-tenant namespaces of one shared
// store. See docs/architecture.md for the endpoints and formats.
//
// # Reproducing the paper through the farm
//
// The top-level repro package routes MeasureTable1 and MeasureTable2
// through a shared process-wide Farm, so the paper's tables are produced
// by the same code path that serves batch traffic, and cmd/cabt-farm
// runs full sweeps (all workloads × all levels × several cache configs)
// emitting JSON and a summary table. repro.Measure remains a direct,
// farm-free implementation and serves as the equivalence oracle: the
// farm must produce bit-identical cycle counts for the same job.
package simfarm
