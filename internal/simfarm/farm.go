package simfarm

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/elf32"
	"repro/internal/iss"
	"repro/internal/march"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tc32asm"
	"repro/internal/workload"
)

// Config configures a Farm.
type Config struct {
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Cache is the translation cache to use; nil allocates a private
	// one. Passing a shared cache lets several farms (or a farm and a
	// benchmark harness) pool translated programs.
	Cache *TranslationCache
	// Engine selects the C6x host-execution engine of every translated
	// run in the farm, single-core and SoC alike (the zero value is
	// platform.EngineCompiled; the -interp flags select EngineInterp).
	// It does not key the translation cache: the engine changes how a
	// program executes, never what was translated.
	Engine platform.Engine
}

// Farm runs simulation jobs on a bounded worker pool, memoizing
// assembly, reference runs and translation across jobs and batches.
type Farm struct {
	workers int
	cache   *TranslationCache
	engine  platform.Engine

	mu   sync.Mutex
	elfs map[ELFHash]*elfEntry // keyed on source-text hash (see elf)
	refs map[Key]*refEntry

	jobsRun atomic.Int64
	failed  atomic.Int64
	refRuns atomic.Int64
}

type elfEntry struct {
	once sync.Once
	f    *elf32.File
	hash ELFHash
	err  error
}

type refEntry struct {
	once   sync.Once
	stats  iss.Stats
	output []uint32
	wall   time.Duration
	err    error
}

// New builds a farm.
func New(cfg Config) *Farm {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	c := cfg.Cache
	if c == nil {
		c = NewTranslationCache()
	}
	return &Farm{
		workers: w,
		cache:   c,
		engine:  cfg.Engine,
		elfs:    map[ELFHash]*elfEntry{},
		refs:    map[Key]*refEntry{},
	}
}

// Workers returns the configured pool size.
func (f *Farm) Workers() int { return f.workers }

// Engine returns the farm's C6x host-execution engine.
func (f *Farm) Engine() platform.Engine { return f.engine }

// Cache returns the farm's translation cache.
func (f *Farm) Cache() *TranslationCache { return f.cache }

// Stats returns the farm's cumulative counters across all batches.
func (f *Farm) Stats() FarmStats {
	return FarmStats{
		JobsRun:        f.jobsRun.Load(),
		Failed:         f.failed.Load(),
		CacheHits:      f.cache.Hits(),
		CacheMisses:    f.cache.Misses(),
		CachedPrograms: f.cache.Len(),
		ReferenceRuns:  f.refRuns.Load(),
		DiskCacheHits:  f.cache.DiskHits(),
	}
}

// submitPool streams run(i) for every i in [0, n) through a bounded
// worker pool: results arrive on the returned channel in completion
// order, buffered for the whole batch and closed when it is done, so
// consumers may read lazily without stalling workers. Shared by Submit
// and SubmitSoC.
func submitPool[R any](workers, n int, run func(i int) R) <-chan R {
	out := make(chan R, n)
	idx := make(chan int)
	w := workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out <- run(i)
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Submit runs the batch on the worker pool and streams each Result on
// the returned channel as it completes (completion order, Index set).
// The channel is buffered for the whole batch and closed when the batch
// is done, so consumers may read lazily without stalling workers.
func (f *Farm) Submit(jobs []Job) <-chan Result {
	return submitPool(f.workers, len(jobs), func(i int) Result {
		return f.runJob(i, jobs[i])
	})
}

// Run executes the batch and returns the results in job order (result i
// belongs to jobs[i], regardless of completion order) together with the
// batch summary. Job failures are reported per Result, never as a batch
// failure.
func (f *Farm) Run(jobs []Job) ([]Result, BatchStats) {
	start := time.Now()
	results := make([]Result, len(jobs))
	for r := range f.Submit(jobs) {
		results[r.Index] = r
	}
	return results, f.Summarize(results, time.Since(start))
}

// Summarize computes the batch statistics for a set of results a caller
// collected from Submit itself, with wall the batch's elapsed time.
func (f *Farm) Summarize(results []Result, wall time.Duration) BatchStats {
	return SummarizeResults(results, wall, f.workers)
}

// SummarizeResults computes batch statistics for results gathered from
// any execution path — a local Farm batch or results collected from
// remote workers (internal/simfarm/dist), where workers is the executor
// count to report. Failures are recognized by Err or its wire form Error,
// so results that crossed a JSON boundary (which drops Err) still count.
func SummarizeResults(results []Result, wall time.Duration, workers int) BatchStats {
	bs := BatchStats{Jobs: len(results), Workers: workers, WallSeconds: wall.Seconds()}
	for i := range results {
		r := &results[i]
		if r.Err != nil || r.Error != "" {
			bs.Failed++
		}
		switch r.cacheState {
		case 1:
			bs.CacheHits++
		case 2:
			bs.CacheMisses++
		}
		bs.TotalC6xCycles += r.C6xCycles
		bs.TotalGeneratedCycles += r.GeneratedCycles
	}
	if t := bs.CacheHits + bs.CacheMisses; t > 0 {
		bs.CacheHitRate = float64(bs.CacheHits) / float64(t)
	}
	if bs.WallSeconds > 0 {
		bs.C6xCyclesPerSecond = float64(bs.TotalC6xCycles) / bs.WallSeconds
	}
	return bs
}

// elf assembles a workload, memoized on the hash of its source text.
func (f *Farm) elf(w workload.Workload) *elfEntry {
	key := ELFHash(sha256.Sum256([]byte(w.Source)))
	f.mu.Lock()
	e, ok := f.elfs[key]
	if !ok {
		e = &elfEntry{}
		f.elfs[key] = e
	}
	f.mu.Unlock()
	e.once.Do(func() {
		file, err := tc32asm.Assemble(w.Source)
		if err != nil {
			e.err = fmt.Errorf("%s: %w", w.Name, err)
			return
		}
		e.f = file
		e.hash, e.err = HashELF(file)
	})
	return e
}

// reference runs the cycle-accurate reference simulator, memoized on
// (ELF contents, full microarchitecture description). The wall-time of
// the first (actual) run is recorded and repeated for memoized hits, so
// every job reports a meaningful ISS-speed baseline.
func (f *Farm) reference(h ELFHash, file *elf32.File, d *march.Desc) *refEntry {
	key := referenceKey(h, d)
	f.mu.Lock()
	e, ok := f.refs[key]
	if !ok {
		e = &refEntry{}
		f.refs[key] = e
	}
	f.mu.Unlock()
	e.once.Do(func() {
		f.refRuns.Add(1)
		start := time.Now()
		s, err := iss.New(file, iss.Config{Desc: d, CycleAccurate: true})
		if err != nil {
			e.err = err
			return
		}
		if err := s.Run(); err != nil {
			e.err = err
			return
		}
		e.wall = time.Since(start)
		e.stats = s.Stats()
		e.output = s.Output()
	})
	return e
}

// ELF returns the memoized assembled image of a workload (shared with
// job execution; used by benchmark harnesses).
func (f *Farm) ELF(w workload.Workload) (*elf32.File, error) {
	e := f.elf(w)
	return e.f, e.err
}

// Reference returns the memoized reference-simulator statistics and
// debug output of a workload under desc (nil = march.Default).
func (f *Farm) Reference(w workload.Workload, desc *march.Desc) (iss.Stats, []uint32, error) {
	if desc == nil {
		desc = march.Default()
	}
	e := f.elf(w)
	if e.err != nil {
		return iss.Stats{}, nil, e.err
	}
	r := f.reference(e.hash, e.f, desc)
	return r.stats, r.output, r.err
}

// runJob executes one job: assemble (memoized), reference-run
// (memoized), translate (content-addressed cache), platform-run, verify
// and measure.
func (f *Farm) runJob(idx int, job Job) Result {
	f.jobsRun.Add(1)
	obsJobs.Inc()
	r := Result{Index: idx, Name: job.Workload.Name, Level: job.Options.Level, Config: job.Config}
	fail := func(err error) Result {
		f.failed.Add(1)
		obsJobsFailed.Inc()
		r.Err = err
		r.Error = err.Error()
		return r
	}

	aStart := time.Now()
	endA := obs.Trace.Span("assemble", "farm", int64(idx))
	e := f.elf(job.Workload)
	endA()
	obsStageAssemble.Observe(time.Since(aStart).Seconds())
	if e.err != nil {
		return fail(e.err)
	}
	desc := job.Options.Desc
	if desc == nil {
		desc = march.Default()
	}

	endRef := obs.Trace.Span("reference", "farm", int64(idx))
	ref := f.reference(e.hash, e.f, desc)
	endRef()
	obsStageReference.Observe(ref.wall.Seconds())
	if ref.err != nil {
		return fail(fmt.Errorf("%s: reference: %w", job.Workload.Name, ref.err))
	}
	if err := workload.SameOutput(ref.output, job.Workload.Expected); err != nil {
		return fail(fmt.Errorf("%s: reference %w", job.Workload.Name, err))
	}
	r.Instructions = ref.stats.Retired
	r.BoardCycles = ref.stats.Cycles
	r.BoardCPI = float64(r.BoardCycles) / float64(r.Instructions)
	r.BoardSeconds = float64(r.BoardCycles) / float64(desc.ClockHz)
	r.BoardMIPS = float64(r.Instructions) / r.BoardSeconds / 1e6
	r.RefWallSeconds = ref.wall.Seconds()

	tStart := time.Now()
	endT := obs.Trace.Span("translate", "farm", int64(idx))
	prog, hit, err := f.cache.TranslateHashed(e.hash, e.f, job.Options)
	endT()
	if err != nil {
		return fail(fmt.Errorf("%s L%d: %w", job.Workload.Name, int(job.Options.Level), err))
	}
	r.TranslateWallSeconds = time.Since(tStart).Seconds()
	obsStageTranslate.Observe(r.TranslateWallSeconds)
	r.CacheHit = hit
	if hit {
		r.cacheState = 1
	} else {
		r.cacheState = 2
	}

	runStart := time.Now()
	endX := obs.Trace.Span("execute", "farm", int64(idx))
	sys := platform.NewWithEngine(prog, f.engine)
	if err := sys.Run(); err != nil {
		endX()
		return fail(fmt.Errorf("%s L%d: %w", job.Workload.Name, int(job.Options.Level), err))
	}
	endX()
	r.RunWallSeconds = time.Since(runStart).Seconds()
	obsStageExecute.Observe(r.RunWallSeconds)
	if err := workload.SameOutput(sys.Output, job.Workload.Expected); err != nil {
		return fail(fmt.Errorf("%s L%d: %w", job.Workload.Name, int(job.Options.Level), err))
	}

	st := sys.Stats()
	obsPlatRegions.Add(st.Regions)
	obsPlatC6xCycles.Add(st.C6xCycles)
	r.C6xCycles = st.C6xCycles
	r.GeneratedCycles = st.GeneratedCycles
	r.CPI = float64(r.C6xCycles) / float64(r.Instructions)
	r.Seconds = float64(r.C6xCycles) / platform.C6xClockHz
	r.MIPS = float64(r.Instructions) / r.Seconds / 1e6
	if job.Options.Level >= 1 {
		r.DeviationPct = 100 * float64(r.GeneratedCycles-r.BoardCycles) / float64(r.BoardCycles)
	}
	if r.RunWallSeconds > 0 {
		r.SpeedupVsISS = r.RefWallSeconds / r.RunWallSeconds
	}
	return r
}
