package simfarm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestAggregateByWorkload(t *testing.T) {
	results := []Result{
		{Name: "a", Level: core.Level0, BoardCycles: 10},
		{Name: "b", Level: core.Level0, BoardCycles: 20},
		{Name: "a", Level: core.Level1, BoardCycles: 10},
		{Name: "b", Level: core.Level1, BoardCycles: 20},
	}
	aggs, err := AggregateByWorkload(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 || aggs[0].Name != "a" || aggs[1].Name != "b" {
		t.Fatalf("aggs = %+v", aggs)
	}
	if aggs[0].Board.BoardCycles != 10 || len(aggs[0].ByLevel) != 2 {
		t.Errorf("agg a = %+v", aggs[0])
	}

	dup := append(results, Result{Name: "a", Level: core.Level1})
	if _, err := AggregateByWorkload(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate not rejected: %v", err)
	}

	bad := []Result{{Name: "x", Err: errors.New("boom")}}
	if _, err := AggregateByWorkload(bad); err == nil {
		t.Error("failed result not surfaced")
	}
}
