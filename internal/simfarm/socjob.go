package simfarm

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/soc"
	"repro/internal/workload"
)

// SoCCoreSpec is one core of a multi-core simulation job.
type SoCCoreSpec struct {
	// Workload is the core's program plus its expected debug output.
	Workload workload.Workload
	// UseISS runs the core on the reference ISS instead of the
	// translated platform.
	UseISS bool
	// Options are the translation options of a translated core. Each
	// core is translated through the farm's content-addressed cache
	// under its own (ELF, options) key, so heterogeneous per-core
	// configurations still share every translation they have in common —
	// across cores, jobs and batches.
	Options core.Options
}

// SoCJob is one multi-core SoC simulation request.
type SoCJob struct {
	// Name labels the job (usually the MultiWorkload name).
	Name string
	// Config optionally labels the sweep point; carried through.
	Config string

	Cores         []SoCCoreSpec
	Quantum       int64
	Arbitration   soc.Arbitration
	BusBusyCycles int64
	// Parallel runs the SoC on the speculative parallel scheduler
	// (bit-identical results; see soc.Config.Parallel).
	Parallel bool
}

// SoCCoreResult is one core's measurement within a SoCResult.
type SoCCoreResult struct {
	soc.CoreResult
	// CacheHit reports whether the core's translation came from the
	// content-addressed cache (always false for ISS cores).
	CacheHit bool `json:"cache_hit"`
}

// SoCResult is the outcome of one SoCJob.
type SoCResult struct {
	Index       int    `json:"index"`
	Name        string `json:"name"`
	Config      string `json:"config,omitempty"`
	CoreCount   int    `json:"core_count"`
	Quantum     int64  `json:"quantum"`
	Arbitration string `json:"arbitration"`

	PerCore []SoCCoreResult `json:"per_core"`

	// Aggregates over the SoC (see soc.Stats).
	Quanta            int64 `json:"quanta"`
	TotalInstructions int64 `json:"total_instructions"`
	TotalCycles       int64 `json:"total_cycles"`
	MakespanCycles    int64 `json:"makespan_cycles"`
	BusTransactions   int64 `json:"bus_transactions"`
	BusWaitCycles     int64 `json:"bus_wait_cycles"`

	// RunWallSeconds is the host wall-time of the SoC run (excluding
	// assembly and translation).
	RunWallSeconds float64 `json:"run_wall_seconds"`

	Err   error  `json:"-"`
	Error string `json:"error,omitempty"`

	cacheHits, cacheMisses int
}

// CacheCounts reports the job's translation-cache traffic (per-core hits
// and misses) for batch accounting; like Result.CacheOutcome it exists so
// the distributed path can carry the counts over the wire and restore
// them with SetCacheCounts before summarizing.
func (r *SoCResult) CacheCounts() (hits, misses int) { return r.cacheHits, r.cacheMisses }

// SetCacheCounts restores wire-transferred cache counts; see CacheCounts.
func (r *SoCResult) SetCacheCounts(hits, misses int) { r.cacheHits, r.cacheMisses = hits, misses }

// SoCBatchStats summarizes one RunSoC batch.
type SoCBatchStats struct {
	Jobs    int `json:"jobs"`
	Failed  int `json:"failed"`
	Workers int `json:"workers"`

	CacheHits    int64   `json:"translation_cache_hits"`
	CacheMisses  int64   `json:"translation_cache_misses"`
	CacheHitRate float64 `json:"translation_cache_hit_rate"`

	// TotalCycles is the aggregate simulated source cycles of the batch;
	// CyclesPerSecond is the batch throughput in simulated cycles per
	// host wall-second.
	TotalCycles     int64   `json:"total_cycles"`
	WallSeconds     float64 `json:"wall_seconds"`
	CyclesPerSecond float64 `json:"cycles_per_second"`
}

// SoCReport is the JSON document cmd/cabt-soc emits for a sweep.
type SoCReport struct {
	Workers int           `json:"workers"`
	Results []SoCResult   `json:"results"`
	Stats   SoCBatchStats `json:"stats"`
}

// SubmitSoC runs the multi-core batch on the worker pool and streams
// results in completion order (Index set), like Submit.
func (f *Farm) SubmitSoC(jobs []SoCJob) <-chan SoCResult {
	return submitPool(f.workers, len(jobs), func(i int) SoCResult {
		return f.runSoCJob(i, jobs[i])
	})
}

// RunSoC executes the multi-core batch and returns results in job order
// plus the batch summary. Job failures are per-result, never a batch
// failure.
func (f *Farm) RunSoC(jobs []SoCJob) ([]SoCResult, SoCBatchStats) {
	start := time.Now()
	results := make([]SoCResult, len(jobs))
	for r := range f.SubmitSoC(jobs) {
		results[r.Index] = r
	}
	return results, f.SummarizeSoC(results, time.Since(start))
}

// SummarizeSoC computes the batch statistics for results collected from
// SubmitSoC, with wall the batch's elapsed time.
func (f *Farm) SummarizeSoC(results []SoCResult, wall time.Duration) SoCBatchStats {
	return SummarizeSoCResults(results, wall, f.workers)
}

// SummarizeSoCResults computes SoC batch statistics for results gathered
// from any execution path (local farm or distributed workers), with
// workers the executor count to report; see SummarizeResults.
func SummarizeSoCResults(results []SoCResult, wall time.Duration, workers int) SoCBatchStats {
	bs := SoCBatchStats{Jobs: len(results), Workers: workers, WallSeconds: wall.Seconds()}
	for i := range results {
		r := &results[i]
		if r.Err != nil || r.Error != "" {
			bs.Failed++
		}
		bs.CacheHits += int64(r.cacheHits)
		bs.CacheMisses += int64(r.cacheMisses)
		bs.TotalCycles += r.TotalCycles
	}
	if t := bs.CacheHits + bs.CacheMisses; t > 0 {
		bs.CacheHitRate = float64(bs.CacheHits) / float64(t)
	}
	if bs.WallSeconds > 0 {
		bs.CyclesPerSecond = float64(bs.TotalCycles) / bs.WallSeconds
	}
	return bs
}

// runSoCJob executes one multi-core job: assemble every core (memoized),
// translate the translated cores through the content-addressed cache,
// assemble the SoC, run it, and verify every core's output.
func (f *Farm) runSoCJob(idx int, job SoCJob) SoCResult {
	f.jobsRun.Add(1)
	r := SoCResult{
		Index:       idx,
		Name:        job.Name,
		Config:      job.Config,
		CoreCount:   len(job.Cores),
		Quantum:     job.Quantum,
		Arbitration: job.Arbitration.String(),
	}
	fail := func(err error) SoCResult {
		f.failed.Add(1)
		r.Err = err
		r.Error = err.Error()
		return r
	}
	if len(job.Cores) == 0 {
		return fail(fmt.Errorf("%s: no cores", job.Name))
	}

	cfg := soc.Config{
		Quantum:       job.Quantum,
		Arbitration:   job.Arbitration,
		BusBusyCycles: job.BusBusyCycles,
		Engine:        f.engine,
		Parallel:      job.Parallel,
	}
	hits := make([]bool, len(job.Cores))
	for i, spec := range job.Cores {
		e := f.elf(spec.Workload)
		if e.err != nil {
			return fail(e.err)
		}
		cc := soc.CoreConfig{Name: spec.Workload.Name, ELF: e.f, UseISS: spec.UseISS, Options: spec.Options}
		if !spec.UseISS {
			prog, hit, err := f.cache.TranslateHashed(e.hash, e.f, spec.Options)
			if err != nil {
				return fail(fmt.Errorf("%s: %w", spec.Workload.Name, err))
			}
			cc.Prog = prog
			hits[i] = hit
			if hit {
				r.cacheHits++
			} else {
				r.cacheMisses++
			}
		}
		cfg.Cores = append(cfg.Cores, cc)
	}

	sys, err := soc.New(cfg)
	if err != nil {
		return fail(err)
	}
	runStart := time.Now()
	if err := sys.Run(); err != nil {
		return fail(err)
	}
	r.RunWallSeconds = time.Since(runStart).Seconds()
	for i, spec := range job.Cores {
		if err := workload.SameOutput(sys.Output(i), spec.Workload.Expected); err != nil {
			return fail(fmt.Errorf("%s: %w", spec.Workload.Name, err))
		}
	}

	st := sys.Results()
	r.Quanta = st.Quanta
	r.TotalInstructions = st.TotalInstructions
	r.TotalCycles = st.TotalCycles
	r.MakespanCycles = st.MakespanCycles
	r.BusTransactions = st.BusTransactions
	r.BusWaitCycles = st.BusWaitCycles
	for i, cr := range st.Cores {
		r.PerCore = append(r.PerCore, SoCCoreResult{CoreResult: cr, CacheHit: hits[i]})
	}
	return r
}

// SoCSweepJobs builds a sweep batch: the named multi-core workloads at
// every core count × quantum × arbitration policy, all cores translated
// under opts (or running the reference ISS when useISS is set), on the
// parallel scheduler when parallel is set. Workloads unavailable at a
// core count (mc-pingpong below 2 cores) are skipped. Jobs are in
// deterministic (workload, cores, quantum, policy) order.
func SoCSweepJobs(names []string, coreCounts []int, quanta []int64, arbs []soc.Arbitration, opts core.Options, useISS, parallel bool) ([]SoCJob, error) {
	var jobs []SoCJob
	for _, name := range names {
		for _, n := range coreCounts {
			known, available := workload.MCKnown(name, n)
			if !known {
				return nil, fmt.Errorf("unknown multi-core workload %q", name)
			}
			if !available {
				continue // valid workload, unavailable at this core count
			}
			mw, _ := workload.MCByName(name, n)
			for _, q := range quanta {
				for _, arb := range arbs {
					config := fmt.Sprintf("%dc-q%d-%s", n, q, arb)
					if parallel {
						config += "-par"
					}
					job := SoCJob{
						Name:        mw.Name,
						Config:      config,
						Quantum:     q,
						Arbitration: arb,
						Parallel:    parallel,
					}
					for _, w := range mw.Cores {
						job.Cores = append(job.Cores, SoCCoreSpec{Workload: w, UseISS: useISS, Options: opts})
					}
					jobs = append(jobs, job)
				}
			}
		}
	}
	return jobs, nil
}
